package logicnet

import (
	"math"
	"strings"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/solver"
)

const fullAdder = `
name full-adder
input a b cin
output sum cout
x  = XOR a b
sum = XOR x cin
g1 = AND a b
g2 = AND x cin
cout = OR g1 g2
`

func TestParseFullAdder(t *testing.T) {
	nl, err := Parse(strings.NewReader(fullAdder))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "full-adder" {
		t.Fatalf("name = %q", nl.Name)
	}
	if len(nl.Inputs) != 3 || len(nl.Outputs) != 2 || len(nl.Gates) != 5 {
		t.Fatalf("structure: %d inputs %d outputs %d gates",
			len(nl.Inputs), len(nl.Outputs), len(nl.Gates))
	}
	// 2 XOR (16 each) + 2 AND (6 each) + OR (6) = 50 SETs, 100 junctions.
	if nl.NumSETs() != 50 || nl.NumJunctions() != 100 {
		t.Fatalf("SETs = %d junctions = %d, want 50/100", nl.NumSETs(), nl.NumJunctions())
	}
}

func TestEvalFullAdder(t *testing.T) {
	nl, err := Parse(strings.NewReader(fullAdder))
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		a, b, cin := mask&1 != 0, mask&2 != 0, mask&4 != 0
		val, err := nl.Eval(map[string]bool{"a": a, "b": b, "cin": cin})
		if err != nil {
			t.Fatal(err)
		}
		sum := a != b != cin
		cout := (a && b) || (cin && (a != b))
		if val["sum"] != sum || val["cout"] != cout {
			t.Fatalf("adder(%v,%v,%v): got sum=%v cout=%v want %v %v",
				a, b, cin, val["sum"], val["cout"], sum, cout)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no gates":          "input a\noutput a\n",
		"undefined input":   "input a\noutput y\ny = NAND a q\n",
		"redefined wire":    "input a\noutput y\ny = INV a\ny = INV a\n",
		"bad kind":          "input a\noutput y\ny = FOO a\n",
		"wrong arity":       "input a\noutput y\ny = NAND a\n",
		"undefined output":  "input a\noutput z\ny = INV a\n",
		"use before define": "input a\noutput y\ny = NAND a w\nw = INV a\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted invalid netlist", name)
		}
	}
}

func TestExpandStructure(t *testing.T) {
	nl, err := Parse(strings.NewReader("input a b\noutput y\ny = NAND a b\n"))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := nl.Expand(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumSETs != 4 {
		t.Fatalf("NAND expanded to %d SETs, want 4", ex.NumSETs)
	}
	if ex.Circuit.NumJunctions() != 8 {
		t.Fatalf("junctions = %d, want 8", ex.Circuit.NumJunctions())
	}
	if _, ok := ex.Wire["y"]; !ok {
		t.Fatal("output wire not mapped")
	}
	if ex.Circuit.NodeKindOf(ex.Wire["y"]) != circuit.Island {
		t.Fatal("logic wire must be an island")
	}
	if ex.Circuit.NodeKindOf(ex.InputNode["a"]) != circuit.External {
		t.Fatal("input must be external")
	}
}

// settle runs the expanded circuit to (near) steady state and returns
// the potential of a wire.
func settle(t *testing.T, ex *Expanded, wire string, seed uint64) float64 {
	t.Helper()
	s, err := solver.New(ex.Circuit, solver.Options{Temp: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(30000, 5e-6); err != nil && err != solver.ErrBlockaded {
		t.Fatal(err)
	}
	return s.Potential(ex.Wire[wire])
}

func TestInverterStatics(t *testing.T) {
	nl, err := Parse(strings.NewReader("input a\noutput y\ny = INV a\n"))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	vdd := p.Vdd()

	exLow, err := nl.Expand(p, map[string]circuit.Source{"a": circuit.DC(0)})
	if err != nil {
		t.Fatal(err)
	}
	high := settle(t, exLow, "y", 1)
	if high < 0.6*vdd {
		t.Fatalf("INV(0) output %.4g V, want > %.4g (Vdd=%.4g)", high, 0.6*vdd, vdd)
	}

	exHigh, err := nl.Expand(p, map[string]circuit.Source{"a": circuit.DC(vdd)})
	if err != nil {
		t.Fatal(err)
	}
	low := settle(t, exHigh, "y", 1)
	if low > 0.4*vdd {
		t.Fatalf("INV(1) output %.4g V, want < %.4g", low, 0.4*vdd)
	}
}

func TestNANDTruthTable(t *testing.T) {
	nl, err := Parse(strings.NewReader("input a b\noutput y\ny = NAND a b\n"))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	vdd := p.Vdd()
	for mask := 0; mask < 4; mask++ {
		a, b := mask&1 != 0, mask&2 != 0
		drive := map[string]circuit.Source{
			"a": circuit.DC(level(a, vdd)),
			"b": circuit.DC(level(b, vdd)),
		}
		ex, err := nl.Expand(p, drive)
		if err != nil {
			t.Fatal(err)
		}
		v := settle(t, ex, "y", 3)
		want := !(a && b)
		if want && v < 0.6*vdd {
			t.Fatalf("NAND(%v,%v) = %.4g V, want high (> %.4g)", a, b, v, 0.6*vdd)
		}
		if !want && v > 0.4*vdd {
			t.Fatalf("NAND(%v,%v) = %.4g V, want low (< %.4g)", a, b, v, 0.4*vdd)
		}
	}
}

func level(b bool, vdd float64) float64 {
	if b {
		return vdd
	}
	return 0
}

func TestDefaultParamsRegime(t *testing.T) {
	p := DefaultParams()
	// The logic only works if the supply sits well below the blockade
	// threshold of an off transistor: Vdd < ~0.4 e/Csum.
	eOverC := 1.602176634e-19 / p.Csum()
	if p.Vdd() >= 0.45*eOverC {
		t.Fatalf("Vdd %.4g too close to blockade threshold %.4g: off transistors leak",
			p.Vdd(), eOverC)
	}
	// The bias solver must put the pull-up island state inside its
	// conduction window: e*vout + Ec + Ec_L <= e*v0 <= e*Vdd + Ec, i.e.
	// the window is non-empty and Vp/Vn come out positive and ordered.
	if p.Vp() <= p.Vn() || p.Vn() <= 0 {
		t.Fatalf("bias rails disordered: Vp=%g Vn=%g", p.Vp(), p.Vn())
	}
	budget := p.Vdd()*(1-p.PullUpOut) - 1.602176634e-19/(2*p.CL)
	if budget <= 0 {
		t.Fatalf("pull-up conduction window empty: budget %g V", budget)
	}
	if math.IsNaN(p.Vp()) || math.IsNaN(p.Vn()) {
		t.Fatal("bias solver produced NaN")
	}
}

func TestInverterChainRegenerates(t *testing.T) {
	// Three cascaded inverters must regenerate full logic levels — the
	// property that makes large benchmarks meaningful.
	nl, err := Parse(strings.NewReader(
		"input a\noutput y3\ny1 = INV a\ny2 = INV y1\ny3 = INV y2\n"))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	vdd := p.Vdd()
	ex, err := nl.Expand(p, map[string]circuit.Source{"a": circuit.DC(0)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(ex.Circuit, solver.Options{Temp: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(60000, 1e-5); err != nil && err != solver.ErrBlockaded {
		t.Fatal(err)
	}
	v1 := s.Potential(ex.Wire["y1"])
	v2 := s.Potential(ex.Wire["y2"])
	v3 := s.Potential(ex.Wire["y3"])
	if v1 < 0.6*vdd || v2 > 0.4*vdd || v3 < 0.6*vdd {
		t.Fatalf("chain levels: %.3g %.3g %.3g (Vdd=%.3g)", v1, v2, v3, vdd)
	}
}
