// Package logicnet turns gate-level logic netlists into single-electron
// transistor circuits, the way the paper prepares its 15 large-scale
// benchmarks: "logic benchmarks were converted into single-electron
// device circuits using CMOS interpretations of the logic circuits",
// using nSETs and pSETs — ordinary SETs with a second, constantly
// biased gate that shifts the Coulomb-oscillation phase so the device
// conducts for a high (nSET) or low (pSET) input (Fig. 4b).
//
// The voltage-state design used here:
//
//   - supply Vdd = SupplyFrac * e/Csum, safely below the blockade
//     threshold of an off transistor;
//   - the second-gate bias rails Vp and Vn are not free parameters:
//     they are solved from the two-hop energetics of a conducting SET.
//     Pulling a wire up moves an electron wire -> island -> Vdd; both
//     hops must be downhill up to the target high level, and the bias
//     charge trades margin between them. Vp is chosen so the two hops
//     have equal margin at the design operating point (and dually Vn
//     for the pull-down nSET), including the mean-field coupling of the
//     junction and gate capacitors to the island. Without this
//     balancing one hop is a few kT uphill and gates freeze mid-swing;
//   - every logic wire is an island with a large load capacitance CL,
//     which both sets realistic RC delays and isolates circuit stages
//     from each other's single-electron events — the locality the
//     adaptive solver exploits (the C1 wire capacitor of Fig. 4a).
package logicnet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

// GateKind enumerates supported gates.
type GateKind int

const (
	INV GateKind = iota
	BUF
	NAND2
	NOR2
	AND2
	OR2
	XOR2
)

var kindNames = map[string]GateKind{
	"INV": INV, "NOT": INV, "BUF": BUF,
	"NAND": NAND2, "NOR": NOR2, "AND": AND2, "OR": OR2, "XOR": XOR2,
}

// String returns the canonical gate name.
func (k GateKind) String() string {
	switch k {
	case INV:
		return "INV"
	case BUF:
		return "BUF"
	case NAND2:
		return "NAND"
	case NOR2:
		return "NOR"
	case AND2:
		return "AND"
	case OR2:
		return "OR"
	case XOR2:
		return "XOR"
	}
	return fmt.Sprintf("GateKind(%d)", int(k))
}

// Inputs returns the required input count.
func (k GateKind) Inputs() int {
	if k == INV || k == BUF {
		return 1
	}
	return 2
}

// SETs returns how many transistors the gate expands to.
func (k GateKind) SETs() int {
	switch k {
	case INV:
		return 2
	case BUF:
		return 4 // two inverters
	case NAND2, NOR2:
		return 4
	case AND2, OR2:
		return 6 // NAND/NOR plus inverter
	case XOR2:
		return 16 // four NANDs
	}
	return 0
}

// Eval computes the boolean function.
func (k GateKind) Eval(in []bool) bool {
	switch k {
	case INV:
		return !in[0]
	case BUF:
		return in[0]
	case NAND2:
		return !(in[0] && in[1])
	case NOR2:
		return !(in[0] || in[1])
	case AND2:
		return in[0] && in[1]
	case OR2:
		return in[0] || in[1]
	case XOR2:
		return in[0] != in[1]
	}
	return false
}

// Gate is one logic gate instance.
type Gate struct {
	Kind GateKind
	Out  string
	In   []string
}

// Netlist is a gate-level circuit.
type Netlist struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []Gate
}

// NumSETs returns the transistor count after expansion.
func (nl *Netlist) NumSETs() int {
	n := 0
	for _, g := range nl.Gates {
		n += g.Kind.SETs()
	}
	return n
}

// NumJunctions returns the tunnel-junction count after expansion (two
// per SET) — the size metric of the paper's Figs. 6 and 7.
func (nl *Netlist) NumJunctions() int { return 2 * nl.NumSETs() }

// Eval computes all wire values for the given input assignment,
// returning the map of every named wire to its logic value. Gates must
// be in topological order (Parse validates this).
func (nl *Netlist) Eval(inputs map[string]bool) (map[string]bool, error) {
	val := map[string]bool{}
	for _, in := range nl.Inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("logicnet: missing input %q", in)
		}
		val[in] = v
	}
	for _, g := range nl.Gates {
		args := make([]bool, len(g.In))
		for i, w := range g.In {
			v, ok := val[w]
			if !ok {
				return nil, fmt.Errorf("logicnet: gate %s reads undefined wire %q", g.Out, w)
			}
			args[i] = v
		}
		val[g.Out] = g.Kind.Eval(args)
	}
	return val, nil
}

// Parse reads a gate netlist in the format
//
//	name  full-adder
//	input a b cin
//	output sum cout
//	w1 = XOR a b
//	sum = XOR w1 cin
//	...
//
// Gates must appear in topological order (every wire defined before
// use); '#' starts a comment.
func Parse(r io.Reader) (*Netlist, error) {
	nl := &Netlist{}
	defined := map[string]bool{}
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "name":
			if len(f) != 2 {
				return nil, fmt.Errorf("line %d: name needs one token", ln)
			}
			nl.Name = f[1]
		case "input":
			for _, w := range f[1:] {
				if defined[w] {
					return nil, fmt.Errorf("line %d: wire %q already defined", ln, w)
				}
				defined[w] = true
				nl.Inputs = append(nl.Inputs, w)
			}
		case "output":
			nl.Outputs = append(nl.Outputs, f[1:]...)
		default:
			// out = KIND in...
			if len(f) < 4 || f[1] != "=" {
				return nil, fmt.Errorf("line %d: expected 'out = KIND inputs...'", ln)
			}
			kind, ok := kindNames[strings.ToUpper(f[2])]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown gate kind %q", ln, f[2])
			}
			ins := f[3:]
			if len(ins) != kind.Inputs() {
				return nil, fmt.Errorf("line %d: %s needs %d inputs, got %d", ln, kind, kind.Inputs(), len(ins))
			}
			out := f[0]
			if defined[out] {
				return nil, fmt.Errorf("line %d: wire %q already defined", ln, out)
			}
			for _, in := range ins {
				if !defined[in] {
					return nil, fmt.Errorf("line %d: wire %q used before definition (netlist must be topological)", ln, in)
				}
			}
			defined[out] = true
			nl.Gates = append(nl.Gates, Gate{Kind: kind, Out: out, In: ins})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(nl.Gates) == 0 {
		return nil, fmt.Errorf("logicnet: no gates")
	}
	for _, out := range nl.Outputs {
		if !defined[out] {
			return nil, fmt.Errorf("logicnet: output %q never defined", out)
		}
	}
	return nl, nil
}

// Params sets the electrical design of the expanded SET logic.
type Params struct {
	RJ float64 // junction resistance (ohms)
	CJ float64 // junction capacitance (farads)
	Cg float64 // input-gate capacitance
	Cb float64 // bias-gate capacitance
	CL float64 // logic-wire load capacitance
	CI float64 // internal (series-stack) node capacitance
	// SupplyFrac sets Vdd as a fraction of e/Csum (< ~0.4 so off
	// transistors stay blockaded).
	SupplyFrac float64
	// Design operating points for the bias solver: the output level
	// (as a fraction of Vdd) at which the conducting transistor's two
	// hops have equal margin, and the residual level of its input wire.
	// The conduction window closes at the Out fraction, so it bounds
	// the reachable logic level.
	PullUpOut, PullUpIn     float64
	PullDownOut, PullDownIn float64
}

// DefaultParams returns the design used by the benchmark suite:
// Csum = 2.1 aF, Vdd ~ 27.5 mV, e/Csum ~ 76 mV, chosen so the per-hop
// energy margins are tens of kT at 1-2 K even under the charge
// back-action of fan-out gates. The 1 fF wire capacitance keeps the
// interconnect granularity e/CL below 1% of the logic swing — the
// metal-wire regime of the paper's Fig. 4 example — which both
// isolates circuit stages (the locality the adaptive solver exploits)
// and puts the compact SPICE model within its validity range.
func DefaultParams() Params {
	return Params{
		RJ:          1e6,
		CJ:          0.29 * units.Atto,
		Cg:          1.38 * units.Atto,
		Cb:          0.14 * units.Atto,
		CL:          1000 * units.Atto,
		CI:          1000 * units.Atto,
		SupplyFrac:  0.36,
		PullUpOut:   0.72,
		PullUpIn:    0.08,
		PullDownOut: 0.28,
		PullDownIn:  0.92,
	}
}

// Csum returns the total SET island capacitance 2*CJ + Cg + Cb.
func (p Params) Csum() float64 { return 2*p.CJ + p.Cg + p.Cb }

// Vdd returns the supply/logic-high voltage for the parameters.
func (p Params) Vdd() float64 { return p.SupplyFrac * units.E / p.Csum() }

// Vp returns the pSET bias-gate voltage, solved so the two hops of the
// pull-up cycle (wire -> island, then island -> Vdd) are both downhill
// with equal margin at the design operating point. The conducting
// island state must satisfy
//
//	e*vout + Ec + Ec_L  <=  e*v0  <=  e*Vdd + Ec
//
// (Ec = e^2/2Csum, Ec_L = e^2/2CL); the bias places v0 at the window's
// midpoint:
//
//	v0 = (vout + Vdd + e/Csum + e/(2*CL)) / 2
//	Vp = (Csum*v0 - CJ*(Vdd + vout) - Cg*vin) / Cb
func (p Params) Vp() float64 {
	cs := p.Csum()
	vdd := p.Vdd()
	vout := p.PullUpOut * vdd
	vin := p.PullUpIn * vdd
	v0 := (vout + vdd + units.E/cs + units.E/(2*p.CL)) / 2
	return (cs*v0 - p.CJ*(vdd+vout) - p.Cg*vin) / p.Cb
}

// Vn returns the nSET bias-gate voltage, the dual solution for the
// pull-down path (Vss -> island -> wire):
//
//	v0 = (vout + e/Csum - e/(2*CL)) / 2
//	Vn = (Csum*v0 - CJ*vout - Cg*vin) / Cb
func (p Params) Vn() float64 {
	cs := p.Csum()
	vdd := p.Vdd()
	vout := p.PullDownOut * vdd
	vin := p.PullDownIn * vdd
	v0 := (vout + units.E/cs - units.E/(2*p.CL)) / 2
	return (cs*v0 - p.CJ*vout - p.Cg*vin) / p.Cb
}

// Expanded is the single-electron realization of a logic netlist.
type Expanded struct {
	Circuit *circuit.Circuit
	// Wire maps every logic wire (inputs included) to its circuit node.
	Wire map[string]int
	// InputNode maps input names to their external nodes.
	InputNode map[string]int
	NumSETs   int
	Params    Params
	// Rails.
	VddNode, VssNode, VpNode, VnNode int
}

// Expand builds the SET circuit. drive supplies the source for each
// input wire; inputs not in the map are tied to logic low (0 V).
func (nl *Netlist) Expand(p Params, drive map[string]circuit.Source) (*Expanded, error) {
	return nl.ExpandWith(p, drive, circuit.BuildOptions{})
}

// ExpandWith is Expand with explicit circuit build options — the entry
// point for building a benchmark circuit on the sparse potential
// engine (2000+ junction circuits skip the dense inverse entirely when
// a truncation threshold is set).
func (nl *Netlist) ExpandWith(p Params, drive map[string]circuit.Source, bo circuit.BuildOptions) (*Expanded, error) {
	c := circuit.New()
	ex := &Expanded{Circuit: c, Wire: map[string]int{}, InputNode: map[string]int{}, Params: p}

	ex.VddNode = c.AddNode("Vdd", circuit.External)
	c.SetSource(ex.VddNode, circuit.DC(p.Vdd()))
	ex.VssNode = c.AddNode("Vss", circuit.External)
	c.SetSource(ex.VssNode, circuit.DC(0))
	ex.VpNode = c.AddNode("Vp", circuit.External)
	c.SetSource(ex.VpNode, circuit.DC(p.Vp()))
	ex.VnNode = c.AddNode("Vn", circuit.External)
	c.SetSource(ex.VnNode, circuit.DC(p.Vn()))

	// Inputs: external nodes, deterministic order.
	for _, in := range nl.Inputs {
		id := c.AddNode("in:"+in, circuit.External)
		src := drive[in]
		if src == nil {
			src = circuit.DC(0)
		}
		c.SetSource(id, src)
		ex.Wire[in] = id
		ex.InputNode[in] = id
	}

	// Logic wires: islands with CL to ground, again deterministic.
	var wires []string
	for _, g := range nl.Gates {
		wires = append(wires, g.Out)
	}
	sort.Strings(wires)
	for _, w := range wires {
		id := c.AddNode("w:"+w, circuit.Island)
		c.AddCap(id, ex.VssNode, p.CL)
		ex.Wire[w] = id
	}

	// addSET wires one transistor: terminals a--island--b, signal gate
	// from the input wire, bias gate to the rail.
	addSET := func(gateWire string, a, b, biasRail int, label string) {
		isl := c.AddNode(label, circuit.Island)
		c.AddJunction(a, isl, p.RJ, p.CJ)
		c.AddJunction(isl, b, p.RJ, p.CJ)
		c.AddCap(ex.Wire[gateWire], isl, p.Cg)
		c.AddCap(biasRail, isl, p.Cb)
		ex.NumSETs++
	}
	// internalNode creates a series-stack island.
	internal := func(label string) int {
		id := c.AddNode(label, circuit.Island)
		c.AddCap(id, ex.VssNode, p.CI)
		return id
	}

	var emitGate func(kind GateKind, out string, in []string, tag string) error
	emitGate = func(kind GateKind, out string, in []string, tag string) error {
		o := ex.Wire[out]
		switch kind {
		case INV:
			addSET(in[0], ex.VddNode, o, ex.VpNode, tag+".p")
			addSET(in[0], o, ex.VssNode, ex.VnNode, tag+".n")
		case BUF:
			mid := tag + "~m"
			ex.Wire[mid] = c.AddNode("w:"+mid, circuit.Island)
			c.AddCap(ex.Wire[mid], ex.VssNode, p.CL)
			if err := emitGate(INV, mid, in, tag+".i0"); err != nil {
				return err
			}
			return emitGate(INV, out, []string{mid}, tag+".i1")
		case NAND2:
			addSET(in[0], ex.VddNode, o, ex.VpNode, tag+".pa")
			addSET(in[1], ex.VddNode, o, ex.VpNode, tag+".pb")
			m := internal(tag + ".m")
			addSET(in[0], o, m, ex.VnNode, tag+".na")
			addSET(in[1], m, ex.VssNode, ex.VnNode, tag+".nb")
		case NOR2:
			m := internal(tag + ".m")
			addSET(in[0], ex.VddNode, m, ex.VpNode, tag+".pa")
			addSET(in[1], m, o, ex.VpNode, tag+".pb")
			addSET(in[0], o, ex.VssNode, ex.VnNode, tag+".na")
			addSET(in[1], o, ex.VssNode, ex.VnNode, tag+".nb")
		case AND2, OR2:
			mid := tag + "~m"
			ex.Wire[mid] = c.AddNode("w:"+mid, circuit.Island)
			c.AddCap(ex.Wire[mid], ex.VssNode, p.CL)
			inner := NAND2
			if kind == OR2 {
				inner = NOR2
			}
			if err := emitGate(inner, mid, in, tag+".g"); err != nil {
				return err
			}
			return emitGate(INV, out, []string{mid}, tag+".i")
		case XOR2:
			// Four NANDs: x = a NAND b; y = a NAND x; z = b NAND x;
			// out = y NAND z.
			mk := func(suffix string) string {
				w := tag + "~" + suffix
				ex.Wire[w] = c.AddNode("w:"+w, circuit.Island)
				c.AddCap(ex.Wire[w], ex.VssNode, p.CL)
				return w
			}
			x, y, z := mk("x"), mk("y"), mk("z")
			if err := emitGate(NAND2, x, in, tag+".n0"); err != nil {
				return err
			}
			if err := emitGate(NAND2, y, []string{in[0], x}, tag+".n1"); err != nil {
				return err
			}
			if err := emitGate(NAND2, z, []string{in[1], x}, tag+".n2"); err != nil {
				return err
			}
			return emitGate(NAND2, out, []string{y, z}, tag+".n3")
		default:
			return fmt.Errorf("logicnet: cannot expand %v", kind)
		}
		return nil
	}

	for gi, g := range nl.Gates {
		if err := emitGate(g.Kind, g.Out, g.In, fmt.Sprintf("g%d", gi)); err != nil {
			return nil, err
		}
	}
	if err := c.BuildWith(bo); err != nil {
		return nil, err
	}
	return ex, nil
}

// LogicThreshold returns the voltage that separates logic low from high
// (half the swing).
func (ex *Expanded) LogicThreshold() float64 { return ex.Params.Vdd() / 2 }
