package logicnet

import (
	"fmt"

	"semsim/internal/circuit"
)

// SRLatch builds a set/reset latch from two cross-coupled NOR gates —
// the single-electron flip-flop the paper's introduction cites as a
// candidate memory element. The gate netlist path cannot express the
// feedback loop (Parse requires acyclic wiring), so the latch is wired
// directly:
//
//	q  = NOR(r, qb)
//	qb = NOR(s, q)
//
// Inputs s and r are external nodes driven by the supplied sources
// (low = inactive); the state lives on the "q" and "qb" wires.
func SRLatch(p Params, s, r circuit.Source) (*Expanded, error) {
	if s == nil || r == nil {
		return nil, fmt.Errorf("logicnet: SRLatch needs both input sources")
	}
	c := circuit.New()
	ex := &Expanded{Circuit: c, Wire: map[string]int{}, InputNode: map[string]int{}, Params: p}

	ex.VddNode = c.AddNode("Vdd", circuit.External)
	c.SetSource(ex.VddNode, circuit.DC(p.Vdd()))
	ex.VssNode = c.AddNode("Vss", circuit.External)
	c.SetSource(ex.VssNode, circuit.DC(0))
	ex.VpNode = c.AddNode("Vp", circuit.External)
	c.SetSource(ex.VpNode, circuit.DC(p.Vp()))
	ex.VnNode = c.AddNode("Vn", circuit.External)
	c.SetSource(ex.VnNode, circuit.DC(p.Vn()))

	sIn := c.AddNode("in:s", circuit.External)
	c.SetSource(sIn, s)
	rIn := c.AddNode("in:r", circuit.External)
	c.SetSource(rIn, r)
	ex.Wire["s"], ex.InputNode["s"] = sIn, sIn
	ex.Wire["r"], ex.InputNode["r"] = rIn, rIn

	q := c.AddNode("w:q", circuit.Island)
	c.AddCap(q, ex.VssNode, p.CL)
	qb := c.AddNode("w:qb", circuit.Island)
	c.AddCap(qb, ex.VssNode, p.CL)
	ex.Wire["q"], ex.Wire["qb"] = q, qb

	// nor wires one NOR gate with inputs (a, b) driving out.
	nor := func(tag string, a, b, out int) {
		addDevice := func(label string, gate, t1, t2, bias int) {
			isl := c.AddNode(label, circuit.Island)
			c.AddJunction(t1, isl, p.RJ, p.CJ)
			c.AddJunction(isl, t2, p.RJ, p.CJ)
			c.AddCap(gate, isl, p.Cg)
			c.AddCap(bias, isl, p.Cb)
			ex.NumSETs++
		}
		m := c.AddNode(tag+".m", circuit.Island)
		c.AddCap(m, ex.VssNode, p.CI)
		addDevice(tag+".pa", a, ex.VddNode, m, ex.VpNode)
		addDevice(tag+".pb", b, m, out, ex.VpNode)
		addDevice(tag+".na", a, out, ex.VssNode, ex.VnNode)
		addDevice(tag+".nb", b, out, ex.VssNode, ex.VnNode)
	}
	nor("sr.q", rIn, qb, q)
	nor("sr.qb", sIn, q, qb)

	if err := c.Build(); err != nil {
		return nil, err
	}
	return ex, nil
}
