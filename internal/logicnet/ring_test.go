package logicnet

import (
	"testing"

	"semsim/internal/solver"
)

func TestRingOscillatorValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := RingOscillator(4, p); err == nil {
		t.Fatal("even stage count accepted")
	}
	if _, err := RingOscillator(1, p); err == nil {
		t.Fatal("single stage accepted")
	}
}

func TestRingOscillatorOscillates(t *testing.T) {
	if testing.Short() {
		t.Skip("long MC run")
	}
	p := DefaultParams()
	ex, err := RingOscillator(3, p)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumSETs != 6 || ex.Circuit.NumJunctions() != 12 {
		t.Fatalf("3-stage ring: %d SETs %d junctions", ex.NumSETs, ex.Circuit.NumJunctions())
	}
	s, err := solver.New(ex.Circuit, solver.Options{Temp: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	node := ex.Wire["r0"]
	s.AddProbe(node)
	if _, err := s.Run(0, 3e-6); err != nil && err != solver.ErrBlockaded {
		t.Fatal(err)
	}
	// Count threshold crossings of the (smoothed-by-eye) waveform: the
	// ring must toggle repeatedly, not latch.
	thr := ex.LogicThreshold()
	w := s.Waveform(node)
	crossings := 0
	above := w[0].V > thr
	for _, sm := range w {
		now := sm.V > thr
		if now != above {
			crossings++
			above = now
		}
	}
	if crossings < 6 {
		t.Fatalf("ring latched: only %d threshold crossings in 3 us", crossings)
	}
}
