package logicnet

import (
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/solver"
)

func TestSRLatchSetResetAndHold(t *testing.T) {
	if testing.Short() {
		t.Skip("long MC run")
	}
	p := DefaultParams()
	vdd := p.Vdd()
	// Pulse sequence: set at 0.5 us, reset at 3 us; hold windows of
	// >1 us in between probe the bistability.
	pulse := func(at float64) circuit.PWL {
		return circuit.PWL{
			T:    []float64{0, at, at + 2e-9, at + 400e-9, at + 402e-9},
			Volt: []float64{0, 0, vdd, vdd, 0},
		}
	}
	ex, err := SRLatch(p, pulse(0.5e-6), pulse(3e-6))
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumSETs != 8 {
		t.Fatalf("SR latch should use 8 SETs, got %d", ex.NumSETs)
	}
	s, err := solver.New(ex.Circuit, solver.Options{Temp: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := ex.Wire["q"]
	qb := ex.Wire["qb"]
	thr := ex.LogicThreshold()

	at := func(tstop float64) (float64, float64) {
		if _, err := s.Run(0, tstop); err != nil && err != solver.ErrBlockaded {
			t.Fatal(err)
		}
		return s.Potential(q), s.Potential(qb)
	}

	// After the set pulse and a long hold, q must be high and stay high.
	vq, vqb := at(1.5e-6)
	if vq < thr || vqb > thr {
		t.Fatalf("after SET: q=%.3g qb=%.3g (thr %.3g)", vq, vqb, thr)
	}
	vq2, _ := at(2.8e-6)
	if vq2 < thr {
		t.Fatalf("latch lost the SET state during hold: q=%.3g", vq2)
	}
	// After the reset pulse, q low / qb high, and it holds.
	vq3, vqb3 := at(4.2e-6)
	if vq3 > thr || vqb3 < thr {
		t.Fatalf("after RESET: q=%.3g qb=%.3g", vq3, vqb3)
	}
	vq4, _ := at(5.5e-6)
	if vq4 > thr {
		t.Fatalf("latch lost the RESET state during hold: q=%.3g", vq4)
	}
}

func TestSRLatchValidation(t *testing.T) {
	if _, err := SRLatch(DefaultParams(), nil, circuit.DC(0)); err == nil {
		t.Fatal("nil source accepted")
	}
}
