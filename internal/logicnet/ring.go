package logicnet

import (
	"fmt"

	"semsim/internal/circuit"
)

// RingOscillator builds a free-running ring of `stages` SET inverters
// (stages must be odd and >= 3) — the classic self-timed benchmark the
// gate-netlist path cannot express because Parse requires acyclic
// wiring. The returned Expanded maps the ring wires as "r0" .. "r<n-1>".
//
// The oscillation period is approximately 2 * stages * t_stage, with
// t_stage the single-inverter delay for the chosen parameters; being a
// Monte Carlo circuit, the period jitters cycle to cycle (which is
// itself physical: single-electron ring oscillators are phase-diffusive).
func RingOscillator(stages int, p Params) (*Expanded, error) {
	if stages < 3 || stages%2 == 0 {
		return nil, fmt.Errorf("logicnet: ring oscillator needs an odd stage count >= 3, got %d", stages)
	}
	c := circuit.New()
	ex := &Expanded{Circuit: c, Wire: map[string]int{}, InputNode: map[string]int{}, Params: p}

	ex.VddNode = c.AddNode("Vdd", circuit.External)
	c.SetSource(ex.VddNode, circuit.DC(p.Vdd()))
	ex.VssNode = c.AddNode("Vss", circuit.External)
	c.SetSource(ex.VssNode, circuit.DC(0))
	ex.VpNode = c.AddNode("Vp", circuit.External)
	c.SetSource(ex.VpNode, circuit.DC(p.Vp()))
	ex.VnNode = c.AddNode("Vn", circuit.External)
	c.SetSource(ex.VnNode, circuit.DC(p.Vn()))

	wires := make([]int, stages)
	for i := range wires {
		name := fmt.Sprintf("r%d", i)
		wires[i] = c.AddNode("w:"+name, circuit.Island)
		c.AddCap(wires[i], ex.VssNode, p.CL)
		ex.Wire[name] = wires[i]
	}
	for i := 0; i < stages; i++ {
		in := wires[(i+stages-1)%stages]
		out := wires[i]
		tag := fmt.Sprintf("ring%d", i)
		// pSET: Vdd -> out, gated by the previous stage.
		isl := c.AddNode(tag+".p", circuit.Island)
		c.AddJunction(ex.VddNode, isl, p.RJ, p.CJ)
		c.AddJunction(isl, out, p.RJ, p.CJ)
		c.AddCap(in, isl, p.Cg)
		c.AddCap(ex.VpNode, isl, p.Cb)
		// nSET: out -> Vss.
		isl = c.AddNode(tag+".n", circuit.Island)
		c.AddJunction(out, isl, p.RJ, p.CJ)
		c.AddJunction(isl, ex.VssNode, p.RJ, p.CJ)
		c.AddCap(in, isl, p.Cg)
		c.AddCap(ex.VnNode, isl, p.Cb)
		ex.NumSETs += 2
	}
	if err := c.Build(); err != nil {
		return nil, err
	}
	return ex, nil
}
