package jobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"semsim/internal/netlist"
	"semsim/internal/obs"
)

// SubmitRequest is the POST /api/v1/jobs body: the deck text (the
// SPICE-like input-file dialect, see docs/DECK.md) plus optional engine
// overrides.
type SubmitRequest struct {
	// Deck is the full input deck as text.
	Deck string `json:"deck"`
	// Overrides are engine knobs applied on top of the deck.
	Overrides Overrides `json:"overrides"`
}

// SubmitResponse answers a job submission.
type SubmitResponse struct {
	// ID identifies the job for the status/result/cancel endpoints.
	ID string `json:"id"`
	// Points and RunsPerPoint size the work the deck expanded into.
	Points       int `json:"points"`
	RunsPerPoint int `json:"runs_per_point"`
}

// ResultResponse answers GET /api/v1/jobs/{id}/result.
type ResultResponse struct {
	// ID echoes the job id.
	ID string `json:"id"`
	// Points are the folded operating points in sweep order.
	Points []Point `json:"points"`
}

// NewHandler exposes an Engine over HTTP as a JSON API, with the
// observability routes of o (when non-nil) mounted beside it:
//
//	POST /api/v1/jobs             submit a deck        (SubmitRequest)
//	GET  /api/v1/jobs             list job statuses    ([]JobStatus)
//	GET  /api/v1/jobs/{id}        one job's status     (JobStatus)
//	GET  /api/v1/jobs/{id}/result completed points     (ResultResponse)
//	POST /api/v1/jobs/{id}/cancel abort a job
//	GET  /api/v1/jobs/{id}/events live progress stream (Server-Sent Events)
//	GET  /api/v1/jobs/{id}/trace  merged per-worker Chrome trace
//	GET  /healthz                 liveness probe
//	/metrics /trace /heatmap /debug/pprof/   obs routes (o != nil)
//
// The events and trace routes are also reachable at the short aliases
// /jobs/{id}/events and /jobs/{id}/trace (curl-friendly).
//
// The event stream replays from the job's retained ring: a reconnecting
// client sends the standard Last-Event-ID header (or ?after=N) and
// receives every retained event with a greater sequence number. A slow
// client never stalls the engine — its per-subscriber ring drops oldest
// events instead, and the stream reports the gap as an
// `event: dropped` record.
func NewHandler(e *Engine, o *obs.Observer) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := json.NewEncoder(w).Encode(v); err != nil {
			// The client hung up mid-response; nothing to clean up.
			return
		}
	}
	writeErr := func(w http.ResponseWriter, status int, format string, args ...any) {
		writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
	}
	jobOr404 := func(w http.ResponseWriter, r *http.Request) *Job {
		j := e.Job(r.PathValue("id"))
		if j == nil {
			writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		}
		return j
	}

	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "malformed request body: %v", err)
			return
		}
		d, err := netlist.Parse(strings.NewReader(req.Deck))
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "deck does not parse: %v", err)
			return
		}
		j, err := e.Submit(d, req.Overrides)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		st := e.Status(j)
		writeJSON(w, http.StatusAccepted, SubmitResponse{
			ID: j.ID(), Points: st.Points, RunsPerPoint: st.RunsPer,
		})
	})

	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Jobs())
	})

	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if j := jobOr404(w, r); j != nil {
			writeJSON(w, http.StatusOK, e.Status(j))
		}
	})

	mux.HandleFunc("GET /api/v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j := jobOr404(w, r)
		if j == nil {
			return
		}
		pts, err := e.Result(j)
		if err != nil {
			// 409: the resource exists but is not in a state to serve this.
			writeErr(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, ResultResponse{ID: j.ID(), Points: pts})
	})

	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if j := jobOr404(w, r); j != nil {
			e.Cancel(j.ID())
			writeJSON(w, http.StatusOK, e.Status(j))
		}
	})

	events := func(w http.ResponseWriter, r *http.Request) {
		if j := jobOr404(w, r); j != nil {
			serveJobEvents(e, j, w, r)
		}
	}
	trace := func(w http.ResponseWriter, r *http.Request) {
		j := jobOr404(w, r)
		if j == nil {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteMergedChromeTrace(w, j.trace.lanes()); err != nil {
			// The client hung up mid-response; nothing to clean up.
			return
		}
	}
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", events)
	mux.HandleFunc("GET /jobs/{id}/events", events)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", trace)
	mux.HandleFunc("GET /jobs/{id}/trace", trace)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	if o != nil {
		mux.Handle("/", obs.Handler(o))
	}
	return mux
}

// serveJobEvents streams one job's bus topic as Server-Sent Events
// until the job reaches a terminal state (the terminal state event is
// always delivered first) or the client disconnects. Replay honors the
// Last-Event-ID header and the ?after=N query; ring overwrites on a
// slow connection surface as `event: dropped` records carrying the gap
// size, never as a stalled engine.
func serveJobEvents(e *Engine, j *Job, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "jobs: event streaming needs a flushable connection", http.StatusInternalServerError)
		return
	}
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	sub := e.bus.Subscribe(j.id, after)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var reported uint64 // subscriber drops already told to this client
	drain := func() bool {
		wrote := false
		for {
			if d := sub.Dropped(); d > reported {
				fmt.Fprintf(w, "event: dropped\ndata: {\"job\":%q,\"dropped\":%d}\n\n", j.id, d-reported)
				reported = d
				wrote = true
			}
			ev, ok := sub.Next()
			if !ok {
				break
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data); err != nil {
				return false
			}
			wrote = true
		}
		if wrote {
			fl.Flush()
		}
		return true
	}
	for {
		if !drain() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.completed:
			// The terminal state event was published before completed
			// closed, so one final drain delivers it.
			drain()
			return
		case <-sub.Ready():
		}
	}
}
