package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"semsim/internal/obs"
)

// sseEvent is one parsed Server-Sent Events frame.
type sseEvent struct {
	id   uint64
	typ  string
	data string
}

// openSSE starts a GET on the job's event stream and returns the
// response body (caller closes). lastID, when non-empty, is sent as the
// standard Last-Event-ID header.
func openSSE(t *testing.T, ctx context.Context, url, lastID string) io.ReadCloser {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("event stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("event stream Content-Type %q", ct)
	}
	return resp.Body
}

// scanSSE parses frames from r, calling each per frame, until EOF or
// each returns false. It returns the scanner error (nil on EOF).
func scanSSE(r io.Reader, each func(ev sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.typ != "" || ev.data != "" {
				if !each(ev) {
					return nil
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id:"):
			ev.id, _ = strconv.ParseUint(strings.TrimSpace(line[len("id:"):]), 10, 64)
		case strings.HasPrefix(line, "event:"):
			ev.typ = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			ev.data = strings.TrimSpace(line[len("data:"):])
		}
	}
	return sc.Err()
}

// collectSSE reads the stream to its end and returns every frame.
func collectSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	if err := scanSSE(r, func(ev sseEvent) bool { out = append(out, ev); return true }); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return out
}

// stateOf decodes the "state" field of an event payload.
func stateOf(t *testing.T, ev sseEvent) string {
	t.Helper()
	var f struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal([]byte(ev.data), &f); err != nil {
		t.Fatalf("event %q payload %q: %v", ev.typ, ev.data, err)
	}
	return f.State
}

// A full lifecycle over a real simulation: the stream replays the
// queued state, carries every task completion and checkpoint, ends with
// the terminal state, and sequence ids are strictly increasing.
func TestSSELifecycleToCompletion(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 2, CheckpointDir: t.TempDir(), CheckpointEvery: 1})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)

	j, err := e.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	body := openSSE(t, context.Background(), srv.URL+"/api/v1/jobs/"+j.ID()+"/events", "")
	defer body.Close()
	events := collectSSE(t, body)
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}

	var lastID uint64
	states := map[string]bool{}
	tasksDone := 0
	for _, ev := range events {
		if ev.typ != "dropped" { // gap records carry no sequence id
			if ev.id <= lastID {
				t.Fatalf("event ids not strictly increasing: %d after %d (%+v)", ev.id, lastID, ev)
			}
			lastID = ev.id
		}
		if ev.typ == "state" {
			states[stateOf(t, ev)] = true
		}
		if ev.typ == "task_done" {
			tasksDone++
		}
	}
	last := events[len(events)-1]
	if last.typ != "state" || stateOf(t, last) != string(StateDone) {
		t.Fatalf("stream ended with %q %q, want terminal state done", last.typ, last.data)
	}
	for _, want := range []string{string(StateQueued), string(StateRunning), string(StateDone)} {
		if !states[want] {
			t.Fatalf("stream never announced state %q (saw %v)", want, states)
		}
	}
	if tasksDone != 6 {
		t.Fatalf("stream carried %d task_done events, want 6 (3 points x 2 runs)", tasksDone)
	}
	waitState(t, e, j, StateDone)
}

// A client that disconnects mid-stream must not disturb the engine: the
// handler returns (srv.Close in cleanup would hang forever on a leaked
// handler) and the job still runs to completion.
func TestSSEClientDisconnectMidStream(t *testing.T) {
	block := make(chan struct{})
	e := scriptedEngine(t, EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return runResult{Current: map[int]float64{1: 0, 2: 0}}, nil
		})
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)

	j := submit(t, e)
	ctx, cancel := context.WithCancel(context.Background())
	body := openSSE(t, ctx, srv.URL+"/api/v1/jobs/"+j.ID()+"/events", "")
	defer body.Close()

	// Read one frame (the replayed queued state), then hang up.
	got := false
	_ = scanSSE(body, func(ev sseEvent) bool { got = true; return false })
	if !got {
		t.Fatal("no event arrived before the disconnect")
	}
	cancel()

	// The engine never noticed: tasks unblock and the job completes.
	close(block)
	waitState(t, e, j, StateDone)
}

// Last-Event-ID reconnection replays exactly the retained events after
// the given sequence number — no duplicates, no holes — and still ends
// with the terminal state.
func TestSSELastEventIDReplay(t *testing.T) {
	e := scriptedEngine(t, EngineConfig{Workers: 2},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			return runResult{Current: map[int]float64{1: 1, 2: 1}}, nil
		})
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)

	j := submit(t, e)
	waitState(t, e, j, StateDone)
	url := srv.URL + "/api/v1/jobs/" + j.ID() + "/events"

	body := openSSE(t, context.Background(), url, "")
	full := collectSSE(t, body)
	body.Close()
	if len(full) < 4 {
		t.Fatalf("completed job replayed only %d events", len(full))
	}

	// Reconnect from the midpoint, as a real client would after losing
	// its connection: the tail must match the full stream exactly.
	mid := full[len(full)/2]
	body = openSSE(t, context.Background(), url, strconv.FormatUint(mid.id, 10))
	tail := collectSSE(t, body)
	body.Close()
	want := full[len(full)/2+1:]
	if len(tail) != len(want) {
		t.Fatalf("replay after id %d returned %d events, want %d", mid.id, len(tail), len(want))
	}
	for i := range want {
		if tail[i] != want[i] {
			t.Fatalf("replayed event %d differs:\n got %+v\nwant %+v", i, tail[i], want[i])
		}
	}
	if last := tail[len(tail)-1]; last.typ != "state" || stateOf(t, last) != string(StateDone) {
		t.Fatalf("replayed stream ended with %+v, want terminal state", last)
	}

	// The ?after=N query form behaves identically (for clients that
	// cannot set headers).
	resp, err := http.Get(url + "?after=" + strconv.FormatUint(mid.id, 10))
	if err != nil {
		t.Fatal(err)
	}
	qtail := collectSSE(t, resp.Body)
	resp.Body.Close()
	if len(qtail) != len(want) {
		t.Fatalf("?after replay returned %d events, want %d", len(qtail), len(want))
	}
}

// A subscriber ring smaller than the retained history forces drops, and
// the stream accounts for them: an `event: dropped` record reports the
// gap before the surviving (newest) events, which still end terminal.
func TestSSESlowSubscriberDropAccounting(t *testing.T) {
	e := scriptedEngine(t, EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			return runResult{Current: map[int]float64{1: 1, 2: 1}}, nil
		})
	// Tiny per-subscriber rings (the engine default is 256) so replaying
	// the job's history overflows them. Set before Submit: the workers
	// observe the field through the queue's happens-before edge.
	e.bus = obs.NewBus(1024, 2)
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)

	j := submit(t, e)
	waitState(t, e, j, StateDone)
	published := e.bus.Last(j.ID())
	if published <= 2 {
		t.Fatalf("job published only %d events", published)
	}

	body := openSSE(t, context.Background(), srv.URL+"/api/v1/jobs/"+j.ID()+"/events", "")
	events := collectSSE(t, body)
	body.Close()

	if len(events) != 3 { // one gap record + the two ring survivors
		t.Fatalf("slow subscriber got %d events, want 3: %+v", len(events), events)
	}
	if events[0].typ != "dropped" {
		t.Fatalf("gap record not first: %+v", events[0])
	}
	var gap struct {
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(events[0].data), &gap); err != nil {
		t.Fatal(err)
	}
	if gap.Dropped != published-2 {
		t.Fatalf("gap record reports %d dropped, want %d", gap.Dropped, published-2)
	}
	if events[1].id != published-1 || events[2].id != published {
		t.Fatalf("survivors are %d,%d, want the newest %d,%d", events[1].id, events[2].id, published-1, published)
	}
	if last := events[2]; last.typ != "state" || stateOf(t, last) != string(StateDone) {
		t.Fatalf("stream ended with %+v, want terminal state", last)
	}
}

// Stream correctness across an engine restart: draining the first
// engine ends the stream with the interrupted terminal state, and the
// resubmission's stream on a fresh engine over the same checkpoint
// directory announces the resumed tasks before finishing.
func TestSSEStreamAcrossEngineRestartResume(t *testing.T) {
	dir := t.TempDir()
	e1 := NewEngine(EngineConfig{Workers: 2, CheckpointDir: dir, CheckpointEvery: 1})
	srv1 := httptest.NewServer(NewHandler(e1, nil))
	t.Cleanup(srv1.Close)

	j1, err := e1.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	body := openSSE(t, context.Background(), srv1.URL+"/api/v1/jobs/"+j1.ID()+"/events", "")

	// Drain immediately: in-flight tasks checkpoint and stop, and the
	// stream must deliver the terminal state before ending.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	events := collectSSE(t, body)
	body.Close()
	if len(events) == 0 {
		t.Fatal("drained stream delivered no events")
	}
	last := events[len(events)-1]
	if last.typ != "state" {
		t.Fatalf("drained stream ended with %q, want a state event", last.typ)
	}
	switch stateOf(t, last) {
	case string(StateDone):
		t.Skip("job finished before the drain; nothing to resume")
	case string(StateInterrupted):
	default:
		t.Fatalf("drained stream ended in state %q", stateOf(t, last))
	}

	e2 := NewEngine(EngineConfig{Workers: 2, CheckpointDir: dir, CheckpointEvery: 1})
	t.Cleanup(e2.Close)
	srv2 := httptest.NewServer(NewHandler(e2, nil))
	t.Cleanup(srv2.Close)
	j2, err := e2.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	body = openSSE(t, context.Background(), srv2.URL+"/api/v1/jobs/"+j2.ID()+"/events", "")
	events = collectSSE(t, body)
	body.Close()

	resumes := 0
	for _, ev := range events {
		if ev.typ == "resume" {
			resumes++
		}
	}
	if resumes == 0 {
		t.Fatal("resubmitted job's stream announced no resumed tasks")
	}
	if last := events[len(events)-1]; last.typ != "state" || stateOf(t, last) != string(StateDone) {
		t.Fatalf("resumed stream ended with %+v, want terminal done", last)
	}
	waitState(t, e2, j2, StateDone)
}

// The semsim -follow client renders the stream and exits on the
// terminal state.
func TestFollowClientRendersStream(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 2, CheckpointDir: t.TempDir(), CheckpointEvery: 1})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)

	j, err := e.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := Follow(ctx, srv.URL+"/api/v1/jobs/"+j.ID(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, fmt.Sprintf("%s: done", j.ID())) {
		t.Fatalf("follow output missing terminal line:\n%s", out)
	}
	if !strings.Contains(out, "task p") {
		t.Fatalf("follow output missing task lines:\n%s", out)
	}
}

// The merged trace endpoint serves valid Chrome trace JSON with one
// lane per worker plus the job lane.
func TestHTTPMergedTrace(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 2, CheckpointDir: t.TempDir(), CheckpointEvery: 1})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)

	j, err := e.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, j, StateDone)

	for _, path := range []string{"/api/v1/jobs/" + j.ID() + "/trace", "/jobs/" + j.ID() + "/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(blob, &doc); err != nil {
			t.Fatalf("%s: trace is not valid JSON: %v", path, err)
		}
		names := map[string]bool{}
		spans := 0
		for _, ev := range doc.TraceEvents {
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				names[args["name"].(string)] = true
			}
			if ev["ph"] == "X" {
				spans++
			}
		}
		for _, lane := range []string{"job", "worker 0", "worker 1"} {
			if !names[lane] {
				t.Fatalf("%s: trace missing lane %q (have %v)", path, lane, names)
			}
		}
		// 6 task spans at minimum (plus queued/running/checkpoint spans).
		if spans < 6 {
			t.Fatalf("%s: trace has %d complete spans, want >= 6", path, spans)
		}
	}
}
