package jobs

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTestCheckpoint produces a valid on-disk checkpoint by draining a
// real run at its first refresh boundary.
func writeTestCheckpoint(t *testing.T, dir string) string {
	t.Helper()
	d := parseDeck(t, testDeck)
	closed := make(chan struct{})
	close(closed)
	if _, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
		Dir: dir, Every: 1, Resume: true, Workers: 1, Stop: closed,
	}); err != ErrInterrupted {
		t.Fatalf("expected drain, got %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint written (%v)", err)
	}
	return files[0]
}

// Corrupted checkpoints — truncated, bit-flipped, wrong format or
// version — must be rejected loudly, never silently resumed from.
func TestLoadRejectsCorruptCheckpoints(t *testing.T) {
	path := writeTestCheckpoint(t, t.TempDir())
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadRunFile(path); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	damage := map[string]func(t *testing.T, p string){
		"truncated": func(t *testing.T, p string) {
			if err := os.WriteFile(p, blob[:len(blob)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bit flip": func(t *testing.T, p string) {
			bad := append([]byte(nil), blob...)
			// Flip a digit inside the payload, beyond the header fields.
			for i := len(bad) / 2; i < len(bad); i++ {
				if bad[i] >= '1' && bad[i] <= '8' {
					bad[i]++
					break
				}
			}
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"foreign json": func(t *testing.T, p string) {
			if err := os.WriteFile(p, []byte(`{"hello":"world"}`), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"not json": func(t *testing.T, p string) {
			if err := os.WriteFile(p, []byte("\x00\x01garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"wrong version": func(t *testing.T, p string) {
			var f runFile
			if err := json.Unmarshal(blob, &f); err != nil {
				t.Fatal(err)
			}
			f.Version = 99
			sum, err := f.checksum()
			if err != nil {
				t.Fatal(err)
			}
			f.Checksum = sum
			out, err := json.Marshal(&f)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, out, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(t *testing.T, p string) {
			if err := os.WriteFile(p, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range damage {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "bad.ckpt")
			corrupt(t, p)
			if _, err := loadRunFile(p); err == nil {
				t.Fatalf("%s checkpoint accepted", name)
			}
			// The deck runner must surface the corruption, not restart
			// silently: losing checkpointed work without saying so would
			// mask data loss.
			d := parseDeck(t, testDeck)
			key, err := deckKey(d, Overrides{Parallel: 1})
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Dir(p)
			if err := os.Rename(p, checkpointPath(dir, key, 0, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
				Dir: dir, Resume: true, Workers: 1,
			}); err == nil {
				t.Fatalf("deck resumed over a %s checkpoint", name)
			}
		})
	}
}

// SaveSim/LoadSim round-trip through the same envelope.
func TestSaveSimRoundTrip(t *testing.T) {
	src := writeTestCheckpoint(t, t.TempDir())
	f, err := loadRunFile(src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sim.ckpt")
	if err := SaveSim(path, f.Solver); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadSim(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(f.Solver)
	b, _ := json.Marshal(cp)
	if string(a) != string(b) {
		t.Fatal("SaveSim/LoadSim altered the solver snapshot")
	}
}

// killDeck is a longer sweep for the SIGKILL test: slow enough that the
// parent reliably lands a kill mid-run, checkpointed often.
const killDeck = `
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.004
record 1
jumps 60000
sweep 2 0.02 0.02
symm 1
seed 7
temp 5
adaptive 0.05
refresh 256
`

// TestHelperKillDeck is not a test: it is the subprocess body for
// TestKillMinusNineResume, executing killDeck with checkpointing until
// the parent SIGKILLs it.
func TestHelperKillDeck(t *testing.T) {
	dir := os.Getenv("SEMSIM_JOBS_KILL_DIR")
	if dir == "" {
		t.Skip("subprocess helper; driven by TestKillMinusNineResume")
	}
	d := parseDeck(t, killDeck)
	if _, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
		Dir: dir, Every: 1, Resume: true, Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestKillMinusNineResume proves the crash-safety claim end to end: a
// process running a checkpointed deck is SIGKILLed (no cleanup, no
// signal handler) at arbitrary instants, repeatedly; resuming from the
// surviving files yields results bit-identical to a never-killed run.
func TestKillMinusNineResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	d := parseDeck(t, killDeck)
	ref, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	kills := 0
	for attempt := 0; attempt < 4; attempt++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperKillDeck$")
		cmd.Env = append(os.Environ(), "SEMSIM_JOBS_KILL_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		// Kill as soon as checkpoint files exist — mid-simulation, at a
		// point no code path chose.
		deadline := time.After(30 * time.Second)
		armed := false
	watch:
		for {
			select {
			case err := <-exited:
				if err != nil {
					t.Fatalf("helper failed on its own: %v", err)
				}
				break watch // finished before we could kill it
			case <-deadline:
				cmd.Process.Kill()
				t.Fatal("helper never wrote a checkpoint")
			default:
			}
			if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) > 0 {
				if armed {
					cmd.Process.Kill() // SIGKILL: no deferred cleanup runs
					<-exited
					kills++
					break watch
				}
				// Arm one poll late so some attempts kill during a write.
				armed = true
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if kills == 0 {
		t.Skip("helper always finished before the kill landed; nothing proven")
	}
	t.Logf("landed %d SIGKILLs", kills)

	got, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
		Dir: dir, Every: 1, Resume: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, ref, got, "after SIGKILL")
}
