package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"

	"semsim/internal/netlist"
	"semsim/internal/noise"
	"semsim/internal/obs"
	"semsim/internal/solver"
)

// Phase names stored in checkpoint envelopes. A deck run has two
// phases — the discarded warm-up transient and the measured window —
// and the phase must be part of the snapshot: resuming a warm-phase
// checkpoint replays the rest of the warm-up and the ResetMeasurement
// call before measuring, exactly as the uninterrupted run would.
const (
	phaseWarm    = "warm"
	phaseMeasure = "measure"
	phaseDone    = "done"   // task finished; the envelope carries its result, not solver state
	phaseSingle  = "single" // RunSim / SaveSim snapshots outside deck execution
)

// runResult is one (point, run) task's contribution before folding:
// raw measured currents (not yet divided by the run count) and, for
// noise-recording decks, the run's finalized noise statistics, both
// keyed by netlist junction id.
type runResult struct {
	Events    uint64
	Current   map[int]float64
	Blockaded bool
	Noise     map[int]noise.RunStats `json:",omitempty"`
}

// transientError marks failures worth retrying with backoff — so far,
// checkpoint I/O (a full disk or flaky NFS mount heals; a physics error
// does not).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// isTransient reports whether err is worth a bounded retry.
func isTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// phaseRunner advances one simulation through budgeted, horizon-capped
// phases in refresh-period chunks, persisting aligned checkpoints. The
// chunking is invisible to the physics: Run's horizon is an absolute
// simulated-time cap, so re-issuing Run with the same horizon after
// every chunk computes the same event caps, draws the same random
// numbers and applies the same events as one monolithic call.
type phaseRunner struct {
	s     *solver.Sim
	ctx   context.Context
	stop  <-chan struct{}
	path  string // checkpoint file; "" disables persistence
	every uint64 // events between checkpoints (refresh-aligned)
	rp    uint64 // the solver's full-refresh period
	key   string
	point int
	run   int
	hooks *taskHooks // nil-safe task telemetry (engine-run tasks only)

	lastCk uint64 // Stats.Events at the last persisted checkpoint
}

func newPhaseRunner(ctx context.Context, s *solver.Sim, cfg RunConfig) *phaseRunner {
	rp := uint64(s.RefreshPeriod())
	if rp == 0 {
		rp = 1
	}
	every := uint64(cfg.Every)
	if every == 0 {
		every = defaultCheckpointEvery
	}
	// Round the cadence up to a whole number of refresh periods: those
	// are the only event counts where a snapshot resumes bit-identically
	// in every solver mode.
	every = (every + rp - 1) / rp * rp
	return &phaseRunner{
		s: s, ctx: ctx, stop: cfg.Stop, hooks: cfg.hooks,
		every: every, rp: rp,
		lastCk: s.Stats().Events,
	}
}

func (p *phaseRunner) draining() bool {
	if p.stop == nil {
		return false
	}
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

// save persists the current solver state under the given phase label.
// The caller must only invoke it on a refresh boundary.
func (p *phaseRunner) save(phase string, phaseStart uint64) error {
	cp, err := p.s.Checkpoint()
	if err != nil {
		return err
	}
	f := &runFile{
		Key: p.key, Point: p.point, Run: p.run,
		Phase: phase, PhaseStart: phaseStart, Solver: cp,
	}
	st, err := saveRunFileTimed(p.path, f)
	if err != nil {
		return &transientError{err}
	}
	p.lastCk = p.s.Stats().Events
	if o := obs.Global(); o != nil {
		o.Registry().Counter("jobs.checkpoints_written").Add(1)
	}
	p.hooks.checkpoint(st)
	return nil
}

// runPhase advances the simulation until it has applied budget events
// within the phase (counted from phaseStart; 0 = no event cap) or the
// simulated time reaches horizon (absolute; 0 = no time cap),
// checkpointing on the way. It returns ErrInterrupted after persisting
// a final snapshot when the stop channel closes, and the context error
// when ctx is canceled (hard stop, no snapshot).
func (p *phaseRunner) runPhase(phase string, phaseStart, budget uint64, horizon float64) error {
	if budget == 0 && horizon <= 0 {
		return nil // nothing bounds this phase; it is empty by construction
	}
	for {
		events := p.s.Stats().Events
		done := events - phaseStart
		if budget > 0 && done >= budget {
			return nil
		}
		if horizon > 0 && p.s.Time() >= horizon {
			return nil
		}
		// Persist when a cadence interval elapsed or a drain asked us to
		// stop — but only on a refresh boundary, where the snapshot is
		// provably bit-identical resumable. A drain observed between
		// boundaries lets the current period finish first (at most one
		// refresh period of extra work).
		if p.path != "" && events%p.rp == 0 && events > p.lastCk {
			draining := p.draining()
			if draining || events-p.lastCk >= p.every {
				if err := p.save(phase, phaseStart); err != nil {
					return err
				}
			}
			if draining {
				return ErrInterrupted
			}
		} else if p.path == "" && p.draining() {
			// Nothing to persist; honor the drain immediately.
			return ErrInterrupted
		}
		// The hard stop comes after the drain block so a runner whose
		// drain signal is the context (RunSim) still persists its final
		// snapshot before reporting.
		if err := p.ctx.Err(); err != nil {
			return err
		}
		// Advance to the next refresh boundary (or to the phase budget if
		// it lands earlier). Run returning short of the chunk means the
		// time horizon was reached.
		chunk := p.rp - events%p.rp
		if budget > 0 && done+chunk > budget {
			chunk = budget - done
		}
		n, err := p.s.Run(chunk, horizon)
		p.hooks.chunk(n)
		if err != nil {
			return err
		}
		if n < chunk {
			return nil
		}
	}
}

// deckSession is one worker's compile-once cache: the compiled circuit
// and solver of the most recent deck it executed. Sessions persist
// across tasks (and, in the Engine, across jobs) so a deck's topology,
// capacitance factorization, truncated C^-1 rows and rate tables are
// built once per worker instead of once per (point, run). Reuse is
// bit-identical to a fresh build — solver.Reset's contract — so the
// cache is purely an amortization.
type deckSession struct {
	key string
	cc  *netlist.Compiled
	sim *solver.Sim
}

// Close releases the cached solver. Safe on the zero value.
func (ds *deckSession) Close() {
	if ds.sim != nil {
		ds.sim.Close()
		ds.sim = nil
	}
	ds.cc = nil
	ds.key = ""
}

// acquire returns a simulator ready to run at the given seed and DC
// bias (netlist node -> volts), reusing the cached build when the deck
// key and worker count match and rebuilding otherwise. The session key
// extends the deck key with Parallel because the deck key deliberately
// excludes it (it never changes the trajectory) while the solver build
// does depend on it.
func (ds *deckSession) acquire(d *netlist.Deck, key string, opt solver.Options, over map[int]float64) (*solver.Sim, *netlist.Compiled, error) {
	sessKey := fmt.Sprintf("%s|p%d", key, opt.Parallel)
	if ds.sim == nil || ds.key != sessKey {
		ds.Close()
		cc, err := d.Compile(nil)
		if err != nil {
			return nil, nil, err
		}
		s, err := solver.New(cc.Circuit, opt)
		if err != nil {
			return nil, nil, err
		}
		ds.key, ds.cc, ds.sim = sessKey, cc, s
		if o := obs.Global(); o != nil {
			o.Registry().Counter("jobs.session_builds").Add(1)
		}
	} else if o := obs.Global(); o != nil {
		o.Registry().Counter("jobs.session_reuses").Add(1)
	}
	circOver := make(map[int]float64, len(over))
	for n, v := range over {
		cn, ok := ds.cc.Node[n]
		if !ok {
			return nil, nil, fmt.Errorf("jobs: DC override of unknown netlist node %d", n)
		}
		circOver[cn] = v
	}
	if err := ds.sim.Reset(opt.Seed, circOver); err != nil {
		return nil, nil, err
	}
	return ds.sim, ds.cc, nil
}

// noiseConfig translates the deck's noise/fano directives into a
// recorder configuration over circuit junction ids. A junction with
// both directives gets one accumulator carrying the ω grid and the
// fano window; ov.FanoWindow > 0 fixes every window, overriding deck
// windows and the auto calibration.
func noiseConfig(spec *netlist.Spec, ov Overrides, cc *netlist.Compiled) (noise.Config, error) {
	var cfg noise.Config
	at := map[int]int{} // netlist junction id -> cfg.Juncs index
	add := func(j int) (int, error) {
		if i, ok := at[j]; ok {
			return i, nil
		}
		cj, ok := cc.Junc[j]
		if !ok {
			return 0, fmt.Errorf("semsim: deck records noise on unknown junction %d", j)
		}
		at[j] = len(cfg.Juncs)
		cfg.Juncs = append(cfg.Juncs, noise.JuncConfig{Junc: cj})
		return at[j], nil
	}
	for _, ns := range spec.NoiseJuncs {
		i, err := add(ns.Junc)
		if err != nil {
			return noise.Config{}, err
		}
		cfg.Juncs[i].Omegas = append([]float64(nil), ns.Omegas...)
	}
	for _, fs := range spec.FanoJuncs {
		i, err := add(fs.Junc)
		if err != nil {
			return noise.Config{}, err
		}
		cfg.Juncs[i].Window = fs.Window
	}
	if ov.FanoWindow > 0 {
		for i := range cfg.Juncs {
			cfg.Juncs[i].Window = ov.FanoWindow
		}
	}
	return cfg, nil
}

// runDeckPoint executes one (point, run) task of a deck: install the
// point's source values, run the warm-up transient, reset measurement,
// run the measured window, and report the recorded junction currents.
// With cfg.session set the worker's cached solver is re-seeded in place
// of a fresh compile — bit-identical either way. With cfg.Dir set it
// checkpoints periodically and, with cfg.Resume, continues from a valid
// matching checkpoint file; the file is removed once the task completes
// (or replaced by a done marker on the Resume path).
func runDeckPoint(ctx context.Context, d *netlist.Deck, ov Overrides, key string, pt deckPoint, run int, cfg RunConfig) (runResult, error) {
	spec := d.Spec
	// Engine selection: the deck's directives choose the build, and
	// overrides can force the sparse view, a coarser truncation, rate
	// tables or a worker count on top.
	sparse := spec.Sparse || ov.Sparse || ov.CinvEps > 0
	eps := spec.CinvEps
	if ov.CinvEps > 0 {
		eps = ov.CinvEps
	}
	parallel := spec.Parallel
	if ov.Parallel != 0 {
		parallel = ov.Parallel
	}
	opt := solver.Options{
		Temp:             spec.Temp,
		Cotunneling:      spec.Cotunnel,
		Adaptive:         spec.Adaptive,
		Alpha:            spec.Alpha,
		RefreshEvery:     spec.RefreshEvery,
		Seed:             spec.Seed + uint64(pt.Fine)*1009 + uint64(run)*104729,
		Parallel:         parallel,
		RateTables:       ov.RateTables || spec.RateTables,
		SparsePotentials: sparse,
		CinvTruncation:   eps,
	}
	var (
		s   *solver.Sim
		cc  *netlist.Compiled
		err error
	)
	if cfg.session != nil {
		s, cc, err = cfg.session.acquire(d, key, opt, pt.over)
		if err != nil {
			return runResult{}, err
		}
	} else {
		cc, err = d.Compile(pt.over)
		if err != nil {
			return runResult{}, err
		}
		s, err = solver.New(cc.Circuit, opt)
		if err != nil {
			return runResult{}, err
		}
		defer s.Close()
	}

	// Noise recording must be configured before any possible Restore:
	// checkpoints of noise-recording runs embed accumulator state and
	// refuse to load into a simulation without a matching recorder.
	njs := noiseJuncs(&spec)
	if len(njs) > 0 {
		ncfg, err := noiseConfig(&spec, ov, cc)
		if err != nil {
			return runResult{}, err
		}
		if err := s.EnableNoise(ncfg); err != nil {
			return runResult{}, err
		}
	}

	p := newPhaseRunner(ctx, s, cfg)
	p.key, p.point, p.run = key, pt.Fine, run
	if cfg.Dir != "" {
		p.path = checkpointPath(cfg.Dir, key, pt.Fine, run)
	}

	phase := phaseWarm
	var phaseStart uint64
	if p.path != "" && cfg.Resume {
		switch f, err := loadRunFile(p.path); {
		case err == nil:
			if f.Key != key {
				return runResult{}, fmt.Errorf("jobs: checkpoint %s belongs to a different deck (key %s, want %s)", p.path, f.Key, key)
			}
			if f.Point != pt.Fine || f.Run != run {
				return runResult{}, fmt.Errorf("jobs: checkpoint %s is for point %d run %d, want point %d run %d", p.path, f.Point, f.Run, pt.Fine, run)
			}
			if f.Phase == phaseDone {
				// The task already completed in an earlier invocation whose
				// overall batch was interrupted later — or in a previous job
				// over the same deck whose markers were kept as a result
				// cache: reuse its result instead of re-simulating
				// (re-running would fold in the same numbers anyway —
				// determinism makes this purely a shortcut).
				if o := obs.Global(); o != nil {
					o.Registry().Counter("jobs.runs_resumed").Add(1)
					o.Registry().Counter("jobs.result_cache_hits").Add(1)
				}
				cfg.hooks.resumed(0)
				return *f.Result, nil
			}
			if err := s.Restore(f.Solver); err != nil {
				return runResult{}, fmt.Errorf("jobs: resume %s: %w", p.path, err)
			}
			phase, phaseStart = f.Phase, f.PhaseStart
			p.lastCk = s.Stats().Events
			if o := obs.Global(); o != nil {
				o.Registry().Counter("jobs.runs_resumed").Add(1)
			}
			cfg.hooks.resumed(s.Stats().Events)
		case os.IsNotExist(err):
			// Fresh start.
			cfg.hooks.fresh()
		default:
			return runResult{}, err
		}
	}

	res := runResult{Current: map[int]float64{}}
	finish := func() (runResult, error) {
		if p.path != "" && cfg.Resume {
			// Replace the in-progress snapshot with a done marker carrying
			// the result, so a batch interrupted in a LATER task does not
			// re-simulate this one on resume. Best-effort: losing the marker
			// only costs a deterministic re-run. The batch driver removes
			// all markers once the whole deck completes.
			err := saveRunFile(p.path, &runFile{
				Key: key, Point: pt.Fine, Run: run, Phase: phaseDone, Result: &res,
			})
			if err != nil {
				if o := obs.Global(); o != nil {
					o.Registry().Counter("jobs.done_marker_errors").Add(1)
				}
			}
		} else if p.path != "" {
			os.Remove(p.path)
		}
		return res, nil
	}

	if phase == phaseWarm {
		// Warm up for a fifth of the budget, then measure.
		err := p.runPhase(phaseWarm, 0, spec.Jumps/5, spec.MaxTime/5)
		if err == solver.ErrBlockaded {
			res.Blockaded = true
			return finish()
		}
		if err != nil {
			return runResult{}, err
		}
		// Calibrate auto counting windows from the warm-up rate before
		// the measurement window opens. Deterministic: the warm phase's
		// event count and elapsed time are trajectory state, identical on
		// an uninterrupted run and across any drain/resume of the warm
		// phase, so the derived τ — which then travels in checkpoints —
		// is too.
		s.AutoNoiseWindows()
		s.ResetMeasurement()
		phase, phaseStart = phaseMeasure, s.Stats().Events
	}
	if phase != phaseMeasure {
		return runResult{}, fmt.Errorf("jobs: checkpoint %s has unknown phase %q", p.path, phase)
	}
	err = p.runPhase(phaseMeasure, phaseStart, spec.Jumps, spec.MaxTime)
	if err == solver.ErrBlockaded {
		res.Blockaded = true
		return finish()
	}
	if err != nil {
		return runResult{}, err
	}

	res.Events = s.Stats().Events - phaseStart
	for _, j := range spec.RecordJuncs {
		cj, ok := cc.Junc[j]
		if !ok {
			return runResult{}, fmt.Errorf("semsim: deck records unknown junction %d", j)
		}
		res.Current[j] = s.JunctionCurrent(cj)
	}
	if len(njs) > 0 {
		res.Noise = make(map[int]noise.RunStats, len(njs))
		for _, j := range njs {
			if st, ok := s.NoiseStats(cc.Junc[j]); ok {
				res.Noise[j] = st
			}
		}
	}
	return finish()
}

// Checkpointer periodically persists a running simulation for RunSim.
type Checkpointer struct {
	// Path is the checkpoint file (written atomically).
	Path string
	// Every is the target events between snapshots; 0 uses the default
	// cadence. Either way the cadence is rounded up to the solver's
	// refresh period so every snapshot is bit-identical resumable.
	Every int
}

// RunSim advances a single simulation until its total event count
// (Stats().Events, which survives Restore) reaches maxEvents (0 = no
// event cap) or the simulated time reaches maxTime (0 = no time cap),
// checkpointing through ck when non-nil. Canceling ctx is a graceful
// stop: the simulation persists a final refresh-aligned snapshot and
// RunSim returns ErrInterrupted. It returns the number of events
// applied during this call.
//
// To resume, load the snapshot with LoadSim, Restore it into a freshly
// built Sim over the same circuit, and call RunSim again with the same
// bounds: the combined trajectory is bit-identical to an uninterrupted
// run.
func RunSim(ctx context.Context, s *solver.Sim, maxEvents uint64, maxTime float64, ck *Checkpointer) (uint64, error) {
	cfg := RunConfig{}
	if ck != nil {
		cfg.Every = ck.Every
	}
	// Route cancellation exclusively through the drain channel so the
	// runner persists its final snapshot before stopping, instead of
	// aborting mid-period on the hard-cancel path.
	p := newPhaseRunner(context.Background(), s, cfg)
	if ck != nil {
		p.path = ck.Path
	}
	p.point, p.run = -1, -1
	p.stop = ctx.Done()
	start := s.Stats().Events
	err := p.runPhase(phaseSingle, 0, maxEvents, maxTime)
	return s.Stats().Events - start, err
}
