package jobs

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"semsim/internal/solver"
)

// FileFormat identifies a jobs checkpoint file; it is the first field
// of the JSON envelope so foreign files fail fast.
const FileFormat = "semsim-run-checkpoint"

// FileVersion is the current envelope layout version. Load rejects any
// other version.
const FileVersion = 1

// runFile is the on-disk checkpoint envelope: a versioned, checksummed
// wrapper around one solver snapshot, tagged with enough identity (the
// deck key and the point/run coordinates) that a resumed batch run can
// prove the file belongs to the work it is about to redo. The solver
// payload carries its own version and options hash on top.
//
//statecover:root save=json
type runFile struct {
	Format     string             `json:"format"`
	Version    int                `json:"version"`
	Key        string             `json:"key"`
	Point      int                `json:"point"`
	Run        int                `json:"run"`
	Phase      string             `json:"phase"`
	PhaseStart uint64             `json:"phase_start_events"`
	Solver     *solver.Checkpoint `json:"solver,omitempty"`
	// Result is present instead of Solver once the task has completed
	// (Phase == "done"): a resumed batch reuses the finished result
	// rather than re-simulating the task.
	Result *runResult `json:"result,omitempty"`
	// Checksum is CRC-32 (IEEE) over the file's canonical JSON with this
	// field zeroed; it catches truncation and bit rot that still decode.
	Checksum uint32 `json:"checksum"`
}

// checksum computes the envelope's CRC over its canonical JSON with the
// Checksum field zeroed. json.Marshal of this struct is deterministic
// (struct order fixed, map keys sorted, floats shortest-form), so a
// decode–re-encode round trip reproduces the signed bytes exactly.
func (f *runFile) checksum() (uint32, error) {
	saved := f.Checksum
	f.Checksum = 0
	blob, err := json.Marshal(f)
	f.Checksum = saved
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(blob), nil
}

// ckptStats reports one checkpoint write for the engine's latency and
// size metrics: payload bytes, the fsync's share of the time, and the
// whole marshal-write-sync-rename sequence.
type ckptStats struct {
	bytes   int
	fsyncNS int64
	totalNS int64
}

// saveRunFile writes the envelope atomically: marshal, write to a
// temporary file in the same directory, fsync, then rename over the
// final path. A crash at any instant leaves either the previous
// complete checkpoint or the new complete checkpoint, never a torn one.
//
//semsim:resumepure
func saveRunFile(path string, f *runFile) error {
	_, err := saveRunFileTimed(path, f)
	return err
}

// saveRunFileTimed is saveRunFile returning write statistics. The
// wall-clock reads feed the checkpoint latency metrics only — no timing
// value is written into the envelope or any other persisted state, so
// they cannot perturb a resumed trajectory.
//
//semsim:resumepure
func saveRunFileTimed(path string, f *runFile) (ckptStats, error) {
	var st ckptStats
	start := time.Now() //resumepure:ok wall clock feeds checkpoint latency metrics only, never persisted state
	f.Format = FileFormat
	f.Version = FileVersion
	sum, err := f.checksum()
	if err != nil {
		return st, fmt.Errorf("jobs: encode checkpoint: %w", err)
	}
	f.Checksum = sum
	blob, err := json.Marshal(f)
	if err != nil {
		return st, fmt.Errorf("jobs: encode checkpoint: %w", err)
	}
	st.bytes = len(blob)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return st, fmt.Errorf("jobs: write checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		cleanup()
		return st, fmt.Errorf("jobs: write checkpoint: %w", err)
	}
	syncStart := time.Now() //resumepure:ok wall clock feeds checkpoint latency metrics only, never persisted state
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return st, fmt.Errorf("jobs: sync checkpoint: %w", err)
	}
	st.fsyncNS = int64(time.Since(syncStart)) //resumepure:ok wall clock feeds checkpoint latency metrics only, never persisted state
	if err := tmp.Close(); err != nil {
		cleanup()
		return st, fmt.Errorf("jobs: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return st, fmt.Errorf("jobs: commit checkpoint: %w", err)
	}
	st.totalNS = int64(time.Since(start)) //resumepure:ok wall clock feeds checkpoint latency metrics only, never persisted state
	return st, nil
}

// loadRunFile reads and validates a checkpoint envelope: format tag,
// version, checksum and payload presence. Corruption — truncation,
// flipped bits, foreign JSON — is reported as an error, never resumed
// from.
//
//semsim:resumepure
func loadRunFile(path string) (*runFile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f runFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("jobs: checkpoint %s is corrupt: %w", path, err)
	}
	if f.Format != FileFormat {
		return nil, fmt.Errorf("jobs: %s is not a semsim checkpoint (format %q)", path, f.Format)
	}
	if f.Version != FileVersion {
		return nil, fmt.Errorf("jobs: checkpoint %s has version %d, this build reads version %d", path, f.Version, FileVersion)
	}
	want, err := f.checksum()
	if err != nil {
		return nil, err
	}
	if f.Checksum != want {
		return nil, fmt.Errorf("jobs: checkpoint %s failed its checksum (stored %08x, computed %08x): refusing to resume from corrupt state", path, f.Checksum, want)
	}
	if f.Phase == phaseDone {
		if f.Result == nil {
			return nil, fmt.Errorf("jobs: checkpoint %s marks the task done but carries no result", path)
		}
	} else if f.Solver == nil {
		return nil, fmt.Errorf("jobs: checkpoint %s carries no solver state", path)
	}
	return &f, nil
}

// SaveSim persists a single simulation snapshot to path using the same
// atomic, checksummed envelope as batch-run checkpoints. It is the
// persistence half of the CLI -resume flow (see LoadSim).
func SaveSim(path string, cp *solver.Checkpoint) error {
	return saveRunFile(path, &runFile{Phase: phaseSingle, Point: -1, Run: -1, Solver: cp})
}

// LoadSim reads a snapshot written by SaveSim (or by a Checkpointer)
// and returns the solver state, validating the envelope's format,
// version and checksum first. Restoring it into a Sim additionally
// validates the solver-side version and options hash.
func LoadSim(path string) (*solver.Checkpoint, error) {
	f, err := loadRunFile(path)
	if err != nil {
		return nil, err
	}
	return f.Solver, nil
}
