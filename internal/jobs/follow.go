package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// followRetries bounds reconnect attempts after transport errors before
// Follow gives up (a clean end-of-stream with a terminal state returns
// nil regardless).
const followRetries = 5

// Follow connects to a job's live event stream (GET {jobURL}/events)
// and renders each event as one human-readable line on out, until the
// job reaches a terminal state (done, failed, canceled or interrupted)
// or ctx is canceled. Transport failures reconnect with the standard
// Last-Event-ID header, so the retained ring replays whatever the
// client missed; after followRetries consecutive failures the last
// error is returned. jobURL is the job resource, e.g.
// http://host:8080/api/v1/jobs/j000001.
func Follow(ctx context.Context, jobURL string, out io.Writer) error {
	url := strings.TrimSuffix(jobURL, "/") + "/events"
	lastID := ""
	for attempt := 0; ; {
		terminal, err := followOnce(ctx, url, &lastID, out)
		switch {
		case terminal:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case err == nil:
			// The server ended the stream without a terminal state (e.g. a
			// daemon drain closed the listener between events): reconnect
			// and replay from the last seen id.
			attempt = 0
		default:
			attempt++
			if attempt >= followRetries {
				return fmt.Errorf("jobs: follow %s: %w", jobURL, err)
			}
		}
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// followOnce runs one SSE connection: it reports terminal=true when a
// state event carried a terminal job state, and err for transport-level
// failures worth a reconnect.
func followOnce(ctx context.Context, url string, lastID *string, out io.Writer) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var id, typ, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if typ != "" || data != "" {
				if id != "" {
					*lastID = id
				}
				if renderEvent(out, typ, data) {
					return true, nil
				}
			}
			id, typ, data = "", "", ""
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			typ = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(line[len("data:"):])
		}
	}
	return false, sc.Err()
}

// renderEvent prints one event as a progress line and reports whether
// it announced a terminal job state.
func renderEvent(out io.Writer, typ, data string) bool {
	var f struct {
		Job      string  `json:"job"`
		State    string  `json:"state"`
		Point    int     `json:"point"`
		Run      int     `json:"run"`
		Outcome  string  `json:"outcome"`
		Done     int     `json:"done"`
		Total    int     `json:"total"`
		Events   uint64  `json:"events"`
		Rate     float64 `json:"events_per_sec"`
		ETA      float64 `json:"eta_sec"`
		Attempt  int     `json:"attempt"`
		Delay    float64 `json:"delay_sec"`
		ErrClass string  `json:"error_class"`
		Error    string  `json:"error"`
		Dropped  uint64  `json:"dropped"`
		Bytes    int     `json:"bytes"`
	}
	// Unparseable payloads still print raw — the stream is diagnostic.
	if err := json.Unmarshal([]byte(data), &f); err != nil {
		fmt.Fprintf(out, "%s %s\n", typ, data)
		return false
	}
	switch typ {
	case "state":
		line := fmt.Sprintf("%s: %s", f.Job, f.State)
		if f.Error != "" {
			line += " (" + f.Error + ")"
		}
		fmt.Fprintln(out, line)
		switch State(f.State) {
		case StateDone, StateFailed, StateCanceled, StateInterrupted:
			return true
		}
	case "progress":
		eta := "?"
		if f.ETA >= 0 {
			eta = fmt.Sprintf("%.0fs", f.ETA)
		}
		fmt.Fprintf(out, "%s: %d/%d tasks, %.3g events/s, eta %s\n", f.Job, f.Done, f.Total, f.Rate, eta)
	case "task_done":
		fmt.Fprintf(out, "%s: task p%d r%d %s (%d/%d)\n", f.Job, f.Point, f.Run, f.Outcome, f.Done, f.Total)
	case "checkpoint":
		fmt.Fprintf(out, "%s: checkpoint p%d r%d (%d bytes)\n", f.Job, f.Point, f.Run, f.Bytes)
	case "retry":
		fmt.Fprintf(out, "%s: retry p%d r%d attempt %d in %gs (%s)\n", f.Job, f.Point, f.Run, f.Attempt, f.Delay, f.ErrClass)
	case "resume":
		fmt.Fprintf(out, "%s: resumed p%d r%d from checkpoint\n", f.Job, f.Point, f.Run)
	case "dropped":
		fmt.Fprintf(out, "%s: warning: %d events dropped (slow consumer)\n", f.Job, f.Dropped)
	default:
		fmt.Fprintf(out, "%s %s\n", typ, data)
	}
	return false
}
