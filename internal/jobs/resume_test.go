package jobs

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semsim/internal/netlist"
	"semsim/internal/solver"
)

// testDeck is a small swept SET deck exercising the adaptive solver:
// 3 sweep points x 2 runs, with a refresh period small enough that a
// run crosses many checkpointable boundaries.
const testDeck = `
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.004
record 1 2
jumps 4000 2
sweep 2 0.02 0.02
symm 1
seed 11
temp 5
adaptive 0.05
refresh 256
`

func parseDeck(t *testing.T, src string) *netlist.Deck {
	t.Helper()
	d, err := netlist.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func samePoints(t *testing.T, want, got []Point, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.SweepV != g.SweepV || w.Blockaded != g.Blockaded || w.Events != g.Events {
			t.Fatalf("%s: point %d header differs:\nwant %+v\ngot  %+v", label, i, w, g)
		}
		if len(w.Current) != len(g.Current) {
			t.Fatalf("%s: point %d records %d juncs, want %d", label, i, len(g.Current), len(w.Current))
		}
		for j, c := range w.Current {
			if g.Current[j] != c {
				t.Fatalf("%s: point %d junction %d current %g, want %g (bit-exact)", label, i, j, g.Current[j], c)
			}
		}
	}
}

// TestDeckResumeBitIdentical is the tentpole invariant: a deck
// execution interrupted at EVERY checkpoint boundary and resumed from
// disk each time must fold to exactly the same points as one
// uninterrupted execution — serially and with both levels of
// parallelism (within-run workers and run-level workers).
func TestDeckResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name    string
		ov      Overrides
		workers int
	}{
		{"serial", Overrides{Parallel: 1}, 1},
		{"parallel", Overrides{Parallel: 4}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := parseDeck(t, testDeck)
			ref, err := ExecuteDeck(context.Background(), d, tc.ov, RunConfig{Workers: tc.workers})
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			closed := make(chan struct{})
			close(closed)
			// A pre-closed Stop makes every task drain at its next refresh
			// boundary, so each ExecuteDeck call advances each task by one
			// checkpoint interval and then persists. Looping until success
			// exercises an interrupt+resume cycle at every single boundary.
			var got []Point
			resumes := 0
			for {
				got, err = ExecuteDeck(context.Background(), d, tc.ov, RunConfig{
					Dir: dir, Every: 1, Resume: true, Workers: tc.workers, Stop: closed,
				})
				if err == nil {
					break
				}
				if !errors.Is(err, ErrInterrupted) {
					t.Fatal(err)
				}
				resumes++
				if resumes > 500 {
					t.Fatal("drain/resume loop does not converge")
				}
			}
			if resumes == 0 {
				t.Fatal("test never interrupted a run; it proves nothing")
			}
			t.Logf("%s: converged after %d interrupt/resume cycles", tc.name, resumes)
			samePoints(t, ref, got, tc.name)

			// Completed tasks must have cleaned up their checkpoints.
			left, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
			if err != nil {
				t.Fatal(err)
			}
			if len(left) != 0 {
				t.Fatalf("completed execution left checkpoints behind: %v", left)
			}
		})
	}
}

// A resumed execution must refuse checkpoints that belong to different
// work: same directory, different deck content.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	d := parseDeck(t, testDeck)
	dir := t.TempDir()
	closed := make(chan struct{})
	close(closed)
	_, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
		Dir: dir, Every: 1, Resume: true, Workers: 1, Stop: closed,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected an interrupt, got %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint written (%v)", err)
	}

	// A different deck derives a different key, so its tasks never even
	// look at the foreign file — but a file renamed to collide with the
	// new key must be rejected by the embedded key check.
	d2 := parseDeck(t, strings.Replace(testDeck, "seed 11", "seed 12", 1))
	key2, err := deckKey(d2, Overrides{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(files[0], checkpointPath(dir, key2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	_, err = ExecuteDeck(context.Background(), d2, Overrides{Parallel: 1}, RunConfig{
		Dir: dir, Resume: true, Workers: 1,
	})
	if err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}

// Deck execution through the checkpointed path must stay bit-identical
// to the plain path, and to itself at any worker count.
func TestExecuteDeckWorkerCountInvariance(t *testing.T) {
	d := parseDeck(t, testDeck)
	ref, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 6} {
		got, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, ref, got, "workers")
	}
	// And with checkpointing enabled but never interrupted.
	got, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
		Dir: t.TempDir(), Every: 1, Resume: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, ref, got, "checkpointed")
}

// RunSim + Checkpointer must resume a single (non-deck) simulation
// bit-identically, including its waveform record — the logicsim
// -resume path.
func TestRunSimResumeBitIdentical(t *testing.T) {
	deckSrc := `
junc 1 1 3 1e-6 1e-18
junc 2 2 3 1e-6 1e-18
vdc 1 0.02
vdc 2 -0.02
record 1
jumps 100
seed 5
temp 5
refresh 256
`
	mk := func(t *testing.T) *solver.Sim {
		d := parseDeck(t, deckSrc)
		cc, err := d.Compile(nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := solver.New(cc.Circuit, solver.Options{
			Temp: d.Spec.Temp, Seed: d.Spec.Seed, RefreshEvery: d.Spec.RefreshEvery,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}

	ref := mk(t)
	if _, err := RunSim(context.Background(), ref, 3000, 0, nil); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	a := mk(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-canceled: drain at the very first refresh boundary
	_, err := RunSim(ctx, a, 3000, 0, &Checkpointer{Path: path, Every: 1})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}

	b := mk(t)
	cp, err := LoadSim(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Events == 0 {
		t.Fatal("checkpoint carries no progress")
	}
	if _, err := RunSim(context.Background(), b, 3000, 0, nil); err != nil {
		t.Fatal(err)
	}

	if ref.Time() != b.Time() || ref.Stats().Events != b.Stats().Events {
		t.Fatalf("resumed run diverged: t=%g/%g events=%d/%d",
			ref.Time(), b.Time(), ref.Stats().Events, b.Stats().Events)
	}
	if ref.JunctionCharge(0) != b.JunctionCharge(0) {
		t.Fatal("resumed run charge differs")
	}
}
