package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semsim/internal/netlist"
	"semsim/internal/obs"
	"semsim/internal/sweep"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued jobs wait for a worker; running jobs have at
// least one task in flight; the terminal states are done, failed and
// canceled; interrupted jobs were drained mid-flight with their
// progress checkpointed — resubmitting the same deck resumes them.
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCanceled    State = "canceled"
	StateInterrupted State = "interrupted"
)

// EngineConfig tunes an Engine. The zero value is usable: GOMAXPROCS
// workers, no checkpointing, no timeout, two retries.
type EngineConfig struct {
	// Workers bounds how many (point, run) tasks run concurrently across
	// all jobs (0 = GOMAXPROCS). When Workers > 1 and neither the deck
	// nor the submission picked a within-run worker count, tasks default
	// to serial rate evaluation — run-level parallelism already fills
	// the machine, and the trajectory is bit-identical either way.
	Workers int
	// CheckpointDir is where per-task checkpoint files live; empty
	// disables crash-safety (jobs restart from scratch after a crash).
	CheckpointDir string
	// CheckpointEvery is the target events between checkpoints (0 = the
	// package default; always rounded up to the solver refresh period).
	CheckpointEvery int
	// JobTimeout caps each job's wall-clock lifetime from submission
	// (0 = unlimited). Expired jobs fail with context.DeadlineExceeded.
	JobTimeout time.Duration
	// MaxRetries bounds per-task retries of transient failures
	// (checkpoint I/O); < 0 disables retries, 0 means the default of 2.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry, doubling
	// per attempt (0 = 250ms).
	RetryBackoff time.Duration
	// FanoWindow is the daemon-default counting-window width τ
	// (seconds) for noise-recording decks, applied to submissions that
	// leave Overrides.FanoWindow unset. 0 keeps the deck's windows (or
	// the per-run auto calibration).
	FanoWindow float64
	// Obs receives engine metrics (jobs submitted/done/failed, retries);
	// nil falls back to the process-global observer.
	Obs *obs.Observer
	// ResultCache keeps per-task done markers in CheckpointDir after a
	// job completes instead of deleting them. Markers are keyed by deck
	// content, so a later job over an identical deck (same directives,
	// same trajectory-relevant overrides) reuses every completed
	// (point, run) result instead of re-simulating — a daemon-scoped
	// result cache, sound because trajectories are deterministic.
	ResultCache bool
}

// Job is one submitted deck execution tracked by an Engine. All fields
// are managed by the engine; read them through Status and Result.
type Job struct {
	id       string
	deck     *netlist.Deck
	deckText string
	ov       Overrides
	key      string
	pts      []deckPoint
	runs     int

	// Refinement state of map decks: the fully refined fine-lattice
	// axes and the number of refinement levels already simulated.
	// finishTask plans the next level when a wave completes and appends
	// its points to pts (all nil/zero for sweep decks).
	fineXs, fineYs []float64
	level          int

	// Mutable state, guarded by the engine mutex.
	state     State
	err       error
	created   time.Time
	started   time.Time // first task start (zero until running)
	finished  time.Time
	done      int // completed tasks
	total     int
	resumed   int // tasks that picked up a checkpoint
	results   [][]runResult
	points    []Point
	ctx       context.Context
	cancel    context.CancelFunc
	completed chan struct{} // closed when the job reaches a terminal state

	// Observability (see observe.go): the per-job trace lanes and the
	// atomics feeding progress events. All passive.
	trace        *jobTrace
	events       atomic.Uint64 // solver events applied across all tasks
	lastProgress atomic.Int64  // wall ns of the last progress publish
}

// JobStatus is a JSON-friendly snapshot of a job's progress.
type JobStatus struct {
	ID         string  `json:"id"`
	State      State   `json:"state"`
	Error      string  `json:"error,omitempty"`
	Key        string  `json:"key"`
	Points     int     `json:"points"`
	RunsPer    int     `json:"runs_per_point"`
	TasksDone  int     `json:"tasks_done"`
	TasksTotal int     `json:"tasks_total"`
	Resumed    int     `json:"tasks_resumed,omitempty"`
	CreatedAt  string  `json:"created_at"`
	FinishedAt string  `json:"finished_at,omitempty"`
	RuntimeSec float64 `json:"runtime_sec"`
}

// task is one schedulable unit: a (point, run) pair of a job.
type task struct {
	job     *Job
	point   int
	run     int
	attempt int
}

// Engine executes submitted decks on a bounded worker pool with
// crash-safe checkpointing, per-job timeouts, bounded retry of
// transient failures, cancellation and graceful drain. Create one with
// NewEngine and stop it with Shutdown (drain) or Close (abort).
type Engine struct {
	cfg   EngineConfig
	drain chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []task
	jobs   map[string]*Job
	seq    int
	closed bool

	// Observability (see observe.go): the live-progress event bus, the
	// pre-resolved engine metrics (nil without an observer), and the
	// atomics behind the queue/worker gauges.
	bus      *obs.Bus
	eobs     *engineObs
	queueLen atomic.Int64
	running  atomic.Int64

	// runTask is the task executor; tests substitute a scripted one.
	runTask func(ctx context.Context, t task, cfg RunConfig) (runResult, error)
}

// NewEngine starts an engine with cfg.Workers worker goroutines.
func NewEngine(cfg EngineConfig) *Engine {
	return newEngine(cfg, nil)
}

// newEngine is the real constructor; tests pass a scripted runTask to
// unit-test scheduling, retry and drain without running simulations.
func newEngine(cfg EngineConfig, runTask func(ctx context.Context, t task, cfg RunConfig) (runResult, error)) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	e := &Engine{
		cfg:   cfg,
		drain: make(chan struct{}),
		jobs:  map[string]*Job{},
		bus:   obs.NewBus(0, 0),
	}
	e.cond = sync.NewCond(&e.mu)
	if o := e.observer(); o != nil {
		e.eobs = newEngineObs(o, e)
		e.bus.CountOn(o.Registry().Counter("jobs.events_published"),
			o.Registry().Counter("jobs.events_dropped"))
	}
	e.runTask = runTask
	if e.runTask == nil {
		e.runTask = func(ctx context.Context, t task, cfg RunConfig) (runResult, error) {
			return runDeckPoint(ctx, t.job.deck, t.job.ov, t.job.key, t.job.pts[t.point], t.run, cfg)
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker(w)
	}
	return e
}

func (e *Engine) observer() *obs.Observer {
	if e.cfg.Obs != nil {
		return e.cfg.Obs
	}
	return obs.Global()
}

func (e *Engine) count(name string) {
	if o := e.observer(); o != nil {
		o.Registry().Counter(name).Add(1)
	}
}

// Submit queues a deck for execution and returns its job id. The deck
// is validated up front; scheduling is asynchronous. Submitting a deck
// whose previous job was interrupted (or crashed) resumes from the
// persisted checkpoints automatically — the checkpoint key is derived
// from the deck content, not the job id.
func (e *Engine) Submit(d *netlist.Deck, ov Overrides) (*Job, error) {
	if err := validateDeck(d); err != nil {
		return nil, err
	}
	if e.cfg.Workers > 1 && ov.Parallel == 0 && d.Spec.Parallel == 0 {
		// Run-level parallelism already fills the machine; per-task worker
		// pools would only oversubscribe. Parallel never changes the
		// trajectory (or the checkpoint key), so this is purely a
		// scheduling choice.
		ov.Parallel = 1
	}
	if ov.FanoWindow == 0 {
		// Daemon-default counting window: folded in before the deck key
		// is derived, so checkpointed noise state stays bound to the τ
		// it was accumulated under.
		ov.FanoWindow = e.cfg.FanoWindow
	}
	key, err := deckKey(d, ov)
	if err != nil {
		return nil, err
	}
	var text bytes.Buffer // canonical deck text, kept for status/debugging
	if err := d.Format(&text); err != nil {
		return nil, err
	}
	spec := d.Spec
	pts := deckPoints(&spec)
	runs := spec.Runs
	if runs < 1 {
		runs = 1
	}
	var fineXs, fineYs []float64
	if mp := spec.Map; mp != nil {
		fineXs = sweep.RefineAxis(mp.X.Values(), mp.Depth)
		fineYs = sweep.RefineAxis(mp.Y.Values(), mp.Depth)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, errors.New("jobs: engine is shut down")
	}
	e.seq++
	j := &Job{
		id:        fmt.Sprintf("j%06d", e.seq),
		deck:      d,
		deckText:  text.String(),
		ov:        ov,
		key:       key,
		pts:       pts,
		runs:      runs,
		fineXs:    fineXs,
		fineYs:    fineYs,
		state:     StateQueued,
		created:   time.Now(),
		total:     len(pts) * runs,
		completed: make(chan struct{}),
	}
	j.results = make([][]runResult, len(pts))
	for i := range j.results {
		j.results[i] = make([]runResult, runs)
	}
	j.trace = newJobTrace(e.cfg.Workers, j.created)
	base := context.Background()
	if e.cfg.JobTimeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(base, e.cfg.JobTimeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(base)
	}
	e.jobs[j.id] = j
	for i := range pts {
		for r := 0; r < runs; r++ {
			e.queue = append(e.queue, task{job: j, point: i, run: r})
		}
	}
	e.queueLen.Add(int64(j.total))
	e.count("jobs.submitted")
	j.trace.job.Record(obs.Event{Kind: obs.KindJobState, A: obs.JobStateQueued, Wall: j.trace.wall()})
	e.publish(j, "state", fmt.Sprintf(`{"job":%q,"state":%q,"tasks_total":%d}`, j.id, StateQueued, j.total))
	e.cond.Broadcast()
	return j, nil
}

// Job returns the job with the given id, or nil.
func (e *Engine) Job(id string) *Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobs[id]
}

// Jobs returns a status snapshot of every known job, sorted by id.
func (e *Engine) Jobs() []JobStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]JobStatus, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, e.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel aborts a job: queued tasks are dropped and running tasks stop
// at their next chunk boundary without a final checkpoint. It reports
// whether the id was known.
func (e *Engine) Cancel(id string) bool {
	e.mu.Lock()
	j := e.jobs[id]
	e.mu.Unlock()
	if j == nil {
		return false
	}
	j.cancel()
	return true
}

// Status returns a snapshot of the job's progress.
func (e *Engine) Status(j *Job) JobStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statusLocked(j)
}

func (e *Engine) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID: j.id, State: j.state, Key: j.key,
		Points: len(j.pts), RunsPer: j.runs,
		TasksDone: j.done, TasksTotal: j.total, Resumed: j.resumed,
		CreatedAt: j.created.UTC().Format(time.RFC3339),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	end := time.Now()
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339)
		end = j.finished
	}
	st.RuntimeSec = end.Sub(j.created).Seconds()
	return st
}

// Result returns the folded points of a completed job. It errors until
// the job reaches StateDone.
func (e *Engine) Result(j *Job) ([]Point, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.points, nil
	case StateFailed:
		return nil, fmt.Errorf("jobs: job %s failed: %w", j.id, j.err)
	case StateCanceled:
		return nil, fmt.Errorf("jobs: job %s was canceled", j.id)
	case StateInterrupted:
		return nil, fmt.Errorf("jobs: job %s was interrupted; resubmit the deck to resume", j.id)
	default:
		return nil, fmt.Errorf("jobs: job %s is %s (%d/%d tasks)", j.id, j.state, j.done, j.total)
	}
}

// ID returns the job's engine-assigned identifier.
func (j *Job) ID() string { return j.id }

// Wait blocks until the job reaches a terminal state or ctx is
// canceled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.completed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) draining() bool {
	select {
	case <-e.drain:
		return true
	default:
		return false
	}
}

func (e *Engine) worker(id int) {
	defer e.wg.Done()
	// The worker's compile-once session persists across tasks AND jobs:
	// consecutive tasks of the same deck (and later jobs over the same
	// deck) re-seed the cached solver instead of rebuilding it.
	ds := &deckSession{}
	defer ds.Close()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		t := e.queue[0]
		e.queue = e.queue[1:]
		e.queueLen.Add(-1)
		first := false
		if t.job.state == StateQueued {
			t.job.state = StateRunning
			t.job.started = time.Now()
			first = true
		}
		e.mu.Unlock()
		if first {
			// The queued span closes when the first task starts.
			tr := t.job.trace
			now := tr.wall()
			tr.job.Record(obs.Event{Kind: obs.KindSpan, Junc: tr.job.InternName("queued"), Dur: now})
			tr.job.Record(obs.Event{Kind: obs.KindJobState, A: obs.JobStateRunning, Wall: now})
			e.publish(t.job, "state", fmt.Sprintf(`{"job":%q,"state":%q}`, t.job.id, StateRunning))
		}

		switch {
		case t.job.ctx.Err() != nil:
			// Canceled or timed out before this task started.
			e.finishTask(t, runResult{}, t.job.ctx.Err())
			continue
		case e.draining():
			// A draining engine starts no new work; the job stays
			// resumable via its checkpoints.
			e.finishTask(t, runResult{}, ErrInterrupted)
			continue
		}

		lane := t.job.trace.workers[id%len(t.job.trace.workers)]
		cfg := RunConfig{
			Dir:     e.cfg.CheckpointDir,
			Every:   e.cfg.CheckpointEvery,
			Resume:  e.cfg.CheckpointDir != "",
			Stop:    e.drain,
			hooks:   &taskHooks{e: e, j: t.job, lane: lane, point: t.point, run: t.run},
			session: ds,
		}
		e.running.Add(1)
		startWall := t.job.trace.wall()
		res, err := e.runTask(t.job.ctx, t, cfg)
		e.running.Add(-1)
		lane.Record(obs.Event{Kind: obs.KindTaskRun, Junc: int32(t.point), A: int32(t.run),
			B: taskOutcome(err), V1: float64(res.Events),
			Wall: startWall, Dur: t.job.trace.wall() - startWall})
		if err != nil && isTransient(err) && t.attempt < e.cfg.MaxRetries &&
			t.job.ctx.Err() == nil && !e.draining() {
			e.count("jobs.task_retries")
			if m := e.eobs; m != nil {
				m.tasksRetried.Add(1)
			}
			delay := e.cfg.RetryBackoff << uint(t.attempt)
			lane.Record(obs.Event{Kind: obs.KindTaskRetry, Junc: int32(t.point), A: int32(t.run),
				B: int32(t.attempt + 1), V1: delay.Seconds(), V2: float64(errClass(err)),
				Wall: t.job.trace.wall()})
			e.publish(t.job, "retry", fmt.Sprintf(`{"job":%q,"point":%d,"run":%d,"attempt":%d,"delay_sec":%g,"error_class":%q}`,
				t.job.id, t.point, t.run, t.attempt+1, delay.Seconds(), obs.ErrClassName(int(errClass(err)))))
			if e.backoff(t) {
				continue // requeued
			}
		}
		e.finishTask(t, res, err)
	}
}

// backoff sleeps the task's exponential backoff delay and requeues it,
// unless the job is canceled or the engine drains first (then the
// task's error stands). It reports whether the task was requeued.
func (e *Engine) backoff(t task) bool {
	d := e.cfg.RetryBackoff << uint(t.attempt)
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-t.job.ctx.Done():
		return false
	case <-e.drain:
		return false
	}
	t.attempt++
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return false
	}
	e.queue = append(e.queue, t)
	e.queueLen.Add(1)
	e.cond.Broadcast()
	e.mu.Unlock()
	return true
}

// finishTask records a task outcome and finalizes the job when it was
// the last one. The terminal bus event is published before completed is
// closed, so event streams always observe the final state.
func (e *Engine) finishTask(t task, res runResult, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j := t.job
	j.done++
	if err == nil {
		j.results[t.point][t.run] = res
	} else if j.err == nil || errors.Is(j.err, ErrInterrupted) || errors.Is(j.err, context.Canceled) {
		// Keep the most informative error: real failures trump the
		// interrupts/cancellations they trigger on sibling tasks.
		if j.err == nil || (!errors.Is(err, ErrInterrupted) && !errors.Is(err, context.Canceled)) {
			j.err = err
		}
	}
	outcome := taskOutcome(err)
	e.eobs.finished(outcome)
	e.publish(j, "task_done", fmt.Sprintf(`{"job":%q,"point":%d,"run":%d,"outcome":%q,"events":%d,"done":%d,"total":%d}`,
		j.id, t.point, t.run, obs.TaskOutcomeName(int(outcome)), res.Events, j.done, j.total))
	if j.done < j.total {
		return
	}
	if j.err == nil {
		// A completed wave of a map deck: plan the next refinement level
		// from the folded currents and fan its points out instead of
		// finalizing. The plan is pure arithmetic on completed results, so
		// the job's trajectory set is identical at any worker count — and
		// a resubmission after an interrupt replays earlier waves from
		// done markers and lands on the same plan.
		spec := j.deck.Spec
		if next := planRefine(&spec, j.fineXs, j.fineYs, j.pts, j.results, j.level); len(next) > 0 {
			j.level++
			start := len(j.pts)
			j.pts = append(j.pts, next...)
			for range next {
				j.results = append(j.results, make([]runResult, j.runs))
			}
			added := len(next) * j.runs
			j.total += added
			for i := start; i < len(j.pts); i++ {
				for r := 0; r < j.runs; r++ {
					e.queue = append(e.queue, task{job: j, point: i, run: r})
				}
			}
			e.queueLen.Add(int64(added))
			e.count("jobs.refine_waves")
			e.publish(j, "refine", fmt.Sprintf(`{"job":%q,"level":%d,"new_points":%d,"tasks_total":%d}`,
				j.id, j.level, len(next), j.total))
			e.cond.Broadcast()
			return
		}
	}
	j.finished = time.Now()
	switch {
	case j.err == nil:
		spec := j.deck.Spec
		j.points = foldResults(&spec, j.pts, j.results)
		j.state = StateDone
		e.count("jobs.done")
		if dir := e.cfg.CheckpointDir; dir != "" && !e.cfg.ResultCache {
			// The job folded; its per-task done markers are obsolete.
			// With ResultCache they stay behind so an identical deck
			// submitted later reuses every completed result.
			for _, p := range j.pts {
				for r := 0; r < j.runs; r++ {
					os.Remove(checkpointPath(dir, j.key, p.Fine, r))
				}
			}
		}
	case errors.Is(j.err, ErrInterrupted):
		j.state = StateInterrupted
		e.count("jobs.interrupted")
	case errors.Is(j.err, context.Canceled), errors.Is(j.err, context.DeadlineExceeded):
		j.state = StateCanceled
		e.count("jobs.canceled")
	default:
		j.state = StateFailed
		e.count("jobs.failed")
	}
	if tr := j.trace; tr != nil {
		now := tr.wall()
		if !j.started.IsZero() {
			// The running span covers first task start to job finish.
			start := int64(j.started.Sub(tr.epoch))
			tr.job.Record(obs.Event{Kind: obs.KindSpan, Junc: tr.job.InternName("running"),
				Wall: start, Dur: now - start})
		}
		tr.job.Record(obs.Event{Kind: obs.KindJobState, A: jobStateCode(j.state), Wall: now})
	}
	errText := ""
	if j.err != nil {
		errText = j.err.Error()
	}
	e.publish(j, "state", fmt.Sprintf(`{"job":%q,"state":%q,"done":%d,"total":%d,"error":%q}`,
		j.id, j.state, j.done, j.total, errText))
	j.cancel() // release the timeout timer
	close(j.completed)
}

// Shutdown drains the engine gracefully: no new tasks start, in-flight
// runs persist a checkpoint at their next refresh boundary and finish
// as interrupted, and Shutdown returns when every worker has stopped or
// ctx expires — in which case it hard-cancels everything still running
// and waits for the workers to notice.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.drain)
	}
	e.cond.Broadcast()
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.cancelAll()
		<-done
		return ctx.Err()
	}
}

// Close aborts the engine: every job is canceled and workers exit as
// soon as their current chunk completes. Prefer Shutdown.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.drain)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	e.cancelAll()
	e.wg.Wait()
}

func (e *Engine) cancelAll() {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}
