// Package jobs is the batch execution layer: it fans a parsed deck out
// into independent (sweep point, run) tasks, executes them on a bounded
// worker pool — run-level parallelism composing with the solver's
// within-run parallelism — and makes every run crash-safe through
// periodic atomic checkpoint files built on the solver's snapshot API.
//
// Determinism is the load-bearing property. Checkpoints are only
// written when the solver sits on a full-refresh boundary
// (Stats.Events a multiple of Sim.RefreshPeriod()), where every piece
// of derived state — adaptive testing factors, cached free-energy
// changes, node potentials, the Fenwick selection tree — is a pure
// function of the snapshotted state (time, charges, electron counts,
// RNG). Restore performs the same full refresh, so a run killed at an
// arbitrary instant and resumed from its last checkpoint produces a
// trajectory bit-identical to the uninterrupted run, in every solver
// mode (adaptive, non-adaptive, superconducting, cotunneling, serial
// and parallel). DESIGN.md §10 develops the full argument.
//
// The package offers three entry points at increasing altitude:
//
//   - RunSim: one simulation advanced with periodic checkpoints and
//     cooperative cancellation (the CLI -resume path);
//   - ExecuteDeck: a whole deck executed synchronously, optionally
//     checkpointed and resumed (what semsim.RunDeck builds on);
//   - Engine + NewHandler: an asynchronous job queue with retry,
//     timeouts and graceful drain, exposed over HTTP by cmd/semsimd.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"semsim/internal/netlist"
	"semsim/internal/noise"
	"semsim/internal/obs"
	"semsim/internal/sweep"
)

// ErrInterrupted reports that a run was stopped by a drain request (or
// a canceled RunSim context) after persisting a checkpoint: the work is
// incomplete but resumable, which callers must distinguish from
// failure.
var ErrInterrupted = errors.New("jobs: run interrupted; state checkpointed for resume")

// Overrides adjusts engine knobs the deck's author left unset —
// command-line or API settings that win over the deck's own directives.
// None of them change the physics; only CinvEps changes the trajectory
// (and then carries a provable error bound).
type Overrides struct {
	// Parallel overrides the within-run rate-engine worker count when
	// non-zero (1 = serial; any value is bit-identical).
	Parallel int `json:"parallel,omitempty"`
	// RateTables routes normal-state rates through the error-bounded
	// interpolation tables (< 1e-6 relative error).
	RateTables bool `json:"rate_tables,omitempty"`
	// Sparse forces the sparse locality-aware potential engine even when
	// the deck does not request it (exact, bit-identical at CinvEps 0).
	Sparse bool `json:"sparse,omitempty"`
	// CinvEps, when > 0, truncates C^-1 rows at CinvEps*rowmax (implies
	// Sparse) and overrides the deck's cinv-eps value.
	CinvEps float64 `json:"cinv_eps,omitempty"`
	// FanoWindow, when > 0, fixes the counting-window width τ (seconds)
	// of every noise-recorded junction, overriding deck windows and the
	// auto calibration. It never changes the trajectory — windows only
	// shape the statistics derived from the event stream — but it is
	// part of the deck key: checkpointed noise accumulators depend on
	// it, so resumed state must have been produced under the same τ.
	FanoWindow float64 `json:"fano_window,omitempty"`
}

// Point is one operating point of an executed deck: the swept source
// value(s) and the measured currents averaged over the deck's runs.
type Point struct {
	// SweepV is the swept source value (the map X coordinate for `map`
	// decks; 0 when the deck sweeps nothing).
	SweepV float64 `json:"sweep_v"`
	// Y is the second-axis source value of a `map` deck point.
	Y float64 `json:"y,omitempty"`
	// Current holds the measured current per recorded junction (keyed by
	// netlist junction id), averaged over the deck's runs.
	Current map[int]float64 `json:"current"`
	// Blockaded marks points where no event was possible.
	Blockaded bool `json:"blockaded,omitempty"`
	// Events is the total measured tunnel events across runs.
	Events uint64 `json:"events"`
	// Noise holds the folded noise/FCS statistics per noise-recorded
	// junction (keyed by netlist junction id); nil unless the deck has
	// `record noise` or `record fano` directives.
	Noise map[int]noise.Stats `json:"noise,omitempty"`
}

// RunConfig tunes deck execution. The zero value reproduces the
// historical semsim.RunDeck behavior exactly: sequential points, no
// checkpointing.
type RunConfig struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the target number of events between checkpoints (rounded
	// up to the solver's refresh period, where snapshots are
	// bit-identical resumable). 0 means defaultCheckpointEvery.
	Every int
	// Resume loads any matching checkpoint found in Dir and continues
	// from it instead of starting the run over.
	Resume bool
	// Workers bounds how many (point, run) tasks execute concurrently;
	// 0 or 1 means sequential. Results are folded in deterministic order
	// regardless, so the output is identical at any worker count.
	Workers int
	// Stop, when closed, asks in-flight runs to checkpoint at the next
	// refresh boundary and return ErrInterrupted (graceful drain).
	Stop <-chan struct{}
	// KeepDone retains per-task done markers after the deck folds instead
	// of deleting them. Markers are keyed by deck content, so a later
	// execution of the same deck (any job, same checkpoint dir) reuses
	// the completed results instead of re-simulating — a local result
	// cache, sound because trajectories are deterministic.
	KeepDone bool

	// hooks receives per-task observability callbacks (checkpoint writes,
	// resumes, per-chunk progress). Only the Engine sets it; nil (the
	// ExecuteDeck and RunSim paths) disables all task telemetry.
	hooks *taskHooks
	// session, when non-nil, is the calling worker's compile-once cache:
	// runDeckPoint reuses its compiled circuit and solver via Reset
	// instead of rebuilding per task. Bit-identical either way.
	session *deckSession
}

// defaultCheckpointEvery is the checkpoint cadence (in events) when
// RunConfig.Every is zero — frequent enough that a crash loses seconds
// of work, rare enough that snapshot I/O is noise.
const defaultCheckpointEvery = 1 << 15

// deckKey fingerprints everything that determines a run's trajectory:
// the deck's canonical Format output (circuit, spec, seeds) plus the
// trajectory-relevant overrides. Checkpoint files embed and verify the
// key, so a resumed submission only picks up state that provably
// belongs to the same work; Parallel is excluded because worker count
// never changes the trajectory.
func deckKey(d *netlist.Deck, ov Overrides) (string, error) {
	var buf bytes.Buffer
	if err := d.Format(&buf); err != nil {
		return "", err
	}
	fmt.Fprintf(&buf, "|rt=%v|sparse=%v|eps=%016x|fw=%016x",
		ov.RateTables, ov.Sparse, math.Float64bits(ov.CinvEps), math.Float64bits(ov.FanoWindow))
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(buf.Bytes())), nil
}

// checkpointPath names the checkpoint file of one (point, run) task.
func checkpointPath(dir, key string, point, run int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-p%04d-r%03d.ckpt", key, point, run))
}

// deckPoint is one operating point of a deck in task form: the source
// values to install and the point's lattice index, which seeds the
// trajectory.
type deckPoint struct {
	X, Y float64
	// Fine is the deterministic point index used for seeds, checkpoint
	// names and done markers. For sweep decks it is the sweep ordinal;
	// for map decks it is the point's flat index on the fully refined
	// fine lattice (fy*fnx + fx), so a point simulated during refinement
	// is bit-identical to the same point of a uniform fine map — and to
	// itself regardless of which refinement wave discovered it or how
	// many workers ran.
	Fine int
	// over maps netlist node -> DC voltage realizing this point's bias.
	over map[int]float64
}

// deckPoints expands the deck's sweep or map directive into the ordered
// initial operating points ([one unbiased point] when the deck sets
// neither). Sweep iteration matches the original RunDeck loop exactly —
// accumulation order is part of the bit-identity contract. Map decks
// start from the coarse grid placed at fine-aligned lattice indices;
// refinement waves append more points later (planRefine).
func deckPoints(spec *netlist.Spec) []deckPoint {
	if sw := spec.Sweep; sw != nil {
		var pts []deckPoint
		for v := -sw.Max; v <= sw.Max+sw.Step/2; v += sw.Step {
			over := map[int]float64{sw.Node: v}
			if sw.Mirror >= 0 {
				over[sw.Mirror] = -v
			}
			pts = append(pts, deckPoint{X: v, Fine: len(pts), over: over})
		}
		return pts
	}
	if mp := spec.Map; mp != nil {
		fineXs := sweep.RefineAxis(mp.X.Values(), mp.Depth)
		fineYs := sweep.RefineAxis(mp.Y.Values(), mp.Depth)
		fnx := len(fineXs)
		stride := 1 << mp.Depth
		var pts []deckPoint
		for fy := 0; fy < len(fineYs); fy += stride {
			for fx := 0; fx < fnx; fx += stride {
				pts = append(pts, deckPoint{
					X: fineXs[fx], Y: fineYs[fy], Fine: fy*fnx + fx,
					over: map[int]float64{mp.X.Node: fineXs[fx], mp.Y.Node: fineYs[fy]},
				})
			}
		}
		return pts
	}
	return []deckPoint{{over: map[int]float64{}}}
}

// planRefine folds completed map-deck results onto the fine lattice and
// plans the next refinement level's points via sweep.RefinePlan. level
// is the number of levels already simulated (0 = only the coarse grid);
// the returned slice is empty once refinement is exhausted — and an
// empty level proves every deeper level empty too, because deeper cells
// need corners only a refined shallower level could have simulated.
// The fold uses the deck's first recorded junction (blockaded points
// count as zero current). Pure arithmetic on deterministic inputs, so
// the plan — like everything scheduled from it — is worker-count- and
// schedule-invariant.
func planRefine(spec *netlist.Spec, fineXs, fineYs []float64, pts []deckPoint, results [][]runResult, level int) []deckPoint {
	mp := spec.Map
	if mp == nil || level >= mp.Depth {
		return nil
	}
	fnx, fny := len(fineXs), len(fineYs)
	I := make([][]float64, fny)
	sim := make([][]bool, fny)
	for iy := range I {
		I[iy] = make([]float64, fnx)
		sim[iy] = make([]bool, fnx)
	}
	runs := spec.Runs
	if runs < 1 {
		runs = 1
	}
	j0 := spec.RecordJuncs[0]
	for i, p := range pts {
		fx, fy := p.Fine%fnx, p.Fine/fnx
		var cur float64
		for run := 0; run < runs; run++ {
			if r := results[i][run]; !r.Blockaded {
				cur += r.Current[j0] / float64(runs)
			}
		}
		I[fy][fx] = cur
		sim[fy][fx] = true
	}
	cell := 1 << (mp.Depth - level) // cell size of the last simulated level
	plan := sweep.RefinePlan(I, sim, cell, mp.Threshold)
	out := make([]deckPoint, len(plan))
	for i, fp := range plan {
		fx, fy := fp[0], fp[1]
		out[i] = deckPoint{
			X: fineXs[fx], Y: fineYs[fy], Fine: fy*fnx + fx,
			over: map[int]float64{mp.X.Node: fineXs[fx], mp.Y.Node: fineYs[fy]},
		}
	}
	return out
}

// validateDeck rejects decks that cannot be executed: nothing recorded
// or no stopping criterion.
func validateDeck(d *netlist.Deck) error {
	if len(d.Spec.RecordJuncs) == 0 {
		return fmt.Errorf("semsim: deck records no junctions (add a 'record' line)")
	}
	if d.Spec.Jumps == 0 && d.Spec.MaxTime == 0 {
		return fmt.Errorf("semsim: deck sets neither 'jumps' nor 'time'")
	}
	return nil
}

// foldResults reduces per-(point, run) results into the final points in
// the same float operation order as the historical sequential loop:
// for each recorded junction, run contributions are added in run order
// and divided by the run count. This keeps ExecuteDeck's output
// bit-identical at any Workers setting. Map-deck points (coarse grid
// plus appended refinement waves) are emitted in fine-lattice order, so
// the output is also invariant to how many refinement waves ran.
func foldResults(spec *netlist.Spec, pts []deckPoint, results [][]runResult) []Point {
	runs := spec.Runs
	if runs < 1 {
		runs = 1
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	if spec.Map != nil {
		sort.Slice(order, func(a, b int) bool { return pts[order[a]].Fine < pts[order[b]].Fine })
	}
	njs := noiseJuncs(spec)
	out := make([]Point, len(pts))
	for oi, i := range order {
		p := pts[i]
		pt := Point{SweepV: p.X, Y: p.Y, Current: map[int]float64{}}
		for run := 0; run < runs; run++ {
			r := results[i][run]
			if r.Blockaded {
				pt.Blockaded = true
				continue
			}
			pt.Events += r.Events
			for _, j := range spec.RecordJuncs {
				pt.Current[j] += r.Current[j] / float64(runs)
			}
		}
		if len(njs) > 0 {
			// Fold noise statistics in run order per junction — like the
			// current fold, a fixed-order reduction of deterministic run
			// results, so the outcome is schedule- and worker-invariant.
			// Blockaded runs measured nothing and are skipped.
			pt.Noise = make(map[int]noise.Stats, len(njs))
			rs := make([]noise.RunStats, 0, runs)
			for _, j := range njs {
				rs = rs[:0]
				for run := 0; run < runs; run++ {
					r := results[i][run]
					if r.Blockaded || r.Noise == nil {
						continue
					}
					if st, ok := r.Noise[j]; ok {
						rs = append(rs, st)
					}
				}
				pt.Noise[j] = noise.Fold(rs)
			}
		}
		out[oi] = pt
	}
	return out
}

// noiseJuncs lists the deck's noise-recorded netlist junction ids in
// deck order, deduplicated (a junction may have both a noise and a
// fano directive).
func noiseJuncs(spec *netlist.Spec) []int {
	var njs []int
	seen := map[int]bool{}
	add := func(j int) {
		if !seen[j] {
			seen[j] = true
			njs = append(njs, j)
		}
	}
	for _, ns := range spec.NoiseJuncs {
		add(ns.Junc)
	}
	for _, fs := range spec.FanoJuncs {
		add(fs.Junc)
	}
	return njs
}

// ExecuteDeck runs every (point, run) task of a deck and returns the
// folded operating points. Each worker compiles the deck once and
// re-seeds its solver per task (compile-once sessions, bit-identical to
// rebuilding). Map decks execute in waves: the coarse grid first, then
// adaptively planned refinement points level by level. With cfg.Dir
// set, each task checkpoints periodically and — with cfg.Resume —
// continues from any valid checkpoint it finds, making long sweeps
// crash-safe; completed tasks delete their files unless cfg.KeepDone.
// Cancel ctx to abandon the execution immediately, or close cfg.Stop to
// drain: in-flight tasks persist a final checkpoint and ExecuteDeck
// returns ErrInterrupted.
func ExecuteDeck(ctx context.Context, d *netlist.Deck, ov Overrides, cfg RunConfig) ([]Point, error) {
	if err := validateDeck(d); err != nil {
		return nil, err
	}
	spec := d.Spec
	pts := deckPoints(&spec)
	key, err := deckKey(d, ov)
	if err != nil {
		return nil, err
	}
	runs := spec.Runs
	if runs < 1 {
		runs = 1
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// Per-worker compile-once sessions, persistent across refinement
	// waves. Worker w only ever touches sessions[w], so no locking.
	sessions := make([]*deckSession, workers)
	for w := range sessions {
		sessions[w] = &deckSession{}
	}
	defer func() {
		for _, ds := range sessions {
			ds.Close()
		}
	}()

	var results [][]runResult
	runWave := func(start int) error {
		for i := start; i < len(pts); i++ {
			results = append(results, make([]runResult, runs))
		}
		type task struct{ point, run int }
		tasks := make([]task, 0, (len(pts)-start)*runs)
		for i := start; i < len(pts); i++ {
			for r := 0; r < runs; r++ {
				tasks = append(tasks, task{i, r})
			}
		}
		run := func(w int, t task) error {
			wcfg := cfg
			wcfg.session = sessions[w]
			res, err := runDeckPoint(ctx, d, ov, key, pts[t.point], t.run, wcfg)
			if err != nil {
				if errors.Is(err, ErrInterrupted) || errors.Is(err, context.Canceled) {
					return err
				}
				return fmt.Errorf("point %d (v=%g) run %d: %w", pts[t.point].Fine, pts[t.point].X, t.run, err)
			}
			results[t.point][t.run] = res
			return nil
		}

		wn := workers
		if wn > len(tasks) {
			wn = len(tasks)
		}
		if wn <= 1 {
			for _, t := range tasks {
				if err := run(0, t); err != nil {
					return err
				}
			}
			return nil
		}
		// Cancel the siblings once any task fails; the deterministic fold
		// below makes completion order irrelevant to the result.
		tctx, cancel := context.WithCancel(ctx)
		defer cancel()
		work := make(chan task)
		errs := make([]error, wn)
		var wg sync.WaitGroup
		for w := 0; w < wn; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for t := range work {
					if tctx.Err() != nil {
						continue
					}
					if err := run(w, t); err != nil && errs[w] == nil {
						errs[w] = err
						cancel()
					}
				}
			}(w)
		}
		for _, t := range tasks {
			work <- t
		}
		close(work)
		wg.Wait()
		// Prefer a real failure over the cancellations it caused.
		var firstErr error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if firstErr == nil || errors.Is(firstErr, context.Canceled) {
				firstErr = err
			}
		}
		return firstErr
	}

	// Wave loop: a sweep deck is a single wave; a map deck follows the
	// coarse wave with one wave per refinement level until the planner
	// finds no more contrast (or Depth is reached).
	var fineXs, fineYs []float64
	if mp := spec.Map; mp != nil {
		fineXs = sweep.RefineAxis(mp.X.Values(), mp.Depth)
		fineYs = sweep.RefineAxis(mp.Y.Values(), mp.Depth)
	}
	for start, level := 0, 0; ; level++ {
		if err := runWave(start); err != nil {
			return nil, err
		}
		start = len(pts)
		next := planRefine(&spec, fineXs, fineYs, pts, results, level)
		if len(next) == 0 {
			break
		}
		if o := obs.Global(); o != nil {
			o.Registry().Counter("jobs.refine_waves").Add(1)
		}
		pts = append(pts, next...)
	}

	if o := obs.Global(); o != nil {
		o.Registry().Counter("jobs.decks_executed").Add(1)
	}
	if cfg.Dir != "" && !cfg.KeepDone {
		// The whole deck folded: the per-task done markers (kept so a
		// resume after a partial interruption skips finished tasks) have
		// served their purpose. Best-effort removal. With KeepDone the
		// markers stay behind as a deck-keyed result cache.
		for _, p := range pts {
			for r := 0; r < runs; r++ {
				os.Remove(checkpointPath(cfg.Dir, key, p.Fine, r))
			}
		}
	}
	return foldResults(&spec, pts, results), nil
}
