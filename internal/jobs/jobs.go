// Package jobs is the batch execution layer: it fans a parsed deck out
// into independent (sweep point, run) tasks, executes them on a bounded
// worker pool — run-level parallelism composing with the solver's
// within-run parallelism — and makes every run crash-safe through
// periodic atomic checkpoint files built on the solver's snapshot API.
//
// Determinism is the load-bearing property. Checkpoints are only
// written when the solver sits on a full-refresh boundary
// (Stats.Events a multiple of Sim.RefreshPeriod()), where every piece
// of derived state — adaptive testing factors, cached free-energy
// changes, node potentials, the Fenwick selection tree — is a pure
// function of the snapshotted state (time, charges, electron counts,
// RNG). Restore performs the same full refresh, so a run killed at an
// arbitrary instant and resumed from its last checkpoint produces a
// trajectory bit-identical to the uninterrupted run, in every solver
// mode (adaptive, non-adaptive, superconducting, cotunneling, serial
// and parallel). DESIGN.md §10 develops the full argument.
//
// The package offers three entry points at increasing altitude:
//
//   - RunSim: one simulation advanced with periodic checkpoints and
//     cooperative cancellation (the CLI -resume path);
//   - ExecuteDeck: a whole deck executed synchronously, optionally
//     checkpointed and resumed (what semsim.RunDeck builds on);
//   - Engine + NewHandler: an asynchronous job queue with retry,
//     timeouts and graceful drain, exposed over HTTP by cmd/semsimd.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"

	"semsim/internal/netlist"
	"semsim/internal/obs"
)

// ErrInterrupted reports that a run was stopped by a drain request (or
// a canceled RunSim context) after persisting a checkpoint: the work is
// incomplete but resumable, which callers must distinguish from
// failure.
var ErrInterrupted = errors.New("jobs: run interrupted; state checkpointed for resume")

// Overrides adjusts engine knobs the deck's author left unset —
// command-line or API settings that win over the deck's own directives.
// None of them change the physics; only CinvEps changes the trajectory
// (and then carries a provable error bound).
type Overrides struct {
	// Parallel overrides the within-run rate-engine worker count when
	// non-zero (1 = serial; any value is bit-identical).
	Parallel int `json:"parallel,omitempty"`
	// RateTables routes normal-state rates through the error-bounded
	// interpolation tables (< 1e-6 relative error).
	RateTables bool `json:"rate_tables,omitempty"`
	// Sparse forces the sparse locality-aware potential engine even when
	// the deck does not request it (exact, bit-identical at CinvEps 0).
	Sparse bool `json:"sparse,omitempty"`
	// CinvEps, when > 0, truncates C^-1 rows at CinvEps*rowmax (implies
	// Sparse) and overrides the deck's cinv-eps value.
	CinvEps float64 `json:"cinv_eps,omitempty"`
}

// Point is one operating point of an executed deck: the swept source
// value and the measured currents averaged over the deck's runs.
type Point struct {
	// SweepV is the swept source value (0 when the deck has no sweep).
	SweepV float64 `json:"sweep_v"`
	// Current holds the measured current per recorded junction (keyed by
	// netlist junction id), averaged over the deck's runs.
	Current map[int]float64 `json:"current"`
	// Blockaded marks points where no event was possible.
	Blockaded bool `json:"blockaded,omitempty"`
	// Events is the total measured tunnel events across runs.
	Events uint64 `json:"events"`
}

// RunConfig tunes deck execution. The zero value reproduces the
// historical semsim.RunDeck behavior exactly: sequential points, no
// checkpointing.
type RunConfig struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the target number of events between checkpoints (rounded
	// up to the solver's refresh period, where snapshots are
	// bit-identical resumable). 0 means defaultCheckpointEvery.
	Every int
	// Resume loads any matching checkpoint found in Dir and continues
	// from it instead of starting the run over.
	Resume bool
	// Workers bounds how many (point, run) tasks execute concurrently;
	// 0 or 1 means sequential. Results are folded in deterministic order
	// regardless, so the output is identical at any worker count.
	Workers int
	// Stop, when closed, asks in-flight runs to checkpoint at the next
	// refresh boundary and return ErrInterrupted (graceful drain).
	Stop <-chan struct{}

	// hooks receives per-task observability callbacks (checkpoint writes,
	// resumes, per-chunk progress). Only the Engine sets it; nil (the
	// ExecuteDeck and RunSim paths) disables all task telemetry.
	hooks *taskHooks
}

// defaultCheckpointEvery is the checkpoint cadence (in events) when
// RunConfig.Every is zero — frequent enough that a crash loses seconds
// of work, rare enough that snapshot I/O is noise.
const defaultCheckpointEvery = 1 << 15

// deckKey fingerprints everything that determines a run's trajectory:
// the deck's canonical Format output (circuit, spec, seeds) plus the
// trajectory-relevant overrides. Checkpoint files embed and verify the
// key, so a resumed submission only picks up state that provably
// belongs to the same work; Parallel is excluded because worker count
// never changes the trajectory.
func deckKey(d *netlist.Deck, ov Overrides) (string, error) {
	var buf bytes.Buffer
	if err := d.Format(&buf); err != nil {
		return "", err
	}
	fmt.Fprintf(&buf, "|rt=%v|sparse=%v|eps=%016x",
		ov.RateTables, ov.Sparse, math.Float64bits(ov.CinvEps))
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(buf.Bytes())), nil
}

// checkpointPath names the checkpoint file of one (point, run) task.
func checkpointPath(dir, key string, point, run int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-p%04d-r%03d.ckpt", key, point, run))
}

// sweepValues expands the deck's sweep directive into the ordered
// operating-point values ([0] when the deck has no sweep). The
// iteration matches the original RunDeck loop exactly — accumulation
// order is part of the bit-identity contract.
func sweepValues(spec *netlist.Spec) []float64 {
	if sw := spec.Sweep; sw != nil {
		var vals []float64
		for v := -sw.Max; v <= sw.Max+sw.Step/2; v += sw.Step {
			vals = append(vals, v)
		}
		return vals
	}
	return []float64{0}
}

// validateDeck rejects decks that cannot be executed: nothing recorded
// or no stopping criterion.
func validateDeck(d *netlist.Deck) error {
	if len(d.Spec.RecordJuncs) == 0 {
		return fmt.Errorf("semsim: deck records no junctions (add a 'record' line)")
	}
	if d.Spec.Jumps == 0 && d.Spec.MaxTime == 0 {
		return fmt.Errorf("semsim: deck sets neither 'jumps' nor 'time'")
	}
	return nil
}

// foldResults reduces per-(point, run) results into the final points in
// the same float operation order as the historical sequential loop:
// for each recorded junction, run contributions are added in run order
// and divided by the run count. This keeps ExecuteDeck's output
// bit-identical at any Workers setting.
func foldResults(spec *netlist.Spec, vals []float64, results [][]runResult) []Point {
	runs := spec.Runs
	if runs < 1 {
		runs = 1
	}
	out := make([]Point, len(vals))
	for i, v := range vals {
		pt := Point{SweepV: v, Current: map[int]float64{}}
		for run := 0; run < runs; run++ {
			r := results[i][run]
			if r.Blockaded {
				pt.Blockaded = true
				continue
			}
			pt.Events += r.Events
			for _, j := range spec.RecordJuncs {
				pt.Current[j] += r.Current[j] / float64(runs)
			}
		}
		out[i] = pt
	}
	return out
}

// ExecuteDeck runs every (sweep point, run) task of a deck and returns
// the folded operating points. With cfg.Dir set, each task checkpoints
// periodically and — with cfg.Resume — continues from any valid
// checkpoint it finds, making long sweeps crash-safe; completed tasks
// delete their files. Cancel ctx to abandon the execution immediately,
// or close cfg.Stop to drain: in-flight tasks persist a final
// checkpoint and ExecuteDeck returns ErrInterrupted.
func ExecuteDeck(ctx context.Context, d *netlist.Deck, ov Overrides, cfg RunConfig) ([]Point, error) {
	if err := validateDeck(d); err != nil {
		return nil, err
	}
	spec := d.Spec
	vals := sweepValues(&spec)
	key, err := deckKey(d, ov)
	if err != nil {
		return nil, err
	}
	runs := spec.Runs
	if runs < 1 {
		runs = 1
	}
	results := make([][]runResult, len(vals))
	for i := range results {
		results[i] = make([]runResult, runs)
	}

	type task struct{ point, run int }
	tasks := make([]task, 0, len(vals)*runs)
	for i := range vals {
		for r := 0; r < runs; r++ {
			tasks = append(tasks, task{i, r})
		}
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	run := func(t task) error {
		res, err := runDeckPoint(ctx, d, ov, key, t.point, vals[t.point], t.run, cfg)
		if err != nil {
			if errors.Is(err, ErrInterrupted) || errors.Is(err, context.Canceled) {
				return err
			}
			return fmt.Errorf("point %d (v=%g) run %d: %w", t.point, vals[t.point], t.run, err)
		}
		results[t.point][t.run] = res
		return nil
	}

	if workers == 1 {
		for _, t := range tasks {
			if err := run(t); err != nil {
				return nil, err
			}
		}
	} else {
		// Cancel the siblings once any task fails; the deterministic fold
		// below makes completion order irrelevant to the result.
		tctx, cancel := context.WithCancel(ctx)
		defer cancel()
		work := make(chan task)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for t := range work {
					if tctx.Err() != nil {
						continue
					}
					if err := run(t); err != nil && errs[w] == nil {
						errs[w] = err
						cancel()
					}
				}
			}(w)
		}
		for _, t := range tasks {
			work <- t
		}
		close(work)
		wg.Wait()
		// Prefer a real failure over the cancellations it caused.
		var firstErr error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if firstErr == nil || errors.Is(firstErr, context.Canceled) {
				firstErr = err
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if o := obs.Global(); o != nil {
		o.Registry().Counter("jobs.decks_executed").Add(1)
	}
	if cfg.Dir != "" {
		// The whole deck folded: the per-task done markers (kept so a
		// resume after a partial interruption skips finished tasks) have
		// served their purpose. Best-effort removal.
		for i := range vals {
			for r := 0; r < runs; r++ {
				os.Remove(checkpointPath(cfg.Dir, key, i, r))
			}
		}
	}
	return foldResults(&spec, vals, results), nil
}
