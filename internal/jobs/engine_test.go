package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedEngine builds an engine whose tasks run the given function
// instead of a simulation.
func scriptedEngine(t *testing.T, cfg EngineConfig, fn func(ctx context.Context, tk task, rc RunConfig) (runResult, error)) *Engine {
	t.Helper()
	e := newEngine(cfg, fn)
	t.Cleanup(e.Close)
	return e
}

func submit(t *testing.T, e *Engine) *Job {
	t.Helper()
	j, err := e.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func waitState(t *testing.T, e *Engine, j *Job, want State) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job stuck in %s: %v", e.Status(j).State, err)
	}
	if st := e.Status(j); st.State != want {
		t.Fatalf("job state %s (err %q), want %s", st.State, st.Error, want)
	}
}

// A transiently failing task must be retried with backoff and succeed
// within the retry budget.
func TestEngineRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	e := scriptedEngine(t, EngineConfig{Workers: 2, MaxRetries: 2, RetryBackoff: time.Millisecond},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			if tk.point == 0 && tk.run == 0 && calls.Add(1) < 3 {
				return runResult{}, &transientError{errors.New("disk hiccup")}
			}
			return runResult{Current: map[int]float64{1: 1, 2: 1}}, nil
		})
	j := submit(t, e)
	waitState(t, e, j, StateDone)
	if got := calls.Load(); got != 3 {
		t.Fatalf("flaky task ran %d times, want 3 (two retries)", got)
	}
	if _, err := e.Result(j); err != nil {
		t.Fatal(err)
	}
}

// Exhausting the retry budget fails the job with the underlying error.
func TestEngineRetryBudgetExhausted(t *testing.T) {
	e := scriptedEngine(t, EngineConfig{Workers: 1, MaxRetries: 1, RetryBackoff: time.Millisecond},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			return runResult{}, &transientError{errors.New("disk gone")}
		})
	j := submit(t, e)
	waitState(t, e, j, StateFailed)
	if _, err := e.Result(j); err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("failed job error %v does not carry the cause", err)
	}
}

// Permanent (non-transient) failures must not be retried at all.
func TestEngineDoesNotRetryPermanentFailures(t *testing.T) {
	var calls atomic.Int32
	e := scriptedEngine(t, EngineConfig{Workers: 1, MaxRetries: 3, RetryBackoff: time.Millisecond},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			calls.Add(1)
			return runResult{}, errors.New("physics broke")
		})
	j := submit(t, e)
	waitState(t, e, j, StateFailed)
	// 6 tasks (3 points x 2 runs), one call each, no retries.
	if got := calls.Load(); got != 6 {
		t.Fatalf("permanent failures ran %d tasks, want 6 (no retries)", got)
	}
}

// Cancel must abort running tasks (via their context) and drop queued
// ones, landing the job in StateCanceled.
func TestEngineCancel(t *testing.T) {
	started := make(chan string, 16)
	e := scriptedEngine(t, EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			started <- fmt.Sprintf("p%dr%d", tk.point, tk.run)
			<-ctx.Done()
			return runResult{}, ctx.Err()
		})
	j := submit(t, e)
	<-started // first task is in flight and blocked on its context
	if !e.Cancel(j.ID()) {
		t.Fatal("Cancel did not find the job")
	}
	waitState(t, e, j, StateCanceled)
	if e.Cancel("j999999") {
		t.Fatal("Cancel invented a job")
	}
	if _, err := e.Result(j); err == nil {
		t.Fatal("canceled job handed out a result")
	}
}

// A job timeout cancels the job the same way an explicit Cancel does.
func TestEngineJobTimeout(t *testing.T) {
	e := scriptedEngine(t, EngineConfig{Workers: 1, JobTimeout: 5 * time.Millisecond},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			<-ctx.Done()
			return runResult{}, ctx.Err()
		})
	j := submit(t, e)
	waitState(t, e, j, StateCanceled)
}

// Shutdown drains: running tasks get the drain signal (and report
// ErrInterrupted, as a real run would after its final checkpoint),
// queued tasks never start, and the job lands in StateInterrupted.
func TestEngineShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 16)
	e := scriptedEngine(t, EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			started <- struct{}{}
			select {
			case <-rc.Stop:
				return runResult{}, ErrInterrupted
			case <-ctx.Done():
				return runResult{}, ctx.Err()
			}
		})
	j := submit(t, e)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st := e.Status(j); st.State != StateInterrupted {
		t.Fatalf("drained job is %s, want %s", st.State, StateInterrupted)
	}
	if _, err := e.Result(j); err == nil || !strings.Contains(err.Error(), "resubmit") {
		t.Fatalf("interrupted job error %v does not point at resume", err)
	}
	if _, err := e.Submit(parseDeck(t, testDeck), Overrides{}); err == nil {
		t.Fatal("shut-down engine accepted a submission")
	}
}

// An expired Shutdown context hard-cancels what is still running.
func TestEngineShutdownHardCancel(t *testing.T) {
	started := make(chan struct{}, 16)
	e := scriptedEngine(t, EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			started <- struct{}{}
			<-ctx.Done() // ignores the drain: only a hard cancel stops it
			return runResult{}, ctx.Err()
		})
	j := submit(t, e)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown returned %v, want deadline exceeded", err)
	}
	if st := e.Status(j); st.State != StateCanceled && st.State != StateInterrupted {
		t.Fatalf("hard-canceled job is %s", st.State)
	}
}

// Submission validation rejects broken decks and a malformed deck never
// reaches the queue.
func TestEngineSubmitValidates(t *testing.T) {
	e := scriptedEngine(t, EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			return runResult{Current: map[int]float64{}}, nil
		})
	bad := parseDeck(t, strings.Replace(testDeck, "record 1 2", "", 1))
	if _, err := e.Submit(bad, Overrides{}); err == nil {
		t.Fatal("deck without record lines accepted")
	}
	if len(e.Jobs()) != 0 {
		t.Fatal("rejected submission left a job behind")
	}
}

// The engine defaults within-run parallelism to serial when run-level
// parallelism already fills the machine — unless the deck or the
// submission chose a count.
func TestEngineParallelDefaulting(t *testing.T) {
	got := make(chan int, 16)
	fn := func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
		got <- tk.job.ov.Parallel
		return runResult{Current: map[int]float64{1: 0, 2: 0}}, nil
	}

	e := scriptedEngine(t, EngineConfig{Workers: 4}, fn)
	j := submit(t, e)
	waitState(t, e, j, StateDone)
	if p := <-got; p != 1 {
		t.Fatalf("multi-worker engine defaulted Parallel to %d, want 1", p)
	}

	j2, err := e.Submit(parseDeck(t, testDeck), Overrides{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, j2, StateDone)
	drainInts(got)
	// Find the override on the job itself; the explicit choice survives.
	if j2.ov.Parallel != 3 {
		t.Fatalf("explicit Parallel=3 rewritten to %d", j2.ov.Parallel)
	}
}

func drainInts(ch chan int) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// End-to-end on real simulations: several jobs in flight on a shared
// pool produce exactly what a direct ExecuteDeck of the same deck does.
func TestEngineRealRunsMatchExecuteDeck(t *testing.T) {
	decks := []string{
		testDeck,
		strings.Replace(testDeck, "seed 11", "seed 21", 1),
		strings.Replace(testDeck, "seed 11", "seed 31", 1),
		strings.Replace(testDeck, "seed 11", "seed 41", 1),
	}
	e := NewEngine(EngineConfig{Workers: 4, CheckpointDir: t.TempDir(), CheckpointEvery: 1})
	t.Cleanup(e.Close)

	jobsList := make([]*Job, len(decks))
	for i, src := range decks {
		j, err := e.Submit(parseDeck(t, src), Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		jobsList[i] = j
	}
	for i, j := range jobsList {
		waitState(t, e, j, StateDone)
		got, err := e.Result(j)
		if err != nil {
			t.Fatal(err)
		}
		// ov.Parallel was defaulted to 1 by the engine; mirror that.
		want, err := ExecuteDeck(context.Background(), parseDeck(t, decks[i]), Overrides{Parallel: 1}, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, want, got, fmt.Sprintf("engine job %d", i))
	}
}
