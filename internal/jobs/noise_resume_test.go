package jobs

import (
	"context"
	"errors"
	"math"
	"testing"
)

// noiseTestDeck is testDeck with noise recording on both junctions: a
// spectral grid plus explicit window on junction 1 and auto-calibrated
// counting statistics on junction 2.
const noiseTestDeck = `
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.004
record noise 1 1e9 5e9
record fano 1 2e-11
record fano 2
jumps 4000 2
sweep 2 0.02 0.02
symm 1
seed 11
temp 5
adaptive 0.05
refresh 256
`

// sameNoise asserts two folded noise maps are bit-identical.
func sameNoise(t *testing.T, want, got []Point, label string) {
	t.Helper()
	for i := range want {
		w, g := want[i].Noise, got[i].Noise
		if len(w) != len(g) {
			t.Fatalf("%s: point %d records %d noise juncs, want %d", label, i, len(g), len(w))
		}
		for j, ws := range w {
			gs, ok := g[j]
			if !ok {
				t.Fatalf("%s: point %d lost noise junction %d", label, i, j)
			}
			if ws.Runs != gs.Runs || ws.Windows != gs.Windows ||
				math.Float64bits(ws.MeanI) != math.Float64bits(gs.MeanI) ||
				math.Float64bits(ws.Window) != math.Float64bits(gs.Window) ||
				math.Float64bits(ws.Fano) != math.Float64bits(gs.Fano) ||
				math.Float64bits(ws.FanoErr) != math.Float64bits(gs.FanoErr) {
				t.Fatalf("%s: point %d junction %d noise differs:\nwant %+v\ngot  %+v", label, i, j, ws, gs)
			}
			if len(ws.S) != len(gs.S) {
				t.Fatalf("%s: point %d junction %d spectral grid differs", label, i, j)
			}
			for k := range ws.S {
				if math.Float64bits(ws.S[k]) != math.Float64bits(gs.S[k]) ||
					math.Float64bits(ws.SErr[k]) != math.Float64bits(gs.SErr[k]) {
					t.Fatalf("%s: point %d junction %d S[%d] differs: %g±%g vs %g±%g",
						label, i, j, k, ws.S[k], ws.SErr[k], gs.S[k], gs.SErr[k])
				}
			}
		}
	}
}

// TestNoiseDeckFoldsDeterministically: the folded noise statistics
// must be bit-identical at any worker count and schedule, like the
// currents they ride along with.
func TestNoiseDeckFoldsDeterministically(t *testing.T) {
	d := parseDeck(t, noiseTestDeck)
	ref, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ref {
		if len(p.Noise) != 2 {
			t.Fatalf("point %d: %d noise junctions, want 2", i, len(p.Noise))
		}
		if st := p.Noise[1]; st.Runs != 2 || len(st.S) != 2 || st.Windows == 0 {
			t.Fatalf("point %d junction 1 fold looks wrong: %+v", i, st)
		}
		if st := p.Noise[2]; st.Window <= 0 {
			t.Fatalf("point %d junction 2 auto window not calibrated: %+v", i, st)
		}
	}
	par, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 4}, RunConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, ref, par, "parallel")
	sameNoise(t, ref, par, "parallel")
}

// TestNoiseDeckResumeBitIdentical extends the drain/resume tentpole
// invariant to noise state: interrupting at every checkpoint boundary
// and resuming must fold to the exact statistics of an uninterrupted
// execution — the accumulators (including auto-calibrated windows)
// travel in the checkpoints.
func TestNoiseDeckResumeBitIdentical(t *testing.T) {
	d := parseDeck(t, noiseTestDeck)
	ref, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	closed := make(chan struct{})
	close(closed)
	var got []Point
	resumes := 0
	for {
		got, err = ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
			Dir: dir, Every: 1, Resume: true, Workers: 2, Stop: closed,
		})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatal(err)
		}
		resumes++
		if resumes > 500 {
			t.Fatal("drain/resume loop does not converge")
		}
	}
	if resumes == 0 {
		t.Fatal("test never interrupted a run; it proves nothing")
	}
	t.Logf("converged after %d interrupt/resume cycles", resumes)
	samePoints(t, ref, got, "resumed")
	sameNoise(t, ref, got, "resumed")
}

// TestFanoWindowOverride: the submission-level window override changes
// the counting statistics' τ but — being measurement-only state — must
// leave the trajectory (currents, event counts) untouched.
func TestFanoWindowOverride(t *testing.T) {
	d := parseDeck(t, noiseTestDeck)
	base, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const tau = 3e-11
	ov, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1, FanoWindow: tau}, RunConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, base, ov, "fano-window override")
	for i, p := range ov {
		for j, st := range p.Noise {
			if math.Abs(st.Window-tau) > tau*1e-12 {
				t.Errorf("point %d junction %d window %g, want override %g", i, j, st.Window, tau)
			}
		}
		if base[i].Noise[2].Window == tau {
			t.Errorf("point %d: base run already used the override window; test proves nothing", i)
		}
	}
	// Folding with different windows must actually change the counting
	// statistics (sanity that the override reached the accumulators).
	if base[0].Noise[1].Windows == ov[0].Noise[1].Windows {
		t.Errorf("window counts identical (%d) despite different τ", base[0].Noise[1].Windows)
	}
}
