package jobs

import (
	"os"
	"path/filepath"
	"testing"

	"semsim/internal/solver"
)

// FuzzRunFileDecode hardens the batch-resume envelope reader: arbitrary
// file bytes must either be rejected with an error or decode to an
// envelope that satisfies every invariant loadRunFile promises (format
// tag, version, checksum, payload presence) — never a panic, never a
// silently-accepted corrupt checkpoint. The CRC makes blind mutations
// of a valid envelope fail; mutations that re-encode canonically (the
// decode–re-encode checksum round trip) are the interesting survivors.
func FuzzRunFileDecode(f *testing.F) {
	// Seed with genuine envelopes of both phases, written by the real
	// save path so the checksum is valid.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.json")
	if err := saveRunFile(seedPath, &runFile{
		Key: "deck-1", Point: 2, Run: 3, Phase: phaseDone,
		Result: &runResult{Events: 41, Current: map[int]float64{0: 1e-9}},
	}); err != nil {
		f.Fatal(err)
	}
	done, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(done)
	if err := saveRunFile(seedPath, &runFile{
		Key: "deck-1", Phase: "running", PhaseStart: 7,
		Solver: &solver.Checkpoint{Version: 1, OptionsHash: "x", Electrons: []int{0}},
	}); err != nil {
		f.Fatal(err)
	}
	running, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(running)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":"semsim-run-checkpoint","version":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cp.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rf, err := loadRunFile(path)
		if err != nil {
			return // rejected: the correct answer for corrupt envelopes
		}
		if rf.Format != FileFormat || rf.Version != FileVersion {
			t.Fatalf("accepted envelope with format %q version %d", rf.Format, rf.Version)
		}
		if rf.Phase == phaseDone {
			if rf.Result == nil {
				t.Fatal("accepted done envelope without a result")
			}
		} else if rf.Solver == nil {
			t.Fatal("accepted in-progress envelope without solver state")
		}
		sum, err := rf.checksum()
		if err != nil || rf.Checksum != sum {
			t.Fatalf("accepted envelope fails its own checksum: stored %08x computed %08x (err %v)", rf.Checksum, sum, err)
		}
	})
}
