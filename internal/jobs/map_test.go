package jobs

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// mapDeck is a small adaptive stability-map deck: a 4x3 coarse grid
// over (drain bias, gate bias) refined two dyadic levels onto a 13x9
// fine lattice wherever the coarse currents show contrast.
const mapDeck = `
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0
record 1 2
jumps 1200
map x 1 -0.03 0.03 4
map y 3 0 0.04 3
refine 2 0.15
seed 7
temp 5
adaptive 0.05
refresh 256
`

func sameMapPoints(t *testing.T, want, got []Point, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.SweepV != g.SweepV || w.Y != g.Y || w.Blockaded != g.Blockaded || w.Events != g.Events {
			t.Fatalf("%s: point %d header differs:\nwant %+v\ngot  %+v", label, i, w, g)
		}
		for j, c := range w.Current {
			if g.Current[j] != c {
				t.Fatalf("%s: point %d junction %d current %g, want %g (bit-exact)", label, i, j, g.Current[j], c)
			}
		}
	}
}

// A map deck must simulate the coarse grid plus adaptively planned
// refinement points — strictly fewer than the uniform fine lattice —
// and fold to the identical points at any worker count.
func TestExecuteDeckMapRefines(t *testing.T) {
	d := parseDeck(t, mapDeck)
	ref, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	coarse := 4 * 3
	fine := 13 * 9
	if len(ref) <= coarse {
		t.Fatalf("no refinement happened: %d points (coarse grid is %d)", len(ref), coarse)
	}
	if len(ref) >= fine {
		t.Fatalf("refinement simulated the whole fine lattice: %d of %d", len(ref), fine)
	}
	// Output is sorted by fine-lattice index: (y, x) lexicographic.
	for i := 1; i < len(ref); i++ {
		a, b := ref[i-1], ref[i]
		if b.Y < a.Y || (b.Y == a.Y && b.SweepV <= a.SweepV) {
			t.Fatalf("points not in fine-lattice order at %d: (%g,%g) then (%g,%g)",
				i, a.SweepV, a.Y, b.SweepV, b.Y)
		}
	}
	for _, workers := range []int{2, 5} {
		got, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sameMapPoints(t, ref, got, "workers")
	}
}

// A map execution interrupted at every checkpoint boundary and resumed
// each time — replaying completed tasks from done markers, re-planning
// refinement waves from identical folded currents — must converge to
// the exact uninterrupted result.
func TestMapDeckResumeBitIdentical(t *testing.T) {
	d := parseDeck(t, mapDeck)
	ref, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	closed := make(chan struct{})
	close(closed)
	var got []Point
	resumes := 0
	for {
		got, err = ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{
			Dir: dir, Every: 1, Resume: true, Workers: 2, Stop: closed,
		})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatal(err)
		}
		resumes++
		if resumes > 800 {
			t.Fatal("drain/resume loop does not converge")
		}
	}
	if resumes == 0 {
		t.Fatal("test never interrupted a run; it proves nothing")
	}
	t.Logf("map deck converged after %d interrupt/resume cycles", resumes)
	sameMapPoints(t, ref, got, "resumed")
	left, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("completed execution left checkpoints behind: %v", left)
	}
}

// The Engine must execute map decks with dynamic refinement fan-out —
// new waves queued as earlier ones complete — and produce exactly the
// synchronous ExecuteDeck result at any worker count.
func TestEngineMapJobMatchesExecuteDeck(t *testing.T) {
	d := parseDeck(t, mapDeck)
	ref, err := ExecuteDeck(context.Background(), d, Overrides{Parallel: 1}, RunConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		e := NewEngine(EngineConfig{Workers: workers})
		j, err := e.Submit(parseDeck(t, mapDeck), Overrides{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("map job stuck: %v", err)
		}
		cancel()
		pts, err := e.Result(j)
		if err != nil {
			t.Fatal(err)
		}
		sameMapPoints(t, ref, pts, "engine")
		st := e.Status(j)
		if st.TasksTotal <= 4*3 {
			t.Fatalf("engine never fanned out a refinement wave: %d tasks", st.TasksTotal)
		}
		e.Close()
	}
}

// With ResultCache the engine keeps done markers after a job folds, so
// an identical deck submitted later resumes every task from its marker
// instead of re-simulating.
func TestEngineResultCacheAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine(EngineConfig{Workers: 2, CheckpointDir: dir, ResultCache: true})
	defer e.Close()

	j1, err := e.Submit(parseDeck(t, testDeck), Overrides{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, j1, StateDone)
	p1, err := e.Result(j1)
	if err != nil {
		t.Fatal(err)
	}
	markers, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(markers) == 0 {
		t.Fatal("ResultCache kept no done markers")
	}

	j2, err := e.Submit(parseDeck(t, testDeck), Overrides{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, j2, StateDone)
	p2, err := e.Result(j2)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, p1, p2, "cached")
	if st := e.Status(j2); st.Resumed != st.TasksTotal {
		t.Fatalf("second job resumed %d of %d tasks; every one should hit the result cache",
			st.Resumed, st.TasksTotal)
	}
}

// The session-reuse path (per-worker compiled deck + solver Reset) must
// be bit-identical to building a fresh solver per task.
func TestRunDeckPointSessionMatchesFresh(t *testing.T) {
	for _, src := range []string{testDeck, mapDeck} {
		d := parseDeck(t, src)
		key, err := deckKey(d, Overrides{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		pts := deckPoints(&d.Spec)
		ds := &deckSession{}
		defer ds.Close()
		for _, pt := range pts {
			fresh, err := runDeckPoint(context.Background(), d, Overrides{Parallel: 1}, key, pt, 0, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			reused, err := runDeckPoint(context.Background(), d, Overrides{Parallel: 1}, key, pt, 0, RunConfig{session: ds})
			if err != nil {
				t.Fatal(err)
			}
			if fresh.Events != reused.Events || fresh.Blockaded != reused.Blockaded {
				t.Fatalf("point %d: session run diverged: %+v vs %+v", pt.Fine, reused, fresh)
			}
			for j, c := range fresh.Current {
				if reused.Current[j] != c {
					t.Fatalf("point %d junction %d: session current %g != fresh %g (bit-exact)",
						pt.Fine, j, reused.Current[j], c)
				}
			}
		}
	}
}
