package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"semsim/internal/obs"
)

func startServer(t *testing.T, cfg EngineConfig, o *obs.Observer) (*Engine, *httptest.Server) {
	t.Helper()
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewHandler(e, o))
	t.Cleanup(srv.Close)
	return e, srv
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: bad JSON response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPSubmitPollResult drives the full semsimd API flow with four
// concurrent sweep jobs — the acceptance bar for the daemon — and
// checks every result against a direct in-process execution.
func TestHTTPSubmitPollResult(t *testing.T) {
	_, srv := startServer(t, EngineConfig{Workers: 4, CheckpointDir: t.TempDir()}, nil)

	decks := []string{
		testDeck,
		strings.Replace(testDeck, "seed 11", "seed 21", 1),
		strings.Replace(testDeck, "seed 11", "seed 31", 1),
		strings.Replace(testDeck, "seed 11", "seed 41", 1),
	}
	ids := make([]string, len(decks))
	for i, d := range decks {
		var sub SubmitResponse
		code := doJSON(t, "POST", srv.URL+"/api/v1/jobs", SubmitRequest{Deck: d}, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		if sub.Points != 3 || sub.RunsPerPoint != 2 {
			t.Fatalf("submit %d expanded to %d points x %d runs, want 3 x 2", i, sub.Points, sub.RunsPerPoint)
		}
		ids[i] = sub.ID
	}

	// Poll each job to completion.
	deadline := time.Now().Add(30 * time.Second)
	for i, id := range ids {
		for {
			var st JobStatus
			if code := doJSON(t, "GET", srv.URL+"/api/v1/jobs/"+id, nil, &st); code != http.StatusOK {
				t.Fatalf("status %s: HTTP %d", id, code)
			}
			if st.State == StateDone {
				break
			}
			if st.State == StateFailed || st.State == StateCanceled {
				t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s (%d/%d tasks)", id, st.State, st.TasksDone, st.TasksTotal)
			}
			time.Sleep(5 * time.Millisecond)
		}

		var res ResultResponse
		if code := doJSON(t, "GET", srv.URL+"/api/v1/jobs/"+id+"/result", nil, &res); code != http.StatusOK {
			t.Fatalf("result %s: HTTP %d", id, code)
		}
		want, err := ExecuteDeck(context.Background(), parseDeck(t, decks[i]), Overrides{Parallel: 1}, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, want, res.Points, fmt.Sprintf("http job %s", id))
	}

	// The list endpoint sees all four, done.
	var all []JobStatus
	if code := doJSON(t, "GET", srv.URL+"/api/v1/jobs", nil, &all); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(all) != len(ids) {
		t.Fatalf("list has %d jobs, want %d", len(all), len(ids))
	}
	for _, st := range all {
		if st.State != StateDone {
			t.Fatalf("listed job %s is %s", st.ID, st.State)
		}
	}
}

// Error paths: malformed bodies, unparseable decks, unknown ids, and a
// result requested before the job is done.
func TestHTTPErrorPaths(t *testing.T) {
	block := make(chan struct{})
	e := newEngine(EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return runResult{Current: map[int]float64{1: 0, 2: 0}}, nil
		})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)
	defer close(block)

	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}

	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}

	if code := doJSON(t, "POST", srv.URL+"/api/v1/jobs", SubmitRequest{Deck: "junc bogus"}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("unparseable deck: HTTP %d, want 422", code)
	}
	// Parses but fails validation (records nothing).
	noRecord := strings.Replace(testDeck, "record 1 2\n", "", 1)
	if code := doJSON(t, "POST", srv.URL+"/api/v1/jobs", SubmitRequest{Deck: noRecord}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid deck: HTTP %d, want 422", code)
	}

	if code := doJSON(t, "GET", srv.URL+"/api/v1/jobs/j999999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: HTTP %d, want 404", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/api/v1/jobs/j999999/result", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id result: HTTP %d, want 404", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/jobs/j999999/cancel", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id cancel: HTTP %d, want 404", code)
	}

	var sub SubmitResponse
	if code := doJSON(t, "POST", srv.URL+"/api/v1/jobs", SubmitRequest{Deck: testDeck}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// The scripted task blocks, so the result is not ready.
	if code := doJSON(t, "GET", srv.URL+"/api/v1/jobs/"+sub.ID+"/result", nil, nil); code != http.StatusConflict {
		t.Fatalf("early result: HTTP %d, want 409", code)
	}
}

// Cancel over HTTP lands the job in canceled and the result endpoint
// reports it.
func TestHTTPCancel(t *testing.T) {
	e := newEngine(EngineConfig{Workers: 1},
		func(ctx context.Context, tk task, rc RunConfig) (runResult, error) {
			<-ctx.Done()
			return runResult{}, ctx.Err()
		})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewHandler(e, nil))
	t.Cleanup(srv.Close)

	var sub SubmitResponse
	if code := doJSON(t, "POST", srv.URL+"/api/v1/jobs", SubmitRequest{Deck: testDeck}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/jobs/"+sub.ID+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	j := e.Job(sub.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	doJSON(t, "GET", srv.URL+"/api/v1/jobs/"+sub.ID, nil, &st)
	if st.State != StateCanceled {
		t.Fatalf("canceled job is %s", st.State)
	}
}

// The obs routes mount beside the API when an observer is supplied.
func TestHTTPObsRoutesMounted(t *testing.T) {
	o := obs.New(obs.Config{})
	_, srv := startServer(t, EngineConfig{Workers: 1}, o)
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
	}
}

// An interrupted job resumes across engine restarts purely through the
// checkpoint directory: drain one engine mid-job, start a fresh one
// over the same directory, resubmit the same deck, and the finished
// tasks are reused while the rest complete — bit-identical.
func TestHTTPResumeAcrossEngineRestart(t *testing.T) {
	dir := t.TempDir()
	want, err := ExecuteDeck(context.Background(), parseDeck(t, testDeck), Overrides{Parallel: 1}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}

	e1 := NewEngine(EngineConfig{Workers: 2, CheckpointDir: dir, CheckpointEvery: 1})
	j1, err := e1.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	// Drain immediately: whatever is in flight checkpoints and stops.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := e1.Status(j1)
	if st.State != StateInterrupted && st.State != StateDone {
		t.Fatalf("drained job is %s", st.State)
	}
	if st.State == StateDone {
		t.Skip("job finished before the drain; nothing to resume")
	}

	e2 := NewEngine(EngineConfig{Workers: 2, CheckpointDir: dir, CheckpointEvery: 1})
	t.Cleanup(e2.Close)
	j2, err := e2.Submit(parseDeck(t, testDeck), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e2, j2, StateDone)
	got, err := e2.Result(j2)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, want, got, "after engine restart")
}
