package jobs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"semsim/internal/obs"
	"semsim/internal/solver"
)

// Job observability: every (point, run) task, checkpoint write, retry,
// resume and job state transition is (a) counted on the engine
// observer's registry, (b) journaled into per-worker trace lanes merged
// by GET /jobs/{id}/trace, and (c) published on the engine's event bus
// feeding GET /jobs/{id}/events. All three are passive — recording
// never touches simulator state or random streams — and nil-safe, so an
// engine without an observer pays one branch per hook.

// jobTraceLaneCap bounds each per-worker journal ring of a job trace
// (the job lane uses jobTraceJobCap). Events are ~48 bytes, so a lane
// costs ~100 KiB; the ring overwrites its oldest events and the export
// carries a journal_dropped note when it does.
const (
	jobTraceLaneCap = 1 << 11
	jobTraceJobCap  = 1 << 10
)

// jobStateCode maps an engine State to its journal code.
func jobStateCode(s State) int32 {
	switch s {
	case StateQueued:
		return obs.JobStateQueued
	case StateRunning:
		return obs.JobStateRunning
	case StateDone:
		return obs.JobStateDone
	case StateFailed:
		return obs.JobStateFailed
	case StateCanceled:
		return obs.JobStateCanceled
	case StateInterrupted:
		return obs.JobStateInterrupted
	}
	return obs.JobStateQueued
}

// errClass classifies a task error for retry events and SSE payloads.
func errClass(err error) int32 {
	switch {
	case err == nil:
		return obs.ErrClassOther
	case isTransient(err):
		return obs.ErrClassCheckpointIO
	case errors.Is(err, context.DeadlineExceeded):
		return obs.ErrClassTimeout
	case errors.Is(err, context.Canceled):
		return obs.ErrClassCanceled
	}
	return obs.ErrClassOther
}

// taskOutcome classifies a task's end for KindTaskRun events.
func taskOutcome(err error) int32 {
	switch {
	case err == nil:
		return obs.TaskOutcomeDone
	case errors.Is(err, ErrInterrupted):
		return obs.TaskOutcomeInterrupted
	}
	return obs.TaskOutcomeFailed
}

// engineObs holds the engine's pre-resolved metric handles, so the
// per-task paths never hash metric names. A nil *engineObs (engine
// without an observer) turns every method into a cheap no-op.
type engineObs struct {
	tasksDone    *obs.Counter
	tasksFailed  *obs.Counter
	tasksRetried *obs.Counter
	tasksResumed *obs.Counter
	tasksFresh   *obs.Counter
	taskEvents   *obs.Counter
	ckptWriteNS  *obs.Histogram
	ckptFsyncNS  *obs.Histogram
	ckptBytes    *obs.Histogram
}

// newEngineObs resolves the engine's metric handles on o's registry and
// installs the live queue/worker gauges (closures over e's atomics).
func newEngineObs(o *obs.Observer, e *Engine) *engineObs {
	if o == nil {
		return nil
	}
	r := o.Registry()
	ns := obs.ExpBuckets(1000, 4, 14)   // 1 us .. ~67 s in nanoseconds
	bytes := obs.ExpBuckets(256, 4, 12) // 256 B .. ~1 GiB
	m := &engineObs{
		tasksDone:    r.Counter("jobs.tasks_done"),
		tasksFailed:  r.Counter("jobs.tasks_failed"),
		tasksRetried: r.Counter("jobs.tasks_retried"),
		tasksResumed: r.Counter("jobs.tasks_resumed"),
		tasksFresh:   r.Counter("jobs.tasks_fresh"),
		taskEvents:   r.Counter("jobs.task_events_total"),
		ckptWriteNS:  r.Histogram("jobs.checkpoint_write_ns", ns),
		ckptFsyncNS:  r.Histogram("jobs.checkpoint_fsync_ns", ns),
		ckptBytes:    r.Histogram("jobs.checkpoint_bytes", bytes),
	}
	workers := float64(e.cfg.Workers)
	r.GaugeFunc("jobs.queue_depth", func() float64 { return float64(e.queueLen.Load()) })
	r.GaugeFunc("jobs.running_tasks", func() float64 { return float64(e.running.Load()) })
	r.GaugeFunc("jobs.worker_utilization", func() float64 {
		return float64(e.running.Load()) / workers
	})
	return m
}

func (m *engineObs) checkpoint(st ckptStats) {
	if m == nil {
		return
	}
	m.ckptWriteNS.Observe(float64(st.totalNS))
	m.ckptFsyncNS.Observe(float64(st.fsyncNS))
	m.ckptBytes.Observe(float64(st.bytes))
}

func (m *engineObs) finished(outcome int32) {
	if m == nil {
		return
	}
	if outcome == obs.TaskOutcomeDone {
		m.tasksDone.Add(1)
	} else {
		m.tasksFailed.Add(1)
	}
}

// jobTrace is one job's merged-trace material: a job lane for lifecycle
// transitions and progress, plus one lane per engine worker for task
// spans, checkpoint writes, retries and resumes. Lanes share the job's
// epoch so the merged export lines them up on one wall clock.
type jobTrace struct {
	epoch   time.Time
	job     *obs.Journal
	workers []*obs.Journal
}

func newJobTrace(workers int, epoch time.Time) *jobTrace {
	t := &jobTrace{epoch: epoch, job: obs.NewJournal(jobTraceJobCap, nil)}
	t.workers = make([]*obs.Journal, workers)
	for i := range t.workers {
		t.workers[i] = obs.NewJournal(jobTraceLaneCap, nil)
	}
	return t
}

// wall returns nanoseconds since the job's epoch (its submission).
func (t *jobTrace) wall() int64 { return int64(time.Since(t.epoch)) }

// lanes snapshots the trace for the merged Chrome export.
func (t *jobTrace) lanes() []obs.TraceLane {
	out := make([]obs.TraceLane, 0, 1+len(t.workers))
	out = append(out, t.job.Lane("job"))
	for i, w := range t.workers {
		out = append(out, w.Lane(fmt.Sprintf("worker %d", i)))
	}
	return out
}

// taskHooks carries one task's observability context into the runner:
// the worker's trace lane, the engine metrics, and the job's event bus
// topic. A nil *taskHooks (ExecuteDeck, RunSim, disabled engines) makes
// every method a no-op, keeping the library paths allocation-free.
type taskHooks struct {
	e     *Engine
	j     *Job
	lane  *obs.Journal
	point int
	run   int
}

// resumed records a task picking up a persisted checkpoint (events =
// solver events already applied; 0 when a done marker was reused).
func (h *taskHooks) resumed(events uint64) {
	if h == nil {
		return
	}
	h.e.mu.Lock()
	h.j.resumed++
	h.e.mu.Unlock()
	if m := h.e.eobs; m != nil {
		m.tasksResumed.Add(1)
	}
	if tr := h.j.trace; tr != nil {
		h.lane.Record(obs.Event{Kind: obs.KindTaskResume, Junc: int32(h.point), A: int32(h.run),
			V1: float64(events), Wall: tr.wall()})
	}
	h.e.publish(h.j, "resume", fmt.Sprintf(`{"job":%q,"point":%d,"run":%d,"events_at_resume":%d}`,
		h.j.id, h.point, h.run, events))
}

// fresh records a task starting with no checkpoint to pick up.
func (h *taskHooks) fresh() {
	if h == nil {
		return
	}
	if m := h.e.eobs; m != nil {
		m.tasksFresh.Add(1)
	}
}

// checkpoint records one persisted snapshot: write latency, fsync
// latency and size on the registry, a KindCkptWrite span in the worker
// lane, a checkpoint instant in the job lane, and a bus event.
func (h *taskHooks) checkpoint(st ckptStats) {
	if h == nil {
		return
	}
	h.e.eobs.checkpoint(st)
	if tr := h.j.trace; tr != nil {
		end := tr.wall()
		h.lane.Record(obs.Event{Kind: obs.KindCkptWrite, Junc: int32(h.point), A: int32(h.run),
			V1: float64(st.bytes), V2: float64(st.fsyncNS), Wall: end - st.totalNS, Dur: st.totalNS})
		tr.job.Record(obs.Event{Kind: obs.KindJobState, A: obs.JobStateCheckpoint, Wall: end})
	}
	h.e.publish(h.j, "checkpoint", fmt.Sprintf(`{"job":%q,"point":%d,"run":%d,"bytes":%d,"fsync_ns":%d,"write_ns":%d}`,
		h.j.id, h.point, h.run, st.bytes, st.fsyncNS, st.totalNS))
}

// progressEvery rate-limits per-chunk progress publishes.
const progressEvery = 200 * time.Millisecond

// chunk accumulates solver events applied by one runner chunk and
// publishes a rate-limited progress event (tasks done, events/s, ETA).
//
//semsim:publish
func (h *taskHooks) chunk(events uint64) {
	if h == nil || events == 0 {
		return
	}
	h.j.events.Add(events)
	if m := h.e.eobs; m != nil {
		m.taskEvents.Add(events)
	}
	// Monotonic nanoseconds since the job's submission — a rate-limit
	// stamp, deliberately not wall-clock.
	now := h.j.trace.wall()
	last := h.j.lastProgress.Load()
	if now-last < int64(progressEvery) || !h.j.lastProgress.CompareAndSwap(last, now) {
		return
	}
	h.e.publishProgress(h.j)
}

// BenchObservedRun advances s until its total event count reaches
// maxEvents with the full jobs-layer telemetry attached — registry
// counters and histograms on o, per-worker trace lanes, and bus
// publishes, exactly as an Engine task wires them. It exists for the
// obs-overhead benchmark, which compares this configuration against a
// bare solver run to price the per-chunk instrumentation; it returns
// the events applied. The trajectory is bit-identical to an
// uninstrumented run of the same sim.
func BenchObservedRun(s *solver.Sim, maxEvents uint64, o *obs.Observer, workers int) (uint64, error) {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{cfg: EngineConfig{Workers: workers}, bus: obs.NewBus(0, 0)}
	e.eobs = newEngineObs(o, e)
	j := &Job{id: "bench", created: time.Now(), total: 1}
	j.trace = newJobTrace(workers, j.created)
	p := newPhaseRunner(context.Background(), s,
		RunConfig{hooks: &taskHooks{e: e, j: j, lane: j.trace.workers[0]}})
	p.point, p.run = -1, -1
	start := s.Stats().Events
	err := p.runPhase(phaseSingle, 0, maxEvents, 0)
	return s.Stats().Events - start, err
}

// publish emits one bus event on the job's topic (nil-safe; the bus
// itself never blocks).
//
//semsim:publish
func (e *Engine) publish(j *Job, typ, data string) {
	if e == nil || e.bus == nil {
		return
	}
	e.bus.Publish(j.id, typ, data)
}

// publishProgress emits a progress event: tasks done/total, solver
// events applied, the job-wide event rate, and a task-count ETA. It also
// samples the job lane so the merged trace carries the progress curve.
//
//semsim:publish
func (e *Engine) publishProgress(j *Job) {
	e.mu.Lock()
	done, total := j.done, j.total
	created := j.created
	e.mu.Unlock()
	events := j.events.Load()
	elapsed := time.Since(created).Seconds()
	var rate float64
	if elapsed > 0 {
		rate = float64(events) / elapsed
	}
	eta := -1.0
	if done > 0 {
		eta = elapsed * float64(total-done) / float64(done)
	}
	if tr := j.trace; tr != nil {
		tr.job.Record(obs.Event{Kind: obs.KindProgress, V1: float64(done), V2: rate, Wall: tr.wall()})
	}
	e.publish(j, "progress", fmt.Sprintf(`{"job":%q,"done":%d,"total":%d,"events":%d,"events_per_sec":%.1f,"eta_sec":%.1f}`,
		j.id, done, total, events, rate, eta))
}
