package trace

import (
	"bytes"
	"strings"
	"testing"

	"semsim/internal/solver"
)

func TestWriteVCD(t *testing.T) {
	sig := VCDSignal{
		Name:      "out",
		Threshold: 0.5,
		Samples: []solver.Sample{
			{T: 0, V: 0},
			{T: 1e-9, V: 0.2},
			{T: 2e-9, V: 0.8},
			{T: 3e-9, V: 0.1},
		},
	}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, "tb", []VCDSignal{sig}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$scope module tb $end",
		"$var real 64 ! out_mV $end",
		"$var wire 1 O out $end",
		"$enddefinitions $end",
		"#0\n",
		"#1000\n",
		"#2000\n",
		"#3000\n",
		"1O", // rises above threshold at 2 ns
		"0O", // initial low and the fall at 3 ns
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	// The logic wire must change exactly three times: x->0, 0->1, 1->0.
	if n := strings.Count(out, "O\n"); n != 3 {
		t.Fatalf("logic value changed %d times, want 3:\n%s", n, out)
	}
}

func TestWriteVCDMultiSignalOrdering(t *testing.T) {
	a := VCDSignal{Name: "a", Threshold: 0.5, Samples: []solver.Sample{{T: 2e-12, V: 1}}}
	b := VCDSignal{Name: "b", Threshold: 0.5, Samples: []solver.Sample{{T: 1e-12, V: 1}}}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, "", []VCDSignal{a, b}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "#1\n") > strings.Index(out, "#2\n") {
		t.Fatalf("timestamps out of order:\n%s", out)
	}
}

func TestWriteVCDTooManySignals(t *testing.T) {
	sigs := make([]VCDSignal, 47)
	for i := range sigs {
		sigs[i] = VCDSignal{Name: "s", Samples: []solver.Sample{{T: 0, V: 0}}}
	}
	if err := WriteVCD(&bytes.Buffer{}, "", sigs); err == nil {
		t.Fatal("accepted too many signals")
	}
}
