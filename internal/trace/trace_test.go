package trace

import (
	"math"
	"testing"

	"semsim/internal/solver"
)

func ramp(t0, t1, v0, v1 float64, n int) []solver.Sample {
	w := make([]solver.Sample, n)
	for i := range w {
		f := float64(i) / float64(n-1)
		w[i] = solver.Sample{T: t0 + f*(t1-t0), V: v0 + f*(v1-v0)}
	}
	return w
}

func TestCrossingTimeRising(t *testing.T) {
	w := ramp(0, 1, 0, 1, 101)
	tc, ok := CrossingTime(w, 0.5, true, 0)
	if !ok {
		t.Fatal("no crossing found")
	}
	if math.Abs(tc-0.5) > 1e-9 {
		t.Fatalf("crossing at %g, want 0.5", tc)
	}
}

func TestCrossingTimeFalling(t *testing.T) {
	w := ramp(0, 2, 1, 0, 101)
	tc, ok := CrossingTime(w, 0.25, false, 0)
	if !ok {
		t.Fatal("no crossing found")
	}
	if math.Abs(tc-1.5) > 1e-9 {
		t.Fatalf("crossing at %g, want 1.5", tc)
	}
}

func TestCrossingAfter(t *testing.T) {
	// Two rising crossings; 'after' must skip the first.
	w := []solver.Sample{
		{T: 0, V: 0}, {T: 1, V: 1}, {T: 2, V: 0}, {T: 3, V: 1},
	}
	tc, ok := CrossingTime(w, 0.5, true, 1.5)
	if !ok || math.Abs(tc-2.5) > 1e-9 {
		t.Fatalf("crossing after 1.5: got %g ok=%v, want 2.5", tc, ok)
	}
}

func TestCrossingDirectionality(t *testing.T) {
	w := ramp(0, 1, 0, 1, 11)
	if _, ok := CrossingTime(w, 0.5, false, 0); ok {
		t.Fatal("found falling crossing in rising ramp")
	}
}

func TestNoCrossing(t *testing.T) {
	w := ramp(0, 1, 0, 0.4, 11)
	if _, ok := CrossingTime(w, 0.5, true, 0); ok {
		t.Fatal("found crossing below threshold")
	}
	if _, err := PropagationDelay(w, 0, 0.5, 0, true); err != ErrNoCrossing {
		t.Fatalf("want ErrNoCrossing, got %v", err)
	}
}

func TestSmoothConstant(t *testing.T) {
	w := make([]solver.Sample, 50)
	for i := range w {
		w[i] = solver.Sample{T: float64(i), V: 3}
	}
	sm := Smooth(w, 10)
	for i, s := range sm {
		if math.Abs(s.V-3) > 1e-12 {
			t.Fatalf("smoothing changed constant at %d: %g", i, s.V)
		}
	}
}

func TestSmoothKillsAlternation(t *testing.T) {
	// A 0/1 square alternation (single-electron shuttle noise) should
	// average to ~0.5.
	w := make([]solver.Sample, 200)
	for i := range w {
		w[i] = solver.Sample{T: float64(i), V: float64(i % 2)}
	}
	sm := Smooth(w, 20)
	v := sm[150].V
	if math.Abs(v-0.5) > 0.05 {
		t.Fatalf("alternation smoothed to %g, want ~0.5", v)
	}
}

func TestSmoothZeroWindowIdentity(t *testing.T) {
	w := ramp(0, 1, 0, 1, 5)
	sm := Smooth(w, 0)
	for i := range w {
		if sm[i] != w[i] {
			t.Fatal("zero window must be identity")
		}
	}
}

func TestSmoothPreservesTimes(t *testing.T) {
	w := ramp(0, 1, 0, 1, 17)
	sm := Smooth(w, 0.3)
	for i := range w {
		if sm[i].T != w[i].T {
			t.Fatal("smoothing must not move timestamps")
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	// Step at t=1, output ramps from t=2 to t=4 crossing 0.5 at t=3:
	// delay = 2.
	var w []solver.Sample
	w = append(w, solver.Sample{T: 0, V: 0}, solver.Sample{T: 2, V: 0})
	w = append(w, ramp(2, 4, 0, 1, 50)...)
	d, err := PropagationDelay(w, 1, 0.5, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 0.05 {
		t.Fatalf("delay %g, want 2", d)
	}
}

func TestPropagationDelayTooShort(t *testing.T) {
	if _, err := PropagationDelay([]solver.Sample{{T: 0, V: 0}}, 0, 0.5, 0, true); err == nil {
		t.Fatal("single-sample waveform accepted")
	}
}
