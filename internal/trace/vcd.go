package trace

import (
	"fmt"
	"io"
	"sort"

	"semsim/internal/solver"
)

// VCDSignal is one waveform to export: the analog node voltage plus a
// thresholded logic view.
type VCDSignal struct {
	Name      string
	Threshold float64 // logic threshold for the 1-bit view
	Samples   []solver.Sample
}

// WriteVCD emits the signals as a Value Change Dump (IEEE 1364) with a
// 1 ps timescale, so Monte Carlo waveforms open in ordinary digital
// waveform viewers. Each signal appears twice: `<name>_mV` as a real
// (the analog trace) and `<name>` as a wire (the thresholded logic
// value). Samples need not be aligned across signals.
func WriteVCD(w io.Writer, module string, signals []VCDSignal) error {
	if module == "" {
		module = "semsim"
	}
	if len(signals) > 46 {
		return fmt.Errorf("trace: too many VCD signals (%d), max 46", len(signals))
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	ident := func(i int, analog bool) byte {
		if analog {
			return byte('!' + i)
		}
		return byte('O' + i) // second bank of identifiers
	}

	p("$timescale 1ps $end\n$scope module %s $end\n", module)
	for i, s := range signals {
		p("$var real 64 %c %s_mV $end\n", ident(i, true), s.Name)
		p("$var wire 1 %c %s $end\n", ident(i, false), s.Name)
	}
	p("$upscope $end\n$enddefinitions $end\n")

	// Merge all samples into a single time-ordered change list.
	type change struct {
		t   int64
		sig int
		v   float64
	}
	var all []change
	for i, s := range signals {
		for _, sm := range s.Samples {
			all = append(all, change{t: int64(sm.T * 1e12), sig: i, v: sm.V})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].t != all[b].t {
			return all[a].t < all[b].t
		}
		return all[a].sig < all[b].sig
	})

	lastBit := make([]byte, len(signals))
	for i := range lastBit {
		lastBit[i] = 'x'
	}
	lastT := int64(-1)
	for _, ch := range all {
		if ch.t != lastT {
			p("#%d\n", ch.t)
			lastT = ch.t
		}
		p("r%g %c\n", ch.v*1e3, ident(ch.sig, true))
		bit := byte('0')
		if ch.v > signals[ch.sig].Threshold {
			bit = '1'
		}
		if bit != lastBit[ch.sig] {
			p("%c%c\n", bit, ident(ch.sig, false))
			lastBit[ch.sig] = bit
		}
	}
	return err
}
