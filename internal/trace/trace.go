// Package trace post-processes simulation waveforms: smoothing away
// single-electron granularity and extracting the propagation delays
// that Fig. 7 of the paper compares across solvers.
package trace

import (
	"errors"
	"fmt"

	"semsim/internal/numeric"
	"semsim/internal/solver"
)

// Smooth returns a causal moving-average of the waveform with the given
// time window, sampled at the original points. Single-electron steps of
// e/CL on logic wires otherwise alias into spurious threshold
// crossings.
func Smooth(w []solver.Sample, window float64) []solver.Sample {
	if window <= 0 || len(w) == 0 {
		return w
	}
	out := make([]solver.Sample, len(w))
	// Time-weighted average over [t_i - window, t_i] with sample-and-hold
	// semantics: sample k holds its value on [t_k, t_{k+1}).
	for i := range w {
		t0 := w[i].T - window
		acc, dur := 0.0, 0.0
		for k := i - 1; k >= 0; k-- {
			segStart, segEnd := w[k].T, w[k+1].T
			if segStart < t0 {
				segStart = t0
			}
			if segEnd > segStart {
				acc += w[k].V * (segEnd - segStart)
				dur += segEnd - segStart
			}
			if w[k].T <= t0 {
				break
			}
		}
		if dur > 0 {
			out[i] = solver.Sample{T: w[i].T, V: acc / dur}
		} else {
			out[i] = w[i]
		}
	}
	return out
}

// CrossingTime returns the first time after 'after' at which the
// waveform crosses the threshold in the given direction, linearly
// interpolated between samples. ok is false if no crossing exists.
func CrossingTime(w []solver.Sample, threshold float64, rising bool, after float64) (t float64, ok bool) {
	for i := 1; i < len(w); i++ {
		if w[i].T <= after {
			continue
		}
		a, b := w[i-1], w[i]
		var crossed bool
		if rising {
			crossed = a.V < threshold && b.V >= threshold
		} else {
			crossed = a.V > threshold && b.V <= threshold
		}
		if !crossed {
			continue
		}
		if numeric.SameBits(b.V, a.V) {
			return b.T, true
		}
		f := (threshold - a.V) / (b.V - a.V)
		return a.T + f*(b.T-a.T), true
	}
	return 0, false
}

// ErrNoCrossing indicates the output never crossed the threshold.
var ErrNoCrossing = errors.New("trace: waveform never crossed the threshold")

// PropagationDelay measures the 50%-swing delay from an input step at
// stepTime to the output's threshold crossing. The waveform is smoothed
// over smoothWindow first (0 disables smoothing); rising selects the
// output transition direction.
func PropagationDelay(w []solver.Sample, stepTime, threshold, smoothWindow float64, rising bool) (float64, error) {
	if len(w) < 2 {
		return 0, fmt.Errorf("trace: waveform has %d samples", len(w))
	}
	sm := Smooth(w, smoothWindow)
	t, ok := CrossingTime(sm, threshold, rising, stepTime)
	if !ok {
		return 0, ErrNoCrossing
	}
	return t - stepTime, nil
}
