package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress periodically reports run progress — events simulated,
// event rate, simulated time and (when a target simulated time is
// known) percent complete with an ETA — to a writer, typically stderr.
// It samples the observer's counters from its own goroutine, so it adds
// nothing to the simulation hot path; samples are also journaled as
// KindProgress events when tracing, which export as a counter track in
// the Chrome trace.
type Progress struct {
	o      *Observer
	w      io.Writer
	target float64 // target simulated time (s); 0 = unknown
	stop   chan struct{}
	done   sync.WaitGroup

	mu         sync.Mutex
	lastEvents uint64
	lastAt     time.Time
}

// StartProgress begins periodic reporting on w every interval.
// targetSimTime, when > 0, enables percentage and ETA estimates
// (simulated-time progress is the honest meter here: event cost varies,
// but a run ends at a known simulated time). Nil-safe: with a nil
// observer it returns a nil *Progress whose Stop no-ops.
func StartProgress(o *Observer, w io.Writer, interval time.Duration, targetSimTime float64) *Progress {
	if o == nil || w == nil {
		return nil
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := &Progress{o: o, w: w, target: targetSimTime, stop: make(chan struct{}), lastAt: time.Now()}
	p.done.Add(1)
	go func() {
		defer p.done.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.report()
			}
		}
	}()
	return p
}

// Stop halts reporting and emits one final line (nil-safe).
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	p.done.Wait()
	p.report()
}

func (p *Progress) report() {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	events := p.o.events.Value()
	simT := p.o.simTime.Value()
	dt := now.Sub(p.lastAt).Seconds()
	var rate float64
	if dt > 0 {
		rate = float64(events-p.lastEvents) / dt
	}
	p.lastEvents, p.lastAt = events, now

	line := fmt.Sprintf("obs: %s events  %s ev/s  sim %.4g s", groupDigits(events), fmtRate(rate), simT)
	// Sweep-point progress is the honest meter for maps and sweeps:
	// every point costs roughly the same, and the total is announced up
	// front (SweepTotal). When a sweep is running it owns the percentage
	// and ETA; otherwise a known target simulated time does.
	var frac float64
	if total := p.o.pointsTotal.Value(); total > 0 {
		done := p.o.pointsDone.Value()
		line += fmt.Sprintf("  points %s/%s", groupDigits(done), groupDigits(uint64(total)))
		frac = float64(done) / total
	} else if p.target > 0 && simT > 0 {
		frac = simT / p.target
	}
	if frac > 0 {
		if frac > 1 {
			frac = 1
		}
		line += fmt.Sprintf("  %5.1f%%", 100*frac)
		if frac < 1 {
			// ETA assumes progress advances at its average pace.
			elapsed := now.Sub(p.o.epoch).Seconds()
			remain := elapsed * (1 - frac) / frac
			line += fmt.Sprintf("  eta %s", time.Duration(remain*float64(time.Second)).Round(time.Second))
		}
	}
	fmt.Fprintln(p.w, line)
	if j := p.o.journal; j != nil {
		j.Record(Event{Kind: KindProgress, Sim: simT, V1: float64(events), V2: rate, Wall: p.o.wall()})
	}
}

// groupDigits renders n with thousands separators (1234567 → 1,234,567).
func groupDigits(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var out []byte
	lead := len(s) % 3
	if lead > 0 {
		out = append(out, s[:lead]...)
	}
	for i := lead; i < len(s); i += 3 {
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = append(out, s[i:i+3]...)
	}
	return string(out)
}

// fmtRate renders an event rate compactly (1.23M, 456k, 789).
func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}
