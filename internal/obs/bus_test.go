package obs

import (
	"fmt"
	"sync"
	"testing"
)

// drain pops everything currently buffered on the subscription.
func drain(s *BusSub) []BusEvent {
	var out []BusEvent
	for {
		ev, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// Published events arrive in order with 1-based contiguous sequence
// numbers, and multiple subscribers each see the full stream.
func TestBusFanOutOrdered(t *testing.T) {
	b := NewBus(16, 16)
	s1 := b.Subscribe("j1", 0)
	s2 := b.Subscribe("j1", 0)
	defer s1.Close()
	defer s2.Close()
	for i := 0; i < 5; i++ {
		b.Publish("j1", "tick", fmt.Sprintf("%d", i))
	}
	for _, s := range []*BusSub{s1, s2} {
		evs := drain(s)
		if len(evs) != 5 {
			t.Fatalf("subscriber got %d events, want 5", len(evs))
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) || ev.Data != fmt.Sprintf("%d", i) {
				t.Fatalf("event %d = %+v", i, ev)
			}
		}
	}
	if last := b.Last("j1"); last != 5 {
		t.Fatalf("Last = %d, want 5", last)
	}
	if last := b.Last("nosuch"); last != 0 {
		t.Fatalf("Last(unknown) = %d, want 0", last)
	}
}

// Topics are independent streams: a subscriber on one topic never sees
// another topic's events, and sequence numbers are per topic.
func TestBusTopicsIsolated(t *testing.T) {
	b := NewBus(8, 8)
	s := b.Subscribe("a", 0)
	defer s.Close()
	b.Publish("b", "x", "1")
	b.Publish("a", "y", "2")
	evs := drain(s)
	if len(evs) != 1 || evs[0].Type != "y" || evs[0].Seq != 1 {
		t.Fatalf("cross-topic leak: %+v", evs)
	}
}

// A slow subscriber overflows its ring: the oldest undelivered events
// are dropped and counted, the newest are retained, and publishing
// never blocks.
func TestBusSlowSubscriberDrops(t *testing.T) {
	b := NewBus(64, 4)
	pub := &Counter{}
	drop := &Counter{}
	b.CountOn(pub, drop)
	s := b.Subscribe("j1", 0)
	defer s.Close()
	for i := 0; i < 10; i++ {
		b.Publish("j1", "tick", fmt.Sprintf("%d", i))
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := drain(s)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The newest four survive: seqs 7..10.
	for i, ev := range evs {
		if ev.Seq != uint64(7+i) {
			t.Fatalf("retained event %d has seq %d, want %d", i, ev.Seq, 7+i)
		}
	}
	if pub.Value() != 10 || drop.Value() != 6 {
		t.Fatalf("registry counters published=%d dropped=%d, want 10/6", pub.Value(), drop.Value())
	}
}

// Subscribe(after) replays only the retained events newer than after —
// the Last-Event-ID reconnect path.
func TestBusReplayAfter(t *testing.T) {
	b := NewBus(4, 16)
	for i := 0; i < 10; i++ {
		b.Publish("j1", "tick", fmt.Sprintf("%d", i))
	}
	// Replay ring holds seqs 7..10. A client that saw up to 8 gets 9, 10.
	s := b.Subscribe("j1", 8)
	defer s.Close()
	evs := drain(s)
	if len(evs) != 2 || evs[0].Seq != 9 || evs[1].Seq != 10 {
		t.Fatalf("replay after 8 = %+v, want seqs 9,10", evs)
	}
	// A client too far behind gets whatever the ring still holds; the
	// seq jump (3 -> 7) tells it events were lost.
	s2 := b.Subscribe("j1", 3)
	defer s2.Close()
	evs = drain(s2)
	if len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("replay after 3 = %+v, want seqs 7..10", evs)
	}
	// Live events still follow replayed ones.
	b.Publish("j1", "tick", "10")
	evs = drain(s)
	if len(evs) != 1 || evs[0].Seq != 11 {
		t.Fatalf("live after replay = %+v", evs)
	}
}

// A closed subscription stops receiving and publishing to it is safe.
func TestBusCloseUnsubscribes(t *testing.T) {
	b := NewBus(8, 8)
	s := b.Subscribe("j1", 0)
	s.Close()
	b.Publish("j1", "tick", "1")
	if evs := drain(s); len(evs) != 0 {
		t.Fatalf("closed subscription received %+v", evs)
	}
}

// Ready wakes a waiting consumer; the drain-then-wait loop sees every
// event exactly once under concurrent publishing.
func TestBusConcurrentPublishConsume(t *testing.T) {
	b := NewBus(1024, 1024)
	s := b.Subscribe("j1", 0)
	defer s.Close()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			b.Publish("j1", "tick", "x")
		}
	}()
	seen := 0
	for seen < n {
		<-s.Ready()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			seen++
		}
	}
	wg.Wait()
	if d := s.Dropped(); d != 0 {
		t.Fatalf("dropped %d events with ample buffer", d)
	}
}
