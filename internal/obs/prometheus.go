package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the metric registry,
// standard library only. The same registry snapshot that serves the
// stable JSON form renders here as scrapeable text:
//
//   - counters become `<name>_total` with `# TYPE ... counter`;
//   - gauges (including GaugeFunc samples) become gauges;
//   - histograms become the conventional cumulative `_bucket{le="..."}`
//     series plus `_sum` and `_count`.
//
// Metric names are sanitized to the Prometheus grammar (dots and every
// other illegal rune map to '_'), and series are emitted in sorted name
// order, so identical registries produce identical bytes.

// PrometheusContentType is the Content-Type of the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float64 the way Prometheus parsers expect,
// including the +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the current snapshot of every metric in the
// Prometheus text exposition format (nil-safe: a nil registry writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		// Buckets are cumulative in the exposition; the registry stores
		// per-bucket counts with an implicit +Inf overflow bucket last.
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum)
		}
		cum += h.Buckets[len(h.Buckets)-1]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}

// WantsPrometheus decides which /metrics representation a request asked
// for. The JSON snapshot stays the default (it predates this format and
// tools parse it); Prometheus text is chosen by an explicit
// `?format=prometheus` query, or an Accept header that mentions the
// text exposition or OpenMetrics — which is exactly what a Prometheus
// scraper sends — without mentioning JSON first.
func WantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "application/openmetrics-text") {
		return true
	}
	jsonAt := strings.Index(accept, "application/json")
	textAt := strings.Index(accept, "text/plain")
	if textAt < 0 {
		return false
	}
	return jsonAt < 0 || textAt < jsonAt
}
