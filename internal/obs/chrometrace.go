package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Chrome trace_event export: the journal serializes to the JSON Array
// Format consumed by chrome://tracing, Perfetto and speedscope, so a
// whole Monte Carlo run — every tunnel event, adaptive recompute
// decision, refresh boundary and timed phase — opens in a standard
// trace viewer.
//
// Two timelines coexist in one trace, as separate named threads:
//
//   - tid 1 ("simulated time"): instant events placed at simulated time
//     (1 sim-ns renders as 1 trace-us, so nanosecond device dynamics are
//     comfortably zoomable);
//   - tid 2 ("wall clock"): spans (full refreshes, sweep points, master
//     solves) as complete "X" events at their wall-clock offsets.
//
// The writer is deterministic: identical journals produce identical
// bytes (timestamps come from the events themselves, not the clock).

const (
	chromePID     = 1
	chromeSimTID  = 1
	chromeWallTID = 2
)

// simTS converts simulated seconds to trace microseconds at the 1e3
// zoom (1 ns of device time = 1 us of trace time).
func simTS(simSeconds float64) float64 { return simSeconds * 1e12 }

// WriteChromeTrace writes the journal's retained events in the Chrome
// trace_event JSON array format.
func (j *Journal) WriteChromeTrace(w io.Writer) error {
	if j == nil {
		return fmt.Errorf("obs: tracing was not enabled (Config.Trace)")
	}
	j.mu.Lock()
	names := append([]string(nil), j.names...)
	dropped := j.dropped
	j.mu.Unlock()
	return writeChromeTrace(w, j.Events(), names, dropped)
}

// writeChromeTrace is the pure core (unit-tested against a golden
// file): it depends only on its inputs. A non-zero dropped count — the
// ring overwrote that many events before this export — is surfaced as a
// journal_dropped instant so a truncated trace can never pass for a
// complete one.
func writeChromeTrace(w io.Writer, events []Event, spanNames []string, dropped uint64) error {
	bw := bufio.NewWriter(w)
	io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"simulated time (1 ns = 1 us shown)"}}`,
		chromePID, chromeSimTID)
	fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"wall clock\"}}",
		chromePID, chromeWallTID)
	if dropped > 0 {
		fmt.Fprintf(bw, ",\n{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"name\":\"journal_dropped\",\"cat\":\"meta\",\"s\":\"g\",\"ts\":0,\"args\":{\"dropped_events\":%d,\"note\":\"ring overwrote oldest events; this trace is the most recent window\"}}",
			chromePID, chromeWallTID, dropped)
	}
	for i := range events {
		io.WriteString(bw, ",\n")
		writeChromeEvent(bw, &events[i], spanNames)
	}
	io.WriteString(bw, "\n]}\n")
	return bw.Flush()
}

func writeChromeEvent(w io.Writer, e *Event, spanNames []string) {
	switch e.Kind {
	case KindSpan:
		name := fmt.Sprintf("span#%d", e.Junc)
		if int(e.Junc) >= 0 && int(e.Junc) < len(spanNames) {
			name = spanNames[e.Junc]
		}
		fmt.Fprintf(w, `{"ph":"X","pid":%d,"tid":%d,"name":%q,"cat":"span","ts":%.3f,"dur":%.3f,"args":{"sim_s":%g}}`,
			chromePID, chromeWallTID, name, float64(e.Wall)/1e3, float64(e.Dur)/1e3, e.Sim)
	case KindTunnel, KindCotunnel, KindCooper:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":%q,"cat":"event","s":"t","ts":%.6f,"args":{"junction":%d,"dw_j":%g}}`,
			chromePID, chromeSimTID, e.Kind.String(), simTS(e.Sim), e.Junc, e.V1)
	case KindAdaptiveTest:
		verdict := "kept"
		if e.A != 0 {
			verdict = "recomputed"
		}
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"test j%d: %s","cat":"adaptive","s":"t","ts":%.6f,"args":{"junction":%d,"e_abs_b":%g,"threshold":%g,"spill_depth":%d}}`,
			chromePID, chromeSimTID, e.Junc, verdict, simTS(e.Sim), e.Junc, e.V1, e.V2, e.B)
	case KindAdaptive:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"adaptive update","cat":"adaptive","s":"t","ts":%.6f,"args":{"seed_junction":%d,"tested":%d,"flagged":%d}}`,
			chromePID, chromeSimTID, simTS(e.Sim), e.Junc, e.A, e.B)
	case KindRefresh:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"full refresh","cat":"refresh","s":"p","ts":%.6f,"args":{}}`,
			chromePID, chromeSimTID, simTS(e.Sim))
	case KindInputChange:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"input change","cat":"input","s":"p","ts":%.6f,"args":{"flagged":%d}}`,
			chromePID, chromeSimTID, simTS(e.Sim), e.A)
	case KindFenwick:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"fenwick flush","cat":"fenwick","s":"t","ts":%.6f,"args":{"batch":%d,"rebuilt":%d}}`,
			chromePID, chromeSimTID, simTS(e.Sim), e.A, e.B)
	case KindProgress:
		fmt.Fprintf(w, `{"ph":"C","pid":%d,"name":"events_per_sec","ts":%.3f,"args":{"rate":%g}}`,
			chromePID, float64(e.Wall)/1e3, e.V2)
	default:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"unknown","s":"t","ts":%.6f,"args":{}}`,
			chromePID, chromeSimTID, simTS(e.Sim))
	}
}
