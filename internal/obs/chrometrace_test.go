package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedTraceEvents is a hand-built journal slice covering every event
// kind, with fixed timestamps so the export is reproducible.
func fixedTraceEvents() ([]Event, []string) {
	names := []string{"fullRefresh", "sweep.point"}
	events := []Event{
		{Kind: KindRefresh, Sim: 0, Wall: 10},
		{Kind: KindTunnel, Junc: 3, Sim: 1.25e-9, V1: -3.2e-21, Wall: 1200},
		{Kind: KindAdaptiveTest, Junc: 4, A: 1, B: 0, Sim: 1.25e-9, V1: 2.5e-22, V2: 1.1e-22, Wall: 1300},
		{Kind: KindAdaptiveTest, Junc: 5, A: 0, B: 1, Sim: 1.25e-9, V1: 0.4e-22, V2: 1.3e-22, Wall: 1350},
		{Kind: KindAdaptive, Junc: 3, A: 5, B: 1, Sim: 1.25e-9, Wall: 1400},
		{Kind: KindFenwick, A: 6, B: 0, Sim: 1.25e-9, Wall: 1500},
		{Kind: KindCotunnel, Junc: 7, Sim: 2.5e-9, V1: -1e-21, Wall: 2600},
		{Kind: KindCooper, Junc: 2, Sim: 3e-9, V1: -5e-22, Wall: 3100},
		{Kind: KindInputChange, A: 12, Sim: 4e-9, Wall: 4100},
		{Kind: KindFenwick, A: 40, B: 1, Sim: 4e-9, Wall: 4200},
		{Kind: KindSpan, Junc: 0, Sim: 5e-9, Wall: 5000, Dur: 750},
		{Kind: KindProgress, Sim: 5e-9, V1: 1000, V2: 250000, Wall: 6000},
		{Kind: KindSpan, Junc: 1, Sim: 0, Wall: 100, Dur: 9000},
	}
	return events, names
}

func TestChromeTraceGolden(t *testing.T) {
	events, names := fixedTraceEvents()
	var buf bytes.Buffer
	if err := writeChromeTrace(&buf, events, names, 0); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden (run with -update if intentional)\ngot:\n%s", buf.String())
	}
}

// TestChromeTraceWellFormed parses the export as JSON and checks the
// trace_event schema essentials, independent of the golden bytes.
func TestChromeTraceWellFormed(t *testing.T) {
	events, names := fixedTraceEvents()
	var buf bytes.Buffer
	if err := writeChromeTrace(&buf, events, names, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 2 thread_name metadata records + one record per journal event.
	if want := 2 + len(events); len(doc.TraceEvents) != want {
		t.Fatalf("traceEvents = %d, want %d", len(doc.TraceEvents), want)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "" || ev["pid"] == nil {
			t.Fatalf("malformed record: %v", ev)
		}
	}
	if phases["M"] != 2 {
		t.Fatalf("metadata records = %d, want 2", phases["M"])
	}
	if phases["X"] != 2 {
		t.Fatalf("span (X) records = %d, want 2", phases["X"])
	}
	if phases["C"] != 1 {
		t.Fatalf("counter (C) records = %d, want 1", phases["C"])
	}
}

func TestChromeTraceFromJournal(t *testing.T) {
	o := New(Config{Trace: true, TraceCap: 16})
	o.Event(KindTunnel, 2, 1e-9, -1e-21)
	sp := o.Span("fullRefresh", 1e-9)
	sp.End()
	var buf bytes.Buffer
	if err := o.Journal().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"fullRefresh"`)) {
		t.Fatalf("span name not resolved in export:\n%s", buf.String())
	}
	var j *Journal
	if err := j.WriteChromeTrace(&buf); err == nil {
		t.Fatal("nil journal export should error")
	}
}
