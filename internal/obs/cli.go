package obs

import (
	"fmt"
	"os"
	"time"
)

// CLIConfig carries the observability flags shared by the command-line
// tools: -obs-addr, -trace and -progress.
type CLIConfig struct {
	// Addr serves /metrics, /trace, /heatmap and /debug/pprof/ on this
	// address while the run lasts ("" = off; ":0" picks a free port).
	Addr string
	// TraceFile enables the event journal and writes it as Chrome
	// trace_event JSON to this path when the run stops ("" = off).
	TraceFile string
	// Progress prints periodic progress lines (events/s, simulated
	// time, ETA) to stderr.
	Progress bool
	// TargetSim is the simulated time the run aims for; when > 0 the
	// progress lines include percent complete and an ETA.
	TargetSim float64
}

// StartCLI installs a process-wide observer per cfg — every simulation,
// sweep and master solve then reports to it without further plumbing —
// and returns a stop function that writes the trace file, shuts the
// HTTP endpoint down and uninstalls the observer. With every feature
// off it installs nothing and stop is a no-op.
func StartCLI(cfg CLIConfig) (stop func(), err error) {
	if cfg.Addr == "" && cfg.TraceFile == "" && !cfg.Progress {
		return func() {}, nil
	}
	// The journal feeds both the trace file and the live /trace route.
	o := New(Config{Trace: cfg.TraceFile != "" || cfg.Addr != ""})
	SetGlobal(o)
	var srv *Server
	if cfg.Addr != "" {
		srv, err = Serve(cfg.Addr, o)
		if err != nil {
			SetGlobal(nil)
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: serving metrics, trace and pprof on http://%s/\n", srv.Addr)
	}
	var prog *Progress
	if cfg.Progress {
		prog = StartProgress(o, os.Stderr, 2*time.Second, cfg.TargetSim)
	}
	return func() {
		prog.Stop()
		if cfg.TraceFile != "" {
			if err := writeTraceFile(cfg.TraceFile, o); err != nil {
				fmt.Fprintln(os.Stderr, "obs:", err)
			} else {
				fmt.Fprintf(os.Stderr, "obs: wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", cfg.TraceFile)
			}
		}
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "obs:", err)
			}
		}
		SetGlobal(nil)
	}, nil
}

func writeTraceFile(path string, o *Observer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Journal().WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
