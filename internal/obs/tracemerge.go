package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Merged Chrome trace export for batch jobs: a job runs as N worker
// goroutines each recording into its own Journal (lock-free with
// respect to the others), plus one job-level lane for lifecycle
// transitions. The merger folds those per-worker journals into a single
// trace_event JSON document with one named thread lane per journal, so
// chrome://tracing / Perfetto shows the whole batch — task spans per
// worker, checkpoint writes, retries, resumes and job state changes —
// on one synchronized wall-clock timeline.
//
// All merged events are placed on the wall clock (ns offsets from each
// journal's epoch, rendered as trace microseconds). Journals of one job
// share the engine observer's epoch, so lanes line up.

// TraceLane is one thread lane of a merged trace: a snapshot of one
// journal (or any event slice) plus the metadata needed to render it.
type TraceLane struct {
	// Name labels the lane (e.g. "job", "worker 0").
	Name string
	// Events are the lane's journal events in recording order.
	Events []Event
	// SpanNames resolves interned KindSpan name ids.
	SpanNames []string
	// Dropped is how many events the lane's bounded ring overwrote; a
	// non-zero value adds a journal_dropped note to the lane.
	Dropped uint64
}

// Lane snapshots the journal as a merged-trace lane (nil-safe: a nil
// journal yields an empty lane, so disabled lanes render as empty
// threads rather than panicking).
func (j *Journal) Lane(name string) TraceLane {
	if j == nil {
		return TraceLane{Name: name}
	}
	j.mu.Lock()
	names := append([]string(nil), j.names...)
	dropped := j.dropped
	j.mu.Unlock()
	return TraceLane{Name: name, Events: j.Events(), SpanNames: names, Dropped: dropped}
}

// WriteMergedChromeTrace writes lanes as one Chrome trace_event JSON
// document: pid 1, tid = lane index + 1, with a thread_name metadata
// record per lane. Identical lane snapshots produce identical bytes.
func WriteMergedChromeTrace(w io.Writer, lanes []TraceLane) error {
	bw := bufio.NewWriter(w)
	io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			io.WriteString(bw, ",\n")
		}
		first = false
	}
	for i, lane := range lanes {
		tid := i + 1
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			chromePID, tid, lane.Name)
		if lane.Dropped > 0 {
			sep()
			fmt.Fprintf(bw, `{"ph":"i","pid":%d,"tid":%d,"name":"journal_dropped","cat":"meta","s":"t","ts":0,"args":{"dropped_events":%d,"note":"lane ring overwrote oldest events"}}`,
				chromePID, tid, lane.Dropped)
		}
		for k := range lane.Events {
			sep()
			writeMergedEvent(bw, tid, &lane.Events[k], lane.SpanNames)
		}
	}
	io.WriteString(bw, "\n]}\n")
	return bw.Flush()
}

// wallTS converts a journal wall offset (ns) to trace microseconds.
func wallTS(wallNS int64) float64 { return float64(wallNS) / 1e3 }

// writeMergedEvent renders one journal event into a lane. Unlike the
// single-run export (which splits simulated time and wall clock into
// two fixed threads), every merged event sits on its lane at its
// wall-clock offset; simulated time, where meaningful, rides along in
// args.
func writeMergedEvent(w io.Writer, tid int, e *Event, spanNames []string) {
	switch e.Kind {
	case KindSpan:
		name := fmt.Sprintf("span#%d", e.Junc)
		if int(e.Junc) >= 0 && int(e.Junc) < len(spanNames) {
			name = spanNames[e.Junc]
		}
		fmt.Fprintf(w, `{"ph":"X","pid":%d,"tid":%d,"name":%q,"cat":"span","ts":%.3f,"dur":%.3f,"args":{"sim_s":%g}}`,
			chromePID, tid, name, wallTS(e.Wall), wallTS(e.Dur), e.Sim)
	case KindTaskRun:
		fmt.Fprintf(w, `{"ph":"X","pid":%d,"tid":%d,"name":"task p%d r%d","cat":"task","ts":%.3f,"dur":%.3f,"args":{"point":%d,"run":%d,"outcome":%q,"events":%g}}`,
			chromePID, tid, e.Junc, e.A, wallTS(e.Wall), wallTS(e.Dur),
			e.Junc, e.A, codeName(taskOutcomeNames[:], int(e.B)), e.V1)
	case KindCkptWrite:
		fmt.Fprintf(w, `{"ph":"X","pid":%d,"tid":%d,"name":"checkpoint p%d r%d","cat":"checkpoint","ts":%.3f,"dur":%.3f,"args":{"point":%d,"run":%d,"bytes":%g,"fsync_ns":%g}}`,
			chromePID, tid, e.Junc, e.A, wallTS(e.Wall), wallTS(e.Dur),
			e.Junc, e.A, e.V1, e.V2)
	case KindTaskRetry:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"retry p%d r%d","cat":"retry","s":"t","ts":%.3f,"args":{"point":%d,"run":%d,"attempt":%d,"delay_s":%g,"error_class":%q}}`,
			chromePID, tid, e.Junc, e.A, wallTS(e.Wall),
			e.Junc, e.A, e.B, e.V1, codeName(errClassNames[:], int(e.V2)))
	case KindTaskResume:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"resume p%d r%d","cat":"resume","s":"t","ts":%.3f,"args":{"point":%d,"run":%d,"events_at_resume":%g}}`,
			chromePID, tid, e.Junc, e.A, wallTS(e.Wall), e.Junc, e.A, e.V1)
	case KindJobState:
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":"state: %s","cat":"job","s":"t","ts":%.3f,"args":{"state":%q}}`,
			chromePID, tid, codeName(jobStateNames[:], int(e.A)), wallTS(e.Wall),
			codeName(jobStateNames[:], int(e.A)))
	case KindProgress:
		fmt.Fprintf(w, `{"ph":"C","pid":%d,"name":"tasks_done","ts":%.3f,"args":{"done":%g}}`,
			chromePID, wallTS(e.Wall), e.V1)
		fmt.Fprintf(w, ",\n{\"ph\":\"C\",\"pid\":%d,\"name\":\"events_per_sec\",\"ts\":%.3f,\"args\":{\"rate\":%g}}",
			chromePID, wallTS(e.Wall), e.V2)
	default:
		// Solver-level kinds (tunnel, adaptive, fenwick, ...) can appear
		// when a worker journal doubles as a solver journal; render them
		// as generic instants on the lane's wall clock.
		fmt.Fprintf(w, `{"ph":"i","pid":%d,"tid":%d,"name":%q,"cat":"event","s":"t","ts":%.3f,"args":{"sim_s":%g,"junction":%d}}`,
			chromePID, tid, e.Kind.String(), wallTS(e.Wall), e.Sim, e.Junc)
	}
}
