package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
)

// Server is a live observability endpoint for long runs: metric
// snapshots, the trace journal in Chrome trace_event form, the
// per-junction recompute heatmap, and the standard net/http/pprof
// profiling handlers, all on one address.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Handler returns the observability routes for o as a plain
// http.Handler, so other servers (e.g. the semsimd job daemon) can
// mount /metrics, /trace, /heatmap and /debug/pprof/ next to their own
// API instead of running a second listener. Serve wraps it with a
// listener. Registering also installs a runtime.goroutines gauge on o's
// registry (idempotent).
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>semsim observability</h1><ul>
<li><a href="/metrics">/metrics</a> — registry snapshot (JSON)</li>
<li><a href="/trace">/trace</a> — Chrome trace_event journal (open in chrome://tracing or ui.perfetto.dev)</li>
<li><a href="/heatmap">/heatmap</a> — per-junction recompute counts (JSON)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — live profiling</li>
</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Content negotiation: the stable JSON snapshot stays the default;
		// Prometheus scrapers (Accept: text/plain or openmetrics, or an
		// explicit ?format=prometheus) get the text exposition.
		if WantsPrometheus(r) {
			w.Header().Set("Content-Type", PrometheusContentType)
			if err := o.Registry().WritePrometheus(w); err != nil {
				// The client hung up mid-response; nothing to clean up.
				return
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := o.Registry().WriteJSON(w); err != nil {
			// The client hung up mid-response; nothing to clean up.
			return
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		j := o.Journal()
		if j == nil {
			http.Error(w, "tracing not enabled (run with tracing on)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := j.WriteChromeTrace(w); err != nil {
			// The client hung up mid-response; nothing to clean up.
			return
		}
	})
	mux.HandleFunc("/heatmap", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeHeatmapJSON(w, o.Heatmap())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	o.Registry().GaugeFunc("runtime.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	return mux
}

// Serve starts an HTTP observability endpoint for o on addr and
// returns once the listener is bound. Routes:
//
//	/metrics        registry snapshot (JSON)
//	/trace          journal in Chrome trace_event format (load in
//	                chrome://tracing or https://ui.perfetto.dev)
//	/heatmap        per-junction recompute counts (JSON)
//	/debug/pprof/   live CPU/heap/block profiles
func Serve(addr string, o *Observer) (*Server, error) {
	if o == nil {
		return nil, fmt.Errorf("obs: Serve needs a non-nil Observer")
	}
	mux := Handler(o)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }

// Heatmap returns a copy of the per-junction recompute counts
// accumulated by Recomputed (nil-safe).
func (o *Observer) Heatmap() []uint32 {
	if o == nil {
		return nil
	}
	o.heatMu.Lock()
	defer o.heatMu.Unlock()
	return append([]uint32(nil), o.heat...)
}

// HeatmapSummary condenses the recompute heatmap into the numbers the
// adaptivity claim rests on: how concentrated the recomputation was.
type HeatmapSummary struct {
	Junctions  int     `json:"junctions"`
	Total      uint64  `json:"total_recomputes"`
	Max        uint32  `json:"max"`
	MaxJunc    int     `json:"max_junction"`
	NonZero    int     `json:"nonzero_junctions"`
	P50        uint32  `json:"p50"`
	P90        uint32  `json:"p90"`
	Top10Share float64 `json:"top10pct_share"` // fraction of recomputes on the hottest 10% of junctions
}

// SummarizeHeatmap computes concentration statistics over per-junction
// recompute counts.
func SummarizeHeatmap(heat []uint32) HeatmapSummary {
	s := HeatmapSummary{Junctions: len(heat), MaxJunc: -1}
	if len(heat) == 0 {
		return s
	}
	sorted := append([]uint32(nil), heat...)
	for j, c := range heat {
		s.Total += uint64(c)
		if c > 0 {
			s.NonZero++
		}
		if c > s.Max {
			s.Max, s.MaxJunc = c, j
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = sorted[len(sorted)/2]
	s.P90 = sorted[len(sorted)*9/10]
	if s.Total > 0 {
		topN := (len(sorted) + 9) / 10
		var top uint64
		for _, c := range sorted[len(sorted)-topN:] {
			top += uint64(c)
		}
		s.Top10Share = float64(top) / float64(s.Total)
	}
	return s
}

func writeHeatmapJSON(w http.ResponseWriter, heat []uint32) {
	sum := SummarizeHeatmap(heat)
	fmt.Fprintf(w, `{"summary":{"junctions":%d,"total_recomputes":%d,"max":%d,"max_junction":%d,"nonzero_junctions":%d,"p50":%d,"p90":%d,"top10pct_share":%.4f},"counts":[`,
		sum.Junctions, sum.Total, sum.Max, sum.MaxJunc, sum.NonZero, sum.P50, sum.P90, sum.Top10Share)
	for i, c := range heat {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "%d", c)
	}
	fmt.Fprint(w, "]}\n")
}
