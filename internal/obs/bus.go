package obs

import (
	"sync"
)

// BusEvent is one record published on a Bus: a per-topic monotonic
// sequence number (1-based; SSE clients echo it back as Last-Event-ID
// to resume a stream), a short type tag (the SSE event name) and a
// pre-rendered payload, typically one JSON object.
type BusEvent struct {
	// Seq orders the event within its topic, starting at 1.
	Seq uint64
	// Type tags the event for dispatch ("task_done", "progress", ...).
	Type string
	// Data is the payload, rendered by the publisher.
	Data string
}

// Bus is a bounded fan-out event stream keyed by topic (one topic per
// job). Its contract is that publishing NEVER blocks and NEVER waits on
// a subscriber: each subscriber owns a fixed-size ring that overwrites
// its oldest undelivered event when full, with every overwrite counted
// against that subscriber — a stalled SSE client loses events (and is
// told how many) instead of stalling the engine. Each topic also keeps
// a bounded replay ring so a reconnecting subscriber can resume from
// the last sequence number it saw, as long as the gap still fits the
// ring.
type Bus struct {
	replayCap int
	subCap    int

	mu     sync.Mutex
	topics map[string]*busTopic

	// Optional registry handles (CountOn); nil when unwired.
	published *Counter
	dropped   *Counter
}

// busTopic is one topic's state: the next sequence number, the bounded
// replay ring (oldest-first from start), and the live subscribers.
type busTopic struct {
	seq   uint64
	ring  []BusEvent
	start int // index of the oldest retained event
	n     int
	subs  map[*BusSub]struct{}
}

// NewBus creates a bus whose topics retain the most recent replayCap
// events for reconnect replay and whose subscribers buffer up to subCap
// undelivered events (minimums of 1; zero or negative values select the
// defaults 1024 and 256).
func NewBus(replayCap, subCap int) *Bus {
	if replayCap <= 0 {
		replayCap = 1024
	}
	if subCap <= 0 {
		subCap = 256
	}
	return &Bus{
		replayCap: replayCap,
		subCap:    subCap,
		topics:    map[string]*busTopic{},
	}
}

// CountOn wires the bus to a metric registry: published counts every
// Publish, dropped counts events lost to full subscriber rings (the
// "slow client" signal on /metrics).
func (b *Bus) CountOn(published, dropped *Counter) {
	b.mu.Lock()
	b.published = published
	b.dropped = dropped
	b.mu.Unlock()
}

func (b *Bus) topic(name string) *busTopic {
	t := b.topics[name]
	if t == nil {
		t = &busTopic{subs: map[*BusSub]struct{}{}}
		b.topics[name] = t
	}
	return t
}

// Publish appends one event to the topic and fans it out to every
// subscriber, returning the assigned sequence number. It never blocks:
// the replay ring and each subscriber ring overwrite their oldest entry
// when full, and subscriber notification is a non-blocking signal.
//
//semsim:publish
//semsim:hot
func (b *Bus) Publish(topic, typ, data string) uint64 {
	b.mu.Lock()
	t := b.topic(topic)
	t.seq++
	ev := BusEvent{Seq: t.seq, Type: typ, Data: data}
	if t.n < b.replayCap {
		t.ring = append(t.ring, ev) //hotalloc:ok the replay ring grows once up to its cap, then overwrites in place
		t.n++
	} else {
		t.ring[t.start] = ev
		t.start = (t.start + 1) % b.replayCap
	}
	published, dropped := b.published, b.dropped
	subs := t.subs
	for s := range subs {
		if s.push(ev) && dropped != nil {
			dropped.Add(1)
		}
	}
	b.mu.Unlock()
	if published != nil {
		published.Add(1)
	}
	return ev.Seq
}

// Last returns the highest sequence number published on the topic (0
// when nothing was published yet).
func (b *Bus) Last(topic string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.topics[topic]; t != nil {
		return t.seq
	}
	return 0
}

// Subscribe registers a subscriber on the topic and replays every
// retained event with Seq > after into its ring (pass 0 for "live tail
// plus full retained history", or the last sequence number seen to
// resume after a reconnect). Events older than the replay ring are
// gone; the gap shows up as a jump in Seq, not as blocking. Close the
// subscription when done.
func (b *Bus) Subscribe(topic string, after uint64) *BusSub {
	s := &BusSub{
		bus:    b,
		topic:  topic,
		notify: make(chan struct{}, 1),
		buf:    make([]BusEvent, b.subCap),
	}
	b.mu.Lock()
	t := b.topic(topic)
	for i := 0; i < t.n; i++ {
		ev := t.ring[(t.start+i)%b.replayCap]
		if ev.Seq > after {
			s.push(ev)
		}
	}
	t.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// BusSub is one subscription: a fixed-capacity ring of undelivered
// events plus a drop count. All methods are safe for concurrent use
// with the bus's publishers.
type BusSub struct {
	bus    *Bus
	topic  string
	notify chan struct{}

	mu      sync.Mutex
	buf     []BusEvent
	start   int // index of the oldest undelivered event
	n       int
	dropped uint64
	closed  bool
}

// push enqueues one event, overwriting the oldest undelivered one when
// the ring is full, and signals the subscriber without blocking. It
// reports whether an event was dropped.
//
//semsim:publish
//semsim:hot
func (s *BusSub) push(ev BusEvent) (dropped bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.n < len(s.buf) {
		s.buf[(s.start+s.n)%len(s.buf)] = ev
		s.n++
	} else {
		s.buf[s.start] = ev
		s.start = (s.start + 1) % len(s.buf)
		s.dropped++
		dropped = true
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return dropped
}

// Next pops the oldest undelivered event; ok is false when the ring is
// empty (wait on Ready, then drain again).
func (s *BusSub) Next() (ev BusEvent, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return BusEvent{}, false
	}
	ev = s.buf[s.start]
	s.start = (s.start + 1) % len(s.buf)
	s.n--
	return ev, true
}

// Ready signals (at least once) after new events arrive; drain with
// Next until it reports empty before waiting again.
func (s *BusSub) Ready() <-chan struct{} { return s.notify }

// Dropped returns how many events this subscriber has lost to ring
// overflow since Subscribe (cumulative).
func (s *BusSub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close unregisters the subscription; pending events are discarded.
func (s *BusSub) Close() {
	s.bus.mu.Lock()
	if t := s.bus.topics[s.topic]; t != nil {
		delete(t.subs, s)
	}
	s.bus.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
