package obs

import "time"

// Span is an in-flight phase timing started by Observer.Span. It is a
// value (no allocation); End records the duration into the span's
// nanosecond histogram and, when tracing, the journal. The zero Span
// (from a nil Observer) no-ops on End.
type Span struct {
	o     *Observer
	hist  *Histogram
	id    int32
	start int64
	sim   float64
}

// Span starts timing a named phase at simulated time simT (pass 0 for
// phases outside a simulation, e.g. a sweep or a master solve). The
// duration histogram is registered as "span.<name>.ns". Nil-safe: on a
// disabled observer no clock is read and End is free.
func (o *Observer) Span(name string, simT float64) Span {
	if o == nil {
		return Span{}
	}
	sp := Span{o: o, start: o.wall(), sim: simT, id: -1}
	sp.hist = o.reg.Histogram("span."+name+".ns", spanBuckets)
	if o.journal != nil {
		sp.id = o.journal.internName(name)
	}
	return sp
}

// spanBuckets spans 1 us .. ~17 min in powers of four.
var spanBuckets = ExpBuckets(1e3, 4, 16)

// End completes the span.
func (sp Span) End() {
	if sp.o == nil {
		return
	}
	end := sp.o.wall()
	dur := end - sp.start
	sp.hist.Observe(float64(dur))
	if j := sp.o.journal; j != nil {
		j.Record(Event{Kind: KindSpan, Junc: sp.id, Sim: sp.sim, Wall: sp.start, Dur: dur})
	}
}

// GlobalSpan starts a span on the process-wide observer — the one-line
// instrumentation hook for phases outside the solver (master solves,
// sweep families, benchmark drivers):
//
//	defer obs.GlobalSpan("master.solve").End()
//
// With no global observer installed it is free.
func GlobalSpan(name string) Span { return Global().Span(name, 0) }

// Elapsed returns the span's running duration (zero on a disabled
// span). It exists for progress reporting, not measurement.
func (sp Span) Elapsed() time.Duration {
	if sp.o == nil {
		return 0
	}
	return time.Duration(sp.o.wall() - sp.start)
}
