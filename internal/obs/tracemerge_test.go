package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The merged export must load in chrome://tracing: valid JSON, one
// thread_name metadata record per lane, task spans on the right tids.
func TestMergedChromeTraceWellFormed(t *testing.T) {
	job := NewJournal(16, nil)
	job.Record(Event{Kind: KindJobState, A: JobStateQueued, Wall: 0})
	job.Record(Event{Kind: KindJobState, A: JobStateRunning, Wall: 100})
	job.Record(Event{Kind: KindProgress, V1: 2, V2: 125000, Wall: 5000})
	job.Record(Event{Kind: KindJobState, A: JobStateDone, Wall: 9000})

	w0 := NewJournal(16, nil)
	w0.Record(Event{Kind: KindTaskResume, Junc: 0, A: 0, V1: 500, Wall: 150})
	w0.Record(Event{Kind: KindTaskRun, Junc: 0, A: 0, B: TaskOutcomeDone, V1: 1500, Wall: 150, Dur: 4000})
	w0.Record(Event{Kind: KindCkptWrite, Junc: 0, A: 0, V1: 2048, V2: 1200, Wall: 3000, Dur: 2000})

	w1 := NewJournal(16, nil)
	w1.Record(Event{Kind: KindTaskRetry, Junc: 1, A: 0, B: 1, V1: 0.05, V2: ErrClassCheckpointIO, Wall: 2000})
	w1.Record(Event{Kind: KindTaskRun, Junc: 1, A: 0, B: TaskOutcomeFailed, V1: 900, Wall: 2100, Dur: 3000})

	lanes := []TraceLane{job.Lane("job"), w0.Lane("worker 0"), w1.Lane("worker 1")}
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, lanes); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged export is not valid JSON: %v\n%s", err, buf.String())
	}

	var meta, spans int
	laneNames := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			args := ev["args"].(map[string]any)
			laneNames[args["name"].(string)] = ev["tid"].(float64)
		case "X":
			spans++
		}
	}
	if meta != 3 {
		t.Fatalf("thread_name records = %d, want 3", meta)
	}
	// task + checkpoint spans on worker 0, task span on worker 1.
	if spans != 3 {
		t.Fatalf("X spans = %d, want 3", spans)
	}
	for name, tid := range map[string]float64{"job": 1, "worker 0": 2, "worker 1": 3} {
		if laneNames[name] != tid {
			t.Fatalf("lane %q tid = %v, want %v (lanes: %v)", name, laneNames[name], tid, laneNames)
		}
	}
	for _, want := range []string{
		`"state":"queued"`, `"state":"done"`,
		`"outcome":"done"`, `"outcome":"failed"`,
		`"error_class":"checkpoint-io"`,
		`"events_at_resume":500`,
		`"bytes":2048`,
		`"name":"tasks_done"`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("merged trace missing %s:\n%s", want, buf.String())
		}
	}

	// Deterministic bytes.
	var buf2 bytes.Buffer
	if err := WriteMergedChromeTrace(&buf2, lanes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("merged export is not deterministic")
	}
}

// A lane whose ring overwrote events carries a journal_dropped note; a
// nil journal renders as an empty named lane.
func TestMergedChromeTraceDroppedAndNil(t *testing.T) {
	j := NewJournal(2, nil)
	for i := 0; i < 5; i++ {
		j.Record(Event{Kind: KindTaskRun, Junc: int32(i), Wall: int64(i)})
	}
	if got := j.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	var nilJ *Journal
	lanes := []TraceLane{j.Lane("busy"), nilJ.Lane("idle")}
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, lanes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"journal_dropped"`) ||
		!strings.Contains(buf.String(), `"dropped_events":3`) {
		t.Fatalf("dropped note missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"name":"idle"`) {
		t.Fatalf("nil-journal lane missing:\n%s", buf.String())
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
}

// Drop accounting flows into the registry counter and the single-run
// Chrome export's note.
func TestJournalDropAccounting(t *testing.T) {
	r := NewRegistry()
	j := NewJournal(4, nil)
	j.CountDrops(r.Counter("obs.journal_dropped_events"))
	for i := 0; i < 10; i++ {
		j.Record(Event{Kind: KindTunnel, Junc: 1, Wall: int64(i)})
	}
	if got := j.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := r.Snapshot().Counters["obs.journal_dropped_events"]; got != 6 {
		t.Fatalf("registry dropped counter = %d, want 6", got)
	}
	var buf bytes.Buffer
	if err := j.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"journal_dropped"`) ||
		!strings.Contains(buf.String(), `"dropped_events":6`) {
		t.Fatalf("chrome export missing dropped note:\n%s", buf.String())
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON with dropped note:\n%s", buf.String())
	}
}
