package obs

import (
	"strings"
	"testing"
)

func TestJournalRetainsAll(t *testing.T) {
	j := NewJournal(8, nil)
	for i := 0; i < 5; i++ {
		j.Record(Event{Kind: KindTunnel, Junc: int32(i)})
	}
	ev := j.Events()
	if len(ev) != 5 || j.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 5/5", len(ev), j.Total())
	}
	for i, e := range ev {
		if e.Junc != int32(i) {
			t.Fatalf("event %d has junc %d", i, e.Junc)
		}
	}
}

func TestJournalWraparound(t *testing.T) {
	const capN = 8
	j := NewJournal(capN, nil)
	// Record 3 full rings plus a remainder; only the newest capN survive,
	// in recording order.
	const total = 3*capN + 5
	for i := 0; i < total; i++ {
		j.Record(Event{Kind: KindTunnel, Junc: int32(i)})
	}
	if j.Total() != total {
		t.Fatalf("total = %d, want %d", j.Total(), total)
	}
	ev := j.Events()
	if len(ev) != capN {
		t.Fatalf("retained = %d, want %d", len(ev), capN)
	}
	for i, e := range ev {
		want := int32(total - capN + i)
		if e.Junc != want {
			t.Fatalf("retained[%d].Junc = %d, want %d (ordering broken across wrap)", i, e.Junc, want)
		}
	}
}

func TestJournalWraparoundExactBoundary(t *testing.T) {
	const capN = 4
	j := NewJournal(capN, nil)
	for i := 0; i < 2*capN; i++ { // lands exactly on a ring boundary
		j.Record(Event{Junc: int32(i)})
	}
	ev := j.Events()
	for i, e := range ev {
		if want := int32(capN + i); e.Junc != want {
			t.Fatalf("retained[%d].Junc = %d, want %d", i, e.Junc, want)
		}
	}
}

func TestJournalMinCapacity(t *testing.T) {
	j := NewJournal(0, nil) // clamped to 1
	j.Record(Event{Junc: 1})
	j.Record(Event{Junc: 2})
	ev := j.Events()
	if len(ev) != 1 || ev[0].Junc != 2 {
		t.Fatalf("cap-1 ring retained %+v, want just junc 2", ev)
	}
}

func TestJournalJSONLSink(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(2, &sb)
	id := j.internName("refresh")
	j.Record(Event{Kind: KindTunnel, Junc: 3, Sim: 1e-9, V1: -2e-21})
	j.Record(Event{Kind: KindSpan, Junc: id, Wall: 100, Dur: 50})
	j.Record(Event{Kind: KindAdaptive, Junc: 1, A: 7, B: 2, Sim: 2e-9})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink lines = %d, want 3 (ring overwrites must not drop sink lines):\n%s", len(lines), sb.String())
	}
	if !strings.Contains(lines[0], `"kind":"tunnel"`) || !strings.Contains(lines[0], `"junc":3`) {
		t.Fatalf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"name":"refresh"`) || !strings.Contains(lines[1], `"dur_ns":50`) {
		t.Fatalf("line 1 = %s", lines[1])
	}
	if !strings.Contains(lines[2], `"a":7,"b":2`) {
		t.Fatalf("line 2 = %s", lines[2])
	}
}

func TestSpanNameInterning(t *testing.T) {
	j := NewJournal(4, nil)
	a := j.internName("alpha")
	b := j.internName("beta")
	if a2 := j.internName("alpha"); a2 != a {
		t.Fatalf("re-intern gave %d, want %d", a2, a)
	}
	if j.SpanName(a) != "alpha" || j.SpanName(b) != "beta" {
		t.Fatalf("SpanName mismatch: %q %q", j.SpanName(a), j.SpanName(b))
	}
	if got := j.SpanName(99); got != "span#99" {
		t.Fatalf("unknown id resolved to %q", got)
	}
}
