package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	// Every hook and accessor must be a no-op on a nil receiver.
	o.Event(KindTunnel, 1, 1e-9, -1e-21)
	o.RateCalcs(10)
	o.AdaptiveTest(1, 1, 2, true, 0, 0)
	o.Adaptive(1, 3, 1, 0)
	o.Recomputed([]int{1, 2})
	o.FullRefresh(0)
	o.InputChange(2, 0)
	o.FenwickFlush(5, true, 0)
	o.Span("x", 0).End()
	if o.Registry() != nil || o.Journal() != nil || o.Tracing() || o.Heatmap() != nil {
		t.Fatal("nil observer leaked non-nil state")
	}
}

func TestObserverCounters(t *testing.T) {
	o := New(Config{})
	o.Event(KindTunnel, 1, 1e-9, -0.5)
	o.Event(KindCotunnel, 2, 2e-9, -0.25)
	o.Event(KindCooper, 3, 3e-9, -0.125)
	o.RateCalcs(100)
	o.Adaptive(1, 5, 2, 3e-9)
	o.Recomputed([]int{4, 4, 9})
	o.FullRefresh(3e-9)
	o.InputChange(7, 3e-9)
	o.FenwickFlush(12, true, 3e-9)
	o.FenwickFlush(0, false, 3e-9) // empty flush: not recorded

	s := o.Registry().Snapshot()
	checks := map[string]uint64{
		"solver.events":              3,
		"solver.cotunnel_events":     1,
		"solver.cooper_events":       1,
		"solver.rate_calcs":          100,
		"solver.adaptive_tested":     5,
		"solver.adaptive_flagged":    2,
		"solver.adaptive_recomputes": 3,
		"solver.full_refreshes":      1,
		"solver.input_changes":       1,
		"solver.fenwick_rebuilds":    1,
	}
	for name, want := range checks {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := s.Gauges["solver.sim_time_s"]; got != 3e-9 {
		t.Errorf("sim_time = %v", got)
	}
	if got := s.Gauges["solver.dissipated_j"]; got != 0.875 {
		t.Errorf("dissipated = %v, want 0.875", got)
	}
	if got := s.Histograms["solver.fenwick_flush_batch"].Count; got != 1 {
		t.Errorf("flush hist count = %d, want 1 (empty flush must not count)", got)
	}

	heat := o.Heatmap()
	if len(heat) != 10 || heat[4] != 2 || heat[9] != 1 {
		t.Errorf("heatmap = %v", heat)
	}
}

func TestObserverTracingJournal(t *testing.T) {
	o := New(Config{Trace: true, TraceCap: 32})
	if !o.Tracing() {
		t.Fatal("Tracing() false with journal on")
	}
	o.Event(KindTunnel, 1, 1e-9, 0)
	o.AdaptiveTest(2, 1e-22, 2e-22, false, 1, 1e-9)
	o.Adaptive(1, 4, 1, 1e-9)
	o.FullRefresh(2e-9)
	kinds := []Kind{}
	for _, e := range o.Journal().Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []Kind{KindTunnel, KindAdaptiveTest, KindAdaptive, KindRefresh}
	if len(kinds) != len(want) {
		t.Fatalf("journal kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("journal kinds = %v, want %v", kinds, want)
		}
	}
}

func TestGlobalObserver(t *testing.T) {
	if Global() != nil {
		t.Fatal("global observer should start nil")
	}
	o := New(Config{})
	SetGlobal(o)
	defer SetGlobal(nil)
	if Global() != o {
		t.Fatal("SetGlobal/Global mismatch")
	}
	GlobalSpan("x").End()
	if o.reg.Histogram("span.x.ns", spanBuckets).Count() != 1 {
		t.Fatal("GlobalSpan did not record on installed observer")
	}
	SetGlobal(nil)
	GlobalSpan("x").End() // must not panic
}

func TestSpanTiming(t *testing.T) {
	o := New(Config{Trace: true, TraceCap: 4})
	sp := o.Span("phase", 1e-9)
	time.Sleep(2 * time.Millisecond)
	if sp.Elapsed() <= 0 {
		t.Fatal("Elapsed not advancing")
	}
	sp.End()
	h := o.reg.Histogram("span.phase.ns", spanBuckets)
	if h.Count() != 1 || h.Sum() < float64(time.Millisecond) {
		t.Fatalf("span histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	ev := o.Journal().Events()
	if len(ev) != 1 || ev[0].Kind != KindSpan || ev[0].Dur <= 0 {
		t.Fatalf("span journal event = %+v", ev)
	}
	if o.Journal().SpanName(ev[0].Junc) != "phase" {
		t.Fatalf("span name = %q", o.Journal().SpanName(ev[0].Junc))
	}
}

func TestHeatmapSummary(t *testing.T) {
	heat := make([]uint32, 20)
	heat[3] = 90
	heat[4] = 8
	heat[11] = 2
	s := SummarizeHeatmap(heat)
	if s.Junctions != 20 || s.Total != 100 || s.Max != 90 || s.MaxJunc != 3 || s.NonZero != 3 {
		t.Fatalf("summary = %+v", s)
	}
	// Hottest 10% (2 junctions: 90+8) carry 98% of recomputes.
	if s.Top10Share != 0.98 {
		t.Fatalf("Top10Share = %v, want 0.98", s.Top10Share)
	}
	empty := SummarizeHeatmap(nil)
	if empty.Junctions != 0 || empty.Total != 0 || empty.MaxJunc != -1 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestServeEndpoints(t *testing.T) {
	o := New(Config{Trace: true, TraceCap: 8})
	o.Event(KindTunnel, 1, 1e-9, -1e-21)
	o.Recomputed([]int{0, 1, 1})
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["solver.events"] != 1 {
		t.Fatalf("/metrics events = %d", snap.Counters["solver.events"])
	}
	if _, ok := snap.Gauges["runtime.goroutines"]; !ok {
		t.Fatal("/metrics missing runtime.goroutines gauge func")
	}

	trace := get("/trace")
	if !strings.Contains(trace, `"traceEvents"`) {
		t.Fatalf("/trace = %s", trace)
	}

	var heat struct {
		Summary HeatmapSummary `json:"summary"`
		Counts  []uint32       `json:"counts"`
	}
	if err := json.Unmarshal([]byte(get("/heatmap")), &heat); err != nil {
		t.Fatalf("/heatmap not JSON: %v", err)
	}
	if heat.Summary.Total != 3 || len(heat.Counts) != 2 || heat.Counts[1] != 2 {
		t.Fatalf("/heatmap = %+v", heat)
	}

	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("/debug/pprof/ index missing")
	}
	if !strings.Contains(get("/"), "/metrics") {
		t.Fatal("index page missing links")
	}

	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil observer) should error")
	}
}

func TestProgressReporter(t *testing.T) {
	o := New(Config{Trace: true, TraceCap: 8})
	var buf bytes.Buffer
	p := StartProgress(o, &buf, 5*time.Millisecond, 2e-6)
	o.Event(KindTunnel, 0, 1e-6, 0) // 50% of target
	time.Sleep(25 * time.Millisecond)
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "ev/s") || !strings.Contains(out, "sim 1e-06 s") {
		t.Fatalf("progress output missing fields:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("progress output missing percentage:\n%s", out)
	}
	if !strings.Contains(out, "eta ") {
		t.Fatalf("progress output missing eta:\n%s", out)
	}
	found := false
	for _, e := range o.Journal().Events() {
		if e.Kind == KindProgress {
			found = true
		}
	}
	if !found {
		t.Fatal("progress samples not journaled")
	}

	// Nil-safety.
	StartProgress(nil, &buf, time.Millisecond, 0).Stop()
	StartProgress(o, nil, time.Millisecond, 0).Stop()
}

func TestGroupDigits(t *testing.T) {
	cases := map[uint64]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567"}
	for n, want := range cases {
		if got := groupDigits(n); got != want {
			t.Errorf("groupDigits(%d) = %q, want %q", n, got, want)
		}
	}
	rates := map[float64]string{50: "50", 4500: "4.5k", 2.5e6: "2.50M"}
	for r, want := range rates {
		if got := fmtRate(r); got != want {
			t.Errorf("fmtRate(%v) = %q, want %q", r, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindTunnel; k <= KindProgress; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds should be unknown")
	}
}

func ExampleRegistry_WriteJSON() {
	r := NewRegistry()
	r.Counter("events").Add(2)
	var sb strings.Builder
	r.WriteJSON(&sb)
	fmt.Print(strings.Contains(sb.String(), `"events": 2`))
	// Output: true
}
