package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(2.25)
	if got := g.Value(); got != 3.75 {
		t.Fatalf("gauge = %v, want 3.75", got)
	}
	if r.Gauge("g") != g {
		t.Fatal("Gauge not get-or-create")
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	// Gauge.Add is a CAS loop; concurrent adders must not lose updates.
	var g Gauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers*per {
		t.Fatalf("concurrent gauge adds = %v, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	snap := r.Snapshot().Histograms["h"]
	// SearchFloat64s puts v == bound into that bound's bucket.
	want := []uint64{2, 1, 1, 0, 1}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(42)
	r.Gauge("t").Set(1e-9)
	r.GaugeFunc("fn", func() float64 { return 2.5 })
	r.Histogram("lat", ExpBuckets(1, 10, 3)).Observe(5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, sb.String())
	}
	if snap.Counters["events"] != 42 || snap.Gauges["t"] != 1e-9 || snap.Gauges["fn"] != 2.5 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	if h := snap.Histograms["lat"]; h.Count != 1 || h.Sum != 5 || len(h.Buckets) != 4 {
		t.Fatalf("histogram snapshot mismatch: %+v", snap.Histograms["lat"])
	}

	// Stable output: two encodes of the same state are byte-identical.
	var sb2 strings.Builder
	if err := r.WriteJSON(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("snapshot JSON is not deterministic")
	}
}

func TestGaugeNegativeAndNaN(t *testing.T) {
	var g Gauge
	g.Set(-1.25)
	if g.Value() != -1.25 {
		t.Fatalf("negative gauge = %v", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("inf gauge = %v", g.Value())
	}
}
