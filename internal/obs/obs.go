// Package obs is the observability layer of the simulator: a metrics
// registry (counters, gauges, fixed-bucket histograms), a low-overhead
// structured run journal exportable to the Chrome trace_event format, a
// span API for phase timing, a periodic progress reporter, and an
// optional HTTP endpoint serving metric snapshots plus net/http/pprof
// for live profiling of long runs. Everything is standard library only.
//
// The design contract is that observability is free when off and
// passive when on:
//
//   - every recording method is declared on *Observer with a nil-receiver
//     fast path, so disabled code paths cost one predictable branch and
//     zero allocations (proved by the ObsDisabled benchmarks);
//   - recording never touches simulator state, random streams or
//     floating-point inputs, so instrumented trajectories are
//     bit-identical to uninstrumented ones (asserted by the solver's
//     determinism tests, serial and parallel).
//
// One Observer may be shared by concurrent simulations (a sweep, a
// multi-seed delay measurement): counters and gauges are atomics, the
// journal and heatmap are lock-guarded. Tracing interleaves events from
// all sharers; per-run journals need per-run Observers.
package obs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects the observability features of an Observer. The zero
// value enables metrics only.
type Config struct {
	// Trace enables the structured event journal.
	Trace bool
	// TraceCap bounds the in-memory journal ring (default 1 << 16
	// events); older events are overwritten.
	TraceCap int
	// TraceJSONL, when non-nil, additionally receives every journal
	// event as one JSON line (unbounded; the caller owns the writer).
	TraceJSONL io.Writer
}

// Observer is the per-process (or per-run) observability handle. A nil
// *Observer is valid and turns every method into a cheap no-op.
type Observer struct {
	reg     *Registry
	journal *Journal
	epoch   time.Time

	// Pre-resolved metric handles for the hot paths.
	events         *Counter
	cotunnelEvents *Counter
	cooperEvents   *Counter
	rateCalcs      *Counter
	refreshes      *Counter
	inputChanges   *Counter
	tested         *Counter
	flagged        *Counter
	recomputes     *Counter
	rebuilds       *Counter
	simTime        *Gauge
	dissipated     *Gauge
	spillHist      *Histogram
	flushHist      *Histogram
	touchedHist    *Histogram
	cinvBound      *Gauge
	cinvNNZ        *Gauge
	cinvTrunc      *Gauge
	cholFill       *Gauge
	sessionResets  *Counter
	sessionBuilds  *Counter
	pointsDone     *Counter
	pointsTotal    *Gauge
	pointsSkipped  *Gauge
	refineDepth    *Histogram
	noiseEvents    *Counter
	noiseWindows   *Counter

	heatMu sync.Mutex
	heat   []uint32
}

// New creates an Observer with a fresh registry.
func New(cfg Config) *Observer {
	o := &Observer{reg: NewRegistry(), epoch: time.Now()}
	if cfg.Trace {
		capN := cfg.TraceCap
		if capN <= 0 {
			capN = 1 << 16
		}
		o.journal = NewJournal(capN, cfg.TraceJSONL)
		// Ring wraparound must never be silent: the registry counts every
		// overwritten event, and trace exports carry a journal_dropped note.
		o.journal.CountDrops(o.reg.Counter("obs.journal_dropped_events"))
	}
	o.events = o.reg.Counter("solver.events")
	o.cotunnelEvents = o.reg.Counter("solver.cotunnel_events")
	o.cooperEvents = o.reg.Counter("solver.cooper_events")
	o.rateCalcs = o.reg.Counter("solver.rate_calcs")
	o.refreshes = o.reg.Counter("solver.full_refreshes")
	o.inputChanges = o.reg.Counter("solver.input_changes")
	o.tested = o.reg.Counter("solver.adaptive_tested")
	o.flagged = o.reg.Counter("solver.adaptive_flagged")
	o.recomputes = o.reg.Counter("solver.adaptive_recomputes")
	o.rebuilds = o.reg.Counter("solver.fenwick_rebuilds")
	o.simTime = o.reg.Gauge("solver.sim_time_s")
	o.dissipated = o.reg.Gauge("solver.dissipated_j")
	// Fan-out sizes: 1 .. 32768 in powers of two.
	fanout := ExpBuckets(1, 2, 16)
	o.spillHist = o.reg.Histogram("solver.adaptive_spill_size", fanout)
	o.flushHist = o.reg.Histogram("solver.fenwick_flush_batch", fanout)
	o.touchedHist = o.reg.Histogram("solver.event_touched_nnz", fanout)
	o.cinvBound = o.reg.Gauge("solver.cinv_error_bound_v")
	o.cinvNNZ = o.reg.Gauge("circuit.cinv_nnz")
	o.cinvTrunc = o.reg.Gauge("circuit.cinv_truncation_ratio")
	o.cholFill = o.reg.Gauge("circuit.chol_fill_ratio")
	o.sessionResets = o.reg.Counter("solver.session_resets")
	o.sessionBuilds = o.reg.Counter("sweep.session_builds")
	o.pointsDone = o.reg.Counter("sweep.points_done")
	o.pointsTotal = o.reg.Gauge("sweep.points_total")
	o.pointsSkipped = o.reg.Gauge("sweep.points_skipped")
	// Refinement depths: small integers, so linear power-of-two bounds
	// up to 128 levels cover anything a sane map asks for.
	o.refineDepth = o.reg.Histogram("sweep.refine_depth", ExpBuckets(1, 2, 8))
	o.noiseEvents = o.reg.Counter("noise.events")
	o.noiseWindows = o.reg.Counter("noise.windows_closed")
	return o
}

// Registry exposes the observer's metric registry (nil-safe; returns
// nil when disabled).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Journal exposes the trace journal, or nil when tracing is off.
func (o *Observer) Journal() *Journal {
	if o == nil {
		return nil
	}
	return o.journal
}

// Tracing reports whether the event journal is enabled. Call sites that
// would compute trace-only detail (per-junction test decisions) guard
// on it.
func (o *Observer) Tracing() bool { return o != nil && o.journal != nil }

// wall returns nanoseconds since the observer was created.
func (o *Observer) wall() int64 { return int64(time.Since(o.epoch)) }

// --- Solver hot-path hooks (all nil-safe, allocation-free) ---

// Event records one applied tunnel event: kind is the journal kind
// (KindTunnel/KindCotunnel/KindCooper), junc the primary junction, simT
// the post-event simulated time, and dw the free-energy change (its
// negation accumulates into the dissipated-energy gauge).
func (o *Observer) Event(kind Kind, junc int, simT, dw float64) {
	if o == nil {
		return
	}
	o.events.Add(1)
	switch kind {
	case KindCotunnel:
		o.cotunnelEvents.Add(1)
	case KindCooper:
		o.cooperEvents.Add(1)
	}
	o.simTime.Set(simT)
	o.dissipated.Add(-dw)
	if o.journal != nil {
		o.journal.Record(Event{Kind: kind, Junc: int32(junc), Sim: simT, V1: dw, Wall: o.wall()})
	}
}

// RateCalcs accumulates a batch of channel-rate evaluations.
func (o *Observer) RateCalcs(n uint64) {
	if o == nil {
		return
	}
	o.rateCalcs.Add(n)
}

// AdaptiveTest records one testing-factor decision (journal only; the
// solver guards calls with Tracing so the detail is free when the
// journal is off). b is e*|b(i)| in joules, thr the recompute threshold
// alpha*min(|dW'|), depth the BFS spill depth of the tested junction.
func (o *Observer) AdaptiveTest(junc int, b, thr float64, flagged bool, depth int, simT float64) {
	if o == nil || o.journal == nil {
		return
	}
	a := int32(0)
	if flagged {
		a = 1
	}
	o.journal.Record(Event{Kind: KindAdaptiveTest, Junc: int32(junc), A: a, B: int32(depth),
		Sim: simT, V1: b, V2: thr, Wall: o.wall()})
}

// Adaptive summarizes one adaptive update after an event on junction
// junc: tested junctions reached by the spill, flagged junctions
// recomputed.
func (o *Observer) Adaptive(junc, tested, flagged int, simT float64) {
	if o == nil {
		return
	}
	o.tested.Add(uint64(tested))
	o.flagged.Add(uint64(flagged))
	o.spillHist.Observe(float64(tested))
	if o.journal != nil {
		o.journal.Record(Event{Kind: KindAdaptive, Junc: int32(junc),
			A: int32(tested), B: int32(flagged), Sim: simT, Wall: o.wall()})
	}
}

// Recomputed accumulates the per-junction recompute heatmap — the
// visual counterpart of the paper's adaptivity claim: recomputation
// should concentrate on the junctions near activity, not spread
// uniformly.
func (o *Observer) Recomputed(juncs []int) {
	if o == nil || len(juncs) == 0 {
		return
	}
	o.recomputes.Add(uint64(len(juncs)))
	o.heatMu.Lock()
	for _, j := range juncs {
		for j >= len(o.heat) {
			o.heat = append(o.heat, 0)
		}
		o.heat[j]++
	}
	o.heatMu.Unlock()
}

// FullRefresh records a periodic full-refresh boundary.
func (o *Observer) FullRefresh(simT float64) {
	if o == nil {
		return
	}
	o.refreshes.Add(1)
	o.simTime.Set(simT)
	if o.journal != nil {
		o.journal.Record(Event{Kind: KindRefresh, Sim: simT, Wall: o.wall()})
	}
}

// InputChange records a source-voltage change boundary and how many
// junctions it flagged for recomputation.
func (o *Observer) InputChange(flagged int, simT float64) {
	if o == nil {
		return
	}
	o.inputChanges.Add(1)
	if o.journal != nil {
		o.journal.Record(Event{Kind: KindInputChange, A: int32(flagged), Sim: simT, Wall: o.wall()})
	}
}

// FenwickFlush records one selection-tree flush: the staged batch size
// and whether the flush chose a bulk rebuild over point updates.
func (o *Observer) FenwickFlush(batch int, rebuilt bool, simT float64) {
	if o == nil || batch == 0 {
		return
	}
	o.flushHist.Observe(float64(batch))
	if rebuilt {
		o.rebuilds.Add(1)
	}
	if o.journal != nil {
		b := int32(0)
		if rebuilt {
			b = 1
		}
		o.journal.Record(Event{Kind: KindFenwick, A: int32(batch), B: b, Sim: simT, Wall: o.wall()})
	}
}

// EventTouched records how many stored C^-1 nonzeros one applied event's
// potential shift walked — n² for the dense engine, the two truncated
// row lengths for the sparse one. The histogram makes the locality win
// of truncation directly visible on /metrics.
func (o *Observer) EventTouched(n int) {
	if o == nil {
		return
	}
	o.touchedHist.Observe(float64(n))
}

// NoiseEvent counts one tunnel event folded into a noise accumulator.
func (o *Observer) NoiseEvent() {
	if o == nil {
		return
	}
	o.noiseEvents.Add(1)
}

// NoiseWindow records a counting-window closure on a recorded
// junction: n windows completed at once (1 plus any empty windows the
// closing event skipped over), q the closing window's charge in units
// of e, simT the simulated time of the closing event.
func (o *Observer) NoiseWindow(junc int, n uint64, q, simT float64) {
	if o == nil {
		return
	}
	o.noiseWindows.Add(n)
	if o.journal != nil {
		o.journal.Record(Event{Kind: KindNoiseWindow, Junc: int32(junc), A: int32(n), Sim: simT, V1: q, Wall: o.wall()})
	}
}

// CinvBound publishes the solver's running truncation-error bound (volts)
// at refresh and input-change boundaries. Always zero for exact engines.
func (o *Observer) CinvBound(v float64) {
	if o == nil {
		return
	}
	o.cinvBound.Set(v)
}

// PotentialEngine publishes the static shape of the potential engine a
// solver was built with: stored C^-1 nonzeros, the fraction of the
// full inverse kept after truncation, and the Cholesky fill-in ratio
// (nnz(L)/nnz(tril(C)); 0 when no sparse factorization was formed).
func (o *Observer) PotentialEngine(nnz int, truncRatio, fill float64) {
	if o == nil {
		return
	}
	o.cinvNNZ.Set(float64(nnz))
	o.cinvTrunc.Set(truncRatio)
	o.cholFill.Set(fill)
}

// SessionReset records one solver session reset: a reused Sim rewound
// onto a new seed and bias point instead of being rebuilt from scratch.
// The ratio of solver.session_resets to sweep.points_done is the
// compile-once amortization the sweep engine achieves.
func (o *Observer) SessionReset() {
	if o == nil {
		return
	}
	o.sessionResets.Add(1)
}

// SessionBuild records one full session construction (circuit compile +
// solver build): the denominator of the compile-once amortization.
func (o *Observer) SessionBuild() {
	if o == nil {
		return
	}
	o.sessionBuilds.Add(1)
}

// SweepTotal adds a batch of announced sweep points to the progress
// denominator (sweep.points_total). Sweeps announce their grid up
// front; adaptive refinement announces each level as it is planned, so
// the meter never shows a fraction over 1.
func (o *Observer) SweepTotal(n int) {
	if o == nil {
		return
	}
	o.pointsTotal.Add(float64(n))
}

// SweepPointDone records one completed sweep point.
func (o *Observer) SweepPointDone() {
	if o == nil {
		return
	}
	o.pointsDone.Add(1)
}

// SweepSkipped accumulates fine-lattice points an adaptive refinement
// run did NOT have to simulate (filled by interpolation instead) — the
// direct measure of the refinement saving.
func (o *Observer) SweepSkipped(n int) {
	if o == nil {
		return
	}
	o.pointsSkipped.Add(float64(n))
}

// RefineDepth records the refinement depth of one simulated map point
// (0 = coarse grid).
func (o *Observer) RefineDepth(depth int) {
	if o == nil {
		return
	}
	o.refineDepth.Observe(float64(depth))
}

// --- Global observer ---

// The process-wide observer: nil (disabled) unless a CLI or test
// installs one with SetGlobal. Subsystems without explicit plumbing
// (master solves, sweep drivers, solver runs whose Options carry no
// Observer) fall back to it, so `-obs-addr` on any CLI instruments the
// whole stack without threading a handle through every call.
var global atomic.Pointer[Observer]

// SetGlobal installs (or, with nil, removes) the process-wide observer.
func SetGlobal(o *Observer) { global.Store(o) }

// Global returns the process-wide observer, or nil when none is
// installed. The nil result is directly usable: every Observer method
// no-ops on a nil receiver.
func Global() *Observer { return global.Load() }
