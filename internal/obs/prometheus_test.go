package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// The text exposition covers every metric class with sanitized names,
// cumulative buckets and deterministic ordering.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("solver.events").Add(42)
	r.Gauge("solver.sim_time_s").Set(1.5e-9)
	r.GaugeFunc("runtime.goroutines", func() float64 { return 7 })
	h := r.Histogram("jobs.checkpoint_bytes", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE solver_events_total counter\nsolver_events_total 42\n",
		"# TYPE solver_sim_time_s gauge\nsolver_sim_time_s 1.5e-09\n",
		"runtime_goroutines 7\n",
		"# TYPE jobs_checkpoint_bytes histogram\n",
		`jobs_checkpoint_bytes_bucket{le="10"} 1`,
		`jobs_checkpoint_bytes_bucket{le="100"} 2`,
		`jobs_checkpoint_bytes_bucket{le="+Inf"} 3`,
		"jobs_checkpoint_bytes_sum 5055\n",
		"jobs_checkpoint_bytes_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic: a second snapshot of the same registry is identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition is not deterministic")
	}

	var nilReg *Registry
	if err := nilReg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"solver.events":   "solver_events",
		"span.sweep.ns":   "span_sweep_ns",
		"a-b c":           "a_b_c",
		"0day":            "_0day",
		"already_legal:x": "already_legal:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// /metrics negotiates: JSON by default, Prometheus text for scrapers.
func TestMetricsContentNegotiation(t *testing.T) {
	o := New(Config{})
	o.Event(KindTunnel, 1, 1e-9, -1e-21)
	h := Handler(o)

	get := func(target, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	// Default (curl, browsers): the stable JSON snapshot.
	rec := get("/metrics", "")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"counters"`)) {
		t.Fatalf("default body is not the JSON snapshot:\n%s", rec.Body.String())
	}

	// A Prometheus scrape Accept header selects the text exposition.
	scrape := "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1"
	rec = get("/metrics", scrape)
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("scrape Content-Type = %q", ct)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("solver_events_total 1")) {
		t.Fatalf("scrape body is not the text exposition:\n%s", rec.Body.String())
	}

	// Explicit query overrides win in both directions.
	if rec := get("/metrics?format=prometheus", "application/json"); !bytes.Contains(rec.Body.Bytes(), []byte("_total")) {
		t.Fatal("?format=prometheus ignored")
	}
	if rec := get("/metrics?format=json", "text/plain"); !bytes.Contains(rec.Body.Bytes(), []byte(`"counters"`)) {
		t.Fatal("?format=json ignored")
	}

	// JSON listed before text/plain keeps JSON.
	if rec := get("/metrics", "application/json, text/plain;q=0.5"); !bytes.Contains(rec.Body.Bytes(), []byte(`"counters"`)) {
		t.Fatal("Accept preferring JSON served text")
	}
}
