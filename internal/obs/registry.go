package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of counters, gauges and histograms.
// Registration is get-or-create by name, so independent subsystems
// (solver runs, sweep drivers, span timers) can share one registry
// without coordinating; all metric operations are lock-free atomics and
// safe for concurrent use. A Registry is snapshottable as JSON at any
// time, including mid-run.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]func() float64
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		funcs:  map[string]func() float64{},
		hists:  map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v (compare-and-swap loop; gauges used as float
// accumulators, e.g. dissipated energy, stay exact under concurrency).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: bounds are upper bucket
// edges (ascending), with an implicit +Inf overflow bucket. Observation
// is a binary search plus three atomic adds — cheap enough for
// per-refresh and per-flush call sites, and allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	n      atomic.Uint64
	sum    Gauge
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// ExpBuckets builds n exponential bucket bounds start, start*factor, …
// — the natural shape for latencies in nanoseconds and fan-out sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback sampled at snapshot time (for values
// owned elsewhere, e.g. goroutine counts). Re-registering a name
// replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"` // upper bucket edges; +Inf implicit
	Buckets []uint64  `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, JSON-serializable
// with deterministic (sorted) key order.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counts)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
		}
		hs.Buckets = make([]uint64, len(h.counts))
		for i := range h.counts {
			hs.Buckets[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON
// (encoding/json sorts map keys, so the output is stable).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
