package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Kind tags one journal event.
type Kind uint8

// Journal event kinds.
const (
	// KindTunnel is an applied first-order tunnel event (quasi-particle
	// in superconducting circuits).
	KindTunnel Kind = iota + 1
	// KindCotunnel is an applied second-order cotunneling event.
	KindCotunnel
	// KindCooper is an applied Cooper-pair event.
	KindCooper
	// KindAdaptiveTest is one adaptive testing-factor decision:
	// Junc is the tested junction, V1 the accumulated factor e*|b(i)|,
	// V2 the threshold alpha*min(|dW'fw|,|dW'bw|), A is 1 when flagged
	// for recomputation, B the BFS spill depth at which it was reached.
	KindAdaptiveTest
	// KindAdaptive summarizes one adaptive update: A junctions tested,
	// B junctions flagged, Junc the seed junction.
	KindAdaptive
	// KindRefresh is a periodic full refresh boundary.
	KindRefresh
	// KindInputChange is a source-voltage change boundary; A is the
	// number of junctions flagged by the fold-in test.
	KindInputChange
	// KindFenwick is a selection-tree flush: A the staged batch size,
	// B 1 when the flush chose a bulk rebuild over point updates.
	KindFenwick
	// KindSpan is a completed span: Junc is the interned name id
	// (Journal.SpanName resolves it), Wall/Dur the start offset and
	// duration in nanoseconds.
	KindSpan
	// KindProgress is a periodic progress sample emitted by a Progress
	// reporter: V1 events so far, V2 events/s.
	KindProgress
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindTunnel:
		return "tunnel"
	case KindCotunnel:
		return "cotunnel"
	case KindCooper:
		return "cooper"
	case KindAdaptiveTest:
		return "adaptiveTest"
	case KindAdaptive:
		return "adaptiveUpdate"
	case KindRefresh:
		return "fullRefresh"
	case KindInputChange:
		return "inputChange"
	case KindFenwick:
		return "fenwickFlush"
	case KindSpan:
		return "span"
	case KindProgress:
		return "progress"
	}
	return "unknown"
}

// Event is one fixed-size journal record. Fields are kind-specific (see
// the Kind constants); unused fields are zero. The struct holds no
// pointers, so a full ring costs one allocation for the lifetime of the
// journal and recording is copy-only.
type Event struct {
	Kind Kind
	Junc int32   // junction id / span name id
	A, B int32   // kind-specific small integers
	Sim  float64 // simulated time (seconds)
	V1   float64 // kind-specific values
	V2   float64
	Wall int64 // wall-clock offset since journal start (ns)
	Dur  int64 // span duration (ns); 0 otherwise
}

// Journal is a bounded in-memory event stream: a ring buffer that
// overwrites its oldest events once full, plus an optional JSONL sink
// that receives every event as it is recorded (unbounded, for offline
// analysis). All methods are safe for concurrent use.
type Journal struct {
	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded
	names []string
	sink  *bufio.Writer
}

// NewJournal creates a journal holding the most recent cap events
// (minimum 1). sink, when non-nil, receives every event as one JSON
// line; call Flush before reading the sink's destination.
func NewJournal(cap int, sink io.Writer) *Journal {
	if cap < 1 {
		cap = 1
	}
	j := &Journal{ring: make([]Event, 0, cap)}
	if sink != nil {
		j.sink = bufio.NewWriter(sink)
	}
	return j
}

// Record appends one event, overwriting the oldest once the ring is
// full.
func (j *Journal) Record(e Event) {
	j.mu.Lock()
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, e)
	} else {
		j.ring[int(j.total)%cap(j.ring)] = e
	}
	j.total++
	if j.sink != nil {
		writeEventJSON(j.sink, &e, j.names)
		j.sink.WriteByte('\n')
	}
	j.mu.Unlock()
}

// internName maps a span name to a stable small id.
func (j *Journal) internName(name string) int32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, n := range j.names {
		if n == name {
			return int32(i)
		}
	}
	j.names = append(j.names, name)
	return int32(len(j.names) - 1)
}

// SpanName resolves an interned span name id.
func (j *Journal) SpanName(id int32) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if id < 0 || int(id) >= len(j.names) {
		return fmt.Sprintf("span#%d", id)
	}
	return j.names[id]
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Events returns the retained events in recording order (oldest first).
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if len(j.ring) < cap(j.ring) {
		return append(out, j.ring...)
	}
	head := int(j.total) % cap(j.ring) // oldest retained event
	out = append(out, j.ring[head:]...)
	return append(out, j.ring[:head]...)
}

// Flush drains the buffered JSONL sink, if any.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sink == nil {
		return nil
	}
	return j.sink.Flush()
}

// writeEventJSON emits one event as a single JSON object without
// reflection (the JSONL sink sits on the tracing hot path).
func writeEventJSON(w io.Writer, e *Event, names []string) {
	fmt.Fprintf(w, `{"kind":%q,"sim":%.12e,"wall_ns":%d`, e.Kind.String(), e.Sim, e.Wall)
	if e.Kind == KindSpan {
		name := fmt.Sprintf("span#%d", e.Junc)
		if int(e.Junc) >= 0 && int(e.Junc) < len(names) {
			name = names[e.Junc]
		}
		fmt.Fprintf(w, `,"name":%q,"dur_ns":%d`, name, e.Dur)
	} else if e.Junc != 0 || e.Kind == KindTunnel || e.Kind == KindAdaptiveTest {
		fmt.Fprintf(w, `,"junc":%d`, e.Junc)
	}
	if e.A != 0 || e.B != 0 {
		fmt.Fprintf(w, `,"a":%d,"b":%d`, e.A, e.B)
	}
	if e.V1 != 0 || e.V2 != 0 {
		fmt.Fprintf(w, `,"v1":%g,"v2":%g`, e.V1, e.V2)
	}
	io.WriteString(w, "}")
}
