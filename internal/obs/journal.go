package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Kind tags one journal event.
type Kind uint8

// Journal event kinds.
const (
	// KindTunnel is an applied first-order tunnel event (quasi-particle
	// in superconducting circuits).
	KindTunnel Kind = iota + 1
	// KindCotunnel is an applied second-order cotunneling event.
	KindCotunnel
	// KindCooper is an applied Cooper-pair event.
	KindCooper
	// KindAdaptiveTest is one adaptive testing-factor decision:
	// Junc is the tested junction, V1 the accumulated factor e*|b(i)|,
	// V2 the threshold alpha*min(|dW'fw|,|dW'bw|), A is 1 when flagged
	// for recomputation, B the BFS spill depth at which it was reached.
	KindAdaptiveTest
	// KindAdaptive summarizes one adaptive update: A junctions tested,
	// B junctions flagged, Junc the seed junction.
	KindAdaptive
	// KindRefresh is a periodic full refresh boundary.
	KindRefresh
	// KindInputChange is a source-voltage change boundary; A is the
	// number of junctions flagged by the fold-in test.
	KindInputChange
	// KindFenwick is a selection-tree flush: A the staged batch size,
	// B 1 when the flush chose a bulk rebuild over point updates.
	KindFenwick
	// KindSpan is a completed span: Junc is the interned name id
	// (Journal.SpanName resolves it), Wall/Dur the start offset and
	// duration in nanoseconds.
	KindSpan
	// KindProgress is a periodic progress sample emitted by a Progress
	// reporter: V1 events so far, V2 events/s. In a batch job lane the
	// same kind carries V1 tasks done, V2 events/s across the job.
	KindProgress
	// KindTaskRun is one completed (point, run) batch task execution:
	// Junc the sweep-point index, A the run index, B the outcome code
	// (see TaskOutcome*), V1 the events applied by this execution,
	// Wall/Dur the start offset and duration in nanoseconds.
	KindTaskRun
	// KindCkptWrite is one checkpoint persistence: Junc the point, A the
	// run, V1 the bytes written, V2 the fsync nanoseconds, Wall/Dur the
	// start offset and total write duration.
	KindCkptWrite
	// KindTaskRetry is a bounded-backoff retry decision: Junc the point,
	// A the run, B the attempt number being retried, V1 the backoff
	// delay in seconds, V2 the error class code (see ErrClass*).
	KindTaskRetry
	// KindTaskResume marks a task picking up a persisted checkpoint:
	// Junc the point, A the run, V1 the events already applied at the
	// resume point (0 when the checkpoint was a done marker).
	KindTaskResume
	// KindJobState is a job lifecycle transition recorded in a job lane:
	// A the state code (see JobState*).
	KindJobState
	// KindNoiseWindow is a noise-accumulator counting-window closure:
	// Junc the recorded junction, A the number of windows completed at
	// once (1 plus any empty windows the closing event skipped), V1 the
	// closing window's charge in units of e.
	KindNoiseWindow
)

// Task outcome codes carried by KindTaskRun events (field B).
const (
	// TaskOutcomeDone marks a task that completed and produced a result.
	TaskOutcomeDone = 0
	// TaskOutcomeFailed marks a task that ended with an error.
	TaskOutcomeFailed = 1
	// TaskOutcomeInterrupted marks a task stopped by a drain after
	// persisting a resumable checkpoint.
	TaskOutcomeInterrupted = 2
)

// Error class codes carried by KindTaskRetry events (field V2).
const (
	// ErrClassOther is any error without a more specific class.
	ErrClassOther = 0
	// ErrClassCheckpointIO is transient checkpoint I/O (the retryable
	// class).
	ErrClassCheckpointIO = 1
	// ErrClassCanceled is a context cancellation.
	ErrClassCanceled = 2
	// ErrClassTimeout is a job deadline expiry.
	ErrClassTimeout = 3
)

// Job state codes carried by KindJobState events (field A). They mirror
// the jobs engine's lifecycle: queued -> running -> checkpointing ->
// one of the terminal states.
const (
	// JobStateQueued marks submission.
	JobStateQueued = 0
	// JobStateRunning marks the first task starting.
	JobStateRunning = 1
	// JobStateCheckpoint marks a checkpoint being persisted.
	JobStateCheckpoint = 2
	// JobStateDone marks successful completion.
	JobStateDone = 3
	// JobStateFailed marks terminal failure.
	JobStateFailed = 4
	// JobStateCanceled marks cancellation or timeout.
	JobStateCanceled = 5
	// JobStateInterrupted marks a drain with resumable checkpoints.
	JobStateInterrupted = 6
)

// taskOutcomeNames, errClassNames and jobStateNames label the small
// integer codes in exports.
var (
	taskOutcomeNames = [...]string{"done", "failed", "interrupted"}
	errClassNames    = [...]string{"other", "checkpoint-io", "canceled", "timeout"}
	jobStateNames    = [...]string{"queued", "running", "checkpoint", "done", "failed", "canceled", "interrupted"}
)

// codeName resolves a small code against its name table.
func codeName(names []string, code int) string {
	if code >= 0 && code < len(names) {
		return names[code]
	}
	return fmt.Sprintf("code#%d", code)
}

// TaskOutcomeName names a TaskOutcome code ("done", "failed",
// "interrupted").
func TaskOutcomeName(code int) string { return codeName(taskOutcomeNames[:], code) }

// ErrClassName names an ErrClass code ("other", "checkpoint-io",
// "canceled", "timeout").
func ErrClassName(code int) string { return codeName(errClassNames[:], code) }

// JobStateName names a JobState code ("queued" through "interrupted").
func JobStateName(code int) string { return codeName(jobStateNames[:], code) }

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindTunnel:
		return "tunnel"
	case KindCotunnel:
		return "cotunnel"
	case KindCooper:
		return "cooper"
	case KindAdaptiveTest:
		return "adaptiveTest"
	case KindAdaptive:
		return "adaptiveUpdate"
	case KindRefresh:
		return "fullRefresh"
	case KindInputChange:
		return "inputChange"
	case KindFenwick:
		return "fenwickFlush"
	case KindSpan:
		return "span"
	case KindProgress:
		return "progress"
	case KindTaskRun:
		return "taskRun"
	case KindCkptWrite:
		return "checkpointWrite"
	case KindTaskRetry:
		return "taskRetry"
	case KindTaskResume:
		return "taskResume"
	case KindJobState:
		return "jobState"
	case KindNoiseWindow:
		return "noiseWindow"
	}
	return "unknown"
}

// Event is one fixed-size journal record. Fields are kind-specific (see
// the Kind constants); unused fields are zero. The struct holds no
// pointers, so a full ring costs one allocation for the lifetime of the
// journal and recording is copy-only.
type Event struct {
	Kind Kind
	Junc int32   // junction id / span name id
	A, B int32   // kind-specific small integers
	Sim  float64 // simulated time (seconds)
	V1   float64 // kind-specific values
	V2   float64
	Wall int64 // wall-clock offset since journal start (ns)
	Dur  int64 // span duration (ns); 0 otherwise
}

// Journal is a bounded in-memory event stream: a ring buffer that
// overwrites its oldest events once full, plus an optional JSONL sink
// that receives every event as it is recorded (unbounded, for offline
// analysis). All methods are safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	total   uint64 // events ever recorded
	dropped uint64 // events the ring has overwritten (total - retained)
	dropCtr *Counter
	names   []string
	sink    *bufio.Writer
}

// NewJournal creates a journal holding the most recent cap events
// (minimum 1). sink, when non-nil, receives every event as one JSON
// line; call Flush before reading the sink's destination.
func NewJournal(cap int, sink io.Writer) *Journal {
	if cap < 1 {
		cap = 1
	}
	j := &Journal{ring: make([]Event, 0, cap)}
	if sink != nil {
		j.sink = bufio.NewWriter(sink)
	}
	return j
}

// CountDrops mirrors the journal's dropped-event count into a registry
// counter, so silent ring truncation shows up on /metrics (nil-safe).
func (j *Journal) CountDrops(c *Counter) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.dropCtr = c
	j.mu.Unlock()
}

// Record appends one event, overwriting the oldest once the ring is
// full. Overwrites are never silent: they accumulate in Dropped (and
// the CountDrops registry counter), and trace exports carry a
// journal_dropped note when any occurred.
func (j *Journal) Record(e Event) {
	j.mu.Lock()
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, e)
	} else {
		j.ring[int(j.total)%cap(j.ring)] = e
		j.dropped++
		if j.dropCtr != nil {
			j.dropCtr.Add(1)
		}
	}
	j.total++
	if j.sink != nil {
		writeEventJSON(j.sink, &e, j.names)
		j.sink.WriteByte('\n')
	}
	j.mu.Unlock()
}

// internName maps a span name to a stable small id.
func (j *Journal) internName(name string) int32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, n := range j.names {
		if n == name {
			return int32(i)
		}
	}
	j.names = append(j.names, name)
	return int32(len(j.names) - 1)
}

// InternName maps a span name to its stable small id for callers that
// build KindSpan events directly (the Span API does this internally).
func (j *Journal) InternName(name string) int32 { return j.internName(name) }

// SpanName resolves an interned span name id.
func (j *Journal) SpanName(id int32) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if id < 0 || int(id) >= len(j.names) {
		return fmt.Sprintf("span#%d", id)
	}
	return j.names[id]
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Dropped returns how many recorded events the bounded ring has
// overwritten — events absent from Events and every export built on it.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the retained events in recording order (oldest first).
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if len(j.ring) < cap(j.ring) {
		return append(out, j.ring...)
	}
	head := int(j.total) % cap(j.ring) // oldest retained event
	out = append(out, j.ring[head:]...)
	return append(out, j.ring[:head]...)
}

// Flush drains the buffered JSONL sink, if any.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sink == nil {
		return nil
	}
	return j.sink.Flush()
}

// writeEventJSON emits one event as a single JSON object without
// reflection (the JSONL sink sits on the tracing hot path).
func writeEventJSON(w io.Writer, e *Event, names []string) {
	fmt.Fprintf(w, `{"kind":%q,"sim":%.12e,"wall_ns":%d`, e.Kind.String(), e.Sim, e.Wall)
	if e.Kind == KindSpan {
		name := fmt.Sprintf("span#%d", e.Junc)
		if int(e.Junc) >= 0 && int(e.Junc) < len(names) {
			name = names[e.Junc]
		}
		fmt.Fprintf(w, `,"name":%q,"dur_ns":%d`, name, e.Dur)
	} else if e.Junc != 0 || e.Kind == KindTunnel || e.Kind == KindAdaptiveTest {
		fmt.Fprintf(w, `,"junc":%d`, e.Junc)
	}
	if e.A != 0 || e.B != 0 {
		fmt.Fprintf(w, `,"a":%d,"b":%d`, e.A, e.B)
	}
	if e.V1 != 0 || e.V2 != 0 {
		fmt.Fprintf(w, `,"v1":%g,"v2":%g`, e.V1, e.V2)
	}
	io.WriteString(w, "}")
}
