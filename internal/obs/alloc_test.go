package obs

import "testing"

// The disabled-observer hot path must cost zero allocations: solver
// hooks fire per tunnel event (millions per run), so anything the
// garbage collector can see would show up directly in events/s. The
// benchmarks below exercise every hook a Sim calls on its hot path
// through a nil *Observer; TestObsDisabledZeroAlloc turns them into a
// hard test gate (run in CI), and `go test -bench=ObsDisabled
// -benchmem` reports the same numbers interactively.

//go:noinline
func nilObserver() *Observer { return nil }

func BenchmarkObsDisabledEvent(b *testing.B) {
	o := nilObserver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Event(KindTunnel, i&1023, 1e-9, -1e-21)
	}
}

func BenchmarkObsDisabledAdaptive(b *testing.B) {
	o := nilObserver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Adaptive(i&1023, 5, 1, 1e-9)
		o.RateCalcs(10)
	}
}

func BenchmarkObsDisabledFenwickFlush(b *testing.B) {
	o := nilObserver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.FenwickFlush(i&63, i&1 == 0, 1e-9)
	}
}

func BenchmarkObsDisabledSpan(b *testing.B) {
	o := nilObserver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Span("fullRefresh", 1e-9).End()
	}
}

func BenchmarkObsDisabledRecomputed(b *testing.B) {
	o := nilObserver()
	flagged := []int{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Recomputed(flagged)
	}
}

func BenchmarkObsDisabledEventTouched(b *testing.B) {
	o := nilObserver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.EventTouched(i & 1023)
		o.CinvBound(1e-9)
	}
}

// BenchmarkObsEnabledEvent is the enabled counterpart for the overhead
// report: metrics on, tracing off. It must also stay allocation-free.
func BenchmarkObsEnabledEvent(b *testing.B) {
	o := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Event(KindTunnel, i&1023, 1e-9, -1e-21)
	}
}

// TestObsDisabledZeroAlloc is the CI gate: every disabled-path hook
// must report exactly 0 allocs/op.
func TestObsDisabledZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking under -short")
	}
	benches := map[string]func(*testing.B){
		"Event":        BenchmarkObsDisabledEvent,
		"Adaptive":     BenchmarkObsDisabledAdaptive,
		"FenwickFlush": BenchmarkObsDisabledFenwickFlush,
		"Span":         BenchmarkObsDisabledSpan,
		"Recomputed":   BenchmarkObsDisabledRecomputed,
		"EventTouched": BenchmarkObsDisabledEventTouched,
		"EnabledEvent": BenchmarkObsEnabledEvent,
	}
	for name, fn := range benches {
		res := testing.Benchmark(fn)
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Errorf("%s: %d allocs/op, want 0 (hot path must be allocation-free)", name, allocs)
		}
	}
}
