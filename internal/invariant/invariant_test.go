package invariant

import "testing"

// TestCheckf runs under both builds: with -tags semsimdebug it verifies
// recording, counting and reset; in the default build it verifies the
// no-op stubs stay silent.
func TestCheckf(t *testing.T) {
	Reset()
	Checkf(true, "satisfied invariant must not record")
	Checkf(false, "violated invariant %d", 7)
	if !Enabled {
		if Violations() != 0 {
			t.Fatalf("disabled build recorded %d violations", Violations())
		}
		if Messages() != nil {
			t.Fatalf("disabled build retained messages %q", Messages())
		}
		return
	}
	if Violations() != 1 {
		t.Fatalf("violations = %d, want 1", Violations())
	}
	msgs := Messages()
	if len(msgs) != 1 || msgs[0] != "violated invariant 7" {
		t.Fatalf("messages = %q", msgs)
	}
	Reset()
	if Violations() != 0 || Messages() != nil {
		t.Fatalf("reset left %d violations, messages %q", Violations(), Messages())
	}
}
