// Package invariant is the runtime assertion layer of the simulator,
// compiled in only under the semsimdebug build tag:
//
//	go test -tags semsimdebug ./...
//
// The solver wires physics invariants through it — electron
// conservation after every event, rate non-negativity, Fenwick
// prefix-sum consistency against a naive sum, incremental-potential
// drift against a fresh matrix solve, and tabulated-kernel accuracy
// against exact evaluation. A violation is recorded, not panicked on,
// so one debug run reports every broken invariant of a trajectory;
// tests assert Violations() == 0 at the end.
//
// In the default build Enabled is the constant false and every check
// block guarded by it is eliminated at compile time, so the release
// solver pays nothing.
package invariant
