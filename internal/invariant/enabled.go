//go:build semsimdebug

package invariant

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Enabled reports whether runtime invariant checking is compiled in.
// Guard every check site with it so the disabled build dead-code
// eliminates the whole block, argument evaluation included.
const Enabled = true

// maxMessages caps the retained violation descriptions; the counter
// keeps counting past it.
const maxMessages = 64

var (
	violations atomic.Uint64
	msgMu      sync.Mutex
	msgs       []string
)

// Checkf records a violation when cond is false. It never panics: a
// debug run should surface every broken invariant of a trajectory, not
// just the first, and the tests assert the final count is zero.
func Checkf(cond bool, format string, args ...any) {
	if cond {
		return
	}
	violations.Add(1)
	msgMu.Lock()
	if len(msgs) < maxMessages {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	}
	msgMu.Unlock()
}

// Violations returns the number of failed checks since the last Reset.
func Violations() uint64 { return violations.Load() }

// Messages returns the retained violation descriptions (at most
// maxMessages) since the last Reset.
func Messages() []string {
	msgMu.Lock()
	defer msgMu.Unlock()
	if len(msgs) == 0 {
		return nil
	}
	out := make([]string, len(msgs))
	copy(out, msgs)
	return out
}

// Reset clears the violation counter and retained messages.
func Reset() {
	violations.Store(0)
	msgMu.Lock()
	msgs = nil
	msgMu.Unlock()
}
