//go:build !semsimdebug

package invariant

// Enabled reports whether runtime invariant checking is compiled in.
// In the default build it is a false constant, so guarded check blocks
// vanish entirely.
const Enabled = false

// Checkf is a no-op in the default build. Call sites must still guard
// with Enabled so the arguments are never evaluated.
func Checkf(bool, string, ...any) {}

// Violations always reports zero in the default build.
func Violations() uint64 { return 0 }

// Messages always reports nothing in the default build.
func Messages() []string { return nil }

// Reset is a no-op in the default build.
func Reset() {}
