package spicemodel

import (
	"errors"
	"fmt"
	"math"

	"semsim/internal/circuit"
	"time"

	"semsim/internal/matrix"
	"semsim/internal/solver"
)

// ErrNoConvergence is the SPICE-style failure the paper reports for
// three of its fifteen benchmarks.
var ErrNoConvergence = errors.New("spicemodel: Newton-Raphson failed to converge")

// ErrWallBudget reports that a transient exceeded its wall-clock
// budget (Sim.WallBudget). The experiment harness treats it like a
// solver failure: this dense-matrix baseline lacks the sparse solver a
// production SPICE would use, so the largest benchmarks are
// impractical for it.
var ErrWallBudget = errors.New("spicemodel: transient exceeded its wall-clock budget")

// setDevice is a compact-model SET instance: terminals A and B (node
// indices in the transient's numbering) and capacitive gates.
type setDevice struct {
	a, b  int
	gates []gateCoupling
	model *Model
}

type gateCoupling struct {
	node int
	c    float64
}

// capElem is an ordinary capacitor between two transient nodes.
type capElem struct {
	a, b int
	c    float64
}

// Sim is the SPICE-baseline transient simulator for a SET circuit.
type Sim struct {
	c *circuit.Circuit

	// Transient node numbering: 0..nUnknown-1 are wire nodes (islands
	// that are not SET-internal), then externals (fixed voltages).
	nodeOf   []int // transient index -> circuit node id
	idxOf    []int // circuit node id -> transient index, -1 = eliminated island
	nUnknown int

	devices []setDevice
	caps    []capElem

	t float64
	v []float64 // all transient node voltages (unknowns first)

	probes []int // circuit node ids
	waves  map[int][]solver.Sample

	// Newton-Raphson controls.
	MaxNewton   int
	MaxStepCuts int
	VTol        float64
	// WallBudget, when positive, aborts Run with ErrWallBudget once the
	// wall clock exceeds it.
	WallBudget time.Duration
}

// FromCircuit builds the compact-model view of a built single-electron
// circuit: every island with exactly two junctions becomes a SET device
// (its island is eliminated), every junction-free island becomes a wire
// node. Islands with any other junction count are not representable by
// the compact model.
func FromCircuit(c *circuit.Circuit, temp float64) (*Sim, error) {
	s := &Sim{
		c:           c,
		idxOf:       make([]int, c.NumNodes()),
		waves:       map[int][]solver.Sample{},
		MaxNewton:   60,
		MaxStepCuts: 8,
		VTol:        1e-7,
	}
	for i := range s.idxOf {
		s.idxOf[i] = -1
	}
	// Classify islands as SET device islands or circuit terminals
	// (wires). Every junction must connect exactly one device island to
	// one terminal, so the junction graph is 2-colorable starting from
	// the externals (which are terminals by definition). A circuit that
	// violates this — e.g. a junction directly between two wires — is
	// not representable by a compact SET model.
	const (
		unknownKind = iota
		terminalKind
		deviceKind
	)
	kind := make([]int, c.NumNodes())
	queue := make([]int, 0, c.NumNodes())
	for _, ext := range c.Externals() {
		kind[ext] = terminalKind
		queue = append(queue, ext)
	}
	for head := 0; head < len(queue); head++ {
		node := queue[head]
		want := deviceKind
		if kind[node] == deviceKind {
			want = terminalKind
		}
		for _, j := range c.JunctionsAt(node) {
			jn := c.Junction(j)
			other := jn.A
			if other == node {
				other = jn.B
			}
			switch kind[other] {
			case unknownKind:
				if c.IslandIndex(other) < 0 {
					// External reached as a device island: impossible.
					return nil, fmt.Errorf("spicemodel: junction directly between externals %s and %s", c.NodeName(node), c.NodeName(other))
				}
				kind[other] = want
				queue = append(queue, other)
			case want:
			default:
				return nil, fmt.Errorf("spicemodel: junction between %s and %s breaks the SET device/terminal structure", c.NodeName(node), c.NodeName(other))
			}
		}
	}
	isSETIsland := make([]bool, c.NumNodes())
	for _, isl := range c.Islands() {
		switch kind[isl] {
		case deviceKind:
			if nj := len(c.JunctionsAt(isl)); nj != 2 {
				return nil, fmt.Errorf("spicemodel: device island %s has %d junctions, want 2", c.NodeName(isl), nj)
			}
			isSETIsland[isl] = true
		case unknownKind:
			if len(c.JunctionsAt(isl)) > 0 {
				return nil, fmt.Errorf("spicemodel: junction component around %s is not anchored to any source", c.NodeName(isl))
			}
		}
	}
	// Unknowns first.
	for _, isl := range c.Islands() {
		if !isSETIsland[isl] {
			s.idxOf[isl] = len(s.nodeOf)
			s.nodeOf = append(s.nodeOf, isl)
		}
	}
	s.nUnknown = len(s.nodeOf)
	for _, ext := range c.Externals() {
		s.idxOf[ext] = len(s.nodeOf)
		s.nodeOf = append(s.nodeOf, ext)
	}

	// Devices: walk SET islands, classify their caps as gates; compact
	// models are shared by geometry, globally across simulations (a
	// table build runs ~4000 master-equation solves).
	models := map[DeviceParams]*Model{}
	// Determine vmax from the sources that actually serve as device
	// terminals (junction endpoints). Gate-bias rails can sit at tens of
	// e/Cb volts and must not coarsen the table: wire nodes stay within
	// the terminal-supply range, so this bounds every device's Vds.
	vmax := 0.0
	peak := func(src circuit.Source) float64 {
		switch s := src.(type) {
		case circuit.DC:
			return math.Abs(float64(s))
		case circuit.Sine:
			return math.Abs(s.Offset) + math.Abs(s.Amp)
		case circuit.PWL:
			m := 0.0
			for _, v := range s.Volt {
				if a := math.Abs(v); a > m {
					m = a
				}
			}
			return m
		default:
			return math.Abs(src.V(0))
		}
	}
	for _, jn := range c.Junctions() {
		for _, node := range [2]int{jn.A, jn.B} {
			if c.IslandIndex(node) >= 0 {
				continue
			}
			if v := peak(c.SourceOf(node)); v > vmax {
				vmax = v
			}
		}
	}
	if vmax == 0 {
		vmax = 0.1
	}
	capTouching := map[int][]circuit.Capacitor{}
	for _, cp := range c.AllCapacitors() {
		capTouching[cp.A] = append(capTouching[cp.A], cp)
		capTouching[cp.B] = append(capTouching[cp.B], cp)
	}
	for _, isl := range c.Islands() {
		if !isSETIsland[isl] {
			continue
		}
		js := c.JunctionsAt(isl)
		j1, j2 := c.Junction(js[0]), c.Junction(js[1])
		other := func(j circuit.Junction) int {
			if j.A == isl {
				return j.B
			}
			return j.A
		}
		a, b := other(j1), other(j2)
		dev := setDevice{a: s.idxOf[a], b: s.idxOf[b]}
		p := DeviceParams{R1: j1.R, R2: j2.R, C1: j1.C, C2: j2.C, Temp: temp}
		for _, cp := range capTouching[isl] {
			g := cp.A
			if g == isl {
				g = cp.B
			}
			if isSETIsland[g] {
				return nil, fmt.Errorf("spicemodel: direct island-island coupling at %s is outside the compact model", c.NodeName(isl))
			}
			dev.gates = append(dev.gates, gateCoupling{node: s.idxOf[g], c: cp.C})
			p.CgSum += cp.C
		}
		if p.CgSum == 0 {
			return nil, fmt.Errorf("spicemodel: SET at %s has no gate capacitance", c.NodeName(isl))
		}
		mdl, ok := models[p]
		if !ok {
			var err error
			mdl, err = cachedModel(p, 3*vmax)
			if err != nil {
				return nil, err
			}
			models[p] = mdl
		}
		dev.model = mdl
		s.devices = append(s.devices, dev)

		// Compact-model terminal loading: each terminal and gate sees
		// its capacitance in series with the rest of the island.
		cs := p.Csum()
		load := func(node int, cc float64) {
			s.caps = append(s.caps, capElem{a: node, b: -1, c: cc * (cs - cc) / cs})
		}
		load(dev.a, j1.C)
		load(dev.b, j2.C)
		for i, g := range dev.gates {
			_ = i
			load(g.node, g.c)
		}
	}
	// Ordinary caps between non-island nodes.
	for _, cp := range c.AllCapacitors() {
		if isSETIsland[cp.A] || isSETIsland[cp.B] {
			continue
		}
		s.caps = append(s.caps, capElem{a: s.idxOf[cp.A], b: s.idxOf[cp.B], c: cp.C})
	}

	// Initial condition: wires at 0, externals at their t=0 values.
	s.v = make([]float64, len(s.nodeOf))
	for i := s.nUnknown; i < len(s.nodeOf); i++ {
		s.v[i] = c.SourceVoltage(s.nodeOf[i], 0)
	}
	return s, nil
}

// voltage returns the present voltage of transient node i (ground for
// the virtual node -1).
func (s *Sim) voltage(v []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return v[i]
}

// Probe records a node's waveform during Run.
func (s *Sim) Probe(node int) {
	s.probes = append(s.probes, node)
}

// Waveform returns the recorded samples for a probed circuit node.
func (s *Sim) Waveform(node int) []solver.Sample { return s.waves[node] }

// Voltage returns the present voltage of a circuit node.
func (s *Sim) Voltage(node int) float64 {
	i := s.idxOf[node]
	if i < 0 {
		panic("spicemodel: voltage of eliminated SET island")
	}
	return s.v[i]
}

// Time returns the current transient time.
func (s *Sim) Time() float64 { return s.t }

// q0 computes a device's effective induced charge. The table was built
// with the drain terminal at 0 V, so the in-circuit operating point
// maps onto it by referencing every gate to the drain terminal:
//
//	q0 = sum_k Cg_k * (v_gk - v_b)
//
// (Shifting all terminals and gates by a common mode leaves the island
// physics invariant; folding absolute gate voltages or a (C1+C2)*v_b
// term into q0 instead mis-biases the device by Csum*v_b.)
func (d *setDevice) q0(s *Sim, v []float64) float64 {
	vb := s.voltage(v, d.b)
	q := 0.0
	for _, g := range d.gates {
		q += g.c * (s.voltage(v, g.node) - vb)
	}
	return q
}

// Run advances the transient to tEnd with uniform step dt, recording
// probes after every accepted step. On Newton failure the step is cut
// up to MaxStepCuts times before ErrNoConvergence is returned.
func (s *Sim) Run(tEnd, dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("spicemodel: non-positive time step")
	}
	n := s.nUnknown
	jac := matrix.NewDense(n)
	rhs := make([]float64, n)
	vNew := make([]float64, len(s.v))
	start := time.Now()
	s.record()
	for s.t < tEnd {
		if s.WallBudget > 0 && time.Since(start) > s.WallBudget {
			return fmt.Errorf("%w after %v at t=%g", ErrWallBudget, s.WallBudget, s.t)
		}
		step := dt
		cuts := 0
		for {
			err := s.newtonStep(jac, rhs, vNew, step)
			if err == nil {
				break
			}
			cuts++
			if cuts > s.MaxStepCuts {
				return fmt.Errorf("%w at t=%g", ErrNoConvergence, s.t)
			}
			step /= 4
		}
		copy(s.v, vNew)
		s.t += step
		s.record()
	}
	return nil
}

func (s *Sim) record() {
	for _, node := range s.probes {
		s.waves[node] = append(s.waves[node], solver.Sample{T: s.t, V: s.Voltage(node)})
	}
}

// newtonStep solves one backward-Euler step of length dt into vNew.
func (s *Sim) newtonStep(jac *matrix.Dense, rhs, vNew []float64, dt float64) error {
	n := s.nUnknown
	copy(vNew, s.v)
	// Externals at the new time.
	tNew := s.t + dt
	for i := n; i < len(s.nodeOf); i++ {
		vNew[i] = s.c.SourceVoltage(s.nodeOf[i], tNew)
	}
	for iter := 0; iter < s.MaxNewton; iter++ {
		jac.Zero()
		for i := range rhs {
			rhs[i] = 0
		}
		// Capacitors: i_C = C * (dv_ab(new) - dv_ab(old)) / dt.
		for _, cp := range s.caps {
			g := cp.c / dt
			dvNew := s.voltage(vNew, cp.a) - s.voltage(vNew, cp.b)
			dvOld := s.voltage(s.v, cp.a) - s.voltage(s.v, cp.b)
			ic := g * (dvNew - dvOld)
			stamp2(jac, rhs, n, cp.a, cp.b, g, ic)
		}
		// SET devices: current a -> b of I(vds, q0) with gate
		// transconductance stamps.
		for di := range s.devices {
			d := &s.devices[di]
			vds := s.voltage(vNew, d.a) - s.voltage(vNew, d.b)
			q0 := d.q0(s, vNew)
			i := d.model.Current(vds, q0)
			gds, gq := d.model.GV(vds, q0)
			// KCL: +i leaves a, enters b.
			addRHS(rhs, n, d.a, i)
			addRHS(rhs, n, d.b, -i)
			addJac(jac, n, d.a, d.a, gds)
			addJac(jac, n, d.a, d.b, -gds)
			addJac(jac, n, d.b, d.a, -gds)
			addJac(jac, n, d.b, d.b, gds)
			// Gate coupling: dI/dVg = gq * Cg; the drain-referenced q0
			// also depends on the b terminal with weight -sum(Cg).
			cgSum := 0.0
			for _, g := range d.gates {
				addJac(jac, n, d.a, g.node, gq*g.c)
				addJac(jac, n, d.b, g.node, -gq*g.c)
				cgSum += g.c
			}
			addJac(jac, n, d.a, d.b, -gq*cgSum)
			addJac(jac, n, d.b, d.b, gq*cgSum)
		}
		// Convergence on the residual and the update.
		maxRes := 0.0
		for _, r := range rhs {
			if a := math.Abs(r); a > maxRes {
				maxRes = a
			}
		}
		lu, err := matrix.FactorLU(jac)
		if err != nil {
			return err
		}
		delta := make([]float64, n)
		lu.Solve(delta, rhs)
		maxDv := 0.0
		for i := 0; i < n; i++ {
			vNew[i] -= delta[i]
			if a := math.Abs(delta[i]); a > maxDv {
				maxDv = a
			}
		}
		if math.IsNaN(maxDv) {
			return ErrNoConvergence
		}
		if maxDv < s.VTol {
			return nil
		}
	}
	return ErrNoConvergence
}

func addRHS(rhs []float64, n, node int, v float64) {
	if node >= 0 && node < n {
		rhs[node] += v
	}
}

func addJac(jac *matrix.Dense, n, row, col int, v float64) {
	if row >= 0 && row < n && col >= 0 && col < n {
		jac.Add(row, col, v)
	}
}

// stamp2 stamps a linear branch of conductance g carrying current ic
// from a to b.
func stamp2(jac *matrix.Dense, rhs []float64, n, a, b int, g, ic float64) {
	addRHS(rhs, n, a, ic)
	addRHS(rhs, n, b, -ic)
	addJac(jac, n, a, a, g)
	addJac(jac, n, a, b, -g)
	addJac(jac, n, b, a, -g)
	addJac(jac, n, b, b, g)
}

// DrainCurrent returns the compact-model current of device d (ordered
// as discovered) — useful for I-V validation against the MC solver.
func (s *Sim) DrainCurrent(d int) float64 {
	dev := &s.devices[d]
	vds := s.voltage(s.v, dev.a) - s.voltage(s.v, dev.b)
	return dev.model.Current(vds, dev.q0(s, s.v))
}

// NumDevices returns how many SETs the compact view found.
func (s *Sim) NumDevices() int { return len(s.devices) }
