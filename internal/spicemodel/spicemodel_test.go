package spicemodel

import (
	"math"
	"strings"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/logicnet"
	"semsim/internal/master"
	"semsim/internal/trace"
	"semsim/internal/units"
)

const aF = units.Atto

func testParams() DeviceParams {
	return DeviceParams{
		R1: 1e6, R2: 1e6, C1: aF, C2: aF, CgSum: 3 * aF, Temp: 5,
	}
}

func TestModelMatchesMasterEquation(t *testing.T) {
	m, err := NewModel(testParams(), 0.08)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ vds, vg float64 }{
		{0.04, 0}, {0.02, 0.0267}, {-0.04, 0.01}, {0.06, 0.005},
	} {
		c, _ := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: tc.vds, Vd: 0, Vg: tc.vg,
		})
		ref, err := master.Solve(c, 5, -8, 8)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Current(tc.vds, 3*aF*tc.vg)
		want := ref.Current[1]
		if math.IsNaN(got) || math.IsNaN(want) {
			t.Fatalf("Vds=%g Vg=%g: NaN (model %g, ME %g)", tc.vds, tc.vg, got, want)
		}
		tol := 0.02*math.Abs(want) + 2e-12
		if !(math.Abs(got-want) <= tol) {
			t.Fatalf("Vds=%g Vg=%g: model %g vs ME %g", tc.vds, tc.vg, got, want)
		}
	}
}

func TestModelPeriodicInCharge(t *testing.T) {
	m, err := NewModel(testParams(), 0.08)
	if err != nil {
		t.Fatal(err)
	}
	i1 := m.Current(0.02, 0.3*units.E)
	i2 := m.Current(0.02, 1.3*units.E)
	i3 := m.Current(0.02, -0.7*units.E)
	if math.Abs(i1-i2) > 1e-15 || math.Abs(i1-i3) > 1e-15 {
		t.Fatalf("model not e-periodic: %g %g %g", i1, i2, i3)
	}
}

func TestModelAntisymmetry(t *testing.T) {
	// At q0 = 0 the symmetric device obeys I(-V) = -I(V).
	m, err := NewModel(testParams(), 0.08)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.01, 0.03, 0.05} {
		a, b := m.Current(v, 0), m.Current(-v, 0)
		if math.Abs(a+b) > 1e-3*math.Abs(a)+1e-14 {
			t.Fatalf("not antisymmetric at %g: %g vs %g", v, a, b)
		}
	}
}

func TestModelConductances(t *testing.T) {
	m, err := NewModel(testParams(), 0.08)
	if err != nil {
		t.Fatal(err)
	}
	// Above threshold the differential conductance approaches ~1/(R1+R2).
	gds, _ := m.GV(0.07, 0)
	if gds < 0.2/2e6 || gds > 2/2e6 {
		t.Fatalf("gds above threshold = %g, want ~%g", gds, 1/2e6)
	}
	// In deep blockade it is strongly suppressed.
	gBlock, _ := m.GV(0.005, 0)
	if gBlock > gds/10 {
		t.Fatalf("blockade conductance not suppressed: %g vs %g", gBlock, gds)
	}
}

// buildInverter expands a single SET inverter for transient testing.
func buildInverter(t *testing.T, vin circuit.Source) *logicnet.Expanded {
	t.Helper()
	nl, err := logicnet.Parse(strings.NewReader("input a\noutput y\ny = INV a\n"))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := nl.Expand(logicnet.DefaultParams(), map[string]circuit.Source{"a": vin})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestFromCircuitFindsDevices(t *testing.T) {
	ex := buildInverter(t, circuit.DC(0))
	s, err := FromCircuit(ex.Circuit, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDevices() != 2 {
		t.Fatalf("inverter: %d devices, want 2", s.NumDevices())
	}
}

func TestTransientInverterStatics(t *testing.T) {
	p := logicnet.DefaultParams()
	vdd := p.Vdd()
	for _, tc := range []struct {
		in       float64
		wantHigh bool
	}{
		{0, true},
		{vdd, false},
	} {
		ex := buildInverter(t, circuit.DC(tc.in))
		s, err := FromCircuit(ex.Circuit, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(120e-9, 0.5e-9); err != nil {
			t.Fatal(err)
		}
		v := s.Voltage(ex.Wire["y"])
		if tc.wantHigh && v < 0.6*vdd {
			t.Fatalf("SPICE INV(%g): out %g, want high (Vdd=%g)", tc.in, v, vdd)
		}
		if !tc.wantHigh && v > 0.4*vdd {
			t.Fatalf("SPICE INV(%g): out %g, want low", tc.in, v)
		}
	}
}

func TestTransientInverterDelay(t *testing.T) {
	p := logicnet.DefaultParams()
	vdd := p.Vdd()
	ex := buildInverter(t, circuit.PWL{
		T:    []float64{0, 80e-9, 81e-9},
		Volt: []float64{0, 0, vdd},
	})
	s, err := FromCircuit(ex.Circuit, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.Wire["y"]
	s.Probe(out)
	if err := s.Run(300e-9, 0.5e-9); err != nil {
		t.Fatal(err)
	}
	d, err := trace.PropagationDelay(s.Waveform(out), 81e-9, vdd/2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 100e-9 {
		t.Fatalf("implausible SPICE delay %g", d)
	}
}

func TestFromCircuitRejectsOddIslands(t *testing.T) {
	// A three-junction island is not a SET.
	c := circuit.New()
	g := c.AddNode("g", circuit.External)
	c.SetSource(g, circuit.DC(0))
	isl := c.AddNode("i", circuit.Island)
	c.AddJunction(g, isl, 1e6, aF)
	c.AddJunction(g, isl, 1e6, aF)
	c.AddJunction(g, isl, 1e6, aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := FromCircuit(c, 1); err == nil {
		t.Fatal("accepted 3-junction island")
	}
}

func TestRunRejectsBadStep(t *testing.T) {
	ex := buildInverter(t, circuit.DC(0))
	s, err := FromCircuit(ex.Circuit, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1e-9, 0); err == nil {
		t.Fatal("accepted zero time step")
	}
}
