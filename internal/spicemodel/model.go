// Package spicemodel is the analytical "SPICE" baseline the paper
// compares against (its Figs. 6 and 7 use an extended Inokawa-style
// compact SET model inside a circuit simulator).
//
// The compact model here is the steady-state master-equation current of
// an isolated SET, I(Vds, q0), tabulated once per device geometry and
// interpolated. Like any compact model it is an *averaged, continuous*
// description: interconnect charge quantization, device-device
// correlation and cotunneling are all absent — which is exactly why the
// paper treats SPICE results as fast but approximate, and why its
// propagation delays deviate from Monte Carlo by ~9% where the solver
// converges at all.
//
// The transient engine is a dense-matrix MNA simulator with backward
// Euler integration and Newton-Raphson per step. Like real SPICE it
// can fail to converge on stiff single-electron logic; that failure is
// reported, mirroring the benchmarks missing from the paper's Fig. 6.
package spicemodel

import (
	"fmt"
	"math"
	"sync"

	"semsim/internal/circuit"
	"semsim/internal/master"
	"semsim/internal/units"
)

// DeviceParams describes one SET geometry for the compact model.
type DeviceParams struct {
	R1, R2 float64 // junction resistances (ohms)
	C1, C2 float64 // junction capacitances (farads)
	CgSum  float64 // total gate capacitance (farads)
	Temp   float64 // kelvin
}

// Csum returns the island's total capacitance.
func (d DeviceParams) Csum() float64 { return d.C1 + d.C2 + d.CgSum }

// Model is a tabulated I(Vds, q0) compact SET model. q0 is the
// externally induced island charge (coulombs) excluding the C1*Vds
// contribution, which the table handles internally; it is periodic
// in e.
type Model struct {
	p      DeviceParams
	vmax   float64
	nV, nQ int
	dV, dQ float64
	table  []float64 // row-major [iq][iv]
}

// NewModel builds the table by solving the steady-state master equation
// on a (Vds, q0) grid. vmax must cover the largest drain-source voltage
// the transient will see. The voltage grid resolves the thermal
// smearing scale kT/e (the sharpest feature width in the I-V surface);
// an under-resolved table smooths over the conduction-window edges and
// systematically overestimates drive near the logic stall points.
func NewModel(p DeviceParams, vmax float64) (*Model, error) {
	if vmax <= 0 {
		return nil, fmt.Errorf("spicemodel: vmax must be positive")
	}
	nV := 129
	if p.Temp > 0 {
		want := int(2*vmax/(0.25*units.KB*p.Temp/units.E)) + 1
		if want > nV {
			nV = want
		}
		if nV > 3073 {
			nV = 3073
		}
	}
	m := &Model{p: p, vmax: vmax, nV: nV, nQ: 257}
	m.dV = 2 * vmax / float64(m.nV-1)
	m.dQ = units.E / float64(m.nQ-1)
	m.table = make([]float64, m.nV*m.nQ)
	// A synthetic gate with Cg = CgSum reproduces any induced charge via
	// Vg = q0/Cg. Grid q0 in [0, e].
	for iq := 0; iq < m.nQ; iq++ {
		q0 := float64(iq) * m.dQ
		for iv := 0; iv < m.nV; iv++ {
			vds := -vmax + float64(iv)*m.dV
			c, _ := circuit.NewSET(circuit.SETConfig{
				R1: p.R1, C1: p.C1, R2: p.R2, C2: p.C2,
				Cg: p.CgSum,
				Vs: vds, Vd: 0, Vg: q0 / p.CgSum,
			})
			res, err := master.Solve(c, p.Temp, -8, 8)
			if err != nil {
				return nil, fmt.Errorf("spicemodel: master solve at Vds=%g q0=%g: %w", vds, q0, err)
			}
			// Current through the drain junction, source -> drain sign.
			m.table[iq*m.nV+iv] = res.Current[1]
		}
	}
	return m, nil
}

// Current returns the interpolated drain current for drain-source
// voltage vds and induced charge q0 (coulombs, any value — reduced
// modulo e).
func (m *Model) Current(vds, q0 float64) float64 {
	// Clamp Vds to the table (the transient never exceeds it by design).
	if vds > m.vmax {
		vds = m.vmax
	}
	if vds < -m.vmax {
		vds = -m.vmax
	}
	q := math.Mod(q0, units.E)
	if q < 0 {
		q += units.E
	}
	fv := (vds + m.vmax) / m.dV
	fq := q / m.dQ
	iv := int(fv)
	iq := int(fq)
	if iv >= m.nV-1 {
		iv = m.nV - 2
	}
	if iq >= m.nQ-1 {
		iq = m.nQ - 2
	}
	av := fv - float64(iv)
	aq := fq - float64(iq)
	i00 := m.table[iq*m.nV+iv]
	i01 := m.table[iq*m.nV+iv+1]
	i10 := m.table[(iq+1)*m.nV+iv]
	i11 := m.table[(iq+1)*m.nV+iv+1]
	return i00*(1-av)*(1-aq) + i01*av*(1-aq) + i10*(1-av)*aq + i11*av*aq
}

// modelCache shares tables across FromCircuit calls: experiment sweeps
// rebuild the compact view per operating point over identical device
// geometries. Tables are immutable after construction.
var modelCache sync.Map // modelKey -> *Model

type modelKey struct {
	p    DeviceParams
	vmax float64
}

// cachedModel returns a (possibly shared) table covering at least vmax,
// bucketing the range to powers of two so nearby requests hit.
func cachedModel(p DeviceParams, vmax float64) (*Model, error) {
	bucket := math.Pow(2, math.Ceil(math.Log2(vmax)))
	key := modelKey{p: p, vmax: bucket}
	if m, ok := modelCache.Load(key); ok {
		return m.(*Model), nil
	}
	m, err := NewModel(p, bucket)
	if err != nil {
		return nil, err
	}
	actual, _ := modelCache.LoadOrStore(key, m)
	return actual.(*Model), nil
}

// GV returns the numerical conductances (dI/dVds, dI/dq0) used for
// Newton-Raphson stamps.
func (m *Model) GV(vds, q0 float64) (gds, gq float64) {
	dv := m.dV / 2
	dq := m.dQ / 2
	gds = (m.Current(vds+dv, q0) - m.Current(vds-dv, q0)) / (2 * dv)
	gq = (m.Current(vds, q0+dq) - m.Current(vds, q0-dq)) / (2 * dq)
	return gds, gq
}
