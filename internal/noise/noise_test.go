package noise

import (
	"math"
	"math/rand"
	"testing"

	"semsim/internal/units"
)

// poissonRecorder feeds a synthetic Poisson shot-noise process — n
// unit-charge events at rate lambda, every transfer the same sign —
// into a fresh recorder and returns it with the final event time.
func poissonRecorder(t *testing.T, cfg JuncConfig, lambda float64, n int, seed int64) (*Recorder, float64) {
	t.Helper()
	r, err := New(Config{Juncs: []JuncConfig{cfg}}, cfg.Junc+1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tm := 0.0
	for i := 0; i < n; i++ {
		tm += rng.ExpFloat64() / lambda
		r.Add(cfg.Junc, tm, -units.E)
	}
	return r, tm
}

// TestPoissonSyntheticStream checks the estimators against the one
// process with exact answers: uncorrelated tunneling at rate λ has
// Fano factor 1 (Poissonian counting) and a white current spectrum
// S_I(ω) = 2eI at every frequency.
func TestPoissonSyntheticStream(t *testing.T) {
	const (
		lambda = 1e9
		n      = 200000
	)
	// 128-point ω grid spanning two decades, all with ωT >> 1 so the
	// finite-window DC leakage term is negligible.
	omegas := make([]float64, 128)
	for i := range omegas {
		omegas[i] = 2 * math.Pi * 1e7 * math.Pow(10, 2*float64(i)/float64(len(omegas)-1))
	}
	r, tm := poissonRecorder(t, JuncConfig{Junc: 0, Omegas: omegas, Window: 64 / lambda}, lambda, n, 1)
	rs, ok := r.Stats(0, tm)
	if !ok {
		t.Fatal("junction 0 not recorded")
	}
	wantI := -units.E * lambda
	if math.Abs(rs.MeanI-wantI)/math.Abs(wantI) > 0.02 {
		t.Errorf("MeanI = %g, want ~%g", rs.MeanI, wantI)
	}
	f, ok := rs.Fano()
	if !ok {
		t.Fatal("Fano undefined on a 3000-window run")
	}
	// Var(F) ~ 2/N_win for Poisson counting: N_win ~ 3100, sd ~ 0.025.
	if math.Abs(f-1) > 0.1 {
		t.Errorf("Fano = %.4f, want 1 within 4 sigma (~0.1)", f)
	}
	// Each periodogram point is ~exponentially distributed (100%
	// relative sd); the 128-point grid average has ~9% sd.
	want := 2 * units.E * math.Abs(wantI)
	mean := 0.0
	for _, s := range rs.S {
		mean += s
	}
	mean /= float64(len(rs.S))
	if math.Abs(mean-want)/want > 0.3 {
		t.Errorf("grid-averaged S = %g, want 2eI = %g within 30%%", mean, want)
	}
}

// TestWindowGapSkip pins the O(1) empty-window arithmetic: a long
// event gap must advance the window count without walking the gap.
func TestWindowGapSkip(t *testing.T) {
	r, err := New(Config{Juncs: []JuncConfig{{Junc: 0, Window: 1.0}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Add(0, 0.5, 2*units.E)  // window 0: q = 2e
	r.Add(0, 10.5, 3*units.E) // closes windows 0..9, opens window 10
	rs, ok := r.Stats(0, 11.0)
	if !ok {
		t.Fatal("junction 0 not recorded")
	}
	// By t = 11 windows 0..10 are complete: q = {2, 0×9, 3} in units
	// of e, so ΣQ = 5, ΣQ² = 13 over 11 windows.
	if rs.Windows != 11 {
		t.Errorf("Windows = %d, want 11", rs.Windows)
	}
	if math.Abs(rs.SumQ-5) > 1e-9 || math.Abs(rs.SumQ2-13) > 1e-9 {
		t.Errorf("SumQ, SumQ2 = %g, %g, want 5, 13", rs.SumQ, rs.SumQ2)
	}
	if rs.Events != 2 {
		t.Errorf("Events = %d, want 2", rs.Events)
	}
}

// TestAutocorrUniformStream: one e per bin center makes the binned
// current autocorrelation (e/Δ)² at every lag, exactly.
func TestAutocorrUniformStream(t *testing.T) {
	const (
		bin  = 1e-9
		lags = 4
		n    = 1000
	)
	r, err := New(Config{Juncs: []JuncConfig{{Junc: 0, Lags: lags, Bin: bin}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.Add(0, (float64(i)+0.5)*bin, units.E)
	}
	lagT, c, ok := r.Autocorr(0)
	if !ok {
		t.Fatal("autocorrelation not recorded")
	}
	if len(c) != lags+1 {
		t.Fatalf("got %d lags, want %d", len(c), lags+1)
	}
	want := (units.E / bin) * (units.E / bin)
	for k := range c {
		if math.Abs(lagT[k]-float64(k)*bin) > 1e-24 {
			t.Errorf("lagT[%d] = %g, want %g", k, lagT[k], float64(k)*bin)
		}
		if math.Abs(c[k]-want)/want > 1e-9 {
			t.Errorf("c[%d] = %g, want %g", k, c[k], want)
		}
	}
}

// TestAutocorrGapCollapse: an event gap much longer than the ring must
// zero the ring in one pass and keep pair counts consistent (zero bins
// contribute nothing, so correlations against the gap vanish).
func TestAutocorrGapCollapse(t *testing.T) {
	r, err := New(Config{Juncs: []JuncConfig{{Junc: 0, Lags: 3, Bin: 1.0}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Add(0, 0.5, units.E)
	r.Add(0, 1000.5, units.E) // 999 empty bins — far beyond the ring
	r.Add(0, 1001.5, units.E)
	_, c, ok := r.Autocorr(0)
	if !ok {
		t.Fatal("autocorrelation not recorded")
	}
	// Only bins 0, 1000 are closed with charge; lag-1..3 pairs across
	// the gap are all against empty bins except (1001 open). Nothing
	// correlates, so c[k>=1] = 0; c[0] counts the two closed charged
	// bins.
	if c[0] <= 0 {
		t.Errorf("c[0] = %g, want > 0", c[0])
	}
	for k := 1; k < len(c); k++ {
		if c[k] != 0 {
			t.Errorf("c[%d] = %g, want 0 across the gap", k, c[k])
		}
	}
}

// TestAutoWindowCalibration pins the warm-up calibration contract:
// τ = DefaultWindowEvents·elapsed/events, applied once, only to
// auto junctions, kept by Reset and rolled back by FullReset.
func TestAutoWindowCalibration(t *testing.T) {
	r, err := New(Config{Juncs: []JuncConfig{
		{Junc: 0},               // auto
		{Junc: 1, Window: 5e-9}, // configured
	}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.AutoWindow(100, 1e-6)
	want := DefaultWindowEvents * 1e-6 / 100
	if rs, _ := r.Stats(0, 0); rs.Window != want {
		t.Errorf("auto window = %g, want %g", rs.Window, want)
	}
	if rs, _ := r.Stats(1, 0); rs.Window != 5e-9 {
		t.Errorf("configured window changed: %g", rs.Window)
	}
	// Second calibration is a no-op (the first one sticks).
	r.AutoWindow(10, 1e-6)
	if rs, _ := r.Stats(0, 0); rs.Window != want {
		t.Errorf("auto window recalibrated to %g, want %g", rs.Window, want)
	}
	// Reset keeps the calibrated width; FullReset rolls it back.
	r.Reset(1e-6)
	if rs, _ := r.Stats(0, 1e-6); rs.Window != want {
		t.Errorf("Reset dropped the auto window: %g", rs.Window)
	}
	r.FullReset(0)
	if rs, _ := r.Stats(0, 0); rs.Window != 0 {
		t.Errorf("FullReset kept the auto window: %g", rs.Window)
	}
	// Zero events (blockaded warm-up) must not divide by zero or set τ.
	r.AutoWindow(0, 1e-6)
	if rs, _ := r.Stats(0, 0); rs.Window != 0 {
		t.Errorf("AutoWindow(0 events) set τ = %g", rs.Window)
	}
}

// TestFoldAveragesRuns checks the cross-run reduction: Fano and S are
// averaged with standard errors, windows and runs counted, and the
// fold is a pure deterministic function of its input order.
func TestFoldAveragesRuns(t *testing.T) {
	runs := []RunStats{
		{T: 1, MeanI: 2, Window: 0.1, Windows: 10, SumQ: 100, SumQ2: 1040, Omegas: []float64{5}, S: []float64{3}},
		{T: 1, MeanI: 4, Window: 0.3, Windows: 10, SumQ: 100, SumQ2: 1100, Omegas: []float64{5}, S: []float64{5}},
		{T: 1, MeanI: 6, Window: 0.2, Windows: 1}, // too few windows: no Fano vote
	}
	st := Fold(runs)
	if st.Runs != 3 || st.Windows != 21 {
		t.Errorf("Runs, Windows = %d, %d, want 3, 21", st.Runs, st.Windows)
	}
	if math.Abs(st.MeanI-4) > 1e-12 || math.Abs(st.Window-0.2) > 1e-12 {
		t.Errorf("MeanI, Window = %g, %g, want 4, 0.2", st.MeanI, st.Window)
	}
	// Run 1: mean 10, var 104-100=4, F=0.4. Run 2: var 110-100=10, F=1.
	if math.Abs(st.Fano-0.7) > 1e-12 {
		t.Errorf("Fano = %g, want 0.7", st.Fano)
	}
	// stderr of {0.4, 1}: sd = 0.3·√2, stderr = 0.3.
	if math.Abs(st.FanoErr-0.3) > 1e-12 {
		t.Errorf("FanoErr = %g, want 0.3", st.FanoErr)
	}
	if len(st.S) != 1 || math.Abs(st.S[0]-8.0/3) > 1e-12 {
		t.Errorf("S = %v, want [8/3]", st.S)
	}
	// Bit-identical re-fold (determinism of the reduction).
	st2 := Fold(runs)
	if st2.Fano != st.Fano || st2.FanoErr != st.FanoErr || st2.S[0] != st.S[0] || st2.SErr[0] != st.SErr[0] {
		t.Error("Fold is not deterministic over identical input")
	}
	if empty := Fold(nil); empty.Runs != 0 || empty.Fano != 0 {
		t.Errorf("Fold(nil) = %+v, want zero value", empty)
	}
}

// TestStateRoundTrip: State → RestoreState must reproduce the
// accumulators bit-for-bit — continuing both recorders over the same
// tail of events yields identical statistics.
func TestStateRoundTrip(t *testing.T) {
	cfg := Config{Juncs: []JuncConfig{
		{Junc: 0, Omegas: []float64{1e8, 3e8}, Window: 2e-9, Lags: 3, Bin: 1e-9},
		{Junc: 2, Window: 0}, // auto — calibrated τ must survive the trip
	}}
	mk := func() *Recorder {
		r, err := New(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk()
	a.AutoWindow(50, 1e-6)
	rng := rand.New(rand.NewSource(7))
	tm := 0.0
	feed := func(r *Recorder, rng *rand.Rand, tm float64, n int) float64 {
		for i := 0; i < n; i++ {
			tm += rng.ExpFloat64() * 1e-9
			j := rng.Intn(3)
			r.Add(j, tm, -units.E)
		}
		return tm
	}
	tm = feed(a, rng, tm, 500)

	b := mk()
	if err := b.RestoreState(a.State()); err != nil {
		t.Fatal(err)
	}
	// Same tail into both, from identical RNG states.
	rngA := rand.New(rand.NewSource(9))
	rngB := rand.New(rand.NewSource(9))
	endA := feed(a, rngA, tm, 500)
	endB := feed(b, rngB, tm, 500)
	if endA != endB {
		t.Fatal("test bug: tails diverged")
	}
	for _, j := range []int{0, 2} {
		sa, _ := a.Stats(j, endA)
		sb, _ := b.Stats(j, endB)
		if sa.Events != sb.Events || sa.Windows != sb.Windows ||
			math.Float64bits(sa.SumQ) != math.Float64bits(sb.SumQ) ||
			math.Float64bits(sa.SumQ2) != math.Float64bits(sb.SumQ2) ||
			math.Float64bits(sa.MeanI) != math.Float64bits(sb.MeanI) ||
			math.Float64bits(sa.Window) != math.Float64bits(sb.Window) {
			t.Errorf("junction %d cumulants diverged after restore:\n%+v\n%+v", j, sa, sb)
		}
		for k := range sa.S {
			if math.Float64bits(sa.S[k]) != math.Float64bits(sb.S[k]) {
				t.Errorf("junction %d S[%d] diverged: %g vs %g", j, k, sa.S[k], sb.S[k])
			}
		}
	}
	ca1, cc1, _ := a.Autocorr(0)
	cb1, cc2, _ := b.Autocorr(0)
	for k := range cc1 {
		if math.Float64bits(cc1[k]) != math.Float64bits(cc2[k]) || ca1[k] != cb1[k] {
			t.Errorf("autocorr lag %d diverged", k)
		}
	}
}

// TestRestoreStateValidation: a snapshot must only restore into a
// recorder with the identical configuration, and a failed restore must
// not mutate the target.
func TestRestoreStateValidation(t *testing.T) {
	mk := func(cfg Config) *Recorder {
		r, err := New(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk(Config{Juncs: []JuncConfig{{Junc: 1, Window: 1e-9}}})
	a.Add(1, 1e-10, units.E)
	st := a.State()
	if st == nil {
		t.Fatal("State() = nil on a live recorder")
	}

	b := mk(Config{Juncs: []JuncConfig{{Junc: 1, Window: 2e-9}}}) // different config
	if err := b.RestoreState(st); err == nil {
		t.Error("RestoreState accepted a snapshot from a different configuration")
	}
	if rs, _ := b.Stats(1, 1); rs.Events != 0 {
		t.Error("failed RestoreState mutated the recorder")
	}

	var nilR *Recorder
	if nilR.State() != nil {
		t.Error("nil recorder State() != nil")
	}
	if err := nilR.RestoreState(st); err == nil {
		t.Error("RestoreState into a nil recorder must fail")
	}
	c := mk(Config{Juncs: []JuncConfig{{Junc: 1, Window: 1e-9}}})
	if err := c.RestoreState(nil); err == nil {
		t.Error("RestoreState(nil) into a live recorder must fail (missing snapshot)")
	}
}

// TestNewValidation covers the config error paths.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"junction out of range", Config{Juncs: []JuncConfig{{Junc: 9}}}},
		{"negative junction", Config{Juncs: []JuncConfig{{Junc: -1}}}},
		{"duplicate junction", Config{Juncs: []JuncConfig{{Junc: 0}, {Junc: 0}}}},
		{"nonpositive omega", Config{Juncs: []JuncConfig{{Junc: 0, Omegas: []float64{0}}}}},
		{"negative window", Config{Juncs: []JuncConfig{{Junc: 0, Window: -1}}}},
		{"lags without bin", Config{Juncs: []JuncConfig{{Junc: 0, Lags: 2}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg, 2); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
	if _, err := New(Config{}, 2); err == nil {
		t.Error("New accepted an empty config (nothing to record)")
	}
}

// TestAddZeroAlloc is the hot-path gate: recording an event — windows,
// spectral sums and autocorrelation together — must not allocate, and
// neither must the disabled (nil recorder / unrecorded junction)
// paths.
func TestAddZeroAlloc(t *testing.T) {
	r, err := New(Config{Juncs: []JuncConfig{
		{Junc: 0, Omegas: []float64{1e8, 2e8, 3e8}, Window: 1e-9, Lags: 4, Bin: 1e-9},
	}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tm := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		tm += 1e-10
		r.Add(0, tm, -units.E)
	}); allocs != 0 {
		t.Errorf("Add: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Add(1, tm, -units.E) // unrecorded junction
	}); allocs != 0 {
		t.Errorf("Add(unrecorded): %v allocs/op, want 0", allocs)
	}
	var nilR *Recorder
	if allocs := testing.AllocsPerRun(1000, func() {
		nilR.Add(0, tm, -units.E)
	}); allocs != 0 {
		t.Errorf("nil Add: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkAdd measures the per-event recording cost with every
// estimator active; BenchmarkAddNil is the disabled baseline the
// ~1 ns nil-receiver contract refers to.
func BenchmarkAdd(b *testing.B) {
	r, err := New(Config{Juncs: []JuncConfig{
		{Junc: 0, Omegas: []float64{1e8, 2e8, 3e8}, Window: 1e-9, Lags: 4, Bin: 1e-9},
	}}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	tm := 0.0
	for i := 0; i < b.N; i++ {
		tm += 1e-10
		r.Add(0, tm, -units.E)
	}
}

func BenchmarkAddNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(0, float64(i), -units.E)
	}
}

// TestUniformSpacingDetection pins down when the rotation fast path
// may be taken: exactly uniform grids of at least 3 frequencies.
func TestUniformSpacingDetection(t *testing.T) {
	cases := []struct {
		name   string
		omegas []float64
		want   float64
	}{
		{"linear", []float64{1e8, 2e8, 3e8, 4e8}, 1e8},
		{"linear-offset", []float64{5e7, 1.5e8, 2.5e8}, 1e8},
		{"geometric", []float64{1e8, 2e8, 4e8}, 0},
		{"two-points", []float64{1e8, 2e8}, 0},
		{"one-point", []float64{1e8}, 0},
		{"descending", []float64{3e8, 2e8, 1e8}, 0},
		{"near-uniform", []float64{1e8, 2e8, 3e8 * (1 + 1e-13)}, 0},
	}
	for _, c := range cases {
		if got := uniformSpacing(c.omegas); got != c.want {
			t.Errorf("%s: uniformSpacing = %g, want %g", c.name, got, c.want)
		}
	}
}

// TestUniformGridRotationMatchesDirect drives the uniform-grid
// rotation path and checks every Fourier sum against a directly
// evaluated reference. The recurrence is allowed O(n·ulp) drift, far
// inside 1e-9 relative for an 8-point grid; the non-uniform control
// grid must match the reference bit for bit since it runs the same
// per-omega Sincos loop.
func TestUniformGridRotationMatchesDirect(t *testing.T) {
	uniform := make([]float64, 8)
	for k := range uniform {
		uniform[k] = 2e7 + float64(k)*3e7
	}
	geometric := []float64{1e7, 3e7, 9e7, 2.7e8}
	r, err := New(Config{Juncs: []JuncConfig{
		{Junc: 0, Omegas: uniform, Window: 1e-8},
		{Junc: 1, Omegas: geometric, Window: 1e-8},
	}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.acc[0].domega != 3e7 {
		t.Fatalf("uniform grid not detected: domega = %g", r.acc[0].domega)
	}
	if r.acc[1].domega != 0 {
		t.Fatalf("geometric grid misdetected as uniform: domega = %g", r.acc[1].domega)
	}

	rng := rand.New(rand.NewSource(7))
	refRe := map[int][]float64{0: make([]float64, len(uniform)), 1: make([]float64, len(geometric))}
	refIm := map[int][]float64{0: make([]float64, len(uniform)), 1: make([]float64, len(geometric))}
	grids := map[int][]float64{0: uniform, 1: geometric}
	tm := 0.0
	for i := 0; i < 2000; i++ {
		tm += rng.ExpFloat64() * 1e-9
		dq := -units.E
		if rng.Intn(4) == 0 {
			dq = units.E
		}
		j := rng.Intn(2)
		r.Add(j, tm, dq)
		for k, w := range grids[j] {
			s, c := math.Sincos(w * tm)
			refRe[j][k] += dq * c
			refIm[j][k] += dq * s
		}
	}
	for j := 0; j < 2; j++ {
		a := &r.acc[r.idx[j]]
		for k := range grids[j] {
			for _, p := range []struct{ got, want, scale float64 }{
				{a.sumRe[k], refRe[j][k], math.Abs(refRe[j][k]) + units.E},
				{a.sumIm[k], refIm[j][k], math.Abs(refIm[j][k]) + units.E},
			} {
				if math.Abs(p.got-p.want) > 1e-9*p.scale {
					t.Errorf("junc %d omega[%d]: sum = %g, reference %g", j, k, p.got, p.want)
				}
			}
		}
	}
}
