// Package noise is the streaming noise / full-counting-statistics
// engine: per-junction accumulators that consume the solver's applied
// tunnel events one at a time and reduce them — in O(1) amortized work
// per event and zero allocations — to the three standard noise
// observables of single-electron devices:
//
//   - windowed charge cumulants (mean, variance and the Fano factor
//     F = Var(Q)/|⟨Q⟩| over counting windows of width τ);
//   - the current spectral density S_I(ω) on a configurable ω grid,
//     via the Sverdlov–Kinkhabwala estimator: each event's transferred
//     charge contributes dq·e^{iωt} to a running Fourier sum, so the
//     whole periodogram costs one Sincos per (event, ω) and no event
//     buffer;
//   - a binned current-autocorrelation ring, Σ q_b·q_{b−k} over the
//     last Lags charge bins.
//
// The integration contract mirrors internal/obs: every recording
// method is declared on *Recorder with a nil-receiver fast path, a
// Recorder never touches solver state, random streams or
// floating-point inputs, and a simulation with recording enabled is
// bit-identical to one without. Accumulator state serializes into a
// Checkpoint-embeddable State and restores bit-exactly, so noise
// measurements survive the jobs engine's drain/resume cycle unchanged.
// DESIGN.md §15 develops the estimator math and the determinism
// argument for folding run statistics across (point, run) tasks.
package noise

import (
	"errors"
	"fmt"
	"math"

	"semsim/internal/numeric"
	"semsim/internal/obs"
	"semsim/internal/units"
)

// DefaultWindowEvents sets the auto-calibrated counting-window width:
// a JuncConfig with Window == 0 gets τ chosen so an average window
// holds about this many tunnel events, estimated from the warm-up
// phase rate (Recorder.AutoWindow). Large enough that window charges
// are well into counting statistics, small enough that a normal run
// closes thousands of windows.
const DefaultWindowEvents = 64

// JuncConfig requests noise recording on one junction.
type JuncConfig struct {
	// Junc is the circuit junction id to record.
	Junc int
	// Omegas is the angular-frequency grid (rad/s, each > 0) of the
	// spectral-density estimator; empty records counting statistics
	// only.
	Omegas []float64
	// Window is the counting-window width τ in seconds. 0 auto-
	// calibrates from the warm-up event rate (see AutoWindow); the
	// chosen τ is part of the recorder's checkpoint state, so resumed
	// runs keep the exact window of the uninterrupted run.
	Window float64
	// Lags enables the binned autocorrelation estimator: the number of
	// non-zero lags accumulated over bins of width Bin. 0 disables it.
	Lags int
	// Bin is the autocorrelation bin width in seconds; required > 0
	// when Lags > 0.
	Bin float64
}

// Config lists the junctions a Recorder accumulates.
type Config struct {
	Juncs []JuncConfig
}

// accum is the per-junction accumulator state. All charge cumulants
// are kept in units of e (the natural FCS unit, and better
// conditioned than coulombs²); the Fourier and autocorrelation sums
// keep coulombs so spectra come out in A²/Hz directly.
type accum struct {
	// The per-event fields come first so the unconditional part of the
	// recording path — cumulant update plus counting-window advance —
	// touches a single cache line of a struct picked at random from a
	// circuit-sized array (on c432 that array alone is larger than L2).
	//
	// Counting-window cumulants. win is the index of the currently
	// open window (relative to the origin), winQ its accumulated
	// charge. Empty windows are skipped arithmetically — the index
	// advance adds their count to nWin without touching the sums, so a
	// long event gap costs O(1), not O(gap/τ).
	events uint64  // recorded events since origin
	qTot   float64 // net transferred charge since origin (coulombs)
	tau    float64
	win    uint64
	winQ   float64 // units of e
	nWin   uint64  // closed windows
	sumQ   float64 // Σ window charge, units of e
	sumQ2  float64 // Σ window charge², units of e²

	junc int // circuit junction id (window-close observability label)

	// Spectral sums: F(ω) = Σ_events dq·e^{iω(t−origin)}. sumRe and
	// sumIm are adjacent views into the recorder's shared arena, cache-
	// line packed; the grid itself lives in a cold side slice because
	// the uniform-grid fast path never reads it per event.
	//
	// domega is the grid spacing when the ω grid is exactly uniform
	// (ω_k = ω_0 + k·δ in floating point, detected at construction),
	// 0 otherwise; w0 is ω_0. A uniform grid — the standard
	// spectroscopy scan — needs only two Sincos calls per event:
	// e^{iω_k t} follows from e^{iω_0 t} by repeated complex rotation
	// with e^{iδt}.
	w0     float64
	domega float64
	sumRe  []float64
	sumIm  []float64
	omegas []float64

	// Autocorrelation: ring of the last `lags` closed charge bins.
	// Guarded by Recorder.anyBins, so windows-only recording never
	// reads past the spectral headers.
	bin    float64
	curBin uint64
	binQ   float64

	cfgWindow float64 // configured τ (0 = auto); tau resets to this
	lags      int
	ring      []float64 // coulombs; ring[nBins % lags] is written next
	corr      []float64 // corr[k] = Σ q_b·q_{b−k}, k = 0..lags
	nBins     uint64    // closed bins
}

// Recorder accumulates noise statistics for a set of junctions. A nil
// *Recorder is valid and turns every method into a cheap no-op, so the
// solver hot path pays one predictable branch when recording is off.
//
// Recorder is a registered snapshot root: the statecover pass verifies
// every field is serialized by State, rebuilt by RestoreState, or
// carries a justified waiver.
//
//statecover:root save=State load=RestoreState
type Recorder struct {
	//statecover:immutable junction id -> accumulator index (-1 =
	// unrecorded), built once at construction
	idx []int32
	acc []accum
	//statecover:immutable true when any junction records an
	// autocorrelation; lets the hot path skip the binning block without
	// touching per-accumulator autocorrelation fields
	anyBins bool
	// origin is the measurement-window start time all event times are
	// taken relative to (set by Reset).
	origin float64
	//statecover:derived observability handle; passive, never part of
	// the measured state
	obs *obs.Observer
	//statecover:immutable configuration fingerprint, computed once at
	// construction
	hash string
}

// New builds a Recorder over numJuncs junctions. Junction ids must be
// unique and in [0, numJuncs); omegas must be positive; Lags > 0
// requires Bin > 0.
func New(cfg Config, numJuncs int) (*Recorder, error) {
	if len(cfg.Juncs) == 0 {
		return nil, errors.New("noise: empty config (no junctions to record)")
	}
	r := &Recorder{idx: make([]int32, numJuncs)}
	for i := range r.idx {
		r.idx[i] = -1
	}
	// Validation pass; also sizes the shared arenas below.
	var specLen, ringLen int
	for _, jc := range cfg.Juncs {
		if jc.Junc < 0 || jc.Junc >= numJuncs {
			return nil, fmt.Errorf("noise: junction %d out of range (circuit has %d junctions)", jc.Junc, numJuncs)
		}
		if r.idx[jc.Junc] >= 0 {
			return nil, fmt.Errorf("noise: junction %d configured twice", jc.Junc)
		}
		for _, w := range jc.Omegas {
			if !(w > 0) {
				return nil, fmt.Errorf("noise: junction %d: angular frequency %g must be > 0", jc.Junc, w)
			}
		}
		if jc.Window < 0 {
			return nil, fmt.Errorf("noise: junction %d: window %g must be >= 0", jc.Junc, jc.Window)
		}
		if jc.Lags > 0 && !(jc.Bin > 0) {
			return nil, fmt.Errorf("noise: junction %d: autocorrelation lags need a positive bin width", jc.Junc)
		}
		r.idx[jc.Junc] = 0 // mark seen for the dupe check; real index set below
		specLen += specChunk(len(jc.Omegas))
		if jc.Lags > 0 {
			ringLen += 2*jc.Lags + 1
		}
	}
	// All mutated per-accumulator float storage comes from two shared
	// arenas: one accumulator's Fourier sums are adjacent and padded to
	// whole cache lines (the per-event spectral update touches exactly
	// its own lines), and with thousands of recorded junctions the
	// storage is one block instead of thousands of scattered small
	// allocations.
	spec := make([]float64, specLen)
	rings := make([]float64, ringLen)
	r.acc = make([]accum, 0, len(cfg.Juncs))
	for _, jc := range cfg.Juncs {
		a := accum{
			junc:      jc.Junc,
			cfgWindow: jc.Window,
			tau:       jc.Window,
		}
		if n := len(jc.Omegas); n > 0 {
			chunk := specChunk(n)
			buf := spec[:chunk:chunk]
			spec = spec[chunk:]
			a.sumRe = buf[0:n:n]
			a.sumIm = buf[n : 2*n : 2*n]
			a.omegas = append([]float64(nil), jc.Omegas...)
			a.w0 = a.omegas[0]
			a.domega = uniformSpacing(a.omegas)
		}
		if jc.Lags > 0 {
			a.bin = jc.Bin
			a.lags = jc.Lags
			rb := rings[: 2*jc.Lags+1 : 2*jc.Lags+1]
			rings = rings[2*jc.Lags+1:]
			a.ring = rb[0:jc.Lags:jc.Lags]
			a.corr = rb[jc.Lags:]
			r.anyBins = true
		}
		r.idx[jc.Junc] = int32(len(r.acc))
		r.acc = append(r.acc, a)
	}
	r.hash = configHash(&cfg)
	return r, nil
}

// specChunk is the arena footprint of an n-frequency accumulator: re
// and im sums back to back, rounded up to whole 64-byte cache lines so
// consecutive accumulators never share a line.
func specChunk(n int) int {
	return (2*n + 7) &^ 7
}

// uniformSpacing returns the grid spacing δ when omegas is exactly
// ω_0 + k·δ in floating point for every k, and 0 otherwise. Exactness
// matters: the rotation path evaluates e^{iω_k t} for the grid the
// recurrence implies, so it is only taken when that grid IS the
// requested one bit for bit. Grids shorter than 3 gain nothing from
// the recurrence (it would replace two Sincos calls with two Sincos
// calls plus a rotation) and report 0.
func uniformSpacing(omegas []float64) float64 {
	if len(omegas) < 3 {
		return 0
	}
	d := omegas[1] - omegas[0]
	if !(d > 0) {
		return 0
	}
	for k := 2; k < len(omegas); k++ {
		if !numeric.SameBits(omegas[k], omegas[0]+float64(k)*d) {
			return 0
		}
	}
	return d
}

// configHash fingerprints everything that shapes the accumulator
// layout, so RestoreState can reject state from a differently
// configured recorder (FNV-1a over juncs, ω grids, windows, bins).
func configHash(cfg *Config) string {
	const offset, prime = 1469598103934665603, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mixf := func(f float64) { mix(math.Float64bits(f)) }
	for _, jc := range cfg.Juncs {
		mix(uint64(jc.Junc))
		mixf(jc.Window)
		mix(uint64(len(jc.Omegas)))
		for _, w := range jc.Omegas {
			mixf(w)
		}
		mix(uint64(jc.Lags))
		mixf(jc.Bin)
	}
	return fmt.Sprintf("%016x", h)
}

// SetObserver attaches an observability handle (nil disables). Called
// by the solver so window closures surface as metrics/journal events.
func (r *Recorder) SetObserver(o *obs.Observer) {
	if r != nil {
		r.obs = o
	}
}

// Recorded reports whether junction j is being recorded.
func (r *Recorder) Recorded(j int) bool {
	return r != nil && j >= 0 && j < len(r.idx) && r.idx[j] >= 0
}

// Add accumulates one applied tunnel event: dq conventional charge
// (coulombs, signed A->B) crossed junction j at simulated time t. The
// nil and not-recorded fast paths cost one branch each; the recording
// path is allocation-free (gated by the zero-alloc suite).
//
//semsim:hot
func (r *Recorder) Add(j int, t, dq float64) {
	if r == nil {
		return
	}
	k := r.idx[j]
	if k < 0 {
		return
	}
	r.add(int(k), t, dq)
}

//semsim:hot
func (r *Recorder) add(k int, t, dq float64) {
	a := &r.acc[k]
	ts := t - r.origin
	a.events++
	a.qTot += dq
	if a.tau > 0 {
		if w := uint64(ts / a.tau); w > a.win {
			// Close the open window; the (w - win - 1) windows between it
			// and the event's window were empty and only advance the count.
			a.sumQ += a.winQ
			a.sumQ2 += a.winQ * a.winQ
			closed := w - a.win
			a.nWin += closed
			a.win = w
			if r.obs != nil {
				// Guarded so the no-observer path never reads the cold
				// junc field just to build arguments.
				r.obs.NoiseWindow(a.junc, closed, a.winQ, t)
			}
			a.winQ = 0
		}
		a.winQ += dq * (1 / units.E)
	}
	if n := len(a.sumRe); n > 0 {
		if a.domega != 0 {
			// Uniform grid: two Sincos calls seed e^{iω_0 ts} and the
			// rotation step e^{iδ·ts}; each further frequency is one
			// complex multiply. The recurrence drifts by O(n) ulps over
			// the grid — far below the estimator's statistical error —
			// and is identical on every run, so determinism holds.
			s, c := math.Sincos(a.w0 * ts)
			sd, cd := s, c
			if !numeric.SameBits(a.domega, a.w0) {
				// Harmonic grids (ω_k = (k+1)·δ) rotate by the seed
				// phase itself; only offset grids pay a second Sincos.
				sd, cd = math.Sincos(a.domega * ts)
			}
			re, im := a.sumRe[:n], a.sumIm[:n]
			for i := 0; i < n; i++ {
				re[i] += dq * c
				im[i] += dq * s
				s, c = s*cd+c*sd, c*cd-s*sd
			}
		} else {
			for i, w := range a.omegas {
				s, c := math.Sincos(w * ts)
				a.sumRe[i] += dq * c
				a.sumIm[i] += dq * s
			}
		}
	}
	if r.anyBins && a.bin > 0 {
		if b := uint64(ts / a.bin); b > a.curBin {
			a.advanceBins(b)
		}
		a.binQ += dq
	}
	r.obs.NoiseEvent()
}

// advanceBins closes the open autocorrelation bin and any empty bins
// between it and b. A gap longer than the ring is collapsed: the ring
// becomes all zeros in one pass and the skipped bins only advance the
// counter (zero bins contribute nothing to any pair sum), so the cost
// is bounded by the ring length however long the event gap.
func (a *accum) advanceBins(b uint64) {
	a.closeBin(a.binQ)
	a.binQ = 0
	empty := b - a.curBin - 1
	a.curBin = b
	if empty > uint64(a.lags) {
		skip := empty - uint64(a.lags)
		for i := range a.ring {
			a.ring[i] = 0
		}
		a.nBins += skip
		empty = uint64(a.lags)
	}
	for ; empty > 0; empty-- {
		a.closeBin(0)
	}
}

// closeBin folds one finished charge bin into the pair sums and pushes
// it onto the ring.
func (a *accum) closeBin(q float64) {
	if q != 0 {
		a.corr[0] += q * q
		for k := 1; k <= a.lags; k++ {
			if uint64(k) > a.nBins {
				break
			}
			a.corr[k] += q * a.ring[(a.nBins-uint64(k))%uint64(a.lags)]
		}
	}
	a.ring[a.nBins%uint64(a.lags)] = q
	a.nBins++
}

// Reset restarts every accumulator with measurement origin t, keeping
// the configured — or auto-calibrated — window widths. The solver
// calls it from ResetMeasurement at the warm-up/measurement boundary.
func (r *Recorder) Reset(t float64) {
	if r == nil {
		return
	}
	r.origin = t
	for i := range r.acc {
		a := &r.acc[i]
		a.win, a.winQ, a.nWin, a.sumQ, a.sumQ2 = 0, 0, 0, 0, 0
		for j := range a.sumRe {
			a.sumRe[j] = 0
			a.sumIm[j] = 0
		}
		a.qTot, a.events = 0, 0
		for j := range a.ring {
			a.ring[j] = 0
		}
		for j := range a.corr {
			a.corr[j] = 0
		}
		a.curBin, a.binQ, a.nBins = 0, 0, 0
	}
}

// FullReset is Reset plus a rollback of auto-calibrated window widths
// to their configured values, so a solver session Reset between tasks
// is bit-identical to building the recorder fresh.
func (r *Recorder) FullReset(t float64) {
	if r == nil {
		return
	}
	for i := range r.acc {
		r.acc[i].tau = r.acc[i].cfgWindow
	}
	r.Reset(t)
}

// AutoWindow calibrates every Window == 0 junction from the warm-up
// phase: τ = DefaultWindowEvents·elapsed/events, so an average window
// holds about DefaultWindowEvents tunnel events. Junctions with a
// configured window are untouched; with no events (blockaded warm-up)
// auto windows stay disabled. The chosen τ is pure arithmetic on
// deterministic inputs and travels in State, so resumed runs use the
// identical window.
func (r *Recorder) AutoWindow(events uint64, elapsed float64) {
	if r == nil || events == 0 || elapsed <= 0 {
		return
	}
	tau := DefaultWindowEvents * elapsed / float64(events)
	for i := range r.acc {
		if a := &r.acc[i]; a.cfgWindow == 0 && a.tau == 0 {
			a.tau = tau
		}
	}
}

// RunStats is one run's finalized noise measurement on one junction:
// raw cumulants plus the derived spectrum, ready to fold across runs
// (Fold) or to read directly (Fano).
type RunStats struct {
	// T is the elapsed measurement time (seconds) and MeanI = Q/T the
	// mean conventional current (amperes).
	T     float64 `json:"t"`
	MeanI float64 `json:"mean_i"`
	// Events counts recorded tunnel events in the window.
	Events uint64 `json:"events"`
	// Window is the counting-window width τ (0 = windows disabled);
	// Windows the closed-window count and SumQ/SumQ2 the charge
	// cumulants over them, in units of e.
	Window  float64 `json:"window,omitempty"`
	Windows uint64  `json:"windows,omitempty"`
	SumQ    float64 `json:"sum_q,omitempty"`
	SumQ2   float64 `json:"sum_q2,omitempty"`
	// Omegas and S carry the spectral-density estimate (A²/Hz) at each
	// grid frequency.
	Omegas []float64 `json:"omegas,omitempty"`
	S      []float64 `json:"s,omitempty"`
}

// Fano returns the run's Fano factor Var(Q)/|⟨Q⟩| over counting
// windows (charge in units of e) and false when it is undefined
// (fewer than 2 windows, or zero mean transfer).
func (rs *RunStats) Fano() (float64, bool) {
	if rs.Windows < 2 {
		return 0, false
	}
	n := float64(rs.Windows)
	mean := rs.SumQ / n
	if mean == 0 {
		return 0, false
	}
	varQ := rs.SumQ2/n - mean*mean
	return varQ / math.Abs(mean), true
}

// Stats reads the finalized statistics of junction j at measurement
// time t (the caller's current simulated time) without disturbing the
// accumulators; ok is false when j is not recorded. Windows counts
// every complete window elapsed by t — including the currently open
// window's predecessors — so the estimate uses all available data.
func (r *Recorder) Stats(j int, t float64) (RunStats, bool) {
	if r == nil || j < 0 || j >= len(r.idx) || r.idx[j] < 0 {
		return RunStats{}, false
	}
	a := &r.acc[r.idx[j]]
	T := t - r.origin
	rs := RunStats{T: T, Events: a.events, Window: a.tau}
	if T > 0 {
		rs.MeanI = a.qTot / T
	}
	if a.tau > 0 {
		rs.SumQ, rs.SumQ2 = a.sumQ, a.sumQ2
		rs.Windows = a.nWin
		if T > 0 {
			if c := uint64(T / a.tau); c > a.win {
				// The open window and any trailing empties completed too.
				rs.SumQ += a.winQ
				rs.SumQ2 += a.winQ * a.winQ
				rs.Windows += c - a.win
			}
		}
	}
	if len(a.omegas) > 0 && T > 0 {
		rs.Omegas = append([]float64(nil), a.omegas...)
		rs.S = make([]float64, len(a.omegas))
		ibar := a.qTot / T
		for i, w := range a.omegas {
			// Periodogram with the finite-window DC term subtracted:
			// S(ω) = (2/T)|F(ω) − Ī·W(ω)|², W(ω) = ∫₀ᵀ e^{iωt} dt.
			sinT, cosT := math.Sincos(w * T)
			re := a.sumRe[i] - ibar*(sinT/w)
			im := a.sumIm[i] - ibar*((1-cosT)/w)
			rs.S[i] = 2 * (re*re + im*im) / T
		}
	}
	return rs, true
}

// Autocorr returns the binned current-autocorrelation estimate of
// junction j: lag times k·Bin and ⟨I(0)I(kΔ)⟩ pair averages (A²) for
// k = 0..Lags, or ok = false when j records no autocorrelation. Pair
// counts shrink with the lag; lags with no complete pair yet are 0.
func (r *Recorder) Autocorr(j int) (lagT, c []float64, ok bool) {
	if r == nil || j < 0 || j >= len(r.idx) || r.idx[j] < 0 {
		return nil, nil, false
	}
	a := &r.acc[r.idx[j]]
	if a.lags == 0 {
		return nil, nil, false
	}
	lagT = make([]float64, a.lags+1)
	c = make([]float64, a.lags+1)
	for k := 0; k <= a.lags; k++ {
		lagT[k] = float64(k) * a.bin
		if pairs := int64(a.nBins) - int64(k); pairs > 0 {
			c[k] = a.corr[k] / (float64(pairs) * a.bin * a.bin)
		}
	}
	return lagT, c, true
}

// Stats is a folded cross-run noise measurement of one junction: the
// deterministic reduction of per-run RunStats the jobs engine reports
// per operating point.
type Stats struct {
	// Runs counts the folded (non-blockaded) runs.
	Runs int `json:"runs"`
	// MeanI is the run-averaged mean current (amperes).
	MeanI float64 `json:"mean_i"`
	// Window is the run-averaged counting-window width τ and Windows
	// the total closed windows across runs.
	Window  float64 `json:"window,omitempty"`
	Windows uint64  `json:"windows,omitempty"`
	// Fano is the run-averaged Fano factor with its standard error
	// across runs (0 when fewer than 2 runs measured one).
	Fano    float64 `json:"fano,omitempty"`
	FanoErr float64 `json:"fano_err,omitempty"`
	// Omegas, S and SErr carry the run-averaged spectral density and
	// its standard error across runs (A²/Hz).
	Omegas []float64 `json:"omegas,omitempty"`
	S      []float64 `json:"s,omitempty"`
	SErr   []float64 `json:"s_err,omitempty"`
}

// Fold reduces per-run statistics into one cross-run measurement. The
// caller supplies runs in deterministic (run-index) order and Fold
// accumulates in that order, so — like the jobs engine's current fold
// — the result is bit-identical at any worker count or schedule.
// Fano factors and spectra are averaged across runs rather than pooled
// (each run is an independent estimate; averaging gives an unbiased
// mean with a standard error even when auto-calibrated windows differ
// per run), while window counts and event totals sum.
func Fold(runs []RunStats) Stats {
	var st Stats
	var fanos []float64
	var nOmega int
	for i := range runs {
		r := &runs[i]
		st.Runs++
		st.MeanI += r.MeanI
		st.Window += r.Window
		st.Windows += r.Windows
		if f, ok := r.Fano(); ok {
			fanos = append(fanos, f)
		}
		if len(r.S) > 0 {
			if st.S == nil {
				nOmega = len(r.S)
				st.Omegas = append([]float64(nil), r.Omegas...)
				st.S = make([]float64, nOmega)
				st.SErr = make([]float64, nOmega)
			}
			if len(r.S) == nOmega {
				for k, s := range r.S {
					st.S[k] += s
					st.SErr[k] += s * s
				}
			}
		}
	}
	if st.Runs == 0 {
		return st
	}
	n := float64(st.Runs)
	st.MeanI /= n
	st.Window /= n
	st.Fano, st.FanoErr = meanStderr(fanos)
	for k := range st.S {
		mean := st.S[k] / n
		st.S[k] = mean
		if st.Runs > 1 {
			varS := (st.SErr[k] - n*mean*mean) / (n - 1)
			if varS < 0 {
				varS = 0
			}
			st.SErr[k] = math.Sqrt(varS / n)
		} else {
			st.SErr[k] = 0
		}
	}
	return st
}

// meanStderr reduces samples to their mean and standard error.
func meanStderr(xs []float64) (mean, stderr float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / (n - 1) / n)
}
