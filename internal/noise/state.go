package noise

import (
	"errors"
	"fmt"
)

// State is the serializable snapshot of a Recorder, embedded in the
// solver's Checkpoint when noise recording is enabled. It is plain
// data: ConfigHash fingerprints the recorder configuration so a
// snapshot only restores into an identically configured recorder, and
// each JuncState carries one accumulator verbatim — restoring is a
// copy, so a resumed measurement is bit-identical to an uninterrupted
// one.
//
//statecover:root save=json
type State struct {
	ConfigHash string      `json:"config_hash"`
	Origin     float64     `json:"origin"`
	Juncs      []JuncState `json:"juncs"`
}

// JuncState is one junction accumulator's snapshot (see accum for the
// field semantics; charges in units of e for the window cumulants,
// coulombs elsewhere).
type JuncState struct {
	Junc   int       `json:"junc"`
	Tau    float64   `json:"tau"`
	Win    uint64    `json:"win"`
	WinQ   float64   `json:"win_q"`
	NWin   uint64    `json:"n_win"`
	SumQ   float64   `json:"sum_q"`
	SumQ2  float64   `json:"sum_q2"`
	SumRe  []float64 `json:"sum_re,omitempty"`
	SumIm  []float64 `json:"sum_im,omitempty"`
	QTot   float64   `json:"q_tot"`
	Events uint64    `json:"events"`
	CurBin uint64    `json:"cur_bin"`
	BinQ   float64   `json:"bin_q"`
	Ring   []float64 `json:"ring,omitempty"`
	NBins  uint64    `json:"n_bins"`
	Corr   []float64 `json:"corr,omitempty"`
}

// State snapshots the recorder (nil receiver returns nil, matching a
// simulation without noise recording).
func (r *Recorder) State() *State {
	if r == nil {
		return nil
	}
	st := &State{ConfigHash: r.hash, Origin: r.origin, Juncs: make([]JuncState, len(r.acc))}
	for i := range r.acc {
		a := &r.acc[i]
		st.Juncs[i] = JuncState{
			Junc: a.junc, Tau: a.tau,
			Win: a.win, WinQ: a.winQ, NWin: a.nWin, SumQ: a.sumQ, SumQ2: a.sumQ2,
			SumRe: append([]float64(nil), a.sumRe...),
			SumIm: append([]float64(nil), a.sumIm...),
			QTot:  a.qTot, Events: a.events,
			CurBin: a.curBin, BinQ: a.binQ, NBins: a.nBins,
			Ring: append([]float64(nil), a.ring...),
			Corr: append([]float64(nil), a.corr...),
		}
	}
	return st
}

// RestoreState loads a snapshot taken from an identically configured
// recorder, validating the configuration fingerprint and every
// accumulator shape before mutating anything.
func (r *Recorder) RestoreState(st *State) error {
	if r == nil {
		return errors.New("noise: RestoreState on a nil recorder")
	}
	if st == nil {
		return errors.New("noise: nil state")
	}
	if st.ConfigHash != r.hash {
		return fmt.Errorf("noise: state was written by a differently configured recorder (hash %s, this recorder %s): junctions, ω grids, windows and autocorrelation settings must all match", st.ConfigHash, r.hash)
	}
	if len(st.Juncs) != len(r.acc) {
		return fmt.Errorf("noise: state has %d junction accumulators, recorder has %d", len(st.Juncs), len(r.acc))
	}
	for i := range st.Juncs {
		js := &st.Juncs[i]
		a := &r.acc[i]
		if js.Junc != a.junc {
			return fmt.Errorf("noise: state accumulator %d records junction %d, recorder records %d", i, js.Junc, a.junc)
		}
		if len(js.SumRe) != len(a.sumRe) || len(js.SumIm) != len(a.sumIm) {
			return fmt.Errorf("noise: state accumulator %d has %d spectral sums, recorder has %d", i, len(js.SumRe), len(a.sumRe))
		}
		if len(js.Ring) != len(a.ring) || len(js.Corr) != len(a.corr) {
			return fmt.Errorf("noise: state accumulator %d autocorrelation shape mismatch", i)
		}
	}
	r.origin = st.Origin
	for i := range st.Juncs {
		js := &st.Juncs[i]
		a := &r.acc[i]
		a.tau = js.Tau
		a.win, a.winQ, a.nWin = js.Win, js.WinQ, js.NWin
		a.sumQ, a.sumQ2 = js.SumQ, js.SumQ2
		copy(a.sumRe, js.SumRe)
		copy(a.sumIm, js.SumIm)
		a.qTot, a.events = js.QTot, js.Events
		a.curBin, a.binQ, a.nBins = js.CurBin, js.BinQ, js.NBins
		copy(a.ring, js.Ring)
		copy(a.corr, js.Corr)
	}
	return nil
}
