package numeric

import (
	"math"
	"testing"
)

func TestTabulateGridDedupes(t *testing.T) {
	calls := 0
	tab, err := TabulateGrid([]float64{0, 1, 1, 1 + 1e-12, 2, 0.5}, 1e-6, func(x float64) float64 {
		calls++
		return x * x
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0, 0.5, 1, 2 survive; the duplicate and the 1e-12 neighbour do not.
	if calls != 4 {
		t.Fatalf("evaluated %d knots, want 4", calls)
	}
	if got := tab.Eval(2); got != 4 {
		t.Fatalf("Eval(2) = %g, want 4", got)
	}
}

func TestNewKernelMeetsTolerance(t *testing.T) {
	k, err := NewKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if k.MaxRelError() > 1e-7 {
		t.Fatalf("measured error bound %g > requested 1e-7", k.MaxRelError())
	}
	// Spot-check at points off the refinement's own sampling lattice.
	for _, x := range []float64{-59.9, -17.3, -0.001, 0.37, 5.551, 41.07} {
		exact := XOverExpm1(x)
		got := k.Eval(x)
		if rel := math.Abs(got-exact) / math.Abs(exact); rel > 1e-6 {
			t.Fatalf("x=%g: kernel %g vs exact %g, rel %g", x, got, exact, rel)
		}
	}
}

func TestNewKernelExactOutsideRange(t *testing.T) {
	k, err := NewKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1e3, -60.0001, 60.0001, 700} {
		if got, want := k.Eval(x), XOverExpm1(x); got != want {
			t.Fatalf("x=%g outside band: Eval %g != exact %g", x, got, want)
		}
	}
	lo, hi := k.Range()
	if lo != -60 || hi != 60 {
		t.Fatalf("Range() = [%g, %g], want [-60, 60]", lo, hi)
	}
}

func TestNewKernelRejectsEmptyRange(t *testing.T) {
	if _, err := NewKernel(XOverExpm1, 1, 1, 1e-7); err == nil {
		t.Fatal("expected error for hi == lo")
	}
}
