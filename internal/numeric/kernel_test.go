package numeric

import (
	"math"
	"testing"
)

func TestTabulateGridDedupes(t *testing.T) {
	calls := 0
	tab, err := TabulateGrid([]float64{0, 1, 1, 1 + 1e-12, 2, 0.5}, 1e-6, func(x float64) float64 {
		calls++
		return x * x
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0, 0.5, 1, 2 survive; the duplicate and the 1e-12 neighbour do not.
	if calls != 4 {
		t.Fatalf("evaluated %d knots, want 4", calls)
	}
	if got := tab.Eval(2); got != 4 {
		t.Fatalf("Eval(2) = %g, want 4", got)
	}
}

func TestNewKernelMeetsTolerance(t *testing.T) {
	k, err := NewKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if k.MaxRelError() > 1e-7 {
		t.Fatalf("measured error bound %g > requested 1e-7", k.MaxRelError())
	}
	// Spot-check at points off the refinement's own sampling lattice.
	for _, x := range []float64{-59.9, -17.3, -0.001, 0.37, 5.551, 41.07} {
		exact := XOverExpm1(x)
		got := k.Eval(x)
		if rel := math.Abs(got-exact) / math.Abs(exact); rel > 1e-6 {
			t.Fatalf("x=%g: kernel %g vs exact %g, rel %g", x, got, exact, rel)
		}
	}
}

func TestNewKernelExactOutsideRange(t *testing.T) {
	k, err := NewKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1e3, -60.0001, 60.0001, 700} {
		if got, want := k.Eval(x), XOverExpm1(x); got != want {
			t.Fatalf("x=%g outside band: Eval %g != exact %g", x, got, want)
		}
	}
	lo, hi := k.Range()
	if lo != -60 || hi != 60 {
		t.Fatalf("Range() = [%g, %g], want [-60, 60]", lo, hi)
	}
}

func TestNewKernelRejectsEmptyRange(t *testing.T) {
	if _, err := NewKernel(XOverExpm1, 1, 1, 1e-7); err == nil {
		t.Fatal("expected error for hi == lo")
	}
}

func TestFlatKernelMeetsTolerance(t *testing.T) {
	k, err := NewFlatKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if k.MaxRelError() > 1e-7 {
		t.Fatalf("measured error bound %g > requested 1e-7", k.MaxRelError())
	}
	// Spot-check at points off the refinement's own sampling lattice.
	for _, x := range []float64{-59.9, -17.3, -0.001, 0.37, 5.551, 41.07} {
		exact := XOverExpm1(x)
		got := k.Eval(x)
		if rel := math.Abs(got-exact) / math.Abs(exact); rel > 1e-6 {
			t.Fatalf("x=%g: flat kernel %g vs exact %g, rel %g", x, got, exact, rel)
		}
	}
}

func TestFlatKernelExactOutsideRange(t *testing.T) {
	k, err := NewFlatKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1e3, -60.0001, 60.0001, 700} {
		if got, want := k.Eval(x), XOverExpm1(x); got != want {
			t.Fatalf("x=%g outside band: Eval %g != exact %g", x, got, want)
		}
	}
	// NaN fails the band test and flows to the exact function.
	if got := k.Eval(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Eval(NaN) = %g, want NaN", got)
	}
	lo, hi := k.Range()
	if lo != -60 || hi != 60 {
		t.Fatalf("Range() = [%g, %g], want [-60, 60]", lo, hi)
	}
	if k.Panels() < 2 {
		t.Fatalf("Panels() = %d, want a refined grid", k.Panels())
	}
}

func TestFlatKernelWithTails(t *testing.T) {
	k, err := NewFlatKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	// Ohmic asymptote below the band, truncation to zero above it — the
	// same tails the orthodox kernel installs.
	if got := k.WithTails([4]float64{0, -1, 0, 0}, [4]float64{}); got != k {
		t.Fatal("WithTails must return its receiver for chaining")
	}
	for _, x := range []float64{-1e3, -80, -60.0001} {
		if got := k.Eval(x); got != -x {
			t.Fatalf("x=%g below band: Eval %g != ohmic tail %g", x, got, -x)
		}
	}
	for _, x := range []float64{60, 60.0001, 80, 700} {
		if got := k.Eval(x); got != 0 {
			t.Fatalf("x=%g above band: Eval %g != truncated 0", x, got)
		}
	}
	// In-band evaluation is untouched by tail installation.
	if got, want := k.Eval(1.5), XOverExpm1(1.5); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("in-band Eval %g deviates from %g after WithTails", got, want)
	}
	// NaN still flows to the exact function.
	if got := k.Eval(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Eval(NaN) = %g, want NaN", got)
	}
}

func TestFlatKernelEvalPairMatchesEval(t *testing.T) {
	k, err := NewFlatKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	k.WithTails([4]float64{0, -1, 0, 0}, [4]float64{})
	xs := []float64{-700, -80, -60.0001, -60, -12.3, 0, 1e-9, 37.7, 59.9999, 60, 80, 700}
	for _, x1 := range xs {
		for _, x2 := range xs {
			y1, y2 := k.EvalPair(x1, x2)
			if w1, w2 := k.Eval(x1), k.Eval(x2); y1 != w1 || y2 != w2 {
				t.Fatalf("EvalPair(%g, %g) = (%g, %g), want (%g, %g)", x1, x2, y1, y2, w1, w2)
			}
		}
	}
	// The exact-function fallback (NaN) flows through EvalPair too.
	y1, y2 := k.EvalPair(math.NaN(), 1.0)
	if !math.IsNaN(y1) || y2 != k.Eval(1.0) {
		t.Fatalf("EvalPair(NaN, 1) = (%g, %g), want (NaN, %g)", y1, y2, k.Eval(1.0))
	}
}

func TestFlatKernelContinuousAtPanelBoundaries(t *testing.T) {
	k, err := NewFlatKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluating just left and just right of an interior knot must agree
	// to interpolation accuracy: the Hermite-to-Horner conversion keeps
	// C^1 continuity up to rounding.
	n := k.Panels()
	h := 120.0 / float64(n)
	for _, i := range []int{1, n / 3, n / 2, n - 1} {
		knot := -60 + float64(i)*h
		l, r := k.Eval(math.Nextafter(knot, -100)), k.Eval(math.Nextafter(knot, 100))
		scale := math.Abs(l) + math.Abs(r) + 1e-300
		if math.Abs(l-r)/scale > 1e-9 {
			t.Fatalf("discontinuity at knot %g: left %g right %g", knot, l, r)
		}
	}
}

func TestFlatKernelRejectsEmptyRange(t *testing.T) {
	if _, err := NewFlatKernel(XOverExpm1, 1, 1, 1e-7); err == nil {
		t.Fatal("expected error for hi == lo")
	}
}

func BenchmarkKernelEval(b *testing.B) {
	k, err := NewKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		b.Fatal(err)
	}
	x, sink := -59.0, 0.0
	for i := 0; i < b.N; i++ {
		sink += k.Eval(x)
		x += 0.1
		if x > 59 {
			x = -59
		}
	}
	_ = sink
}

func BenchmarkFlatKernelEval(b *testing.B) {
	k, err := NewFlatKernel(XOverExpm1, -60, 60, 1e-7)
	if err != nil {
		b.Fatal(err)
	}
	x, sink := -59.0, 0.0
	for i := 0; i < b.N; i++ {
		sink += k.Eval(x)
		x += 0.1
		if x > 59 {
			x = -59
		}
	}
	_ = sink
}
