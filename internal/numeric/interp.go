package numeric

import (
	"fmt"
	"math"
	"sort"
)

// Table is a monotone piecewise-cubic (PCHIP, Fritsch–Carlson)
// interpolation table over strictly increasing x. It is used to cache
// expensive physics functions — most importantly the quasi-particle
// I–V integral — so the Monte Carlo inner loop never integrates.
type Table struct {
	x, y, d []float64 // knots, values, knot derivatives
}

// NewTable builds a PCHIP table. xs must be strictly increasing and at
// least 2 points long.
func NewTable(xs, ys []float64) (*Table, error) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return nil, fmt.Errorf("numeric: table needs >= 2 matched points, got %d/%d", len(xs), len(ys))
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("numeric: table x not strictly increasing at %d", i)
		}
	}
	t := &Table{
		x: append([]float64(nil), xs...),
		y: append([]float64(nil), ys...),
		d: make([]float64, n),
	}
	// Fritsch–Carlson monotone derivative estimates.
	h := make([]float64, n-1)
	delta := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
		delta[i] = (ys[i+1] - ys[i]) / h[i]
	}
	if n == 2 {
		t.d[0], t.d[1] = delta[0], delta[0]
		return t, nil
	}
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			t.d[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		t.d[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	t.d[0] = endpointSlope(h[0], h[1], delta[0], delta[1])
	t.d[n-1] = endpointSlope(h[n-2], h[n-3], delta[n-2], delta[n-3])
	return t, nil
}

func endpointSlope(h0, h1, d0, d1 float64) float64 {
	d := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if d*d0 <= 0 {
		return 0
	}
	if d0*d1 <= 0 && math.Abs(d) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return d
}

// Eval interpolates at x, clamping to the table's range (constant
// extrapolation would hide bugs; linear extrapolation from the edge
// derivative is used instead so sweeps slightly past the table behave
// sanely).
func (t *Table) Eval(x float64) float64 {
	n := len(t.x)
	if x <= t.x[0] {
		return t.y[0] + t.d[0]*(x-t.x[0])
	}
	if x >= t.x[n-1] {
		return t.y[n-1] + t.d[n-1]*(x-t.x[n-1])
	}
	i := sort.SearchFloat64s(t.x, x) - 1
	if i < 0 {
		i = 0
	}
	h := t.x[i+1] - t.x[i]
	s := (x - t.x[i]) / h
	y0, y1 := t.y[i], t.y[i+1]
	d0, d1 := t.d[i]*h, t.d[i+1]*h
	// Cubic Hermite basis.
	s2 := s * s
	s3 := s2 * s
	return y0*(2*s3-3*s2+1) + d0*(s3-2*s2+s) + y1*(-2*s3+3*s2) + d1*(s3-s2)
}

// Min and Max report the table's x range.
func (t *Table) Min() float64 { return t.x[0] }
func (t *Table) Max() float64 { return t.x[len(t.x)-1] }

// Linspace returns n evenly spaced points from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}
