package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntegratePolynomial(t *testing.T) {
	// Simpson is exact for cubics; the adaptive wrapper should nail x^3.
	got := Integrate(func(x float64) float64 { return x * x * x }, 0, 2, 1e-12)
	if math.Abs(got-4) > 1e-10 {
		t.Fatalf("int x^3 over [0,2] = %g, want 4", got)
	}
}

func TestIntegrateTranscendental(t *testing.T) {
	got := Integrate(math.Sin, 0, math.Pi, 1e-10)
	if math.Abs(got-2) > 1e-8 {
		t.Fatalf("int sin over [0,pi] = %g, want 2", got)
	}
	got = Integrate(func(x float64) float64 { return math.Exp(-x * x) }, -6, 6, 1e-12)
	if math.Abs(got-math.Sqrt(math.Pi)) > 1e-8 {
		t.Fatalf("gaussian integral = %g, want sqrt(pi)", got)
	}
}

func TestIntegrateReversedLimits(t *testing.T) {
	a := Integrate(math.Cos, 0, 1, 1e-10)
	b := Integrate(math.Cos, 1, 0, 1e-10)
	if math.Abs(a+b) > 1e-12 {
		t.Fatalf("reversed limits not antisymmetric: %g vs %g", a, b)
	}
}

func TestEdgeSingularIntegral(t *testing.T) {
	// int_0^1 1/sqrt(x) dx = 2
	f := func(x float64) float64 { return 1 / math.Sqrt(x) }
	got := IntegrateEdgeSingular(f, 0, 1, true, 1e-10)
	if math.Abs(got-2) > 1e-8 {
		t.Fatalf("1/sqrt(x): got %g want 2", got)
	}
	// int_0^1 1/sqrt(1-x) dx = 2
	g := func(x float64) float64 { return 1 / math.Sqrt(1-x) }
	got = IntegrateEdgeSingular(g, 0, 1, false, 1e-10)
	if math.Abs(got-2) > 1e-8 {
		t.Fatalf("1/sqrt(1-x): got %g want 2", got)
	}
}

func TestBothEdgesSingular(t *testing.T) {
	// int_-1^1 1/sqrt(1-x^2) dx = pi — the BCS-like case.
	f := func(x float64) float64 { return 1 / math.Sqrt(1-x*x) }
	got := IntegrateBothEdgesSingular(f, -1, 1, 1e-10)
	if math.Abs(got-math.Pi) > 1e-7 {
		t.Fatalf("arcsine integral: got %g want pi", got)
	}
}

func TestBCSLikeEdge(t *testing.T) {
	// int_1^2 x/sqrt(x^2-1) dx = sqrt(3): exactly the DOS shape at a gap edge.
	f := func(x float64) float64 { return x / math.Sqrt(x*x-1) }
	got := IntegrateEdgeSingular(f, 1, 2, true, 1e-10)
	if math.Abs(got-math.Sqrt(3)) > 1e-8 {
		t.Fatalf("gap-edge integral: got %g want sqrt(3)=%g", got, math.Sqrt(3))
	}
}

func TestFermiLimits(t *testing.T) {
	kT := 1.0
	if f := Fermi(0, kT); math.Abs(f-0.5) > 1e-15 {
		t.Fatalf("Fermi(0) = %g, want 0.5", f)
	}
	if f := Fermi(1000, kT); f != 0 {
		t.Fatalf("Fermi(+inf) = %g, want 0", f)
	}
	if f := Fermi(-1000, kT); f != 1 {
		t.Fatalf("Fermi(-inf) = %g, want 1", f)
	}
	// T = 0 step function.
	if Fermi(-1, 0) != 1 || Fermi(1, 0) != 0 || Fermi(0, 0) != 0.5 {
		t.Fatal("zero-temperature Fermi limit wrong")
	}
}

func TestFermiSymmetry(t *testing.T) {
	// f(e) + f(-e) = 1 (particle-hole symmetry).
	f := func(e float64) bool {
		e = math.Mod(e, 50)
		s := Fermi(e, 1.3) + Fermi(-e, 1.3)
		return math.Abs(s-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestXOverExpm1(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 1},
		{1e-12, 1},
		{-1e-12, 1},
		{1, 1 / (math.E - 1)},
		{-800, 800},
		{800, 0},
	}
	for _, c := range cases {
		got := XOverExpm1(c.x)
		if math.Abs(got-c.want) > 1e-9*(1+math.Abs(c.want)) {
			t.Fatalf("XOverExpm1(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestXOverExpm1Continuity(t *testing.T) {
	// Across the series/exact switch at |x|=1e-8 the value must be smooth.
	for _, x := range []float64{0.99e-8, 1.01e-8} {
		want := 1 - x/2 // series value; exact to O(x^2) ~ 1e-17 here
		if math.Abs(XOverExpm1(x)-want) > 1e-12 {
			t.Fatalf("XOverExpm1(%g) = %.15g, want %.15g", x, XOverExpm1(x), want)
		}
	}
}

func TestBoseFactorSmallX(t *testing.T) {
	// Compare series branch against exact for a moderately small x.
	x := 1e-6
	exact := 1 / math.Expm1(x)
	series := 1/x - 0.5 + x/12
	if math.Abs(exact-series)/math.Abs(exact) > 1e-12 {
		t.Fatalf("series mismatch: %g vs %g", series, exact)
	}
	if BoseFactor(800) != 0 || BoseFactor(-800) != -1 {
		t.Fatal("BoseFactor asymptotics wrong")
	}
}

func TestBrentRoots(t *testing.T) {
	got := Brent(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-14)
	if math.Abs(got-math.Sqrt2) > 1e-10 {
		t.Fatalf("sqrt(2) root: got %g", got)
	}
	got = Brent(math.Cos, 1, 2, 1e-14)
	if math.Abs(got-math.Pi/2) > 1e-10 {
		t.Fatalf("cos root: got %g want pi/2", got)
	}
}

func TestBrentPanicsWithoutBracket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Brent without sign change did not panic")
		}
	}()
	Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12)
}

func TestTableReproducesKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 5}
	ys := []float64{1, 2, 0, -1, 4}
	tab, err := NewTable(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := tab.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Fatalf("knot %d: got %g want %g", i, got, ys[i])
		}
	}
}

func TestTableMonotonePreserving(t *testing.T) {
	// PCHIP must not overshoot on monotone data.
	xs := Linspace(0, 10, 11)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Tanh(x - 5)
	}
	tab, err := NewTable(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for _, x := range Linspace(0, 10, 1001) {
		v := tab.Eval(x)
		if v < prev-1e-12 {
			t.Fatalf("interpolant not monotone at x=%g: %g < %g", x, v, prev)
		}
		prev = v
	}
}

func TestTableAccuracy(t *testing.T) {
	// PCHIP drops to second order near extrema (its derivative limiter
	// clamps to zero there), so the tolerance reflects O(h^2) at x=0.
	xs := Linspace(-3, 3, 241)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(-x * x)
	}
	tab, err := NewTable(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range Linspace(-3, 3, 500) {
		want := math.Exp(-x * x)
		if math.Abs(tab.Eval(x)-want) > 2e-4 {
			t.Fatalf("interp error at %g: got %g want %g", x, tab.Eval(x), want)
		}
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single-point table accepted")
	}
	if _, err := NewTable([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing x accepted")
	}
	if _, err := NewTable([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestTableTwoPoints(t *testing.T) {
	tab, err := NewTable([]float64{0, 1}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Eval(0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("two-point table should be linear: got %g", got)
	}
	// Linear extrapolation beyond the edges.
	if got := tab.Eval(2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("extrapolation: got %g want 4", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace[%d] = %g want %g", i, xs[i], want[i])
		}
	}
}

func BenchmarkTableEval(b *testing.B) {
	xs := Linspace(-1, 1, 400)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(3 * x)
	}
	tab, _ := NewTable(xs, ys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Eval(float64(i%1000)/500 - 1)
	}
}
