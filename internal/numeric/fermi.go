package numeric

import "math"

// Fermi returns the Fermi-Dirac occupation 1/(exp(e/kT) + 1) with safe
// asymptotics for |e| >> kT and the T -> 0 step-function limit.
func Fermi(e, kT float64) float64 {
	if kT <= 0 {
		switch {
		case e < 0:
			return 1
		case e > 0:
			return 0
		default:
			return 0.5
		}
	}
	x := e / kT
	if x > 700 {
		return 0
	}
	if x < -700 {
		return 1
	}
	return 1 / (math.Exp(x) + 1)
}

// BoseFactor returns 1/(exp(x) - 1) computed stably for small |x|,
// where it diverges like 1/x - 1/2. The orthodox tunneling rate
// Gamma = dW / (e^2 R (exp(dW/kT) - 1)) uses dW * BoseFactor(dW/kT).
func BoseFactor(x float64) float64 {
	if x > 700 {
		return 0
	}
	if x < -700 {
		return -1
	}
	if math.Abs(x) < 1e-8 {
		// 1/(e^x - 1) = 1/x - 1/2 + x/12 + O(x^3)
		return 1/x - 0.5 + x/12
	}
	return 1 / math.Expm1(x)
}

// XOverExpm1 returns x/(exp(x) - 1), the thermally-smeared factor in
// the orthodox rate, with the correct limits: ->1 as x->0, ->-x as
// x->-inf, ->0 as x->+inf.
func XOverExpm1(x float64) float64 {
	if math.Abs(x) < 1e-8 {
		return 1 - x/2 + x*x/12
	}
	if x > 700 {
		return 0
	}
	if x < -700 {
		return -x
	}
	return x / math.Expm1(x)
}
