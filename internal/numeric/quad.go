// Package numeric is the simulator's numerical toolbox: adaptive
// quadrature (including square-root-singularity handling for the BCS
// density of states), Fermi-Dirac functions with safe asymptotics,
// monotone interpolation tables, and Brent root finding.
package numeric

import (
	"math"
)

// Integrate computes the integral of f over [a, b] with adaptive
// Simpson quadrature to the given absolute tolerance. The integrand
// must be finite on the closed interval.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	if SameBits(a, b) {
		return 0
	}
	if b < a {
		return -Integrate(f, b, a, tol)
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// IntegrateEdgeSingular integrates f over [a, b] when f has an
// integrable inverse-square-root singularity at one endpoint, i.e.
// f(x) ~ g(x)/sqrt(|x - s|) near the singular endpoint s with g smooth.
// The substitution x = s ± t^2 regularizes it: the Jacobian 2t cancels
// the 1/sqrt(t^2) = 1/t blow-up.
//
// atSingular selects which endpoint is singular: true for a, false
// for b. f is never evaluated exactly at the singular endpoint.
func IntegrateEdgeSingular(f func(float64) float64, a, b float64, atSingularA bool, tol float64) float64 {
	if b <= a {
		return 0
	}
	w := b - a
	if atSingularA {
		// x = a + t^2, t in (0, sqrt(w)]
		g := func(t float64) float64 { return 2 * t * f(a+t*t) }
		return Integrate(g, 0, math.Sqrt(w), tol)
	}
	// x = b - t^2, t in (0, sqrt(w)]
	g := func(t float64) float64 { return 2 * t * f(b-t*t) }
	return Integrate(g, 0, math.Sqrt(w), tol)
}

// IntegrateBothEdgesSingular integrates f over [a, b] when f has
// integrable inverse-square-root singularities at both endpoints,
// by splitting at the midpoint.
func IntegrateBothEdgesSingular(f func(float64) float64, a, b, tol float64) float64 {
	if b <= a {
		return 0
	}
	m := 0.5 * (a + b)
	return IntegrateEdgeSingular(f, a, m, true, tol/2) +
		IntegrateEdgeSingular(f, m, b, false, tol/2)
}

// Brent finds a root of f in [a, b] where f(a) and f(b) must bracket a
// sign change, to the given x tolerance. It panics if the bracket is
// invalid, which indicates a programming error in the caller.
func Brent(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a
	}
	if fb == 0 {
		return b
	}
	if fa*fb > 0 {
		panic("numeric: Brent bracket does not contain a sign change")
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		const eps = 2.220446049250313e-16 // machine epsilon for float64
		tol1 := 2*eps*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if SameBits(a, c) {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b
}
