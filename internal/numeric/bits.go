package numeric

import "math"

// SameBits reports whether a and b are the same IEEE-754 value,
// bit for bit. It is the project's sanctioned spelling of float
// equality (the floateq analyzer flags raw == / != on floats): use it
// where two floats are equal only if one was copied or identically
// recomputed from the other — change detection, flat-segment tests,
// sentinel propagation — and a tolerance where values are merely close.
//
// Unlike ==, SameBits distinguishes +0 from -0 and reports NaN equal to
// an identical NaN, which is exactly the "was this value propagated
// unchanged" question such call sites are asking.
func SameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
