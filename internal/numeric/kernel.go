package numeric

import (
	"fmt"
	"math"
	"sort"
)

// TabulateGrid builds a PCHIP table of f over the given grid points:
// the grid is sorted and deduplicated with a separation floor minSep
// (so the interpolant stays well conditioned), then f is evaluated at
// every surviving knot. It is the shared machinery behind the physics
// caches — the quasi-particle I-V table and the tabulated rate kernels
// all feed their grids through here.
func TabulateGrid(grid []float64, minSep float64, f func(float64) float64) (*Table, error) {
	if len(grid) < 2 {
		return nil, fmt.Errorf("numeric: TabulateGrid needs >= 2 grid points, got %d", len(grid))
	}
	xs := append([]float64(nil), grid...)
	sort.Float64s(xs)
	kept := xs[:1]
	for _, g := range xs[1:] {
		if g-kept[len(kept)-1] > minSep {
			kept = append(kept, g)
		}
	}
	ys := make([]float64, len(kept))
	for i, x := range kept {
		ys[i] = f(x)
	}
	return NewTable(kept, ys)
}

// Kernel is an error-bounded tabulation of a smooth scalar function:
// inside [lo, hi] it evaluates by PCHIP interpolation, outside it falls
// back to the exact function, so it is accurate everywhere and fast on
// the hot band. NewKernel refines the grid until a sampled relative
// error bound is met, so the accuracy guarantee is measured rather than
// assumed.
type Kernel struct {
	f      func(float64) float64
	tab    *Table
	lo, hi float64
	relErr float64
}

// NewKernel tabulates f on [lo, hi], doubling the grid density until
// the relative error — sampled at three interior points of every panel
// — is at most relTol, or the point budget (2^17 knots) is exhausted.
// The achieved bound is reported by MaxRelError; callers that need a
// hard guarantee should check it. f should be smooth and should not
// cross zero inside [lo, hi] (relative error is ill-defined at zeros).
func NewKernel(f func(float64) float64, lo, hi, relTol float64) (*Kernel, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("numeric: NewKernel needs hi > lo, got [%g, %g]", lo, hi)
	}
	const maxPts = 1 << 17
	var best *Table
	bestErr := math.Inf(1)
	for n := 1025; ; n = 2*(n-1) + 1 {
		tab, err := TabulateGrid(Linspace(lo, hi, n), 0, f)
		if err != nil {
			return nil, err
		}
		e := maxRelError(tab, f, lo, hi, n)
		if e < bestErr {
			best, bestErr = tab, e
		}
		if bestErr <= relTol || 2*(n-1)+1 > maxPts {
			break
		}
	}
	return &Kernel{f: f, tab: best, lo: lo, hi: hi, relErr: bestErr}, nil
}

// maxRelError samples the interpolation error of tab against f at three
// interior points of each of the n-1 uniform panels on [lo, hi].
func maxRelError(tab *Table, f func(float64) float64, lo, hi float64, n int) float64 {
	h := (hi - lo) / float64(n-1)
	worst := 0.0
	for i := 0; i < n-1; i++ {
		left := lo + float64(i)*h
		for _, frac := range [3]float64{0.25, 0.5, 0.75} {
			x := left + frac*h
			exact := f(x)
			got := tab.Eval(x)
			var rel float64
			if exact != 0 {
				rel = math.Abs(got-exact) / math.Abs(exact)
			} else {
				rel = math.Abs(got)
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// Eval interpolates inside the tabulated range and evaluates f exactly
// outside it.
func (k *Kernel) Eval(x float64) float64 {
	if x < k.lo || x > k.hi {
		return k.f(x)
	}
	return k.tab.Eval(x)
}

// MaxRelError reports the measured relative-error bound of the
// tabulated band (outside it, evaluation is exact).
func (k *Kernel) MaxRelError() float64 { return k.relErr }

// Range reports the tabulated interval.
func (k *Kernel) Range() (lo, hi float64) { return k.lo, k.hi }
