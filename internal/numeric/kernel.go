package numeric

import (
	"fmt"
	"math"
	"sort"
)

// TabulateGrid builds a PCHIP table of f over the given grid points:
// the grid is sorted and deduplicated with a separation floor minSep
// (so the interpolant stays well conditioned), then f is evaluated at
// every surviving knot. It is the shared machinery behind the physics
// caches — the quasi-particle I-V table and the tabulated rate kernels
// all feed their grids through here.
func TabulateGrid(grid []float64, minSep float64, f func(float64) float64) (*Table, error) {
	if len(grid) < 2 {
		return nil, fmt.Errorf("numeric: TabulateGrid needs >= 2 grid points, got %d", len(grid))
	}
	xs := append([]float64(nil), grid...)
	sort.Float64s(xs)
	kept := xs[:1]
	for _, g := range xs[1:] {
		if g-kept[len(kept)-1] > minSep {
			kept = append(kept, g)
		}
	}
	ys := make([]float64, len(kept))
	for i, x := range kept {
		ys[i] = f(x)
	}
	return NewTable(kept, ys)
}

// Kernel is an error-bounded tabulation of a smooth scalar function:
// inside [lo, hi] it evaluates by PCHIP interpolation, outside it falls
// back to the exact function, so it is accurate everywhere and fast on
// the hot band. NewKernel refines the grid until a sampled relative
// error bound is met, so the accuracy guarantee is measured rather than
// assumed.
type Kernel struct {
	f      func(float64) float64
	tab    *Table
	lo, hi float64
	relErr float64
}

// NewKernel tabulates f on [lo, hi], doubling the grid density until
// the relative error — sampled at three interior points of every panel
// — is at most relTol, or the point budget (2^17 knots) is exhausted.
// The achieved bound is reported by MaxRelError; callers that need a
// hard guarantee should check it. f should be smooth and should not
// cross zero inside [lo, hi] (relative error is ill-defined at zeros).
func NewKernel(f func(float64) float64, lo, hi, relTol float64) (*Kernel, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("numeric: NewKernel needs hi > lo, got [%g, %g]", lo, hi)
	}
	const maxPts = 1 << 17
	var best *Table
	bestErr := math.Inf(1)
	for n := 1025; ; n = 2*(n-1) + 1 {
		tab, err := TabulateGrid(Linspace(lo, hi, n), 0, f)
		if err != nil {
			return nil, err
		}
		e := maxRelError(tab, f, lo, hi, n)
		if e < bestErr {
			best, bestErr = tab, e
		}
		if bestErr <= relTol || 2*(n-1)+1 > maxPts {
			break
		}
	}
	return &Kernel{f: f, tab: best, lo: lo, hi: hi, relErr: bestErr}, nil
}

// maxRelError samples the interpolation error of tab against f at three
// interior points of each of the n-1 uniform panels on [lo, hi].
func maxRelError(tab *Table, f func(float64) float64, lo, hi float64, n int) float64 {
	h := (hi - lo) / float64(n-1)
	worst := 0.0
	for i := 0; i < n-1; i++ {
		left := lo + float64(i)*h
		for _, frac := range [3]float64{0.25, 0.5, 0.75} {
			x := left + frac*h
			exact := f(x)
			got := tab.Eval(x)
			var rel float64
			if exact != 0 {
				rel = math.Abs(got-exact) / math.Abs(exact)
			} else {
				rel = math.Abs(got)
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// Eval interpolates inside the tabulated range and evaluates f exactly
// outside it.
func (k *Kernel) Eval(x float64) float64 {
	if x < k.lo || x > k.hi {
		return k.f(x)
	}
	return k.tab.Eval(x)
}

// MaxRelError reports the measured relative-error bound of the
// tabulated band (outside it, evaluation is exact).
func (k *Kernel) MaxRelError() float64 { return k.relErr }

// Range reports the tabulated interval.
func (k *Kernel) Range() (lo, hi float64) { return k.lo, k.hi }

// FlatKernel is the constant-time counterpart of Kernel, built for the
// Monte Carlo inner loop: the grid is uniform, so locating the panel
// for an argument is one multiply and a float-to-int conversion instead
// of a binary search, and each panel's monotone cubic is stored as four
// contiguous polynomial coefficients so an evaluation touches a single
// cache line. Outside [lo, hi] — and for NaN arguments — it falls back
// to the exact function, so like Kernel it is accurate everywhere and
// fast on the hot band. The error bound is measured on FlatKernel's own
// evaluation path (panel location and Horner form included), not
// inherited from the PCHIP table it was derived from.
type FlatKernel struct {
	f      func(float64) float64
	lo, hi float64
	invH   float64 // panels per unit of x
	fn     float64 // float64(number of panels)
	// coef holds the per-panel cubic in the local coordinate
	// s = (x - x_i)/h: panel i occupies coef[4i:4i+4] as
	// c0 + s*(c1 + s*(c2 + s*c3)).
	coef   []float64
	relErr float64
	// Optional asymptotic tails (WithTails): cubics in the absolute
	// coordinate x evaluated below lo / at-or-above hi instead of
	// calling f. Installed when the caller knows closed-form asymptotic
	// expansions, so out-of-band arguments stay on the multiply-add
	// path instead of paying f's transcendental calls.
	hasTails       bool
	loTail, hiTail [4]float64
}

// NewFlatKernel tabulates f on a uniform grid over [lo, hi], doubling
// the panel count until the relative error — sampled at three interior
// points of every panel through the flat evaluation path itself — is at
// most relTol, or the point budget (2^17 knots) is exhausted. The
// achieved bound is reported by MaxRelError; callers that need a hard
// guarantee should check it. f should be smooth and should not cross
// zero inside [lo, hi].
func NewFlatKernel(f func(float64) float64, lo, hi, relTol float64) (*FlatKernel, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("numeric: NewFlatKernel needs hi > lo, got [%g, %g]", lo, hi)
	}
	const maxPts = 1 << 17
	var best *FlatKernel
	bestErr := math.Inf(1)
	for n := 1025; ; n = 2*(n-1) + 1 {
		tab, err := TabulateGrid(Linspace(lo, hi, n), 0, f)
		if err != nil {
			return nil, err
		}
		k := flattenTable(f, tab, lo, hi)
		e := k.measureRelError(n)
		if e < bestErr {
			best, bestErr = k, e
		}
		if bestErr <= relTol || 2*(n-1)+1 > maxPts {
			break
		}
	}
	best.relErr = bestErr
	return best, nil
}

// flattenTable converts a PCHIP table over a uniform grid into per-panel
// Horner coefficients. With knot values y0, y1 and scaled derivatives
// d0 = d[i]*h, d1 = d[i+1]*h, the Hermite cubic in s is
// c0 = y0, c1 = d0, c2 = 3(y1-y0) - 2 d0 - d1, c3 = 2(y0-y1) + d0 + d1.
func flattenTable(f func(float64) float64, tab *Table, lo, hi float64) *FlatKernel {
	n := len(tab.x)
	panels := n - 1
	h := (hi - lo) / float64(panels)
	k := &FlatKernel{
		f: f, lo: lo, hi: hi,
		invH: float64(panels) / (hi - lo),
		fn:   float64(panels),
		coef: make([]float64, 4*panels),
	}
	for i := 0; i < panels; i++ {
		y0, y1 := tab.y[i], tab.y[i+1]
		d0, d1 := tab.d[i]*h, tab.d[i+1]*h
		k.coef[4*i+0] = y0
		k.coef[4*i+1] = d0
		k.coef[4*i+2] = 3*(y1-y0) - 2*d0 - d1
		k.coef[4*i+3] = 2*(y0-y1) + d0 + d1
	}
	return k
}

// measureRelError samples the flat evaluation against f at three
// interior points of each panel (the same sampling protocol as Kernel's
// refinement loop).
func (k *FlatKernel) measureRelError(n int) float64 {
	h := (k.hi - k.lo) / float64(n-1)
	worst := 0.0
	for i := 0; i < n-1; i++ {
		left := k.lo + float64(i)*h
		for _, frac := range [3]float64{0.25, 0.5, 0.75} {
			x := left + frac*h
			exact := k.f(x)
			got := k.Eval(x)
			var rel float64
			if exact != 0 {
				rel = math.Abs(got-exact) / math.Abs(exact)
			} else {
				rel = math.Abs(got)
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// WithTails installs asymptotic tail cubics, evaluated in the absolute
// coordinate x as c0 + x*(c1 + x*(c2 + x*c3)): loTail below lo, hiTail
// at or above hi. After installation, out-of-band evaluation costs the
// same handful of multiply-adds as the tabulated band instead of a call
// to the exact function — the caller owns the accuracy argument for its
// expansions (the physics kernels use tails exact to ~e^-60 relative).
// NaN arguments still flow to the exact function. Returns k for
// chaining.
func (k *FlatKernel) WithTails(loTail, hiTail [4]float64) *FlatKernel {
	k.loTail, k.hiTail = loTail, hiTail
	k.hasTails = true
	return k
}

// Eval interpolates inside the tabulated band in O(1) — one panel-index
// computation and a cubic Horner evaluation over four contiguous
// coefficients. Outside the band it evaluates the asymptotic tails when
// installed (WithTails), and the exact f otherwise (including NaN,
// which fails every band test).
//
//semsim:hot
func (k *FlatKernel) Eval(x float64) float64 {
	t := (x - k.lo) * k.invH
	if t >= 0 && t < k.fn {
		i := int(t)
		s := t - float64(i)
		c := k.coef[4*i : 4*i+4 : 4*i+4]
		return c[0] + s*(c[1]+s*(c[2]+s*c[3]))
	}
	if k.hasTails {
		if x < k.lo {
			c := &k.loTail
			return c[0] + x*(c[1]+x*(c[2]+x*c[3]))
		}
		if x >= k.hi {
			c := &k.hiTail
			return c[0] + x*(c[1]+x*(c[2]+x*c[3]))
		}
	}
	return k.f(x)
}

// EvalPair evaluates the kernel at two arguments in one call — the
// shape of the solver's junction sweep, which needs the forward and
// backward rate of every junction. Eval is too large to inline, so the
// per-call overhead (spills and the repeated loads of lo/invH/fn/coef)
// is paid once per junction here instead of once per rate. Results are
// bit-identical to two Eval calls.
//
//semsim:hot
func (k *FlatKernel) EvalPair(x1, x2 float64) (y1, y2 float64) {
	lo, invH, fn := k.lo, k.invH, k.fn
	coef := k.coef

	t := (x1 - lo) * invH
	if t >= 0 && t < fn {
		i := int(t)
		s := t - float64(i)
		c := coef[4*i : 4*i+4 : 4*i+4]
		y1 = c[0] + s*(c[1]+s*(c[2]+s*c[3]))
	} else if k.hasTails && x1 < lo {
		c := &k.loTail
		y1 = c[0] + x1*(c[1]+x1*(c[2]+x1*c[3]))
	} else if k.hasTails && x1 >= k.hi {
		c := &k.hiTail
		y1 = c[0] + x1*(c[1]+x1*(c[2]+x1*c[3]))
	} else {
		y1 = k.f(x1)
	}

	t = (x2 - lo) * invH
	if t >= 0 && t < fn {
		i := int(t)
		s := t - float64(i)
		c := coef[4*i : 4*i+4 : 4*i+4]
		y2 = c[0] + s*(c[1]+s*(c[2]+s*c[3]))
	} else if k.hasTails && x2 < lo {
		c := &k.loTail
		y2 = c[0] + x2*(c[1]+x2*(c[2]+x2*c[3]))
	} else if k.hasTails && x2 >= k.hi {
		c := &k.hiTail
		y2 = c[0] + x2*(c[1]+x2*(c[2]+x2*c[3]))
	} else {
		y2 = k.f(x2)
	}
	return y1, y2
}

// MaxRelError reports the measured relative-error bound of the
// tabulated band (outside it, evaluation is exact).
func (k *FlatKernel) MaxRelError() float64 { return k.relErr }

// Range reports the tabulated interval.
func (k *FlatKernel) Range() (lo, hi float64) { return k.lo, k.hi }

// Panels reports the number of uniform panels in the tabulated band.
func (k *FlatKernel) Panels() int { return len(k.coef) / 4 }
