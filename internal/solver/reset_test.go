package solver

import (
	"encoding/json"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

// resetSET builds the paper SET at the given bias point.
func resetSET(vs, vd, vg float64, sup circuit.SuperParams) (*circuit.Circuit, circuit.SETNodes) {
	return circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: vs, Vd: vd, Vg: vg, Super: sup,
	})
}

// fingerprint serializes the full dynamic state of a simulation — time,
// electrons, RNG stream position, measurement counters, stats and
// waveforms — so two trajectories can be compared bit-for-bit.
func fingerprint(t *testing.T, s *Sim) string {
	t.Helper()
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestResetMatchesFresh is the load-bearing guarantee of the amortized
// sweep engine: a reused, Reset simulation must follow bit-for-bit the
// trajectory of a freshly compiled and constructed one at the same seed
// and bias point — across solver configurations, across consecutive
// points (no state leakage), serial and parallel.
func TestResetMatchesFresh(t *testing.T) {
	points := []struct{ vs, vd, vg float64 }{
		{0.02, -0.02, 0.005},
		{0.013, -0.007, -0.011},
		{0.001, -0.024, 0.019},
	}
	cases := map[string]Options{
		"plain":       {Temp: 5},
		"adaptive":    {Temp: 5, Adaptive: true},
		"rate-tables": {Temp: 5, RateTables: true},
		"sparse":      {Temp: 5, SparsePotentials: true},
		"t0":          {Temp: 0},
		"parallel":    {Temp: 5, Adaptive: true, Parallel: 4},
	}
	const events = 1500
	for name, opt := range cases {
		t.Run(name, func(t *testing.T) {
			// One long-lived session Sim, compiled at a bias point no
			// sweep point uses, reused across all points via Reset.
			base, nd := resetSET(0.042, 0.001, -0.03, circuit.SuperParams{})
			opt.Seed = 1234
			sess, err := New(base, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for i, p := range points {
				seed := uint64(9000 + 17*i)
				fresh, _ := func() (*Sim, circuit.SETNodes) {
					c, n := resetSET(p.vs, p.vd, p.vg, circuit.SuperParams{})
					o := opt
					o.Seed = seed
					s, err := New(c, o)
					if err != nil {
						t.Fatal(err)
					}
					return s, n
				}()
				if _, err := fresh.Run(events, 0); err != nil {
					t.Fatal(err)
				}
				err := sess.Reset(seed, map[int]float64{
					nd.Source: p.vs, nd.Drain: p.vd, nd.Gate: p.vg,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sess.Run(events, 0); err != nil {
					t.Fatal(err)
				}
				if got, want := fingerprint(t, sess), fingerprint(t, fresh); got != want {
					t.Fatalf("point %d: reused-session trajectory diverged from fresh build\nreused: %s\nfresh:  %s", i, got, want)
				}
				if sess.JunctionCurrent(0) != fresh.JunctionCurrent(0) {
					t.Fatalf("point %d: currents differ: %g vs %g", i, sess.JunctionCurrent(0), fresh.JunctionCurrent(0))
				}
				fresh.Close()
			}
		})
	}
}

// A superconducting session must rebuild its quasi-particle table
// voltage range on Reset: the table bucket depends on the source
// magnitudes, and a reused session biased far from its compile point
// must still match a fresh build bit-for-bit.
func TestResetMatchesFreshSuper(t *testing.T) {
	sup := circuit.SuperParams{GapAt0: units.MeV(0.23), Tc: 1.4}
	base, nd := resetSET(0.0001, -0.0001, 0, sup)
	opt := Options{Temp: 0.5, Seed: 5}
	sess, err := New(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// A bias point large enough to land in a different vmax bucket than
	// the compile point's.
	const vs, vd, vg = 0.0035, -0.0035, 0.0008
	fresh, _ := func() (*Sim, circuit.SETNodes) {
		c, n := resetSET(vs, vd, vg, sup)
		s, err := New(c, Options{Temp: 0.5, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return s, n
	}()
	defer fresh.Close()
	if _, err := fresh.Run(800, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Reset(77, map[int]float64{nd.Source: vs, nd.Drain: vd, nd.Gate: vg}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(800, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, sess), fingerprint(t, fresh); got != want {
		t.Fatalf("superconducting reused-session trajectory diverged from fresh build\nreused: %s\nfresh:  %s", got, want)
	}
}

// A checkpoint taken from a fresh build must restore into a reused
// session (after Reset installed the same bias point) and land on the
// identical continuation — the property that lets the jobs engine
// resume interrupted tasks through its per-worker session cache.
func TestResetThenRestoreMatchesFresh(t *testing.T) {
	const vs, vd, vg = 0.018, -0.021, 0.004
	mkFresh := func() (*Sim, circuit.SETNodes) {
		c, n := resetSET(vs, vd, vg, circuit.SuperParams{})
		s, err := New(c, Options{Temp: 5, Seed: 31, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		return s, n
	}
	ref, _ := mkFresh()
	defer ref.Close()
	if _, err := ref.Run(3*1024, 0); err != nil {
		t.Fatal(err)
	}

	// Interrupted fresh run: snapshot at a refresh boundary.
	a, _ := mkFresh()
	defer a.Close()
	if _, err := a.Run(1024, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Resume inside a reused session compiled at a different bias.
	base, nd := resetSET(0.05, -0.001, 0.02, circuit.SuperParams{})
	sess, err := New(base, Options{Temp: 5, Seed: 999, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(500, 0); err != nil { // dirty the session first
		t.Fatal(err)
	}
	if err := sess.Reset(31, map[int]float64{nd.Source: vs, nd.Drain: vd, nd.Gate: vg}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(2*1024, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, sess), fingerprint(t, ref); got != want {
		t.Fatalf("restore-into-reused-session diverged from uninterrupted fresh run\nreused: %s\nfresh:  %s", got, want)
	}
}

// Reset must refuse overrides on nodes that are not DC-driven externals.
func TestResetOverrideValidation(t *testing.T) {
	c, nd := resetSET(0.02, -0.02, 0, circuit.SuperParams{})
	s, err := New(c, Options{Temp: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reset(2, map[int]float64{nd.Island: 0.01}); err == nil {
		t.Fatal("override on an island node accepted")
	}
	if err := s.Reset(3, map[int]float64{-1: 0.01}); err == nil {
		t.Fatal("override on a bogus node id accepted")
	}
	// A failed Reset must not leave the Sim unusable.
	if err := s.Reset(4, map[int]float64{nd.Gate: 0.01}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100, 0); err != nil {
		t.Fatal(err)
	}
}

// Probes survive Reset: the recorded waveform restarts from a fresh
// t = 0 sample exactly as New followed by AddProbe would produce.
func TestResetRewindsProbes(t *testing.T) {
	const vg = 0.007
	freshC, fnd := resetSET(0.02, -0.02, vg, circuit.SuperParams{})
	fresh, err := New(freshC, Options{Temp: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	fresh.AddProbe(fnd.Island)
	if _, err := fresh.Run(600, 0); err != nil {
		t.Fatal(err)
	}

	base, nd := resetSET(0.02, -0.02, 0, circuit.SuperParams{})
	sess, err := New(base, Options{Temp: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.AddProbe(nd.Island)
	if _, err := sess.Run(400, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Reset(11, map[int]float64{nd.Gate: vg}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(600, 0); err != nil {
		t.Fatal(err)
	}
	wf, ws := fresh.Waveform(fnd.Island), sess.Waveform(nd.Island)
	if len(wf) != len(ws) {
		t.Fatalf("waveform lengths differ: fresh %d, reused %d", len(wf), len(ws))
	}
	for i := range wf {
		if wf[i] != ws[i] {
			t.Fatalf("waveform sample %d differs: %+v vs %+v", i, wf[i], ws[i])
		}
	}
}
