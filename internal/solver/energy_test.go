package solver

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

// TestDissipationMatchesJouleHeating: in steady state every electron
// traversing the SET dissipates e*Vds in total, so the accumulated
// free-energy release must equal I*Vds*t — the first law applied to the
// simulator.
func TestDissipationMatchesJouleHeating(t *testing.T) {
	vds := 0.08
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: vds / 2, Vd: -vds / 2,
	})
	s, err := New(c, Options{Temp: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Skip the charging transient (its energy comes from rearranging
	// the island, not steady transport).
	if _, err := s.Run(500, 0); err != nil {
		t.Fatal(err)
	}
	e0 := s.Stats().Dissipated
	s.ResetMeasurement()
	if _, err := s.Run(40000, 0); err != nil {
		t.Fatal(err)
	}
	heat := s.Stats().Dissipated - e0
	joule := s.JunctionCurrent(nd.JuncDrain) * vds * s.MeasureTime()
	if heat <= 0 || joule <= 0 {
		t.Fatalf("non-positive energies: heat %g, I*V*t %g", heat, joule)
	}
	if math.Abs(heat-joule)/joule > 0.05 {
		t.Fatalf("first law violated: dissipated %g J vs I*V*t %g J", heat, joule)
	}
}

// TestSwitchingEnergyScale: one logic transition of a SET inverter
// dissipates well under a femtojoule — the ultra-low-power motivation
// of the paper's introduction (ITRS: ~1e-18 J per switching event for
// the device itself; our wire load adds its CV^2-scale share).
func TestSwitchingEnergyScale(t *testing.T) {
	// A single SET driven through one blockade-lifting gate step.
	vdeg := units.E / (2 * 3 * aF)
	c := circuit.New()
	src := c.AddNode("s", circuit.External)
	drn := c.AddNode("d", circuit.External)
	gate := c.AddNode("g", circuit.External)
	isl := c.AddNode("i", circuit.Island)
	c.SetSource(src, circuit.DC(0.002))
	c.SetSource(drn, circuit.DC(-0.002))
	c.SetSource(gate, circuit.PWL{T: []float64{0, 20e-9, 21e-9}, Volt: []float64{0, 0, vdeg}})
	c.AddJunction(src, isl, 1e6, aF)
	c.AddJunction(isl, drn, 1e6, aF)
	c.AddCap(gate, isl, 3*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Options{Temp: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Through the gate step and a short conduction burst.
	if _, err := s.Run(0, 30e-9); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	diss := s.Stats().Dissipated
	if diss <= 0 {
		t.Fatalf("no dissipation recorded: %g", diss)
	}
	if diss > 1e-15 {
		t.Fatalf("switching burst dissipated %g J; SET logic should be far below a femtojoule", diss)
	}
}

// TestEquilibriumNetDissipationSmall: with no bias the net released
// energy per event is bounded by thermal fluctuations (individual
// events exchange ~kT with the bath in both directions).
func TestEquilibriumNetDissipationSmall(t *testing.T) {
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
	})
	temp := 30.0
	s, err := New(c, Options{Temp: temp, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	const events = 30000
	if _, err := s.Run(events, 0); err != nil {
		t.Fatal(err)
	}
	perEvent := s.Stats().Dissipated / events
	kT := units.KB * temp
	if math.Abs(perEvent) > 0.5*kT {
		t.Fatalf("equilibrium net dissipation %g J/event exceeds thermal scale kT=%g", perEvent, kT)
	}
}
