// Package solver is the Monte Carlo engine of the simulator (Fig. 3 of
// the paper): an event loop that, each iteration, computes tunneling
// rates for every possible event, draws the waiting time from Eq. 5,
// selects an event with probability proportional to its rate, and
// applies it.
//
// Two solvers share the loop:
//
//   - the non-adaptive solver recomputes every node potential and every
//     junction rate after each event, like conventional MC
//     single-electron simulators;
//   - the adaptive solver (Algorithm 1) accumulates a per-junction
//     testing factor b(i) and recomputes a junction's rates only when
//     the potential change across it since its last recalculation
//     exceeds alpha times its cached free-energy changes, spilling
//     breadth-first to neighbours and refreshing everything
//     periodically to bound the accumulated error.
//
// Secondary effects (cotunneling) and superconducting channels
// (quasi-particle and Cooper-pair tunneling) are always handled by the
// non-adaptive path, as in the paper.
package solver

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"semsim/internal/circuit"
	"semsim/internal/cotunnel"
	"semsim/internal/obs"
	"semsim/internal/orthodox"
	"semsim/internal/rng"
	"semsim/internal/super"
	"semsim/internal/units"
)

// Options configures a simulation.
type Options struct {
	// Temp is the temperature in kelvin. Zero is allowed for normal
	// circuits (hard Coulomb blockade) but not superconducting ones.
	Temp float64
	// Adaptive selects the adaptive solver (Algorithm 1) for
	// single-electron tunnel rates.
	Adaptive bool
	// Alpha is the adaptive testing-factor threshold: a junction is
	// recalculated when e*|b(i)| >= Alpha * min(|dW'fw|, |dW'bw|).
	// Smaller is more accurate and slower. Default 0.05.
	Alpha float64
	// RefreshEvery forces a full recalculation of all potentials and
	// rates every N events, bounding the adaptive method's cumulative
	// error. Default: max(1024, number of junctions), so the amortized
	// refresh cost stays a constant number of rate calculations per
	// event on large circuits.
	RefreshEvery int
	// Cotunneling enables second-order inelastic cotunneling channels
	// (normal-state circuits only).
	Cotunneling bool
	// Seed initializes the deterministic random stream.
	Seed uint64
	// CPWidthFloor is the minimum lifetime broadening hbar*gamma of the
	// Cooper-pair resonance, as a fraction of the gap. Default 1e-3.
	CPWidthFloor float64
	// ProbeInterval decimates waveform recording: samples closer in
	// time than this are dropped. Zero records every event.
	ProbeInterval float64
	// Parallel is the worker count of the within-run rate engine, which
	// shards junction rate recomputation across goroutines during full
	// refreshes, non-adaptive updates and large adaptive batches. The
	// default (0) uses GOMAXPROCS; 1 forces the serial path. Parallel
	// runs are bit-identical to serial ones — same seed, same events,
	// same waveforms — so this is purely a speed knob. Small circuits
	// (below the internal batch cutoff) always run serially.
	Parallel int
	// SparsePotentials routes all potential arithmetic through the
	// sparse locality-aware engine: per-event shifts and full-refresh
	// solves walk only the stored nonzeros of ε-truncated C^-1 rows.
	// With CinvTruncation = 0 (exact) trajectories are bit-identical to
	// the dense engine — same seed, same events, same waveforms — serial
	// and parallel; the knob then only changes memory layout and lets
	// sparsely built circuits run. See CinvTruncation for the lossy mode.
	SparsePotentials bool
	// CinvTruncation is the relative threshold ε for dropping C^-1 row
	// entries (|v| < ε·‖row‖∞): larger values make per-event updates
	// cheaper at the price of a bounded potential error, which the
	// solver accumulates into Stats.CinvErrorBound. A positive value
	// implies SparsePotentials. Default 0 (exact).
	CinvTruncation float64
	// RateTables evaluates the normal-state orthodox and cotunneling
	// rates through shared error-bounded interpolation tables (relative
	// error < 1e-6, exact evaluation outside the tabulated band)
	// instead of calling exp on every rate. Off by default so results
	// match exact evaluation bit-for-bit; superconducting
	// quasi-particle rates are always tabulated, as before.
	RateTables bool
	// Obs attaches an observability handle: the simulation mirrors its
	// Stats counters into the observer's metric registry and, when the
	// observer traces, journals tunnel events, adaptive decisions and
	// refresh boundaries. Nil falls back to the process-wide observer
	// (obs.Global), which defaults to disabled. Observation is passive —
	// an instrumented run is bit-identical to an uninstrumented one.
	Obs *obs.Observer
}

func (o *Options) setDefaults(numJunctions int) {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.RefreshEvery <= 0 {
		o.RefreshEvery = 1024
		if numJunctions > o.RefreshEvery {
			o.RefreshEvery = numJunctions
		}
	}
	if o.CPWidthFloor <= 0 {
		o.CPWidthFloor = 1e-3
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
}

// parallelCutoff is the smallest batch (junctions, secondary channels
// or matrix rows) worth dispatching to the worker pool; below it the
// fixed ~microsecond dispatch cost exceeds the sharded kernel work.
const parallelCutoff = 128

// Event channel kinds.
type chKind uint8

const (
	chElectron chKind = iota // first-order tunneling (quasi-particle when superconducting)
	chCotunnel               // second-order inelastic cotunneling
	chCooper                 // Cooper-pair tunneling
)

// channel is one possible stochastic event.
type channel struct {
	kind     chKind
	junc     int // primary junction id
	junc2    int // second junction for cotunneling, else -1
	src, dst int // node ids; carrier moves src -> dst
	mid      int // intermediate island for cotunneling, else -1
	q        float64
	carriers int // electrons transferred (1 or 2)
}

// Stats counts the work the solver performed; RateCalcs is the
// machine-independent cost metric the paper's adaptive claim is about.
type Stats struct {
	Events         uint64 // applied tunnel events
	Steps          uint64 // loop iterations incl. capped no-event steps
	RateCalcs      uint64 // channel rate evaluations
	FullRefreshes  uint64
	Flagged        uint64 // junctions flagged by the adaptive test
	Tested         uint64 // junctions tested by the adaptive test
	CotunnelEvents uint64
	CooperEvents   uint64
	// Dissipated is the total free energy released by tunnel events
	// (joules) since the simulation started: each event dissipates -dW
	// as heat. This is the quantity behind the paper's motivating claim
	// that SET logic reaches ~1e-18 J per switching event.
	Dissipated float64
	// CinvErrorBound bounds the current per-island potential error
	// (volts) introduced by C^-1 truncation: reset to the refresh bound
	// at every full refresh and grown by per-event and input-change
	// terms in between. Exactly zero when CinvTruncation is 0.
	CinvErrorBound float64
}

// Sample is one waveform point of a probed node.
type Sample struct {
	T, V float64
}

// Sim is a Monte Carlo simulation bound to one circuit.
type Sim struct {
	c   *circuit.Circuit
	opt Options
	rnd *rng.Source

	// pe is the potential engine all C^-1-mediated arithmetic goes
	// through (dense by default; sparse/truncated per Options).
	pe *circuit.Potentials
	// shardBounds are nnz-balanced row boundaries for the parallel
	// refresh solve on sparse engines (nil: shard by row count).
	shardBounds []int

	t    float64
	n    []int     // electrons per island (island order)
	v    []float64 // island potentials, exact after every event
	vext []float64 // external voltages at current t

	chans []channel
	fen   *fenwick

	// Per-junction adaptive state and channel indices.
	b0       []float64 // accumulated testing factor (volts)
	dwFw     []float64 // cached dW at last recalc, A->B
	dwBw     []float64
	chFw     []int // channel index per junction, electron A->B
	chBw     []int
	secChans []int // cotunnel + Cooper channel indices

	// Within-run parallel rate engine (nil/empty when serial).
	pool        *pool
	rateFw      []float64 // per-junction scratch, compute phase
	rateBw      []float64
	secRate     []float64 // per-secondary-channel scratch
	qScratch    []float64 // island charge vector for the sharded solve
	workerCalcs []uint64  // per-worker rate-calc counters

	// Tabulated normal-state kernels (nil when exact or superconducting).
	normK    *orthodox.Kernel
	cotK     *cotunnel.Kernel
	ratePref []float64 // per-junction kT/(e^2 R)
	invKT    float64

	// Superconducting machinery (nil/empty when normal).
	superOn bool
	gap     float64
	qpTab   []*super.QPTable // per junction
	ej      []float64        // per junction Josephson energy

	// Time-dependence.
	static  bool
	breaks  []float64 // merged PWL breakpoints, sorted
	maxStep float64   // cap for continuous sources (sine/ramps); 0 = none
	horizon float64   // active Run deadline; steps never overshoot it

	// Measurement.
	charge    []float64 // per junction, conventional charge A->B (coulombs)
	evFw      []uint64  // per junction, carrier moves A->B since reset
	evBw      []uint64  // per junction, carrier moves B->A since reset
	evCoop    []uint64  // per junction, Cooper-pair events since reset
	measStart float64
	probes    []int // node ids
	waves     map[int][]Sample
	lastProbe map[int]float64

	// Scratch buffers for the adaptive BFS.
	visited []uint32
	stamp   uint32
	scratch []int
	flagged []int // junctions flagged this update, recalculated in batch

	// dbgInit arms the potential-drift invariant once the first full
	// refresh has established a baseline (semsimdebug builds only).
	dbgInit bool

	// obs mirrors Stats into a metric registry and journals events when
	// tracing; nil (the default) makes every hook a no-op branch.
	obs *obs.Observer

	stats Stats
}

// ErrBlockaded is reported by Run when no event has a positive rate and
// no future input change can unblock the circuit — a hard Coulomb
// blockade at T = 0.
var ErrBlockaded = errors.New("solver: circuit is fully Coulomb-blockaded")

// New prepares a simulation. The circuit must already be built.
func New(c *circuit.Circuit, opt Options) (*Sim, error) {
	if c.NumJunctions() == 0 {
		return nil, errors.New("solver: circuit has no tunnel junctions")
	}
	opt.setDefaults(c.NumJunctions())
	sp := c.Super()
	if sp.Superconducting() {
		if opt.Temp <= 0 {
			return nil, errors.New("solver: superconducting simulation requires T > 0")
		}
		if opt.Cotunneling {
			return nil, errors.New("solver: quasi-particle cotunneling is not modeled (paper neglects it); disable Cotunneling for superconducting circuits")
		}
	}
	s := &Sim{
		c:         c,
		opt:       opt,
		rnd:       rng.New(opt.Seed),
		n:         make([]int, c.NumIslands()),
		v:         make([]float64, c.NumIslands()),
		vext:      c.ExternalVoltages(nil, 0),
		charge:    make([]float64, c.NumJunctions()),
		evFw:      make([]uint64, c.NumJunctions()),
		evBw:      make([]uint64, c.NumJunctions()),
		evCoop:    make([]uint64, c.NumJunctions()),
		waves:     map[int][]Sample{},
		lastProbe: map[int]float64{},
		superOn:   sp.Superconducting(),
		visited:   make([]uint32, c.NumJunctions()),
	}
	s.obs = opt.Obs
	if s.obs == nil {
		s.obs = obs.Global()
	}
	pe, err := c.PotentialEngine(opt.SparsePotentials, opt.CinvTruncation)
	if err != nil {
		return nil, fmt.Errorf("solver: %w", err)
	}
	s.pe = pe
	s.obs.PotentialEngine(pe.NNZ(), pe.TruncationRatio(), pe.Fill())
	s.buildChannels()
	if s.superOn {
		if err := s.buildSuper(); err != nil {
			return nil, err
		}
	}
	s.buildRateEngine()
	s.collectBreakpoints()
	s.fen = newFenwick(len(s.chans))
	s.fullRefresh()
	return s, nil
}

// buildRateEngine prepares the within-run parallel pool and the
// tabulated normal-state kernels, when enabled and worthwhile.
func (s *Sim) buildRateEngine() {
	nj := s.c.NumJunctions()
	if s.opt.RateTables && !s.superOn && s.opt.Temp > 0 {
		if k := orthodox.SharedKernel(); k != nil {
			s.normK = k
			kT := units.KB * s.opt.Temp
			s.invKT = 1 / kT
			s.ratePref = make([]float64, nj)
			for j := 0; j < nj; j++ {
				s.ratePref[j] = kT / (units.E * units.E * s.c.Junction(j).R)
			}
		}
		if s.opt.Cotunneling {
			s.cotK = cotunnel.SharedKernel()
		}
	}
	maxBatch := nj
	if n := len(s.secChans); n > maxBatch {
		maxBatch = n
	}
	if n := s.c.NumIslands(); n > maxBatch {
		maxBatch = n
	}
	if s.opt.Parallel <= 1 || maxBatch < parallelCutoff {
		return
	}
	s.pool = newPool(s.opt.Parallel)
	s.rateFw = make([]float64, nj)
	s.rateBw = make([]float64, nj)
	s.secRate = make([]float64, len(s.secChans))
	s.workerCalcs = make([]uint64, s.opt.Parallel)
	// Sparse refresh solves shard by stored-nonzero count: truncation
	// leaves skewed row lengths, so equal row ranges would imbalance.
	// Sharding never changes the computed floats — rows are independent.
	s.shardBounds = s.pe.RowShards(s.opt.Parallel)
	// Backstop for callers that never Close: reclaim the worker
	// goroutines when the Sim is collected.
	runtime.SetFinalizer(s, (*Sim).Close)
}

// Close terminates the worker-pool goroutines of the parallel rate
// engine. It is optional (a finalizer reclaims unclosed pools), safe to
// call more than once, and a no-op for serial simulations; the Sim must
// not be used after.
func (s *Sim) Close() {
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
		runtime.SetFinalizer(s, nil)
	}
}

// buildChannels enumerates every event channel.
func (s *Sim) buildChannels() {
	nj := s.c.NumJunctions()
	s.chFw = make([]int, nj)
	s.chBw = make([]int, nj)
	s.b0 = make([]float64, nj)
	s.dwFw = make([]float64, nj)
	s.dwBw = make([]float64, nj)
	for j := 0; j < nj; j++ {
		jn := s.c.Junction(j)
		s.chFw[j] = len(s.chans)
		s.chans = append(s.chans, channel{kind: chElectron, junc: j, junc2: -1, mid: -1,
			src: jn.A, dst: jn.B, q: units.E, carriers: 1})
		s.chBw[j] = len(s.chans)
		s.chans = append(s.chans, channel{kind: chElectron, junc: j, junc2: -1, mid: -1,
			src: jn.B, dst: jn.A, q: units.E, carriers: 1})
	}
	if s.opt.Cotunneling {
		for _, ct := range cotunnel.Channels(s.c) {
			s.secChans = append(s.secChans, len(s.chans))
			s.chans = append(s.chans, channel{kind: chCotunnel, junc: ct.J1, junc2: ct.J2,
				src: ct.Src, mid: ct.Mid, dst: ct.Dst, q: units.E, carriers: 1})
		}
	}
	if s.c.Super().Superconducting() {
		for j := 0; j < nj; j++ {
			jn := s.c.Junction(j)
			s.secChans = append(s.secChans, len(s.chans))
			s.chans = append(s.chans, channel{kind: chCooper, junc: j, junc2: -1, mid: -1,
				src: jn.A, dst: jn.B, q: 2 * units.E, carriers: 2})
			s.secChans = append(s.secChans, len(s.chans))
			s.chans = append(s.chans, channel{kind: chCooper, junc: j, junc2: -1, mid: -1,
				src: jn.B, dst: jn.A, q: 2 * units.E, carriers: 2})
		}
	}
}

// qpCache shares quasi-particle tables across simulations: a table
// depends only on (R, gap, temperature, voltage range), and parameter
// sweeps build thousands of Sims over identical junctions. Tables are
// immutable after construction, so concurrent reuse is safe.
var qpCache sync.Map // qpKey -> *super.QPTable

type qpKey struct {
	r, gap, temp, vmax float64
}

func cachedQPTable(r, gap, temp, vmax float64) (*super.QPTable, error) {
	// Bucket vmax to powers of two so nearby sweep points share tables.
	bucket := math.Pow(2, math.Ceil(math.Log2(vmax)))
	key := qpKey{r: r, gap: gap, temp: temp, vmax: bucket}
	if t, ok := qpCache.Load(key); ok {
		return t.(*super.QPTable), nil
	}
	t, err := super.NewQPTable(r, gap, gap, temp, bucket)
	if err != nil {
		return nil, err
	}
	actual, _ := qpCache.LoadOrStore(key, t)
	return actual.(*super.QPTable), nil
}

// buildSuper prepares quasi-particle tables and Josephson energies.
func (s *Sim) buildSuper() error {
	sp := s.c.Super()
	s.gap = super.Gap(sp.GapAt0, sp.Tc, s.opt.Temp)
	// Voltage range the tables must cover: gaps, biases and charging
	// energies with headroom. Beyond it the tables extrapolate into the
	// (correct) ohmic asymptote.
	maxSrc := 0.0
	for _, id := range s.c.Externals() {
		v := math.Abs(s.c.SourceVoltage(id, 0))
		if v > maxSrc {
			maxSrc = v
		}
	}
	maxEc := 0.0
	for _, isl := range s.c.Islands() {
		ec := units.ChargingEnergy(s.c.SumCapacitance(isl))
		if ec > maxEc {
			maxEc = ec
		}
	}
	vmax := (8*s.gap+8*maxEc)/units.E + 4*maxSrc + 20*units.KB*s.opt.Temp/units.E
	s.qpTab = make([]*super.QPTable, s.c.NumJunctions())
	s.ej = make([]float64, s.c.NumJunctions())
	for j := 0; j < s.c.NumJunctions(); j++ {
		r := s.c.Junction(j).R
		tab, err := cachedQPTable(r, s.gap, s.opt.Temp, vmax)
		if err != nil {
			return fmt.Errorf("solver: quasi-particle table for R=%g: %w", r, err)
		}
		s.qpTab[j] = tab
		s.ej[j] = super.JosephsonEnergy(r, s.gap, s.opt.Temp)
	}
	return nil
}

// collectBreakpoints merges PWL breakpoints of all sources and decides
// the step cap for continuously varying sources.
func (s *Sim) collectBreakpoints() {
	s.static = s.c.AllSourcesStatic()
	if s.static {
		return
	}
	seen := map[float64]bool{}
	minSine := math.Inf(1)
	for _, id := range s.c.Externals() {
		switch src := s.sourceOf(id).(type) {
		case circuit.PWL:
			if src.Static() {
				continue
			}
			for _, bp := range src.T {
				if !seen[bp] {
					seen[bp] = true
					s.breaks = append(s.breaks, bp)
				}
			}
		case circuit.Sine:
			if !src.Static() && src.Freq > 0 {
				if p := 1 / src.Freq; p < minSine {
					minSine = p
				}
			}
		}
	}
	sortFloats(s.breaks)
	if !math.IsInf(minSine, 1) {
		s.maxStep = minSine / 64
	}
	// PWL ramps (non-flat segments) also need capping; handled
	// dynamically in nextCap using segment slopes.
}

func (s *Sim) sourceOf(node int) circuit.Source { return s.c.SourceOf(node) }

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
