// Package solver is the Monte Carlo engine of the simulator (Fig. 3 of
// the paper): an event loop that, each iteration, computes tunneling
// rates for every possible event, draws the waiting time from Eq. 5,
// selects an event with probability proportional to its rate, and
// applies it.
//
// Two solvers share the loop:
//
//   - the non-adaptive solver recomputes every node potential and every
//     junction rate after each event, like conventional MC
//     single-electron simulators;
//   - the adaptive solver (Algorithm 1) accumulates a per-junction
//     testing factor b(i) and recomputes a junction's rates only when
//     the potential change across it since its last recalculation
//     exceeds alpha times its cached free-energy changes, spilling
//     breadth-first to neighbours and refreshing everything
//     periodically to bound the accumulated error.
//
// Secondary effects (cotunneling) and superconducting channels
// (quasi-particle and Cooper-pair tunneling) are always handled by the
// non-adaptive path, as in the paper.
//
// The per-event state is laid out struct-of-arrays: channel descriptors
// and per-junction constants (node indices, C^-1 self-terms, rate
// prefactors) live in flat parallel slices so the rate-recomputation
// loops stream through contiguous memory, and the exact-vs-table
// dispatch is resolved once at construction (kernKind) instead of per
// rate evaluation. See DESIGN.md §11.
package solver

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"semsim/internal/circuit"
	"semsim/internal/cotunnel"
	"semsim/internal/noise"
	"semsim/internal/numeric"
	"semsim/internal/obs"
	"semsim/internal/orthodox"
	"semsim/internal/rng"
	"semsim/internal/super"
	"semsim/internal/units"
)

// Options configures a simulation.
type Options struct {
	// Temp is the temperature in kelvin. Zero is allowed for normal
	// circuits (hard Coulomb blockade) but not superconducting ones.
	Temp float64
	// Adaptive selects the adaptive solver (Algorithm 1) for
	// single-electron tunnel rates.
	Adaptive bool
	// Alpha is the adaptive testing-factor threshold: a junction is
	// recalculated when e*|b(i)| >= Alpha * min(|dW'fw|, |dW'bw|).
	// Smaller is more accurate and slower. Default 0.05.
	Alpha float64
	// RefreshEvery forces a full recalculation of all potentials and
	// rates every N events, bounding the adaptive method's cumulative
	// error. Default: max(1024, number of junctions), so the amortized
	// refresh cost stays a constant number of rate calculations per
	// event on large circuits.
	RefreshEvery int
	// Cotunneling enables second-order inelastic cotunneling channels
	// (normal-state circuits only).
	Cotunneling bool
	// Seed initializes the deterministic random stream.
	Seed uint64
	// CPWidthFloor is the minimum lifetime broadening hbar*gamma of the
	// Cooper-pair resonance, as a fraction of the gap. Default 1e-3.
	CPWidthFloor float64
	// ProbeInterval decimates waveform recording: samples closer in
	// time than this are dropped. Zero records every event.
	ProbeInterval float64
	// Parallel is the worker count of the within-run rate engine, which
	// shards junction rate recomputation across goroutines during full
	// refreshes, non-adaptive updates and large adaptive batches. The
	// default (0) uses GOMAXPROCS; 1 forces the serial path. Parallel
	// runs are bit-identical to serial ones — same seed, same events,
	// same waveforms — so this is purely a speed knob. Small circuits
	// (below the internal batch cutoff) always run serially.
	Parallel int
	// SparsePotentials routes all potential arithmetic through the
	// sparse locality-aware engine: per-event shifts and full-refresh
	// solves walk only the stored nonzeros of ε-truncated C^-1 rows.
	// With CinvTruncation = 0 (exact) trajectories are bit-identical to
	// the dense engine — same seed, same events, same waveforms — serial
	// and parallel; the knob then only changes memory layout and lets
	// sparsely built circuits run. See CinvTruncation for the lossy mode.
	SparsePotentials bool
	// CinvTruncation is the relative threshold ε for dropping C^-1 row
	// entries (|v| < ε·‖row‖∞): larger values make per-event updates
	// cheaper at the price of a bounded potential error, which the
	// solver accumulates into Stats.CinvErrorBound. A positive value
	// implies SparsePotentials. Default 0 (exact).
	CinvTruncation float64
	// RateTables evaluates the normal-state orthodox and cotunneling
	// rates through shared error-bounded interpolation tables (relative
	// error < 1e-6, exact evaluation outside the tabulated band)
	// instead of calling exp on every rate. Off by default so results
	// match exact evaluation bit-for-bit; superconducting
	// quasi-particle rates are always tabulated, as before.
	RateTables bool
	// Obs attaches an observability handle: the simulation mirrors its
	// Stats counters into the observer's metric registry and, when the
	// observer traces, journals tunnel events, adaptive decisions and
	// refresh boundaries. Nil falls back to the process-wide observer
	// (obs.Global), which defaults to disabled. Observation is passive —
	// an instrumented run is bit-identical to an uninstrumented one.
	Obs *obs.Observer
}

func (o *Options) setDefaults(numJunctions int) {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.RefreshEvery <= 0 {
		o.RefreshEvery = 1024
		if numJunctions > o.RefreshEvery {
			o.RefreshEvery = numJunctions
		}
	}
	if o.CPWidthFloor <= 0 {
		o.CPWidthFloor = 1e-3
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
}

// parallelCutoff is the smallest batch (junctions, secondary channels
// or matrix rows) worth dispatching to the worker pool; below it the
// fixed ~microsecond dispatch cost exceeds the sharded kernel work.
const parallelCutoff = 128

// Event channel kinds.
type chKind uint8

const (
	chElectron chKind = iota // first-order tunneling (quasi-particle when superconducting)
	chCotunnel               // second-order inelastic cotunneling
	chCooper                 // Cooper-pair tunneling
)

// chQ and chCarriers give the tunneled charge magnitude and carrier
// count per channel kind: the per-channel q/carriers fields of the old
// AoS channel struct, now a two-load lookup.
var (
	chQ        = [3]float64{chElectron: units.E, chCotunnel: units.E, chCooper: 2 * units.E}
	chCarriers = [3]int{chElectron: 1, chCotunnel: 1, chCooper: 2}
)

// kernKind selects the first-order rate kernel once at construction, so
// the per-junction recomputation loops are monomorphic: no per-rate
// branching between exact, tabulated and superconducting evaluation.
type kernKind uint8

const (
	kernExact   kernKind = iota // normal state, T > 0, exact x/expm1(x)
	kernExactT0                 // normal state, T <= 0 limit
	kernTable                   // normal state, T > 0, flat interpolation table
	kernSuper                   // superconducting quasi-particle I-V table
)

// Stats counts the work the solver performed; RateCalcs is the
// machine-independent cost metric the paper's adaptive claim is about.
type Stats struct {
	Events         uint64 // applied tunnel events
	Steps          uint64 // loop iterations incl. capped no-event steps
	RateCalcs      uint64 // channel rate evaluations
	FullRefreshes  uint64
	Flagged        uint64 // junctions flagged by the adaptive test
	Tested         uint64 // junctions tested by the adaptive test
	CotunnelEvents uint64
	CooperEvents   uint64
	// Dissipated is the total free energy released by tunnel events
	// (joules) since the simulation started: each event dissipates -dW
	// as heat. This is the quantity behind the paper's motivating claim
	// that SET logic reaches ~1e-18 J per switching event.
	Dissipated float64
	// CinvErrorBound bounds the current per-island potential error
	// (volts) introduced by C^-1 truncation: reset to the refresh bound
	// at every full refresh and grown by per-event and input-change
	// terms in between. Exactly zero when CinvTruncation is 0.
	CinvErrorBound float64
}

// Sample is one waveform point of a probed node.
type Sample struct {
	T, V float64
}

// Sim is a Monte Carlo simulation bound to one circuit.
//
// Sim is a registered snapshot root: the statecover pass verifies that
// every field is serialized by Checkpoint, rebuilt by Restore (directly
// or through fullRefresh), or carries a justified waiver — so a field
// added without deciding its resume story fails the lint.
//
//statecover:root save=Checkpoint load=Restore
type Sim struct {
	c   *circuit.Circuit
	opt Options
	rnd *rng.Batch

	// pe is the potential engine all C^-1-mediated arithmetic goes
	// through (dense by default; sparse/truncated per Options).
	pe *circuit.Potentials
	// shardBounds are nnz-balanced row boundaries for the parallel
	// refresh solve on sparse engines (nil: shard by row count).
	shardBounds []int

	t    float64
	n    []int     // electrons per island (island order)
	v    []float64 // island potentials, exact after every event
	vext []float64 // external voltages at the last refresh/input change

	// Channel descriptors, struct-of-arrays. Electron channels occupy
	// indices 2j (A->B) and 2j+1 (B->A) for junction j; secondary
	// channels (cotunneling, Cooper pairs) follow, listed in secChans.
	//
	//statecover:immutable channel topology, compiled once from the circuit
	chKinds []chKind
	chJunc  []int32 // primary junction id
	//statecover:immutable channel topology, compiled once from the circuit
	chJunc2 []int32 // second junction for cotunneling, else -1
	//statecover:immutable channel topology, compiled once from the circuit
	chSrc []int32 // node ids; carrier moves src -> dst
	//statecover:immutable channel topology, compiled once from the circuit
	chDst []int32
	//statecover:immutable channel topology, compiled once from the circuit
	chMid []int32 // intermediate island for cotunneling, else -1

	fen *fenwick

	// Per-junction adaptive state.
	b0       []float64 // accumulated testing factor (volts)
	dwFw     []float64 // cached dW at last recalc, A->B
	dwBw     []float64
	secChans []int // cotunnel + Cooper channel indices

	// Flat per-junction constants for the rate kernels: node ids, island
	// or external index per endpoint (-1 for the other), the exact-mode
	// denominator e^2 R, and the constant C^-1 self-term of dW,
	// (Cinv[s][s] - 2 Cinv[s][d] + Cinv[d][d]) e^2 / 2. The self-term
	// is precomputed with the exact float ops of Potentials.DeltaW over
	// the immutable C^-1, so cached dW values are bit-identical to
	// recomputed ones.
	//
	//statecover:immutable per-junction constants, compiled once from the circuit
	juncA, juncB       []int32
	juncAIsl, juncBIsl []int32
	juncAExt, juncBExt []int32
	juncDenom          []float64
	juncSelfHalfE2     []float64

	// Kernel dispatch, resolved once at construction.
	kern    kernKind
	kT      float64
	flatK   *numeric.FlatKernel // normal-state g(x) table (kernTable)
	cotFlat *numeric.FlatKernel // cotunneling bracket table (nil: exact)

	// Per-secondary-channel constants, indexed by position in secChans:
	// endpoint island/external indices, dW self-terms (at the channel's
	// charge), and cotunneling resistances and prefactor.
	secSrcIsl, secSrcExt []int32
	secMidIsl, secMidExt []int32
	secDstIsl, secDstExt []int32
	secSelfSD            []float64 // (src,dst) self-term at channel charge
	secSelfSM, secSelfMD []float64 // cotunneling intermediate-hop self-terms
	secR1, secR2         []float64
	secPref              []float64 // tabulated cotunneling prefactor

	// Cooper-pair quasi-particle escape lists: channel i (secChans
	// position) owns coopJunc[coopStart[i]:coopStart[i+1]], with the
	// post-tunneling potential shift of each junction endpoint
	// precomputed (PotentialShift over the immutable C^-1).
	coopStart              []int32
	coopJunc               []int32
	coopShiftA, coopShiftB []float64

	// Per-Sim DC source override layer, installed by Reset so a sweep
	// session can move bias points without recompiling the circuit:
	// srcMask[e] marks external index e as overridden and srcOverride[e]
	// holds its voltage. Every solver-internal source read goes through
	// sourceVoltage/externalVoltages, which substitute these values, so
	// an overridden run computes exactly the floats of a run over a
	// circuit compiled with the same DC values. Nil until the first
	// Reset that overrides anything.
	srcOverride []float64
	srcMask     []bool

	// extV caches the external voltages per external index, refreshed
	// whenever t moves, so rate kernels read array slots instead of
	// dispatching into Source implementations per evaluation.
	extIDs []int
	extV   []float64
	//statecover:immutable node-id indexing, compiled once from the circuit
	extIdxOf  []int32 // node id -> external index, -1 for islands
	extVFresh bool    // static circuits: filled once, never again

	// Within-run parallel rate engine (pool nil when serial).
	pool           *pool
	rateFw         []float64 // per-junction scratch, compute phase
	rateBw         []float64
	secRate        []float64 // per-secondary-channel scratch
	qScratch       []float64 // island charge vector for the sharded solve
	workerCalcs    []uint64  // per-worker rate-calc counters
	allJunc        []int     // identity index list [0, nj)
	fnJuncShard    func(worker, lo, hi int)
	fnFlaggedShard func(worker, lo, hi int) //statecover:immutable worker closure bound at construction
	fnSecShard     func(worker, lo, hi int)
	fnSolveShard   func(worker, lo, hi int)

	// Tabulated normal-state kernels (nil when exact or superconducting).
	normK    *orthodox.Kernel
	cotK     *cotunnel.Kernel //statecover:immutable rate table, a pure function of Options
	ratePref []float64        // per-junction kT/(e^2 R)
	invKT    float64

	// Superconducting machinery (nil/empty when normal).
	superOn bool
	gap     float64
	qpTab   []*super.QPTable // per junction
	ej      []float64        // per junction Josephson energy

	// Time-dependence.
	static bool
	//statecover:immutable source schedule, compiled once from the circuit
	breaks []float64 // merged PWL breakpoints, sorted
	//statecover:immutable source schedule, compiled once from the circuit
	maxStep float64 // cap for continuous sources (sine/ramps); 0 = none
	//statecover:derived re-established by every Run call before stepping
	horizon float64 // active Run deadline; steps never overshoot it
	//statecover:immutable source schedule, compiled once from the circuit
	ramps []PWLRamp // sources needing ramp subdivision, external order

	// Measurement.
	charge    []float64 // per junction, conventional charge A->B (coulombs)
	evFw      []uint64  // per junction, carrier moves A->B since reset
	evBw      []uint64  // per junction, carrier moves B->A since reset
	evCoop    []uint64  // per junction, Cooper-pair events since reset
	measStart float64
	probes    []int // node ids
	waves     map[int][]Sample
	lastProbe map[int]float64

	// Scratch buffers for the adaptive BFS.
	//
	//statecover:derived per-update scratch, dead between adaptive updates
	visited []uint32
	//statecover:derived epoch counter paired with visited; any consistent value is valid
	stamp uint32
	//statecover:derived per-update scratch, dead between adaptive updates
	scratch []int
	//statecover:derived per-update scratch, dead between adaptive updates
	flagged []int // junctions flagged this update, recalculated in batch

	// Per-event memo of the event's potential shift per island: the
	// adaptive test reads each island's shift once per event instead of
	// recomputing PotentialShift per tested junction endpoint.
	//
	//statecover:derived per-event memo, dead between events
	dpVal []float64
	//statecover:derived epoch-stamped memo validity array, dead between events
	dpStamp []uint32
	//statecover:derived epoch counter paired with dpStamp; any consistent value is valid
	dpEpoch uint32

	// Input-change scratch (no per-change allocation).
	//
	//statecover:derived per-change scratch, dead between input changes
	vextScratch []float64
	//statecover:derived per-change scratch, dead between input changes
	dvIsl []float64 // per-island potential delta of the change
	//statecover:derived per-change scratch, dead between input changes
	dvExt []float64 // per-external voltage delta of the change

	// dbgInit arms the potential-drift invariant once the first full
	// refresh has established a baseline (semsimdebug builds only).
	dbgInit bool

	// obs mirrors Stats into a metric registry and journals events when
	// tracing; nil (the default) makes every hook a no-op branch.
	obs *obs.Observer

	// noise is the optional streaming noise/FCS recorder (EnableNoise);
	// nil keeps the hot path at one predictable branch per applied
	// event. Like obs it is passive — recording never changes the
	// trajectory — but unlike obs its accumulators are measurement
	// state: they checkpoint, restore and reset with the simulation.
	noise *noise.Recorder

	stats Stats
}

// ErrBlockaded is reported by Run when no event has a positive rate and
// no future input change can unblock the circuit — a hard Coulomb
// blockade at T = 0.
var ErrBlockaded = errors.New("solver: circuit is fully Coulomb-blockaded")

// New prepares a simulation. The circuit must already be built.
func New(c *circuit.Circuit, opt Options) (*Sim, error) {
	if c.NumJunctions() == 0 {
		return nil, errors.New("solver: circuit has no tunnel junctions")
	}
	opt.setDefaults(c.NumJunctions())
	sp := c.Super()
	if sp.Superconducting() {
		if opt.Temp <= 0 {
			return nil, errors.New("solver: superconducting simulation requires T > 0")
		}
		if opt.Cotunneling {
			return nil, errors.New("solver: quasi-particle cotunneling is not modeled (paper neglects it); disable Cotunneling for superconducting circuits")
		}
	}
	s := &Sim{
		c:         c,
		opt:       opt,
		rnd:       rng.NewBatch(opt.Seed),
		n:         make([]int, c.NumIslands()),
		v:         make([]float64, c.NumIslands()),
		vext:      c.ExternalVoltages(nil, 0),
		charge:    make([]float64, c.NumJunctions()),
		evFw:      make([]uint64, c.NumJunctions()),
		evBw:      make([]uint64, c.NumJunctions()),
		evCoop:    make([]uint64, c.NumJunctions()),
		waves:     map[int][]Sample{},
		lastProbe: map[int]float64{},
		superOn:   sp.Superconducting(),
		visited:   make([]uint32, c.NumJunctions()),
	}
	s.obs = opt.Obs
	if s.obs == nil {
		s.obs = obs.Global()
	}
	pe, err := c.PotentialEngine(opt.SparsePotentials, opt.CinvTruncation)
	if err != nil {
		return nil, fmt.Errorf("solver: %w", err)
	}
	s.pe = pe
	s.obs.PotentialEngine(pe.NNZ(), pe.TruncationRatio(), pe.Fill())
	s.buildExternalIndex()
	s.buildChannels()
	if s.superOn {
		if err := s.buildSuper(); err != nil {
			return nil, err
		}
	}
	s.buildRateEngine()
	s.buildJunctionCache()
	s.buildSecondaryCache()
	s.collectBreakpoints()
	s.fen = newFenwick(len(s.chKinds))
	s.dpVal = make([]float64, c.NumIslands())
	s.dpStamp = make([]uint32, c.NumIslands())
	s.vextScratch = make([]float64, len(s.vext))
	s.dvIsl = make([]float64, c.NumIslands())
	s.dvExt = make([]float64, len(s.vext))
	s.fullRefresh()
	return s, nil
}

// buildExternalIndex prepares the external-voltage cache and the node
// id -> external index map.
func (s *Sim) buildExternalIndex() {
	s.extIDs = s.c.Externals()
	s.extV = make([]float64, len(s.extIDs))
	s.extIdxOf = make([]int32, s.c.NumNodes())
	for i := range s.extIdxOf {
		s.extIdxOf[i] = -1
	}
	for i, id := range s.extIDs {
		s.extIdxOf[id] = int32(i)
	}
}

// nodeRef resolves a node id to its (island index, external index)
// pair; exactly one of the two is >= 0.
func (s *Sim) nodeRef(node int) (isl, ext int32) {
	if k := s.c.IslandIndex(node); k >= 0 {
		return int32(k), -1
	}
	return -1, s.extIdxOf[node]
}

// cinvSelf is the C^-1 self-term of a src->dst transfer, with the exact
// float ops of Potentials.DeltaW.
func (s *Sim) cinvSelf(src, dst int) float64 {
	return s.pe.Cinv(src, src) - 2*s.pe.Cinv(src, dst) + s.pe.Cinv(dst, dst)
}

// buildRateEngine prepares the within-run parallel pool, the shared
// rate scratch and the tabulated normal-state kernels, when enabled and
// worthwhile.
func (s *Sim) buildRateEngine() {
	nj := s.c.NumJunctions()
	if s.opt.RateTables && !s.superOn && s.opt.Temp > 0 {
		if k := orthodox.SharedKernel(); k != nil {
			s.normK = k
			s.flatK = k.Flat()
			kT := units.KB * s.opt.Temp
			s.invKT = 1 / kT
			s.ratePref = make([]float64, nj)
			for j := 0; j < nj; j++ {
				s.ratePref[j] = kT / (units.E * units.E * s.c.Junction(j).R)
			}
		}
		if s.opt.Cotunneling {
			if k := cotunnel.SharedKernel(); k != nil {
				s.cotK = k
				s.cotFlat = k.Flat()
			}
		}
	}
	s.kT = units.KB * s.opt.Temp
	switch {
	case s.superOn:
		s.kern = kernSuper
	case s.flatK != nil:
		s.kern = kernTable
	case s.opt.Temp <= 0:
		s.kern = kernExactT0
	default:
		s.kern = kernExact
	}
	// Compute-then-commit scratch, used by serial and parallel paths
	// alike so both stage into the selection tree in the same order.
	s.rateFw = make([]float64, nj)
	s.rateBw = make([]float64, nj)
	s.secRate = make([]float64, len(s.secChans))
	s.allJunc = make([]int, nj)
	for j := range s.allJunc {
		s.allJunc[j] = j
	}
	maxBatch := nj
	if n := len(s.secChans); n > maxBatch {
		maxBatch = n
	}
	if n := s.c.NumIslands(); n > maxBatch {
		maxBatch = n
	}
	if s.opt.Parallel <= 1 || maxBatch < parallelCutoff {
		return
	}
	s.pool = newPool(s.opt.Parallel)
	s.workerCalcs = make([]uint64, s.opt.Parallel)
	// Shard closures are built once: the per-dispatch cost is the pool
	// handoff alone, with no per-event closure allocation. Each calls a
	// named method, so the sharded kernels stay part of the audited
	// shard API (see internal/lint sharddiscipline).
	s.fnJuncShard = func(_, lo, hi int) { s.computeJuncList(s.allJunc[lo:hi]) }
	s.fnFlaggedShard = func(_, lo, hi int) { s.computeJuncList(s.flagged[lo:hi]) }
	s.fnSecShard = func(w, lo, hi int) {
		var calcs uint64
		s.computeSecRange(lo, hi, &calcs)
		s.workerCalcs[w] = calcs
	}
	s.fnSolveShard = func(_, lo, hi int) { s.pe.SolveRange(s.v, s.qScratch, s.vext, lo, hi) }
	// Sparse refresh solves shard by stored-nonzero count: truncation
	// leaves skewed row lengths, so equal row ranges would imbalance.
	// Sharding never changes the computed floats — rows are independent.
	s.shardBounds = s.pe.RowShards(s.opt.Parallel)
	// Backstop for callers that never Close: reclaim the worker
	// goroutines when the Sim is collected.
	runtime.SetFinalizer(s, (*Sim).Close)
}

// Close terminates the worker-pool goroutines of the parallel rate
// engine. It is optional (a finalizer reclaims unclosed pools), safe to
// call more than once, and a no-op for serial simulations; the Sim must
// not be used after.
func (s *Sim) Close() {
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
		runtime.SetFinalizer(s, nil)
	}
}

// buildChannels enumerates every event channel into the SoA arrays.
func (s *Sim) buildChannels() {
	nj := s.c.NumJunctions()
	s.b0 = make([]float64, nj)
	s.dwFw = make([]float64, nj)
	s.dwBw = make([]float64, nj)
	add := func(kind chKind, junc, junc2, src, mid, dst int) int {
		s.chKinds = append(s.chKinds, kind)
		s.chJunc = append(s.chJunc, int32(junc))
		s.chJunc2 = append(s.chJunc2, int32(junc2))
		s.chSrc = append(s.chSrc, int32(src))
		s.chMid = append(s.chMid, int32(mid))
		s.chDst = append(s.chDst, int32(dst))
		return len(s.chKinds) - 1
	}
	for j := 0; j < nj; j++ {
		jn := s.c.Junction(j)
		add(chElectron, j, -1, jn.A, -1, jn.B) // channel 2j
		add(chElectron, j, -1, jn.B, -1, jn.A) // channel 2j+1
	}
	if s.opt.Cotunneling {
		for _, ct := range cotunnel.Channels(s.c) {
			s.secChans = append(s.secChans, add(chCotunnel, ct.J1, ct.J2, ct.Src, ct.Mid, ct.Dst))
		}
	}
	if s.c.Super().Superconducting() {
		for j := 0; j < nj; j++ {
			jn := s.c.Junction(j)
			s.secChans = append(s.secChans, add(chCooper, j, -1, jn.A, -1, jn.B))
			s.secChans = append(s.secChans, add(chCooper, j, -1, jn.B, -1, jn.A))
		}
	}
}

// buildJunctionCache precomputes the flat per-junction constants the
// monomorphic rate loops read.
func (s *Sim) buildJunctionCache() {
	nj := s.c.NumJunctions()
	s.juncA = make([]int32, nj)
	s.juncB = make([]int32, nj)
	s.juncAIsl = make([]int32, nj)
	s.juncBIsl = make([]int32, nj)
	s.juncAExt = make([]int32, nj)
	s.juncBExt = make([]int32, nj)
	s.juncDenom = make([]float64, nj)
	s.juncSelfHalfE2 = make([]float64, nj)
	for j := 0; j < nj; j++ {
		jn := s.c.Junction(j)
		s.juncA[j], s.juncB[j] = int32(jn.A), int32(jn.B)
		s.juncAIsl[j], s.juncAExt[j] = s.nodeRef(jn.A)
		s.juncBIsl[j], s.juncBExt[j] = s.nodeRef(jn.B)
		s.juncDenom[j] = units.E * units.E * jn.R
		s.juncSelfHalfE2[j] = s.cinvSelf(jn.A, jn.B) * units.E * units.E / 2
	}
}

// buildSecondaryCache precomputes the per-secondary-channel constants:
// endpoint indices, dW self-terms, cotunneling resistances/prefactors
// and Cooper-pair quasi-particle escape lists.
func (s *Sim) buildSecondaryCache() {
	n := len(s.secChans)
	s.coopStart = make([]int32, n+1)
	if n == 0 {
		return
	}
	s.secSrcIsl = make([]int32, n)
	s.secSrcExt = make([]int32, n)
	s.secMidIsl = make([]int32, n)
	s.secMidExt = make([]int32, n)
	s.secDstIsl = make([]int32, n)
	s.secDstExt = make([]int32, n)
	s.secSelfSD = make([]float64, n)
	s.secSelfSM = make([]float64, n)
	s.secSelfMD = make([]float64, n)
	s.secR1 = make([]float64, n)
	s.secR2 = make([]float64, n)
	s.secPref = make([]float64, n)
	for i, ci := range s.secChans {
		src, mid, dst := int(s.chSrc[ci]), int(s.chMid[ci]), int(s.chDst[ci])
		s.secSrcIsl[i], s.secSrcExt[i] = s.nodeRef(src)
		s.secDstIsl[i], s.secDstExt[i] = s.nodeRef(dst)
		s.secMidIsl[i], s.secMidExt[i] = -1, -1
		if mid >= 0 {
			s.secMidIsl[i], s.secMidExt[i] = s.nodeRef(mid)
		}
		switch s.chKinds[ci] {
		case chCotunnel:
			s.secSelfSD[i] = s.cinvSelf(src, dst) * units.E * units.E / 2
			s.secSelfSM[i] = s.cinvSelf(src, mid) * units.E * units.E / 2
			s.secSelfMD[i] = s.cinvSelf(mid, dst) * units.E * units.E / 2
			r1 := s.c.Junction(int(s.chJunc[ci])).R
			r2 := s.c.Junction(int(s.chJunc2[ci])).R
			s.secR1[i], s.secR2[i] = r1, r2
			s.secPref[i] = units.Hbar / (12 * math.Pi * units.E * units.E * units.E * units.E * r1 * r2)
		case chCooper:
			s.secSelfSD[i] = s.cinvSelf(src, dst) * (2 * units.E) * (2 * units.E) / 2
			s.appendCooperEscape(i, src, dst)
		}
		s.coopStart[i+1] = int32(len(s.coopJunc))
	}
}

// appendCooperEscape collects the junctions whose quasi-particle rates
// make up the lifetime broadening of Cooper-pair channel i (secChans
// position), with each endpoint's post-tunneling potential shift
// precomputed. Insertion order matches the map-dedup enumeration the
// per-event path used to do, so the escape-rate sum accumulates in the
// same order.
func (s *Sim) appendCooperEscape(i, src, dst int) {
	seen := map[int]bool{}
	for _, node := range [2]int{src, dst} {
		if s.c.IslandIndex(node) < 0 {
			continue
		}
		for _, j := range s.c.JunctionsAt(node) {
			if seen[j] {
				continue
			}
			seen[j] = true
			jn := s.c.Junction(j)
			shift := func(node int) float64 {
				if k := s.c.IslandIndex(node); k >= 0 {
					return s.pe.PotentialShift(k, src, dst, 2*units.E)
				}
				return 0
			}
			s.coopJunc = append(s.coopJunc, int32(j))
			s.coopShiftA = append(s.coopShiftA, shift(jn.A))
			s.coopShiftB = append(s.coopShiftB, shift(jn.B))
		}
	}
}

// qpCache shares quasi-particle tables across simulations: a table
// depends only on (R, gap, temperature, voltage range), and parameter
// sweeps build thousands of Sims over identical junctions. Tables are
// immutable after construction, so concurrent reuse is safe.
var qpCache sync.Map // qpKey -> *super.QPTable

type qpKey struct {
	r, gap, temp, vmax float64
}

func cachedQPTable(r, gap, temp, vmax float64) (*super.QPTable, error) {
	// Bucket vmax to powers of two so nearby sweep points share tables.
	bucket := math.Pow(2, math.Ceil(math.Log2(vmax)))
	key := qpKey{r: r, gap: gap, temp: temp, vmax: bucket}
	if t, ok := qpCache.Load(key); ok {
		return t.(*super.QPTable), nil
	}
	t, err := super.NewQPTable(r, gap, gap, temp, bucket)
	if err != nil {
		return nil, err
	}
	actual, _ := qpCache.LoadOrStore(key, t)
	return actual.(*super.QPTable), nil
}

// buildSuper prepares quasi-particle tables and Josephson energies.
func (s *Sim) buildSuper() error {
	sp := s.c.Super()
	s.gap = super.Gap(sp.GapAt0, sp.Tc, s.opt.Temp)
	// Voltage range the tables must cover: gaps, biases and charging
	// energies with headroom. Beyond it the tables extrapolate into the
	// (correct) ohmic asymptote.
	maxSrc := 0.0
	for _, id := range s.c.Externals() {
		v := math.Abs(s.sourceVoltage(id, 0))
		if v > maxSrc {
			maxSrc = v
		}
	}
	maxEc := 0.0
	for _, isl := range s.c.Islands() {
		ec := units.ChargingEnergy(s.c.SumCapacitance(isl))
		if ec > maxEc {
			maxEc = ec
		}
	}
	vmax := (8*s.gap+8*maxEc)/units.E + 4*maxSrc + 20*units.KB*s.opt.Temp/units.E
	s.qpTab = make([]*super.QPTable, s.c.NumJunctions())
	s.ej = make([]float64, s.c.NumJunctions())
	for j := 0; j < s.c.NumJunctions(); j++ {
		r := s.c.Junction(j).R
		tab, err := cachedQPTable(r, s.gap, s.opt.Temp, vmax)
		if err != nil {
			return fmt.Errorf("solver: quasi-particle table for R=%g: %w", r, err)
		}
		s.qpTab[j] = tab
		s.ej[j] = super.JosephsonEnergy(r, s.gap, s.opt.Temp)
	}
	return nil
}

// collectBreakpoints merges PWL breakpoints of all sources and decides
// the step cap for continuously varying sources.
func (s *Sim) collectBreakpoints() {
	s.static = s.c.AllSourcesStatic()
	if s.static {
		return
	}
	seen := map[float64]bool{}
	minSine := math.Inf(1)
	for _, id := range s.c.Externals() {
		if p, ok := s.sourceOf(id).(PWLRamp); ok {
			// Resolved once here so nextCap avoids a per-step type
			// assertion per external.
			s.ramps = append(s.ramps, p)
		}
		switch src := s.sourceOf(id).(type) {
		case circuit.PWL:
			if src.Static() {
				continue
			}
			for _, bp := range src.T {
				if !seen[bp] {
					seen[bp] = true
					s.breaks = append(s.breaks, bp)
				}
			}
		case circuit.Sine:
			if !src.Static() && src.Freq > 0 {
				if p := 1 / src.Freq; p < minSine {
					minSine = p
				}
			}
		}
	}
	sortFloats(s.breaks)
	if !math.IsInf(minSine, 1) {
		s.maxStep = minSine / 64
	}
	// PWL ramps (non-flat segments) also need capping; handled
	// dynamically in nextCap using segment slopes.
}

func (s *Sim) sourceOf(node int) circuit.Source { return s.c.SourceOf(node) }

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
