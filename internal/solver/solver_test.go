package solver

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

const aF = units.Atto

// paperSET builds the Fig. 1b device: R = 1 MOhm, C = 1 aF junctions,
// Cg = 3 aF, symmetric bias +-Vds/2.
func paperSET(vds, vg float64) (*circuit.Circuit, circuit.SETNodes) {
	return circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: vds / 2, Vd: -vds / 2, Vg: vg,
	})
}

// setCurrent runs a SET and returns the time-averaged drain current.
// A fully blockaded device (possible at very low T where even thermal
// rates underflow) reads as zero current.
func setCurrent(t *testing.T, c *circuit.Circuit, nd circuit.SETNodes, opt Options, events uint64) float64 {
	t.Helper()
	s, err := New(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(events/5, 0); err != nil { // warm-up
		if err == ErrBlockaded {
			return 0
		}
		t.Fatal(err)
	}
	s.ResetMeasurement()
	if _, err := s.Run(events, 0); err != nil {
		if err == ErrBlockaded {
			return 0
		}
		t.Fatal(err)
	}
	return s.JunctionCurrent(nd.JuncDrain)
}

func TestHighTemperatureOhmicSeries(t *testing.T) {
	// With kT >> Ec (big capacitances) the SET is just two resistors in
	// series: I = Vds/(R1+R2). Quantitative MC validation.
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: 100 * aF,
		R2: 1e6, C2: 100 * aF,
		Cg: 300 * aF,
		Vs: 0.05, Vd: -0.05,
	})
	got := setCurrent(t, c, nd, Options{Temp: 300, Seed: 1}, 60000)
	want := 0.1 / 2e6
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("ohmic series current: got %g want %g", got, want)
	}
}

func TestCurrentContinuity(t *testing.T) {
	// The average current through both junctions of a SET must agree
	// (charge conservation on the island).
	c, nd := paperSET(0.04, 0)
	s, err := New(c, Options{Temp: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMeasurement()
	if _, err := s.Run(40000, 0); err != nil {
		t.Fatal(err)
	}
	i1 := s.JunctionCurrent(nd.JuncSource)
	i2 := s.JunctionCurrent(nd.JuncDrain)
	if math.Abs(i1-i2)/math.Abs(i1) > 0.02 {
		t.Fatalf("junction currents differ: %g vs %g", i1, i2)
	}
	if i1 <= 0 {
		t.Fatalf("positive bias should drive positive source->drain current, got %g", i1)
	}
}

func TestCoulombBlockadeThresholdT0(t *testing.T) {
	// Symmetric SET at T=0: hard blockade below Vds = e/Csum, conduction
	// above. Csum = 5 aF -> threshold 32 mV.
	vth := units.E / (5 * aF)
	c, _ := paperSET(0.6*vth, 0)
	s, err := New(c, Options{Temp: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10, 0); err != ErrBlockaded {
		t.Fatalf("below threshold at T=0: want ErrBlockaded, got %v", err)
	}
	c2, nd2 := paperSET(1.4*vth, 0)
	got := setCurrent(t, c2, nd2, Options{Temp: 0, Seed: 1}, 20000)
	if got <= 0 {
		t.Fatalf("above threshold at T=0: current %g, want > 0", got)
	}
}

func TestGateLiftsBlockade(t *testing.T) {
	// At the charge degeneracy point Vg = e/(2 Cg) the blockade vanishes
	// and the device conducts at small bias even at T=0.
	vdeg := units.E / (2 * 3 * aF)
	c, nd := paperSET(0.004, vdeg)
	got := setCurrent(t, c, nd, Options{Temp: 0, Seed: 2}, 20000)
	if got <= 0 {
		t.Fatalf("degeneracy point should conduct at T=0, got %g", got)
	}
}

func TestCoulombOscillations(t *testing.T) {
	// At small bias and low T the current is periodic in Vg with period
	// e/Cg: maxima at half-integer charge, minima at integer.
	period := units.E / (3 * aF)
	iMin := 0.0
	iMax := 0.0
	{
		c, nd := paperSET(0.01, 0)
		iMin = setCurrent(t, c, nd, Options{Temp: 5, Seed: 4}, 30000)
	}
	{
		c, nd := paperSET(0.01, period/2)
		iMax = setCurrent(t, c, nd, Options{Temp: 5, Seed: 4}, 30000)
	}
	if iMax < 3*iMin {
		t.Fatalf("no Coulomb oscillation contrast: Imin=%g Imax=%g", iMin, iMax)
	}
	// One full period later the current must return close to the minimum.
	c, nd := paperSET(0.01, period)
	iPer := setCurrent(t, c, nd, Options{Temp: 5, Seed: 4}, 30000)
	if math.Abs(iPer-iMin) > 0.35*(iMax-iMin) {
		t.Fatalf("periodicity broken: I(0)=%g I(e/Cg)=%g Imax=%g", iMin, iPer, iMax)
	}
}

func TestEquilibriumZeroCurrent(t *testing.T) {
	// At zero bias the net current must vanish within statistics.
	c, nd := paperSET(0, 0.02)
	s, err := New(c, Options{Temp: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMeasurement()
	if _, err := s.Run(50000, 0); err != nil {
		t.Fatal(err)
	}
	i := s.JunctionCurrent(nd.JuncDrain)
	// Scale: single-electron shot scale e * Gamma0.
	scale := units.E / (units.E * units.E * 1e6 / (units.KB * 10)) // e * kT/(e^2 R)
	if math.Abs(i) > 0.05*scale {
		t.Fatalf("equilibrium current %g exceeds noise bound %g", i, 0.05*scale)
	}
}

func TestCurrentSignReverses(t *testing.T) {
	c1, nd1 := paperSET(0.04, 0)
	ip := setCurrent(t, c1, nd1, Options{Temp: 5, Seed: 6}, 20000)
	c2, nd2 := paperSET(-0.04, 0)
	im := setCurrent(t, c2, nd2, Options{Temp: 5, Seed: 6}, 20000)
	if ip <= 0 || im >= 0 {
		t.Fatalf("current signs wrong: I(+V)=%g I(-V)=%g", ip, im)
	}
	if math.Abs(ip+im)/ip > 0.1 {
		t.Fatalf("I-V not antisymmetric: %g vs %g", ip, im)
	}
}

func TestAdaptiveMatchesNonAdaptive(t *testing.T) {
	// The headline accuracy claim: adaptive current within a few percent
	// of non-adaptive on the same device.
	c1, nd1 := paperSET(0.04, 0.01)
	iRef := setCurrent(t, c1, nd1, Options{Temp: 5, Seed: 7}, 60000)
	c2, nd2 := paperSET(0.04, 0.01)
	iAd := setCurrent(t, c2, nd2, Options{Temp: 5, Seed: 8, Adaptive: true}, 60000)
	if math.Abs(iAd-iRef)/math.Abs(iRef) > 0.08 {
		t.Fatalf("adaptive current %g deviates from non-adaptive %g", iAd, iRef)
	}
}

func TestAdaptiveReducesRateCalcsOnChain(t *testing.T) {
	// A chain of weakly coupled SET stages: the adaptive solver should
	// do substantially fewer rate calculations per event.
	build := func() *circuit.Circuit {
		c := circuit.New()
		gnd := c.AddNode("gnd", circuit.External)
		c.SetSource(gnd, circuit.DC(0))
		const stages = 12
		for st := 0; st < stages; st++ {
			vs := c.AddNode("", circuit.External)
			vd := c.AddNode("", circuit.External)
			c.SetSource(vs, circuit.DC(0.025))
			c.SetSource(vd, circuit.DC(-0.025))
			isl := c.AddNode("", circuit.Island)
			out := c.AddNode("", circuit.Island) // interconnect node
			c.AddJunction(vs, isl, 1e6, aF)
			c.AddJunction(isl, vd, 1e6, aF)
			c.AddCap(isl, out, 2*aF)
			c.AddCap(out, gnd, 100*aF) // big wire capacitance isolates stages
		}
		if err := c.Build(); err != nil {
			panic(err)
		}
		return c
	}
	run := func(opt Options) Stats {
		s, err := New(build(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(8000, 0); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	na := run(Options{Temp: 5, Seed: 9})
	ad := run(Options{Temp: 5, Seed: 9, Adaptive: true})
	perEvNA := float64(na.RateCalcs) / float64(na.Events)
	perEvAD := float64(ad.RateCalcs) / float64(ad.Events)
	if perEvAD > perEvNA/3 {
		t.Fatalf("adaptive rate calcs/event = %.1f, non-adaptive = %.1f: expected >3x reduction",
			perEvAD, perEvNA)
	}
}

func TestCotunnelingCarriesBlockadeCurrent(t *testing.T) {
	// Inside the blockade at low T, first-order current is exponentially
	// suppressed but cotunneling flows.
	vth := units.E / (5 * aF)
	c1, nd1 := paperSET(0.5*vth, 0)
	iSeq := setCurrent(t, c1, nd1, Options{Temp: 0.5, Seed: 10}, 4000)
	c2, nd2 := paperSET(0.5*vth, 0)
	iCot := setCurrent(t, c2, nd2, Options{Temp: 0.5, Seed: 10, Cotunneling: true}, 4000)
	if iCot < 5*math.Abs(iSeq) {
		t.Fatalf("cotunneling current %g not dominant over sequential %g in blockade", iCot, iSeq)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, uint64) {
		c, nd := paperSET(0.04, 0)
		s, err := New(c, Options{Temp: 5, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(5000, 0); err != nil {
			t.Fatal(err)
		}
		return s.JunctionCurrent(nd.JuncDrain), s.Stats().Events
	}
	i1, e1 := run()
	i2, e2 := run()
	if i1 != i2 || e1 != e2 {
		t.Fatalf("identical seeds diverged: (%g,%d) vs (%g,%d)", i1, e1, i2, e2)
	}
}

func TestSeedsProduceDifferentPaths(t *testing.T) {
	run := func(seed uint64) float64 {
		c, _ := paperSET(0.04, 0)
		s, err := New(c, Options{Temp: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(200, 0); err != nil {
			t.Fatal(err)
		}
		return s.Time()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds gave identical trajectories")
	}
}

func TestRunByTime(t *testing.T) {
	c, _ := paperSET(0.04, 0)
	s, err := New(c, Options{Temp: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 1e-7
	if _, err := s.Run(0, horizon); err != nil {
		t.Fatal(err)
	}
	if s.Time() < horizon {
		t.Fatalf("run stopped early at t=%g", s.Time())
	}
	if s.Time() > horizon*1.2 {
		t.Fatalf("run badly overshot the horizon: t=%g", s.Time())
	}
}

func TestPWLDrivenGate(t *testing.T) {
	// Drive the gate with a step; the device must switch from blockaded
	// (essentially zero current) to conducting within the run.
	c := circuit.New()
	src := c.AddNode("s", circuit.External)
	drn := c.AddNode("d", circuit.External)
	gate := c.AddNode("g", circuit.External)
	isl := c.AddNode("i", circuit.Island)
	c.SetSource(src, circuit.DC(0.005))
	c.SetSource(drn, circuit.DC(-0.005))
	vdeg := units.E / (2 * 3 * aF)
	c.SetSource(gate, circuit.PWL{T: []float64{0, 50e-9, 51e-9}, Volt: []float64{0, 0, vdeg}})
	j1 := c.AddJunction(src, isl, 1e6, aF)
	_ = j1
	j2 := c.AddJunction(isl, drn, 1e6, aF)
	c.AddCap(gate, isl, 3*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Options{Temp: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: blockaded region, up to the step.
	if _, err := s.Run(0, 45e-9); err != nil {
		t.Fatal(err)
	}
	evBefore := s.Stats().Events
	// Phase 2: after the gate step the device conducts.
	if _, err := s.Run(0, 300e-9); err != nil {
		t.Fatal(err)
	}
	evAfter := s.Stats().Events - evBefore
	if evAfter < 10*max(evBefore, 1) {
		t.Fatalf("gate step did not open the device: %d events before, %d after", evBefore, evAfter)
	}
	i := s.JunctionCurrent(j2)
	if i <= 0 {
		t.Fatalf("no current after gate opened: %g", i)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestSineDrivenGate(t *testing.T) {
	// A sinusoidal gate swings the SET through its degeneracy point
	// twice per cycle: the solver must cap its steps below the sine
	// period (no event may integrate across a rate change) and the
	// device must conduct during the open phases.
	c := circuit.New()
	src := c.AddNode("s", circuit.External)
	drn := c.AddNode("d", circuit.External)
	gate := c.AddNode("g", circuit.External)
	isl := c.AddNode("i", circuit.Island)
	c.SetSource(src, circuit.DC(0.004))
	c.SetSource(drn, circuit.DC(-0.004))
	const freq = 1e8
	vdeg := units.E / (2 * 3 * aF)
	c.SetSource(gate, circuit.Sine{Offset: vdeg / 2, Amp: vdeg, Freq: freq})
	c.AddJunction(src, isl, 1e6, aF)
	j2 := c.AddJunction(isl, drn, 1e6, aF)
	c.AddCap(gate, isl, 3*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Options{Temp: 1, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20 / freq // twenty full cycles
	if _, err := s.Run(0, horizon); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	st := s.Stats()
	// The sine cap forces at least period/64 subdivisions even when the
	// device is quiet: many steps are capped, not events.
	if st.Steps < st.Events+20*32 {
		t.Fatalf("sine capping missing: %d steps for %d events", st.Steps, st.Events)
	}
	if st.Events < 100 {
		t.Fatalf("gate modulation produced only %d events", st.Events)
	}
	if i := s.JunctionCurrent(j2); i <= 0 {
		t.Fatalf("biased, gate-modulated SET should conduct on average: %g", i)
	}
	if s.Time() < horizon {
		t.Fatalf("run stopped early at %g", s.Time())
	}
}

func TestProbes(t *testing.T) {
	c, nd := paperSET(0.04, 0)
	s, err := New(c, Options{Temp: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s.AddProbe(nd.Island)
	if _, err := s.Run(500, 0); err != nil {
		t.Fatal(err)
	}
	w := s.Waveform(nd.Island)
	if len(w) < 100 {
		t.Fatalf("probe recorded only %d samples", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i].T < w[i-1].T {
			t.Fatal("waveform timestamps not monotone")
		}
	}
}

func TestElectronCountTracksEvents(t *testing.T) {
	c, nd := paperSET(0.08, 0)
	s, err := New(c, Options{Temp: 5, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000, 0); err != nil {
		t.Fatal(err)
	}
	// The island occupation must stay physical (bounded: strong bias can
	// hold at most a few extra electrons for these capacitances).
	if n := s.ElectronCount(nd.Island); n < -5 || n > 5 {
		t.Fatalf("unphysical island occupation %d", n)
	}
}

func TestNewValidation(t *testing.T) {
	// No junctions.
	c := circuit.New()
	g := c.AddNode("g", circuit.External)
	c.SetSource(g, circuit.DC(0))
	i := c.AddNode("i", circuit.Island)
	c.AddCap(g, i, aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, Options{Temp: 1}); err == nil {
		t.Fatal("accepted circuit without junctions")
	}
	// Superconducting at T = 0.
	sc, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Super: circuit.SuperParams{GapAt0: units.MeV(0.2), Tc: 1.2},
	})
	if _, err := New(sc, Options{Temp: 0}); err == nil {
		t.Fatal("accepted superconducting circuit at T=0")
	}
	// Superconducting + cotunneling unsupported.
	if _, err := New(sc, Options{Temp: 0.05, Cotunneling: true}); err == nil {
		t.Fatal("accepted superconducting cotunneling")
	}
}
