// Tests of the sparse potential engine inside the solver: with ε = 0
// the sparse engine must reproduce the dense trajectory bit for bit
// (same events, waveforms, currents and Stats) on both the serial and
// the parallel rate engine; with ε > 0 the run must carry a positive,
// honest error bound while staying statistically indistinguishable at
// truncation thresholds far below thermal noise.
package solver_test

import (
	"testing"

	"semsim/internal/bench"
	"semsim/internal/obs"
	"semsim/internal/solver"
)

// TestSparseMatchesDense is the ε = 0 acceptance gate of the sparse
// engine: the exact sparse rows store the same floats as the dense
// inverse (only exact zeros are dropped), so every trajectory quantity
// must agree bitwise with the dense run — under the serial path, the
// adaptive solver and the parallel rate engine alike. Run under -race
// by the race target, this also exercises the nonzero-balanced refresh
// sharding for data races.
func TestSparseMatchesDense(t *testing.T) {
	if testing.Short() {
		t.Skip("MC workload in -short mode")
	}
	ex, b := workload(t, "74LS153")
	const events = 3000
	cases := []struct {
		name string
		opt  solver.Options
	}{
		{"serial", solver.Options{Temp: bench.WorkloadTemp, Seed: 41, Parallel: 1}},
		{"serial-adaptive", solver.Options{Temp: bench.WorkloadTemp, Seed: 41, Parallel: 1, Adaptive: true, RefreshEvery: 64}},
		{"parallel-adaptive", solver.Options{Temp: bench.WorkloadTemp, Seed: 41, Parallel: 4, Adaptive: true, RefreshEvery: 64}},
	}
	for _, c := range cases {
		dense := runWorkload(t, ex, b, c.opt, events)
		if dense.stats.Events == 0 {
			t.Fatalf("%s: no events simulated", c.name)
		}
		sparseOpt := c.opt
		sparseOpt.SparsePotentials = true
		sparse := runWorkload(t, ex, b, sparseOpt, events)
		requireIdentical(t, c.name, dense, sparse)
		if sparse.stats.CinvErrorBound != 0 {
			t.Fatalf("%s: exact sparse run reports error bound %g, want 0",
				c.name, sparse.stats.CinvErrorBound)
		}
	}
}

// TestTruncatedRunCarriesBound: an ε > 0 run must report a positive
// accumulated error bound in Stats and on the obs registry, and at a
// threshold of 1e-9 (potential perturbations nine decades below the
// junction voltages) the sampled event sequence must still match the
// dense run — the same argument as the rate-table test, with three
// decades more margin.
func TestTruncatedRunCarriesBound(t *testing.T) {
	if testing.Short() {
		t.Skip("MC workload in -short mode")
	}
	ex, b := workload(t, "74LS153")
	const events = 2000
	base := solver.Options{Temp: bench.WorkloadTemp, Seed: 47, Parallel: 1, Adaptive: true, RefreshEvery: 64}
	dense := runWorkload(t, ex, b, base, events)

	o := obs.New(obs.Config{})
	truncOpt := base
	truncOpt.SparsePotentials = true
	truncOpt.CinvTruncation = 1e-9
	truncOpt.Obs = o
	trunc := runWorkload(t, ex, b, truncOpt, events)

	if trunc.stats.CinvErrorBound <= 0 {
		t.Fatalf("truncated run reports error bound %g, want > 0", trunc.stats.CinvErrorBound)
	}
	if trunc.stats.CinvErrorBound > 1e-6 {
		t.Fatalf("error bound %g implausibly large for eps=1e-9", trunc.stats.CinvErrorBound)
	}
	snap := o.Registry().Snapshot()
	if snap.Gauges["solver.cinv_error_bound_v"] <= 0 {
		t.Fatal("obs gauge solver.cinv_error_bound_v not published")
	}
	if snap.Gauges["circuit.cinv_nnz"] <= 0 || snap.Gauges["circuit.cinv_truncation_ratio"] <= 0 {
		t.Fatalf("engine-shape gauges not published: %v / %v",
			snap.Gauges["circuit.cinv_nnz"], snap.Gauges["circuit.cinv_truncation_ratio"])
	}
	if trunc.stats.Events != dense.stats.Events {
		t.Fatalf("event counts diverged at eps=1e-9: dense %d vs truncated %d",
			dense.stats.Events, trunc.stats.Events)
	}
	for j := range dense.current {
		d := dense.current[j] - trunc.current[j]
		if d < 0 {
			d = -d
		}
		scale := 1e-12
		if a := dense.current[j]; a > scale || -a > scale {
			scale = a
			if scale < 0 {
				scale = -scale
			}
		}
		if d > 1e-3*scale {
			t.Fatalf("junction %d current: dense %g vs truncated %g", j, dense.current[j], trunc.current[j])
		}
	}
}
