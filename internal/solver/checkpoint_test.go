package solver

import (
	"encoding/json"
	"testing"

	"semsim/internal/circuit"
)

func TestCheckpointResumeBitExact(t *testing.T) {
	mk := func() *Sim {
		c, _ := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.02, Vd: -0.02, Vg: 0.005,
		})
		s, err := New(c, Options{Temp: 5, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Reference: straight 4000-event run.
	ref := mk()
	if _, err := ref.Run(4000, 0); err != nil {
		t.Fatal(err)
	}

	// Checkpointed: 1500 events, snapshot (through JSON, as a user
	// would persist it), 2500 more on a FRESH sim.
	a := mk()
	if _, err := a.Run(1500, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var cp2 Checkpoint
	if err := json.Unmarshal(blob, &cp2); err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.Restore(&cp2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(2500, 0); err != nil {
		t.Fatal(err)
	}

	if ref.Time() != b.Time() {
		t.Fatalf("resumed trajectory diverged in time: %g vs %g", ref.Time(), b.Time())
	}
	if ref.Stats().Events != b.Stats().Events {
		t.Fatalf("event counts differ: %d vs %d", ref.Stats().Events, b.Stats().Events)
	}
	for j := 0; j < 2; j++ {
		if ref.JunctionCharge(j) != b.JunctionCharge(j) {
			t.Fatalf("junction %d charge differs: %g vs %g", j, ref.JunctionCharge(j), b.JunctionCharge(j))
		}
		rf, rb := ref.JunctionEvents(j)
		bf, bb := b.JunctionEvents(j)
		if rf != bf || rb != bb {
			t.Fatalf("junction %d event counts differ", j)
		}
	}
}

// A checkpoint must refuse to restore under mismatched
// trajectory-relevant options: before the options hash existed, a
// resume with, say, a different C^-1 truncation or temperature silently
// produced a diverging trajectory.
func TestRestoreRejectsMismatchedOptions(t *testing.T) {
	mk := func(opt Options) *Sim {
		c, _ := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.02, Vd: -0.02, Vg: 0.005,
		})
		s, err := New(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := Options{Temp: 5, Seed: 9}
	src := mk(base)
	if _, err := src.Run(300, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]Options{
		"temperature":  {Temp: 6, Seed: 9},
		"adaptive":     {Temp: 5, Seed: 9, Adaptive: true},
		"alpha":        {Temp: 5, Seed: 9, Adaptive: true, Alpha: 0.2},
		"sparse":       {Temp: 5, Seed: 9, SparsePotentials: true},
		"cinv-eps":     {Temp: 5, Seed: 9, SparsePotentials: true, CinvTruncation: 1e-6},
		"rate-tables":  {Temp: 5, Seed: 9, RateTables: true},
		"refreshevery": {Temp: 5, Seed: 9, RefreshEvery: 77},
	}
	for name, opt := range cases {
		dst := mk(opt)
		if err := dst.Restore(cp); err == nil {
			t.Errorf("%s mismatch silently accepted", name)
		}
		dst.Close()
	}

	// Options that provably do not change the trajectory must stay
	// resumable: a different seed (the RNG state is in the snapshot) and
	// a different worker count (parallel is bit-identical to serial).
	for name, opt := range map[string]Options{
		"seed":     {Temp: 5, Seed: 12345},
		"parallel": {Temp: 5, Seed: 9, Parallel: 4},
	} {
		dst := mk(opt)
		if err := dst.Restore(cp); err != nil {
			t.Errorf("trajectory-equivalent option %s rejected: %v", name, err)
		}
		dst.Close()
	}
}

// Unversioned (or future-versioned) checkpoints must be rejected with a
// clear error rather than interpreted as valid state.
func TestRestoreRejectsWrongVersion(t *testing.T) {
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF, Vs: 0.02, Vd: -0.02,
	})
	s, err := New(c, Options{Temp: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != CheckpointVersion {
		t.Fatalf("Checkpoint wrote version %d, want %d", cp.Version, CheckpointVersion)
	}
	cp.Version = 0 // legacy pre-header JSON decodes to the zero value
	if err := s.Restore(cp); err == nil {
		t.Fatal("unversioned checkpoint accepted")
	}
	cp.Version = CheckpointVersion + 1
	if err := s.Restore(cp); err == nil {
		t.Fatal("future checkpoint version accepted")
	}
}

// Waveforms are part of the snapshot: a resumed run's probe record must
// be bit-identical to the uninterrupted run's, including decimation
// decisions.
func TestRestoreCarriesWaveforms(t *testing.T) {
	mk := func() *Sim {
		c, _ := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.02, Vd: -0.02, Vg: 0.005,
		})
		s, err := New(c, Options{Temp: 5, Seed: 21, ProbeInterval: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		s.AddProbe(c.Islands()[0])
		return s
	}
	ref := mk()
	if _, err := ref.Run(3000, 0); err != nil {
		t.Fatal(err)
	}

	a := mk()
	if _, err := a.Run(1024, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(3000-1024, 0); err != nil {
		t.Fatal(err)
	}
	island := ref.ProbeNodes()[0]
	wr, wb := ref.Waveform(island), b.Waveform(island)
	if len(wr) != len(wb) {
		t.Fatalf("resumed waveform has %d samples, uninterrupted %d", len(wb), len(wr))
	}
	for i := range wr {
		if wr[i] != wb[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, wr[i], wb[i])
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF, Vs: 0.02, Vd: -0.02,
	})
	s, err := New(c, Options{Temp: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.Electrons = append(cp.Electrons, 0)
	if err := s.Restore(cp); err == nil {
		t.Fatal("mismatched island count accepted")
	}
	cp2, _ := s.Checkpoint()
	cp2.Rng = cp2.Rng[:5]
	if err := s.Restore(cp2); err == nil {
		t.Fatal("corrupt RNG state accepted")
	}
}

// A checkpoint's Stats must restore exactly: the fullRefresh Restore
// performs to rebuild derived state is maintenance, not simulated work,
// and must not be billed to the restored counters (it used to inflate
// FullRefreshes and RateCalcs).
func TestRestoreStatsExact(t *testing.T) {
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.02, Vd: -0.02, Vg: 0.005,
	})
	a, err := New(c, Options{Temp: 5, Seed: 99, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(2000, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(c, Options{Temp: 5, Seed: 1, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(123, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if b.Stats() != cp.Stats {
		t.Fatalf("restored stats drifted from the checkpoint:\nrestored:   %+v\ncheckpoint: %+v", b.Stats(), cp.Stats)
	}
	// And restoring in place must behave the same.
	if err := a.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if a.Stats() != cp.Stats {
		t.Fatalf("in-place restored stats drifted:\nrestored:   %+v\ncheckpoint: %+v", a.Stats(), cp.Stats)
	}
}

// Restoring to an earlier time must also rewind the probe decimation
// clocks: they used to keep post-checkpoint timestamps, silently
// dropping every waveform sample until the rerun caught up with the
// abandoned future.
func TestRestoreResetsProbeClocks(t *testing.T) {
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.02, Vd: -0.02, Vg: 0.005,
	})
	island := c.Islands()[0]
	s, err := New(c, Options{Temp: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.AddProbe(island)
	if _, err := s.Run(500, 0); err != nil {
		t.Fatal(err)
	}
	// Size the decimation interval from the trajectory so ~10 events
	// pass per sample, then run onward so the probe clock advances well
	// past the checkpoint time.
	s.opt.ProbeInterval = s.Time() / 50
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2000, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(cp); err != nil {
		t.Fatal(err)
	}
	before := len(s.Waveform(island))
	if _, err := s.Run(300, 0); err != nil {
		t.Fatal(err)
	}
	after := len(s.Waveform(island))
	if after <= before {
		t.Fatalf("no waveform samples after restore (%d before, %d after): probe clocks kept future timestamps", before, after)
	}
}
