package solver

import (
	"encoding/json"
	"testing"

	"semsim/internal/circuit"
)

func TestCheckpointResumeBitExact(t *testing.T) {
	mk := func() *Sim {
		c, _ := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.02, Vd: -0.02, Vg: 0.005,
		})
		s, err := New(c, Options{Temp: 5, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Reference: straight 4000-event run.
	ref := mk()
	if _, err := ref.Run(4000, 0); err != nil {
		t.Fatal(err)
	}

	// Checkpointed: 1500 events, snapshot (through JSON, as a user
	// would persist it), 2500 more on a FRESH sim.
	a := mk()
	if _, err := a.Run(1500, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var cp2 Checkpoint
	if err := json.Unmarshal(blob, &cp2); err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.Restore(&cp2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(2500, 0); err != nil {
		t.Fatal(err)
	}

	if ref.Time() != b.Time() {
		t.Fatalf("resumed trajectory diverged in time: %g vs %g", ref.Time(), b.Time())
	}
	if ref.Stats().Events != b.Stats().Events {
		t.Fatalf("event counts differ: %d vs %d", ref.Stats().Events, b.Stats().Events)
	}
	for j := 0; j < 2; j++ {
		if ref.JunctionCharge(j) != b.JunctionCharge(j) {
			t.Fatalf("junction %d charge differs: %g vs %g", j, ref.JunctionCharge(j), b.JunctionCharge(j))
		}
		rf, rb := ref.JunctionEvents(j)
		bf, bb := b.JunctionEvents(j)
		if rf != bf || rb != bb {
			t.Fatalf("junction %d event counts differ", j)
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF, Vs: 0.02, Vd: -0.02,
	})
	s, err := New(c, Options{Temp: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.Electrons = append(cp.Electrons, 0)
	if err := s.Restore(cp); err == nil {
		t.Fatal("mismatched island count accepted")
	}
	cp2, _ := s.Checkpoint()
	cp2.Rng = cp2.Rng[:5]
	if err := s.Restore(cp2); err == nil {
		t.Fatal("corrupt RNG state accepted")
	}
}
