package solver

import (
	"math"
	"testing"

	"semsim/internal/rng"
)

func TestFenwickBasics(t *testing.T) {
	f := newFenwick(5)
	f.set(0, 1)
	f.set(2, 3)
	f.set(4, 0.5)
	if got := f.total(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("total = %g, want 4.5", got)
	}
	if f.at(2) != 3 {
		t.Fatalf("at(2) = %g", f.at(2))
	}
	f.set(2, 1)
	if got := f.total(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("total after update = %g, want 2.5", got)
	}
}

func TestFenwickNegativeClamped(t *testing.T) {
	f := newFenwick(3)
	f.set(1, -5)
	if f.total() != 0 || f.at(1) != 0 {
		t.Fatal("negative rates must clamp to zero")
	}
}

func TestFenwickFind(t *testing.T) {
	f := newFenwick(4)
	f.set(0, 1)
	f.set(1, 0)
	f.set(2, 2)
	f.set(3, 1)
	cases := []struct {
		u    float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1.0, 2}, {2.9, 2}, {3.0, 3}, {3.99, 3},
	}
	for _, c := range cases {
		if got := f.find(c.u); got != c.want {
			t.Fatalf("find(%g) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestFenwickFindNeverZeroRate(t *testing.T) {
	f := newFenwick(6)
	f.set(1, 1e-20)
	f.set(4, 2e-20)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		idx := f.find(r.Float64() * f.total())
		if f.at(idx) <= 0 {
			t.Fatalf("selected zero-rate channel %d", idx)
		}
	}
}

func TestFenwickSamplingDistribution(t *testing.T) {
	f := newFenwick(3)
	f.set(0, 1)
	f.set(1, 2)
	f.set(2, 7)
	r := rng.New(42)
	counts := [3]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[f.find(r.Float64()*f.total())]++
	}
	want := [3]float64{0.1, 0.2, 0.7}
	for i := range counts {
		got := float64(counts[i]) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Fatalf("channel %d sampled %.3f, want %.3f", i, got, want[i])
		}
	}
}

func TestFenwickRebuildMatchesIncremental(t *testing.T) {
	f := newFenwick(64)
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		f.set(r.Intn(64), r.Float64()*1e12)
	}
	before := f.total()
	f.rebuild()
	after := f.total()
	if math.Abs(before-after) > 1e-3*after {
		t.Fatalf("rebuild changed total: %g vs %g", before, after)
	}
}
