package solver

import (
	"math"
	"testing"

	"semsim/internal/rng"
)

func TestFenwickBasics(t *testing.T) {
	f := newFenwick(5)
	f.set(0, 1)
	f.set(2, 3)
	f.set(4, 0.5)
	if got := f.total(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("total = %g, want 4.5", got)
	}
	if f.at(2) != 3 {
		t.Fatalf("at(2) = %g", f.at(2))
	}
	f.set(2, 1)
	if got := f.total(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("total after update = %g, want 2.5", got)
	}
}

func TestFenwickNegativeClamped(t *testing.T) {
	f := newFenwick(3)
	f.set(1, -5)
	if f.total() != 0 || f.at(1) != 0 {
		t.Fatal("negative rates must clamp to zero")
	}
}

func TestFenwickFind(t *testing.T) {
	f := newFenwick(4)
	f.set(0, 1)
	f.set(1, 0)
	f.set(2, 2)
	f.set(3, 1)
	cases := []struct {
		u    float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1.0, 2}, {2.9, 2}, {3.0, 3}, {3.99, 3},
	}
	for _, c := range cases {
		if got := f.find(c.u); got != c.want {
			t.Fatalf("find(%g) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestFenwickFindNeverZeroRate(t *testing.T) {
	f := newFenwick(6)
	f.set(1, 1e-20)
	f.set(4, 2e-20)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		idx := f.find(r.Float64() * f.total())
		if f.at(idx) <= 0 {
			t.Fatalf("selected zero-rate channel %d", idx)
		}
	}
}

func TestFenwickSamplingDistribution(t *testing.T) {
	f := newFenwick(3)
	f.set(0, 1)
	f.set(1, 2)
	f.set(2, 7)
	r := rng.New(42)
	counts := [3]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[f.find(r.Float64()*f.total())]++
	}
	want := [3]float64{0.1, 0.2, 0.7}
	for i := range counts {
		got := float64(counts[i]) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Fatalf("channel %d sampled %.3f, want %.3f", i, got, want[i])
		}
	}
}

func TestFenwickRebuildMatchesIncremental(t *testing.T) {
	f := newFenwick(64)
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		f.set(r.Intn(64), r.Float64()*1e12)
	}
	before := f.total()
	f.rebuild()
	after := f.total()
	if math.Abs(before-after) > 1e-3*after {
		t.Fatalf("rebuild changed total: %g vs %g", before, after)
	}
}

func TestFenwickFromBulkBuild(t *testing.T) {
	weights := []float64{0.5, 0, 3, -2, 1e-9, 7}
	f := newFenwickFrom(weights)
	g := newFenwick(len(weights))
	for i, w := range weights {
		g.set(i, w)
	}
	if f.total() != g.total() {
		t.Fatalf("bulk total %g != incremental total %g", f.total(), g.total())
	}
	for i := range weights {
		if f.at(i) != g.at(i) {
			t.Fatalf("at(%d): bulk %g != incremental %g", i, f.at(i), g.at(i))
		}
	}
	if f.at(3) != 0 {
		t.Fatal("negative weight must clamp to zero in bulk build")
	}
}

func TestFenwickSingleChannel(t *testing.T) {
	f := newFenwickFrom([]float64{2.5})
	if f.total() != 2.5 {
		t.Fatalf("total = %g, want 2.5", f.total())
	}
	if got := f.find(1.0); got != 0 {
		t.Fatalf("find = %d, want 0", got)
	}
	f.stage(0, 4)
	f.flush()
	if f.total() != 4 {
		t.Fatalf("total after stage+flush = %g, want 4", f.total())
	}
}

func TestFenwickAllZeroWeights(t *testing.T) {
	f := newFenwickFrom(make([]float64, 8))
	if f.total() != 0 {
		t.Fatalf("total = %g, want 0", f.total())
	}
	// Sampling an all-zero tree is the blockade case; the solver checks
	// total() first, but find must still not walk out of bounds.
	if got := f.find(0); got < 0 || got >= 8 {
		t.Fatalf("find on empty tree returned out-of-range index %d", got)
	}
}

func TestFenwickBulkBuildVsIncrementalRandom(t *testing.T) {
	// Interleave stage/flush batches with immediate sets on one tree and
	// mirror every assignment onto a plain incremental tree: totals and
	// prefix structure must agree to rounding at every checkpoint.
	const n = 257 // off power-of-two size
	a := newFenwick(n)
	b := newFenwick(n)
	r := rng.New(99)
	for round := 0; round < 50; round++ {
		batch := 1 + r.Intn(2*n)
		for k := 0; k < batch; k++ {
			i := r.Intn(n)
			v := r.Float64() * 1e10
			if r.Intn(10) == 0 {
				v = 0 // exercise zeroing channels
			}
			a.stage(i, v)
			b.set(i, v)
		}
		a.flush()
		if math.Abs(a.total()-b.total()) > 1e-6*(1+b.total()) {
			t.Fatalf("round %d: staged total %g != incremental %g", round, a.total(), b.total())
		}
		for i := 0; i < n; i++ {
			if a.at(i) != b.at(i) {
				t.Fatalf("round %d: at(%d) %g != %g", round, i, a.at(i), b.at(i))
			}
		}
		// Both trees must sample identically for the same u after a
		// rebuild clears rounding drift.
		a.rebuild()
		b.rebuild()
		for k := 0; k < 20; k++ {
			u := r.Float64() * a.total()
			if ga, gb := a.find(u), b.find(u); ga != gb {
				t.Fatalf("round %d: find(%g) %d != %d", round, u, ga, gb)
			}
		}
	}
}

func TestFenwickStageSameIndexTwice(t *testing.T) {
	f := newFenwick(4)
	f.stage(2, 5)
	f.stage(2, 1) // second stage in the same batch must win
	if f.pendingCount() != 1 {
		t.Fatalf("pendingCount = %d, want 1 (same index dedups)", f.pendingCount())
	}
	f.flush()
	if f.at(2) != 1 || math.Abs(f.total()-1) > 1e-12 {
		t.Fatalf("at(2)=%g total=%g, want 1, 1", f.at(2), f.total())
	}
}

func TestFenwickPendingDedupAcrossBatches(t *testing.T) {
	// The dedup table is epoch-stamped: a slot from a flushed batch must
	// not be reused by a later batch, across many flush/rebuild cycles.
	const n = 16
	f := newFenwick(n)
	g := newFenwick(n)
	r := rng.New(4)
	for round := 0; round < 500; round++ {
		for k := 0; k < 3; k++ {
			i := r.Intn(n)
			v := r.Float64()
			f.stage(i, v)
			g.set(i, v)
		}
		if f.pendingCount() > 3 {
			t.Fatalf("round %d: pendingCount %d > 3 staged", round, f.pendingCount())
		}
		if round%7 == 0 {
			f.rebuild()
		} else {
			f.flush()
		}
		for i := 0; i < n; i++ {
			if f.at(i) != g.at(i) {
				t.Fatalf("round %d: at(%d) %g != %g", round, i, f.at(i), g.at(i))
			}
		}
		if math.Abs(f.total()-g.total()) > 1e-9*(1+g.total()) {
			t.Fatalf("round %d: total %g != %g", round, f.total(), g.total())
		}
	}
}

func TestFenwickDeferredFlush(t *testing.T) {
	// Staged values are visible through at() immediately; the tree only
	// catches up at flush. This is the contract the solver's deferred
	// per-event flush relies on.
	f := newFenwick(8)
	f.stage(1, 2)
	f.stage(5, 3)
	if f.at(1) != 2 || f.at(5) != 3 {
		t.Fatal("staged values must be visible through at() before flush")
	}
	if f.pendingCount() != 2 {
		t.Fatalf("pendingCount = %d, want 2", f.pendingCount())
	}
	batch, rebuilt := f.flush()
	if batch != 2 || rebuilt {
		t.Fatalf("flush = (%d, %v), want (2, false)", batch, rebuilt)
	}
	if math.Abs(f.total()-5) > 1e-12 {
		t.Fatalf("total = %g, want 5", f.total())
	}
	if batch, _ := f.flush(); batch != 0 {
		t.Fatalf("second flush reported batch %d, want 0", batch)
	}
}
