//go:build semsimdebug

// Invariant audit of the c432 benchmark deck: the full event loop —
// adaptive updates, tabulated kernels, input changes, periodic
// refreshes — must complete with zero recorded violations, on both the
// serial path and the sharded parallel rate engine.
package solver_test

import (
	"runtime"
	"testing"

	"semsim/internal/bench"
	"semsim/internal/invariant"
	"semsim/internal/solver"
)

func runC432Debug(t *testing.T, parallel int) {
	t.Helper()
	invariant.Reset()
	ex, b := workload(t, "c432")
	opt := solver.Options{
		Temp:       bench.WorkloadTemp,
		Seed:       42,
		Adaptive:   true,
		RateTables: true,
		Parallel:   parallel,
	}
	runWorkload(t, ex, b, opt, 4000)
	if n := invariant.Violations(); n != 0 {
		t.Fatalf("c432 run (Parallel=%d) recorded %d invariant violations:\n%v",
			parallel, n, invariant.Messages())
	}
}

func TestC432InvariantsSerial(t *testing.T) {
	runC432Debug(t, 1)
}

func TestC432InvariantsParallel(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		p = 2
	}
	runC432Debug(t, p)
}
