package solver

import (
	"testing"

	"semsim/internal/circuit"
)

// buildTrap wires the electron-trap memory element (storage island
// behind a two-junction barrier) with a triangular gate sweep.
func buildTrap(t *testing.T) (*circuit.Circuit, int, circuit.PWL) {
	t.Helper()
	c := circuit.New()
	word := c.AddNode("word", circuit.External)
	c.SetSource(word, circuit.DC(0))
	gnd := c.AddNode("gnd", circuit.External)
	c.SetSource(gnd, circuit.DC(0))
	gate := c.AddNode("gate", circuit.External)
	ramp := circuit.PWL{
		T:    []float64{0, 5e-6, 15e-6, 20e-6},
		Volt: []float64{0, 0.10, -0.10, 0},
	}
	c.SetSource(gate, ramp)
	mid := c.AddNode("mid", circuit.Island)
	c.AddJunction(word, mid, 1e6, 2*aF)
	c.AddCap(mid, gnd, 0.5*aF)
	store := c.AddNode("store", circuit.Island)
	c.AddJunction(mid, store, 1e6, 2*aF)
	c.AddCap(store, gnd, 6*aF)
	c.AddCap(gate, store, 6*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	return c, store, ramp
}

// TestElectronTrapHysteresis: the single-electron memory of the paper's
// introduction. Charging and discharging thresholds must differ (the
// loop), and the stored electron must survive the return to Vg = 0.
func TestElectronTrapHysteresis(t *testing.T) {
	c, store, ramp := buildTrap(t)
	s, err := New(c, Options{Temp: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	entry, exit := 0.0, 0.0
	haveEntry, haveExit := false, false
	prev := 0
	for tq := 0.1e-6; tq <= 20e-6; tq += 0.1e-6 {
		if _, err := s.Run(0, tq); err != nil && err != ErrBlockaded {
			t.Fatal(err)
		}
		n := s.ElectronCount(store)
		if n != prev {
			vg := ramp.V(tq)
			if !haveEntry && prev == 0 && n == 1 {
				entry, haveEntry = vg, true
			}
			if haveEntry && !haveExit && prev == 1 && n == 0 {
				exit, haveExit = vg, true
			}
			prev = n
		}
	}
	if !haveEntry || !haveExit {
		t.Fatalf("no complete hysteresis loop: entry=%v exit=%v", haveEntry, haveExit)
	}
	if entry <= 0 || exit >= 0 {
		t.Fatalf("thresholds not hysteretic: entry %.1f mV, exit %.1f mV", entry*1e3, exit*1e3)
	}
	if entry-exit < 0.05 {
		t.Fatalf("hysteresis window too narrow: %.1f mV", (entry-exit)*1e3)
	}
}

// TestElectronTrapRetention: with the gate held at 0 after writing, the
// bit must persist (the barrier is ~150 K of charging energy vs 1 K).
func TestElectronTrapRetention(t *testing.T) {
	c := circuit.New()
	word := c.AddNode("word", circuit.External)
	c.SetSource(word, circuit.DC(0))
	gnd := c.AddNode("gnd", circuit.External)
	c.SetSource(gnd, circuit.DC(0))
	gate := c.AddNode("gate", circuit.External)
	// Write pulse then hold at zero for a long time.
	c.SetSource(gate, circuit.PWL{
		T:    []float64{0, 2e-6, 3e-6, 4e-6},
		Volt: []float64{0, 0.10, 0.10, 0},
	})
	mid := c.AddNode("mid", circuit.Island)
	c.AddJunction(word, mid, 1e6, 2*aF)
	c.AddCap(mid, gnd, 0.5*aF)
	store := c.AddNode("store", circuit.Island)
	c.AddJunction(mid, store, 1e6, 2*aF)
	c.AddCap(store, gnd, 6*aF)
	c.AddCap(gate, store, 6*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Options{Temp: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, 3.5e-6); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	if n := s.ElectronCount(store); n != 1 {
		t.Fatalf("write failed: storage holds %d electrons", n)
	}
	// Hold for 1 ms of simulated time — nine decades past the write.
	if _, err := s.Run(0, 1e-3); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	if n := s.ElectronCount(store); n != 1 {
		t.Fatalf("bit lost during retention: storage holds %d electrons", n)
	}
}
