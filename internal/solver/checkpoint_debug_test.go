//go:build semsimdebug

package solver

import (
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/invariant"
)

// Restore rewrites the electron configuration under the solver, so the
// incremental potentials are stale by construction when the rebuild
// refresh runs. The potential-drift invariant must be disarmed across
// that refresh — restoring into a Sim whose trajectory diverged from
// the checkpoint used to record a spurious drift violation.
func TestRestoreNoSpuriousDriftViolation(t *testing.T) {
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.02, Vd: -0.02, Vg: 0.005,
	})
	mk := func(seed uint64) *Sim {
		s, err := New(c, Options{Temp: 5, Seed: seed, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk(31)
	if _, err := a.Run(1501, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	invariant.Reset()
	// Walk a second sim along different trajectories until its island
	// occupation differs from the checkpoint's, then restore: the drift
	// check would now compare potentials of two different configurations
	// if it stayed armed.
	restoredWithDifferentN := false
	for seed := uint64(1); seed <= 20 && !restoredWithDifferentN; seed++ {
		b := mk(seed)
		if _, err := b.Run(100, 0); err != nil {
			t.Fatal(err)
		}
		differs := false
		for i, n := range b.n {
			if n != cp.Electrons[i] {
				differs = true
				break
			}
		}
		if !differs {
			continue
		}
		restoredWithDifferentN = true
		if err := b.Restore(cp); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Run(200, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !restoredWithDifferentN {
		t.Fatal("no trial sim reached a different electron configuration; test needs retuning")
	}
	if n := invariant.Violations(); n != 0 {
		t.Fatalf("restore recorded %d invariant violations:\n%v", n, invariant.Messages())
	}
}
