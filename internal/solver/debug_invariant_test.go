//go:build semsimdebug

package solver

// White-box tests of the semsimdebug invariant layer: a healthy
// simulation records no violations, and deliberately corrupted state is
// caught — proving the checks are live, not vacuously green.

import (
	"math"
	"testing"

	"semsim/internal/invariant"
)

func debugSim(t *testing.T) *Sim {
	t.Helper()
	c, _ := paperSET(0.01, 0)
	s, err := New(c, Options{Temp: 4.2, Seed: 11, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInvariantChecksCleanOnSET(t *testing.T) {
	invariant.Reset()
	s := debugSim(t)
	if _, err := s.Run(5000, 0); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	if n := invariant.Violations(); n != 0 {
		t.Fatalf("healthy run recorded %d violations:\n%v", n, invariant.Messages())
	}
}

func TestInvariantCatchesFenwickCorruption(t *testing.T) {
	invariant.Reset()
	s := debugSim(t)
	if _, err := s.Run(100, 0); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	if invariant.Violations() != 0 {
		t.Fatalf("pre-corruption violations: %v", invariant.Messages())
	}
	// Desynchronize the value array from the tree, and poison a rate.
	s.fen.vals[0] += 1e12
	s.debugCheckFenwick()
	if invariant.Violations() == 0 {
		t.Fatal("fenwick total/naive-sum divergence not detected")
	}
	invariant.Reset()
	s.fen.vals[1] = math.NaN()
	s.debugCheckFenwick()
	if invariant.Violations() == 0 {
		t.Fatal("NaN channel rate not detected")
	}
	invariant.Reset()
}

func TestInvariantCatchesElectronImbalance(t *testing.T) {
	invariant.Reset()
	s := debugSim(t)
	if _, err := s.Run(100, 0); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	// Spurious electrons break both conservation bookkeeping and the
	// incremental-potential audit (s.v no longer matches s.n). Two of
	// them, so no single-carrier channel shape can legitimize the total.
	pre := s.islandElectronSum()
	s.n[0] += 2
	s.debugCheckEvent(0, pre)
	if invariant.Violations() == 0 {
		t.Fatal("electron imbalance not detected")
	}
	invariant.Reset()
	s.dbgInit = true
	s.debugCheckPotentialDrift()
	if invariant.Violations() == 0 {
		t.Fatal("potential drift from corrupted electron count not detected")
	}
	invariant.Reset()
}
