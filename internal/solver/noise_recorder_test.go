package solver

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/invariant"
	"semsim/internal/noise"
	"semsim/internal/units"
)

// noiseSET builds a double-junction SET biased far above threshold at
// T = 0 with a noise recorder on both junctions, warms it up, lets the
// auto windows calibrate and resets the measurement — the exact phase
// sequence the jobs engine runs.
func noiseSET(tb testing.TB, r1, r2 float64, seed uint64, omegas []float64) (*Sim, circuit.SETNodes) {
	tb.Helper()
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: r1, C1: aF, R2: r2, C2: aF, Cg: 3 * aF,
		Vs: 0.1, Vd: -0.1,
	})
	s, err := New(c, Options{Temp: 0, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.EnableNoise(noise.Config{Juncs: []noise.JuncConfig{
		{Junc: nd.JuncSource, Omegas: omegas},
		{Junc: nd.JuncDrain},
	}}); err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Run(500, 0); err != nil {
		tb.Fatal(err)
	}
	s.AutoNoiseWindows()
	s.ResetMeasurement()
	return s, nd
}

// foldNoiseRuns measures `runs` independent devices and folds the
// per-run statistics exactly as the jobs engine does.
func foldNoiseRuns(tb testing.TB, r1, r2 float64, runs int, events uint64, omegas []float64, junc func(circuit.SETNodes) int) noise.Stats {
	tb.Helper()
	rs := make([]noise.RunStats, 0, runs)
	for r := 0; r < runs; r++ {
		s, nd := noiseSET(tb, r1, r2, 1000+uint64(r), omegas)
		if _, err := s.Run(events, 0); err != nil {
			tb.Fatal(err)
		}
		st, ok := s.NoiseStats(junc(nd))
		if !ok {
			tb.Fatal("recorded junction reports no noise stats")
		}
		rs = append(rs, st)
		s.Close()
	}
	return noise.Fold(rs)
}

// TestNoisePoissonianLimit: with one junction a thousandfold
// bottleneck, transfers are uncorrelated Poisson events and the exact
// Fano factor (Γ₁²+Γ₂²)/(Γ₁+Γ₂)² is within a tenth of a percent of 1.
// The folded estimate must agree within 2 cross-run standard errors.
func TestNoisePoissonianLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run statistics under -short")
	}
	st := foldNoiseRuns(t, 1e9, 1e6, 16, 20000, nil, func(nd circuit.SETNodes) int { return nd.JuncSource })
	if st.Runs != 16 || st.Windows == 0 {
		t.Fatalf("fold saw %d runs, %d windows", st.Runs, st.Windows)
	}
	if st.FanoErr <= 0 {
		t.Fatalf("no cross-run error estimate: %+v", st)
	}
	sigma := math.Max(st.FanoErr, 0.01)
	if math.Abs(st.Fano-1) > 2*sigma {
		t.Errorf("bottleneck SET Fano = %.4f ± %.4f, want 1 within 2σ", st.Fano, st.FanoErr)
	}
}

// TestNoisePlateauSuppression: the symmetric double junction at the
// same bias shows sub-Poissonian partition noise, F = 1/2 (Korotkov;
// de Jong & Beenakker) — measurably below 1.
func TestNoisePlateauSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run statistics under -short")
	}
	st := foldNoiseRuns(t, 1e6, 1e6, 12, 20000, nil, func(nd circuit.SETNodes) int { return nd.JuncDrain })
	if st.Fano < 0.35 || st.Fano > 0.7 {
		t.Errorf("symmetric SET Fano = %.4f ± %.4f, want ~0.5", st.Fano, st.FanoErr)
	}
	if st.Fano+2*st.FanoErr >= 1 {
		t.Errorf("suppression not significant: F = %.4f ± %.4f", st.Fano, st.FanoErr)
	}
}

// TestNoiseSpectralWhiteTail: in the white band (ωT ≫ 1 yet ω far
// below the tunnel rate) the current spectral density equals 2eI·F.
// The symmetric SET makes this a real discrimination test — 2eI·F is
// half the naive full shot noise 2eI.
func TestNoiseSpectralWhiteTail(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run statistics under -short")
	}
	// Per-junction tunnel rates are ~5e11/s (1 MΩ junctions, 0.2 V
	// bias) and a 20000-event run spans ~2e-8 s. ω ∈ [3e9, 3e10] rad/s
	// keeps ωT ≳ 60 (negligible finite-window leakage) and ω/Γ ≲ 0.06
	// (well below the Lorentzian roll-off back to full shot noise).
	omegas := make([]float64, 16)
	for i := range omegas {
		omegas[i] = 3e9 * math.Pow(10, float64(i)/float64(len(omegas)-1))
	}
	st := foldNoiseRuns(t, 1e6, 1e6, 24, 20000, omegas, func(nd circuit.SETNodes) int { return nd.JuncSource })
	if st.Fano <= 0 || st.MeanI == 0 {
		t.Fatalf("degenerate fold: %+v", st)
	}
	want := 2 * units.E * math.Abs(st.MeanI) * st.Fano
	full := 2 * units.E * math.Abs(st.MeanI)
	mean := 0.0
	for _, s := range st.S {
		mean += s
	}
	mean /= float64(len(st.S))
	if math.Abs(mean-want)/want > 0.25 {
		t.Errorf("band-averaged S = %g, want 2eI·F = %g within 25%% (F = %.3f)", mean, want, st.Fano)
	}
	if mean >= 0.75*full {
		t.Errorf("S = %g does not discriminate from full shot noise 2eI = %g", mean, full)
	}
}

// TestNoisePassiveTrajectory: attaching a recorder must not perturb
// the simulation — identical seed, bit-identical trajectory.
func TestNoisePassiveTrajectory(t *testing.T) {
	mk := func(withNoise bool) *Sim {
		c, nd := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.1, Vd: -0.1,
		})
		s, err := New(c, Options{Temp: 2, Seed: 99, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		if withNoise {
			if err := s.EnableNoise(noise.Config{Juncs: []noise.JuncConfig{
				{Junc: nd.JuncSource, Omegas: []float64{1e8}, Window: 1e-9, Lags: 4, Bin: 1e-9},
			}}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	a, b := mk(true), mk(false)
	defer a.Close()
	defer b.Close()
	if _, err := a.Run(20000, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(20000, 0); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Time()) != math.Float64bits(b.Time()) {
		t.Errorf("recorder perturbed the clock: %g vs %g", a.Time(), b.Time())
	}
	if a.Stats() != b.Stats() {
		t.Errorf("recorder perturbed event statistics:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	for j := 0; j < 2; j++ {
		if math.Float64bits(a.JunctionCharge(j)) != math.Float64bits(b.JunctionCharge(j)) {
			t.Errorf("junction %d charge diverged: %g vs %g", j, a.JunctionCharge(j), b.JunctionCharge(j))
		}
	}
}

// TestNoiseResetClearsState is the session-reuse regression test at
// the solver level: Reset must clear the accumulators AND roll
// auto-calibrated windows back, so a reused simulation measures
// exactly what a freshly built one would.
func TestNoiseResetClearsState(t *testing.T) {
	build := func(seed uint64) (*Sim, circuit.SETNodes) {
		c, nd := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.1, Vd: -0.1,
		})
		s, err := New(c, Options{Temp: 0, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnableNoise(noise.Config{Juncs: []noise.JuncConfig{
			{Junc: nd.JuncSource, Omegas: []float64{1e8, 1e9}}, // auto window
		}}); err != nil {
			t.Fatal(err)
		}
		return s, nd
	}
	measure := func(s *Sim, nd circuit.SETNodes) noise.RunStats {
		if _, err := s.Run(500, 0); err != nil {
			t.Fatal(err)
		}
		s.AutoNoiseWindows()
		s.ResetMeasurement()
		if _, err := s.Run(5000, 0); err != nil {
			t.Fatal(err)
		}
		st, ok := s.NoiseStats(nd.JuncSource)
		if !ok {
			t.Fatal("no noise stats")
		}
		return st
	}
	// Reused path: run once under seed 5 (polluting the accumulators
	// and calibrating an auto window), then Reset to seed 6.
	s, nd := build(5)
	defer s.Close()
	measure(s, nd)
	if err := s.Reset(6, nil); err != nil {
		t.Fatal(err)
	}
	reused := measure(s, nd)

	fresh, nd2 := build(6)
	defer fresh.Close()
	want := measure(fresh, nd2)

	if reused.Events != want.Events || reused.Windows != want.Windows ||
		math.Float64bits(reused.Window) != math.Float64bits(want.Window) ||
		math.Float64bits(reused.SumQ) != math.Float64bits(want.SumQ) ||
		math.Float64bits(reused.SumQ2) != math.Float64bits(want.SumQ2) ||
		math.Float64bits(reused.MeanI) != math.Float64bits(want.MeanI) {
		t.Errorf("reused session noise diverged from fresh build:\nreused: %+v\nfresh:  %+v", reused, want)
	}
	for k := range want.S {
		if math.Float64bits(reused.S[k]) != math.Float64bits(want.S[k]) {
			t.Errorf("S[%d] diverged: %g vs %g", k, reused.S[k], want.S[k])
		}
	}
}

// TestNoiseCheckpointRoundTrip: an interrupted-and-resumed run's noise
// statistics must be bit-identical to the uninterrupted run's,
// including the auto-calibrated window carried in the snapshot.
func TestNoiseCheckpointRoundTrip(t *testing.T) {
	omegas := []float64{1e8, 3e8}
	ref, nd := noiseSET(t, 1e6, 1e6, 77, omegas)
	defer ref.Close()
	if _, err := ref.Run(3000, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := ref.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Noise == nil {
		t.Fatal("checkpoint of a noise-recording run carries no noise state")
	}
	if _, err := ref.Run(3000, 0); err != nil {
		t.Fatal(err)
	}
	want, _ := ref.NoiseStats(nd.JuncSource)

	// Resume into a freshly built simulation. EnableNoise must come
	// first — the checkpoint carries accumulator state.
	c2, nd2 := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.1, Vd: -0.1,
	})
	s2, err := New(c2, Options{Temp: 0, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Restore(cp); err == nil {
		t.Fatal("Restore accepted noise checkpoint without EnableNoise")
	}
	if err := s2.EnableNoise(noise.Config{Juncs: []noise.JuncConfig{
		{Junc: nd2.JuncSource, Omegas: omegas},
		{Junc: nd2.JuncDrain},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(3000, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := s2.NoiseStats(nd2.JuncSource)
	if got.Events != want.Events || got.Windows != want.Windows ||
		math.Float64bits(got.Window) != math.Float64bits(want.Window) ||
		math.Float64bits(got.SumQ) != math.Float64bits(want.SumQ) ||
		math.Float64bits(got.SumQ2) != math.Float64bits(want.SumQ2) ||
		math.Float64bits(got.MeanI) != math.Float64bits(want.MeanI) ||
		math.Float64bits(got.T) != math.Float64bits(want.T) {
		t.Errorf("resumed noise stats diverged:\nresumed: %+v\nstraight: %+v", got, want)
	}
	for k := range want.S {
		if math.Float64bits(got.S[k]) != math.Float64bits(want.S[k]) {
			t.Errorf("resumed S[%d] diverged: %g vs %g", k, got.S[k], want.S[k])
		}
	}

	// The reverse direction must also fail loudly: a noise-enabled
	// simulation cannot restore a plain checkpoint.
	cp.Noise = nil
	if err := s2.Restore(cp); err == nil {
		t.Fatal("noise-enabled Restore accepted a checkpoint without noise state")
	}
}

// BenchmarkStepHotPathNoise measures the full per-event loop with a
// recorder accumulating windows and a 3-point spectral grid — the
// configuration the <5% overhead budget refers to.
func BenchmarkStepHotPathNoise(b *testing.B) {
	s, err := New(hotChain(b, 16), Options{Temp: 2, Seed: 7, RateTables: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableNoise(noise.Config{Juncs: []noise.JuncConfig{
		{Junc: 0, Omegas: []float64{1e8, 1e9, 1e10}, Window: 1e-9},
	}}); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(64, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNoiseHotPathZeroAlloc extends the zero-alloc CI gate to the
// recording path: the event loop with noise accumulation enabled must
// stay allocation-free.
func TestNoiseHotPathZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking under -short")
	}
	if invariant.Enabled {
		t.Skip("semsimdebug invariant checks allocate scratch buffers by design")
	}
	res := testing.Benchmark(BenchmarkStepHotPathNoise)
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("StepHotPathNoise: %d allocs/op, want 0 (recording must be allocation-free)", allocs)
	}
}
