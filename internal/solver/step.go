package solver

import (
	"math"

	"semsim/internal/cotunnel"
	"semsim/internal/orthodox"
	"semsim/internal/super"
	"semsim/internal/units"
)

// --- Potentials ---
//
// Island potentials are updated exactly and incrementally after every
// event: moving charge mq from src to dst shifts island k by
// mq*(Cinv[k][src] - Cinv[k][dst]), a fused pass over two contiguous
// C^-1 rows. This costs O(islands) floating-point adds per event —
// orders of magnitude cheaper than the O(junctions) exp-laden rate
// recomputation the adaptive solver avoids, so adaptivity is applied
// to rates only. (An earlier lazy-replay scheme deferred these adds
// per island; its bookkeeping dominated the adaptive solver's cost on
// the largest benchmarks.)

// shiftPotentials applies the exact potential change of one transfer to
// every island.
func (s *Sim) shiftPotentials(src, dst int, mq float64) {
	v := s.v
	if k := s.c.IslandIndex(src); k >= 0 {
		row := s.c.CinvRow(k)
		for i := range v {
			v[i] += mq * row[i]
		}
	}
	if k := s.c.IslandIndex(dst); k >= 0 {
		row := s.c.CinvRow(k)
		for i := range v {
			v[i] -= mq * row[i]
		}
	}
}

// nodeV returns the potential of any node.
func (s *Sim) nodeV(node int) float64 {
	if k := s.c.IslandIndex(node); k >= 0 {
		return s.v[k]
	}
	return s.c.SourceVoltage(node, s.t)
}

// --- Rate computation ---

// elecRate computes the first-order rate of moving one electron
// src -> dst through junction j (quasi-particle rate in the
// superconducting state) and returns both the rate and the dW used.
func (s *Sim) elecRate(j, src, dst int) (rate, dw float64) {
	s.stats.RateCalcs++
	dw = s.c.DeltaWElectron(src, dst, s.nodeV(src), s.nodeV(dst))
	if s.superOn {
		return s.qpTab[j].Rate(dw), dw
	}
	return orthodox.Rate(dw, s.c.Junction(j).R, s.opt.Temp), dw
}

// recalcJunction refreshes both direction rates of junction j, caching
// the free-energy changes and resetting the accumulated testing factor.
func (s *Sim) recalcJunction(j int) {
	jn := s.c.Junction(j)
	fw, dwFw := s.elecRate(j, jn.A, jn.B)
	bw, dwBw := s.elecRate(j, jn.B, jn.A)
	s.dwFw[j], s.dwBw[j] = dwFw, dwBw
	s.b0[j] = 0
	s.fen.set(s.chFw[j], fw)
	s.fen.set(s.chBw[j], bw)
}

// recalcSecondary refreshes every cotunneling and Cooper-pair channel
// (the non-adaptive solver of Fig. 3's flow).
func (s *Sim) recalcSecondary() {
	for _, ci := range s.secChans {
		ch := &s.chans[ci]
		switch ch.kind {
		case chCotunnel:
			s.fen.set(ci, s.cotunnelRate(ch))
		case chCooper:
			s.fen.set(ci, s.cooperRate(ch))
		}
	}
}

func (s *Sim) cotunnelRate(ch *channel) float64 {
	s.stats.RateCalcs++
	vSrc, vMid, vDst := s.nodeV(ch.src), s.nodeV(ch.mid), s.nodeV(ch.dst)
	dw := s.c.DeltaWElectron(ch.src, ch.dst, vSrc, vDst)
	e1 := s.c.DeltaWElectron(ch.src, ch.mid, vSrc, vMid)
	e2 := s.c.DeltaWElectron(ch.mid, ch.dst, vMid, vDst)
	return cotunnel.Rate(dw, e1, e2, s.c.Junction(ch.junc).R, s.c.Junction(ch.junc2).R, s.opt.Temp)
}

// cooperRate computes the incoherent resonant Cooper-pair rate for a
// channel. The lifetime broadening gamma is the total quasi-particle
// escape rate out of the post-tunneling state (the events that complete
// a JQP/DJQP cycle), floored at CPWidthFloor * gap / hbar.
func (s *Sim) cooperRate(ch *channel) float64 {
	s.stats.RateCalcs++
	ej := s.ej[ch.junc]
	if ej <= 0 {
		return 0
	}
	dw2 := s.c.DeltaW(ch.src, ch.dst, 2*units.E, s.nodeV(ch.src), s.nodeV(ch.dst))
	gamma := s.qpEscapeAfter(ch)
	if floor := s.opt.CPWidthFloor * s.gap / units.Hbar; gamma < floor {
		gamma = floor
	}
	return super.CooperPairRate(dw2, ej, gamma)
}

// qpEscapeAfter sums the quasi-particle rates available after the
// Cooper pair of channel ch has tunneled, over every junction touching
// the affected islands.
func (s *Sim) qpEscapeAfter(ch *channel) float64 {
	shift := func(node int) float64 {
		if k := s.c.IslandIndex(node); k >= 0 {
			return s.c.PotentialShift(k, ch.src, ch.dst, 2*units.E)
		}
		return 0
	}
	post := func(node int) float64 { return s.nodeV(node) + shift(node) }
	var js []int
	seen := map[int]bool{}
	for _, node := range [2]int{ch.src, ch.dst} {
		if s.c.IslandIndex(node) < 0 {
			continue
		}
		for _, j := range s.c.JunctionsAt(node) {
			if !seen[j] {
				seen[j] = true
				js = append(js, j)
			}
		}
	}
	total := 0.0
	for _, j := range js {
		jn := s.c.Junction(j)
		va, vb := post(jn.A), post(jn.B)
		total += s.qpTab[j].Rate(s.c.DeltaWElectron(jn.A, jn.B, va, vb))
		total += s.qpTab[j].Rate(s.c.DeltaWElectron(jn.B, jn.A, vb, va))
		s.stats.RateCalcs += 2
	}
	return total
}

// --- Refresh paths ---

// fullRefresh recomputes everything exactly: external voltages, island
// potentials from scratch (the O(islands^2) matrix-vector product; with
// the refresh interval scaled to the junction count its amortized cost
// is O(islands) per event), all channel rates, and the selection tree.
func (s *Sim) fullRefresh() {
	s.stats.FullRefreshes++
	s.vext = s.c.ExternalVoltages(s.vext, s.t)
	s.v = s.c.IslandPotentials(s.v, s.n, s.t)
	for j := 0; j < s.c.NumJunctions(); j++ {
		s.recalcJunction(j)
	}
	s.recalcSecondary()
	s.fen.rebuild()
}

// nonAdaptiveUpdate recomputes all rates after an event (potentials are
// refreshed lazily but every junction touches its nodes, so everything
// becomes fresh).
func (s *Sim) nonAdaptiveUpdate() {
	for j := 0; j < s.c.NumJunctions(); j++ {
		s.recalcJunction(j)
	}
	s.recalcSecondary()
}

// adaptiveUpdate implements Algorithm 1 after the event on channel ch:
// test the event junction(s), flag and recompute those whose potential
// change exceeds the threshold, and spill to neighbours of flagged
// junctions.
func (s *Sim) adaptiveUpdate(ch *channel, visited []uint32, stamp uint32, queue []int) []int {
	deltaP := func(node int) float64 {
		if k := s.c.IslandIndex(node); k >= 0 {
			return s.c.PotentialShift(k, ch.src, ch.dst, ch.q)
		}
		return 0
	}
	queue = queue[:0]
	push := func(j int) {
		if visited[j] != stamp {
			visited[j] = stamp
			queue = append(queue, j)
		}
	}
	push(ch.junc)
	if ch.junc2 >= 0 {
		push(ch.junc2)
	}
	for head := 0; head < len(queue); head++ {
		j := queue[head]
		jn := s.c.Junction(j)
		b := s.b0[j] + deltaP(jn.A) - deltaP(jn.B)
		s.stats.Tested++
		thr := math.Min(math.Abs(s.dwFw[j]), math.Abs(s.dwBw[j]))
		if units.E*math.Abs(b) >= s.opt.Alpha*thr {
			s.stats.Flagged++
			s.recalcJunction(j)
			for _, nb := range s.c.JunctionNeighbors(j) {
				push(nb)
			}
		} else {
			s.b0[j] = b
		}
	}
	s.recalcSecondary()
	return queue
}

// handleInputChange reacts to source voltages moving between t0 and the
// current time: island potentials get the exact external shift, and
// junction rates are either all recomputed (non-adaptive) or tested
// from the junctions in contact with the changed inputs (adaptive).
func (s *Sim) handleInputChange(visited []uint32, stamp uint32, queue []int) []int {
	vextNew := s.c.ExternalVoltages(nil, s.t)
	changed := false
	for i := range vextNew {
		if vextNew[i] != s.vext[i] {
			changed = true
			break
		}
	}
	if !changed {
		return queue
	}
	// Apply the exact external shift to every island potential.
	ni := s.c.NumIslands()
	dv := make([]float64, ni)
	s.c.ExternalDelta(dv, s.vext, vextNew)
	for k := 0; k < ni; k++ {
		s.v[k] += dv[k]
	}
	dext := make(map[int]float64)
	for i, id := range s.c.Externals() {
		if vextNew[i] != s.vext[i] {
			dext[id] = vextNew[i] - s.vext[i]
		}
	}
	s.vext = vextNew

	if !s.opt.Adaptive {
		s.nonAdaptiveUpdate()
		return queue
	}
	// Inputs couple to junctions through arbitrary capacitor networks
	// (a logic gate's input is a pure capacitor), so there is no local
	// junction set to spill from. Instead the exact potential shift of
	// every node is already known (dv, dext): fold it into each
	// junction's accumulated testing factor — O(J) arithmetic with no
	// rate evaluations — and recalculate only those over threshold.
	deltaP := func(node int) float64 {
		if k := s.c.IslandIndex(node); k >= 0 {
			return dv[k]
		}
		return dext[node]
	}
	for j := 0; j < s.c.NumJunctions(); j++ {
		jn := s.c.Junction(j)
		b := s.b0[j] + deltaP(jn.A) - deltaP(jn.B)
		s.stats.Tested++
		thr := math.Min(math.Abs(s.dwFw[j]), math.Abs(s.dwBw[j]))
		if units.E*math.Abs(b) >= s.opt.Alpha*thr {
			s.stats.Flagged++
			s.recalcJunction(j)
		} else {
			s.b0[j] = b
		}
	}
	s.recalcSecondary()
	return queue
}

// --- Event application ---

// apply moves the channel's carriers, updates every island potential
// exactly, and accumulates measured charge, event counts and dissipated
// energy per junction.
func (s *Sim) apply(ch *channel) {
	// Free energy released by this event (evaluated with the exact
	// pre-event potentials; thermal fluctuations can make it negative).
	dw := s.c.DeltaW(ch.src, ch.dst, ch.q, s.nodeV(ch.src), s.nodeV(ch.dst))
	s.stats.Dissipated += -dw
	s.c.ApplyTransfer(s.n, ch.src, ch.dst, ch.carriers)
	s.shiftPotentials(ch.src, ch.dst, ch.q)
	// Conventional current A->B is positive charge A->B; electrons
	// moving src->dst carry -q, so charge +q flows dst->src.
	sign := func(jid int, src int) float64 {
		if s.c.Junction(jid).A == src {
			s.evFw[jid]++
			return -1 // electrons A->B: conventional charge B->A
		}
		s.evBw[jid]++
		return 1
	}
	switch ch.kind {
	case chCotunnel:
		s.stats.CotunnelEvents++
		s.charge[ch.junc] += sign(ch.junc, ch.src) * ch.q
		s.charge[ch.junc2] += sign(ch.junc2, ch.mid) * ch.q
	case chCooper:
		s.stats.CooperEvents++
		s.evCoop[ch.junc]++
		s.charge[ch.junc] += sign(ch.junc, ch.src) * ch.q
	default:
		s.charge[ch.junc] += sign(ch.junc, ch.src) * ch.q
	}
}

// --- Main loop ---

// nextCap returns the earliest time at which the solver must stop and
// re-evaluate inputs (PWL breakpoint, ramp subdivision or sine cap),
// or +Inf for static circuits.
func (s *Sim) nextCap() float64 {
	cap := math.Inf(1)
	if s.horizon > 0 {
		cap = s.horizon
	}
	if s.static {
		return cap
	}
	for _, bp := range s.breaks {
		if bp > s.t {
			if bp < cap {
				cap = bp
			}
			break
		}
	}
	if s.maxStep > 0 && s.t+s.maxStep < cap {
		cap = s.t + s.maxStep
	}
	// Inside a moving PWL ramp, subdivide the segment.
	for _, id := range s.c.Externals() {
		p, ok := s.sourceOf(id).(PWLRamp)
		if !ok {
			continue
		}
		if step := p.RampStep(s.t); step > 0 && s.t+step < cap {
			cap = s.t + step
		}
	}
	return cap
}

// PWLRamp is implemented by sources that need step subdivision while
// their output is actively changing (circuit.PWL qualifies through the
// adapter below).
type PWLRamp interface {
	RampStep(t float64) float64
}

// Step advances the simulation by one iteration. It returns true if a
// tunnel event was applied, false if the step was capped by an input
// change. ErrBlockaded is returned when nothing can ever happen again.
func (s *Sim) Step() (bool, error) {
	s.stats.Steps++
	total := s.fen.total()
	cap := s.nextCap()
	if total <= 0 || math.IsInf(1/total, 1) {
		if math.IsInf(cap, 1) {
			return false, ErrBlockaded
		}
		s.t = cap
		s.scratch = s.handleInputChange(s.visited, s.bumpStamp(), s.scratch)
		s.recordProbes()
		return false, nil
	}
	dt := s.rnd.Exp(total)
	if s.t+dt > cap {
		// Stopping a Poisson process mid-interval and redrawing is exact
		// (memorylessness), so capping at breakpoints, ramp subdivisions
		// and the run horizon does not bias the dynamics.
		s.t = cap
		s.scratch = s.handleInputChange(s.visited, s.bumpStamp(), s.scratch)
		s.recordProbes()
		return false, nil
	}
	s.t += dt
	idx := s.fen.find(s.rnd.Float64() * total)
	ch := &s.chans[idx]
	s.apply(ch)
	s.stats.Events++
	if s.opt.RefreshEvery > 0 && s.stats.Events%uint64(s.opt.RefreshEvery) == 0 {
		s.fullRefresh()
	} else if s.opt.Adaptive {
		s.scratch = s.adaptiveUpdate(ch, s.visited, s.bumpStamp(), s.scratch)
	} else {
		s.nonAdaptiveUpdate()
	}
	s.recordProbes()
	return true, nil
}

// Run advances until maxEvents tunnel events have been applied or the
// simulated time reaches maxTime (whichever is positive and comes
// first). A timed run never overshoots maxTime: the last Monte Carlo
// waiting interval is truncated at the horizon, which is unbiased by
// memorylessness and keeps waveforms and current averaging windows
// exact. It returns the number of events applied.
func (s *Sim) Run(maxEvents uint64, maxTime float64) (uint64, error) {
	if maxTime > 0 {
		s.horizon = maxTime
		defer func() { s.horizon = 0 }()
	}
	start := s.stats.Events
	for {
		if maxEvents > 0 && s.stats.Events-start >= maxEvents {
			return s.stats.Events - start, nil
		}
		if maxTime > 0 && s.t >= maxTime {
			return s.stats.Events - start, nil
		}
		if _, err := s.Step(); err != nil {
			return s.stats.Events - start, err
		}
	}
}
