package solver

import (
	"math"

	"semsim/internal/cotunnel"
	"semsim/internal/invariant"
	"semsim/internal/numeric"
	"semsim/internal/obs"
	"semsim/internal/orthodox"
	"semsim/internal/super"
	"semsim/internal/units"
)

// --- Potentials ---
//
// Island potentials are updated incrementally after every event:
// moving charge mq from src to dst shifts island k by
// mq*(Cinv[k][src] - Cinv[k][dst]). All C^-1 arithmetic goes through
// the potential engine s.pe: the dense engine does a fused pass over
// two full C^-1 rows, O(islands) adds per event; the sparse engine
// walks only the stored nonzeros of the two ε-truncated rows, O(k).
// With ε = 0 both engines compute the same floats in the same order,
// so trajectories are bit-identical. (An earlier lazy-replay scheme
// deferred these adds per island; its bookkeeping dominated the
// adaptive solver's cost on the largest benchmarks.)

// nodeV returns the potential of any node.
func (s *Sim) nodeV(node int) float64 {
	if k := s.c.IslandIndex(node); k >= 0 {
		return s.v[k]
	}
	return s.c.SourceVoltage(node, s.t)
}

// --- Rate computation ---
//
// Every rate kernel below is pure with respect to the Sim: it reads the
// frozen potential state (s.v, s.t) and immutable tables, and touches no
// shared counters — work counts flow through explicit accumulators. That
// is what lets the worker pool shard these calls across goroutines while
// staying bit-identical to the serial loop: the same floats are computed
// either way, and the caller commits them to the selection tree in index
// order afterwards.

// elecRateRaw computes the first-order rate of moving one electron
// src -> dst through junction j (quasi-particle rate in the
// superconducting state) and returns both the rate and the dW used.
func (s *Sim) elecRateRaw(j, src, dst int) (rate, dw float64) {
	dw = s.pe.DeltaWElectron(src, dst, s.nodeV(src), s.nodeV(dst))
	if s.superOn {
		return s.qpTab[j].Rate(dw), dw
	}
	if s.normK != nil {
		return s.ratePref[j] * s.normK.G(dw*s.invKT), dw
	}
	return orthodox.Rate(dw, s.c.Junction(j).R, s.opt.Temp), dw
}

// recalcJunction refreshes both direction rates of junction j on the
// serial path: rates are staged into the selection tree, free-energy
// changes cached, and the accumulated testing factor reset. The caller
// must flush (or rebuild) the tree before sampling.
func (s *Sim) recalcJunction(j int) {
	s.stats.RateCalcs += 2
	jn := s.c.Junction(j)
	fw, dwFw := s.elecRateRaw(j, jn.A, jn.B)
	bw, dwBw := s.elecRateRaw(j, jn.B, jn.A)
	s.dwFw[j], s.dwBw[j] = dwFw, dwBw
	s.b0[j] = 0
	s.fen.stage(s.chFw[j], fw)
	s.fen.stage(s.chBw[j], bw)
}

// computeJunction is the worker-side half of recalcJunction: it computes
// both rates and writes only junction-j-owned state (dW caches and the
// rate scratch), so disjoint junction shards may run concurrently.
func (s *Sim) computeJunction(j int) {
	jn := s.c.Junction(j)
	fw, dwFw := s.elecRateRaw(j, jn.A, jn.B)
	bw, dwBw := s.elecRateRaw(j, jn.B, jn.A)
	s.dwFw[j], s.dwBw[j] = dwFw, dwBw
	s.rateFw[j], s.rateBw[j] = fw, bw
}

// applyJunction is the caller-side half: commit junction j's computed
// rates to the selection tree and reset its testing factor. Called in
// index order after the pool returns, it reproduces exactly the staging
// sequence of the serial path.
func (s *Sim) applyJunction(j int) {
	s.b0[j] = 0
	s.fen.stage(s.chFw[j], s.rateFw[j])
	s.fen.stage(s.chBw[j], s.rateBw[j])
}

// refreshAllJunctions recomputes both rates of every junction, sharding
// across the worker pool when the batch is large enough to amortize the
// dispatch.
func (s *Sim) refreshAllJunctions() {
	nj := s.c.NumJunctions()
	if s.pool == nil || nj < parallelCutoff {
		for j := 0; j < nj; j++ {
			s.recalcJunction(j)
		}
		return
	}
	s.pool.run(nj, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			s.computeJunction(j)
		}
	})
	s.stats.RateCalcs += uint64(2 * nj)
	for j := 0; j < nj; j++ {
		s.applyJunction(j)
	}
}

// recalcFlagged batch-recomputes the junctions flagged by the adaptive
// test, in parallel when the batch clears the cutoff (a refresh spill
// can flag thousands of junctions on large circuits).
func (s *Sim) recalcFlagged() {
	m := len(s.flagged)
	if s.pool == nil || m < parallelCutoff {
		for _, j := range s.flagged {
			s.recalcJunction(j)
		}
		return
	}
	s.pool.run(m, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.computeJunction(s.flagged[i])
		}
	})
	s.stats.RateCalcs += uint64(2 * m)
	for _, j := range s.flagged {
		s.applyJunction(j)
	}
}

// secondaryRate computes the rate of one cotunneling or Cooper-pair
// channel, accumulating its rate-evaluation count into calcs.
func (s *Sim) secondaryRate(ci int, calcs *uint64) float64 {
	ch := &s.chans[ci]
	switch ch.kind {
	case chCotunnel:
		return s.cotunnelRate(ch, calcs)
	case chCooper:
		return s.cooperRate(ch, calcs)
	}
	return 0
}

// recalcSecondary refreshes every cotunneling and Cooper-pair channel
// (the non-adaptive solver of Fig. 3's flow), sharded across the pool
// when the channel count clears the cutoff. Per-worker calc counters are
// summed afterwards; each channel is evaluated exactly once, so the
// total is independent of the sharding.
func (s *Sim) recalcSecondary() {
	n := len(s.secChans)
	if s.pool == nil || n < parallelCutoff {
		var calcs uint64
		for _, ci := range s.secChans {
			s.fen.stage(ci, s.secondaryRate(ci, &calcs))
		}
		s.stats.RateCalcs += calcs
		return
	}
	for i := range s.workerCalcs {
		s.workerCalcs[i] = 0
	}
	s.pool.run(n, func(w, lo, hi int) {
		var calcs uint64
		for i := lo; i < hi; i++ {
			s.secRate[i] = s.secondaryRate(s.secChans[i], &calcs)
		}
		s.workerCalcs[w] = calcs
	})
	for _, c := range s.workerCalcs {
		s.stats.RateCalcs += c
	}
	for i, ci := range s.secChans {
		s.fen.stage(ci, s.secRate[i])
	}
}

func (s *Sim) cotunnelRate(ch *channel, calcs *uint64) float64 {
	*calcs++
	vSrc, vMid, vDst := s.nodeV(ch.src), s.nodeV(ch.mid), s.nodeV(ch.dst)
	dw := s.pe.DeltaWElectron(ch.src, ch.dst, vSrc, vDst)
	e1 := s.pe.DeltaWElectron(ch.src, ch.mid, vSrc, vMid)
	e2 := s.pe.DeltaWElectron(ch.mid, ch.dst, vMid, vDst)
	r1, r2 := s.c.Junction(ch.junc).R, s.c.Junction(ch.junc2).R
	if s.cotK != nil {
		return s.cotK.Rate(dw, e1, e2, r1, r2, s.opt.Temp)
	}
	return cotunnel.Rate(dw, e1, e2, r1, r2, s.opt.Temp)
}

// cooperRate computes the incoherent resonant Cooper-pair rate for a
// channel. The lifetime broadening gamma is the total quasi-particle
// escape rate out of the post-tunneling state (the events that complete
// a JQP/DJQP cycle), floored at CPWidthFloor * gap / hbar.
func (s *Sim) cooperRate(ch *channel, calcs *uint64) float64 {
	*calcs++
	ej := s.ej[ch.junc]
	if ej <= 0 {
		return 0
	}
	dw2 := s.pe.DeltaW(ch.src, ch.dst, 2*units.E, s.nodeV(ch.src), s.nodeV(ch.dst))
	gamma := s.qpEscapeAfter(ch, calcs)
	if floor := s.opt.CPWidthFloor * s.gap / units.Hbar; gamma < floor {
		gamma = floor
	}
	return super.CooperPairRate(dw2, ej, gamma)
}

// qpEscapeAfter sums the quasi-particle rates available after the
// Cooper pair of channel ch has tunneled, over every junction touching
// the affected islands.
func (s *Sim) qpEscapeAfter(ch *channel, calcs *uint64) float64 {
	shift := func(node int) float64 {
		if k := s.c.IslandIndex(node); k >= 0 {
			return s.pe.PotentialShift(k, ch.src, ch.dst, 2*units.E)
		}
		return 0
	}
	post := func(node int) float64 { return s.nodeV(node) + shift(node) }
	var js []int
	seen := map[int]bool{}
	for _, node := range [2]int{ch.src, ch.dst} {
		if s.c.IslandIndex(node) < 0 {
			continue
		}
		for _, j := range s.c.JunctionsAt(node) {
			if !seen[j] {
				seen[j] = true
				js = append(js, j)
			}
		}
	}
	total := 0.0
	for _, j := range js {
		jn := s.c.Junction(j)
		va, vb := post(jn.A), post(jn.B)
		total += s.qpTab[j].Rate(s.pe.DeltaWElectron(jn.A, jn.B, va, vb))
		total += s.qpTab[j].Rate(s.pe.DeltaWElectron(jn.B, jn.A, vb, va))
		*calcs += 2
	}
	return total
}

// --- Refresh paths ---

// refreshPotentials recomputes every island potential from scratch: an
// O(islands^2) matrix-vector product on the dense engine, O(stored nnz)
// on the sparse one. On large circuits with a pool the rows are sharded
// across workers — by nonzero count on sparse engines (shardBounds), by
// row count otherwise. Rows are independent, and each worker computes
// exactly the floats the serial solve would.
func (s *Sim) refreshPotentials() {
	ni := s.c.NumIslands()
	if s.qScratch == nil {
		s.qScratch = make([]float64, ni)
	}
	s.c.ChargeVector(s.qScratch, s.n)
	if s.pool == nil || ni < parallelCutoff {
		s.pe.SolveRange(s.v, s.qScratch, s.vext, 0, ni)
		return
	}
	if s.shardBounds != nil {
		s.pool.runRanges(s.shardBounds, func(_, lo, hi int) {
			s.pe.SolveRange(s.v, s.qScratch, s.vext, lo, hi)
		})
		return
	}
	s.pool.run(ni, func(_, lo, hi int) {
		s.pe.SolveRange(s.v, s.qScratch, s.vext, lo, hi)
	})
}

// fullRefresh recomputes everything exactly: external voltages, island
// potentials from scratch (with the refresh interval scaled to the
// junction count its amortized cost is O(islands) per event), all
// channel rates, and the selection tree — each stage sharded across the
// worker pool when large enough. The tree is rebuilt bottom-up in O(n),
// which also clears accumulated floating-point drift from incremental
// updates.
func (s *Sim) fullRefresh() {
	sp := s.obs.Span("solver.fullRefresh", s.t)
	preCalcs := s.stats.RateCalcs
	if invariant.Enabled && s.dbgInit {
		// Audit the incremental potentials against a fresh solve (with
		// the pre-refresh external voltages) before overwriting them.
		s.debugCheckPotentialDrift()
	}
	s.stats.FullRefreshes++
	s.vext = s.c.ExternalVoltages(s.vext, s.t)
	s.refreshPotentials()
	if s.pe.Truncated() {
		// The refresh recomputed potentials from the truncated rows, so
		// the accumulated per-event error collapses to the solve bound.
		qmax, vmax := 0.0, 0.0
		for _, x := range s.qScratch {
			if a := math.Abs(x); a > qmax {
				qmax = a
			}
		}
		for _, x := range s.vext {
			if a := math.Abs(x); a > vmax {
				vmax = a
			}
		}
		s.stats.CinvErrorBound = s.pe.RefreshErrorBound(qmax, vmax)
		s.obs.CinvBound(s.stats.CinvErrorBound)
	}
	s.refreshAllJunctions()
	s.recalcSecondary()
	s.fen.rebuild()
	if invariant.Enabled {
		s.dbgInit = true
		s.debugCheckKernels()
		s.debugCheckFenwick()
	}
	s.obs.FullRefresh(s.t)
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
	sp.End()
}

// nonAdaptiveUpdate recomputes all rates after an event (potentials are
// refreshed lazily but every junction touches its nodes, so everything
// becomes fresh). All updates are staged and committed in one flush,
// which picks a bulk rebuild over per-channel tree walks once the batch
// is large.
func (s *Sim) nonAdaptiveUpdate() {
	preCalcs := s.stats.RateCalcs
	s.refreshAllJunctions()
	s.recalcSecondary()
	batch, rebuilt := s.fen.flush()
	s.obs.FenwickFlush(batch, rebuilt, s.t)
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
}

// adaptiveUpdate implements Algorithm 1 after the event on channel ch:
// test the event junction(s), flag those whose potential change exceeds
// the threshold, and spill to neighbours of flagged junctions. The
// flag test reads only the tested junction's own accumulated factor and
// cached dW — never another junction's refreshed rates — so flagged
// junctions are collected first and recomputed as one batch (in
// parallel when large), which changes nothing about which junctions
// flag or what their new rates are.
func (s *Sim) adaptiveUpdate(ch *channel, visited []uint32, stamp uint32, queue []int) []int {
	deltaP := func(node int) float64 {
		if k := s.c.IslandIndex(node); k >= 0 {
			return s.pe.PotentialShift(k, ch.src, ch.dst, ch.q)
		}
		return 0
	}
	queue = queue[:0]
	push := func(j int) {
		if visited[j] != stamp {
			visited[j] = stamp
			queue = append(queue, j)
		}
	}
	push(ch.junc)
	if ch.junc2 >= 0 {
		push(ch.junc2)
	}
	preCalcs := s.stats.RateCalcs
	tracing := s.obs.Tracing()
	depth, levelEnd := 0, len(queue) // seeds are spill depth 0
	s.flagged = s.flagged[:0]
	for head := 0; head < len(queue); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(queue)
		}
		j := queue[head]
		jn := s.c.Junction(j)
		b := s.b0[j] + deltaP(jn.A) - deltaP(jn.B)
		s.stats.Tested++
		thr := math.Min(math.Abs(s.dwFw[j]), math.Abs(s.dwBw[j]))
		flag := units.E*math.Abs(b) >= s.opt.Alpha*thr
		if tracing {
			s.obs.AdaptiveTest(j, units.E*math.Abs(b), s.opt.Alpha*thr, flag, depth, s.t)
		}
		if flag {
			s.stats.Flagged++
			s.flagged = append(s.flagged, j)
			for _, nb := range s.c.JunctionNeighbors(j) {
				push(nb)
			}
		} else {
			s.b0[j] = b
		}
	}
	s.recalcFlagged()
	s.recalcSecondary()
	batch, rebuilt := s.fen.flush()
	s.obs.Adaptive(ch.junc, len(queue), len(s.flagged), s.t)
	s.obs.Recomputed(s.flagged)
	s.obs.FenwickFlush(batch, rebuilt, s.t)
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
	return queue
}

// handleInputChange reacts to source voltages moving between t0 and the
// current time: island potentials get the exact external shift, and
// junction rates are either all recomputed (non-adaptive) or tested
// from the junctions in contact with the changed inputs (adaptive).
func (s *Sim) handleInputChange(visited []uint32, stamp uint32, queue []int) []int {
	vextNew := s.c.ExternalVoltages(nil, s.t)
	changed := false
	for i := range vextNew {
		if !numeric.SameBits(vextNew[i], s.vext[i]) {
			changed = true
			break
		}
	}
	if !changed {
		return queue
	}
	// Apply the external shift to every island potential (exact up to
	// the engine's mext truncation, whose error is accounted below).
	ni := s.c.NumIslands()
	dv := make([]float64, ni)
	s.pe.ExternalDelta(dv, s.vext, vextNew)
	for k := 0; k < ni; k++ {
		s.v[k] += dv[k]
	}
	if s.pe.Truncated() {
		dvmax := 0.0
		for i := range vextNew {
			if a := math.Abs(vextNew[i] - s.vext[i]); a > dvmax {
				dvmax = a
			}
		}
		s.stats.CinvErrorBound += s.pe.InputErrorBound(dvmax)
		s.obs.CinvBound(s.stats.CinvErrorBound)
	}
	dext := make(map[int]float64)
	for i, id := range s.c.Externals() {
		if !numeric.SameBits(vextNew[i], s.vext[i]) {
			dext[id] = vextNew[i] - s.vext[i]
		}
	}
	s.vext = vextNew

	if !s.opt.Adaptive {
		s.obs.InputChange(s.c.NumJunctions(), s.t)
		s.nonAdaptiveUpdate()
		return queue
	}
	// Inputs couple to junctions through arbitrary capacitor networks
	// (a logic gate's input is a pure capacitor), so there is no local
	// junction set to spill from. Instead the exact potential shift of
	// every node is already known (dv, dext): fold it into each
	// junction's accumulated testing factor — O(J) arithmetic with no
	// rate evaluations — and recalculate only those over threshold.
	deltaP := func(node int) float64 {
		if k := s.c.IslandIndex(node); k >= 0 {
			return dv[k]
		}
		return dext[node]
	}
	preCalcs := s.stats.RateCalcs
	tracing := s.obs.Tracing()
	s.flagged = s.flagged[:0]
	for j := 0; j < s.c.NumJunctions(); j++ {
		jn := s.c.Junction(j)
		b := s.b0[j] + deltaP(jn.A) - deltaP(jn.B)
		s.stats.Tested++
		thr := math.Min(math.Abs(s.dwFw[j]), math.Abs(s.dwBw[j]))
		flag := units.E*math.Abs(b) >= s.opt.Alpha*thr
		if tracing {
			s.obs.AdaptiveTest(j, units.E*math.Abs(b), s.opt.Alpha*thr, flag, 0, s.t)
		}
		if flag {
			s.stats.Flagged++
			s.flagged = append(s.flagged, j)
		} else {
			s.b0[j] = b
		}
	}
	s.recalcFlagged()
	s.recalcSecondary()
	batch, rebuilt := s.fen.flush()
	s.obs.InputChange(len(s.flagged), s.t)
	s.obs.Recomputed(s.flagged)
	s.obs.FenwickFlush(batch, rebuilt, s.t)
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
	return queue
}

// --- Event application ---

// obsKinds maps channel kinds to journal event kinds.
var obsKinds = [...]obs.Kind{
	chElectron: obs.KindTunnel,
	chCotunnel: obs.KindCotunnel,
	chCooper:   obs.KindCooper,
}

// apply moves the channel's carriers, updates every island potential
// exactly, and accumulates measured charge, event counts and dissipated
// energy per junction. It returns the free energy change dW of the
// event (for the observability hook in Step).
func (s *Sim) apply(ch *channel) float64 {
	// Free energy released by this event (evaluated with the exact
	// pre-event potentials; thermal fluctuations can make it negative).
	dw := s.pe.DeltaW(ch.src, ch.dst, ch.q, s.nodeV(ch.src), s.nodeV(ch.dst))
	s.stats.Dissipated += -dw
	s.c.ApplyTransfer(s.n, ch.src, ch.dst, ch.carriers)
	touched := s.pe.Shift(s.v, ch.src, ch.dst, ch.q)
	s.obs.EventTouched(touched)
	// Truncated rows shift each potential with a bounded per-event
	// error; exact engines contribute exactly zero here.
	s.stats.CinvErrorBound += s.pe.EventErrorBound(ch.q)
	// Conventional current A->B is positive charge A->B; electrons
	// moving src->dst carry -q, so charge +q flows dst->src.
	sign := func(jid int, src int) float64 {
		if s.c.Junction(jid).A == src {
			s.evFw[jid]++
			return -1 // electrons A->B: conventional charge B->A
		}
		s.evBw[jid]++
		return 1
	}
	switch ch.kind {
	case chCotunnel:
		s.stats.CotunnelEvents++
		s.charge[ch.junc] += sign(ch.junc, ch.src) * ch.q
		s.charge[ch.junc2] += sign(ch.junc2, ch.mid) * ch.q
	case chCooper:
		s.stats.CooperEvents++
		s.evCoop[ch.junc]++
		s.charge[ch.junc] += sign(ch.junc, ch.src) * ch.q
	default:
		s.charge[ch.junc] += sign(ch.junc, ch.src) * ch.q
	}
	return dw
}

// --- Main loop ---

// nextCap returns the earliest time at which the solver must stop and
// re-evaluate inputs (PWL breakpoint, ramp subdivision or sine cap),
// or +Inf for static circuits.
func (s *Sim) nextCap() float64 {
	cap := math.Inf(1)
	if s.horizon > 0 {
		cap = s.horizon
	}
	if s.static {
		return cap
	}
	for _, bp := range s.breaks {
		if bp > s.t {
			if bp < cap {
				cap = bp
			}
			break
		}
	}
	if s.maxStep > 0 && s.t+s.maxStep < cap {
		cap = s.t + s.maxStep
	}
	// Inside a moving PWL ramp, subdivide the segment.
	for _, id := range s.c.Externals() {
		p, ok := s.sourceOf(id).(PWLRamp)
		if !ok {
			continue
		}
		if step := p.RampStep(s.t); step > 0 && s.t+step < cap {
			cap = s.t + step
		}
	}
	return cap
}

// PWLRamp is implemented by sources that need step subdivision while
// their output is actively changing (circuit.PWL qualifies through the
// adapter below).
type PWLRamp interface {
	RampStep(t float64) float64
}

// Step advances the simulation by one iteration. It returns true if a
// tunnel event was applied, false if the step was capped by an input
// change. ErrBlockaded is returned when nothing can ever happen again.
func (s *Sim) Step() (bool, error) {
	s.stats.Steps++
	total := s.fen.total()
	cap := s.nextCap()
	if total <= 0 || math.IsInf(1/total, 1) {
		if math.IsInf(cap, 1) {
			return false, ErrBlockaded
		}
		s.t = cap
		s.scratch = s.handleInputChange(s.visited, s.bumpStamp(), s.scratch)
		s.recordProbes()
		return false, nil
	}
	dt := s.rnd.Exp(total)
	if s.t+dt > cap {
		// Stopping a Poisson process mid-interval and redrawing is exact
		// (memorylessness), so capping at breakpoints, ramp subdivisions
		// and the run horizon does not bias the dynamics.
		s.t = cap
		s.scratch = s.handleInputChange(s.visited, s.bumpStamp(), s.scratch)
		s.recordProbes()
		return false, nil
	}
	s.t += dt
	idx := s.fen.find(s.rnd.Float64() * total)
	ch := &s.chans[idx]
	var preSum int
	if invariant.Enabled {
		preSum = s.islandElectronSum()
	}
	dw := s.apply(ch)
	s.stats.Events++
	s.obs.Event(obsKinds[ch.kind], ch.junc, s.t, dw)
	if s.opt.RefreshEvery > 0 && s.stats.Events%uint64(s.opt.RefreshEvery) == 0 {
		s.fullRefresh()
	} else if s.opt.Adaptive {
		s.scratch = s.adaptiveUpdate(ch, s.visited, s.bumpStamp(), s.scratch)
	} else {
		s.nonAdaptiveUpdate()
	}
	if invariant.Enabled {
		s.debugCheckEvent(ch, preSum)
		s.debugCheckFenwick()
	}
	s.recordProbes()
	return true, nil
}

// Run advances until maxEvents tunnel events have been applied or the
// simulated time reaches maxTime (whichever is positive and comes
// first). A timed run never overshoots maxTime: the last Monte Carlo
// waiting interval is truncated at the horizon, which is unbiased by
// memorylessness and keeps waveforms and current averaging windows
// exact. It returns the number of events applied.
func (s *Sim) Run(maxEvents uint64, maxTime float64) (uint64, error) {
	if maxTime > 0 {
		s.horizon = maxTime
		defer func() { s.horizon = 0 }()
	}
	start := s.stats.Events
	for {
		if maxEvents > 0 && s.stats.Events-start >= maxEvents {
			return s.stats.Events - start, nil
		}
		if maxTime > 0 && s.t >= maxTime {
			return s.stats.Events - start, nil
		}
		if _, err := s.Step(); err != nil {
			return s.stats.Events - start, err
		}
	}
}
