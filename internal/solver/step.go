package solver

import (
	"math"

	"semsim/internal/cotunnel"
	"semsim/internal/invariant"
	"semsim/internal/numeric"
	"semsim/internal/obs"
	"semsim/internal/super"
	"semsim/internal/units"
)

// --- Potentials ---
//
// Island potentials are updated incrementally after every event:
// moving charge mq from src to dst shifts island k by
// mq*(Cinv[k][src] - Cinv[k][dst]). All C^-1 arithmetic goes through
// the potential engine s.pe: the dense engine does a fused pass over
// two full C^-1 rows, O(islands) adds per event; the sparse engine
// walks only the stored nonzeros of the two ε-truncated rows, O(k).
// With ε = 0 both engines compute the same floats in the same order,
// so trajectories are bit-identical. (An earlier lazy-replay scheme
// deferred these adds per island; its bookkeeping dominated the
// adaptive solver's cost on the largest benchmarks.)

// nodeV returns the potential of any node.
func (s *Sim) nodeV(node int) float64 {
	if k := s.c.IslandIndex(node); k >= 0 {
		return s.v[k]
	}
	return s.sourceVoltage(node, s.t)
}

// sourceVoltage is the override-aware replacement for
// circuit.SourceVoltage inside the solver: it returns the voltage of
// external node id at time t, substituting any per-Sim DC override
// installed by Reset. The substituted value is the exact float a
// circuit compiled with that DC source would produce, so overridden and
// recompiled runs are bit-identical.
func (s *Sim) sourceVoltage(id int, t float64) float64 {
	if s.srcMask != nil {
		if e := s.extIdxOf[id]; e >= 0 && s.srcMask[e] {
			return s.srcOverride[e]
		}
	}
	return s.c.SourceVoltage(id, t)
}

// externalVoltages fills dst (allocated when nil) with every external
// voltage at time t, in external order, honouring per-Sim DC overrides.
func (s *Sim) externalVoltages(dst []float64, t float64) []float64 {
	dst = s.c.ExternalVoltages(dst, t)
	if s.srcMask != nil {
		for e, on := range s.srcMask {
			if on {
				dst[e] = s.srcOverride[e]
			}
		}
	}
	return dst
}

// pick resolves a precomputed (island index, external index) node
// reference against the potential and external-voltage arrays; exactly
// one of the two indices is >= 0.
func pick(v, extV []float64, isl, ext int32) float64 {
	if isl >= 0 {
		return v[isl]
	}
	return extV[ext]
}

// refreshExtV refills the external-voltage cache at the current time.
// It must run after every change of s.t and before any rate
// recomputation: the kernels read extV instead of dispatching into
// Source implementations per evaluation, and the cached values are the
// exact floats SourceVoltage returns at the same t. Static circuits
// fill once.
func (s *Sim) refreshExtV() {
	if s.extVFresh && s.static {
		return
	}
	for i, id := range s.extIDs {
		s.extV[i] = s.sourceVoltage(id, s.t)
	}
	s.extVFresh = true
}

// --- Rate computation ---
//
// Every rate kernel below is pure with respect to the Sim: it reads the
// frozen potential state (s.v, s.extV) and immutable tables, and writes
// only junction-owned scratch slots — work counts flow through explicit
// accumulators. That is what lets the worker pool shard these loops
// across goroutines while staying bit-identical to the serial path: the
// same floats are computed either way, and the caller commits them to
// the selection tree in index order afterwards.
//
// The exact-vs-table-vs-superconducting decision is made once at
// construction (s.kern); each variant below is a monomorphic loop over
// the flat per-junction constant arrays, with no per-rate dispatch.

// computeJuncList recomputes both direction rates and dW caches for the
// listed junctions through the kernel selected at construction.
func (s *Sim) computeJuncList(js []int) {
	switch s.kern {
	case kernTable:
		s.computeJuncListTable(js)
	case kernExact:
		s.computeJuncListExact(js)
	case kernExactT0:
		s.computeJuncListT0(js)
	case kernSuper:
		s.computeJuncListSuper(js)
	}
}

// computeJuncListExact evaluates the orthodox rate exactly, with the
// float operations of orthodox.Rate in the same order (bit-identical to
// the pre-SoA per-junction path).
//
//semsim:hot
func (s *Sim) computeJuncListExact(js []int) {
	v, extV := s.v, s.extV
	kT := s.kT
	for _, j := range js {
		vA := pick(v, extV, s.juncAIsl[j], s.juncAExt[j])
		vB := pick(v, extV, s.juncBIsl[j], s.juncBExt[j])
		self := s.juncSelfHalfE2[j]
		denom := s.juncDenom[j]
		dwFw := -units.E*(vB-vA) + self
		dwBw := -units.E*(vA-vB) + self
		s.rateFw[j] = kT * numeric.XOverExpm1(dwFw/kT) / denom
		s.rateBw[j] = kT * numeric.XOverExpm1(dwBw/kT) / denom
		s.dwFw[j] = dwFw
		s.dwBw[j] = dwBw
	}
}

// computeJuncListTable evaluates the orthodox rate through the shared
// flat interpolation table: one uniform-grid panel lookup and a cubic
// Horner per rate.
//
//semsim:hot
func (s *Sim) computeJuncListTable(js []int) {
	v, extV := s.v, s.extV
	flat := s.flatK
	invKT := s.invKT
	for _, j := range js {
		vA := pick(v, extV, s.juncAIsl[j], s.juncAExt[j])
		vB := pick(v, extV, s.juncBIsl[j], s.juncBExt[j])
		self := s.juncSelfHalfE2[j]
		pref := s.ratePref[j]
		dwFw := -units.E*(vB-vA) + self
		dwBw := -units.E*(vA-vB) + self
		gFw, gBw := flat.EvalPair(dwFw*invKT, dwBw*invKT)
		s.rateFw[j] = pref * gFw
		s.rateBw[j] = pref * gBw
		s.dwFw[j] = dwFw
		s.dwBw[j] = dwBw
	}
}

// computeJuncListT0 is the T <= 0 limit of the orthodox rate.
//
//semsim:hot
func (s *Sim) computeJuncListT0(js []int) {
	v, extV := s.v, s.extV
	for _, j := range js {
		vA := pick(v, extV, s.juncAIsl[j], s.juncAExt[j])
		vB := pick(v, extV, s.juncBIsl[j], s.juncBExt[j])
		self := s.juncSelfHalfE2[j]
		denom := s.juncDenom[j]
		dwFw := -units.E*(vB-vA) + self
		dwBw := -units.E*(vA-vB) + self
		if dwFw < 0 {
			s.rateFw[j] = -dwFw / denom
		} else {
			s.rateFw[j] = 0
		}
		if dwBw < 0 {
			s.rateBw[j] = -dwBw / denom
		} else {
			s.rateBw[j] = 0
		}
		s.dwFw[j] = dwFw
		s.dwBw[j] = dwBw
	}
}

// computeJuncListSuper evaluates quasi-particle rates through the
// per-junction I-V tables.
//
//semsim:hot
func (s *Sim) computeJuncListSuper(js []int) {
	v, extV := s.v, s.extV
	for _, j := range js {
		vA := pick(v, extV, s.juncAIsl[j], s.juncAExt[j])
		vB := pick(v, extV, s.juncBIsl[j], s.juncBExt[j])
		self := s.juncSelfHalfE2[j]
		dwFw := -units.E*(vB-vA) + self
		dwBw := -units.E*(vA-vB) + self
		s.rateFw[j] = s.qpTab[j].Rate(dwFw)
		s.rateBw[j] = s.qpTab[j].Rate(dwBw)
		s.dwFw[j] = dwFw
		s.dwBw[j] = dwBw
	}
}

// applyJunction commits junction j's computed rates to the selection
// tree and resets its testing factor. Called in index order after the
// compute phase, serial and parallel paths alike, so the staging
// sequence — and therefore the tree state — is identical either way.
// Electron channels sit at indices 2j and 2j+1 by construction.
//
//semsim:hot
func (s *Sim) applyJunction(j int) {
	s.b0[j] = 0
	s.fen.stage(2*j, s.rateFw[j])
	s.fen.stage(2*j+1, s.rateBw[j])
}

// refreshAllJunctions recomputes both rates of every junction, sharding
// across the worker pool when the batch is large enough to amortize the
// dispatch.
//
//semsim:hot
func (s *Sim) refreshAllJunctions() {
	nj := s.c.NumJunctions()
	if s.pool == nil || nj < parallelCutoff {
		s.computeJuncList(s.allJunc)
	} else {
		s.pool.run(nj, s.fnJuncShard)
	}
	s.stats.RateCalcs += uint64(2 * nj)
	for j := 0; j < nj; j++ {
		s.applyJunction(j)
	}
}

// recalcFlagged batch-recomputes the junctions flagged by the adaptive
// test, in parallel when the batch clears the cutoff (a refresh spill
// can flag thousands of junctions on large circuits).
//
//semsim:hot
func (s *Sim) recalcFlagged() {
	m := len(s.flagged)
	if s.pool == nil || m < parallelCutoff {
		s.computeJuncList(s.flagged)
	} else {
		s.pool.run(m, s.fnFlaggedShard)
	}
	s.stats.RateCalcs += uint64(2 * m)
	for _, j := range s.flagged {
		s.applyJunction(j)
	}
}

// computeSecRange recomputes secondary-channel rates for secChans
// positions [lo, hi). A circuit has cotunneling channels or Cooper-pair
// channels, never both (cotunneling is rejected for superconducting
// circuits at construction), so one branch covers the whole range.
func (s *Sim) computeSecRange(lo, hi int, calcs *uint64) {
	if s.superOn {
		s.computeCooperRange(lo, hi, calcs)
		return
	}
	s.computeCotunnelRange(lo, hi, calcs)
}

// computeCotunnelRange evaluates second-order cotunneling rates from
// the precomputed per-channel constants; the tabulated branch inlines
// cotunnel.Kernel.Rate with the same float order.
//
//semsim:hot
func (s *Sim) computeCotunnelRange(lo, hi int, calcs *uint64) {
	v, extV := s.v, s.extV
	if flat := s.cotFlat; flat != nil {
		kT := s.kT
		for i := lo; i < hi; i++ {
			*calcs++
			vSrc := pick(v, extV, s.secSrcIsl[i], s.secSrcExt[i])
			vMid := pick(v, extV, s.secMidIsl[i], s.secMidExt[i])
			vDst := pick(v, extV, s.secDstIsl[i], s.secDstExt[i])
			e1 := -units.E*(vMid-vSrc) + s.secSelfSM[i]
			e2 := -units.E*(vDst-vMid) + s.secSelfMD[i]
			if e1 <= 0 || e2 <= 0 {
				s.secRate[i] = 0 // coexistence rule, as in cotunnel.Rate
				continue
			}
			dw := -units.E*(vDst-vSrc) + s.secSelfSD[i]
			den := 1/e1 + 1/e2
			pref := s.secPref[i] * (den * den)
			s.secRate[i] = pref * kT * kT * kT * flat.Eval(dw/kT)
		}
		return
	}
	t := s.opt.Temp
	for i := lo; i < hi; i++ {
		*calcs++
		vSrc := pick(v, extV, s.secSrcIsl[i], s.secSrcExt[i])
		vMid := pick(v, extV, s.secMidIsl[i], s.secMidExt[i])
		vDst := pick(v, extV, s.secDstIsl[i], s.secDstExt[i])
		dw := -units.E*(vDst-vSrc) + s.secSelfSD[i]
		e1 := -units.E*(vMid-vSrc) + s.secSelfSM[i]
		e2 := -units.E*(vDst-vMid) + s.secSelfMD[i]
		s.secRate[i] = cotunnel.Rate(dw, e1, e2, s.secR1[i], s.secR2[i], t)
	}
}

// computeCooperRange evaluates incoherent resonant Cooper-pair rates.
// The lifetime broadening gamma is the total quasi-particle escape rate
// out of the post-tunneling state, summed over the precomputed escape
// list (the events that complete a JQP/DJQP cycle), floored at
// CPWidthFloor * gap / hbar.
//
//semsim:hot
func (s *Sim) computeCooperRange(lo, hi int, calcs *uint64) {
	v, extV := s.v, s.extV
	floorGamma := s.opt.CPWidthFloor * s.gap / units.Hbar
	for i := lo; i < hi; i++ {
		*calcs++
		ci := s.secChans[i]
		junc := int(s.chJunc[ci])
		ej := s.ej[junc]
		if ej <= 0 {
			s.secRate[i] = 0
			continue
		}
		vSrc := pick(v, extV, s.secSrcIsl[i], s.secSrcExt[i])
		vDst := pick(v, extV, s.secDstIsl[i], s.secDstExt[i])
		dw2 := -(2*units.E)*(vDst-vSrc) + s.secSelfSD[i]
		gamma := 0.0
		for k := s.coopStart[i]; k < s.coopStart[i+1]; k++ {
			jj := int(s.coopJunc[k])
			va := pick(v, extV, s.juncAIsl[jj], s.juncAExt[jj]) + s.coopShiftA[k]
			vb := pick(v, extV, s.juncBIsl[jj], s.juncBExt[jj]) + s.coopShiftB[k]
			self := s.juncSelfHalfE2[jj]
			gamma += s.qpTab[jj].Rate(-units.E*(vb-va) + self)
			gamma += s.qpTab[jj].Rate(-units.E*(va-vb) + self)
			*calcs += 2
		}
		if gamma < floorGamma {
			gamma = floorGamma
		}
		s.secRate[i] = super.CooperPairRate(dw2, ej, gamma)
	}
}

// recalcSecondary refreshes every cotunneling and Cooper-pair channel
// (the non-adaptive solver of Fig. 3's flow), sharded across the pool
// when the channel count clears the cutoff. Per-worker calc counters
// are summed afterwards; each channel is evaluated exactly once, so the
// total is independent of the sharding. Rates are staged in secChans
// order regardless of how they were computed.
//
//semsim:hot
func (s *Sim) recalcSecondary() {
	n := len(s.secChans)
	if n == 0 {
		return
	}
	if s.pool == nil || n < parallelCutoff {
		var calcs uint64
		s.computeSecRange(0, n, &calcs)
		s.stats.RateCalcs += calcs
	} else {
		for i := range s.workerCalcs {
			s.workerCalcs[i] = 0
		}
		s.pool.run(n, s.fnSecShard)
		for _, c := range s.workerCalcs {
			s.stats.RateCalcs += c
		}
	}
	for i, ci := range s.secChans {
		s.fen.stage(ci, s.secRate[i])
	}
}

// --- Refresh paths ---

// refreshPotentials recomputes every island potential from scratch: an
// O(islands^2) matrix-vector product on the dense engine, O(stored nnz)
// on the sparse one. On large circuits with a pool the rows are sharded
// across workers — by nonzero count on sparse engines (shardBounds), by
// row count otherwise. Rows are independent, and each worker computes
// exactly the floats the serial solve would.
func (s *Sim) refreshPotentials() {
	ni := s.c.NumIslands()
	if s.qScratch == nil {
		s.qScratch = make([]float64, ni)
	}
	s.c.ChargeVector(s.qScratch, s.n)
	if s.pool == nil || ni < parallelCutoff {
		s.pe.SolveRange(s.v, s.qScratch, s.vext, 0, ni)
		return
	}
	if s.shardBounds != nil {
		s.pool.runRanges(s.shardBounds, s.fnSolveShard)
		return
	}
	s.pool.run(ni, s.fnSolveShard)
}

// fullRefresh recomputes everything exactly: external voltages, island
// potentials from scratch (with the refresh interval scaled to the
// junction count its amortized cost is O(islands) per event), all
// channel rates, and the selection tree — each stage sharded across the
// worker pool when large enough. The tree is rebuilt bottom-up in O(n),
// which also clears accumulated floating-point drift from incremental
// updates.
func (s *Sim) fullRefresh() {
	sp := s.obs.Span("solver.fullRefresh", s.t)
	preCalcs := s.stats.RateCalcs
	if invariant.Enabled && s.dbgInit {
		// Audit the incremental potentials against a fresh solve (with
		// the pre-refresh external voltages) before overwriting them.
		s.debugCheckPotentialDrift()
	}
	s.stats.FullRefreshes++
	s.vext = s.externalVoltages(s.vext, s.t)
	s.refreshExtV()
	s.refreshPotentials()
	if s.pe.Truncated() {
		// The refresh recomputed potentials from the truncated rows, so
		// the accumulated per-event error collapses to the solve bound.
		qmax, vmax := 0.0, 0.0
		for _, x := range s.qScratch {
			if a := math.Abs(x); a > qmax {
				qmax = a
			}
		}
		for _, x := range s.vext {
			if a := math.Abs(x); a > vmax {
				vmax = a
			}
		}
		s.stats.CinvErrorBound = s.pe.RefreshErrorBound(qmax, vmax)
		s.obs.CinvBound(s.stats.CinvErrorBound)
	}
	s.refreshAllJunctions()
	s.recalcSecondary()
	s.fen.rebuild()
	if invariant.Enabled {
		s.dbgInit = true
		s.debugCheckKernels()
		s.debugCheckFenwick()
	}
	s.obs.FullRefresh(s.t)
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
	sp.End()
}

// nonAdaptiveUpdate recomputes all rates after an event (potentials are
// refreshed lazily but every junction touches its nodes, so everything
// becomes fresh). Updates are staged only; the commit is deferred to
// the next selection (top of Step), where one flush covers the whole
// batch.
//
//semsim:hot
func (s *Sim) nonAdaptiveUpdate() {
	preCalcs := s.stats.RateCalcs
	s.refreshAllJunctions()
	s.recalcSecondary()
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
}

// bumpDPEpoch opens a new per-event memo epoch for dpAt.
func (s *Sim) bumpDPEpoch() {
	s.dpEpoch++
	if s.dpEpoch == 0 { // uint32 wrap: old stamps must not alias
		for i := range s.dpStamp {
			s.dpStamp[i] = 0
		}
		s.dpEpoch = 1
	}
}

// dpAt returns the potential shift the current event imposes on a node
// (zero for externals), memoized per island for the duration of one
// adaptive update: each island's PotentialShift row walk runs at most
// once per event no matter how many tested junctions share the island.
//
//semsim:hot
func (s *Sim) dpAt(node, src, dst int, q float64) float64 {
	k := s.c.IslandIndex(node)
	if k < 0 {
		return 0
	}
	if s.dpStamp[k] != s.dpEpoch {
		s.dpStamp[k] = s.dpEpoch
		s.dpVal[k] = s.pe.PotentialShift(k, src, dst, q)
	}
	return s.dpVal[k]
}

// adaptiveUpdate implements Algorithm 1 after the event on channel ci:
// test the event junction(s), flag those whose potential change exceeds
// the threshold, and spill to neighbours of flagged junctions. The
// flag test reads only the tested junction's own accumulated factor and
// cached dW — never another junction's refreshed rates — so flagged
// junctions are collected first and recomputed as one batch (in
// parallel when large), which changes nothing about which junctions
// flag or what their new rates are.
func (s *Sim) adaptiveUpdate(ci int, visited []uint32, stamp uint32, queue []int) []int {
	src, dst := int(s.chSrc[ci]), int(s.chDst[ci])
	q := chQ[s.chKinds[ci]]
	junc := int(s.chJunc[ci])
	s.bumpDPEpoch()
	queue = queue[:0]
	push := func(j int) {
		if visited[j] != stamp {
			visited[j] = stamp
			queue = append(queue, j)
		}
	}
	push(junc)
	if j2 := int(s.chJunc2[ci]); j2 >= 0 {
		push(j2)
	}
	preCalcs := s.stats.RateCalcs
	tracing := s.obs.Tracing()
	depth, levelEnd := 0, len(queue) // seeds are spill depth 0
	s.flagged = s.flagged[:0]
	for head := 0; head < len(queue); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(queue)
		}
		j := queue[head]
		b := s.b0[j] + s.dpAt(int(s.juncA[j]), src, dst, q) - s.dpAt(int(s.juncB[j]), src, dst, q)
		s.stats.Tested++
		thr := math.Min(math.Abs(s.dwFw[j]), math.Abs(s.dwBw[j]))
		flag := units.E*math.Abs(b) >= s.opt.Alpha*thr
		if tracing {
			s.obs.AdaptiveTest(j, units.E*math.Abs(b), s.opt.Alpha*thr, flag, depth, s.t)
		}
		if flag {
			s.stats.Flagged++
			s.flagged = append(s.flagged, j)
			for _, nb := range s.c.JunctionNeighbors(j) {
				push(nb)
			}
		} else {
			s.b0[j] = b
		}
	}
	s.recalcFlagged()
	s.recalcSecondary()
	s.obs.Adaptive(junc, len(queue), len(s.flagged), s.t)
	s.obs.Recomputed(s.flagged)
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
	return queue
}

// handleInputChange reacts to source voltages moving between t0 and the
// current time: island potentials get the exact external shift, and
// junction rates are either all recomputed (non-adaptive) or tested
// from the junctions in contact with the changed inputs (adaptive).
func (s *Sim) handleInputChange(visited []uint32, stamp uint32, queue []int) []int {
	vextNew := s.externalVoltages(s.vextScratch, s.t)
	changed := false
	for i := range vextNew {
		if !numeric.SameBits(vextNew[i], s.vext[i]) {
			changed = true
			break
		}
	}
	if !changed {
		return queue
	}
	// Apply the external shift to every island potential (exact up to
	// the engine's mext truncation, whose error is accounted below).
	ni := s.c.NumIslands()
	dv := s.dvIsl
	s.pe.ExternalDelta(dv, s.vext, vextNew)
	for k := 0; k < ni; k++ {
		s.v[k] += dv[k]
	}
	if s.pe.Truncated() {
		dvmax := 0.0
		for i := range vextNew {
			if a := math.Abs(vextNew[i] - s.vext[i]); a > dvmax {
				dvmax = a
			}
		}
		s.stats.CinvErrorBound += s.pe.InputErrorBound(dvmax)
		s.obs.CinvBound(s.stats.CinvErrorBound)
	}
	for i := range vextNew {
		if numeric.SameBits(vextNew[i], s.vext[i]) {
			s.dvExt[i] = 0
		} else {
			s.dvExt[i] = vextNew[i] - s.vext[i]
		}
	}
	// vextNew aliases vextScratch; swap it in as the current snapshot
	// and recycle the old array as the next change's scratch.
	s.vext, s.vextScratch = vextNew, s.vext

	if !s.opt.Adaptive {
		s.obs.InputChange(s.c.NumJunctions(), s.t)
		s.nonAdaptiveUpdate()
		return queue
	}
	// Inputs couple to junctions through arbitrary capacitor networks
	// (a logic gate's input is a pure capacitor), so there is no local
	// junction set to spill from. Instead the exact potential shift of
	// every node is already known (dvIsl, dvExt): fold it into each
	// junction's accumulated testing factor — O(J) arithmetic with no
	// rate evaluations — and recalculate only those over threshold.
	preCalcs := s.stats.RateCalcs
	tracing := s.obs.Tracing()
	s.flagged = s.flagged[:0]
	for j := 0; j < s.c.NumJunctions(); j++ {
		b := s.b0[j] + s.inputDeltaP(int(s.juncA[j])) - s.inputDeltaP(int(s.juncB[j]))
		s.stats.Tested++
		thr := math.Min(math.Abs(s.dwFw[j]), math.Abs(s.dwBw[j]))
		flag := units.E*math.Abs(b) >= s.opt.Alpha*thr
		if tracing {
			s.obs.AdaptiveTest(j, units.E*math.Abs(b), s.opt.Alpha*thr, flag, 0, s.t)
		}
		if flag {
			s.stats.Flagged++
			s.flagged = append(s.flagged, j)
		} else {
			s.b0[j] = b
		}
	}
	s.recalcFlagged()
	s.recalcSecondary()
	s.obs.InputChange(len(s.flagged), s.t)
	s.obs.Recomputed(s.flagged)
	s.obs.RateCalcs(s.stats.RateCalcs - preCalcs)
	return queue
}

// inputDeltaP reads the potential shift an input change imposed on a
// node from the per-island (dvIsl) and per-external (dvExt) delta
// arrays handleInputChange just filled.
func (s *Sim) inputDeltaP(node int) float64 {
	if k := s.c.IslandIndex(node); k >= 0 {
		return s.dvIsl[k]
	}
	return s.dvExt[s.extIdxOf[node]]
}

// --- Event application ---

// obsKinds maps channel kinds to journal event kinds.
var obsKinds = [...]obs.Kind{
	chElectron: obs.KindTunnel,
	chCotunnel: obs.KindCotunnel,
	chCooper:   obs.KindCooper,
}

// apply moves channel ci's carriers, updates every island potential
// exactly, and accumulates measured charge, event counts and dissipated
// energy per junction. It returns the free energy change dW of the
// event (for the observability hook in Step).
//
//semsim:hot
func (s *Sim) apply(ci int) float64 {
	kind := s.chKinds[ci]
	src, dst := int(s.chSrc[ci]), int(s.chDst[ci])
	junc := int(s.chJunc[ci])
	q := chQ[kind]
	// Free energy released by this event (evaluated with the exact
	// pre-event potentials; thermal fluctuations can make it negative).
	dw := s.pe.DeltaW(src, dst, q, s.nodeV(src), s.nodeV(dst))
	s.stats.Dissipated += -dw
	s.c.ApplyTransfer(s.n, src, dst, chCarriers[kind])
	touched := s.pe.Shift(s.v, src, dst, q)
	s.obs.EventTouched(touched)
	// Truncated rows shift each potential with a bounded per-event
	// error; exact engines contribute exactly zero here.
	s.stats.CinvErrorBound += s.pe.EventErrorBound(q)
	switch kind {
	case chCotunnel:
		s.stats.CotunnelEvents++
		dq := s.chargeSign(junc, src) * q
		s.charge[junc] += dq
		s.noise.Add(junc, s.t, dq)
		junc2 := int(s.chJunc2[ci])
		dq2 := s.chargeSign(junc2, int(s.chMid[ci])) * q
		s.charge[junc2] += dq2
		s.noise.Add(junc2, s.t, dq2)
	case chCooper:
		s.stats.CooperEvents++
		s.evCoop[junc]++
		dq := s.chargeSign(junc, src) * q
		s.charge[junc] += dq
		s.noise.Add(junc, s.t, dq)
	default:
		dq := s.chargeSign(junc, src) * q
		s.charge[junc] += dq
		s.noise.Add(junc, s.t, dq)
	}
	return dw
}

// chargeSign counts the event on junction jid and returns the sign of
// the conventional charge it moved A->B: electrons moving src->dst
// carry -q, so charge +q flows dst->src.
//
//semsim:hot
func (s *Sim) chargeSign(jid, src int) float64 {
	if int(s.juncA[jid]) == src {
		s.evFw[jid]++
		return -1 // electrons A->B: conventional charge B->A
	}
	s.evBw[jid]++
	return 1
}

// --- Main loop ---

// nextCap returns the earliest time at which the solver must stop and
// re-evaluate inputs (PWL breakpoint, ramp subdivision or sine cap),
// or +Inf for static circuits.
//
//semsim:hot
func (s *Sim) nextCap() float64 {
	cap := math.Inf(1)
	if s.horizon > 0 {
		cap = s.horizon
	}
	if s.static {
		return cap
	}
	for _, bp := range s.breaks {
		if bp > s.t {
			if bp < cap {
				cap = bp
			}
			break
		}
	}
	if s.maxStep > 0 && s.t+s.maxStep < cap {
		cap = s.t + s.maxStep
	}
	// Inside a moving PWL ramp, subdivide the segment. The ramp sources
	// were resolved once at construction (collectBreakpoints).
	for _, p := range s.ramps {
		if step := p.RampStep(s.t); step > 0 && s.t+step < cap { //hotalloc:ok interface call once per step per ramp source, not per rate
			cap = s.t + step
		}
	}
	return cap
}

// PWLRamp is implemented by sources that need step subdivision while
// their output is actively changing (circuit.PWL qualifies through the
// adapter below).
type PWLRamp interface {
	RampStep(t float64) float64
}

// Step advances the simulation by one iteration. It returns true if a
// tunnel event was applied, false if the step was capped by an input
// change. ErrBlockaded is returned when nothing can ever happen again.
//
// Selection-tree maintenance is amortized: rate updates staged by the
// previous iteration are committed here, in one flush, just before the
// tree is sampled. The tree state at sampling time is identical to
// flushing eagerly after every update, so trajectories are unchanged.
//
//semsim:hot
func (s *Sim) Step() (bool, error) {
	s.stats.Steps++
	if batch, rebuilt := s.fen.flush(); batch != 0 {
		s.obs.FenwickFlush(batch, rebuilt, s.t)
	}
	if invariant.Enabled {
		s.debugCheckFenwick()
	}
	total := s.fen.total()
	cap := s.nextCap()
	if total <= 0 || math.IsInf(1/total, 1) {
		if math.IsInf(cap, 1) {
			return false, ErrBlockaded
		}
		s.t = cap
		s.refreshExtV()
		s.scratch = s.handleInputChange(s.visited, s.bumpStamp(), s.scratch)
		s.recordProbes()
		return false, nil
	}
	dt := s.rnd.Exp(total)
	if s.t+dt > cap {
		// Stopping a Poisson process mid-interval and redrawing is exact
		// (memorylessness), so capping at breakpoints, ramp subdivisions
		// and the run horizon does not bias the dynamics.
		s.t = cap
		s.refreshExtV()
		s.scratch = s.handleInputChange(s.visited, s.bumpStamp(), s.scratch)
		s.recordProbes()
		return false, nil
	}
	s.t += dt
	s.refreshExtV()
	idx := s.fen.find(s.rnd.Float64() * total)
	var preSum int
	if invariant.Enabled {
		preSum = s.islandElectronSum()
	}
	dw := s.apply(idx)
	s.stats.Events++
	s.obs.Event(obsKinds[s.chKinds[idx]], int(s.chJunc[idx]), s.t, dw)
	if s.opt.RefreshEvery > 0 && s.stats.Events%uint64(s.opt.RefreshEvery) == 0 {
		s.fullRefresh()
	} else if s.opt.Adaptive {
		s.scratch = s.adaptiveUpdate(idx, s.visited, s.bumpStamp(), s.scratch)
	} else {
		s.nonAdaptiveUpdate()
	}
	if invariant.Enabled {
		s.debugCheckEvent(idx, preSum)
		s.debugCheckFenwick()
	}
	s.recordProbes()
	return true, nil
}

// Run advances until maxEvents tunnel events have been applied or the
// simulated time reaches maxTime (whichever is positive and comes
// first). A timed run never overshoots maxTime: the last Monte Carlo
// waiting interval is truncated at the horizon, which is unbiased by
// memorylessness and keeps waveforms and current averaging windows
// exact. It returns the number of events applied.
func (s *Sim) Run(maxEvents uint64, maxTime float64) (uint64, error) {
	if maxTime > 0 {
		s.horizon = maxTime
		defer func() { s.horizon = 0 }()
	}
	start := s.stats.Events
	for {
		if maxEvents > 0 && s.stats.Events-start >= maxEvents {
			return s.stats.Events - start, nil
		}
		if maxTime > 0 && s.t >= maxTime {
			return s.stats.Events - start, nil
		}
		if _, err := s.Step(); err != nil {
			return s.stats.Events - start, err
		}
	}
}
