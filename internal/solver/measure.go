package solver

import "fmt"

// bumpStamp advances the BFS visitation stamp, clearing the visited
// array only on the rare wraparound.
func (s *Sim) bumpStamp() uint32 {
	s.stamp++
	if s.stamp == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.stamp = 1
	}
	return s.stamp
}

// Time returns the simulated time in seconds.
func (s *Sim) Time() float64 { return s.t }

// Stats returns the accumulated work counters.
func (s *Sim) Stats() Stats { return s.stats }

// ElectronCount returns the excess electron number on an island node.
func (s *Sim) ElectronCount(node int) int {
	k := s.c.IslandIndex(node)
	if k < 0 {
		panic(fmt.Sprintf("solver: ElectronCount of non-island node %d", node))
	}
	return s.n[k]
}

// Potential returns the up-to-date potential of any node.
func (s *Sim) Potential(node int) float64 { return s.nodeV(node) }

// ResetMeasurement zeroes the per-junction charge and event counters
// — including any attached noise accumulators — and restarts the
// averaging window; call it after the warm-up transient. Counting
// windows keep their (possibly auto-calibrated) widths: only the
// accumulated statistics restart.
func (s *Sim) ResetMeasurement() {
	for i := range s.charge {
		s.charge[i] = 0
		s.evFw[i] = 0
		s.evBw[i] = 0
		s.evCoop[i] = 0
	}
	s.measStart = s.t
	s.noise.Reset(s.t)
}

// JunctionCooperEvents returns how many Cooper pairs crossed junction j
// (either direction) since the last ResetMeasurement. A JQP cycle shows
// pairs through one junction only; the DJQP cycle alternates pairs
// through both.
func (s *Sim) JunctionCooperEvents(j int) uint64 { return s.evCoop[j] }

// JunctionEvents returns how many carrier transfers crossed junction j
// in each direction (A->B, B->A) since the last ResetMeasurement.
// Cotunneling counts on both junctions it crosses; a Cooper pair counts
// as one transfer. Together with MeasureTime these give full counting
// statistics — e.g. the shot-noise Fano factor of a blockaded device.
func (s *Sim) JunctionEvents(j int) (fw, bw uint64) {
	return s.evFw[j], s.evBw[j]
}

// JunctionCharge returns the net conventional charge (coulombs) that
// has flowed from node A to node B of junction j since the last
// ResetMeasurement.
func (s *Sim) JunctionCharge(j int) float64 { return s.charge[j] }

// JunctionCurrent returns the time-averaged conventional current
// (amperes, positive A->B) through junction j over the measurement
// window. It returns 0 before any time has elapsed.
func (s *Sim) JunctionCurrent(j int) float64 {
	dt := s.t - s.measStart
	if dt <= 0 {
		return 0
	}
	return s.charge[j] / dt
}

// MeasureTime returns the elapsed measurement-window time.
func (s *Sim) MeasureTime() float64 { return s.t - s.measStart }

// AddProbe records the waveform of a node (one sample per applied
// event, decimated by Options.ProbeInterval).
func (s *Sim) AddProbe(node int) {
	s.probes = append(s.probes, node)
	s.lastProbe[node] = -1
	s.recordProbes()
}

// Waveform returns the recorded samples of a probed node.
func (s *Sim) Waveform(node int) []Sample { return s.waves[node] }

func (s *Sim) recordProbes() {
	for _, node := range s.probes {
		if last, ok := s.lastProbe[node]; ok && last >= 0 &&
			s.opt.ProbeInterval > 0 && s.t-last < s.opt.ProbeInterval {
			continue
		}
		s.waves[node] = append(s.waves[node], Sample{T: s.t, V: s.nodeV(node)})
		s.lastProbe[node] = s.t
	}
}
