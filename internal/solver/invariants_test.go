package solver

import (
	"math"
	"testing"
	"testing/quick"

	"semsim/internal/circuit"
	"semsim/internal/rng"
	"semsim/internal/units"
)

// TestAdaptiveZeroAlphaMatchesNonAdaptive: with a vanishing threshold
// every tested junction recalculates and spills to its neighbours, so
// on a junction-connected circuit the adaptive solver degenerates to
// the non-adaptive one — including identical RNG consumption, hence an
// identical event trajectory.
func TestAdaptiveZeroAlphaMatchesNonAdaptive(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New()
		l0 := c.AddNode("l0", circuit.External)
		l1 := c.AddNode("l1", circuit.External)
		c.SetSource(l0, circuit.DC(0.03))
		c.SetSource(l1, circuit.DC(-0.03))
		prev := l0
		for i := 0; i < 4; i++ {
			isl := c.AddNode("", circuit.Island)
			c.AddJunction(prev, isl, 1e6, 10*aF) // Ec ~ 8 mV: conducting at this bias
			prev = isl
		}
		c.AddJunction(prev, l1, 1e6, 10*aF)
		if err := c.Build(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	// With Alpha -> 0 the adaptive cache must never hold a stale rate:
	// after any number of events, every channel rate equals what a full
	// recomputation produces.
	s, err := New(build(), Options{Temp: 5, Seed: 99, Adaptive: true, Alpha: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2000, 0); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), s.fen.vals...)
	s.fullRefresh()
	for i, want := range s.fen.vals {
		got := before[i]
		den := math.Abs(want)
		if den == 0 {
			den = 1
		}
		if math.Abs(got-want)/den > 1e-9 {
			t.Fatalf("channel %d stale at alpha=0: cached %g, fresh %g", i, got, want)
		}
	}

	// And with a normal threshold on a stage-isolated circuit (weakly
	// coupled SET stages behind big wire capacitors), staleness must
	// actually exist — the approximation is doing something — but stay
	// bounded.
	buildStages := func() *circuit.Circuit {
		c := circuit.New()
		gnd := c.AddNode("gnd", circuit.External)
		c.SetSource(gnd, circuit.DC(0))
		prevWire := -1
		for st := 0; st < 8; st++ {
			vs := c.AddNode("", circuit.External)
			vd := c.AddNode("", circuit.External)
			c.SetSource(vs, circuit.DC(0.025))
			c.SetSource(vd, circuit.DC(-0.025))
			isl := c.AddNode("", circuit.Island)
			wire := c.AddNode("", circuit.Island)
			c.AddJunction(vs, isl, 1e6, aF)
			c.AddJunction(isl, vd, 1e6, aF)
			c.AddCap(isl, wire, 2*aF)
			c.AddCap(wire, gnd, 100*aF)
			if prevWire >= 0 {
				// Fig. 4-style chaining: the previous stage's wire gates
				// this stage's island — weak but nonzero coupling, so
				// distant rates drift slightly and go stale.
				c.AddCap(prevWire, isl, 2*aF)
			}
			prevWire = wire
		}
		if err := c.Build(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	s2, err := New(buildStages(), Options{Temp: 5, Seed: 99, Adaptive: true, Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(2000, 0); err != nil {
		t.Fatal(err)
	}
	before2 := append([]float64(nil), s2.fen.vals...)
	s2.fullRefresh()
	maxRate := 0.0
	for _, v := range s2.fen.vals {
		if v > maxRate {
			maxRate = v
		}
	}
	anyStale := false
	maxRelSignificant := 0.0
	for i, want := range s2.fen.vals {
		if before2[i] != want {
			anyStale = true
		}
		// Exponentially suppressed channels may be off by large factors
		// while contributing nothing to the dynamics; the alpha bound
		// only protects the channels that actually fire.
		if want < 1e-3*maxRate {
			continue
		}
		if rel := math.Abs(before2[i]-want) / want; rel > maxRelSignificant {
			maxRelSignificant = rel
		}
	}
	if !anyStale {
		t.Fatal("alpha=0.05 produced no staleness at all (adaptive path inert?)")
	}
	if maxRelSignificant > 0.5 {
		t.Fatalf("alpha=0.05 staleness on significant channels out of control: %g", maxRelSignificant)
	}
}

// TestChargeConservation: electrons are only created or destroyed at
// external leads; with every junction internal, the total electron
// number on the islands is invariant.
func TestChargeConservation(t *testing.T) {
	c := circuit.New()
	gnd := c.AddNode("gnd", circuit.External)
	c.SetSource(gnd, circuit.DC(0))
	gate := c.AddNode("gate", circuit.External)
	// Strong gate bias drives internal rearrangement.
	c.SetSource(gate, circuit.DC(0.05))
	var isls []int
	for i := 0; i < 3; i++ {
		isls = append(isls, c.AddNode("", circuit.Island))
	}
	// A ring of junctions between the islands only.
	c.AddJunction(isls[0], isls[1], 1e6, aF)
	c.AddJunction(isls[1], isls[2], 1e6, aF)
	c.AddJunction(isls[2], isls[0], 1e6, aF)
	// Capacitive anchors (no tunneling to the leads).
	c.AddCap(isls[0], gnd, 2*aF)
	c.AddCap(isls[1], gnd, 2*aF)
	c.AddCap(isls[2], gate, 2*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Options{Temp: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2000; step++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, isl := range isls {
			total += s.ElectronCount(isl)
		}
		if total != 0 {
			t.Fatalf("step %d: total island electrons %d, want 0", step, total)
		}
	}
}

// TestRunNeverOvershootsHorizon (regression): the last Monte Carlo
// waiting interval used to overshoot the requested stop time by however
// long the final random wait was, corrupting measurement windows.
func TestRunNeverOvershootsHorizon(t *testing.T) {
	f := func(seed uint64) bool {
		c, _ := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.002, Vd: -0.002, // deep blockade: huge waiting times
		})
		s, err := New(c, Options{Temp: 1, Seed: seed})
		if err != nil {
			return false
		}
		const horizon = 1e-7
		if _, err := s.Run(0, horizon); err != nil && err != ErrBlockaded {
			return false
		}
		return s.Time() <= horizon*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestEquilibriumOccupationMatchesBoltzmann: with no bias the island
// charge histogram sampled over time must follow exp(-E(n)/kT).
func TestEquilibriumOccupationMatchesBoltzmann(t *testing.T) {
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0, Vd: 0, Vg: 0,
	})
	temp := 40.0 // hot enough that n = +-1 states are well populated
	s, err := New(c, Options{Temp: temp, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Time-weighted histogram of the island occupation.
	occ := map[int]float64{}
	last := s.Time()
	for i := 0; i < 120000; i++ {
		n := s.ElectronCount(nd.Island)
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		occ[n] += s.Time() - last
		last = s.Time()
	}
	ec := units.ChargingEnergy(5 * aF)
	kT := units.KB * temp
	want := math.Exp(-ec / kT) // p(+-1)/p(0)
	for _, n := range []int{1, -1} {
		got := occ[n] / occ[0]
		if math.Abs(got-want)/want > 0.08 {
			t.Fatalf("p(%d)/p(0) = %.4f, Boltzmann %.4f", n, got, want)
		}
	}
}

// TestFenwickMatchesLinearScan cross-validates the event-selection tree
// against a direct prefix-sum scan under random updates.
func TestFenwickMatchesLinearScan(t *testing.T) {
	r := rng.New(31)
	const n = 37
	f := newFenwick(n)
	vals := make([]float64, n)
	for iter := 0; iter < 5000; iter++ {
		i := r.Intn(n)
		v := r.Float64() * 1e9
		if r.Intn(5) == 0 {
			v = 0
		}
		f.set(i, v)
		vals[i] = v
		total := 0.0
		for _, x := range vals {
			total += x
		}
		if total == 0 {
			continue
		}
		if math.Abs(f.total()-total) > 1e-6*total {
			t.Fatalf("totals diverged: %g vs %g", f.total(), total)
		}
		u := r.Float64() * total
		// Linear-scan reference.
		wantIdx := n - 1
		acc := 0.0
		for i, x := range vals {
			acc += x
			if u < acc {
				wantIdx = i
				break
			}
		}
		got := f.find(u)
		if got != wantIdx {
			// FP ordering differences are acceptable only at zero-width
			// boundaries; both picks must carry positive rate and the
			// cumulative sums must agree at the boundary.
			if vals[got] <= 0 {
				t.Fatalf("find(%g) chose zero-rate channel %d (want %d)", u, got, wantIdx)
			}
			// Tolerate off-by-boundary mismatch when u is within FP noise
			// of the cumulative edge.
			edge := 0.0
			for i := 0; i <= wantIdx; i++ {
				edge += vals[i]
			}
			if math.Abs(u-edge) > 1e-6*total && math.Abs(u-(edge-vals[wantIdx])) > 1e-6*total {
				t.Fatalf("find(%g) = %d, want %d", u, got, wantIdx)
			}
		}
	}
}
