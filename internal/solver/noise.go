package solver

import (
	"fmt"

	"semsim/internal/noise"
)

// EnableNoise attaches a streaming noise/FCS recorder (see
// internal/noise) to the simulation: every applied tunnel event's
// transferred charge is folded into per-junction accumulators for
// counting-window cumulants (Fano factor), the Sverdlov-style spectral
// density on cfg's ω grids, and optional binned autocorrelation.
// Recording is passive — a run with a recorder attached is
// bit-identical to one without (the Add hook reads the event stream,
// never solver state) — and allocation-free per event, gated by the
// zero-alloc suite. Call it before running (typically right after New
// or Reset); the accumulators restart with the measurement window on
// ResetMeasurement and clear completely on Reset. Enabling replaces
// any previous recorder.
func (s *Sim) EnableNoise(cfg noise.Config) error {
	for _, jc := range cfg.Juncs {
		if jc.Junc < 0 || jc.Junc >= s.c.NumJunctions() {
			return fmt.Errorf("solver: noise recording on junction %d: circuit has %d junctions", jc.Junc, s.c.NumJunctions())
		}
	}
	r, err := noise.New(cfg, s.c.NumJunctions())
	if err != nil {
		return err
	}
	r.SetObserver(s.obs)
	r.Reset(s.measStart)
	s.noise = r
	return nil
}

// Noise returns the attached noise recorder, or nil when noise
// recording is disabled.
func (s *Sim) Noise() *noise.Recorder { return s.noise }

// NoiseStats reads junction j's finalized noise statistics over the
// current measurement window; ok is false when j is not recorded (or
// recording is disabled).
func (s *Sim) NoiseStats(j int) (noise.RunStats, bool) {
	return s.noise.Stats(j, s.t)
}

// AutoNoiseWindows calibrates every auto (Window == 0) counting window
// of the attached recorder from the run so far: τ is chosen so an
// average window holds about noise.DefaultWindowEvents tunnel events
// at the observed rate. The jobs engine calls it at the end of the
// warm-up phase, immediately before ResetMeasurement — pure arithmetic
// on deterministic inputs (event count and elapsed time), so a resumed
// run derives the identical window. No-op without a recorder.
func (s *Sim) AutoNoiseWindows() {
	s.noise.AutoWindow(s.stats.Events, s.t-s.measStart)
}
