package solver

import "sync"

// pool is a persistent team of worker goroutines for within-run
// parallel rate recomputation. Work is dispatched as contiguous index
// shards with a fixed assignment — shard w of [0, total) always covers
// the same range for a given worker count — so every result lands in a
// slot owned by exactly one worker and the caller can reduce in index
// order. That fixed structure is what keeps parallel runs bit-identical
// to serial ones: the same floating-point values are computed and
// combined in the same order, only on more cores.
//
// The pool is sized once (Options.Parallel) and its goroutines persist
// for the lifetime of the Sim: a refresh dispatch costs two channel
// operations per worker instead of goroutine spawns. The WaitGroup
// lives in the pool rather than per dispatch, so run/runRanges allocate
// nothing: one pool serves one Sim and dispatches are never concurrent
// (run blocks until the batch drains before returning). Sim.Close (or
// its finalizer) terminates the workers.
type pool struct {
	workers int // shard count, including the calling goroutine
	jobs    chan poolJob
	wg      sync.WaitGroup
}

type poolJob struct {
	fn     func(worker, lo, hi int)
	worker int
	lo, hi int
}

// newPool starts workers-1 goroutines; the calling goroutine acts as
// worker 0 during run, so a pool of size 1 spawns nothing.
func newPool(workers int) *pool {
	p := &pool{workers: workers, jobs: make(chan poolJob)}
	for i := 0; i < workers-1; i++ {
		go func() {
			for j := range p.jobs {
				j.fn(j.worker, j.lo, j.hi)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run splits [0, total) into one contiguous shard per worker and blocks
// until every shard has been processed. fn must only write state owned
// by its index range (plus per-worker scratch indexed by worker), and
// must not touch the Sim's shared mutable state — counters are reduced
// by the caller after run returns.
func (p *pool) run(total int, fn func(worker, lo, hi int)) {
	if total <= 0 {
		return
	}
	n := p.workers
	if n > total {
		n = total
	}
	if n <= 1 {
		fn(0, 0, total)
		return
	}
	base, extra := total/n, total%n
	lo := 0
	first := poolJob{}
	for w := 0; w < n; w++ {
		size := base
		if w < extra {
			size++
		}
		job := poolJob{fn: fn, worker: w, lo: lo, hi: lo + size}
		lo += size
		if w == 0 {
			first = job
			continue
		}
		p.wg.Add(1)
		p.jobs <- job
	}
	// The caller works shard 0 while the others run.
	first.fn(first.worker, first.lo, first.hi)
	p.wg.Wait()
}

// runRanges is run with caller-chosen shard boundaries instead of equal
// index counts: shard w covers [bounds[w], bounds[w+1]). The sparse
// refresh uses nonzero-balanced boundaries so shard wall times stay even
// when row lengths are skewed. len(bounds)-1 must not exceed the pool's
// worker count. Empty shards are skipped.
func (p *pool) runRanges(bounds []int, fn func(worker, lo, hi int)) {
	m := len(bounds) - 1
	if m <= 0 {
		return
	}
	if m == 1 {
		fn(0, bounds[0], bounds[1])
		return
	}
	for w := 1; w < m; w++ {
		if bounds[w] == bounds[w+1] {
			continue
		}
		p.wg.Add(1)
		p.jobs <- poolJob{fn: fn, worker: w, lo: bounds[w], hi: bounds[w+1]}
	}
	// The caller works shard 0 while the others run.
	if bounds[0] < bounds[1] {
		fn(0, bounds[0], bounds[1])
	}
	p.wg.Wait()
}

// close terminates the worker goroutines. run must not be called after.
func (p *pool) close() { close(p.jobs) }
