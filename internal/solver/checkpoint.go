package solver

import (
	"errors"
	"fmt"
)

// Checkpoint is a resumable snapshot of a simulation's dynamic state.
// It is plain data (JSON-serializable) and deliberately excludes the
// circuit: restoring requires a Sim built over the same circuit, which
// re-derives all cached rates. A restored non-adaptive simulation
// continues bit-exactly: the random stream, electron configuration,
// clock and measurement counters all resume where they stopped. An
// adaptive simulation resumes from a fully refreshed rate cache (its
// mid-run staleness is an approximation artifact, not state worth
// preserving), so its continuation is statistically equivalent rather
// than bit-identical.
type Checkpoint struct {
	Time      float64   `json:"time"`
	Electrons []int     `json:"electrons"`
	Rng       []byte    `json:"rng"`
	Charge    []float64 `json:"charge"`
	EvFw      []uint64  `json:"ev_fw"`
	EvBw      []uint64  `json:"ev_bw"`
	EvCoop    []uint64  `json:"ev_coop"`
	MeasStart float64   `json:"meas_start"`
	Stats     Stats     `json:"stats"`
}

// Checkpoint captures the current dynamic state.
func (s *Sim) Checkpoint() (*Checkpoint, error) {
	rngState, err := s.rnd.MarshalBinary()
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{
		Time:      s.t,
		Electrons: append([]int(nil), s.n...),
		Rng:       rngState,
		Charge:    append([]float64(nil), s.charge...),
		EvFw:      append([]uint64(nil), s.evFw...),
		EvBw:      append([]uint64(nil), s.evBw...),
		EvCoop:    append([]uint64(nil), s.evCoop...),
		MeasStart: s.measStart,
		Stats:     s.stats,
	}
	return cp, nil
}

// Restore resets the simulation to a checkpoint taken from a Sim over
// the same circuit (validated by vector lengths). Probes and their
// recorded waveforms are not part of the checkpoint and are left as
// they are.
func (s *Sim) Restore(cp *Checkpoint) error {
	if cp == nil {
		return errors.New("solver: nil checkpoint")
	}
	if len(cp.Electrons) != len(s.n) {
		return fmt.Errorf("solver: checkpoint has %d islands, circuit has %d", len(cp.Electrons), len(s.n))
	}
	if len(cp.Charge) != len(s.charge) || len(cp.EvFw) != len(s.evFw) ||
		len(cp.EvBw) != len(s.evBw) || len(cp.EvCoop) != len(s.evCoop) {
		return errors.New("solver: checkpoint junction counts do not match the circuit")
	}
	if err := s.rnd.UnmarshalBinary(cp.Rng); err != nil {
		return err
	}
	s.t = cp.Time
	copy(s.n, cp.Electrons)
	copy(s.charge, cp.Charge)
	copy(s.evFw, cp.EvFw)
	copy(s.evBw, cp.EvBw)
	copy(s.evCoop, cp.EvCoop)
	s.measStart = cp.MeasStart
	// Probe decimation clocks may hold timestamps from after the
	// checkpoint (or from a different run); reset them so sampling
	// resumes immediately at the restored time instead of waiting for
	// the clock to catch up.
	for node := range s.lastProbe {
		s.lastProbe[node] = -1
	}
	// The electron configuration just changed under the solver, so the
	// incremental potentials are stale by construction — disarm the
	// drift invariant until the refresh below re-establishes a baseline.
	s.dbgInit = false
	// Rebuild all derived state (potentials, rates, selection tree) for
	// the restored configuration. The refresh happens before the stats
	// are installed so its own work (one full refresh, O(channels) rate
	// evaluations) is not billed to the restored counters: a restored
	// Stats must equal the checkpointed Stats exactly.
	s.fullRefresh()
	s.stats = cp.Stats
	return nil
}
