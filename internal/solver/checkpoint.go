package solver

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"semsim/internal/noise"
)

// CheckpointVersion is the current encoding version of Checkpoint.
// Restore refuses snapshots written with any other version — including
// version 0, i.e. JSON from before the header existed — so a stale or
// foreign checkpoint fails loudly instead of resuming into a subtly
// different simulation.
const CheckpointVersion = 1

// Checkpoint is a resumable snapshot of a simulation's dynamic state.
// It is plain data (JSON-serializable) and deliberately excludes the
// circuit: restoring requires a Sim built over the same circuit, which
// re-derives all cached rates. A restored non-adaptive simulation
// continues bit-exactly: the random stream, electron configuration,
// clock, waveforms and measurement counters all resume where they
// stopped. An adaptive simulation restored from a snapshot taken at a
// full-refresh boundary (Stats.Events a multiple of
// Options.RefreshEvery) also continues bit-exactly, because the restore
// refresh recomputes precisely the state the uninterrupted run had at
// that boundary; away from a boundary its continuation is statistically
// equivalent rather than bit-identical (mid-run rate-cache staleness is
// an approximation artifact, not state worth preserving). See
// DESIGN.md §10 for the full determinism argument.
//
// The encoding is self-describing: Version names the layout and
// OptionsHash fingerprints every trajectory-relevant solver option, so
// resuming under mismatched options (different temperature, adaptive
// threshold, refresh period, C^-1 truncation, rate tables, ...) is
// rejected loudly instead of silently diverging. Options.Parallel and
// Options.Seed are deliberately excluded: worker count is proven
// bit-identical, and the live RNG state travels in the snapshot.
//
//statecover:root save=json
type Checkpoint struct {
	Version     int       `json:"version"`
	OptionsHash string    `json:"options_hash"`
	Time        float64   `json:"time"`
	Electrons   []int     `json:"electrons"`
	Rng         []byte    `json:"rng"`
	Charge      []float64 `json:"charge"`
	EvFw        []uint64  `json:"ev_fw"`
	EvBw        []uint64  `json:"ev_bw"`
	EvCoop      []uint64  `json:"ev_coop"`
	MeasStart   float64   `json:"meas_start"`
	Stats       Stats     `json:"stats"`
	// Probes and Waves carry the waveform recorder: which nodes are
	// probed and every sample recorded so far. A nil Probes (snapshots
	// of simulations without probes, or legacy data) leaves the target
	// simulation's probe set untouched on Restore.
	Probes []int            `json:"probes,omitempty"`
	Waves  map[int][]Sample `json:"waves,omitempty"`
	// Noise carries the streaming noise-accumulator state when noise
	// recording is enabled (EnableNoise); nil otherwise. Restore
	// requires the presence to match the target simulation — a noise
	// measurement must never silently resume without its accumulators,
	// nor adopt accumulators it never had.
	Noise *noise.State `json:"noise,omitempty"`
}

// trajectoryHash fingerprints the options that influence the simulated
// trajectory, after defaulting. Two Sims whose hashes match produce
// bit-identical continuations from the same dynamic state; options that
// provably cannot change the trajectory (Parallel, Obs, Seed — the RNG
// state is checkpointed directly) are excluded. SparsePotentials is
// included even though the exact (eps = 0) sparse engine matches the
// dense one bit-for-bit: refusing a provably-equivalent engine swap is
// cheaper than arguing about it in a post-mortem.
func (o *Options) trajectoryHash() string {
	const offset, prime = 1469598103934665603, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mixf := func(f float64) { mix(math.Float64bits(f)) }
	mixb := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	mixf(o.Temp)
	mixb(o.Adaptive)
	mixf(o.Alpha)
	mix(uint64(o.RefreshEvery))
	mixb(o.Cotunneling)
	mixf(o.CPWidthFloor)
	mixf(o.ProbeInterval)
	mixb(o.SparsePotentials)
	mixf(o.CinvTruncation)
	mixb(o.RateTables)
	return fmt.Sprintf("%016x", h)
}

// Checkpoint captures the current dynamic state.
func (s *Sim) Checkpoint() (*Checkpoint, error) {
	rngState, err := s.rnd.MarshalBinary()
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{
		Version:     CheckpointVersion,
		OptionsHash: s.opt.trajectoryHash(),
		Time:        s.t,
		Electrons:   append([]int(nil), s.n...),
		Rng:         rngState,
		Charge:      append([]float64(nil), s.charge...),
		EvFw:        append([]uint64(nil), s.evFw...),
		EvBw:        append([]uint64(nil), s.evBw...),
		EvCoop:      append([]uint64(nil), s.evCoop...),
		MeasStart:   s.measStart,
		Stats:       s.stats,
	}
	if len(s.probes) > 0 {
		cp.Probes = append([]int(nil), s.probes...)
		cp.Waves = make(map[int][]Sample, len(s.waves))
		for node, w := range s.waves {
			cp.Waves[node] = append([]Sample(nil), w...)
		}
	}
	cp.Noise = s.noise.State()
	return cp, nil
}

// Restore resets the simulation to a checkpoint taken from a Sim over
// the same circuit (validated by vector lengths) under
// trajectory-equivalent options (validated by the checkpoint's options
// hash). When the checkpoint carries probe state, the simulation's
// probe set and recorded waveforms are replaced by the snapshot's;
// otherwise existing probes are kept and only their decimation clocks
// are rewound.
func (s *Sim) Restore(cp *Checkpoint) error {
	if cp == nil {
		return errors.New("solver: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		if cp.Version == 0 {
			return fmt.Errorf("solver: checkpoint has no version header (pre-versioning snapshot or foreign data); regenerate it with this build")
		}
		return fmt.Errorf("solver: checkpoint version %d, this build reads version %d", cp.Version, CheckpointVersion)
	}
	if want := s.opt.trajectoryHash(); cp.OptionsHash != want {
		return fmt.Errorf("solver: checkpoint was written under different trajectory-relevant options (hash %s, this simulation %s): temperature, adaptive/alpha/refresh, cotunneling, probe interval, sparse/cinv-eps and rate-tables settings must all match", cp.OptionsHash, want)
	}
	if len(cp.Electrons) != len(s.n) {
		return fmt.Errorf("solver: checkpoint has %d islands, circuit has %d", len(cp.Electrons), len(s.n))
	}
	if len(cp.Charge) != len(s.charge) || len(cp.EvFw) != len(s.evFw) ||
		len(cp.EvBw) != len(s.evBw) || len(cp.EvCoop) != len(s.evCoop) {
		return errors.New("solver: checkpoint junction counts do not match the circuit")
	}
	// Noise accumulators are measurement state: their presence must
	// match in both directions, and RestoreState validates the
	// configuration fingerprint before mutating anything — so the
	// checks run before the simulation is touched.
	switch {
	case cp.Noise != nil && s.noise == nil:
		return errors.New("solver: checkpoint carries noise-accumulator state but this simulation records no noise; call EnableNoise with the original configuration before Restore")
	case cp.Noise == nil && s.noise != nil:
		return errors.New("solver: this simulation records noise but the checkpoint carries no accumulator state (snapshot of a run without noise recording)")
	case cp.Noise != nil:
		if err := s.noise.RestoreState(cp.Noise); err != nil {
			return err
		}
	}
	if err := s.rnd.UnmarshalBinary(cp.Rng); err != nil {
		return err
	}
	s.t = cp.Time
	copy(s.n, cp.Electrons)
	copy(s.charge, cp.Charge)
	copy(s.evFw, cp.EvFw)
	copy(s.evBw, cp.EvBw)
	copy(s.evCoop, cp.EvCoop)
	s.measStart = cp.MeasStart
	if cp.Probes != nil {
		// Adopt the snapshot's probe set and waveforms wholesale, and
		// restore each decimation clock to the timestamp of the last
		// recorded sample — exactly the value the uninterrupted run held —
		// so post-resume sampling decisions are bit-identical.
		s.probes = append(s.probes[:0], cp.Probes...)
		s.waves = make(map[int][]Sample, len(cp.Waves))
		s.lastProbe = make(map[int]float64, len(s.probes))
		for _, node := range s.probes {
			s.lastProbe[node] = -1
		}
		for node, w := range cp.Waves {
			s.waves[node] = append([]Sample(nil), w...)
			if len(w) > 0 {
				s.lastProbe[node] = w[len(w)-1].T
			}
		}
	} else {
		// Probe decimation clocks may hold timestamps from after the
		// checkpoint (or from a different run); reset them so sampling
		// resumes immediately at the restored time instead of waiting for
		// the clock to catch up.
		for node := range s.lastProbe {
			s.lastProbe[node] = -1
		}
	}
	// The electron configuration just changed under the solver, so the
	// incremental potentials are stale by construction — disarm the
	// drift invariant until the refresh below re-establishes a baseline.
	s.dbgInit = false
	// Rebuild all derived state (potentials, rates, selection tree) for
	// the restored configuration. The refresh happens before the stats
	// are installed so its own work (one full refresh, O(channels) rate
	// evaluations) is not billed to the restored counters: a restored
	// Stats must equal the checkpointed Stats exactly.
	s.fullRefresh()
	s.stats = cp.Stats
	return nil
}

// RefreshPeriod reports the effective full-refresh interval in events
// (Options.RefreshEvery after defaulting). Checkpoints meant for
// bit-identical adaptive resume must be taken when Stats().Events is a
// multiple of this period; internal/jobs aligns its snapshot cadence to
// it.
func (s *Sim) RefreshPeriod() int { return s.opt.RefreshEvery }

// ProbeNodes returns the ids of the currently probed nodes, sorted.
func (s *Sim) ProbeNodes() []int {
	out := append([]int(nil), s.probes...)
	sort.Ints(out)
	return out
}
