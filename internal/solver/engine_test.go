// Tests of the within-run parallel rate engine against the serial path.
// They live in an external test package so they can drive the solver
// through a realistic internal/bench workload (bench imports solver, so
// an internal test would be an import cycle).
package solver_test

import (
	"runtime"
	"testing"
	"time"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
	"semsim/internal/solver"
)

// engineRun executes the delay workload of benchmark b for maxEvents
// events and returns everything a determinism comparison needs.
type engineRun struct {
	stats   solver.Stats
	t       float64
	wave    []solver.Sample
	current []float64
	wall    time.Duration
}

func workload(t *testing.T, name string) (*logicnet.Expanded, bench.Benchmark) {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	ex, err := bench.BuildWorkload(b, logicnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return ex, b
}

func runWorkload(t *testing.T, ex *logicnet.Expanded, b bench.Benchmark, opt solver.Options, maxEvents uint64) engineRun {
	t.Helper()
	s, err := solver.New(ex.Circuit, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out := ex.Wire[b.OutputWire]
	s.AddProbe(out)
	start := time.Now()
	if _, err := s.Run(maxEvents, 0); err != nil && err != solver.ErrBlockaded {
		t.Fatal(err)
	}
	r := engineRun{stats: s.Stats(), t: s.Time(), wave: s.Waveform(out), wall: time.Since(start)}
	for j := 0; j < ex.Circuit.NumJunctions(); j++ {
		r.current = append(r.current, s.JunctionCurrent(j))
	}
	return r
}

func requireIdentical(t *testing.T, what string, serial, parallel engineRun) {
	t.Helper()
	if serial.stats != parallel.stats {
		t.Fatalf("%s: stats differ\nserial:   %+v\nparallel: %+v", what, serial.stats, parallel.stats)
	}
	if serial.t != parallel.t {
		t.Fatalf("%s: simulated time differs: %g vs %g", what, serial.t, parallel.t)
	}
	if len(serial.wave) != len(parallel.wave) {
		t.Fatalf("%s: waveform lengths differ: %d vs %d", what, len(serial.wave), len(parallel.wave))
	}
	for i := range serial.wave {
		if serial.wave[i] != parallel.wave[i] {
			t.Fatalf("%s: waveform sample %d differs: %+v vs %+v", what, i, serial.wave[i], parallel.wave[i])
		}
	}
	for j := range serial.current {
		if serial.current[j] != parallel.current[j] {
			t.Fatalf("%s: junction %d current differs: %g vs %g", what, j, serial.current[j], parallel.current[j])
		}
	}
}

// TestParallelMatchesSerial is the engine's core guarantee: the same
// seed produces bit-identical trajectories — events, waveforms, currents
// and work counters — at any worker count. 74LS153 (224 junctions) is
// comfortably above the dispatch cutoff, so the pool really engages;
// forcing 4 workers on any host is fine since goroutines interleave on
// however many cores exist.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("MC workload in -short mode")
	}
	ex, b := workload(t, "74LS153")
	const events = 3000
	cases := []struct {
		name string
		opt  solver.Options
	}{
		{"non-adaptive", solver.Options{Temp: bench.WorkloadTemp, Seed: 17}},
		{"adaptive", solver.Options{Temp: bench.WorkloadTemp, Seed: 17, Adaptive: true, RefreshEvery: 64}},
		{"rate-tables", solver.Options{Temp: bench.WorkloadTemp, Seed: 17, RateTables: true}},
	}
	for _, c := range cases {
		serialOpt := c.opt
		serialOpt.Parallel = 1
		parallelOpt := c.opt
		parallelOpt.Parallel = 4
		serial := runWorkload(t, ex, b, serialOpt, events)
		parallel := runWorkload(t, ex, b, parallelOpt, events)
		if serial.stats.Events == 0 {
			t.Fatalf("%s: no events simulated", c.name)
		}
		requireIdentical(t, c.name, serial, parallel)
	}
}

// TestRateTablesMatchExactStatistically checks that routing rates
// through the interpolation tables leaves the physics intact: same seed,
// same trajectory event-for-event on a real workload. With table errors
// below 1e-6 the sampled event sequence only diverges when a random draw
// lands within the error band of a cumulative rate boundary — not in
// 3000 events at these rates — so an exact comparison doubles as a
// regression test for the tables' accuracy plumbing.
func TestRateTablesMatchExactStatistically(t *testing.T) {
	if testing.Short() {
		t.Skip("MC workload in -short mode")
	}
	ex, b := workload(t, "74LS153")
	exact := runWorkload(t, ex, b, solver.Options{Temp: bench.WorkloadTemp, Seed: 23, Parallel: 1}, 2000)
	tab := runWorkload(t, ex, b, solver.Options{Temp: bench.WorkloadTemp, Seed: 23, Parallel: 1, RateTables: true}, 2000)
	if exact.stats.Events != tab.stats.Events {
		t.Fatalf("event counts diverged: exact %d vs tables %d", exact.stats.Events, tab.stats.Events)
	}
	// Currents must agree to well within Monte Carlo noise; with the
	// same event sequence they should be essentially identical.
	for j := range exact.current {
		d := exact.current[j] - tab.current[j]
		if d < 0 {
			d = -d
		}
		scale := 1e-12
		if a := exact.current[j]; a > scale || -a > scale {
			scale = a
			if scale < 0 {
				scale = -scale
			}
		}
		if d > 1e-3*scale {
			t.Fatalf("junction %d current: exact %g vs tables %g", j, exact.current[j], tab.current[j])
		}
	}
}

// TestParallelSpeedup verifies the engine actually buys wall time on a
// >= 1000-junction circuit. It needs real cores: on fewer than 4 the
// workers just time-slice, so the test skips (the determinism tests
// above still exercise the parallel code paths there).
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("MC timing run in -short mode")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need >= 4 cores for a meaningful speedup measurement, have %d", cores)
	}
	ex, b := workload(t, "c432") // 2072 junctions
	const events = 4000
	serial := runWorkload(t, ex, b, solver.Options{Temp: bench.WorkloadTemp, Seed: 3, Parallel: 1}, events)
	parallel := runWorkload(t, ex, b, solver.Options{Temp: bench.WorkloadTemp, Seed: 3, Parallel: cores}, events)
	requireIdentical(t, "speedup workload", serial, parallel)
	speedup := serial.wall.Seconds() / parallel.wall.Seconds()
	t.Logf("serial %v, parallel %v on %d cores: %.2fx", serial.wall, parallel.wall, cores, speedup)
	if speedup < 1.5 {
		t.Fatalf("parallel run not faster: serial %v vs parallel %v (%.2fx, want >= 1.5x at %d cores)",
			serial.wall, parallel.wall, speedup, cores)
	}
}
