package solver

// Runtime invariant checks, active only under the semsimdebug build
// tag. Every method here is called behind `if invariant.Enabled`, and
// Enabled is a constant, so in the default build the calls — and the
// O(islands)/O(channels) work they do — are eliminated at compile time.
// None of the checks mutates simulator state or statistics: a debug
// trajectory is bit-identical to a release one.

import (
	"math"

	"semsim/internal/invariant"
	"semsim/internal/orthodox"
)

// islandElectronSum totals the tracked electrons across all islands.
func (s *Sim) islandElectronSum() int {
	total := 0
	for _, ni := range s.n {
		total += ni
	}
	return total
}

// debugCheckEvent asserts electron conservation for the event just
// applied: islands gain exactly the carriers that entered from src and
// lose exactly those that left for dst; external nodes are reservoirs.
func (s *Sim) debugCheckEvent(ch *channel, preSum int) {
	want := preSum
	if s.c.IslandIndex(ch.src) >= 0 {
		want -= ch.carriers
	}
	if s.c.IslandIndex(ch.dst) >= 0 {
		want += ch.carriers
	}
	got := s.islandElectronSum()
	invariant.Checkf(got == want,
		"solver: electron conservation violated: island total %d after event on junction %d, want %d",
		got, ch.junc, want)
}

// debugCheckFenwick asserts the selection tree is consistent: no staged
// updates left behind, every channel rate finite and non-negative, and
// the tree's total within floating-point drift of a naive sum over the
// value array.
func (s *Sim) debugCheckFenwick() {
	f := s.fen
	invariant.Checkf(len(f.pending) == 0,
		"solver: selection tree consulted with %d staged updates unflushed", len(f.pending))
	if len(f.pending) != 0 {
		return
	}
	naive := 0.0
	valid := true
	for i, v := range f.vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			invariant.Checkf(false, "solver: channel %d has invalid rate %g", i, v)
			valid = false
		}
		naive += v
	}
	if !valid {
		return
	}
	tot := f.total()
	tol := 1e-9 * (naive + 1)
	invariant.Checkf(math.Abs(tot-naive) <= tol,
		"solver: fenwick total %g disagrees with naive sum %g (|diff| %g > tol %g)",
		tot, naive, math.Abs(tot-naive), tol)
}

// debugCheckPotentialDrift compares the incrementally maintained island
// potentials against a fresh solve through the same potential engine
// using the same external voltages, before a full refresh overwrites
// them. Incremental updates are exact arithmetic with respect to the
// engine's (possibly truncated) rows, so only rounding-level drift is
// tolerated; a sign error or wrong C^-1 row shows up at millivolt
// scale. Using s.pe for the fresh solve keeps the tolerance valid for
// truncated engines too: truncation error is a property of the rows,
// identical on both sides of the comparison.
func (s *Sim) debugCheckPotentialDrift() {
	ni := s.c.NumIslands()
	if ni == 0 {
		return
	}
	q := s.c.ChargeVector(nil, s.n)
	fresh := make([]float64, ni)
	s.pe.SolveRange(fresh, q, s.vext, 0, ni)
	maxAbs := 0.0
	for _, v := range fresh {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 1e-9 * (maxAbs + 1)
	for k := 0; k < ni; k++ {
		invariant.Checkf(math.Abs(s.v[k]-fresh[k]) <= tol,
			"solver: island %d potential drifted: incremental %g, fresh %g (tol %g)",
			k, s.v[k], fresh[k], tol)
	}
}

// debugCheckKernels spot-checks the tabulated normal-state kernel
// against exact orthodox evaluation at the free-energy changes the
// refresh just cached. The kernel guarantees relative error below 1e-6
// inside the tabulated band and evaluates exactly outside it, so 1e-5
// is generous; rates too small to ever be selected are skipped.
func (s *Sim) debugCheckKernels() {
	if s.normK == nil {
		return
	}
	nj := s.c.NumJunctions()
	stride := nj / 4
	if stride == 0 {
		stride = 1
	}
	for j := 0; j < nj; j += stride {
		dw := s.dwFw[j]
		tab := s.ratePref[j] * s.normK.G(dw*s.invKT)
		exact := orthodox.Rate(dw, s.c.Junction(j).R, s.opt.Temp)
		if exact < 1e-100 {
			invariant.Checkf(tab < 1e-90,
				"solver: junction %d tabulated rate %g but exact rate vanishes", j, tab)
			continue
		}
		invariant.Checkf(math.Abs(tab-exact) <= 1e-5*exact,
			"solver: junction %d tabulated rate %g deviates from exact %g beyond 1e-5 relative",
			j, tab, exact)
	}
}
