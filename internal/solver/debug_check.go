package solver

// Runtime invariant checks, active only under the semsimdebug build
// tag. Every method here is called behind `if invariant.Enabled`, and
// Enabled is a constant, so in the default build the calls — and the
// O(islands)/O(channels) work they do — are eliminated at compile time.
// None of the checks mutates simulator state or statistics: a debug
// trajectory is bit-identical to a release one.

import (
	"math"

	"semsim/internal/invariant"
	"semsim/internal/orthodox"
)

// islandElectronSum totals the tracked electrons across all islands.
func (s *Sim) islandElectronSum() int {
	total := 0
	for _, ni := range s.n {
		total += ni
	}
	return total
}

// debugCheckEvent asserts electron conservation for the event just
// applied on channel ci: islands gain exactly the carriers that entered
// from src and lose exactly those that left for dst; external nodes are
// reservoirs.
func (s *Sim) debugCheckEvent(ci, preSum int) {
	want := preSum
	carriers := chCarriers[s.chKinds[ci]]
	if s.c.IslandIndex(int(s.chSrc[ci])) >= 0 {
		want -= carriers
	}
	if s.c.IslandIndex(int(s.chDst[ci])) >= 0 {
		want += carriers
	}
	got := s.islandElectronSum()
	invariant.Checkf(got == want,
		"solver: electron conservation violated: island total %d after event on junction %d, want %d",
		got, int(s.chJunc[ci]), want)
}

// debugCheckFenwick asserts the selection tree is consistent: every
// channel rate finite and non-negative, and the tree's committed total
// plus the staged-but-unflushed deltas within floating-point drift of a
// naive sum over the value array. Staged batches are legal at any time
// (the solver defers its flush to the next selection); the tree and the
// pending deltas must jointly account for vals exactly.
func (s *Sim) debugCheckFenwick() {
	f := s.fen
	naive := 0.0
	valid := true
	for i, v := range f.vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			invariant.Checkf(false, "solver: channel %d has invalid rate %g", i, v)
			valid = false
		}
		naive += v
	}
	if !valid {
		return
	}
	staged, stagedAbs := 0.0, 0.0
	for _, d := range f.pendDelta {
		staged += d
		stagedAbs += math.Abs(d)
	}
	// The committed total and the staged deltas can cancel: after an
	// event, a rate of order 1e11 in the tree may be brought to ~0 by a
	// pending delta of order -1e11, so tot carries rounding residue
	// proportional to the cancelled magnitude, not to the final sum. The
	// tolerance therefore scales with the magnitudes summed, while still
	// sitting many orders below any real corruption of the value array.
	tot := f.total() + staged
	tol := 1e-9*(naive+1) + 1e-12*(math.Abs(f.total())+stagedAbs)
	invariant.Checkf(math.Abs(tot-naive) <= tol,
		"solver: fenwick total %g (incl. %d staged) disagrees with naive sum %g (|diff| %g > tol %g)",
		tot, f.pendingCount(), naive, math.Abs(tot-naive), tol)
}

// debugCheckPotentialDrift compares the incrementally maintained island
// potentials against a fresh solve through the same potential engine
// using the same external voltages, before a full refresh overwrites
// them. Incremental updates are exact arithmetic with respect to the
// engine's (possibly truncated) rows, so only rounding-level drift is
// tolerated; a sign error or wrong C^-1 row shows up at millivolt
// scale. Using s.pe for the fresh solve keeps the tolerance valid for
// truncated engines too: truncation error is a property of the rows,
// identical on both sides of the comparison.
func (s *Sim) debugCheckPotentialDrift() {
	ni := s.c.NumIslands()
	if ni == 0 {
		return
	}
	q := s.c.ChargeVector(nil, s.n)
	fresh := make([]float64, ni)
	s.pe.SolveRange(fresh, q, s.vext, 0, ni)
	maxAbs := 0.0
	for _, v := range fresh {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 1e-9 * (maxAbs + 1)
	for k := 0; k < ni; k++ {
		invariant.Checkf(math.Abs(s.v[k]-fresh[k]) <= tol,
			"solver: island %d potential drifted: incremental %g, fresh %g (tol %g)",
			k, s.v[k], fresh[k], tol)
	}
}

// debugCheckKernels spot-checks the tabulated normal-state kernel
// against exact orthodox evaluation at the free-energy changes the
// refresh just cached. The kernel guarantees relative error below 1e-6
// inside the tabulated band and in the ohmic lower tail, so 1e-5 is
// generous; above the band the kernel truncates to zero, so there the
// check bounds the discarded exact rate by the truncation floor
// e^-KernelXMax of the junction's thermal rate scale. Rates too small
// to ever be selected are skipped.
func (s *Sim) debugCheckKernels() {
	if s.normK == nil {
		return
	}
	nj := s.c.NumJunctions()
	stride := nj / 4
	if stride == 0 {
		stride = 1
	}
	for j := 0; j < nj; j += stride {
		dw := s.dwFw[j]
		x := dw * s.invKT
		tab := s.ratePref[j] * s.normK.G(x)
		exact := orthodox.Rate(dw, s.c.Junction(j).R, s.opt.Temp)
		if x > orthodox.KernelXMax {
			floor := s.ratePref[j] * (x + 1) * math.Exp(-orthodox.KernelXMax)
			invariant.Checkf(tab == 0 && exact <= floor,
				"solver: junction %d above band x=%g: tabulated %g (want 0), exact %g (floor %g)",
				j, x, tab, exact, floor)
			continue
		}
		if exact < 1e-100 {
			invariant.Checkf(tab < 1e-90,
				"solver: junction %d tabulated rate %g but exact rate vanishes", j, tab)
			continue
		}
		invariant.Checkf(math.Abs(tab-exact) <= 1e-5*exact,
			"solver: junction %d tabulated rate %g deviates from exact %g beyond 1e-5 relative",
			j, tab, exact)
	}
}
