package solver

import "testing"

// FuzzFenwick differentially tests the selection tree against a naive
// O(n) model under arbitrary op sequences. All weights are multiples of
// 0.25 with magnitude below 2^12, and the sampling point is floored to
// the same grid, so every partial sum and subtraction in both
// implementations is exact in float64 — the comparisons below are
// legitimately bitwise, with no rounding slop to hide bugs in.
func FuzzFenwick(f *testing.F) {
	f.Add([]byte{8, 0, 3, 100, 1, 5, 200, 2, 4, 5, 128})
	f.Add([]byte{1, 0, 0, 65, 4, 5, 255})
	f.Add([]byte{63, 1, 62, 90, 1, 62, 10, 3, 4, 5, 1})
	f.Add([]byte{16, 1, 2, 0, 1, 2, 64, 2, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := int(data[0])%64 + 1
		fen := newFenwick(n)
		model := make([]float64, n)
		naiveTotal := func() float64 {
			s := 0.0
			for _, v := range model {
				s += v
			}
			return s
		}
		naiveFind := func(u float64) int {
			s := 0.0
			last := -1
			for i, v := range model {
				s += v
				if v > 0 {
					last = i
				}
				if s > u {
					return i
				}
			}
			return last
		}
		checkTotals := func(op string) {
			for i, v := range model {
				if got := fen.at(i); got != v {
					t.Fatalf("after %s: at(%d) = %g, model %g", op, i, got, v)
				}
			}
			if got, want := fen.total(), naiveTotal(); got != want {
				t.Fatalf("after %s: total() = %g, naive sum %g", op, got, want)
			}
		}
		staged := false
		for p := 1; p+2 < len(data); p += 3 {
			op, idx := data[p]%6, int(data[p+1])%n
			// Grid-exact weight in [-16, 47.75]; negatives exercise the
			// clamp-to-zero rule.
			val := float64(int(data[p+2])-64) / 4
			mval := val
			if mval < 0 {
				mval = 0
			}
			switch op {
			case 0: // immediate point update
				if !staged {
					fen.set(idx, val)
					model[idx] = mval
					checkTotals("set")
				}
			case 1: // staged update, tree stale until flush
				fen.stage(idx, val)
				model[idx] = mval
				staged = true
			case 2:
				fen.flush()
				staged = false
				checkTotals("flush")
			case 3:
				fen.rebuild()
				staged = false
				checkTotals("rebuild")
			case 4:
				if !staged {
					checkTotals("query")
				}
			case 5:
				if staged {
					continue
				}
				total := fen.total()
				if total <= 0 {
					continue
				}
				frac := float64(data[p+2]) / 256
				u := float64(int(frac*total*4)) / 4 // floor to the 0.25 grid
				got, want := fen.find(u), naiveFind(u)
				if got != want {
					t.Fatalf("find(%g) = %d, naive %d (total %g, model %v)", u, got, want, total, model)
				}
			}
		}
	})
}
