package solver

import (
	"fmt"
	"sort"

	"semsim/internal/circuit"
)

// Reset rewinds a simulation to the t = 0 state of a freshly
// constructed one — new seed, new DC source values — while reusing
// every compiled artifact: the circuit topology, the CSR capacitance
// matrix, the Cholesky factor and truncated C^-1 rows inside the
// potential engine, the flat kernel tables, the channel descriptors and
// the worker pool. This is the compile-once half of the amortized sweep
// engine: a sweep worker builds one Sim per circuit and Resets it per
// point instead of paying CSR assembly, factorization and table
// construction for every bias point.
//
// dcOverride maps external node ids to replacement DC voltages; only
// nodes driven by a circuit.DC source may be overridden (time-dependent
// sources define a schedule, not a bias point). Overrides installed by
// a previous Reset are cleared first, so each call describes the full
// bias point. The reset simulation is bit-identical to solver.New over
// a circuit compiled with the same DC values and the same seed: the
// substituted voltages are the exact floats the recompiled sources
// would produce, the RNG rewinds onto NewBatch(seed)'s stream, and the
// closing fullRefresh recomputes potentials, rates and the selection
// tree exactly as New's does (TestResetMatchesFresh asserts this
// trajectory-for-trajectory).
//
// The probe set persists across Resets (recorded waveforms are
// dropped and a fresh t = 0 sample is taken per probe, matching New
// followed by AddProbe); measurement counters, stats and checkpoint
// eligibility all restart from zero. Restoring a checkpoint into a
// reset Sim is supported and lands on the same trajectory as restoring
// into a fresh build: Restore's own refresh re-derives all cached state
// from the restored configuration and the currently installed sources.
// Reset must not be called concurrently with Run/Step on the same Sim.
func (s *Sim) Reset(seed uint64, dcOverride map[int]float64) error {
	if err := s.installOverrides(dcOverride); err != nil {
		return err
	}
	s.rnd.Reseed(seed)
	s.opt.Seed = seed
	s.t = 0
	s.horizon = 0
	for i := range s.n {
		s.n[i] = 0
	}
	for i := range s.charge {
		s.charge[i] = 0
		s.evFw[i] = 0
		s.evBw[i] = 0
		s.evCoop[i] = 0
	}
	s.measStart = 0
	// Noise accumulators clear completely — auto-calibrated window
	// widths roll back to their configured values — so a session reused
	// across tasks measures exactly what a freshly built one would.
	s.noise.FullReset(0)
	s.stats = Stats{}
	for node := range s.waves {
		delete(s.waves, node)
	}
	for node := range s.lastProbe {
		s.lastProbe[node] = -1
	}
	// The electron configuration and sources just changed under the
	// solver; disarm the drift invariant until the refresh below
	// re-establishes a baseline, and force the static-source voltage
	// cache to refill with the new bias.
	s.dbgInit = false
	s.extVFresh = false
	if s.superOn {
		// The quasi-particle table voltage range depends on the source
		// magnitudes: recompute it so the table bucket matches what a
		// fresh build at these voltages would select. Tables come from
		// the shared qpCache, so a re-lookup is a map hit, not a rebuild.
		if err := s.buildSuper(); err != nil {
			return err
		}
	}
	// Stats were zeroed above, so the refresh bills its own work (one
	// full refresh, O(channels) rate calculations) exactly as New's
	// construction refresh does.
	s.fullRefresh()
	s.recordProbes()
	s.obs.SessionReset()
	return nil
}

// installOverrides validates and installs the per-Sim DC override
// layer, clearing any previous one.
func (s *Sim) installOverrides(dcOverride map[int]float64) error {
	if s.srcMask != nil {
		for e := range s.srcMask {
			s.srcMask[e] = false
			s.srcOverride[e] = 0
		}
	}
	if len(dcOverride) == 0 {
		return nil
	}
	if s.srcMask == nil {
		s.srcMask = make([]bool, len(s.extIDs))
		s.srcOverride = make([]float64, len(s.extIDs))
	}
	// Sorted key order so validation failures report the same node no
	// matter how the caller built the map.
	ids := make([]int, 0, len(dcOverride))
	for id := range dcOverride {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if id < 0 || id >= len(s.extIdxOf) || s.extIdxOf[id] < 0 {
			return fmt.Errorf("solver: Reset override on node %d: not an external (source-driven) node", id)
		}
		if _, ok := s.c.SourceOf(id).(circuit.DC); !ok {
			return fmt.Errorf("solver: Reset override on node %d (%s): only DC sources can be overridden per point", id, s.c.NodeName(id))
		}
		e := s.extIdxOf[id]
		s.srcMask[e] = true
		s.srcOverride[e] = dcOverride[id]
	}
	return nil
}
