// Observability must be passive: an instrumented run — metrics alone
// or full tracing — produces a bit-identical trajectory to an
// uninstrumented one, on the serial path and the parallel rate engine.
// This is the acceptance gate for wiring internal/obs through the
// solver; it reuses the determinism harness of the rate-engine tests.
package solver_test

import (
	"runtime"
	"testing"

	"semsim/internal/bench"
	"semsim/internal/obs"
	"semsim/internal/solver"
)

func TestObsDoesNotPerturbTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("MC workload in -short mode")
	}
	ex, b := workload(t, "c432")
	const events = 3000
	base := solver.Options{Temp: bench.WorkloadTemp, Seed: 29, Adaptive: true, RateTables: true}

	parallelWorkers := runtime.GOMAXPROCS(0)
	if parallelWorkers < 2 {
		parallelWorkers = 2
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", parallelWorkers},
	} {
		opt := base
		opt.Parallel = mode.workers
		plain := runWorkload(t, ex, b, opt, events)
		if plain.stats.Events == 0 {
			t.Fatalf("%s: no events simulated", mode.name)
		}

		metricsOpt := opt
		metricsOpt.Obs = obs.New(obs.Config{})
		metrics := runWorkload(t, ex, b, metricsOpt, events)
		requireIdentical(t, mode.name+"/metrics-only", plain, metrics)

		tracingOpt := opt
		tracingOpt.Obs = obs.New(obs.Config{Trace: true, TraceCap: 1 << 12})
		traced := runWorkload(t, ex, b, tracingOpt, events)
		requireIdentical(t, mode.name+"/full-tracing", plain, traced)

		// The registry mirror must agree exactly with the Stats struct
		// (the counters are fed from the same increments).
		snap := tracingOpt.Obs.Registry().Snapshot()
		mirrors := map[string]uint64{
			"solver.events":           traced.stats.Events,
			"solver.rate_calcs":       traced.stats.RateCalcs,
			"solver.full_refreshes":   traced.stats.FullRefreshes,
			"solver.adaptive_tested":  traced.stats.Tested,
			"solver.adaptive_flagged": traced.stats.Flagged,
			"solver.cotunnel_events":  traced.stats.CotunnelEvents,
			"solver.cooper_events":    traced.stats.CooperEvents,
		}
		for name, want := range mirrors {
			if got := snap.Counters[name]; got != want {
				t.Errorf("%s: registry %s = %d, Stats says %d", mode.name, name, got, want)
			}
		}
		if got := snap.Gauges["solver.dissipated_j"]; got != traced.stats.Dissipated {
			t.Errorf("%s: registry dissipated = %g, Stats says %g", mode.name, got, traced.stats.Dissipated)
		}
		if j := tracingOpt.Obs.Journal(); j.Total() == 0 {
			t.Errorf("%s: tracing run journaled nothing", mode.name)
		}
		// Adaptive runs must populate the recompute heatmap.
		if heat := tracingOpt.Obs.Heatmap(); obs.SummarizeHeatmap(heat).Total == 0 {
			t.Errorf("%s: adaptive run left the recompute heatmap empty", mode.name)
		}
	}
}

// TestGlobalObserverFallback: a Sim built with no Options.Obs picks up
// the process-wide observer, which is how `-obs-addr` instruments CLI
// runs without plumbing.
func TestGlobalObserverFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("MC workload in -short mode")
	}
	o := obs.New(obs.Config{})
	obs.SetGlobal(o)
	defer obs.SetGlobal(nil)
	ex, b := workload(t, "74LS153")
	run := runWorkload(t, ex, b, solver.Options{Temp: bench.WorkloadTemp, Seed: 5, Parallel: 1}, 500)
	if got := o.Registry().Snapshot().Counters["solver.events"]; got != run.stats.Events {
		t.Fatalf("global observer saw %d events, run had %d", got, run.stats.Events)
	}
}
