package solver

import (
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/invariant"
)

// Hot-path cost gates for the per-event loop. BenchmarkStepHotPath
// measures a full Step (flush, sample, apply, recompute) in the
// production configuration — serial, non-adaptive, tabulated kernels —
// and TestStepHotPathZeroAlloc turns its allocation count into a hard
// CI gate: the steady-state event loop must never touch the garbage
// collector. The sharded-recompute benchmarks pin the exact-vs-table
// kernel cost side by side, so a table regression (the interpolation
// path coming out slower than closed-form evaluation, as the old
// searched-PCHIP kernel did) is visible in `go test -bench` output
// rather than only in the end-to-end BENCH report.

// hotChain builds a conducting chain of n islands between two biased
// leads — every junction live, so a non-adaptive Step recomputes 2(n+1)
// rates, which is the workload shape of the large benchmarks.
func hotChain(tb testing.TB, n int) *circuit.Circuit {
	tb.Helper()
	c := circuit.New()
	l0 := c.AddNode("l0", circuit.External)
	l1 := c.AddNode("l1", circuit.External)
	c.SetSource(l0, circuit.DC(0.03))
	c.SetSource(l1, circuit.DC(-0.03))
	prev := l0
	for i := 0; i < n; i++ {
		isl := c.AddNode("", circuit.Island)
		c.AddJunction(prev, isl, 1e6, 10*aF) // Ec ~ 8 mV: conducting at this bias
		prev = isl
	}
	c.AddJunction(prev, l1, 1e6, 10*aF)
	if err := c.Build(); err != nil {
		tb.Fatal(err)
	}
	return c
}

func benchStep(b *testing.B, opt Options) {
	s, err := New(hotChain(b, 16), opt)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Prime past the cold start (first flush grows the pending arrays to
	// their steady-state capacity).
	if _, err := s.Run(64, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepHotPath(b *testing.B) {
	benchStep(b, Options{Temp: 2, Seed: 7, RateTables: true})
}

func BenchmarkStepHotPathExact(b *testing.B) {
	benchStep(b, Options{Temp: 2, Seed: 7})
}

func BenchmarkStepHotPathAdaptive(b *testing.B) {
	benchStep(b, Options{Temp: 2, Seed: 7, RateTables: true, Adaptive: true, RefreshEvery: 1024})
}

// benchRecompute times one full sharded junction-rate recomputation —
// the inner loop that dominates non-adaptive cost on the large
// benchmarks — without the surrounding event machinery.
func benchRecompute(b *testing.B, opt Options) {
	s, err := New(hotChain(b, 128), opt)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.refreshAllJunctions()
	}
}

func BenchmarkShardedRecomputeTables(b *testing.B) {
	benchRecompute(b, Options{Temp: 2, Seed: 7, RateTables: true})
}

func BenchmarkShardedRecomputeExact(b *testing.B) {
	benchRecompute(b, Options{Temp: 2, Seed: 7})
}

// TestStepHotPathZeroAlloc is the CI gate: the steady-state event loop
// must run allocation-free in every engine configuration — exact and
// tabulated kernels, non-adaptive and adaptive maintenance.
func TestStepHotPathZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking under -short")
	}
	if invariant.Enabled {
		t.Skip("semsimdebug invariant checks allocate scratch buffers by design")
	}
	benches := map[string]func(*testing.B){
		"Tables":   BenchmarkStepHotPath,
		"Exact":    BenchmarkStepHotPathExact,
		"Adaptive": BenchmarkStepHotPathAdaptive,
	}
	for name, fn := range benches {
		res := testing.Benchmark(fn)
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Errorf("StepHotPath%s: %d allocs/op, want 0 (event loop must be allocation-free)", name, allocs)
		}
	}
}

// TestTablesNotSlowerThanExact pins the satellite regression: with the
// flat uniform-grid kernel, routing rates through the tables must never
// cost more than exact evaluation. Timing asserts are flaky on shared
// machines, so the gate is generous — tables must reach at least 80% of
// exact recompute throughput, where the expected ratio is well above 1.
func TestTablesNotSlowerThanExact(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking under -short")
	}
	exact := testing.Benchmark(BenchmarkShardedRecomputeExact)
	tables := testing.Benchmark(BenchmarkShardedRecomputeTables)
	if tables.NsPerOp() > exact.NsPerOp()*5/4 {
		t.Errorf("tabulated recompute slower than exact: %d ns/op vs %d ns/op",
			tables.NsPerOp(), exact.NsPerOp())
	}
}
