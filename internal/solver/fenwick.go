package solver

// fenwick is a binary indexed tree over non-negative channel rates. It
// supports O(log n) point updates and O(log n) sampling of an index by
// cumulative rate, which is what lets the adaptive solver pay only for
// the channels it actually recomputed.
type fenwick struct {
	n    int
	tree []float64 // 1-based BIT partial sums
	vals []float64 // current value per index
}

func newFenwick(n int) *fenwick {
	return &fenwick{n: n, tree: make([]float64, n+1), vals: make([]float64, n)}
}

// set assigns value v (>= 0) to index i.
func (f *fenwick) set(i int, v float64) {
	if v < 0 {
		v = 0
	}
	d := v - f.vals[i]
	if d == 0 {
		return
	}
	f.vals[i] = v
	for j := i + 1; j <= f.n; j += j & (-j) {
		f.tree[j] += d
	}
}

// at returns the current value at index i.
func (f *fenwick) at(i int) float64 { return f.vals[i] }

// total returns the sum of all values.
func (f *fenwick) total() float64 {
	s := 0.0
	for j := f.n; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// rebuild recomputes the tree from vals, clearing accumulated
// floating-point drift from many incremental updates.
func (f *fenwick) rebuild() {
	for i := range f.tree {
		f.tree[i] = 0
	}
	for i, v := range f.vals {
		for j := i + 1; j <= f.n; j += j & (-j) {
			f.tree[j] += v
		}
	}
}

// find returns the smallest index i such that the cumulative sum
// through i exceeds u. u must be in [0, total()). If rounding pushes
// the search past the end, the last index with a positive value is
// returned.
func (f *fenwick) find(u float64) int {
	idx := 0
	// Highest power of two <= n.
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && f.tree[next] <= u {
			u -= f.tree[next]
			idx = next
		}
	}
	if idx >= f.n {
		idx = f.n - 1
	}
	// Guard against landing on a zero-rate channel through FP rounding.
	if f.vals[idx] <= 0 {
		for i := idx; i >= 0; i-- {
			if f.vals[i] > 0 {
				return i
			}
		}
		for i := idx + 1; i < f.n; i++ {
			if f.vals[i] > 0 {
				return i
			}
		}
	}
	return idx
}
