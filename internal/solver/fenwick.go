package solver

// fenwick is a binary indexed tree over non-negative channel rates. It
// supports O(log n) point updates, O(n) bulk (re)construction, and
// O(log n) sampling of an index by cumulative rate, which is what lets
// the adaptive solver pay only for the channels it actually recomputed.
//
// Updates come in two flavours:
//
//   - set(i, v): immediate point update, O(log n);
//   - stage(i, v) ... flush(): batched updates. stage records the new
//     value (vals is current immediately, the tree is not); flush
//     commits the whole batch, choosing between incremental point
//     updates and a bulk O(n) rebuild, whichever is cheaper. The
//     non-adaptive solver stages every channel each event, so its
//     selection-tree maintenance costs O(n) instead of O(n log n).
//
// Staged deltas live in parallel index/delta arrays with an epoch-
// stamped dedup table: staging the same index twice in one batch
// accumulates into a single slot, so a batch never exceeds n entries
// no matter how many capped steps pile up between selections. Callers
// may defer flush() until just before total()/find() — both refuse a
// non-empty batch in debug builds.
type fenwick struct {
	n    int
	tree []float64 // 1-based BIT partial sums
	vals []float64 // current value per index
	log2 int       // ceil(log2(n)), the per-update tree cost

	// Staged batch, struct-of-arrays: pendIdx[k] gets tree delta
	// pendDelta[k]. slot/stamp dedup staged indices per epoch: index i
	// has a live slot iff stamp[i] == epoch.
	pendIdx   []int32
	pendDelta []float64
	slot      []int32
	stamp     []uint32
	epoch     uint32
}

func newFenwick(n int) *fenwick {
	log2 := 0
	for 1<<log2 < n {
		log2++
	}
	return &fenwick{
		n:         n,
		tree:      make([]float64, n+1),
		vals:      make([]float64, n),
		log2:      log2,
		pendIdx:   make([]int32, 0, n),
		pendDelta: make([]float64, 0, n),
		slot:      make([]int32, n),
		stamp:     make([]uint32, n),
		epoch:     1,
	}
}

// newFenwickFrom builds a tree over the given weights in O(n); negative
// weights clamp to zero. The slice is copied.
func newFenwickFrom(weights []float64) *fenwick {
	f := newFenwick(len(weights))
	for i, v := range weights {
		if v > 0 {
			f.vals[i] = v
		}
	}
	f.build()
	return f
}

// build recomputes the tree from vals in O(n): each node accumulates
// its own value plus its children's partial sums, then pushes the total
// to its parent.
func (f *fenwick) build() {
	for i := 1; i <= f.n; i++ {
		f.tree[i] = f.vals[i-1]
	}
	for i := 1; i <= f.n; i++ {
		if j := i + i&(-i); j <= f.n {
			f.tree[j] += f.tree[i]
		}
	}
}

// set assigns value v (>= 0) to index i, updating the tree immediately.
func (f *fenwick) set(i int, v float64) {
	if v < 0 {
		v = 0
	}
	d := v - f.vals[i]
	if d == 0 {
		return
	}
	f.vals[i] = v
	for j := i + 1; j <= f.n; j += j & (-j) {
		f.tree[j] += d
	}
}

// stage assigns value v (>= 0) to index i without updating the tree;
// the caller must flush (or rebuild) before total() or find(). Staging
// the same index twice in one batch accumulates into one slot.
//
//semsim:hot
func (f *fenwick) stage(i int, v float64) {
	if v < 0 {
		v = 0
	}
	d := v - f.vals[i]
	if d == 0 {
		return
	}
	f.vals[i] = v
	if f.stamp[i] == f.epoch {
		f.pendDelta[f.slot[i]] += d
		return
	}
	f.stamp[i] = f.epoch
	f.slot[i] = int32(len(f.pendIdx))
	f.pendIdx = append(f.pendIdx, int32(i)) //hotalloc:ok capacity n preallocated, dedup bounds length
	f.pendDelta = append(f.pendDelta, d)    //hotalloc:ok capacity n preallocated, dedup bounds length
}

// clearPending drops the staged batch and opens a new dedup epoch.
func (f *fenwick) clearPending() {
	f.pendIdx = f.pendIdx[:0]
	f.pendDelta = f.pendDelta[:0]
	f.epoch++
	if f.epoch == 0 { // uint32 wrap: stamps from the old cycle must not alias
		for i := range f.stamp {
			f.stamp[i] = 0
		}
		f.epoch = 1
	}
}

// pendingCount reports the number of distinct staged indices.
func (f *fenwick) pendingCount() int { return len(f.pendIdx) }

// flush commits the staged batch: incremental O(k log n) point updates
// for small batches, a bulk O(n) rebuild once that would be slower. It
// reports the batch size and which strategy it chose (observability
// input; callers that don't care ignore the results).
//
//semsim:hot
func (f *fenwick) flush() (batch int, rebuilt bool) {
	batch = len(f.pendIdx)
	if batch == 0 {
		return 0, false
	}
	if batch*f.log2 >= f.n {
		f.rebuild()
		return batch, true
	}
	for k, i := range f.pendIdx {
		d := f.pendDelta[k]
		for j := int(i) + 1; j <= f.n; j += j & (-j) {
			f.tree[j] += d
		}
	}
	f.clearPending()
	return batch, false
}

// at returns the current value at index i.
func (f *fenwick) at(i int) float64 { return f.vals[i] }

// total returns the sum of all values.
//
//semsim:hot
func (f *fenwick) total() float64 {
	s := 0.0
	for j := f.n; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// rebuild recomputes the tree from vals in O(n), discarding any staged
// deltas (vals already holds the staged values) and clearing
// accumulated floating-point drift from incremental updates.
func (f *fenwick) rebuild() {
	f.clearPending()
	f.build()
}

// find returns the smallest index i such that the cumulative sum
// through i exceeds u. u must be in [0, total()). If rounding pushes
// the search past the end, the last index with a positive value is
// returned.
//
//semsim:hot
func (f *fenwick) find(u float64) int {
	idx := 0
	// Highest power of two <= n.
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && f.tree[next] <= u {
			u -= f.tree[next]
			idx = next
		}
	}
	if idx >= f.n {
		idx = f.n - 1
	}
	// Guard against landing on a zero-rate channel through FP rounding.
	if f.vals[idx] <= 0 {
		for i := idx; i >= 0; i-- {
			if f.vals[i] > 0 {
				return i
			}
		}
		for i := idx + 1; i < f.n; i++ {
			if f.vals[i] > 0 {
				return i
			}
		}
	}
	return idx
}
