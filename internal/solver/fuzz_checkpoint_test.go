package solver

import (
	"encoding/json"
	"testing"

	"semsim/internal/circuit"
)

// FuzzCheckpointDecode hardens the resume path against corrupt or
// adversarial snapshot bytes: whatever JSON json.Unmarshal accepts,
// Restore must either reject it with an error or produce a simulation
// that runs and re-checkpoints without panicking. The statecover and
// resumepurity passes prove the snapshot is complete and deterministic;
// this fuzzer proves the decode half fails loudly instead of resuming
// from garbage.
func FuzzCheckpointDecode(f *testing.F) {
	mk := func() *Sim {
		c, _ := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.02, Vd: -0.02, Vg: 0.005,
		})
		s, err := New(c, Options{Temp: 5, Seed: 77})
		if err != nil {
			panic(err)
		}
		return s
	}

	// Seed with a genuine snapshot, so mutations explore the accept
	// path (valid options hash, valid vector lengths) and not only the
	// early rejections.
	seed := mk()
	if _, err := seed.Run(200, 0); err != nil {
		f.Fatal(err)
	}
	cp, err := seed.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"options_hash":"0000000000000000"}`))
	f.Add([]byte(`{"version":99,"electrons":[1,2,3]}`))
	f.Add([]byte(`{"version":1,"rng":"AAAA","electrons":[0],"charge":[0,0]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var cp Checkpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			return // not JSON for this shape: nothing to harden
		}
		target := mk()
		if err := target.Restore(&cp); err != nil {
			return // rejected: the correct answer for malformed snapshots
		}
		// Accepted: the restored simulation must be usable. Physics
		// errors (e.g. a blockaded circuit from absurd-but-well-formed
		// electron counts) are legitimate; panics and corrupt
		// re-snapshots are not.
		if _, err := target.Run(50, 0); err != nil {
			return
		}
		if _, err := target.Checkpoint(); err != nil {
			t.Fatalf("restored simulation cannot re-checkpoint: %v", err)
		}
	})
}
