package solver

import (
	"math"
	"testing"

	"semsim/internal/circuit"
)

// TestShotNoiseFanoFactor validates the solver's full counting
// statistics against an exact result: a symmetric double junction far
// above threshold at T -> 0 shows sub-Poissonian shot noise with Fano
// factor F = Var(N)/Mean(N) = 1/2 (Korotkov; de Jong & Beenakker).
func TestShotNoiseFanoFactor(t *testing.T) {
	const (
		runs = 300
		tau  = 40e-9 // counting window
	)
	counts := make([]float64, runs)
	for r := 0; r < runs; r++ {
		c, nd := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.1, Vd: -0.1, // far above the 32 mV threshold
		})
		s, err := New(c, Options{Temp: 0, Seed: 1000 + uint64(r)})
		if err != nil {
			t.Fatal(err)
		}
		// Skip the initial transient, then count over a fixed window.
		if _, err := s.Run(200, 0); err != nil {
			t.Fatal(err)
		}
		s.ResetMeasurement()
		if _, err := s.Run(0, s.Time()+tau); err != nil {
			t.Fatal(err)
		}
		// Electrons stream drain -> island -> source at this bias, i.e.
		// B -> A through the (island, drain) junction.
		fw, bw := s.JunctionEvents(nd.JuncDrain)
		counts[r] = float64(bw) - float64(fw)
	}
	mean, varc := 0.0, 0.0
	for _, n := range counts {
		mean += n
	}
	mean /= runs
	for _, n := range counts {
		varc += (n - mean) * (n - mean)
	}
	varc /= runs - 1
	if mean < 50 {
		t.Fatalf("mean count %g too small for statistics; raise tau", mean)
	}
	fano := varc / mean
	// 1/2 with finite-charging corrections and sampling noise.
	if fano < 0.35 || fano > 0.7 {
		t.Fatalf("Fano factor %.3f, want ~0.5 (mean %g, var %g)", fano, mean, varc)
	}
}

// TestJunctionEventsDirectionality: at strong forward bias essentially
// all transfers go one way.
func TestJunctionEventsDirectionality(t *testing.T) {
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.1, Vd: -0.1,
	})
	s, err := New(c, Options{Temp: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMeasurement()
	if _, err := s.Run(5000, 0); err != nil {
		t.Fatal(err)
	}
	// JuncSource is (source -> island): with the source at +0.1 V,
	// electrons move island -> source, i.e. B -> A.
	fw, bw := s.JunctionEvents(nd.JuncSource)
	if bw < 1000 || fw > bw/100 {
		t.Fatalf("directionality wrong at T=0 strong bias: fw=%d bw=%d", fw, bw)
	}
	// Consistency with the accumulated charge: electrons A->B carry
	// conventional charge B->A (negative A->B).
	wantCharge := -1.602176634e-19 * float64(int64(fw)-int64(bw))
	if math.Abs(s.JunctionCharge(nd.JuncSource)-wantCharge) > 1e-25 {
		t.Fatalf("charge/event mismatch: %g vs %g", s.JunctionCharge(nd.JuncSource), wantCharge)
	}
}
