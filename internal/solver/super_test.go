package solver

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

// fig5SSET builds the superconducting SET of the paper's Fig. 5
// experiment (Manninen et al. setup): R1 = R2 = 210 kOhm,
// C1 = C2 = 110 aF, Cg = 14 aF, Delta = 0.21 meV, Qb = 0.65 e.
func fig5SSET(vb, vg float64, qb float64) (*circuit.Circuit, circuit.SETNodes) {
	return circuit.NewSET(circuit.SETConfig{
		R1: 210e3, C1: 110 * aF,
		R2: 210e3, C2: 110 * aF,
		Cg: 14 * aF,
		Vs: vb, Vd: 0, Vg: vg,
		Qb: qb * units.E,
		Super: circuit.SuperParams{
			GapAt0: units.MeV(0.23), // chosen so Delta(0.52 K) ~ 0.21 meV
			Tc:     1.4,
		},
	})
}

func ssetCurrent(t *testing.T, vb, vg, qb, temp float64, seed uint64, events uint64) (float64, Stats) {
	t.Helper()
	c, nd := fig5SSET(vb, vg, qb)
	s, err := New(c, Options{Temp: temp, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(events/5, 0); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	s.ResetMeasurement()
	if _, err := s.Run(events, 1e-3); err != nil && err != ErrBlockaded {
		t.Fatal(err)
	}
	return s.JunctionCurrent(nd.JuncDrain), s.Stats()
}

func TestSSETGapEnlargesBlockade(t *testing.T) {
	// Fig. 1c's message: the suppressed-current region is wider in the
	// superconducting state. Compare a normal and a superconducting SET
	// with identical electrostatics at a bias between the two
	// thresholds: e/Csum < V < e/Csum + 4*Delta/e (single-lead bias).
	//
	// Csum = 234 aF -> normal threshold e/Csum = 0.684 mV;
	// 4*Delta/e adds ~0.84 mV.
	const vb = 1.0e-3
	cN, ndN := circuit.NewSET(circuit.SETConfig{
		R1: 210e3, C1: 110 * aF, R2: 210e3, C2: 110 * aF, Cg: 14 * aF,
		Vs: vb, Vd: 0,
	})
	iNormal := setCurrent(t, cN, ndN, Options{Temp: 0.1, Seed: 20}, 20000)
	iSuper, _ := ssetCurrent(t, vb, 0, 0, 0.1, 20, 20000)
	if iNormal <= 0 {
		t.Fatalf("normal SET above threshold should conduct, got %g", iNormal)
	}
	if math.Abs(iSuper) > 0.05*iNormal {
		t.Fatalf("superconducting gap did not suppress current: normal %g, super %g", iNormal, iSuper)
	}
}

func TestSSETConductsAboveQPThreshold(t *testing.T) {
	// Well above e/Csum + 4 Delta/e the quasi-particle channel opens.
	i, _ := ssetCurrent(t, 2.5e-3, 0, 0, 0.1, 21, 20000)
	if i <= 0 {
		t.Fatalf("SSET above QP threshold should conduct, got %g", i)
	}
}

func TestJQPResonancePeak(t *testing.T) {
	// Sweep the bias below the QP threshold at the paper's Fig. 5
	// operating point and look for the JQP current peak: Cooper-pair
	// events fire and the current is non-monotonic in bias (a resonance,
	// not a threshold).
	// At Vg = 2 mV the Cooper-pair resonance of this device sits near
	// Vb = 1.1 mV, below the quasi-particle threshold (~1.3 mV): the
	// current there must be a local maximum sustained by Cooper-pair
	// events — the JQP cycle.
	const (
		temp = 0.52
		qb   = 0.65
		vg   = 0.002
	)
	iBefore, _ := ssetCurrent(t, 0.9e-3, vg, qb, temp, 22, 15000)
	iPeak, stPeak := ssetCurrent(t, 1.1e-3, vg, qb, temp, 22, 15000)
	iAfter, _ := ssetCurrent(t, 1.2e-3, vg, qb, temp, 22, 15000)
	if stPeak.CooperEvents < 100 {
		t.Fatalf("JQP peak not driven by Cooper pairs: %d CP events", stPeak.CooperEvents)
	}
	if iPeak < 2*iBefore || iPeak < 1.5*iAfter {
		t.Fatalf("no JQP resonance: I(0.9mV)=%g I(1.1mV)=%g I(1.2mV)=%g",
			iBefore, iPeak, iAfter)
	}
}

func TestSSETThermalQuasiparticles(t *testing.T) {
	// Near Tc thermally excited quasi-particles carry sub-gap current
	// (the singularity-matching regime needs 0 < T < Tc). The sub-gap
	// current at 1.0 K must exceed the 0.1 K one by a large factor.
	cold, _ := ssetCurrent(t, 1.2e-3, 0, 0, 0.1, 23, 8000)
	warm, _ := ssetCurrent(t, 1.2e-3, 0, 0, 1.0, 23, 8000)
	if warm <= 0 {
		t.Fatalf("no thermal sub-gap current near Tc: %g", warm)
	}
	if warm < 10*math.Abs(cold) {
		t.Fatalf("thermal quasi-particle current not dominant: cold %g, warm %g", cold, warm)
	}
}

func TestSuperDeterministic(t *testing.T) {
	i1, s1 := ssetCurrent(t, 1.35e-3, 0, 0.65, 0.52, 7, 3000)
	i2, s2 := ssetCurrent(t, 1.35e-3, 0, 0.65, 0.52, 7, 3000)
	if i1 != i2 || s1.Events != s2.Events || s1.CooperEvents != s2.CooperEvents {
		t.Fatal("superconducting runs with identical seeds diverged")
	}
}

// TestDJQPResonance: the double Josephson quasi-particle cycle
// alternates Cooper pairs through BOTH junctions (Fig. 2 of the paper).
// For a symmetric SSET at the gate degeneracy point e/(2 Cg), theory
// places the DJQP resonance at Vds = 2 Ec / e; the simulator must show
// a current peak there carried by balanced Cooper-pair transport.
func TestDJQPResonance(t *testing.T) {
	const (
		temp  = 0.52
		vgDeg = units.E / (2 * 14 * aF) // 5.72 mV
		vDJQP = 0.70e-3                 // ~ 2 Ec / e = 0.684 mV
	)
	run := func(vb, vg float64) (i float64, cp1, cp2 uint64) {
		c, nd := circuit.NewSET(circuit.SETConfig{
			R1: 210e3, C1: 110 * aF, R2: 210e3, C2: 110 * aF, Cg: 14 * aF,
			Vs: vb / 2, Vd: -vb / 2, Vg: vg,
			Super: circuit.SuperParams{GapAt0: units.MeV(0.23), Tc: 1.4},
		})
		s, err := New(c, Options{Temp: temp, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(2000, 0); err != nil && err != ErrBlockaded {
			t.Fatal(err)
		}
		s.ResetMeasurement()
		if _, err := s.Run(12000, 1e-3); err != nil && err != ErrBlockaded {
			t.Fatal(err)
		}
		return s.JunctionCurrent(nd.JuncDrain),
			s.JunctionCooperEvents(nd.JuncSource),
			s.JunctionCooperEvents(nd.JuncDrain)
	}
	iPeak, cp1, cp2 := run(vDJQP, vgDeg)
	iBelow, _, _ := run(vDJQP-0.15e-3, vgDeg)
	iAbove, _, _ := run(vDJQP+0.15e-3, vgDeg)
	if iPeak < 2*iBelow || iPeak < 2*iAbove {
		t.Fatalf("no DJQP peak at 2Ec/e: I=%g vs below %g, above %g", iPeak, iBelow, iAbove)
	}
	if cp1 < 500 || cp2 < 500 {
		t.Fatalf("DJQP needs Cooper pairs through both junctions: %d / %d", cp1, cp2)
	}
	ratio := float64(cp1) / float64(cp2)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("DJQP Cooper-pair transport unbalanced: %d vs %d", cp1, cp2)
	}
}
