package bench

import (
	"math"
	"os"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/logicnet"
)

// TestSparseVsDensePotentialsSuite cross-checks the sparse potential
// engine against the dense inverse on the benchmark suite: the derived
// exact (eps = 0) rows must reproduce dense island potentials bitwise,
// and a natively sparse build (RCM + sparse Cholesky, eps = 1e-14, no
// dense inverse formed) must agree to 1e-12 V. Benchmarks above c432
// cost minutes each to build densely, so by default the check covers
// the twelve suite entries up to c432; set SEMSIM_FULL_XCHECK=1 to run
// all fifteen.
func TestSparseVsDensePotentialsSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-suite builds in -short mode")
	}
	full := os.Getenv("SEMSIM_FULL_XCHECK") != ""
	p := logicnet.DefaultParams()
	for _, b := range Suite() {
		if !full && b.PublishedJunctions > 2072 {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ex, err := BuildWorkload(b, p)
			if err != nil {
				t.Fatal(err)
			}
			c := ex.Circuit
			ni := c.NumIslands()
			ns := make([]int, ni)
			for i := range ns {
				ns[i] = i%3 - 1
			}
			vd := c.IslandPotentials(nil, ns, SettleTime/2)

			// Derived exact rows: the same floats as the dense inverse.
			sp, err := c.PotentialEngine(true, 0)
			if err != nil {
				t.Fatal(err)
			}
			q := c.ChargeVector(nil, ns)
			vext := c.ExternalVoltages(nil, SettleTime/2)
			vs := make([]float64, ni)
			sp.SolveRange(vs, q, vext, 0, ni)
			for i := range vd {
				if vd[i] != vs[i] {
					t.Fatalf("island %d: derived sparse potential %v differs from dense %v", i, vs[i], vd[i])
				}
			}

			// Native sparse build at a near-exact threshold.
			exN, err := BuildWorkloadWith(b, p, circuit.BuildOptions{SparsePotentials: true, CinvTruncation: 1e-14})
			if err != nil {
				t.Fatal(err)
			}
			if exN.Circuit.CMatrix() != nil {
				t.Fatal("native sparse build formed the dense matrix")
			}
			vn := exN.Circuit.IslandPotentials(nil, ns, SettleTime/2)
			for i := range vd {
				if d := math.Abs(vd[i] - vn[i]); d > 1e-12 {
					t.Fatalf("island %d: native sparse potential %v vs dense %v (|diff| %g > 1e-12)", i, vn[i], vd[i], d)
				}
			}
		})
	}
}
