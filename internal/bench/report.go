package bench

import (
	"runtime"

	"semsim/internal/circuit"
	"semsim/internal/logicnet"
	"semsim/internal/solver"
)

// RateEngineRun is one timed configuration of the rate-engine benchmark.
type RateEngineRun struct {
	Mode         string  `json:"mode"` // "serial" or "parallel"
	Workers      int     `json:"workers"`
	RateTables   bool    `json:"rate_tables"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	RateCalcs    uint64  `json:"rate_calcs"`
	SimulatedSec float64 `json:"simulated_seconds"`
}

// RateEngineReport is the machine-readable benchmark of the within-run
// parallel rate engine: the same workload (same seed, so the serial and
// parallel runs execute identical trajectories) timed serial vs parallel
// and with exact vs tabulated kernels.
type RateEngineReport struct {
	Benchmark  string          `json:"benchmark"`
	Junctions  int             `json:"junctions"`
	Events     uint64          `json:"events"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Runs       []RateEngineRun `json:"runs"`
}

// RunRateEngine times the non-adaptive solver — the configuration whose
// cost is dominated by the sharded rate recomputation — on benchmark b
// for the given event budget, across the four corners of the engine:
// {serial, parallel} x {exact, tabulated} rates.
func RunRateEngine(b Benchmark, p logicnet.Params, events, seed uint64) (*RateEngineReport, error) {
	return RunRateEngineWith(b, p, events, seed, false)
}

// RunRateEngineWith is RunRateEngine with a sparse-potentials switch:
// the largest circuits (c1908, 6988 junctions) are built and simulated
// through the sparse engine, skipping the dense C^-1 entirely — the
// configuration those circuits run under in practice.
func RunRateEngineWith(b Benchmark, p logicnet.Params, events, seed uint64, sparse bool) (*RateEngineReport, error) {
	ex, err := BuildWorkloadWith(b, p, circuit.BuildOptions{SparsePotentials: sparse})
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	rep := &RateEngineReport{
		Benchmark:  b.Name,
		Junctions:  ex.Circuit.NumJunctions(),
		Events:     events,
		GOMAXPROCS: workers,
	}
	configs := []struct {
		mode    string
		workers int
		tables  bool
	}{
		{"serial", 1, false},
		{"serial", 1, true},
		{"parallel", workers, false},
		{"parallel", workers, true},
	}
	for _, c := range configs {
		opt := solver.Options{
			Temp:             WorkloadTemp,
			Seed:             seed,
			Parallel:         c.workers,
			RateTables:       c.tables,
			SparsePotentials: sparse,
		}
		res, err := TimeSolverOn(ex, opt, events, 0)
		if err != nil {
			return nil, err
		}
		run := RateEngineRun{
			Mode:         c.mode,
			Workers:      c.workers,
			RateTables:   c.tables,
			Events:       res.Events,
			WallSeconds:  res.Wall.Seconds(),
			RateCalcs:    res.RateCalcs,
			SimulatedSec: res.SimulatedTime,
		}
		if res.Wall > 0 {
			run.EventsPerSec = float64(res.Events) / res.Wall.Seconds()
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}
