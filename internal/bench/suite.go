// Package bench re-creates the paper's 15 large-scale logic benchmarks
// (ISCAS '85/'89 circuits plus 74-series parts) at exactly the
// published junction counts — 76 junctions (38 SETs) for the 2-to-10
// decoder up to 6988 junctions (3494 SETs) for c1908 — and provides the
// workload drivers behind Figs. 6 and 7: solver timing and
// propagation-delay measurement.
//
// The original netlists are not redistributable, so each benchmark is a
// synthetic gate network with the published size: a deterministic
// inverting "spine" (the sensitized path whose propagation delay is
// measured) plus pseudo-random decoration logic fanning out from it.
// The paper itself notes the benchmark implementation's feasibility "is
// not relevant to its use in testing this simulator" — what matters for
// the experiments is circuit size and coupling topology, which are
// matched. The full adder is real logic rather than synthetic.
package bench

import (
	"fmt"
	"strings"

	"semsim/internal/logicnet"
	"semsim/internal/rng"
)

// Benchmark is one entry of the paper's suite.
type Benchmark struct {
	Name string
	// PublishedJunctions is the junction count from Fig. 6's x-axis.
	PublishedJunctions int
	Netlist            *logicnet.Netlist
	// ToggleInput steps at the workload's stimulus time; OutputWire is
	// observed for the propagation delay.
	ToggleInput string
	OutputWire  string
	// OutputRises reports the output transition direction when the
	// toggle input rises.
	OutputRises bool
	// HighInputs are tied to logic high for the delay workload; all
	// other non-toggle inputs are tied low.
	HighInputs []string
}

// mix is a decoration gate budget.
type mix struct {
	inv, nand, nor, xor int
}

func (m mix) sets() int { return 2*m.inv + 4*m.nand + 4*m.nor + 16*m.xor }

// synth builds a synthetic benchmark: a spine of `spine` inverting
// 2-input gates — alternating NAND (enabled by the high "en" input) and
// NOR (enabled by the low "in1" input), like a mixed standard-cell path
// — from input in0 to the wire "out", decorated with the remaining
// budget.
func synth(name string, spine int, deco mix, seed uint64) Benchmark {
	var sb strings.Builder
	fmt.Fprintf(&sb, "name %s\n", name)
	sb.WriteString("input in0 en in1 in2\ninput in3\noutput out\n")

	r := rng.New(seed)
	wires := []string{"in0", "en", "in1", "in2", "in3"}
	pick := func() string {
		// Favor recent wires so decoration forms chains, not a star.
		window := 24
		if len(wires) < window {
			window = len(wires)
		}
		return wires[len(wires)-1-r.Intn(window)]
	}

	prev := "in0"
	for i := 0; i < spine; i++ {
		w := fmt.Sprintf("s%d", i)
		if i == spine-1 {
			w = "out"
		}
		if i%2 == 0 {
			fmt.Fprintf(&sb, "%s = NAND %s en\n", w, prev) // en is high
		} else {
			fmt.Fprintf(&sb, "%s = NOR %s in1\n", w, prev) // in1 is low
		}
		prev = w
		wires = append(wires, w)
	}

	// Decoration deck in deterministic shuffled order.
	var deck []string
	for i := 0; i < deco.inv; i++ {
		deck = append(deck, "INV")
	}
	for i := 0; i < deco.nand; i++ {
		deck = append(deck, "NAND")
	}
	for i := 0; i < deco.nor; i++ {
		deck = append(deck, "NOR")
	}
	for i := 0; i < deco.xor; i++ {
		deck = append(deck, "XOR")
	}
	for i := len(deck) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		deck[i], deck[j] = deck[j], deck[i]
	}
	for i, kind := range deck {
		w := fmt.Sprintf("w%d", i)
		if kind == "INV" {
			fmt.Fprintf(&sb, "%s = INV %s\n", w, pick())
		} else {
			fmt.Fprintf(&sb, "%s = %s %s %s\n", w, kind, pick(), pick())
		}
		wires = append(wires, w)
	}

	nl, err := logicnet.Parse(strings.NewReader(sb.String()))
	if err != nil {
		panic("bench: internal synth error for " + name + ": " + err.Error())
	}
	return Benchmark{
		Name:        name,
		Netlist:     nl,
		ToggleInput: "in0",
		OutputWire:  "out",
		// Each spine stage inverts (NAND(x, 1) or NOR(x, 0)): the output
		// rises with the input when the spine length is even.
		OutputRises: spine%2 == 0,
		HighInputs:  []string{"en", "in2"},
	}
}

const fullAdderSrc = `
name Full-Adder
input a b cin
output sum cout
x  = XOR a b
sum = XOR x cin
g1 = AND a b
g2 = AND x cin
cout = OR g1 g2
`

// Suite returns the paper's 15 benchmarks in ascending size. Every
// entry's expanded junction count equals the published one (enforced by
// tests).
func Suite() []Benchmark {
	fa, err := logicnet.Parse(strings.NewReader(fullAdderSrc))
	if err != nil {
		panic("bench: full adder parse: " + err.Error())
	}
	fullAdder := Benchmark{
		Name:               "Full-Adder",
		PublishedJunctions: 100,
		Netlist:            fa,
		ToggleInput:        "a",
		OutputWire:         "sum",
		OutputRises:        true, // with b = cin = 0, sum follows a
	}

	bms := []Benchmark{
		// 38 SETs: spine 7 NAND (28) + 5 INV (10).
		synth("2-to-10-decoder", 7, mix{inv: 5}, 1),
		fullAdder,
		// 84: spine 10 NAND (40) + 8 NAND (32) + 6 INV (12).
		synth("74LS138", 10, mix{nand: 8, inv: 6}, 2),
		// 112: spine 10 NAND (40) + 14 NAND (56) + 8 INV (16).
		synth("74LS153", 10, mix{nand: 14, inv: 8}, 3),
		// 132: spine 9 NOR (36) + 21 NOR (84) + 6 INV (12).
		synth("s27a", 9, mix{nor: 21, inv: 6}, 4),
		// 168: spine 10 NAND (40) + 26 NAND (104) + 12 INV (24).
		synth("74148", 10, mix{nand: 26, inv: 12}, 5),
		// 180: spine 10 NAND (40) + 30 NAND (120) + 10 INV (20).
		synth("74154", 10, mix{nand: 30, inv: 10}, 6),
		// 224: spine 11 NAND (44) + 13 NAND (52) + 24 NOR (96) + 16 INV (32).
		synth("74LS47", 11, mix{nand: 13, nor: 24, inv: 16}, 7),
		// 242: spine 4 NAND (16) + 14 XOR (224) + 1 INV (2).
		synth("74LS280", 4, mix{xor: 14, inv: 1}, 8),
		// 472: spine 12 NAND (48) + 66 NAND (264) + 8 XOR (128) + 16 INV (32).
		synth("54LS181", 12, mix{nand: 66, xor: 8, inv: 16}, 9),
		// 672: spine 12 NAND (48) + 144 NAND (576) + 24 INV (48).
		synth("s208-1", 12, mix{nand: 144, inv: 24}, 10),
		// 1036: spine 13 NAND (52) + 167 NAND (668) + 18 XOR (288) + 14 INV (28).
		synth("c432", 13, mix{nand: 167, xor: 18, inv: 14}, 11),
		// 2308: spine 14 NAND (56) + 547 NAND (2188) + 32 INV (64).
		synth("c1355", 14, mix{nand: 547, inv: 32}, 12),
		// 2804: spine 14 NAND (56) + 270 NAND (1080) + 104 XOR (1664) + 2 INV (4).
		synth("c499", 14, mix{nand: 270, xor: 104, inv: 2}, 13),
		// 3494: spine 14 NAND (56) + 743 NAND (2972) + 25 XOR (400) + 33 INV (66).
		synth("c1908", 14, mix{nand: 743, xor: 25, inv: 33}, 14),
	}
	published := []int{76, 100, 168, 224, 264, 336, 360, 448, 484, 944, 1344, 2072, 4616, 5608, 6988}
	for i := range bms {
		bms[i].PublishedJunctions = published[i]
	}
	return bms
}

// ByName returns the named benchmark or false.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
