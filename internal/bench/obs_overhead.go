package bench

import (
	"fmt"

	"semsim/internal/logicnet"
	"semsim/internal/obs"
	"semsim/internal/solver"
)

// ObsOverheadRun is one timed observability configuration of the
// overhead benchmark.
type ObsOverheadRun struct {
	Mode         string  `json:"mode"` // "off", "metrics", "tracing"
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"` // best of Repeats
	EventsPerSec float64 `json:"events_per_sec"`
	// OverheadPct is the events/s cost relative to the "off" run
	// (positive = slower). The acceptance budget for disabled obs is
	// < 2%; "off" itself is 0 by definition.
	OverheadPct float64 `json:"overhead_pct"`
	// JournalEvents counts journal records for the tracing run.
	JournalEvents uint64 `json:"journal_events,omitempty"`
}

// ObsOverheadReport measures what observability costs on a real
// workload: the same trajectory (same seed — observation is passive, so
// all three modes execute identical event sequences) timed with obs
// off, metrics only, and full tracing.
type ObsOverheadReport struct {
	Benchmark string           `json:"benchmark"`
	Junctions int              `json:"junctions"`
	Events    uint64           `json:"events"`
	Repeats   int              `json:"repeats"`
	Runs      []ObsOverheadRun `json:"runs"`
}

// RunObsOverhead times the adaptive solver on benchmark b for the given
// event budget under each observability mode, keeping the best wall
// time of repeats per mode (Monte Carlo kernels are deterministic, so
// the minimum is the least-noise estimate).
func RunObsOverhead(b Benchmark, p logicnet.Params, events, seed uint64, repeats int) (*ObsOverheadReport, error) {
	ex, err := BuildWorkload(b, p)
	if err != nil {
		return nil, err
	}
	if repeats < 1 {
		repeats = 1
	}
	rep := &ObsOverheadReport{
		Benchmark: b.Name,
		Junctions: ex.Circuit.NumJunctions(),
		Events:    events,
		Repeats:   repeats,
	}
	modes := []string{"off", "metrics", "tracing"}
	var baseEvents uint64
	var basePerSec float64
	for _, mode := range modes {
		run := ObsOverheadRun{Mode: mode}
		var lastObs *obs.Observer
		for r := 0; r < repeats; r++ {
			opt := solver.Options{
				Temp:       WorkloadTemp,
				Seed:       seed,
				Adaptive:   true,
				RateTables: true,
				Parallel:   1,
			}
			switch mode {
			case "metrics":
				opt.Obs = obs.New(obs.Config{})
			case "tracing":
				opt.Obs = obs.New(obs.Config{Trace: true, TraceCap: 1 << 16})
			}
			lastObs = opt.Obs
			res, err := TimeSolverOn(ex, opt, events, 0)
			if err != nil {
				return nil, err
			}
			if run.Events == 0 {
				run.Events = res.Events
			}
			if w := res.Wall.Seconds(); run.WallSeconds == 0 || w < run.WallSeconds {
				run.WallSeconds = w
			}
		}
		if run.WallSeconds > 0 {
			run.EventsPerSec = float64(run.Events) / run.WallSeconds
		}
		if mode == "off" {
			baseEvents, basePerSec = run.Events, run.EventsPerSec
		} else {
			// Passive-observation sanity check: every mode must execute
			// the exact same trajectory.
			if run.Events != baseEvents {
				return nil, fmt.Errorf("bench: obs mode %q changed the trajectory (%d events vs %d)",
					mode, run.Events, baseEvents)
			}
			if basePerSec > 0 {
				run.OverheadPct = 100 * (basePerSec - run.EventsPerSec) / basePerSec
			}
		}
		if lastObs != nil && lastObs.Tracing() {
			run.JournalEvents = lastObs.Journal().Total()
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}
