package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"semsim/internal/jobs"
	"semsim/internal/logicnet"
	"semsim/internal/obs"
	"semsim/internal/solver"
)

// ObsOverheadRun is one timed observability configuration of the
// overhead benchmark.
type ObsOverheadRun struct {
	Mode         string  `json:"mode"` // "off", "metrics", "jobmetrics", "tracing"
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"` // best of Repeats
	EventsPerSec float64 `json:"events_per_sec"`
	// OverheadPct is the events/s cost relative to the "off" run
	// (positive = slower). The acceptance budget for disabled obs is
	// < 2%; "off" itself is 0 by definition.
	OverheadPct float64 `json:"overhead_pct"`
	// JournalEvents counts journal records for the tracing run.
	JournalEvents uint64 `json:"journal_events,omitempty"`
}

// ObsOverheadReport measures what observability costs on a real
// workload: the same trajectory (same seed — observation is passive, so
// every mode executes the identical event sequence) timed with obs
// off, metrics only, the jobs-layer task telemetry (registry counters,
// trace lanes and bus publishes per runner chunk), and full tracing.
type ObsOverheadReport struct {
	Benchmark string           `json:"benchmark"`
	Junctions int              `json:"junctions"`
	Events    uint64           `json:"events"`
	Repeats   int              `json:"repeats"`
	Runs      []ObsOverheadRun `json:"runs"`
}

// RunObsOverhead times the adaptive solver on benchmark b for the given
// event budget under each observability mode, keeping the best wall
// time of repeats per mode (Monte Carlo kernels are deterministic, so
// the minimum is the least-noise estimate).
func RunObsOverhead(b Benchmark, p logicnet.Params, events, seed uint64, repeats int) (*ObsOverheadReport, error) {
	ex, err := BuildWorkload(b, p)
	if err != nil {
		return nil, err
	}
	if repeats < 1 {
		repeats = 1
	}
	rep := &ObsOverheadReport{
		Benchmark: b.Name,
		Junctions: ex.Circuit.NumJunctions(),
		Events:    events,
		Repeats:   repeats,
	}
	modes := []string{"off", "metrics", "jobmetrics", "tracing"}
	var baseEvents uint64
	var basePerSec float64
	for _, mode := range modes {
		run := ObsOverheadRun{Mode: mode}
		var lastObs *obs.Observer
		for r := 0; r < repeats; r++ {
			opt := solver.Options{
				Temp:       WorkloadTemp,
				Seed:       seed,
				Adaptive:   true,
				RateTables: true,
				Parallel:   1,
			}
			switch mode {
			case "metrics", "jobmetrics":
				opt.Obs = obs.New(obs.Config{})
			case "tracing":
				opt.Obs = obs.New(obs.Config{Trace: true, TraceCap: 1 << 16})
			}
			lastObs = opt.Obs
			var res TimingResult
			var err error
			if mode == "jobmetrics" {
				res, err = timeObservedRun(ex, opt, events)
			} else {
				res, err = TimeSolverOn(ex, opt, events, 0)
			}
			if err != nil {
				return nil, err
			}
			if run.Events == 0 {
				run.Events = res.Events
			}
			if w := res.Wall.Seconds(); run.WallSeconds == 0 || w < run.WallSeconds {
				run.WallSeconds = w
			}
		}
		if run.WallSeconds > 0 {
			run.EventsPerSec = float64(run.Events) / run.WallSeconds
		}
		if mode == "off" {
			baseEvents, basePerSec = run.Events, run.EventsPerSec
		} else {
			// Passive-observation sanity check: every mode must execute
			// the exact same trajectory.
			if run.Events != baseEvents {
				return nil, fmt.Errorf("bench: obs mode %q changed the trajectory (%d events vs %d)",
					mode, run.Events, baseEvents)
			}
			if basePerSec > 0 {
				run.OverheadPct = 100 * (basePerSec - run.EventsPerSec) / basePerSec
			}
		}
		if lastObs != nil && lastObs.Tracing() {
			run.JournalEvents = lastObs.Journal().Total()
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}

// timeObservedRun times the workload through the jobs-layer chunked
// runner with full task telemetry attached (jobs.BenchObservedRun) —
// the configuration a semsimd worker executes. The chunked runner is
// trajectory-identical to a direct solver run, which RunObsOverhead's
// event-count check enforces.
func timeObservedRun(ex *logicnet.Expanded, opt solver.Options, maxEvents uint64) (TimingResult, error) {
	s, err := solver.New(ex.Circuit, opt)
	if err != nil {
		return TimingResult{}, err
	}
	defer s.Close()
	start := time.Now()
	if _, err := jobs.BenchObservedRun(s, maxEvents, opt.Obs, 1); err != nil && err != solver.ErrBlockaded {
		return TimingResult{}, err
	}
	wall := time.Since(start)
	return TimingResult{Events: s.Stats().Events, Wall: wall, SimulatedTime: s.Time()}, nil
}

// LoadObsOverheadReport reads a BENCH_obs_overhead.json snapshot.
func LoadObsOverheadReport(path string) (*ObsOverheadReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ObsOverheadReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("bench: %s: no runs in report", path)
	}
	return &rep, nil
}

// CheckObsOverheadBudget gates an obs-overhead snapshot: the always-on
// modes ("metrics" and "jobmetrics" — what a production semsimd pays)
// must each cost less than budgetPct relative to the bare solver, every
// mode must have executed the same trajectory as "off", and the modes
// themselves must all be present. Full tracing is exempt: it is an
// opt-in diagnostic, priced but not bounded. Returns one message per
// violation.
func CheckObsOverheadBudget(rep *ObsOverheadReport, budgetPct float64) []string {
	var bad []string
	seen := map[string]bool{}
	var baseEvents uint64
	for _, r := range rep.Runs {
		seen[r.Mode] = true
		if r.Mode == "off" {
			baseEvents = r.Events
		}
	}
	for _, want := range []string{"off", "metrics", "jobmetrics", "tracing"} {
		if !seen[want] {
			bad = append(bad, fmt.Sprintf("%s: mode %q missing from snapshot (regenerate with make obs-overhead)", rep.Benchmark, want))
		}
	}
	for _, r := range rep.Runs {
		if r.Events != baseEvents {
			bad = append(bad, fmt.Sprintf("%s/%s: trajectory diverged (%d events vs %d with obs off): observation is not passive",
				rep.Benchmark, r.Mode, r.Events, baseEvents))
		}
		if (r.Mode == "metrics" || r.Mode == "jobmetrics") && r.OverheadPct >= budgetPct {
			bad = append(bad, fmt.Sprintf("%s/%s: %.1f%% overhead exceeds the %.0f%% always-on budget",
				rep.Benchmark, r.Mode, r.OverheadPct, budgetPct))
		}
	}
	return bad
}
