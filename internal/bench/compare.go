package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Rate-engine benchmark comparison: load two BENCH_rate_engine.json
// snapshots, line their runs up by (benchmark, mode, workers, kernel)
// and report per-configuration speedups — the tool behind `make
// bench-compare`. The loader also enforces the report's standing
// invariant: tabulated kernels exist to be faster than exact
// evaluation, so any row where tables lose to exact on the same
// configuration is a regression, not a trade-off.

// LoadRateEngineReports reads a BENCH_rate_engine.json file. Current
// files hold an array of reports (one per benchmark circuit); files
// from before the multi-circuit format hold a single object, which is
// loaded as a one-element slice so old and new snapshots diff cleanly.
func LoadRateEngineReports(path string) ([]RateEngineReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var reps []RateEngineReport
	if err := json.Unmarshal(data, &reps); err == nil {
		return reps, nil
	}
	var one RateEngineReport
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("bench: %s is neither a report array nor a single report: %w", path, err)
	}
	return []RateEngineReport{one}, nil
}

// runKey identifies one timed configuration across snapshots.
type runKey struct {
	Benchmark string
	Mode      string
	Workers   int
	Tables    bool
}

func (k runKey) String() string {
	kernel := "exact"
	if k.Tables {
		kernel = "tables"
	}
	return fmt.Sprintf("%s/%s x%d %s", k.Benchmark, k.Mode, k.Workers, kernel)
}

func indexRuns(reps []RateEngineReport) map[runKey]RateEngineRun {
	idx := map[runKey]RateEngineRun{}
	for _, rep := range reps {
		for _, r := range rep.Runs {
			idx[runKey{rep.Benchmark, r.Mode, r.Workers, r.RateTables}] = r
		}
	}
	return idx
}

// CheckTablesAtLeastExact returns one message per configuration where
// the tabulated-kernel run is slower than the exact run of the same
// (benchmark, mode, workers). An empty slice means the invariant holds
// across every report.
func CheckTablesAtLeastExact(reps []RateEngineReport) []string {
	idx := indexRuns(reps)
	var bad []string
	for k, tab := range idx {
		if !k.Tables {
			continue
		}
		exactKey := k
		exactKey.Tables = false
		exact, ok := idx[exactKey]
		if !ok || exact.EventsPerSec <= 0 || tab.EventsPerSec <= 0 {
			continue
		}
		if tab.EventsPerSec < exact.EventsPerSec {
			bad = append(bad, fmt.Sprintf(
				"%s/%s x%d: tables %.0f events/s < exact %.0f events/s (%.2fx)",
				k.Benchmark, k.Mode, k.Workers,
				tab.EventsPerSec, exact.EventsPerSec, tab.EventsPerSec/exact.EventsPerSec))
		}
	}
	sort.Strings(bad)
	return bad
}

// CompareRateEngine renders a per-configuration speedup table between
// two snapshots. Configurations present in only one snapshot are listed
// as added or removed rather than silently dropped.
func CompareRateEngine(oldReps, newReps []RateEngineReport) string {
	oldIdx, newIdx := indexRuns(oldReps), indexRuns(newReps)
	var keys []string
	byName := map[string]runKey{}
	for k := range oldIdx {
		byName[k.String()] = k
	}
	for k := range newIdx {
		byName[k.String()] = k
	}
	for name := range byName {
		keys = append(keys, name)
	}
	sort.Strings(keys)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %14s %14s %9s\n", "configuration", "old events/s", "new events/s", "speedup")
	for _, name := range keys {
		k := byName[name]
		o, haveOld := oldIdx[k]
		n, haveNew := newIdx[k]
		switch {
		case !haveOld:
			fmt.Fprintf(&sb, "%-34s %14s %14.0f %9s\n", name, "-", n.EventsPerSec, "added")
		case !haveNew:
			fmt.Fprintf(&sb, "%-34s %14.0f %14s %9s\n", name, o.EventsPerSec, "-", "removed")
		default:
			speed := 0.0
			if o.EventsPerSec > 0 {
				speed = n.EventsPerSec / o.EventsPerSec
			}
			fmt.Fprintf(&sb, "%-34s %14.0f %14.0f %8.2fx\n", name, o.EventsPerSec, n.EventsPerSec, speed)
		}
	}
	return sb.String()
}
