package bench

import (
	"math"
	"runtime"
	"time"

	"semsim/internal/circuit"
	"semsim/internal/logicnet"
	"semsim/internal/numeric"
	"semsim/internal/solver"
	"semsim/internal/units"
)

// PotentialEngineRun is one engine configuration of the potential-engine
// benchmark: build cost, storage shape, micro-timed potential-update
// costs, and a short adaptive solver run.
type PotentialEngineRun struct {
	// Engine is "dense", "sparse-exact" or "sparse-trunc".
	Engine string  `json:"engine"`
	Eps    float64 `json:"eps"`
	// BuildSeconds is the circuit build (or view derivation) cost of
	// this engine: the dense inverse, the derived exact rows, or the
	// native RCM + sparse Cholesky + truncated-row build.
	BuildSeconds float64 `json:"build_seconds"`
	// Storage shape.
	NNZ             int     `json:"cinv_nnz"`
	TruncationRatio float64 `json:"truncation_ratio"`
	Fill            float64 `json:"chol_fill"`
	// ShiftNsPerOp micro-times the per-event potential shift (one
	// electron across a junction, averaged over the junction list).
	ShiftNsPerOp float64 `json:"shift_ns_per_op"`
	// RefreshMsPerSolve micro-times one full potential solve.
	RefreshMsPerSolve float64 `json:"refresh_ms_per_solve"`
	// Short adaptive Monte Carlo run.
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// ErrorBound is the engine's refresh-time truncation bound (volts)
	// at the settled state; zero for exact engines.
	ErrorBound float64 `json:"error_bound_v"`
	// MaxAbsPotentialError compares this engine's settled island
	// potentials against the dense reference (volts).
	MaxAbsPotentialError float64 `json:"max_abs_potential_error_v"`
	// BitIdentical reports whether the short solver run reproduced the
	// dense trajectory exactly (same Stats); expected true for
	// sparse-exact, meaningless (false) for sparse-trunc.
	BitIdentical bool `json:"bit_identical"`
}

// PotentialEngineReport is the machine-readable comparison of the three
// potential backends on one benchmark circuit.
type PotentialEngineReport struct {
	Benchmark  string               `json:"benchmark"`
	Junctions  int                  `json:"junctions"`
	Islands    int                  `json:"islands"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Runs       []PotentialEngineRun `json:"runs"`
	// ShiftSpeedup and RefreshSpeedup are dense cost over
	// sparse-trunc cost for the two potential-update paths.
	ShiftSpeedup   float64 `json:"shift_speedup"`
	RefreshSpeedup float64 `json:"refresh_speedup"`
}

// TruncEps is the truncation threshold the potential-engine benchmark
// uses for its sparse-trunc configuration. C^-1 entries of the logic
// circuits decay exponentially with distance; at 1e-8 relative to the
// row maximum ~95% of entries drop while the potential error bound
// stays orders of magnitude below kT/e at the 2 K workload temperature.
const TruncEps = 1e-8

// shiftOps times the per-event shift path: one electron forward and one
// back across each junction in turn, leaving v unchanged at the end.
func shiftOps(pe *circuit.Potentials, c *circuit.Circuit, v []float64, reps int) float64 {
	nj := c.NumJunctions()
	start := time.Now()
	ops := 0
	for r := 0; r < reps; r++ {
		for j := 0; j < nj; j++ {
			jc := c.Junction(j)
			pe.Shift(v, jc.A, jc.B, units.E)
			pe.Shift(v, jc.B, jc.A, units.E)
			ops += 2
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// solveOps times the full-refresh solve path.
func solveOps(pe *circuit.Potentials, dst, q, vext []float64, reps int) float64 {
	start := time.Now()
	for r := 0; r < reps; r++ {
		pe.SolveRange(dst, q, vext, 0, len(dst))
	}
	return time.Since(start).Seconds() * 1e3 / float64(reps)
}

// RunPotentialEngine benchmarks the three potential backends — dense
// inverse, exact sparse rows and eps-truncated sparse rows — on
// benchmark b: build cost, per-event shift and full-refresh micro
// timings, a short adaptive Monte Carlo run each, and the accuracy of
// the truncated engine against the dense reference.
func RunPotentialEngine(b Benchmark, p logicnet.Params, events, seed uint64) (*PotentialEngineReport, error) {
	buildStart := time.Now()
	ex, err := BuildWorkload(b, p)
	if err != nil {
		return nil, err
	}
	denseBuild := time.Since(buildStart).Seconds()
	c := ex.Circuit
	ni := c.NumIslands()

	rep := &PotentialEngineReport{
		Benchmark:  b.Name,
		Junctions:  c.NumJunctions(),
		Islands:    ni,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Shared settled-state inputs for the micro timings.
	ns := make([]int, ni)
	q := c.ChargeVector(nil, ns)
	vext := c.ExternalVoltages(nil, 0)
	vRef := c.IslandPotentials(nil, ns, 0)
	qmax, vmax := 0.0, 0.0
	for _, x := range q {
		qmax = math.Max(qmax, math.Abs(x))
	}
	for _, x := range vext {
		vmax = math.Max(vmax, math.Abs(x))
	}

	deriveStart := time.Now()
	exact, err := c.PotentialEngine(true, 0)
	if err != nil {
		return nil, err
	}
	exactDerive := time.Since(deriveStart).Seconds()

	// Native sparse build: RCM + sparse Cholesky + truncated rows, no
	// dense inverse ever formed. A separate workload expansion so the
	// build timing is honest end to end.
	truncStart := time.Now()
	exT, err := BuildWorkloadWith(b, p, circuit.BuildOptions{SparsePotentials: true, CinvTruncation: TruncEps})
	if err != nil {
		return nil, err
	}
	truncBuild := time.Since(truncStart).Seconds()
	trunc := exT.Circuit.Potentials()

	shiftReps := 1 + 40000/(2*c.NumJunctions())
	solveReps := 3

	denseRun, err := timeEngineRun(ex, solver.Options{
		Temp: WorkloadTemp, Seed: seed, Adaptive: true,
	}, events)
	if err != nil {
		return nil, err
	}
	exactRun, err := timeEngineRun(ex, solver.Options{
		Temp: WorkloadTemp, Seed: seed, Adaptive: true, SparsePotentials: true,
	}, events)
	if err != nil {
		return nil, err
	}
	truncRun, err := timeEngineRun(exT, solver.Options{
		Temp: WorkloadTemp, Seed: seed, Adaptive: true, SparsePotentials: true, CinvTruncation: TruncEps,
	}, events)
	if err != nil {
		return nil, err
	}

	// Truncated engine accuracy at the settled state.
	vTrunc := make([]float64, ni)
	trunc.SolveRange(vTrunc, q, vext, 0, ni)
	maxErr := 0.0
	for i := range vRef {
		maxErr = math.Max(maxErr, math.Abs(vRef[i]-vTrunc[i]))
	}

	v := append([]float64(nil), vRef...)
	dense := c.Potentials()
	runs := []PotentialEngineRun{
		{
			Engine: "dense", BuildSeconds: denseBuild,
			NNZ: dense.NNZ(), TruncationRatio: dense.TruncationRatio(), Fill: dense.Fill(),
			ShiftNsPerOp:      shiftOps(dense, c, v, shiftReps),
			RefreshMsPerSolve: solveOps(dense, make([]float64, ni), q, vext, solveReps),
			Events:            denseRun.Events, WallSeconds: denseRun.Wall.Seconds(),
			BitIdentical: true,
		},
		{
			Engine: "sparse-exact", BuildSeconds: exactDerive,
			NNZ: exact.NNZ(), TruncationRatio: exact.TruncationRatio(), Fill: exact.Fill(),
			ShiftNsPerOp:      shiftOps(exact, c, v, shiftReps),
			RefreshMsPerSolve: solveOps(exact, make([]float64, ni), q, vext, solveReps),
			Events:            exactRun.Events, WallSeconds: exactRun.Wall.Seconds(),
			BitIdentical: denseRun.Events == exactRun.Events && denseRun.RateCalcs == exactRun.RateCalcs &&
				numeric.SameBits(denseRun.SimulatedTime, exactRun.SimulatedTime),
		},
		{
			Engine: "sparse-trunc", Eps: TruncEps, BuildSeconds: truncBuild,
			NNZ: trunc.NNZ(), TruncationRatio: trunc.TruncationRatio(), Fill: trunc.Fill(),
			ShiftNsPerOp:      shiftOps(trunc, exT.Circuit, make([]float64, ni), shiftReps),
			RefreshMsPerSolve: solveOps(trunc, make([]float64, ni), q, vext, solveReps),
			Events:            truncRun.Events, WallSeconds: truncRun.Wall.Seconds(),
			ErrorBound:           trunc.RefreshErrorBound(qmax, vmax),
			MaxAbsPotentialError: maxErr,
		},
	}
	for i := range runs {
		if runs[i].WallSeconds > 0 {
			runs[i].EventsPerSec = float64(runs[i].Events) / runs[i].WallSeconds
		}
	}
	rep.Runs = runs
	if runs[2].ShiftNsPerOp > 0 {
		rep.ShiftSpeedup = runs[0].ShiftNsPerOp / runs[2].ShiftNsPerOp
	}
	if runs[2].RefreshMsPerSolve > 0 {
		rep.RefreshSpeedup = runs[0].RefreshMsPerSolve / runs[2].RefreshMsPerSolve
	}
	return rep, nil
}

// timeEngineRun is a thin wrapper over TimeSolverOn that keeps the
// fields the bit-identity comparison needs.
func timeEngineRun(ex *logicnet.Expanded, opt solver.Options, events uint64) (TimingResult, error) {
	return TimeSolverOn(ex, opt, events, 0)
}
