package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"semsim/internal/logicnet"
	"semsim/internal/noise"
	"semsim/internal/solver"
)

// NoiseOverheadRun is one timed noise-recording configuration.
type NoiseOverheadRun struct {
	Mode         string  `json:"mode"` // "record", "fano", "spectral"
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"` // best of Repeats
	EventsPerSec float64 `json:"events_per_sec"`
	// OverheadPct is the wall-time cost relative to the "record" run
	// (plain current recording, which the solver always does),
	// estimated as the median over rounds of the paired within-round
	// wall ratio: each interleaved round times every mode back to back
	// under the same machine conditions, so the ratio cancels slow
	// drift that would bias a best-of-N comparison taken from
	// different quiet windows. Positive = slower; the acceptance
	// budget is < 5%.
	OverheadPct float64 `json:"overhead_pct"`
	// Windows counts closed counting windows and RecorderEvents the
	// tunnel events folded into accumulators, for the recording modes.
	Windows        uint64 `json:"windows,omitempty"`
	RecorderEvents uint64 `json:"recorder_events,omitempty"`
}

// NoiseOverheadReport measures what streaming noise accumulation costs
// on a real workload: the same trajectory (recording is passive, so
// every mode executes the identical event sequence) timed bare, with
// counting-window cumulants on every junction, and with the spectral
// estimator's ω grid on top.
type NoiseOverheadReport struct {
	Benchmark string             `json:"benchmark"`
	Junctions int                `json:"junctions"`
	Events    uint64             `json:"events"`
	Repeats   int                `json:"repeats"`
	Omegas    int                `json:"omegas"` // grid size of the spectral mode
	Runs      []NoiseOverheadRun `json:"runs"`
}

// noiseWorkloadConfig builds the recorder configuration for a mode:
// every junction of the circuit records — the worst case for the hook,
// since then every single tunnel event pays the accumulator update.
func noiseWorkloadConfig(numJuncs int, window float64, omegas []float64) noise.Config {
	cfg := noise.Config{Juncs: make([]noise.JuncConfig, numJuncs)}
	for j := 0; j < numJuncs; j++ {
		cfg.Juncs[j] = noise.JuncConfig{Junc: j, Window: window, Omegas: omegas}
	}
	return cfg
}

// timeNoiseRun times the workload with a recorder attached (nil cfg =
// bare baseline) and reports the recorder's accumulated totals.
func timeNoiseRun(ex *logicnet.Expanded, opt solver.Options, cfg *noise.Config, maxEvents uint64) (TimingResult, uint64, uint64, error) {
	s, err := solver.New(ex.Circuit, opt)
	if err != nil {
		return TimingResult{}, 0, 0, err
	}
	defer s.Close()
	if cfg != nil {
		if err := s.EnableNoise(*cfg); err != nil {
			return TimingResult{}, 0, 0, err
		}
	}
	start := time.Now()
	if _, err := s.Run(maxEvents, 0); err != nil && err != solver.ErrBlockaded {
		return TimingResult{}, 0, 0, err
	}
	wall := time.Since(start)
	res := TimingResult{Events: s.Stats().Events, Wall: wall, SimulatedTime: s.Time()}
	var windows, recEvents uint64
	if cfg != nil {
		for _, jc := range cfg.Juncs {
			st, ok := s.NoiseStats(jc.Junc)
			if !ok {
				return TimingResult{}, 0, 0, fmt.Errorf("bench: junction %d lost its recorder", jc.Junc)
			}
			windows += st.Windows
			recEvents += st.Events
		}
	}
	return res, windows, recEvents, nil
}

// RunNoiseOverhead times the adaptive solver on benchmark b under each
// noise-recording mode, interleaving the repeats across modes: wall
// and events/s report the best round per mode, while the overhead
// percentages come from the paired within-round ratios (see
// NoiseOverheadRun.OverheadPct). The counting window is calibrated
// from the baseline run's event rate
// (τ such that an average window holds noise.DefaultWindowEvents
// events), exactly how deck runs auto-calibrate.
func RunNoiseOverhead(b Benchmark, p logicnet.Params, events, seed uint64, repeats, nOmega int) (*NoiseOverheadReport, error) {
	ex, err := BuildWorkload(b, p)
	if err != nil {
		return nil, err
	}
	if repeats < 1 {
		repeats = 1
	}
	if nOmega < 1 {
		nOmega = 4
	}
	rep := &NoiseOverheadReport{
		Benchmark: b.Name,
		Junctions: ex.Circuit.NumJunctions(),
		Events:    events,
		Repeats:   repeats,
		Omegas:    nOmega,
	}
	opt := solver.Options{
		Temp:       WorkloadTemp,
		Seed:       seed,
		Adaptive:   true,
		RateTables: true,
		Parallel:   1,
	}
	// Calibration pass: window width and ω band from the baseline rate.
	cal, _, _, err := timeNoiseRun(ex, opt, nil, events)
	if err != nil {
		return nil, err
	}
	if cal.Events == 0 || cal.SimulatedTime <= 0 {
		return nil, fmt.Errorf("bench: %s produced no events to calibrate against", b.Name)
	}
	rate := float64(cal.Events) / cal.SimulatedTime
	window := noise.DefaultWindowEvents / rate
	// Linear grid ω_k = (k+1)·rate/100 — the shape of a spectroscopy
	// scan, inside the band a deck would request, and exactly uniform
	// so the recorder's rotation fast path for such grids is what gets
	// timed.
	w0 := rate / 100
	omegas := make([]float64, nOmega)
	for i := range omegas {
		omegas[i] = w0 + float64(i)*w0
	}
	modes := []struct {
		name string
		cfg  *noise.Config
	}{
		{"record", nil},
		{"fano", ptr(noiseWorkloadConfig(rep.Junctions, window, nil))},
		{"spectral", ptr(noiseWorkloadConfig(rep.Junctions, window, omegas))},
	}
	// Interleave the repeats across modes (record, fano, spectral,
	// record, fano, ...) instead of timing each mode's whole block in
	// sequence: slow machine drift — thermal throttling, a neighbor VM
	// waking up — then lands on every mode equally instead of biasing
	// whichever mode ran last, and best-of-repeats stays comparable.
	runs := make([]NoiseOverheadRun, len(modes))
	walls := make([][]float64, len(modes)) // per mode, per round
	for i, mode := range modes {
		runs[i] = NoiseOverheadRun{Mode: mode.name}
		walls[i] = make([]float64, repeats)
	}
	for r := 0; r < repeats; r++ {
		// Rotate which mode leads each round, so a positional bias
		// (turbo/thermal state inherited from the previous leg) does
		// not systematically land on the same mode.
		for ii := 0; ii < len(modes); ii++ {
			i := (r + ii) % len(modes)
			res, windows, recEvents, err := timeNoiseRun(ex, opt, modes[i].cfg, events)
			if err != nil {
				return nil, err
			}
			run := &runs[i]
			if run.Events == 0 {
				run.Events, run.Windows, run.RecorderEvents = res.Events, windows, recEvents
			}
			walls[i][r] = res.Wall.Seconds()
			if w := res.Wall.Seconds(); run.WallSeconds == 0 || w < run.WallSeconds {
				run.WallSeconds = w
			}
		}
	}
	var baseEvents uint64
	for i := range runs {
		run := &runs[i]
		if run.WallSeconds > 0 {
			run.EventsPerSec = float64(run.Events) / run.WallSeconds
		}
		if run.Mode == "record" {
			baseEvents = run.Events
		} else {
			// Passive-recording sanity check: every mode must execute
			// the identical trajectory.
			if run.Events != baseEvents {
				return nil, fmt.Errorf("bench: noise mode %q changed the trajectory (%d events vs %d)",
					run.Mode, run.Events, baseEvents)
			}
			if run.RecorderEvents == 0 {
				return nil, fmt.Errorf("bench: noise mode %q recorded no events; the overhead measurement is vacuous", run.Mode)
			}
			// Paired estimate: within-round wall ratio vs the "record"
			// run of the same round, median over rounds.
			ratios := make([]float64, 0, repeats)
			for r := 0; r < repeats; r++ {
				if walls[0][r] > 0 {
					ratios = append(ratios, walls[i][r]/walls[0][r])
				}
			}
			run.OverheadPct = 100 * (median(ratios) - 1)
		}
		rep.Runs = append(rep.Runs, *run)
	}
	return rep, nil
}

// median of xs (xs is scratch and gets reordered); 0 when empty.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

func ptr(cfg noise.Config) *noise.Config { return &cfg }

// LoadNoiseOverheadReport reads a BENCH_noise.json snapshot.
func LoadNoiseOverheadReport(path string) (*NoiseOverheadReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep NoiseOverheadReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("bench: %s: no runs in report", path)
	}
	return &rep, nil
}

// CheckNoiseOverheadBudget gates a noise-overhead snapshot: each
// recording mode must cost less than budgetPct relative to plain
// current recording, every mode must have executed the identical
// trajectory, the recording modes must actually have accumulated
// events, and all modes must be present. Returns one message per
// violation.
func CheckNoiseOverheadBudget(rep *NoiseOverheadReport, budgetPct float64) []string {
	var bad []string
	seen := map[string]bool{}
	var baseEvents uint64
	for _, r := range rep.Runs {
		seen[r.Mode] = true
		if r.Mode == "record" {
			baseEvents = r.Events
		}
	}
	for _, want := range []string{"record", "fano", "spectral"} {
		if !seen[want] {
			bad = append(bad, fmt.Sprintf("%s: mode %q missing from snapshot (regenerate with make noise-bench)", rep.Benchmark, want))
		}
	}
	for _, r := range rep.Runs {
		if r.Events != baseEvents {
			bad = append(bad, fmt.Sprintf("%s/%s: trajectory diverged (%d events vs %d bare): noise recording is not passive",
				rep.Benchmark, r.Mode, r.Events, baseEvents))
		}
		if r.Mode == "record" {
			continue
		}
		if r.RecorderEvents == 0 {
			bad = append(bad, fmt.Sprintf("%s/%s: recorder saw no events; the overhead number is meaningless", rep.Benchmark, r.Mode))
		}
		if r.OverheadPct >= budgetPct {
			bad = append(bad, fmt.Sprintf("%s/%s: %.1f%% overhead exceeds the %.0f%% recording budget",
				rep.Benchmark, r.Mode, r.OverheadPct, budgetPct))
		}
	}
	return bad
}
