package bench

import (
	"math"
	"testing"

	"semsim/internal/logicnet"
	"semsim/internal/solver"
)

func TestSuiteMatchesPublishedJunctionCounts(t *testing.T) {
	want := []int{76, 100, 168, 224, 264, 336, 360, 448, 484, 944, 1344, 2072, 4616, 5608, 6988}
	suite := Suite()
	if len(suite) != 15 {
		t.Fatalf("suite has %d benchmarks, want 15", len(suite))
	}
	for i, b := range suite {
		if got := b.Netlist.NumJunctions(); got != want[i] {
			t.Errorf("%s: %d junctions, published %d", b.Name, got, want[i])
		}
		if b.PublishedJunctions != want[i] {
			t.Errorf("%s: published field %d, want %d", b.Name, b.PublishedJunctions, want[i])
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := Suite()
	b := Suite()
	for i := range a {
		if len(a[i].Netlist.Gates) != len(b[i].Netlist.Gates) {
			t.Fatalf("%s: gate count differs across calls", a[i].Name)
		}
		for g := range a[i].Netlist.Gates {
			ga, gb := a[i].Netlist.Gates[g], b[i].Netlist.Gates[g]
			if ga.Out != gb.Out || ga.Kind != gb.Kind {
				t.Fatalf("%s gate %d differs: %+v vs %+v", a[i].Name, g, ga, gb)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("c432"); !ok {
		t.Fatal("c432 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("found nonexistent benchmark")
	}
}

func TestSpineIsSensitized(t *testing.T) {
	// The boolean netlist must actually propagate the toggle input to
	// the output: out(in0=0) != out(in0=1) under the workload's static
	// input assignment.
	for _, b := range Suite() {
		assign := map[string]bool{}
		for _, in := range b.Netlist.Inputs {
			assign[in] = false
		}
		for _, in := range b.HighInputs {
			assign[in] = true
		}
		assign[b.ToggleInput] = false
		v0, err := b.Netlist.Eval(assign)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		assign[b.ToggleInput] = true
		v1, err := b.Netlist.Eval(assign)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if v0[b.OutputWire] == v1[b.OutputWire] {
			t.Errorf("%s: output does not respond to toggle input", b.Name)
		}
		if got := v1[b.OutputWire]; got != b.OutputRises {
			t.Errorf("%s: OutputRises=%v but out(toggle=1)=%v", b.Name, b.OutputRises, got)
		}
		if v0[b.OutputWire] == b.OutputRises {
			t.Errorf("%s: out(toggle=0) already at post-step level", b.Name)
		}
	}
}

func TestMeasureDelaySmallBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("MC delay run in -short mode")
	}
	b, _ := ByName("2-to-10-decoder")
	p := logicnet.DefaultParams()
	res, err := MeasureDelay(b, p, solver.Options{Temp: WorkloadTemp, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 || res.Delay > ObserveFor {
		t.Fatalf("implausible delay %g s", res.Delay)
	}
	if res.Events == 0 {
		t.Fatal("no events simulated")
	}
}

func TestAdaptiveDelayWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("MC delay run in -short mode")
	}
	// The Fig. 7 claim in miniature: adaptive delay within ~10% of
	// non-adaptive on a small benchmark (paper: 3.3% average over nine
	// seeds on the full suite; a single small benchmark is noisier).
	b, _ := ByName("2-to-10-decoder")
	p := logicnet.DefaultParams()
	ref, _, err := MeanDelay(b, p, solver.Options{Temp: WorkloadTemp, Seed: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ad, _, err := MeanDelay(b, p, solver.Options{Temp: WorkloadTemp, Seed: 5, Adaptive: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(ad-ref) / ref; rel > 0.15 {
		t.Fatalf("adaptive delay %g vs non-adaptive %g: %.1f%% error", ad, ref, 100*rel)
	}
}

func TestAdaptiveCheaperOnMediumBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("MC timing run in -short mode")
	}
	b, _ := ByName("74LS153") // 224 junctions
	p := logicnet.DefaultParams()
	na, err := TimeSolver(b, p, solver.Options{Temp: WorkloadTemp, Seed: 9}, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := TimeSolver(b, p, solver.Options{Temp: WorkloadTemp, Seed: 9, Adaptive: true}, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ad.RatePerEvent > na.RatePerEvent/4 {
		t.Fatalf("adaptive rate calcs/event %.1f vs non-adaptive %.1f: expected >4x reduction",
			ad.RatePerEvent, na.RatePerEvent)
	}
}
