package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"semsim/internal/circuit"
	"semsim/internal/logicnet"
	"semsim/internal/obs"
	"semsim/internal/solver"
	"semsim/internal/trace"
)

// Workload timing: the circuit settles from its all-neutral initial
// state, the toggle input steps, and the run continues long enough for
// the transition to propagate down the spine.
const (
	SettleTime = 400e-9 // seconds before the input step
	StepRamp   = 1e-9   // input rise time
	// ObserveFor bounds the post-step window: the longest spine (14
	// mixed NAND/NOR stages at ~100 ns a stage with the 1 fF wire
	// loads) needs ~1.5 us to propagate.
	ObserveFor = 2.5e-6
	// WorkloadTemp is the benchmark operating temperature. 2 K keeps
	// kT far below the logic's charging energies (Ec/kB ~ 440 K) while
	// thermally smoothing the few-kT residual barriers that freeze
	// marginal stages at lower temperatures.
	WorkloadTemp = 2.0
)

// BuildWorkload expands a benchmark into its SET circuit with the delay
// stimulus attached: HighInputs at Vdd, other inputs low, and the
// toggle input stepping 0 -> Vdd at SettleTime.
func BuildWorkload(b Benchmark, p logicnet.Params) (*logicnet.Expanded, error) {
	return BuildWorkloadWith(b, p, circuit.BuildOptions{})
}

// BuildWorkloadWith is BuildWorkload with explicit circuit build
// options — used by the potential-engine benchmark to build the largest
// circuits natively sparse, skipping the dense inverse entirely.
func BuildWorkloadWith(b Benchmark, p logicnet.Params, bo circuit.BuildOptions) (*logicnet.Expanded, error) {
	vdd := p.Vdd()
	drive := map[string]circuit.Source{}
	for _, in := range b.Netlist.Inputs {
		drive[in] = circuit.DC(0)
	}
	for _, in := range b.HighInputs {
		drive[in] = circuit.DC(vdd)
	}
	drive[b.ToggleInput] = circuit.PWL{
		T:    []float64{0, SettleTime, SettleTime + StepRamp},
		Volt: []float64{0, 0, vdd},
	}
	return b.Netlist.ExpandWith(p, drive, bo)
}

// DelayResult is one propagation-delay measurement.
type DelayResult struct {
	Delay     float64 // seconds
	Events    uint64
	Wall      time.Duration
	RateCalcs uint64
	// Dissipated is the total tunneling heat (joules) over the run —
	// settle plus one input transition. Divided by the circuit's gate
	// count it gives the per-switching-event energy scale the paper's
	// introduction quotes (~1e-18 J).
	Dissipated float64
}

// MeasureDelay runs the delay workload once and extracts the 50%-swing
// propagation delay at the benchmark's output.
func MeasureDelay(b Benchmark, p logicnet.Params, opt solver.Options) (DelayResult, error) {
	ex, err := BuildWorkload(b, p)
	if err != nil {
		return DelayResult{}, err
	}
	return MeasureDelayOn(ex, b, opt)
}

// MeasureDelayOn is MeasureDelay against a pre-built workload, so the
// capacitance-matrix inversion (expensive for the large benchmarks) is
// paid once across seeds and solvers. The expanded circuit is read-only
// during simulation and safe to share between concurrent runs.
func MeasureDelayOn(ex *logicnet.Expanded, b Benchmark, opt solver.Options) (DelayResult, error) {
	defer obs.GlobalSpan("bench.measureDelay").End()
	s, err := solver.New(ex.Circuit, opt)
	if err != nil {
		return DelayResult{}, err
	}
	defer s.Close()
	out := ex.Wire[b.OutputWire]
	s.AddProbe(out)
	start := time.Now()
	if _, err := s.Run(0, SettleTime+ObserveFor); err != nil && err != solver.ErrBlockaded {
		return DelayResult{}, err
	}
	wall := time.Since(start)
	w := s.Waveform(out)
	// Smooth over a few single-electron steps; threshold at half swing.
	delay, err := trace.PropagationDelay(w, SettleTime+StepRamp, ex.LogicThreshold(), 20e-9, b.OutputRises)
	if err != nil {
		return DelayResult{}, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	st := s.Stats()
	return DelayResult{
		Delay: delay, Events: st.Events, Wall: wall,
		RateCalcs: st.RateCalcs, Dissipated: st.Dissipated,
	}, nil
}

// MeanDelay averages MeasureDelay over n seeds (the paper averages nine
// SEMSIM runs per benchmark in Fig. 7). Individual runs whose output
// never switches — a Monte Carlo run occasionally freezes a marginal
// stage for the whole observation window — are skipped; the returned
// count says how many runs contributed. It is an error if fewer than
// half the runs produce a delay.
func MeanDelay(b Benchmark, p logicnet.Params, opt solver.Options, n int) (float64, int, error) {
	ex, err := BuildWorkload(b, p)
	if err != nil {
		return 0, 0, err
	}
	return MeanDelayOn(ex, b, opt, n)
}

// MeanDelayOn is MeanDelay against a pre-built workload. The seeds run
// in parallel.
func MeanDelayOn(ex *logicnet.Expanded, b Benchmark, opt solver.Options, n int) (float64, int, error) {
	if n < 1 {
		n = 1
	}
	delays := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opt
			o.Seed = opt.Seed + uint64(i)*1000003
			res, err := MeasureDelayOn(ex, b, o)
			if err != nil {
				errs[i] = err
				return
			}
			delays[i] = res.Delay
		}(i)
	}
	wg.Wait()
	total := 0.0
	ok := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			if errors.Is(errs[i], trace.ErrNoCrossing) {
				continue
			}
			return 0, 0, errs[i]
		}
		total += delays[i]
		ok++
	}
	if ok*2 < n || ok == 0 {
		return 0, ok, fmt.Errorf("bench %s: only %d/%d runs switched", b.Name, ok, n)
	}
	return total / float64(ok), ok, nil
}

// TimingResult reports solver cost on a benchmark workload.
type TimingResult struct {
	Events          uint64
	Wall            time.Duration
	SimulatedTime   float64
	RateCalcs       uint64
	RatePerEvent    float64
	WallPerSimETime float64 // wall seconds per simulated second
}

// TimeSolver runs the workload for a bounded number of events and
// reports the cost metrics used by Fig. 6. Wall time per simulated
// second is what the paper plots (normalized to 10 us of circuit time);
// rate calculations per event is the machine-independent counterpart.
func TimeSolver(b Benchmark, p logicnet.Params, opt solver.Options, maxEvents uint64, maxTime float64) (TimingResult, error) {
	ex, err := BuildWorkload(b, p)
	if err != nil {
		return TimingResult{}, err
	}
	return TimeSolverOn(ex, opt, maxEvents, maxTime)
}

// TimeSolverOn is TimeSolver against a pre-built workload.
func TimeSolverOn(ex *logicnet.Expanded, opt solver.Options, maxEvents uint64, maxTime float64) (TimingResult, error) {
	defer obs.GlobalSpan("bench.timeSolver").End()
	s, err := solver.New(ex.Circuit, opt)
	if err != nil {
		return TimingResult{}, err
	}
	defer s.Close()
	start := time.Now()
	if _, err := s.Run(maxEvents, maxTime); err != nil && err != solver.ErrBlockaded {
		return TimingResult{}, err
	}
	wall := time.Since(start)
	st := s.Stats()
	res := TimingResult{
		Events:        st.Events,
		Wall:          wall,
		SimulatedTime: s.Time(),
		RateCalcs:     st.RateCalcs,
	}
	if st.Events > 0 {
		res.RatePerEvent = float64(st.RateCalcs) / float64(st.Events)
	}
	if s.Time() > 0 {
		res.WallPerSimETime = wall.Seconds() / s.Time()
	}
	return res, nil
}
