package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"semsim/internal/circuit"
	"semsim/internal/logicnet"
	"semsim/internal/numeric"
	"semsim/internal/solver"
	"semsim/internal/sweep"
)

// Amortized sweep-engine benchmark: the two halves of the million-point
// map engine, measured as machine-readable numbers.
//
//  1. Compile-once throughput — a stability map over two inputs of a
//     large logic benchmark, run through sweep.Map2DSession (one
//     compiled solver per worker, solver.Reset per point) against the
//     per-point rebuild path (sweep.Map2D, a full netlist expansion,
//     capacitance build and solver construction for every point). The
//     rebuild baseline runs on a subsample of the grid — its cost is
//     bias-independent — and is reported as points/second either way.
//  2. Adaptive mesh refinement — a SET Coulomb-diamond map simulated
//     coarse-first and refined only where the current shows contrast,
//     against a uniform simulation of the same fine lattice. The
//     refined map's simulated points are bit-identical to the uniform
//     map's (the runner verifies this), so the saving is pure.

// SweepEngineOptions sizes the benchmark. The zero value is invalid;
// use the defaults in cmd/experiments.
type SweepEngineOptions struct {
	// Benchmark names the logic circuit for the throughput half.
	Benchmark string
	// Sparse builds it on the sparse potential engine (required for the
	// largest circuits).
	Sparse bool
	// GridX x GridY is the amortized map; Events/Warm the per-point
	// Monte Carlo budget.
	GridX, GridY int
	Events, Warm uint64
	// RebuildSample is how many grid points the rebuild baseline times.
	RebuildSample int
	Seed          uint64

	// Refinement half: CoarseX x CoarseY grid refined Depth dyadic
	// levels at Threshold contrast, RefineEvents measured events per
	// point.
	CoarseX, CoarseY int
	Depth            int
	Threshold        float64
	RefineEvents     uint64
}

// SweepEngineReport is the machine-readable result written to
// BENCH_sweep_engine.json and gated by `benchcmp -sweep`.
type SweepEngineReport struct {
	Benchmark      string `json:"benchmark"`
	Junctions      int    `json:"junctions"`
	GridX          int    `json:"grid_x"`
	GridY          int    `json:"grid_y"`
	EventsPerPoint uint64 `json:"events_per_point"`
	Workers        int    `json:"workers"`

	AmortizedPoints       int     `json:"amortized_points"`
	AmortizedSeconds      float64 `json:"amortized_seconds"`
	AmortizedPointsPerSec float64 `json:"amortized_points_per_sec"`
	RebuildPoints         int     `json:"rebuild_points"`
	RebuildSeconds        float64 `json:"rebuild_seconds"`
	RebuildPointsPerSec   float64 `json:"rebuild_points_per_sec"`
	// SpeedupX is amortized over rebuild points/second.
	SpeedupX float64 `json:"speedup_x"`

	RefineCircuit   string  `json:"refine_circuit"`
	CoarseX         int     `json:"coarse_x"`
	CoarseY         int     `json:"coarse_y"`
	RefineDepth     int     `json:"refine_depth"`
	LatticePoints   int     `json:"lattice_points"`
	SimulatedPoints int     `json:"simulated_points"`
	RefineSeconds   float64 `json:"refine_seconds"`
	UniformSeconds  float64 `json:"uniform_seconds"`
	// RefineSavingsX is lattice points over simulated points: how many
	// fewer simulations the refined map ran than the uniform fine grid.
	RefineSavingsX float64 `json:"refine_savings_x"`
	// RefineMaxErrPct is the largest interpolated-point deviation from
	// the uniform map, as a percent of the uniform map's current range.
	// Simulated points are bit-identical by construction.
	RefineMaxErrPct float64 `json:"refine_max_err_pct"`
}

// RunSweepEngine measures both halves and returns the report.
func RunSweepEngine(o SweepEngineOptions) (*SweepEngineReport, error) {
	rep := &SweepEngineReport{
		Benchmark:      o.Benchmark,
		GridX:          o.GridX,
		GridY:          o.GridY,
		EventsPerPoint: o.Events,
	}
	if err := runSweepThroughput(o, rep); err != nil {
		return nil, err
	}
	if err := runSweepRefine(o, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// runSweepThroughput times the compile-once path against the per-point
// rebuild path on the named logic benchmark.
func runSweepThroughput(o SweepEngineOptions, rep *SweepEngineReport) error {
	b, ok := ByName(o.Benchmark)
	if !ok {
		return fmt.Errorf("bench: benchmark %s missing from suite", o.Benchmark)
	}
	ins := b.Netlist.Inputs
	if len(ins) < 2 {
		return fmt.Errorf("bench: %s has %d inputs; the map needs two", o.Benchmark, len(ins))
	}
	p := logicnet.DefaultParams()
	bo := circuit.BuildOptions{SparsePotentials: o.Sparse}
	// Static bias points: every input a DC source, the map sweeping the
	// first two over the logic swing.
	driveAt := func(x, y float64) map[string]circuit.Source {
		d := make(map[string]circuit.Source, len(ins))
		for _, in := range ins {
			d[in] = circuit.DC(0)
		}
		d[ins[0]] = circuit.DC(x)
		d[ins[1]] = circuit.DC(y)
		return d
	}
	cfg := sweep.Config{
		Options: solver.Options{
			Temp:             WorkloadTemp,
			Seed:             o.Seed,
			Adaptive:         true,
			RateTables:       true,
			SparsePotentials: o.Sparse,
		},
		WarmEvents: o.Warm,
		Events:     o.Events,
	}
	xs := numeric.Linspace(0, p.Vdd(), o.GridX)
	ys := numeric.Linspace(0, p.Vdd(), o.GridY)

	// Amortized: one netlist expansion total, one solver per worker,
	// Reset per point. The expansion is inside the timed window — it is
	// part of what the session path pays.
	amStart := time.Now()
	ex, err := b.Netlist.ExpandWith(p, driveAt(0, 0), bo)
	if err != nil {
		return err
	}
	xNode, yNode := ex.InputNode[ins[0]], ex.InputNode[ins[1]]
	over := func(x, y float64) map[int]float64 {
		return map[int]float64{xNode: x, yNode: y}
	}
	newSession := func() (*sweep.Session, error) {
		return sweep.NewSession(ex.Circuit, 0, over, cfg)
	}
	if _, err := sweep.Map2DSession(newSession, xs, ys, cfg); err != nil {
		return err
	}
	amWall := time.Since(amStart)

	// Rebuild baseline: the pre-session per-point path — expansion,
	// capacitance build, solver construction — on a subsample spread
	// across the x axis at the middle row. Build cost does not depend
	// on the bias, so the subsample prices every point.
	n := o.RebuildSample
	if n < 1 {
		n = 1
	}
	rxs := make([]float64, n)
	for i := range rxs {
		j := 0
		if n > 1 {
			j = i * (len(xs) - 1) / (n - 1)
		}
		rxs[i] = xs[j]
	}
	rys := []float64{ys[len(ys)/2]}
	rbStart := time.Now()
	_, err = sweep.Map2D(func(x, y float64) (*circuit.Circuit, int, error) {
		ex2, err := b.Netlist.ExpandWith(p, driveAt(x, y), bo)
		if err != nil {
			return nil, 0, err
		}
		return ex2.Circuit, 0, nil
	}, rxs, rys, cfg)
	if err != nil {
		return err
	}
	rbWall := time.Since(rbStart)

	rep.Junctions = ex.Circuit.NumJunctions()
	rep.Workers = runtime.GOMAXPROCS(0)
	rep.AmortizedPoints = len(xs) * len(ys)
	rep.AmortizedSeconds = amWall.Seconds()
	rep.RebuildPoints = n
	rep.RebuildSeconds = rbWall.Seconds()
	if amWall > 0 {
		rep.AmortizedPointsPerSec = float64(rep.AmortizedPoints) / amWall.Seconds()
	}
	if rbWall > 0 {
		rep.RebuildPointsPerSec = float64(n) / rbWall.Seconds()
	}
	if rep.RebuildPointsPerSec > 0 {
		rep.SpeedupX = rep.AmortizedPointsPerSec / rep.RebuildPointsPerSec
	}
	return nil
}

// runSweepRefine measures adaptive mesh refinement against a uniform
// fine grid on a SET Coulomb-diamond map, verifying that every refined
// simulated point is bit-identical to the uniform map's.
func runSweepRefine(o SweepEngineOptions, rep *SweepEngineReport) error {
	setCfg := circuit.SETConfig{R1: 1e6, C1: 1e-18, R2: 1e6, C2: 1e-18, Cg: 3e-18}
	cfg := sweep.Config{
		// 1 K keeps the diamonds sharp: near-zero current inside, so
		// contrast concentrates on the edges the refiner should find.
		Options:    solver.Options{Temp: 1, Seed: o.Seed + 1},
		WarmEvents: o.RefineEvents / 4,
		Events:     o.RefineEvents,
	}
	newSession := func() (*sweep.Session, error) {
		c, nd := circuit.NewSET(setCfg)
		over := func(x, y float64) map[int]float64 {
			// Symmetric drain-source bias x, gate bias y.
			return map[int]float64{nd.Source: x / 2, nd.Drain: -x / 2, nd.Gate: y}
		}
		return sweep.NewSession(c, nd.JuncDrain, over, cfg)
	}
	// Gate period e/Cg = 53 mV, so y spans two diamonds; |Vds| stays
	// well under e/C_Sigma = 32 mV, so most of the window is deep
	// blockade (I = 0) and the current's contrast — everything the
	// refiner keys on — concentrates on the diamond edges around the
	// two degeneracy points.
	xs := numeric.Linspace(-0.012, 0.012, o.CoarseX)
	ys := numeric.Linspace(0, 0.107, o.CoarseY)
	rc := sweep.RefineConfig{Depth: o.Depth, Threshold: o.Threshold}

	refStart := time.Now()
	rm, err := sweep.Map2DRefined(newSession, xs, ys, cfg, rc)
	if err != nil {
		return err
	}
	refWall := time.Since(refStart)

	fineXs := sweep.RefineAxis(xs, o.Depth)
	fineYs := sweep.RefineAxis(ys, o.Depth)
	uniStart := time.Now()
	uni, err := sweep.Map2DSession(newSession, fineXs, fineYs, cfg)
	if err != nil {
		return err
	}
	uniWall := time.Since(uniStart)

	lo, hi := uni[0][0], uni[0][0]
	for _, row := range uni {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	maxErr := 0.0
	for iy := range uni {
		for ix := range uni[iy] {
			if rm.Simulated[iy][ix] {
				if !numeric.SameBits(rm.I[iy][ix], uni[iy][ix]) {
					return fmt.Errorf("bench: refined point (%d,%d) = %g differs from uniform %g; simulated points must be bit-identical",
						ix, iy, rm.I[iy][ix], uni[iy][ix])
				}
				continue
			}
			if d := rm.I[iy][ix] - uni[iy][ix]; d > maxErr {
				maxErr = d
			} else if -d > maxErr {
				maxErr = -d
			}
		}
	}

	rep.RefineCircuit = "SET"
	rep.CoarseX = o.CoarseX
	rep.CoarseY = o.CoarseY
	rep.RefineDepth = o.Depth
	rep.LatticePoints = rm.PointsTotal
	rep.SimulatedPoints = rm.PointsSimulated
	rep.RefineSeconds = refWall.Seconds()
	rep.UniformSeconds = uniWall.Seconds()
	if rm.PointsSimulated > 0 {
		rep.RefineSavingsX = float64(rm.PointsTotal) / float64(rm.PointsSimulated)
	}
	if hi > lo {
		rep.RefineMaxErrPct = 100 * maxErr / (hi - lo)
	}
	return nil
}

// LoadSweepEngineReport reads a BENCH_sweep_engine.json snapshot.
func LoadSweepEngineReport(path string) (*SweepEngineReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep SweepEngineReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s is not a sweep-engine report: %w", path, err)
	}
	return &rep, nil
}

// CheckSweepEngine returns one message per violated floor: the
// compile-once path must beat per-point rebuilding by at least
// minSpeedup in points/second, and refinement must simulate at least
// minSavings times fewer points than the uniform fine lattice. An empty
// slice means the snapshot holds the amortized engine's reason to
// exist.
func CheckSweepEngine(rep *SweepEngineReport, minSpeedup, minSavings float64) []string {
	var bad []string
	if rep.SpeedupX < minSpeedup {
		bad = append(bad, fmt.Sprintf(
			"%s %dx%d map: amortized %.1f points/s is only %.2fx the rebuild path's %.2f points/s (floor %.0fx)",
			rep.Benchmark, rep.GridX, rep.GridY,
			rep.AmortizedPointsPerSec, rep.SpeedupX, rep.RebuildPointsPerSec, minSpeedup))
	}
	if rep.RefineSavingsX < minSavings {
		bad = append(bad, fmt.Sprintf(
			"%s refine depth %d: simulated %d of %d lattice points, only a %.2fx saving (floor %.0fx)",
			rep.RefineCircuit, rep.RefineDepth,
			rep.SimulatedPoints, rep.LatticePoints, rep.RefineSavingsX, minSavings))
	}
	return bad
}
