package units

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, rel float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > rel {
			t.Fatalf("%s: got %g want 0 (tol %g)", name, got, rel)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > rel {
		t.Fatalf("%s: got %g want %g (rel tol %g)", name, got, want, rel)
	}
}

func TestResistanceQuanta(t *testing.T) {
	approx(t, "RQ", RQ, 6453.20e0*1.0, 1e-3)      // ~6.45 kOhm
	approx(t, "RK", RK, 25812.807, 1e-6)          // von Klitzing
	approx(t, "RK/RQ", RK/RQ, 4, 1e-12)           // h/e^2 = 4 * h/4e^2
	approx(t, "Hbar", Hbar, H/(2*math.Pi), 1e-15) // definition
}

func TestChargingEnergy(t *testing.T) {
	// e^2/2C for C = 1 aF is about 12.8e-21 J ~ 80 meV... check exact.
	c := AF(1)
	want := E * E / (2 * 1e-18)
	approx(t, "Ec", ChargingEnergy(c), want, 1e-12)
	// Charging energy of 2 aF total capacitance expressed in meV should
	// be ~40 meV (e/2C * e): e^2/(2*2aF) = 6.4e-21 J = 40.09 meV.
	approx(t, "Ec meV", ToMeV(ChargingEnergy(AF(2))), 40.09, 5e-3)
}

func TestUnitHelpers(t *testing.T) {
	approx(t, "AF", AF(3), 3e-18, 1e-15)
	approx(t, "FF", FF(2), 2e-15, 1e-15)
	approx(t, "mK", MilliKelvin(50), 0.05, 1e-15)
	approx(t, "mV", MilliVolt(20), 0.02, 1e-15)
	approx(t, "uV", MicroVolt(7), 7e-6, 1e-15)
	approx(t, "MOhm", MegaOhm(1), 1e6, 1e-15)
	approx(t, "kOhm", KiloOhm(210), 2.1e5, 1e-15)
	approx(t, "meV->J->meV", ToMeV(MeV(0.2)), 0.2, 1e-12)
	approx(t, "kT at 1K", ThermalEnergy(1), KB, 1e-15)
}

func TestGatePeriod(t *testing.T) {
	// e/Cg for Cg = 3 aF: 0.0534 V.
	approx(t, "e/Cg", GatePeriod(AF(3)), E/3e-18, 1e-12)
}
