// Package units collects the physical constants and unit helpers used
// throughout the simulator. All internal quantities are SI: volts,
// amperes, farads, ohms, joules, kelvins, seconds.
package units

import "math"

// Fundamental constants (CODATA values; exactness is irrelevant at the
// precision of orthodox-theory device simulation).
const (
	// E is the elementary charge in coulombs.
	E = 1.602176634e-19
	// KB is Boltzmann's constant in joules per kelvin.
	KB = 1.380649e-23
	// H is Planck's constant in joule-seconds.
	H = 6.62607015e-34
	// Hbar is the reduced Planck constant in joule-seconds.
	Hbar = H / (2 * math.Pi)
	// RQ is the superconducting resistance quantum h/(4e^2) in ohms,
	// approximately 6.45 kOhm. It sets the high-resistance regime
	// (RN >> RQ) in which incoherent Cooper-pair tunneling is valid.
	RQ = H / (4 * E * E)
	// RK is the von Klitzing constant h/e^2 in ohms (~25.8 kOhm), the
	// resistance scale above which charge quantization on an island is
	// well defined.
	RK = H / (E * E)
)

// Convenience multipliers for the unit prefixes that dominate
// single-electronics work.
const (
	Atto  = 1e-18
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
)

// AF converts a value in attofarads to farads.
func AF(c float64) float64 { return c * Atto }

// FF converts a value in femtofarads to farads.
func FF(c float64) float64 { return c * Femto }

// MilliKelvin converts a value in millikelvin to kelvin.
func MilliKelvin(t float64) float64 { return t * Milli }

// MilliVolt converts a value in millivolts to volts.
func MilliVolt(v float64) float64 { return v * Milli }

// MicroVolt converts a value in microvolts to volts.
func MicroVolt(v float64) float64 { return v * Micro }

// MegaOhm converts a value in megaohms to ohms.
func MegaOhm(r float64) float64 { return r * Mega }

// KiloOhm converts a value in kiloohms to ohms.
func KiloOhm(r float64) float64 { return r * Kilo }

// MeV converts an energy in milli-electron-volts to joules.
// (Milli-eV, not mega-eV: superconducting gaps are fractions of a meV.)
func MeV(e float64) float64 { return e * Milli * E }

// ToMeV converts an energy in joules to milli-electron-volts.
func ToMeV(j float64) float64 { return j / (Milli * E) }

// ThermalEnergy returns k_B*T in joules for a temperature in kelvin.
func ThermalEnergy(t float64) float64 { return KB * t }

// ChargingEnergy returns the single-electron charging energy e^2/(2*C)
// in joules for a total island capacitance C in farads.
func ChargingEnergy(c float64) float64 { return E * E / (2 * c) }

// GatePeriod returns the gate-voltage periodicity e/Cg of the Coulomb
// oscillations for a gate capacitance Cg in farads.
func GatePeriod(cg float64) float64 { return E / cg }
