package master

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/solver"
	"semsim/internal/units"
)

const aF = units.Atto

func paperSET(vds, vg float64) (*circuit.Circuit, circuit.SETNodes) {
	return circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: vds / 2, Vd: -vds / 2, Vg: vg,
	})
}

func TestProbabilitiesNormalized(t *testing.T) {
	c, _ := paperSET(0.02, 0.01)
	res, err := Solve(c, 5, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range res.P {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("bad probability %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

func TestEquilibriumBoltzmann(t *testing.T) {
	// At zero bias the stationary distribution must be the Gibbs
	// distribution over charging energies: p(n)/p(0) = exp(-dE/kT).
	c, _ := paperSET(0, 0)
	temp := 20.0
	res, err := Solve(c, temp, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ec := units.ChargingEnergy(5 * aF)
	kT := units.KB * temp
	i0 := -res.NMin
	// E(n) = Ec * n^2 for the neutral symmetric device.
	for _, n := range []int{1, 2} {
		want := math.Exp(-ec * float64(n*n) / kT)
		got := res.P[i0+n] / res.P[i0]
		if math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("Boltzmann ratio n=%d: got %g want %g", n, got, want)
		}
		gotM := res.P[i0-n] / res.P[i0]
		if math.Abs(gotM-want)/want > 1e-6 {
			t.Fatalf("Boltzmann ratio n=-%d: got %g want %g", n, gotM, want)
		}
	}
	// And the currents vanish identically.
	for j, i := range res.Current {
		if math.Abs(i) > 1e-25 {
			t.Fatalf("equilibrium current through junction %d: %g", j, i)
		}
	}
}

func TestCurrentContinuity(t *testing.T) {
	c, _ := paperSET(0.04, 0.007)
	res, err := Solve(c, 5, -6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state: the same current must flow through both junctions
	// (junction orientations here are source->island, island->drain).
	if math.Abs(res.Current[0]-res.Current[1]) > 1e-12*math.Abs(res.Current[0]) {
		t.Fatalf("KCL violated: %g vs %g", res.Current[0], res.Current[1])
	}
	if res.Current[0] <= 0 {
		t.Fatalf("positive bias must drive positive current, got %g", res.Current[0])
	}
}

func TestMonteCarloMatchesMasterEquation(t *testing.T) {
	// The central cross-validation: MC time averages against the exact
	// stationary solution, at several operating points.
	cases := []struct{ vds, vg float64 }{
		{0.040, 0.000},
		{0.040, 0.009},
		{0.020, 0.0267}, // near degeneracy: e/(2Cg) = 26.7 mV
		{0.060, 0.005},
	}
	for _, tc := range cases {
		cME, _ := paperSET(tc.vds, tc.vg)
		ref, err := Solve(cME, 5, -8, 8)
		if err != nil {
			t.Fatal(err)
		}
		cMC, nd := paperSET(tc.vds, tc.vg)
		s, err := solver.New(cMC, solver.Options{Temp: 5, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(20000, 0); err != nil {
			t.Fatal(err)
		}
		s.ResetMeasurement()
		if _, err := s.Run(120000, 0); err != nil {
			t.Fatal(err)
		}
		got := s.JunctionCurrent(nd.JuncDrain)
		want := ref.Current[1]
		if math.IsNaN(want) || math.IsInf(want, 0) || want == 0 {
			t.Fatalf("Vds=%g Vg=%g: master equation returned %g", tc.vds, tc.vg, want)
		}
		if !(math.Abs(got-want)/math.Abs(want) <= 0.05) {
			t.Fatalf("Vds=%g Vg=%g: MC current %g vs ME %g (>5%% off)",
				tc.vds, tc.vg, got, want)
		}
	}
}

func TestWideWindowStaysFinite(t *testing.T) {
	// Regression: intermediate-temperature rate ratios between adjacent
	// charge states reach ~e^60 per step; a 17-state window used to
	// overflow the probability recursion to Inf/NaN. The log-space
	// solver must stay finite and symmetric here.
	c, _ := paperSET(0.04, 0)
	res, err := Solve(c, 5, -8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, p := range res.P {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			t.Fatalf("P[%d] = %g", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %g", sum)
	}
	if math.IsNaN(res.Current[0]) || res.Current[0] <= 0 {
		t.Fatalf("current = %g", res.Current[0])
	}
	// Symmetric device at Vg=0: occupation symmetric about n=0.
	mid := -res.NMin
	for k := 1; k <= 3; k++ {
		a, b := res.P[mid-k], res.P[mid+k]
		den := math.Max(a, b)
		if den > 0 && math.Abs(a-b)/den > 1e-6 {
			t.Fatalf("P not symmetric at +-%d: %g vs %g", k, a, b)
		}
	}
}

func TestBlockadeSuppression(t *testing.T) {
	// Inside the blockade at low T the ME current must be exponentially
	// small compared to above threshold.
	cIn, _ := paperSET(0.016, 0) // half the 32 mV threshold
	rIn, err := Solve(cIn, 1, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cOut, _ := paperSET(0.048, 0)
	rOut, err := Solve(cOut, 1, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rIn.Current[0]) > 1e-6*math.Abs(rOut.Current[0]) {
		t.Fatalf("blockade current not suppressed: %g vs %g", rIn.Current[0], rOut.Current[0])
	}
}

func TestGatePeriodicityOfCurrent(t *testing.T) {
	period := units.E / (3 * aF)
	c1, _ := paperSET(0.01, 0.004)
	c2, _ := paperSET(0.01, 0.004+period)
	r1, err := Solve(c1, 5, -6, 6)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(c2, 5, -6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Current[0]-r2.Current[0])/math.Abs(r1.Current[0]) > 1e-6 {
		t.Fatalf("current not e/Cg periodic: %g vs %g", r1.Current[0], r2.Current[0])
	}
}

func TestSuperconductingGapSuppression(t *testing.T) {
	mk := func(gap bool) *circuit.Circuit {
		cfg := circuit.SETConfig{
			R1: 210e3, C1: 110 * aF, R2: 210e3, C2: 110 * aF, Cg: 14 * aF,
			Vs: 1.0e-3, Vd: 0,
		}
		if gap {
			cfg.Super = circuit.SuperParams{GapAt0: units.MeV(0.23), Tc: 1.4}
		}
		c, _ := circuit.NewSET(cfg)
		return c
	}
	rN, err := Solve(mk(false), 0.1, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rS, err := Solve(mk(true), 0.1, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rS.Current[0]) > 0.02*math.Abs(rN.Current[0]) {
		t.Fatalf("QP master equation misses gap suppression: %g vs normal %g",
			rS.Current[0], rN.Current[0])
	}
}

func TestWindowFor(t *testing.T) {
	// Strong gate bias pulls many electrons; the window must follow.
	c, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vg: 10 * units.E / (3 * aF), // ten electrons worth of gate charge
	})
	lo, hi := WindowFor(c, 3)
	// The island accommodates ~+10 electrons (n = Cg*Vg/e); the window
	// must be centered near there and at least 2*margin wide.
	if lo > 8 || hi < 11 {
		t.Fatalf("window [%d, %d] did not follow the gate-induced charge (~10)", lo, hi)
	}
	if hi-lo < 6 {
		t.Fatalf("window too narrow: [%d, %d]", lo, hi)
	}
}

func TestSolveErrors(t *testing.T) {
	// Two islands are out of scope.
	c := circuit.New()
	g := c.AddNode("g", circuit.External)
	c.SetSource(g, circuit.DC(0))
	i1 := c.AddNode("i1", circuit.Island)
	i2 := c.AddNode("i2", circuit.Island)
	c.AddJunction(g, i1, 1e6, aF)
	c.AddJunction(i1, i2, 1e6, aF)
	c.AddJunction(i2, g, 1e6, aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(c, 1, -2, 2); err == nil {
		t.Fatal("accepted two-island circuit")
	}
	cs, _ := paperSET(0.01, 0)
	if _, err := Solve(cs, 1, 3, 3); err == nil {
		t.Fatal("accepted empty charge window")
	}
}
