// Package master solves the steady-state master equation of a
// single-island circuit (a SET): the occupation probabilities of each
// island charge state and the resulting junction currents.
//
// The paper lists the master-equation approach as one of the three
// established simulation methods; here it serves as an independent
// reference implementation against which the Monte Carlo engine is
// validated quantitatively (Section IV-A validates against SIMON and
// analytics; this package is our substitute for those).
//
// For one island the charge states form a birth-death chain, so the
// stationary distribution follows from the flow-balance recursion
//
//	p(n+1) = p(n) * Gamma_up(n) / Gamma_down(n+1)
//
// and the current through any junction is e * sum_n p(n) * (net rate).
package master

import (
	"errors"
	"fmt"
	"math"

	"semsim/internal/circuit"
	"semsim/internal/obs"
	"semsim/internal/orthodox"
	"semsim/internal/super"
	"semsim/internal/units"
)

// Result holds the steady-state solution.
type Result struct {
	// NMin is the charge state of P[0]; P[i] is the probability of the
	// island holding NMin+i excess electrons.
	NMin int
	P    []float64
	// Current is the conventional steady-state current (amperes) from
	// node A to node B of each junction.
	Current []float64
	// MeanN is the average excess electron number.
	MeanN float64
}

// Solve computes the steady state of a built single-island circuit at
// temperature temp, considering island charge states in [nmin, nmax].
// Sources are evaluated at t = 0, so only DC operating points make
// sense here. Superconducting circuits use the quasi-particle rate
// (first order only; no Cooper-pair or cotunneling contributions).
func Solve(c *circuit.Circuit, temp float64, nmin, nmax int) (*Result, error) {
	defer obs.GlobalSpan("master.solve").End()
	if c.NumIslands() != 1 {
		return nil, fmt.Errorf("master: need exactly 1 island, have %d", c.NumIslands())
	}
	if nmax <= nmin {
		return nil, errors.New("master: empty charge-state window")
	}
	island := c.Islands()[0]
	nj := c.NumJunctions()

	var qpTabs []*super.QPTable
	sp := c.Super()
	if sp.Superconducting() {
		if temp <= 0 {
			return nil, errors.New("master: superconducting solve requires T > 0")
		}
		gap := super.Gap(sp.GapAt0, sp.Tc, temp)
		maxV := 0.0
		for _, id := range c.Externals() {
			if v := c.SourceVoltage(id, 0); v > maxV {
				maxV = v
			} else if -v > maxV {
				maxV = -v
			}
		}
		vmax := (8*gap+8*units.ChargingEnergy(c.SumCapacitance(island)))/units.E + 4*maxV
		qpTabs = make([]*super.QPTable, nj)
		byR := map[float64]*super.QPTable{}
		for j := 0; j < nj; j++ {
			r := c.Junction(j).R
			tab, ok := byR[r]
			if !ok {
				var err error
				tab, err = super.NewQPTable(r, gap, gap, temp, vmax)
				if err != nil {
					return nil, err
				}
				byR[r] = tab
			}
			qpTabs[j] = tab
		}
	}

	ns := nmax - nmin + 1
	// rateOn[j][i]: electron tunnels through junction j onto the island
	// while it holds nmin+i electrons; rateOff[j][i]: off the island.
	rateOn := make([][]float64, nj)
	rateOff := make([][]float64, nj)
	for j := range rateOn {
		rateOn[j] = make([]float64, ns)
		rateOff[j] = make([]float64, ns)
	}
	nvec := make([]int, 1)
	for i := 0; i < ns; i++ {
		nvec[0] = nmin + i
		v := c.IslandPotentials(nil, nvec, 0)
		vi := v[0]
		for j := 0; j < nj; j++ {
			jn := c.Junction(j)
			lead := jn.A
			if lead == island {
				lead = jn.B
			}
			vl := c.SourceVoltage(lead, 0)
			dwOn := c.DeltaWElectron(lead, island, vl, vi)
			dwOff := c.DeltaWElectron(island, lead, vi, vl)
			if qpTabs != nil {
				rateOn[j][i] = qpTabs[j].Rate(dwOn)
				rateOff[j][i] = qpTabs[j].Rate(dwOff)
			} else {
				rateOn[j][i] = orthodox.Rate(dwOn, jn.R, temp)
				rateOff[j][i] = orthodox.Rate(dwOff, jn.R, temp)
			}
		}
	}

	// Stationary distribution of the birth-death chain, computed in log
	// space: adjacent-state rate ratios reach exp(dE/kT) with dE
	// hundreds of kT at the window edges, far beyond float64 range.
	lp := make([]float64, ns)
	lp[0] = 0
	for i := 0; i+1 < ns; i++ {
		up := 0.0
		down := 0.0
		for j := 0; j < nj; j++ {
			up += rateOn[j][i]
			down += rateOff[j][i+1]
		}
		switch {
		case down <= 0 && up > 0:
			// The chain cannot return from state i+1: everything below
			// is transient. Restart the measure there.
			for k := 0; k <= i; k++ {
				lp[k] = math.Inf(-1)
			}
			lp[i+1] = 0
		case up <= 0:
			// State i+1 is unreachable from below (until a later
			// restart); -Inf propagates through the recursion.
			lp[i+1] = math.Inf(-1)
		default:
			lp[i+1] = lp[i] + math.Log(up) - math.Log(down)
		}
	}
	maxLp := math.Inf(-1)
	for _, v := range lp {
		if v > maxLp {
			maxLp = v
		}
	}
	if math.IsInf(maxLp, -1) {
		return nil, errors.New("master: no reachable states (fully blockaded window)")
	}
	p := make([]float64, ns)
	sum := 0.0
	for i, v := range lp {
		p[i] = math.Exp(v - maxLp)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}

	res := &Result{NMin: nmin, P: p, Current: make([]float64, nj)}
	for i, pi := range p {
		res.MeanN += pi * float64(nmin+i)
		for j := 0; j < nj; j++ {
			jn := c.Junction(j)
			// Electron onto the island through j: if A is the lead,
			// electrons flow A->B, conventional current B->A (negative
			// A->B). Off the island: the reverse.
			sign := 1.0
			if jn.A != island { // A is the lead
				sign = -1.0
			}
			res.Current[j] += pi * sign * units.E * (rateOn[j][i] - rateOff[j][i])
		}
	}
	return res, nil
}

// WindowFor suggests a charge-state window wide enough for a SET at the
// given operating point: the mean induced charge plus margin.
func WindowFor(c *circuit.Circuit, margin int) (nmin, nmax int) {
	if margin < 3 {
		margin = 3
	}
	island := c.Islands()[0]
	// Induced charge at n = 0 sets the center of the occupied states.
	v := c.IslandPotentials(nil, []int{0}, 0)
	q := v[0] * c.SumCapacitance(island)
	center := int(q / units.E)
	return center - margin, center + margin
}
