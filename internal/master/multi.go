package master

import (
	"errors"
	"fmt"
	"math"

	"semsim/internal/circuit"
	"semsim/internal/obs"
	"semsim/internal/orthodox"
	"semsim/internal/units"
)

// This file implements the master-equation approach for multi-island
// circuits — the paper's second established method. Its fundamental
// limitation, which the paper calls out ("the relevant states must be
// known before simulation ... single-electron device circuits can
// potentially occupy an infinite number of states"), appears here as
// the truncated state box: every island's occupation is restricted to
// a window around its electrostatically induced charge, and the state
// count grows exponentially with the island count. That is precisely
// why the Monte Carlo solver is the tool for large circuits.

// ResultN is the stationary solution over an enumerated state space.
type ResultN struct {
	// States lists the enumerated occupation vectors (island order).
	States [][]int
	// P are the stationary probabilities, aligned with States.
	P []float64
	// Current is the conventional steady-state current (A) from node A
	// to node B of each junction.
	Current []float64
	// Iterations is the number of power-iteration sweeps used.
	Iterations int
}

// SolveN computes the stationary state of a built normal-state circuit
// with any number of islands, enumerating occupation numbers within
// +-radius of each island's induced charge. The stationary distribution
// of the truncated generator is found by uniformized power iteration.
//
// The state count is (2*radius+1)^islands: this is practical for a few
// islands only, by design of the method.
func SolveN(c *circuit.Circuit, temp float64, radius int) (*ResultN, error) {
	defer obs.GlobalSpan("master.solveN").End()
	if c.Super().Superconducting() {
		return nil, errors.New("master: SolveN supports normal-state circuits only")
	}
	ni := c.NumIslands()
	if ni == 0 {
		return nil, errors.New("master: no islands")
	}
	if radius < 1 {
		return nil, errors.New("master: radius must be >= 1")
	}
	span := 2*radius + 1
	nStates := 1
	for i := 0; i < ni; i++ {
		if nStates > 200000/span {
			return nil, fmt.Errorf("master: state space too large (%d islands, radius %d)", ni, radius)
		}
		nStates *= span
	}

	// Center the box on the induced charge of each island.
	center := make([]int, ni)
	zero := make([]int, ni)
	v0 := c.IslandPotentials(nil, zero, 0)
	for i, isl := range c.Islands() {
		q := v0[i] * c.SumCapacitance(isl)
		center[i] = int(math.Round(q / units.E))
	}

	// State encoding: mixed-radix little-endian over islands.
	decode := func(idx int) []int {
		n := make([]int, ni)
		for i := 0; i < ni; i++ {
			n[i] = center[i] + idx%span - radius
			idx /= span
		}
		return n
	}
	encode := func(n []int) (int, bool) {
		idx := 0
		mul := 1
		for i := 0; i < ni; i++ {
			d := n[i] - center[i] + radius
			if d < 0 || d >= span {
				return 0, false
			}
			idx += d * mul
			mul *= span
		}
		return idx, true
	}

	// Sparse transition lists: for each state, its outgoing moves.
	type move struct {
		to   int
		rate float64
		junc int
		// dir is +1 when the electron moves A -> B through the junction.
		dir int
	}
	moves := make([][]move, nStates)
	juncs := c.Junctions()
	vbuf := make([]float64, ni)
	for s := 0; s < nStates; s++ {
		n := decode(s)
		c.IslandPotentials(vbuf, n, 0)
		nodeV := func(id int) float64 { return c.NodePotential(id, vbuf, 0) }
		for j, jn := range juncs {
			for _, dir := range [2]int{+1, -1} {
				src, dst := jn.A, jn.B
				if dir < 0 {
					src, dst = jn.B, jn.A
				}
				nn := append([]int(nil), n...)
				c.ApplyTransfer(nn, src, dst, 1)
				to, ok := encode(nn)
				if !ok {
					continue // leaves the truncated box
				}
				dw := c.DeltaWElectron(src, dst, nodeV(src), nodeV(dst))
				rate := orthodox.Rate(dw, jn.R, temp)
				if rate <= 0 {
					continue
				}
				moves[s] = append(moves[s], move{to: to, rate: rate, junc: j, dir: dir})
			}
		}
	}

	// Uniformization: P = I + Q/lambda with lambda >= max total exit
	// rate; power-iterate p <- pP until the 1-norm change stalls.
	lambda := 0.0
	exit := make([]float64, nStates)
	for s, ms := range moves {
		tot := 0.0
		for _, m := range ms {
			tot += m.rate
		}
		exit[s] = tot
		if tot > lambda {
			lambda = tot
		}
	}
	if lambda == 0 {
		return nil, errors.New("master: no transitions within the state box")
	}
	lambda *= 1.05

	p := make([]float64, nStates)
	for i := range p {
		p[i] = 1 / float64(nStates)
	}
	next := make([]float64, nStates)
	res := &ResultN{}
	const maxIter = 200000
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for s, ps := range p {
			if ps == 0 {
				continue
			}
			next[s] += ps * (1 - exit[s]/lambda)
			for _, m := range moves[s] {
				next[m.to] += ps * m.rate / lambda
			}
		}
		// Normalize and measure movement.
		sum := 0.0
		for _, v := range next {
			sum += v
		}
		diff := 0.0
		for i := range next {
			next[i] /= sum
			diff += math.Abs(next[i] - p[i])
		}
		p, next = next, p
		res.Iterations = iter + 1
		if diff < 1e-13 {
			break
		}
	}

	res.P = p
	res.States = make([][]int, nStates)
	for s := range res.States {
		res.States[s] = decode(s)
	}
	res.Current = make([]float64, len(juncs))
	for s, ps := range p {
		if ps == 0 {
			continue
		}
		for _, m := range moves[s] {
			// Electrons moving A -> B carry conventional current B -> A.
			res.Current[m.junc] -= float64(m.dir) * ps * m.rate * units.E
		}
	}
	return res, nil
}
