package master

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/solver"
	"semsim/internal/units"
)

func TestSolveNMatchesSingleIslandSolve(t *testing.T) {
	// On a SET the multi-island solver must agree with the birth-death
	// chain solution.
	c, _ := paperSET(0.04, 0.007)
	ref, err := Solve(c, 5, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := paperSET(0.04, 0.007)
	got, err := SolveN(c2, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref.Current {
		if math.Abs(got.Current[j]-ref.Current[j])/math.Abs(ref.Current[j]) > 1e-6 {
			t.Fatalf("junction %d: SolveN %g vs Solve %g", j, got.Current[j], ref.Current[j])
		}
	}
}

// doubleDot builds a two-island series double dot between biased leads.
func doubleDot(vbias float64) *circuit.Circuit {
	c := circuit.New()
	l0 := c.AddNode("l0", circuit.External)
	l1 := c.AddNode("l1", circuit.External)
	g := c.AddNode("g", circuit.External)
	c.SetSource(l0, circuit.DC(vbias/2))
	c.SetSource(l1, circuit.DC(-vbias/2))
	c.SetSource(g, circuit.DC(0.004))
	d0 := c.AddNode("d0", circuit.Island)
	d1 := c.AddNode("d1", circuit.Island)
	c.AddJunction(l0, d0, 1e6, 2*units.Atto)
	c.AddJunction(d0, d1, 2e6, 2*units.Atto)
	c.AddJunction(d1, l1, 1e6, 2*units.Atto)
	c.AddCap(g, d0, 1*units.Atto)
	c.AddCap(g, d1, 1*units.Atto)
	if err := c.Build(); err != nil {
		panic(err)
	}
	return c
}

func TestSolveNDoubleDotKCL(t *testing.T) {
	res, err := SolveN(doubleDot(0.06), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state: all three series junctions carry the same current.
	i0 := res.Current[0]
	for j := 1; j < 3; j++ {
		if math.Abs(res.Current[j]-i0) > 1e-6*math.Abs(i0) {
			t.Fatalf("KCL violated: I%d=%g vs I0=%g", j, res.Current[j], i0)
		}
	}
	if i0 <= 0 {
		t.Fatalf("positive bias should drive positive current, got %g", i0)
	}
	// Probabilities normalized and finite.
	sum := 0.0
	for _, p := range res.P {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("bad probability %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

func TestSolveNDoubleDotMatchesMonteCarlo(t *testing.T) {
	// The headline cross-validation on a circuit the single-island
	// solver cannot handle.
	ref, err := SolveN(doubleDot(0.06), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(doubleDot(0.06), solver.Options{Temp: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(30000, 0); err != nil {
		t.Fatal(err)
	}
	s.ResetMeasurement()
	if _, err := s.Run(150000, 0); err != nil {
		t.Fatal(err)
	}
	got := s.JunctionCurrent(1) // middle junction
	want := ref.Current[1]
	if math.IsNaN(want) || want == 0 {
		t.Fatalf("ME current %g", want)
	}
	if math.Abs(got-want)/math.Abs(want) > 0.06 {
		t.Fatalf("double dot: MC %g vs ME %g (>6%%)", got, want)
	}
}

func TestSolveNEquilibrium(t *testing.T) {
	res, err := SolveN(doubleDot(0), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Box truncation breaks detailed balance by a whisper at the
	// boundary states; the residual must stay at least nine orders of
	// magnitude below the driven current (~nA).
	for j, i := range res.Current {
		if math.Abs(i) > 1e-18 {
			t.Fatalf("equilibrium current through junction %d: %g", j, i)
		}
	}
}

func TestSolveNValidation(t *testing.T) {
	c := doubleDot(0.01)
	if _, err := SolveN(c, 10, 0); err == nil {
		t.Fatal("radius 0 accepted")
	}
	// Superconducting circuits are out of scope.
	sc, _ := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: units.Atto, R2: 1e6, C2: units.Atto, Cg: 3 * units.Atto,
		Super: circuit.SuperParams{GapAt0: units.MeV(0.2), Tc: 1.2},
	})
	if _, err := SolveN(sc, 0.1, 2); err == nil {
		t.Fatal("superconducting circuit accepted")
	}
}
