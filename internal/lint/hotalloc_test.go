package lint

import "testing"

func TestHotalloc(t *testing.T) {
	RunFixture(t, Hotalloc, "hotalloc/internal/solver")
}

func TestHotallocOnlyFiresOnEventPath(t *testing.T) {
	RunFixture(t, Hotalloc, "hotalloc/a")
}

func TestHotallocCoversBusPublish(t *testing.T) {
	RunFixture(t, Hotalloc, "hotalloc/internal/obs")
}
