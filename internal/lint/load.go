package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns with `go list`, parses
// their (non-test) Go files and type-checks them in dependency order.
// Standard-library imports are resolved by compiling their sources from
// GOROOT (the "source" importer), so loading needs no pre-built export
// data, no network and no tooling beyond the go command itself.
func Load(dir string, tags string, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-json"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var metas []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", lp.Error.Err)
		}
		if lp.Standard || lp.DepOnly || lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		metas = append(metas, &lp)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })

	fset := token.NewFileSet()
	parsed := map[string][]*ast.File{}
	byPath := map[string]*listPackage{}
	for _, lp := range metas {
		byPath[lp.ImportPath] = lp
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			parsed[lp.ImportPath] = append(parsed[lp.ImportPath], f)
		}
	}

	order, err := topoSort(metas, byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: map[string]*types.Package{},
	}
	var out []*Package
	for _, lp := range order {
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, parsed[lp.ImportPath], info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		imp.local[lp.ImportPath] = tpkg
		out = append(out, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Fset:  fset,
			Files: parsed[lp.ImportPath],
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}

// topoSort orders packages so every local import precedes its importer.
func topoSort(metas []*listPackage, byPath map[string]*listPackage) ([]*listPackage, error) {
	const (
		white = iota // unvisited
		gray         // on the visitation stack
		black        // done
	)
	state := map[string]int{}
	var order []*listPackage
	var visit func(lp *listPackage) error
	visit = func(lp *listPackage) error {
		switch state[lp.ImportPath] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", lp.ImportPath)
		}
		state[lp.ImportPath] = gray
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = black
		order = append(order, lp)
		return nil
	}
	for _, lp := range metas {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-local imports from the packages already
// type-checked this load, and everything else (the standard library)
// through the source importer.
type moduleImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}
