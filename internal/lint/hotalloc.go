package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc guards the per-event hot path of the Monte Carlo engine.
// Functions marked with a `//semsim:hot` doc-comment line (the solver's
// Step/apply/recompute kernels, the Fenwick tree operations, the batched
// RNG) run millions of times per simulated trajectory; the repository's
// zero-alloc benchmarks assert they never touch the garbage collector
// and never dispatch dynamically. This pass makes the same property
// reviewable statically, at the source line that would break it:
//
//   - dynamic dispatch: method calls through an interface value (each
//     call is an indirect jump the inliner cannot see through; on the
//     hot path rates are computed through precomputed concrete kernels);
//   - allocation sites: make, new, slice/map/&composite literals,
//     append, function literals (captures escape), go and defer
//     statements.
//
// A finding is waived by a same-line `//hotalloc:ok <reason>` comment —
// the reason is mandatory, so every allowed allocation or dispatch on
// the hot path documents why it is amortized or out of the per-rate
// loop (e.g. the Fenwick pending arrays append into preallocated
// capacity; a PWL ramp's RampStep runs once per step, not per rate).
//
// The pass runs only over internal/solver, internal/rng,
// internal/numeric and internal/obs — the packages with code on the
// per-event path (the event bus's publish fan-out runs once per
// published job event and must stay amortized-allocation-free) — and,
// like every pass, skips _test.go files.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "in //semsim:hot functions of internal/solver and internal/rng, flag interface dispatch and allocation sites lacking a //hotalloc:ok waiver",
	Run:  runHotalloc,
}

var hotallocPkgs = []string{"internal/solver", "internal/rng", "internal/numeric", "internal/obs", "internal/noise"}

func runHotalloc(pass *Pass) error {
	if !pathHasSuffixAny(pass.Path, hotallocPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		waived := hotallocWaivers(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotMarked(fd) {
				continue
			}
			checkHotBody(pass, fd, waived)
		}
	}
	return nil
}

// isHotMarked reports whether the function's doc comment carries a
// `//semsim:hot` marker line.
func isHotMarked(fd *ast.FuncDecl) bool {
	return docHasMarker(fd, "semsim:hot")
}

// hotallocWaivers collects the lines of f carrying a
// `//hotalloc:ok <reason>` comment. A waiver without a reason is not
// honored: the comment exists to document why the cost is acceptable.
func hotallocWaivers(pass *Pass, f *ast.File) map[int]bool {
	waived := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if strings.HasPrefix(text, "//") {
				text = text[2:]
			} else {
				text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
			}
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "hotalloc:ok") {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(text, "hotalloc:ok"))
			if reason == "" {
				pass.Reportf(c.Pos(), "hotalloc:ok waiver without a reason: say why this cost is acceptable on the hot path")
				continue
			}
			waived[pass.Fset.Position(c.Pos()).Line] = true
		}
	}
	return waived
}

// checkHotBody walks one hot function and reports dispatch and
// allocation sites. Nested function literals are themselves flagged as
// allocations, and their bodies are not separately walked: the closure
// either runs off the hot path (and the waiver says so) or its cost is
// already accounted to the literal.
func checkHotBody(pass *Pass, fd *ast.FuncDecl, waived map[int]bool) {
	name := fd.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		if waived[pass.Fset.Position(pos).Line] {
			return
		}
		args = append(args, name)
		pass.Reportf(pos, format+" in hot function %s (waive with //hotalloc:ok <reason>)", args...)
	}
	// A literal that is itself the callee of a go/defer statement is
	// covered by that statement's diagnostic; don't double-report it.
	stmtLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			if lit, ok := e.Call.Fun.(*ast.FuncLit); ok {
				stmtLits[lit] = true
			}
		case *ast.DeferStmt:
			if lit, ok := e.Call.Fun.(*ast.FuncLit); ok {
				stmtLits[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if !stmtLits[e] {
				report(e.Pos(), "function literal allocates its closure")
			}
			return false
		case *ast.GoStmt:
			report(e.Pos(), "go statement spawns a goroutine")
		case *ast.DeferStmt:
			report(e.Pos(), "defer on the hot path")
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(e); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), "slice literal allocates")
				case *types.Map:
					report(e.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, isLit := e.X.(*ast.CompositeLit); isLit {
					report(e.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, e, report)
		}
		return true
	})
}

// checkHotCall classifies one call on the hot path: a builtin that
// allocates, or a method call dispatched through an interface.
func checkHotCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch pass.Info.Uses[fun] {
		case types.Universe.Lookup("make"):
			report(call.Pos(), "make allocates")
		case types.Universe.Lookup("new"):
			report(call.Pos(), "new allocates")
		case types.Universe.Lookup("append"):
			report(call.Pos(), "append may grow its backing array")
		}
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return
		}
		if types.IsInterface(sel.Recv()) {
			report(call.Pos(), "interface method call %s.%s dispatches dynamically",
				types.ExprString(fun.X), fun.Sel.Name)
		}
	}
}
