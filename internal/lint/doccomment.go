package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Doccomment enforces documentation on the public surface: every
// exported symbol of the facade package (semsim — circuits, decks,
// logic expansion) and of the batch layer (internal/jobs, whose API is
// re-exported by the facade and driven remotely through semsimd) must
// carry a doc comment, and doc comments on functions and types must
// start with the symbol's name (optionally after "A", "An" or "The"),
// the form godoc and pkgsite index. The facade is the first thing a
// user of the repository reads; an undocumented export there is a bug
// in the product, not a style nit.
//
// Grouped const/var declarations may document the group as a whole; a
// doc comment on the group covers every name it declares.
var Doccomment = &Analyzer{
	Name: "doccomment",
	Doc:  "require doc comments on all exported symbols of the semsim facade and internal/jobs",
	Run:  runDoccomment,
}

// doccommentPkgs are the package path suffixes whose exported surface
// must be fully documented.
var doccommentPkgs = []string{
	"semsim",
	"internal/jobs",
}

func runDoccomment(pass *Pass) error {
	if !pathHasSuffixAny(pass.Path, doccommentPkgs) {
		return nil
	}
	hasPkgDoc := false
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
	}
	for _, f := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
		if isTest {
			hasPkgDoc = true // test files never carry the package doc
		}
	}
	if !hasPkgDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Package, "package %s has no package doc comment", pass.Pkg.Name())
	}
	return nil
}

// checkFuncDoc requires a doc comment on exported functions and on
// exported methods of exported types.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	if d.Recv != nil && !exportedReceiver(d.Recv) {
		return // method of an unexported type: not part of the surface
	}
	if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
		kind := "function"
		if d.Recv != nil {
			kind = "method"
		}
		pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
		return
	}
	checkDocStartsWithName(pass, d.Name.Pos(), d.Doc, d.Name.Name)
}

// checkGenDoc requires doc comments on exported types, vars and consts.
// A doc comment on a grouped declaration covers all of its specs.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			if doc == nil || strings.TrimSpace(doc.Text()) == "" {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
				continue
			}
			checkDocStartsWithName(pass, s.Name.Pos(), doc, s.Name.Name)
		case *ast.ValueSpec:
			var exported *ast.Ident
			for _, name := range s.Names {
				if name.IsExported() {
					exported = name
					break
				}
			}
			if exported == nil {
				continue
			}
			if groupDoc {
				continue // the group's doc covers its members
			}
			if s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "" {
				pass.Reportf(exported.Pos(), "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), exported.Name)
			}
		}
	}
}

// checkDocStartsWithName enforces the godoc convention that a symbol's
// documentation begins with its name (an optional "A", "An" or "The"
// article may precede it).
func checkDocStartsWithName(pass *Pass, pos token.Pos, doc *ast.CommentGroup, name string) {
	text := strings.TrimSpace(doc.Text())
	for _, article := range []string{"A ", "An ", "The "} {
		text = strings.TrimPrefix(text, article)
	}
	if strings.HasPrefix(text, name) {
		return
	}
	pass.Reportf(pos, "doc comment for %s should start with %q (godoc convention)", name, name)
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
