package lint

import "testing"

func TestUnitsafety(t *testing.T) {
	RunFixture(t, Unitsafety, "unitsafety/a")
}

func TestUnitsafetyExemptsUnitsPackage(t *testing.T) {
	RunFixture(t, Unitsafety, "unitsafety/internal/units")
}
