package lint

import "testing"

// TestFactStoreRoundTrip proves the .vetx wire format the vet-tool
// driver depends on: facts exported for one package survive
// EncodeFacts/DecodeFacts into a fresh store, byte-identically across
// encodings (vet caches on output bytes).
func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.put("semsim/internal/rng", "Source.MarshalBinary", &PurityFact{Reason: "test reason"})
	s.put("semsim/internal/rng", "Source", &SerialFact{Complete: true})
	s.put("semsim/internal/rng", "Default", &GlobalFact{Mutable: true})
	s.put("semsim/internal/jobs", "Plan", &SerialFact{Complete: false, Reason: "hidden field"})

	blob, err := s.EncodeFacts("semsim/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("EncodeFacts returned empty blob for non-empty package")
	}
	blob2, err := s.EncodeFacts("semsim/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Error("EncodeFacts is not deterministic: two encodings differ")
	}

	dst := NewFactStore()
	if err := dst.DecodeFacts("semsim/internal/rng", blob); err != nil {
		t.Fatal(err)
	}
	var pf PurityFact
	if !dst.get("semsim/internal/rng", "Source.MarshalBinary", &pf) {
		t.Fatal("PurityFact lost in round trip")
	}
	if pf.Reason != "test reason" {
		t.Errorf("PurityFact.Reason = %q, want %q", pf.Reason, "test reason")
	}
	var sf SerialFact
	if !dst.get("semsim/internal/rng", "Source", &sf) || !sf.Complete {
		t.Error("SerialFact lost or corrupted in round trip")
	}
	var gf GlobalFact
	if !dst.get("semsim/internal/rng", "Default", &gf) || !gf.Mutable {
		t.Error("GlobalFact lost or corrupted in round trip")
	}
	// Facts of other packages must not leak into the encoded blob.
	if dst.get("semsim/internal/jobs", "Plan", &sf) {
		t.Error("EncodeFacts leaked a fact belonging to another package")
	}
}

// TestFactStoreEmptyPackage: packages without facts encode to nil and
// decode as a no-op, so untouched .vetx files stay valid.
func TestFactStoreEmptyPackage(t *testing.T) {
	s := NewFactStore()
	blob, err := s.EncodeFacts("semsim/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if blob != nil {
		t.Errorf("EncodeFacts of factless package = %d bytes, want nil", len(blob))
	}
	if err := s.DecodeFacts("semsim/internal/units", nil); err != nil {
		t.Fatal(err)
	}
}

// TestFactStoreTypeKeying: two fact types on the same object coexist,
// and get with the wrong type misses instead of corrupting.
func TestFactStoreTypeKeying(t *testing.T) {
	s := NewFactStore()
	s.put("p", "Checkpoint", &SerialFact{Complete: true})
	s.put("p", "Checkpoint", &PurityFact{Reason: "r"})
	var sf SerialFact
	var pf PurityFact
	var gf GlobalFact
	if !s.get("p", "Checkpoint", &sf) || !s.get("p", "Checkpoint", &pf) {
		t.Error("facts of distinct types on one object should coexist")
	}
	if s.get("p", "Checkpoint", &gf) {
		t.Error("get hit a fact type that was never exported")
	}
}
