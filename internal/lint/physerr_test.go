package lint

import "testing"

func TestPhyserr(t *testing.T) {
	RunFixture(t, Physerr, "semsim/physa")
}
