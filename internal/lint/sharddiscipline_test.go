package lint

import "testing"

func TestSharddiscipline(t *testing.T) {
	RunFixture(t, Sharddiscipline, "sharddiscipline/internal/solver")
}

func TestSharddisciplineOnlyFiresInSolver(t *testing.T) {
	RunFixture(t, Sharddiscipline, "sharddiscipline/a")
}
