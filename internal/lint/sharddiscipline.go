package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sharddiscipline guards the contract of the within-run parallel rate
// engine (internal/solver): worker bodies handed to pool.run may write
// only state owned by their shard. The pool's bit-reproducibility
// argument — parallel runs compute exactly the serial floats and commit
// them in index order — holds precisely because a worker's writes are
// confined to slots indexed through its [lo, hi) range (or its worker
// id), and everything shared is reduced by the caller afterwards.
//
// Inside a function literal passed to (*pool).run, the analyzer flags:
//
//   - writes to captured variables (s.stats.RateCalcs += ... is the
//     classic lost-update race);
//   - writes through captured slices whose index is not derived from
//     the shard parameters (worker/lo/hi or loop variables bound by
//     them);
//   - writes through captured maps (concurrent map writes fault).
//
// Separately, for plain `go` statements in the package it flags
// captured variables that are reassigned after the goroutine launches —
// the capture-then-mutate hazard that makes a worker observe a torn or
// future value.
//
// The analysis is intraprocedural: methods called from a worker (the
// compute* shard kernels) are the audited shard API, not re-verified
// here.
var Sharddiscipline = &Analyzer{
	Name: "sharddiscipline",
	Doc:  "in internal/solver pool workers, flag writes outside shard-owned slots and captured-variable hazards",
	Run:  runSharddiscipline,
}

func runSharddiscipline(pass *Pass) error {
	if !pathHasSuffixAny(pass.Path, []string{"internal/solver"}) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if lit := poolRunWorker(pass, e); lit != nil {
					checkWorkerBody(pass, lit)
				}
			case *ast.FuncDecl:
				if e.Body != nil {
					checkGoCaptures(pass, e.Body)
				}
			}
			return true
		})
	}
	return nil
}

// poolRunWorker returns the worker function literal of a
// (*pool).run(total, fn) call, or nil.
func poolRunWorker(pass *Pass, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "run" || len(call.Args) != 2 {
		return nil
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "pool" {
		return nil
	}
	lit, _ := call.Args[1].(*ast.FuncLit)
	return lit
}

// checkWorkerBody enforces shard-local writes inside one pool worker.
func checkWorkerBody(pass *Pass, lit *ast.FuncLit) {
	derived := shardDerivedVars(pass, lit)
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
	}
	exprDerived := func(e ast.Expr) bool { return shardDerivedExpr(pass, e, derived) }

	checkWrite := func(lhs ast.Expr, pos token.Pos) {
		switch t := lhs.(type) {
		case *ast.IndexExpr:
			root := rootIdent(t.X)
			if root == nil || local(pass.Info.ObjectOf(root)) {
				return
			}
			if bt := pass.Info.TypeOf(t.X); bt != nil {
				if _, isMap := bt.Underlying().(*types.Map); isMap {
					pass.Reportf(pos, "write to captured map %s inside pool worker: concurrent map writes fault; reduce in the caller", types.ExprString(t.X))
					return
				}
			}
			if !exprDerived(t.Index) {
				pass.Reportf(pos, "write to %s[%s] inside pool worker: index is not derived from the shard range (worker/lo/hi); workers may only write shard-owned slots", types.ExprString(t.X), types.ExprString(t.Index))
			}
		case *ast.Ident:
			if t.Name == "_" {
				return
			}
			if obj := pass.Info.ObjectOf(t); obj != nil && !local(obj) {
				pass.Reportf(pos, "write to captured variable %s inside pool worker: shared state must be reduced by the caller after run returns", t.Name)
			}
		case *ast.SelectorExpr:
			root := rootIdent(t)
			if root != nil && !local(pass.Info.ObjectOf(root)) {
				pass.Reportf(pos, "write to captured state %s inside pool worker: shared state must be reduced by the caller after run returns", types.ExprString(t))
			}
		case *ast.StarExpr:
			pass.Reportf(pos, "write through pointer %s inside pool worker: aliasing defeats shard ownership", types.ExprString(t.X))
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(st.X, st.X.Pos())
		}
		return true
	})
}

// shardDerivedVars computes the set of variables whose values are
// derived from the worker's shard parameters: the parameters
// themselves, plus variables assigned exclusively from derived
// expressions (two passes reach the fixed point for loop-nest shapes).
func shardDerivedVars(pass *Pass, lit *ast.FuncLit) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.ObjectOf(name); obj != nil {
				derived[obj] = true
			}
		}
	}
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, isId := lhs.(*ast.Ident)
				if !isId || id.Name == "_" {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if shardDerivedExpr(pass, st.Rhs[i], derived) {
					derived[obj] = true
				} else {
					delete(derived, obj)
				}
			}
			return true
		})
	}
	return derived
}

// shardDerivedExpr reports whether every variable e reads is
// shard-derived and e applies only arithmetic to them — i.e. the value
// indexes inside the worker's shard by construction. Calls, selector
// loads and indexing produce data, not shard indices, so they are not
// derived.
func shardDerivedExpr(pass *Pass, e ast.Expr, derived map[types.Object]bool) bool {
	switch t := e.(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(t)
		if obj == nil {
			return false
		}
		if _, isVar := obj.(*types.Var); isVar {
			return derived[obj]
		}
		_, isConst := obj.(*types.Const)
		return isConst
	case *ast.BasicLit:
		return false // a fixed index is shared across every worker
	case *ast.BinaryExpr:
		switch t.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
			// Arithmetic is derived as soon as one operand carries the
			// shard range and the rest are derived or constant.
			xd, yd := shardDerivedExpr(pass, t.X, derived), shardDerivedExpr(pass, t.Y, derived)
			xc, yc := exprIsConstant(pass, t.X), exprIsConstant(pass, t.Y)
			return (xd && (yd || yc)) || (yd && xc)
		}
		return false
	case *ast.ParenExpr:
		return shardDerivedExpr(pass, t.X, derived)
	}
	return false
}

func exprIsConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// rootIdent walks selector/index chains to the base identifier
// (s.rateFw -> s); nil when the base is a call or other expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// checkGoCaptures flags locals captured by a `go func(){...}()` literal
// and reassigned later in the enclosing body: the goroutine races with
// the later write.
func checkGoCaptures(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		captured := map[types.Object]*ast.Ident{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, isId := m.(*ast.Ident)
			if !isId {
				return true
			}
			obj := pass.Info.Uses[id]
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() {
				return true
			}
			// Captured: declared in the enclosing function (inside body,
			// before the literal), not inside the literal itself.
			if v.Pos() >= body.Pos() && v.Pos() < lit.Pos() {
				captured[obj] = id
			}
			return true
		})
		if len(captured) == 0 {
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			switch st := m.(type) {
			case *ast.AssignStmt:
				if st.Pos() <= gs.End() {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, isId := lhs.(*ast.Ident); isId {
						if obj := pass.Info.ObjectOf(id); obj != nil && captured[obj] != nil {
							pass.Reportf(st.Pos(), "variable %s is captured by a goroutine launched at %s and reassigned here: the worker races with this write", id.Name, pass.Fset.Position(gs.Pos()))
						}
					}
				}
			case *ast.IncDecStmt:
				if st.Pos() <= gs.End() {
					return true
				}
				if id, isId := st.X.(*ast.Ident); isId {
					if obj := pass.Info.ObjectOf(id); obj != nil && captured[obj] != nil {
						pass.Reportf(st.Pos(), "variable %s is captured by a goroutine launched at %s and mutated here: the worker races with this write", id.Name, pass.Fset.Position(gs.Pos()))
					}
				}
			}
			return true
		})
		return true
	})
}
