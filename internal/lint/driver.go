package lint

import (
	"fmt"
	"io"
)

// Run loads the packages matching patterns (rooted at dir, with the
// given build tags), applies the analyzers, and prints one
// "file:line:col: analyzer: message" line per finding to w. It returns
// the number of findings.
func Run(dir, tags string, analyzers []*Analyzer, patterns []string, w io.Writer) (int, error) {
	pkgs, err := Load(dir, tags, patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		total += len(diags)
	}
	return total, nil
}
