package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
)

// Run loads the packages matching patterns (rooted at dir, with the
// given build tags), applies the analyzers module-wide in dependency
// order — threading one fact store through every package, so
// cross-package passes see their upstream facts — and prints one
// "file:line:col: analyzer: message" line per finding to w. It returns
// the number of findings.
func Run(dir, tags string, analyzers []*Analyzer, patterns []string, w io.Writer) (int, error) {
	diags, fset, _, err := runModule(dir, tags, analyzers, patterns)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags), nil
}

// JSONDiagnostic is the machine-readable form of one finding, emitted
// by `semsimlint -json` and consumed by the CI annotation step. File is
// relative to the module root when possible.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// RunJSON is Run with machine-readable output: a JSON array of
// findings (always an array, "[]" when clean) followed by a newline.
func RunJSON(dir, tags string, analyzers []*Analyzer, patterns []string, w io.Writer) (int, error) {
	diags, fset, _, err := runModule(dir, tags, analyzers, patterns)
	if err != nil {
		return 0, err
	}
	abs, _ := filepath.Abs(dir)
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if abs != "" {
			if rel, err := filepath.Rel(abs, file); err == nil && !filepath.IsAbs(rel) {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, JSONDiagnostic{
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return len(diags), err
	}
	return len(diags), nil
}

// runModule loads and analyzes the module once and returns the findings
// of every package, in package order, plus the session's fact store.
// Load returns packages in dependency order, so by the time a package
// runs, the facts of everything it imports are already in the store.
func runModule(dir, tags string, analyzers []*Analyzer, patterns []string) ([]Diagnostic, *token.FileSet, *FactStore, error) {
	pkgs, err := Load(dir, tags, patterns...)
	if err != nil {
		return nil, nil, nil, err
	}
	store := NewFactStore()
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path, store)
		if err != nil {
			return nil, nil, nil, err
		}
		all = append(all, diags...)
		fset = pkg.Fset
	}
	return all, fset, store, nil
}
