package lint

import "testing"

func TestObsdiscipline(t *testing.T) {
	RunFixture(t, Obsdiscipline, "obsdiscipline/internal/solver")
}

func TestObsdisciplineOnlyFiresInHotPackages(t *testing.T) {
	RunFixture(t, Obsdiscipline, "obsdiscipline/a")
}

func TestObsdisciplineCoversJobs(t *testing.T) {
	RunFixture(t, Obsdiscipline, "obsdiscipline/internal/jobs")
}

func TestObsdisciplinePublishPaths(t *testing.T) {
	RunFixture(t, Obsdiscipline, "obsdiscipline/publish")
}
