package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detrand guards the determinism contract: Monte Carlo runs must be
// bit-reproducible across runs and platforms for a fixed seed (the
// paper's error figures average nine fixed seeds, and the parallel rate
// engine's tests compare trajectories bit-for-bit). Three things break
// that silently:
//
//   - math/rand (and math/rand/v2): global, lockable, version-drifting
//     generator state. All randomness flows through internal/rng.
//   - time-seeded randomness (time.Now().UnixNano() and friends as
//     integer seeds): irreproducible by construction.
//   - ranging over a map in a determinism-critical package when the
//     loop body is order-sensitive: Go randomizes map iteration order,
//     so any order-dependent effect (appends, returns, non-commutative
//     accumulation) diverges between runs.
//
// Order-insensitive map loops — set/map writes, commutative
// accumulators (+=, counters), guarded max/min updates, and the
// collect-then-sort idiom (append keys, sort, iterate the slice) — are
// allowed.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand, time-seeded randomness, and order-sensitive map iteration in simulator packages (use internal/rng)",
	Run:  runDetrand,
}

// detrandCorePkgs are the determinism-critical package path suffixes:
// everything whose floating-point trajectory feeds simulator results.
var detrandCorePkgs = []string{
	"internal/solver",
	"internal/circuit",
	"internal/master",
	"internal/cotunnel",
	"internal/super",
	"internal/orthodox",
	"internal/logicnet",
	"internal/numeric",
	"internal/sweep",
	"internal/spicemodel",
}

func pathHasSuffixAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func runDetrand(pass *Pass) error {
	rngPkg := pathHasSuffixAny(pass.Path, []string{"internal/rng"})
	core := pathHasSuffixAny(pass.Path, detrandCorePkgs)
	for _, f := range pass.Files {
		if !rngPkg {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "import of %s: all simulator randomness must flow through internal/rng for reproducibility", p)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkTimeSeed(pass, call)
			}
			return true
		})
		if core {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkMapRanges(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkTimeSeed flags time.Now().UnixNano() and the other integer
// projections of wall time: in a deterministic simulator the only use
// for them is seeding, which must come from configuration instead.
func checkTimeSeed(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Unix", "UnixNano", "UnixMilli", "UnixMicro":
	default:
		return
	}
	inner, ok := sel.X.(*ast.CallExpr)
	if !ok {
		return
	}
	innerSel, ok := inner.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[innerSel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if obj.Pkg().Path() == "time" && obj.Name() == "Now" {
		pass.Reportf(call.Pos(), "time-seeded value time.Now().%s(): seeds must be explicit configuration (Options.Seed), not wall time", sel.Sel.Name)
	}
}

// checkMapRanges walks one function body looking for order-sensitive
// map iteration. stmts after a range statement (within the same body)
// are consulted for the collect-then-sort exemption.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if bad, pos, why := orderSensitive(pass, rs, body); bad {
			pass.Reportf(pos, "map iteration order feeds simulator state (%s); iterate a sorted slice of keys or make the body order-insensitive", why)
		}
		return true
	})
}

// orderSensitive reports whether the body of map-range rs has an
// order-dependent effect, along with the offending position and a short
// reason. enclosing is the function body containing rs, used for the
// sorted-afterwards exemption.
func orderSensitive(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) (bad bool, pos token.Pos, why string) {
	flag := func(p token.Pos, reason string) {
		if !bad {
			bad, pos, why = true, p, reason
		}
	}
	var checkStmt func(s ast.Stmt)
	checkList := func(list []ast.Stmt) {
		for _, s := range list {
			checkStmt(s)
		}
	}
	checkStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
				return // compound ops (+=, -=, *=, ...) commute across iterations
			}
			for i, lhs := range st.Lhs {
				if ok, reason := orderInsensitiveAssign(pass, rs, enclosing, st, i, lhs); !ok {
					flag(lhs.Pos(), reason)
				}
			}
		case *ast.IncDecStmt:
			// x++ / x-- commute.
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return // set subtraction commutes
			}
			flag(st.Pos(), "call with potential side effects inside map range")
		case *ast.ReturnStmt:
			flag(st.Pos(), "return inside map range picks an arbitrary element")
		case *ast.BranchStmt, *ast.DeclStmt, *ast.EmptyStmt:
		case *ast.BlockStmt:
			checkList(st.List)
		case *ast.IfStmt:
			checkStmt(st.Body)
			if st.Else != nil {
				checkStmt(st.Else)
			}
		case *ast.ForStmt:
			checkStmt(st.Body)
		case *ast.RangeStmt:
			checkStmt(st.Body)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				checkList(c.(*ast.CaseClause).Body)
			}
		default:
			flag(s.Pos(), "statement kind not provably order-insensitive")
		}
	}
	checkStmt(rs.Body)
	return bad, pos, why
}

// orderInsensitiveAssign decides whether one plain assignment inside a
// map range is order-insensitive, returning a reason when it is not.
func orderInsensitiveAssign(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt, st *ast.AssignStmt, i int, lhs ast.Expr) (ok bool, reason string) {
	if id, isIdent := lhs.(*ast.Ident); isIdent {
		if id.Name == "_" {
			return true, ""
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true, ""
		}
		// Locals of the loop body (and the range variables themselves)
		// are per-iteration scratch.
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return true, ""
		}
		// x = append(x, ...) is allowed when x is sorted after the loop.
		if appendToSelf(st, i, lhs) {
			if sortedAfter(pass, rs, enclosing, obj) {
				return true, ""
			}
			return false, "append accumulates in map order without a subsequent sort"
		}
		// Guarded extremum update: if <cmp involving x> { x = ... }.
		if ifStmt := enclosingMaxMinGuard(pass, rs, st, obj); ifStmt {
			return true, ""
		}
		return false, "assignment to variable declared outside the loop"
	}
	if idx, isIdx := lhs.(*ast.IndexExpr); isIdx {
		if t := pass.Info.TypeOf(idx.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return true, "" // map/set insertion commutes (per-key)
			}
		}
		return false, "indexed write in map order"
	}
	// s.items = append(s.items, v): same accumulation hazard through a
	// selector target; no sorted-after exemption for shared state.
	if appendToSelf(st, i, lhs) {
		return false, "append accumulates in map order without a subsequent sort"
	}
	return false, "assignment target not provably order-insensitive"
}

// appendToSelf reports whether the i-th assignment is the
// x = append(x, ...) accumulation shape, for any expression x.
func appendToSelf(st *ast.AssignStmt, i int, lhs ast.Expr) bool {
	if len(st.Rhs) == 0 {
		return false
	}
	rhs := st.Rhs[0]
	if len(st.Rhs) > i {
		rhs = st.Rhs[i]
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	fid, ok := call.Fun.(*ast.Ident)
	if !ok || fid.Name != "append" || len(call.Args) == 0 {
		return false
	}
	return types.ExprString(call.Args[0]) == types.ExprString(lhs)
}

// sortedAfter reports whether obj is passed to a sort-like call in a
// statement after rs within the enclosing body — the canonical
// collect-keys-then-sort idiom.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		// Match on the full callee spelling so sort.Ints, slices.Sort
		// and local sortKeys helpers all qualify.
		if !strings.Contains(strings.ToLower(types.ExprString(call.Fun)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			root := arg
			if u, isU := root.(*ast.UnaryExpr); isU {
				root = u.X
			}
			if id, isId := root.(*ast.Ident); isId && pass.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// enclosingMaxMinGuard recognizes the running-extremum idiom
//
//	if v > max { max = v }
//
// which is order-insensitive: the assignment to obj must be the sole
// statement of an if whose condition is a </<=/>/>= comparison reading
// obj.
func enclosingMaxMinGuard(pass *Pass, rs *ast.RangeStmt, target *ast.AssignStmt, obj types.Object) bool {
	found := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		if len(ifStmt.Body.List) != 1 || ifStmt.Body.List[0] != target || ifStmt.Else != nil {
			return true
		}
		cmp, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cmp.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{cmp.X, cmp.Y} {
			if id, isId := side.(*ast.Ident); isId && pass.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
