package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// Statecover machine-checks the bit-identical-resume guarantee at its
// weakest point: a mutable field added to a snapshot-rooted struct that
// the checkpoint/restore pair silently forgets. A struct opts in with a
// doc-comment marker:
//
//	//statecover:root save=Checkpoint load=Restore   (method-pair root)
//	//statecover:root save=json                      (encoding/json root)
//
// For a method-pair root, every field must be accounted for: accessed
// on the save path (serialized), accessed on the load path (rebuilt —
// the path is the transitive same-package call closure of the load
// method, so a restore that ends in a full refresh covers everything
// the refresh rebuilds), or explicitly waived on the field with
//
//	//statecover:immutable <reason>   set at construction, never mutated
//	//statecover:derived <reason>     rebuilt or re-established elsewhere
//
// The reason is mandatory: the waiver is the audit trail for why a
// field may legitimately escape the snapshot. Unaccounted fields are
// diagnostics — every future field is born machine-checked.
//
// For a JSON root, a field is covered when encoding/json serializes it:
// unexported fields and json:"-" fields are diagnostics unless waived.
// Field types that are named structs must themselves be fully
// serialized; that property is computed per package and exported as a
// SerialFact on the type, so a root in one package (the jobs checkpoint
// envelope) sees through payload types of another (solver.Checkpoint,
// solver.Stats) without re-analyzing them.
var Statecover = &Analyzer{
	Name:      "statecover",
	Doc:       "every mutable field of a registered snapshot root must be serialized, rebuilt on restore, or carry a justified //statecover waiver",
	Run:       runStatecover,
	FactTypes: []Fact{(*SerialFact)(nil)},
}

// SerialFact records whether a package-level struct type is fully
// serialized by encoding/json: all fields exported and unskipped (or
// explicitly waived), recursively through named struct field types. It
// is exported for every exported struct type so downstream snapshot
// envelopes can validate their payload fields.
type SerialFact struct {
	Complete bool
	Reason   string // when !Complete, the offending field
}

// AFact marks SerialFact as a fact.
func (*SerialFact) AFact() {}

func (f *SerialFact) String() string {
	if f.Complete {
		return "json-complete"
	}
	return "json-incomplete: " + f.Reason
}

// rootSpec is one parsed //statecover:root marker.
type rootSpec struct {
	tn   *types.TypeName
	pos  token.Pos
	save string // method name, or "" for JSON roots
	load string // method name, or "" for JSON roots
	json bool
}

// fieldWaiver is one parsed //statecover:immutable|derived comment,
// attached to the struct field it annotates.
type fieldWaiver struct {
	kind   string // "immutable" or "derived"
	reason string
}

// stateCoverer carries the per-package analysis state.
type stateCoverer struct {
	pass    *Pass
	waived  map[*types.Var]*fieldWaiver
	decls   map[*types.Func]*ast.FuncDecl
	jsonMem map[*types.Named]*SerialFact
}

func runStatecover(pass *Pass) error {
	sc := &stateCoverer{
		pass:    pass,
		waived:  map[*types.Var]*fieldWaiver{},
		decls:   funcDecls(pass),
		jsonMem: map[*types.Named]*SerialFact{},
	}
	sc.collectWaivers()
	roots := snapshotRoots(pass)
	for _, r := range roots {
		if r.json {
			sc.checkJSONRoot(r)
		} else {
			sc.checkMethodRoot(r)
		}
	}
	// Export serialization facts for every exported package-level struct
	// type, so downstream packages can validate envelope payloads.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		fact := sc.structComplete(named)
		pass.ExportObjectFact(tn, &SerialFact{Complete: fact.Complete, Reason: fact.Reason})
	}
	return nil
}

// funcDecls maps the package's function objects to their declarations.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// snapshotRoots parses every //statecover:root marker in the package.
// Malformed markers are reported and skipped. Shared with resumepurity,
// which derives its purity roots from the same registrations.
func snapshotRoots(pass *Pass) []rootSpec {
	var roots []rootSpec
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				marker, ok := rootMarker(doc)
				if !ok {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				// Diagnostics anchor at the type name, not the marker
				// comment, so `// want` fixtures can assert them.
				pos := ts.Name.Pos()
				r, err := parseRootMarker(tn, pos, marker)
				if err != "" {
					pass.Reportf(pos, "%s", err)
					continue
				}
				if _, ok := tn.Type().Underlying().(*types.Struct); !ok {
					pass.Reportf(pos, "statecover:root marker on %s, which is not a struct type", tn.Name())
					continue
				}
				roots = append(roots, r)
			}
		}
	}
	return roots
}

// rootMarker extracts the argument text of a //statecover:root line
// from a doc comment (false when absent).
func rootMarker(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "statecover:root") {
			return strings.TrimSpace(strings.TrimPrefix(text, "statecover:root")), true
		}
	}
	return "", false
}

// parseRootMarker parses "save=X load=Y" or "save=json" marker args.
func parseRootMarker(tn *types.TypeName, pos token.Pos, args string) (rootSpec, string) {
	r := rootSpec{tn: tn, pos: pos}
	for _, kv := range strings.Fields(args) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || v == "" {
			return r, fmt.Sprintf("malformed statecover:root argument %q (want save=<Method> load=<Method> or save=json)", kv)
		}
		switch k {
		case "save":
			r.save = v
		case "load":
			r.load = v
		default:
			return r, fmt.Sprintf("unknown statecover:root key %q (want save/load)", k)
		}
	}
	if r.save == "json" {
		r.json = true
		if r.load != "" {
			return r, "statecover:root save=json takes no load method (encoding/json is the round trip)"
		}
		return r, ""
	}
	if r.save == "" || r.load == "" {
		return r, "statecover:root needs both save=<Method> and load=<Method> (or save=json)"
	}
	return r, ""
}

// collectWaivers walks every struct declaration, parses the
// //statecover:immutable|derived field comments, and validates them
// (known kind, mandatory reason). Reported problems anchor at the field
// so fixtures can assert them.
func (sc *stateCoverer) collectWaivers() {
	for _, f := range sc.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				w, bad := parseFieldWaiver(field)
				if bad != "" {
					sc.pass.Reportf(field.Pos(), "%s", bad)
					// The waiver intent is clear even when malformed;
					// honor it so the field gets one diagnostic, not two.
					w = &fieldWaiver{kind: "invalid"}
				}
				if w == nil {
					continue
				}
				for _, name := range field.Names {
					if v, ok := sc.pass.Info.Defs[name].(*types.Var); ok {
						sc.waived[v] = w
					}
				}
			}
			return true
		})
	}
}

// parseFieldWaiver extracts a statecover waiver from a field's doc or
// line comment. The second result is a non-empty diagnostic message for
// malformed waivers.
func parseFieldWaiver(field *ast.Field) (*fieldWaiver, string) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "statecover:") {
				continue
			}
			rest := strings.TrimPrefix(text, "statecover:")
			kind, reason, _ := strings.Cut(rest, " ")
			switch kind {
			case "immutable", "derived":
			case "root":
				continue // type markers handled by snapshotRoots
			default:
				return nil, fmt.Sprintf("unknown statecover waiver %q (want //statecover:immutable <reason> or //statecover:derived <reason>)", kind)
			}
			reason = strings.TrimSpace(reason)
			if reason == "" {
				return nil, fmt.Sprintf("statecover:%s waiver without a reason: say why this field may escape the snapshot", kind)
			}
			return &fieldWaiver{kind: kind, reason: reason}, ""
		}
	}
	return nil, ""
}

// checkMethodRoot verifies one save/load method-pair root: every field
// of the struct must be accessed by the save path, accessed by the load
// path, or waived.
func (sc *stateCoverer) checkMethodRoot(r rootSpec) {
	named := r.tn.Type().(*types.Named)
	st := named.Underlying().(*types.Struct)
	saveFn := methodByName(named, r.save)
	loadFn := methodByName(named, r.load)
	if saveFn == nil {
		sc.pass.Reportf(r.pos, "statecover:root save method %s.%s does not exist", r.tn.Name(), r.save)
	}
	if loadFn == nil {
		sc.pass.Reportf(r.pos, "statecover:root load method %s.%s does not exist", r.tn.Name(), r.load)
	}
	if saveFn == nil || loadFn == nil {
		return
	}
	accessed := map[*types.Var]bool{}
	for _, entry := range []*types.Func{saveFn, loadFn} {
		for fn := range sc.reachable(entry) {
			sc.markFieldAccesses(fn, st, accessed)
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if accessed[field] || sc.waived[field] != nil {
			continue
		}
		sc.pass.Reportf(field.Pos(),
			"field %s of snapshot root %s is neither serialized by %s nor rebuilt by %s: a restored simulation would silently diverge; serialize it, rebuild it on restore, or waive with //statecover:immutable <reason> or //statecover:derived <reason>",
			field.Name(), r.tn.Name(), r.save, r.load)
	}
}

// methodByName finds a declared method (value or pointer receiver) on a
// named type.
func methodByName(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// reachable computes the same-package static call closure of entry:
// every function or method of this package transitively called from it.
// Calls through function values and interfaces are not resolved (the
// closure is a lower bound, which only makes the pass stricter).
func (sc *stateCoverer) reachable(entry *types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{entry: true}
	work := []*types.Func{entry}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		fd := sc.decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(sc.pass, call)
			if callee == nil || callee.Pkg() != sc.pass.Pkg || seen[callee] {
				return true
			}
			seen[callee] = true
			work = append(work, callee)
			return true
		})
	}
	return seen
}

// calleeFunc resolves a call expression to its static callee function
// object (nil for builtins, conversions, and dynamic calls).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// markFieldAccesses records which fields of st the body of fn touches,
// through any expression whose selection resolves to one of st's field
// objects.
func (sc *stateCoverer) markFieldAccesses(fn *types.Func, st *types.Struct, accessed map[*types.Var]bool) {
	fd := sc.decls[fn]
	if fd == nil {
		return
	}
	fields := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := sc.pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if v, ok := s.Obj().(*types.Var); ok && fields[v] {
			accessed[v] = true
		}
		return true
	})
}

// checkJSONRoot verifies one encoding/json root: every field must be
// visible to the encoder (exported, not json:"-") or waived, and field
// types that are named structs must themselves be fully serialized.
func (sc *stateCoverer) checkJSONRoot(r rootSpec) {
	st := r.tn.Type().Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if sc.waived[field] != nil {
			continue
		}
		if !field.Exported() {
			sc.pass.Reportf(field.Pos(),
				"unexported field %s of JSON snapshot root %s is invisible to encoding/json and will be lost on resume; export it or waive with //statecover:immutable <reason> or //statecover:derived <reason>",
				field.Name(), r.tn.Name())
			continue
		}
		if jsonSkipped(st.Tag(i)) {
			sc.pass.Reportf(field.Pos(),
				"field %s of JSON snapshot root %s is excluded by its json:\"-\" tag and will be lost on resume; include it or waive with //statecover:immutable <reason> or //statecover:derived <reason>",
				field.Name(), r.tn.Name())
			continue
		}
		if named := payloadStruct(field.Type()); named != nil {
			if fact := sc.structComplete(named); !fact.Complete {
				sc.pass.Reportf(field.Pos(),
					"field %s of JSON snapshot root %s has type %s, which is not fully serialized (%s)",
					field.Name(), r.tn.Name(), named.Obj().Name(), fact.Reason)
			}
		}
	}
}

// jsonSkipped reports whether a struct tag excludes the field from
// encoding/json.
func jsonSkipped(tag string) bool {
	name, _, _ := strings.Cut(reflect.StructTag(tag).Get("json"), ",")
	return name == "-"
}

// payloadStruct unwraps pointers, slices, arrays and map values down to
// a named struct type (nil when the element is not one).
func payloadStruct(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			return nil
		default:
			return nil
		}
	}
}

// structComplete decides whether a named struct type is fully
// serialized by encoding/json. Local types are analyzed structurally
// (waived fields count as accounted); types of other packages are
// resolved through their SerialFact — absent facts (standard library,
// unanalyzed code) are assumed complete, since the pass cannot prove
// otherwise.
func (sc *stateCoverer) structComplete(named *types.Named) *SerialFact {
	tn := named.Obj()
	if tn.Pkg() != sc.pass.Pkg {
		var fact SerialFact
		if sc.pass.ImportObjectFact(tn, &fact) {
			return &fact
		}
		return &SerialFact{Complete: true}
	}
	if fact, ok := sc.jsonMem[named]; ok {
		return fact
	}
	// Break recursion on self-referential types: a cycle is complete
	// unless some concrete field proves otherwise.
	fact := &SerialFact{Complete: true}
	sc.jsonMem[named] = fact
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return fact
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if sc.waived[field] != nil {
			continue
		}
		if !field.Exported() {
			*fact = SerialFact{Reason: fmt.Sprintf("field %s.%s is unexported and carries no statecover waiver", named.Obj().Name(), field.Name())}
			return fact
		}
		if jsonSkipped(st.Tag(i)) {
			*fact = SerialFact{Reason: fmt.Sprintf("field %s.%s is excluded by json:\"-\" and carries no statecover waiver", named.Obj().Name(), field.Name())}
			return fact
		}
		if inner := payloadStruct(field.Type()); inner != nil && inner != named {
			if innerFact := sc.structComplete(inner); !innerFact.Complete {
				*fact = SerialFact{Reason: fmt.Sprintf("field %s.%s: %s", named.Obj().Name(), field.Name(), innerFact.Reason)}
				return fact
			}
		}
	}
	return fact
}
