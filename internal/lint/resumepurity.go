package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Resumepurity guards the other half of the bit-identical-resume
// guarantee: the code that writes, reads and replays snapshots must be
// deterministic. A checkpoint/restore pair that consults wall-clock
// time, math/rand, mutable global state, or map iteration order
// produces resumes that diverge from the uninterrupted run in ways no
// SIGKILL test reliably catches.
//
// Purity roots are the save/load methods of every //statecover:root
// registration plus any function marked //semsim:resumepure in its doc
// comment. From each root, the pass walks the same-package static call
// closure and reports, at the offending line:
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - any use of math/rand or math/rand/v2 (internal/rng state travels
//     inside the snapshot instead);
//   - reads or writes of mutable package-level state — a global that is
//     assigned outside its declaration or init, has its address taken,
//     or contains sync/atomic machinery;
//   - ranging over a map where the loop body is order-sensitive (the
//     same analysis detrand applies to core packages).
//
// The reach is cross-package: for every package, the pass computes a
// purity summary of each package-level function — including impurity
// inherited from its own callees — and exports it as a PurityFact, so a
// restore path in internal/solver that calls into internal/circuit or
// internal/rng sees through the boundary without whole-program
// analysis. Calls into internal/obs and internal/invariant are exempt
// by design: observability and debug invariants are passive (proven
// non-perturbing by the obs determinism tests) and may read clocks.
//
// A finding is waived by a same-line `//resumepure:ok <reason>` comment
// with a mandatory reason, mirroring //hotalloc:ok.
var Resumepurity = &Analyzer{
	Name:      "resumepurity",
	Doc:       "checkpoint/restore/replay paths must not read wall clocks, math/rand, mutable globals, or order-sensitive map ranges (cross-package via facts)",
	Run:       runResumepurity,
	FactTypes: []Fact{(*PurityFact)(nil), (*GlobalFact)(nil)},
}

// PurityFact summarizes a function for downstream packages: Impure
// functions poison any resume path that calls them. Only impure
// functions carry a fact; absence means pure (or out of scope).
type PurityFact struct {
	Reason string // first violation, with its source position
}

// AFact marks PurityFact as a fact.
func (*PurityFact) AFact() {}

func (f *PurityFact) String() string { return "resume-impure: " + f.Reason }

// GlobalFact marks an exported package-level variable as mutable, so
// reads of it from another package's resume path are flagged.
type GlobalFact struct {
	Mutable bool
}

// AFact marks GlobalFact as a fact.
func (*GlobalFact) AFact() {}

func (f *GlobalFact) String() string {
	if f.Mutable {
		return "mutable-global"
	}
	return "immutable-global"
}

// resumepurityExemptPkgs are package path suffixes whose code may
// legitimately read clocks and globals on any path: observability and
// debug-invariant layers are passive by proven construction. They are
// skipped entirely — they export no purity facts, and absence of a fact
// means pure.
var resumepurityExemptPkgs = []string{"internal/obs", "internal/invariant"}

// resumeViolation is one determinism hazard at a source position.
type resumeViolation struct {
	pos token.Pos
	msg string
}

func runResumepurity(pass *Pass) error {
	if pathHasSuffixAny(pass.Path, resumepurityExemptPkgs) {
		return nil
	}
	decls := funcDecls(pass)
	mutables := mutableGlobals(pass)
	// Export mutability facts for exported globals so other packages'
	// resume paths can be checked against them.
	for v := range mutables {
		if v.Exported() {
			pass.ExportObjectFact(v, &GlobalFact{Mutable: true})
		}
	}
	waived := resumepureWaivers(pass)

	// Direct violations per function, independent of reachability: they
	// feed both the fact computation (export for downstream packages)
	// and the diagnostics (reported only on root-reachable functions).
	direct := map[*types.Func][]resumeViolation{}
	for fn, fd := range decls {
		direct[fn] = resumeViolations(pass, fd, mutables, waived)
	}

	// Propagate impurity through the local call graph to a fixpoint, so
	// the exported facts summarize whole call chains.
	impure := map[*types.Func]string{}
	for fn, vs := range direct {
		if len(vs) > 0 {
			impure[fn] = fmt.Sprintf("%s at %s", vs[0].msg, pass.Fset.Position(vs[0].pos))
		}
	}
	// Iterate functions in source order so the fixpoint (and with it the
	// reason chains that end up in exported facts) is deterministic.
	ordered := make([]*types.Func, 0, len(decls))
	for fn := range decls {
		ordered = append(ordered, fn)
	}
	sort.Slice(ordered, func(i, j int) bool { return decls[ordered[i]].Pos() < decls[ordered[j]].Pos() })
	for changed := true; changed; {
		changed = false
		for _, fn := range ordered {
			fd := decls[fn]
			if _, done := impure[fn]; done {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if reason := calleeImpurity(pass, call, impure); reason != "" {
					if waived[pass.Fset.Position(call.Pos()).Line] {
						return true
					}
					impure[fn] = trimReason(fmt.Sprintf("calls %s: %s", resumeCalleeName(pass, call), reason))
					changed = true
					return false
				}
				return true
			})
		}
	}
	for fn, reason := range impure {
		pass.ExportObjectFact(fn, &PurityFact{Reason: trimReason(reason)})
	}

	// Diagnostics: walk the closure of every purity root and report the
	// direct violations (and impure cross-package calls) it reaches.
	reported := map[token.Pos]bool{}
	for _, root := range purityRoots(pass, decls) {
		for fn := range reachableFuncs(pass, decls, root) {
			for _, v := range direct[fn] {
				if reported[v.pos] {
					continue
				}
				reported[v.pos] = true
				pass.Reportf(v.pos, "%s on the checkpoint/restore/replay path: resumed runs would diverge from uninterrupted ones (waive with //resumepure:ok <reason>)", v.msg)
			}
		}
	}
	return nil
}

// purityRoots collects the functions whose call closure must stay
// deterministic: statecover save/load methods and //semsim:resumepure
// marked functions.
func purityRoots(pass *Pass, decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	var roots []*types.Func
	for _, r := range snapshotRoots(pass) {
		if r.json {
			continue
		}
		named := r.tn.Type().(*types.Named)
		for _, name := range []string{r.save, r.load} {
			if fn := methodByName(named, name); fn != nil {
				roots = append(roots, fn)
			}
		}
	}
	for fn, fd := range decls {
		if fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "semsim:resumepure" {
				roots = append(roots, fn)
				break
			}
		}
	}
	return roots
}

// reachableFuncs computes the same-package static call closure of
// entry (the statecover reachability, shared here).
func reachableFuncs(pass *Pass, decls map[*types.Func]*ast.FuncDecl, entry *types.Func) map[*types.Func]bool {
	sc := &stateCoverer{pass: pass, decls: decls}
	return sc.reachable(entry)
}

// resumeViolations walks one function body and collects its direct
// determinism hazards, honoring same-line waivers. Cross-package calls
// to functions with an impure PurityFact count as direct violations at
// the call site — that is where the fact engine stitches packages
// together.
func resumeViolations(pass *Pass, fd *ast.FuncDecl, mutables map[*types.Var]bool, waived map[int]bool) []resumeViolation {
	var out []resumeViolation
	add := func(pos token.Pos, format string, args ...any) {
		if waived[pass.Fset.Position(pos).Line] {
			return
		}
		out = append(out, resumeViolation{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if name := wallClockCall(pass, e); name != "" {
				add(e.Pos(), "wall-clock read time.%s", name)
			}
			if callee := calleeFunc(pass, e); callee != nil && callee.Pkg() != nil && callee.Pkg() != pass.Pkg {
				var fact PurityFact
				if pass.ImportObjectFact(callee, &fact) {
					add(e.Pos(), "call to %s, which is not resume-pure (%s)", resumeCalleeName(pass, e), fact.Reason)
				}
			}
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p == "math/rand" || p == "math/rand/v2" {
				add(e.Pos(), "use of %s.%s", p, obj.Name())
				return true
			}
			if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
				if v.Pkg() == pass.Pkg {
					if mutables[v] {
						add(e.Pos(), "access to mutable global %s", v.Name())
					}
				} else if !pathHasSuffixAny(normalizePath(v.Pkg().Path()), resumepurityExemptPkgs) {
					var fact GlobalFact
					if pass.ImportObjectFact(v, &fact) && fact.Mutable {
						add(e.Pos(), "access to mutable global %s.%s", v.Pkg().Name(), v.Name())
					}
				}
			}
		case *ast.RangeStmt:
			t := pass.Info.TypeOf(e.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if bad, pos, why := orderSensitive(pass, e, fd.Body); bad {
				add(pos, "map iteration order feeds restored state (%s)", why)
			}
		}
		return true
	})
	return out
}

// wallClockCall reports the time-package function name when the call
// reads the wall clock ("" otherwise).
func wallClockCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return ""
	}
	switch obj.Name() {
	case "Now", "Since", "Until":
		return obj.Name()
	}
	return ""
}

// calleeImpurity resolves a call's static callee and returns its
// impurity reason: same-package callees from the local fixpoint map,
// cross-package callees from their PurityFact ("" when pure or
// unresolvable).
func calleeImpurity(pass *Pass, call *ast.CallExpr, impure map[*types.Func]string) string {
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	if callee.Pkg() == pass.Pkg {
		return impure[callee]
	}
	var fact PurityFact
	if pass.ImportObjectFact(callee, &fact) {
		return fact.Reason
	}
	return ""
}

// resumeCalleeName renders a call target for diagnostics.
func resumeCalleeName(pass *Pass, call *ast.CallExpr) string {
	if callee := calleeFunc(pass, call); callee != nil {
		if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
			if name := recvTypeName(recv.Type()); name != "" {
				return fmt.Sprintf("%s.%s.%s", callee.Pkg().Name(), name, callee.Name())
			}
		}
		return fmt.Sprintf("%s.%s", callee.Pkg().Name(), callee.Name())
	}
	return types.ExprString(call.Fun)
}

// trimReason bounds reason-chain growth through deep call stacks.
func trimReason(reason string) string {
	const max = 300
	if len(reason) > max {
		return reason[:max] + "..."
	}
	return reason
}

// isPackageLevel reports whether a variable is declared at package
// scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// mutableGlobals identifies the package-level variables whose value can
// change after initialization: assigned (or address-taken, or
// incremented) outside their declaration and outside init functions, or
// containing sync/atomic machinery that mutates through method calls.
func mutableGlobals(pass *Pass) map[*types.Var]bool {
	mutable := map[*types.Var]bool{}
	globals := map[*types.Var]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if v, ok := scope.Lookup(name).(*types.Var); ok {
			globals[v] = true
			if typeContainsSync(v.Type(), map[types.Type]bool{}) {
				mutable[v] = true
			}
		}
	}
	markRoot := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				if v, ok := pass.Info.Uses[x].(*types.Var); ok && globals[v] {
					mutable[v] = true
				}
				return
			default:
				return
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// init runs exactly once, before any resume path can observe
			// the variable: initialization-time writes are not mutation.
			isInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.AssignStmt:
					if isInit {
						return true
					}
					for _, lhs := range e.Lhs {
						markRoot(lhs)
					}
				case *ast.IncDecStmt:
					if isInit {
						return true
					}
					markRoot(e.X)
				case *ast.UnaryExpr:
					if e.Op == token.AND {
						markRoot(e.X)
					}
				}
				return true
			})
		}
	}
	return mutable
}

// typeContainsSync reports whether a type transitively embeds sync or
// sync/atomic state (mutexes, sync.Map, atomic counters), which mutates
// through method calls no assignment scan can see.
func typeContainsSync(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil {
			if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
				return true
			}
		}
		return typeContainsSync(u.Underlying(), seen)
	case *types.Pointer:
		return typeContainsSync(u.Elem(), seen)
	case *types.Slice:
		return typeContainsSync(u.Elem(), seen)
	case *types.Array:
		return typeContainsSync(u.Elem(), seen)
	case *types.Map:
		return typeContainsSync(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsSync(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// resumepureWaivers collects the lines carrying a `//resumepure:ok
// <reason>` comment; a waiver without a reason is itself a diagnostic.
func resumepureWaivers(pass *Pass) map[int]bool {
	waived := map[int]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "resumepure:ok") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, "resumepure:ok"))
				if reason == "" {
					pass.Reportf(c.Pos(), "resumepure:ok waiver without a reason: say why this nondeterminism cannot perturb a resumed trajectory")
					continue
				}
				waived[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return waived
}
