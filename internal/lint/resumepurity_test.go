package lint

import "testing"

func TestResumepurity(t *testing.T) {
	RunFixtureModule(t, Resumepurity, "resumepurity/clocks", "resumepurity/restore")
}
