package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Physerr flags discarded errors from the numerical and parsing APIs of
// the module. A swallowed ErrNotPositiveDefinite from the Cholesky
// factorization, a dropped netlist parse error, or an ignored solver
// error does not crash — it silently simulates the wrong circuit, which
// is the worst failure mode a physics code has. Errors from module
// packages must be handled or explicitly propagated, never assigned to
// blank or dropped on the floor.
//
// The analyzer flags, outside tests:
//
//   - a call used as a statement (including go/defer) whose callee
//     returns an error and lives in a module package;
//   - an assignment that binds such a call's error result to _.
//
// Third-party-free by design, the module boundary is the watched set:
// fmt.Println and friends stay un-flagged.
var Physerr = &Analyzer{
	Name: "physerr",
	Doc:  "flag discarded errors from matrix, netlist, solver and other module APIs",
	Run:  runPhyserr,
}

// physerrWatchedFragments extends the module-path rule so fixture
// packages can model the layout.
var physerrWatchedFragments = []string{
	"internal/matrix",
	"internal/netlist",
	"internal/solver",
	"internal/master",
	"internal/circuit",
	"internal/spicemodel",
	"internal/super",
	"internal/logicnet",
	"internal/bench",
	"internal/sweep",
}

func physerrWatched(path string) bool {
	if path == "semsim" || strings.HasPrefix(path, "semsim/") {
		return true
	}
	for _, frag := range physerrWatchedFragments {
		if path == frag || strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/") {
			return true
		}
	}
	return false
}

func runPhyserr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call)
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, st.Call)
			case *ast.DeferStmt:
				checkDroppedCall(pass, st.Call)
			case *ast.AssignStmt:
				checkBlankError(pass, st)
			}
			return true
		})
	}
	return nil
}

// errorResultIndices returns which results of a watched module call are
// errors; nil when the call is unwatched, a conversion, or error-free.
func errorResultIndices(pass *Pass, call *ast.CallExpr) []int {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	pkg := calleePackage(pass, call)
	if pkg == nil || !physerrWatched(normalizePath(pkg.Path())) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

// calleePackage resolves the package owning the called function, method
// or function-typed variable.
func calleePackage(pass *Pass, call *ast.CallExpr) *types.Package {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return obj.Pkg()
}

func checkDroppedCall(pass *Pass, call *ast.CallExpr) {
	if idx := errorResultIndices(pass, call); len(idx) > 0 {
		pass.Reportf(call.Pos(), "error result of %s is discarded: numerical and parsing failures must be handled, not dropped", calleeName(call))
	}
}

func checkBlankError(pass *Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	idx := errorResultIndices(pass, call)
	if len(idx) == 0 {
		return
	}
	for _, i := range idx {
		if i < len(st.Lhs) {
			if id, isId := st.Lhs[i].(*ast.Ident); isId && id.Name == "_" {
				pass.Reportf(id.Pos(), "error result of %s assigned to blank: handle or propagate it", calleeName(call))
			}
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
