package lint

import (
	"bytes"
	"testing"
)

// TestModuleIsLintClean dogfoods the whole suite over the module
// itself, in both build configurations: the tree must stay free of
// findings, since satellite policy is to fix code, not suppress
// diagnostics.
func TestModuleIsLintClean(t *testing.T) {
	for _, tags := range []string{"", "semsimdebug"} {
		var buf bytes.Buffer
		n, err := Run("../..", tags, All(), []string{"./..."}, &buf)
		if err != nil {
			t.Fatalf("tags %q: %v", tags, err)
		}
		if n != 0 {
			t.Errorf("tags %q: module has %d lint findings:\n%s", tags, n, buf.String())
		}
	}
}
