package lint

import (
	"bytes"
	"testing"
)

// TestModuleIsLintClean dogfoods the whole suite over the module
// itself, in both build configurations: the tree must stay free of
// findings, since satellite policy is to fix code, not suppress
// diagnostics.
func TestModuleIsLintClean(t *testing.T) {
	for _, tags := range []string{"", "semsimdebug"} {
		var buf bytes.Buffer
		n, err := Run("../..", tags, All(), []string{"./..."}, &buf)
		if err != nil {
			t.Fatalf("tags %q: %v", tags, err)
		}
		if n != 0 {
			t.Errorf("tags %q: module has %d lint findings:\n%s", tags, n, buf.String())
		}
	}
}

// TestModuleFactsExported proves the facts engine runs over the real
// module, not just the fixtures: a clean module run is indistinguishable
// from a run where no facts flowed, so this inspects the store a
// module-wide analysis leaves behind. The anchors are deliberately
// load-bearing: the solver checkpoint envelope must be JSON-complete
// (the jobs run file embeds it), the solver itself must NOT be (its
// live unexported state is exactly what Checkpoint exists to
// translate), a known wall-clock reader must carry a purity fact, and
// the snapshot codec of internal/rng must carry none.
func TestModuleFactsExported(t *testing.T) {
	_, _, store, err := runModule("../..", "", All(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}

	var sf SerialFact
	if !store.get("semsim/internal/solver", "Checkpoint", &sf) {
		t.Fatal("no SerialFact for solver.Checkpoint: statecover exported no module facts")
	}
	if !sf.Complete {
		t.Errorf("solver.Checkpoint must be fully serialized (the jobs envelope embeds it): %s", sf.Reason)
	}
	if !store.get("semsim/internal/solver", "Sim", &sf) {
		t.Fatal("no SerialFact for solver.Sim")
	}
	if sf.Complete {
		t.Error("solver.Sim reported JSON-complete; its unexported live state should make it incomplete")
	}

	var pf PurityFact
	if !store.get("semsim/internal/jobs", "Engine.Submit", &pf) {
		t.Error("no PurityFact for jobs.Engine.Submit (reads time.Now): resumepurity exported no module facts")
	}
	if store.get("semsim/internal/rng", "Source.MarshalBinary", &pf) {
		t.Errorf("rng.Source.MarshalBinary became resume-impure: %s", pf.Reason)
	}
	if store.get("semsim/internal/rng", "Source.UnmarshalBinary", &pf) {
		t.Errorf("rng.Source.UnmarshalBinary became resume-impure: %s", pf.Reason)
	}
}
