package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Obsdiscipline keeps the simulator hot path quiet. The inner Monte
// Carlo loop runs millions of events per second; a stray fmt.Printf or
// log.Printf left over from debugging serializes every worker on a
// global mutex, floods the terminal, and — worst — perturbs timing
// enough to mask the races the determinism tests exist to catch. All
// run-time reporting from hot packages flows through internal/obs
// (counters, the event journal, progress lines), which is asynchronous,
// allocation-free when disabled, and off by default.
//
// In the hot packages the pass flags:
//
//   - direct terminal printing: fmt.Print/Printf/Println, and
//     fmt.Fprint* when the writer is os.Stdout or os.Stderr;
//   - any use of the log and log/slog packages (flagged at the import,
//     so stored loggers cannot slip through);
//   - the print/println built-ins, which are debug leftovers by
//     definition.
//
// fmt.Sprintf, fmt.Errorf and fmt.Fprint* into buffers or files stay
// legal: formatting values and writing result artifacts are not
// terminal chatter. Packages outside the hot set (CLIs, bench, the
// experiment drivers) print freely.
//
// Inside internal/solver the pass additionally forbids calls to
// circuit.CinvRow: raw C^-1 row access in the event loop bypasses the
// potential engine, silently assumes the dense inverse exists (it does
// not on natively truncated builds), and loses the truncation
// error-bound accounting. Every per-event C^-1 walk belongs on
// circuit.Potentials.
//
// Independently of the hot set, the pass enforces the publish-path
// contract in EVERY package: a function marked with a
// `//semsim:publish` doc-comment line (the event bus's Publish and
// push, the jobs engine's per-task publish hooks) promises to never
// block on a subscriber. In such functions every channel send must be a
// case of a select statement that has a default clause — the only form
// Go guarantees cannot block. A bare `ch <- v`, or a send in a select
// without a default, is reported. The marker is the enforcement
// boundary: callees reachable from a publish path either carry the
// marker themselves or take no channels at all.
var Obsdiscipline = &Analyzer{
	Name: "obsdiscipline",
	Doc:  "forbid terminal printing and the log package in hot simulator packages, and blocking channel sends in //semsim:publish functions",
	Run:  runObsdiscipline,
}

// obsHotPkgs are the package path suffixes forming the simulator hot
// path: everything executed per event, per rate calculation or per
// sweep point. internal/obs itself is deliberately absent — it is the
// sanctioned output layer.
var obsHotPkgs = []string{
	"internal/solver",
	"internal/circuit",
	"internal/master",
	"internal/cotunnel",
	"internal/super",
	"internal/orthodox",
	"internal/numeric",
	"internal/sweep",
	"internal/jobs",
	"internal/noise",
}

func runObsdiscipline(pass *Pass) error {
	hot := pathHasSuffixAny(pass.Path, obsHotPkgs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && docHasMarker(fd, "semsim:publish") {
				checkPublishPath(pass, fd)
			}
		}
		if !hot {
			continue
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "log" || p == "log/slog" {
				pass.Reportf(imp.Pos(), "import of %s in hot simulator package: report through internal/obs instead", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkObsCall(pass, call)
			return true
		})
	}
	return nil
}

func checkObsCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "print" || id.Name == "println" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "%s built-in in hot simulator package: debug output must go through internal/obs", id.Name)
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if obj.Name() == "CinvRow" && strings.HasSuffix(obj.Pkg().Path(), "internal/circuit") &&
		pathHasSuffixAny(pass.Path, []string{"internal/solver"}) {
		pass.Reportf(call.Pos(), "circuit.CinvRow in internal/solver: per-event C^-1 access must go through the potential engine (circuit.Potentials)")
	}
	switch obj.Pkg().Path() {
	case "fmt":
		switch obj.Name() {
		case "Print", "Printf", "Println":
			pass.Reportf(call.Pos(), "fmt.%s in hot simulator package: report through internal/obs instead", obj.Name())
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && isStdStream(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "fmt.%s to a terminal stream in hot simulator package: report through internal/obs instead", obj.Name())
			}
		}
	case "log", "log/slog":
		pass.Reportf(call.Pos(), "%s.%s in hot simulator package: report through internal/obs instead", obj.Pkg().Name(), obj.Name())
	}
}

// docHasMarker reports whether the function's doc comment carries the
// given `//semsim:*` marker as a line of its own.
func docHasMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// checkPublishPath enforces the non-blocking contract of one
// `//semsim:publish` function: every channel send in its body
// (including nested function literals) must be a communication case of
// a select statement that also has a default clause.
func checkPublishPath(pass *Pass, fd *ast.FuncDecl) {
	// First pass: collect the sends that are legal because their select
	// has a default and therefore cannot block.
	nonblocking := map[*ast.SendStmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				nonblocking[send] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || nonblocking[send] {
			return true
		}
		pass.Reportf(send.Pos(), "blocking channel send in publish path %s: a //semsim:publish function may only send inside a select with a default case", fd.Name.Name)
		return true
	})
}

// isStdStream reports whether e resolves to os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}
