package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Obsdiscipline keeps the simulator hot path quiet. The inner Monte
// Carlo loop runs millions of events per second; a stray fmt.Printf or
// log.Printf left over from debugging serializes every worker on a
// global mutex, floods the terminal, and — worst — perturbs timing
// enough to mask the races the determinism tests exist to catch. All
// run-time reporting from hot packages flows through internal/obs
// (counters, the event journal, progress lines), which is asynchronous,
// allocation-free when disabled, and off by default.
//
// In the hot packages the pass flags:
//
//   - direct terminal printing: fmt.Print/Printf/Println, and
//     fmt.Fprint* when the writer is os.Stdout or os.Stderr;
//   - any use of the log and log/slog packages (flagged at the import,
//     so stored loggers cannot slip through);
//   - the print/println built-ins, which are debug leftovers by
//     definition.
//
// fmt.Sprintf, fmt.Errorf and fmt.Fprint* into buffers or files stay
// legal: formatting values and writing result artifacts are not
// terminal chatter. Packages outside the hot set (CLIs, bench, the
// experiment drivers) print freely.
//
// Inside internal/solver the pass additionally forbids calls to
// circuit.CinvRow: raw C^-1 row access in the event loop bypasses the
// potential engine, silently assumes the dense inverse exists (it does
// not on natively truncated builds), and loses the truncation
// error-bound accounting. Every per-event C^-1 walk belongs on
// circuit.Potentials.
var Obsdiscipline = &Analyzer{
	Name: "obsdiscipline",
	Doc:  "forbid terminal printing and the log package in hot simulator packages (report through internal/obs)",
	Run:  runObsdiscipline,
}

// obsHotPkgs are the package path suffixes forming the simulator hot
// path: everything executed per event, per rate calculation or per
// sweep point. internal/obs itself is deliberately absent — it is the
// sanctioned output layer.
var obsHotPkgs = []string{
	"internal/solver",
	"internal/circuit",
	"internal/master",
	"internal/cotunnel",
	"internal/super",
	"internal/orthodox",
	"internal/numeric",
	"internal/sweep",
}

func runObsdiscipline(pass *Pass) error {
	if !pathHasSuffixAny(pass.Path, obsHotPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "log" || p == "log/slog" {
				pass.Reportf(imp.Pos(), "import of %s in hot simulator package: report through internal/obs instead", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkObsCall(pass, call)
			return true
		})
	}
	return nil
}

func checkObsCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "print" || id.Name == "println" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "%s built-in in hot simulator package: debug output must go through internal/obs", id.Name)
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if obj.Name() == "CinvRow" && strings.HasSuffix(obj.Pkg().Path(), "internal/circuit") &&
		pathHasSuffixAny(pass.Path, []string{"internal/solver"}) {
		pass.Reportf(call.Pos(), "circuit.CinvRow in internal/solver: per-event C^-1 access must go through the potential engine (circuit.Potentials)")
	}
	switch obj.Pkg().Path() {
	case "fmt":
		switch obj.Name() {
		case "Print", "Printf", "Println":
			pass.Reportf(call.Pos(), "fmt.%s in hot simulator package: report through internal/obs instead", obj.Name())
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && isStdStream(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "fmt.%s to a terminal stream in hot simulator package: report through internal/obs instead", obj.Name())
			}
		}
	case "log", "log/slog":
		pass.Reportf(call.Pos(), "%s.%s in hot simulator package: report through internal/obs instead", obj.Pkg().Name(), obj.Name())
	}
}

// isStdStream reports whether e resolves to os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}
