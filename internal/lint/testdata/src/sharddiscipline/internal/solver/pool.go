// Package solver (fixture) models the worker-pool shape of the real
// rate engine so sharddiscipline's write rules can be exercised.
package solver

import "sync"

type pool struct {
	workers int
	jobs    chan func()
}

func (p *pool) run(total int, fn func(worker, lo, hi int)) {
	fn(0, 0, total)
}

type sim struct {
	pool        *pool
	rateFw      []float64
	rateBw      []float64
	workerCalcs []uint64
	rateCalcs   uint64
	byName      map[string]float64
	flagged     []int
}

func (s *sim) computeJunction(j int) { s.rateFw[j] = float64(j) }

// goodRefresh is the sanctioned shape: shard-owned slice slots indexed
// through the range, per-worker slots indexed by worker id, locals for
// accumulation, method calls into the audited shard API.
func (s *sim) goodRefresh(nj int) {
	s.pool.run(nj, func(w, lo, hi int) {
		var calcs uint64
		for j := lo; j < hi; j++ {
			s.rateFw[j] = float64(j)
			s.rateBw[j+1-1] = float64(j)
			s.computeJunction(j)
			calcs += 2
		}
		s.workerCalcs[w] = calcs
	})
}

func (s *sim) badRefresh(nj int, shared *float64) {
	total := 0.0
	s.pool.run(nj, func(w, lo, hi int) {
		for j := lo; j < hi; j++ {
			s.rateCalcs += 2                 // want "write to captured state s.rateCalcs inside pool worker"
			total += float64(j)              // want "write to captured variable total inside pool worker"
			s.rateFw[0] = 1                  // want "write to s.rateFw\\[0\\] inside pool worker: index is not derived from the shard range"
			s.rateBw[s.flagged[j]] = 1       // want "write to s.rateBw\\[s.flagged\\[j\\]\\] inside pool worker: index is not derived from the shard range"
			s.byName["x"] = float64(j)       // want "write to captured map s.byName inside pool worker"
			*shared = float64(j)             // want "write through pointer shared inside pool worker"
			s.flagged = append(s.flagged, j) // want "write to captured state s.flagged inside pool worker"
		}
	})
	_ = total
}

// capture-then-mutate: the launched goroutine races with the later
// reassignment of base.
func launchRace(wg *sync.WaitGroup) {
	base := 10
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = base
	}()
	base = 20 // want "variable base is captured by a goroutine launched at .* and reassigned here"
	wg.Wait()
}

// The same launch with no later write is fine.
func launchClean(wg *sync.WaitGroup) int {
	base := 10
	out := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		out = base + 1
	}()
	wg.Wait()
	return out
}
