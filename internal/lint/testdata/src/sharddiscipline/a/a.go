// Package a mirrors the bad worker shapes OUTSIDE internal/solver: the
// discipline is a solver-package contract, so nothing is flagged here.
package a

type pool struct{}

func (p *pool) run(total int, fn func(worker, lo, hi int)) { fn(0, 0, total) }

type sim struct {
	pool  *pool
	rates []float64
	calcs uint64
}

func (s *sim) unflaggedElsewhere(nj int) {
	s.pool.run(nj, func(w, lo, hi int) {
		s.calcs += 2
		s.rates[0] = 1
	})
}
