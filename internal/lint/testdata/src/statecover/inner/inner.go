// Package inner provides payload types for the env fixture, so the
// cross-package SerialFact flow can be asserted: Blob hides a field
// from encoding/json (incomplete), Meta is fully serialized
// (complete). Neither is a snapshot root, so this package is clean —
// its only analysis output is the exported facts.
package inner

// Blob looks like a serializable payload but hides state from
// encoding/json.
type Blob struct {
	T      float64 `json:"t"`
	hidden int
}

// Touch keeps hidden referenced.
func (b *Blob) Touch() { b.hidden++ }

// Meta is fully visible to encoding/json.
type Meta struct {
	Version int    `json:"version"`
	Label   string `json:"label"`
}
