// Package env holds a JSON snapshot envelope whose payload types come
// from the inner package: the incomplete one is reported through its
// cross-package SerialFact, the complete one passes silently.
package env

import "statecover/inner"

// Envelope wraps a checkpoint payload for the on-disk format.
//
//statecover:root save=json
type Envelope struct {
	Version int        `json:"version"`
	Meta    inner.Meta `json:"meta"`
	Payload inner.Blob `json:"payload"` // want `field Payload of JSON snapshot root Envelope has type Blob, which is not fully serialized`
}
