// Package a exercises statecover's method-pair snapshot roots: field
// coverage through the save/load call closure, the waiver taxonomy, and
// marker validation.
package a

// Sim is a toy simulator with a registered snapshot root. The save
// method serializes t and rngState; the load method restores them and
// calls refresh, which rebuilds rates — so rates is covered through the
// call closure even though Load never touches it directly.
//
//statecover:root save=Save load=Load
type Sim struct {
	t        float64
	rngState []byte
	rates    []float64
	horizon  float64 // want `field horizon of snapshot root Sim is neither serialized by Save nor rebuilt by Load`
	//statecover:immutable bound to one circuit for the Sim's lifetime
	topology []int
	scratch  []float64 //statecover:derived per-event scratch, recomputed before every read
	//statecover:immutable
	cfg int // want `statecover:immutable waiver without a reason`
	//statecover:scratch recomputed
	tmp int // want `unknown statecover waiver "scratch"`
}

// Save captures the dynamic state.
func (s *Sim) Save() map[string]any {
	return map[string]any{"t": s.t, "rng": s.rngState}
}

// Load restores it.
func (s *Sim) Load(m map[string]any) {
	s.t = m["t"].(float64)
	s.rngState = m["rng"].([]byte)
	s.refresh()
}

func (s *Sim) refresh() {
	for i := range s.rates {
		s.rates[i] = 0
	}
}

// Broken has a marker naming a save method that does not exist.
//
//statecover:root save=Marshal load=Load
type Broken struct { // want `statecover:root save method Broken.Marshal does not exist`
	X int //statecover:derived not reached: the root is rejected before coverage runs
}

// Load exists, so only the save half is reported.
func (b *Broken) Load(x int) { b.X = x }

// NotAStruct cannot be a snapshot root.
//
//statecover:root save=String load=Parse
type NotAStruct int // want `statecover:root marker on NotAStruct, which is not a struct type`

// Blob is a JSON-serialized snapshot root: unexported and json-skipped
// fields are lost on the decode half of the round trip.
//
//statecover:root save=json
type Blob struct {
	T       float64 `json:"t"`
	hidden  int     // want `unexported field hidden of JSON snapshot root Blob is invisible to encoding/json`
	Skipped int     `json:"-"` // want `field Skipped of JSON snapshot root Blob is excluded by its json:"-" tag`
	cache   []byte  //statecover:derived rebuilt lazily from T on first use
}
