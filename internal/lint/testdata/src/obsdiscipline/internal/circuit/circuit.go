// Package circuit (fixture) mirrors the C^-1 access surface the
// obsdiscipline pass watches inside internal/solver: the raw dense-row
// accessor is forbidden there, the potential-engine methods are the
// sanctioned path.
package circuit

// Circuit carries the forbidden raw accessor.
type Circuit struct{}

// CinvRow is the dense C^-1 row accessor solver code must not call.
func (c *Circuit) CinvRow(k int) []float64 { return nil }

// Potentials is the sanctioned engine surface.
type Potentials struct{}

func (p *Potentials) PotentialShift(k, src, dst int, mq float64) float64 { return 0 }

func (p *Potentials) Shift(v []float64, src, dst int, mq float64) int { return 0 }
