// Package solver mirrors the hot-path output shapes the obsdiscipline
// pass must catch: terminal printing and logging from simulator inner
// loops, which belong on internal/obs instead.
package solver

import (
	"bytes"
	"fmt"
	"log"      // want "import of log in hot simulator package"
	"log/slog" // want "import of log/slog in hot simulator package"
	"os"

	"obsdiscipline/internal/circuit"
)

var logger = log.New(os.Stderr, "solver: ", 0) // want "log.New in hot simulator package"

func step(ev int, dw float64) {
	fmt.Printf("event %d dw=%g\n", ev, dw) // want "fmt.Printf in hot simulator package"
	fmt.Println("stepped")                 // want "fmt.Println in hot simulator package"
	fmt.Print(ev)                          // want "fmt.Print in hot simulator package"
	fmt.Fprintf(os.Stderr, "ev %d\n", ev)  // want "fmt.Fprintf to a terminal stream"
	fmt.Fprintln(os.Stdout, "done")        // want "fmt.Fprintln to a terminal stream"
	log.Printf("event %d", ev)             // want "log.Printf in hot simulator package"
	slog.Info("stepped", "event", ev)      // want "slog.Info in hot simulator package"
	logger.Printf("worker output %d", ev)  // want "log.Printf in hot simulator package"
	println("debug", ev)                   // want "println built-in in hot simulator package"
	print("x")                             // want "print built-in in hot simulator package"
}

// Raw C^-1 row access bypasses the potential engine (and its
// truncation error accounting); the engine methods are the legal path.
func apply(c *circuit.Circuit, pe *circuit.Potentials, v []float64) float64 {
	row := c.CinvRow(0) // want "circuit.CinvRow in internal/solver: per-event C\\^-1 access must go through the potential engine"
	pe.Shift(v, 1, 2, 1e-19)
	return row[0] + pe.PotentialShift(0, 1, 2, 1e-19)
}

// Legal output shapes: formatting values, error construction, and
// writing into buffers are not terminal chatter.
func format(ev int) (string, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "event %d", ev)
	s := fmt.Sprintf("%d", ev)
	if ev < 0 {
		return "", fmt.Errorf("bad event %d", ev)
	}
	return s + buf.String(), nil
}
