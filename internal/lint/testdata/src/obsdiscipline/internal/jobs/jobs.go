// Package jobs mirrors the batch engine, which joined the quiet set
// when it grew per-task publish paths: terminal printing is flagged,
// while writes to a caller-supplied writer (the SSE stream, the follow
// renderer) stay legal.
package jobs

import (
	"fmt"
	"io"
	"os"
)

func worker(id int) {
	fmt.Printf("worker %d\n", id) // want "fmt.Printf in hot simulator package"
	fmt.Fprintln(os.Stderr, "up") // want "fmt.Fprintln to a terminal stream in hot simulator package"
}

func stream(w io.Writer, seq uint64) {
	fmt.Fprintf(w, "id: %d\n", seq) // the client's connection, not the terminal
}
