// Package a mirrors the same output shapes OUTSIDE the hot set: CLIs
// and experiment drivers print freely, so nothing is flagged here.
package a

import (
	"fmt"
	"log"
	"os"
)

func report(ev int) {
	fmt.Printf("event %d\n", ev)
	fmt.Fprintln(os.Stderr, "progress")
	log.Printf("event %d", ev)
	println("debug")
}
