// Package publish exercises the //semsim:publish non-blocking contract
// OUTSIDE the hot package set: the rule follows the marker, not the
// package path, so a marked function is checked anywhere in the module.
package publish

type hub struct {
	notify chan struct{}
	queue  chan int
}

// emit is the sanctioned shape: every send is a case of a select with a
// default clause, so it can never block on a slow subscriber.
//
//semsim:publish
func emit(h *hub, v int) {
	select {
	case h.queue <- v:
	default:
	}
	select {
	case h.notify <- struct{}{}:
	default:
	}
}

// emitBare sends directly — the canonical way to stall a publisher.
//
//semsim:publish
func emitBare(h *hub, v int) {
	h.queue <- v // want "blocking channel send in publish path emitBare"
}

// emitNoDefault selects over sends but has no default, so it still
// blocks until some subscriber drains.
//
//semsim:publish
func emitNoDefault(h *hub, v int) {
	select {
	case h.queue <- v: // want "blocking channel send in publish path emitNoDefault"
	case h.notify <- struct{}{}: // want "blocking channel send in publish path emitNoDefault"
	}
}

// emitNested hides the send in a function literal; the walk still finds
// it.
//
//semsim:publish
func emitNested(h *hub, v int) {
	f := func() { h.queue <- v } // want "blocking channel send in publish path emitNested"
	f()
}

// drainTo is unmarked: ordinary code may block on channels freely.
func drainTo(h *hub, v int) {
	h.queue <- v
}
