// Package solver (fixture) exercises the map-iteration rules in a
// determinism-core package path.
package solver

import "sort"

type state struct {
	rates []float64
	total float64
}

// Order-insensitive bodies: commutative accumulation, counters,
// set/map writes, guarded extrema, deletes.
func allowed(m map[int]float64, other map[int]bool) float64 {
	sum := 0.0
	n := 0
	max := 0.0
	seen := map[int]bool{}
	for k, v := range m {
		sum += v
		n++
		seen[k] = true
		if v > max {
			max = v
		}
		tmp := v * 2
		sum += tmp
		delete(other, k)
	}
	return sum + float64(n) + max
}

// The collect-then-sort idiom is the sanctioned way to iterate a map
// deterministically.
func collectThenSort(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func appendNoSort(m map[int]float64, s *state) {
	for _, v := range m {
		s.rates = append(s.rates, v) // want "append accumulates in map order without a subsequent sort"
	}
}

func returnInside(m map[int]float64) float64 {
	for _, v := range m {
		if v > 0 {
			return v // want "return inside map range picks an arbitrary element"
		}
	}
	return 0
}

func sideEffectCall(m map[int]float64, s *state) {
	for _, v := range m {
		s.push(v) // want "call with potential side effects inside map range"
	}
}

func sliceWrite(m map[int]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // want "indexed write in map order"
		i++
	}
}

func outerAssign(m map[int]float64) float64 {
	last := 0.0
	for _, v := range m {
		last = v // want "assignment to variable declared outside the loop"
	}
	return last
}

func (s *state) push(v float64) { s.rates = append(s.rates, v) }
