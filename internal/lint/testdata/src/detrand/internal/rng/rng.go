// Package rng is the one place allowed to touch math/rand (e.g. to
// cross-validate distributions); the import must not be flagged.
package rng

import "math/rand"

// Reference exposes a stdlib generator for cross-validation tests.
func Reference(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
