// Package a exercises the module-wide detrand rules: banned randomness
// imports and time-seeded values. It is NOT a determinism-core package,
// so its map ranges are unconstrained.
package a

import (
	"math/rand" // want "import of math/rand: all simulator randomness must flow through internal/rng"
	"time"
)

func seeds() (int64, int64) {
	good := time.Now()                 // reading the clock is fine
	bad := time.Now().UnixNano()       // want "time-seeded value time.Now\\(\\)\\.UnixNano\\(\\)"
	worse := time.Now().Unix()         // want "time-seeded value time.Now\\(\\)\\.Unix\\(\\)"
	_ = time.Since(good).Nanoseconds() // durations are not seeds
	_ = rand.Int()
	return bad, worse
}

// Map ranges outside the determinism core are not the analyzer's
// business: this order-sensitive loop must NOT be flagged here.
func freeMapRange(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
