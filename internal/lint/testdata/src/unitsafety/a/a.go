// Package a exercises unitsafety outside internal/units: hand-typed
// physical constants and inline unit-prefix arithmetic are flagged.
package a

const (
	e2sloppy = 1.602e-19 // want "raw physical-constant literal 1.602e-19: use units.E"
	kb       = 1.38e-23  // want "raw physical-constant literal 1.38e-23: use units.KB"
	planck   = 6.63e-34  // want "raw physical-constant literal 6.63e-34: use units.H"
	hbar     = 1.055e-34 // want "raw physical-constant literal 1.055e-34: use units.Hbar"
)

// Values that are merely small are not constants: no findings.
const (
	someEnergy = 2.5e-19
	tolerance  = 1e-9
	halfLife   = 1.3e-23 * 0 // the multiplier 1.3e-23 is 6% from k_B: clean
)

func convert(cAF, cFF float64) (float64, float64) {
	a := cAF * 1e-18 // want "inline unit-prefix literal 1e-18 in arithmetic: use units.Atto"
	b := cFF / 1e-15 // want "inline unit-prefix literal 1e-15 in arithmetic: use units.Femto"
	return a, b
}

// A bare 1e-18 VALUE is a legitimate SI quantity (one attofarad, in
// farads); only arithmetic conversions are flagged.
var capacitances = []float64{1e-18, 3e-18, 1e-15}
