// Package units (fixture) is the canonical home of physical constants:
// raw literals here are the point, not a violation.
package units

const (
	E  = 1.602176634e-19
	KB = 1.380649e-23
	H  = 6.62607015e-34
)

// AF converts attofarads to farads; the prefix literal is allowed here.
func AF(c float64) float64 { return c * 1e-18 }
