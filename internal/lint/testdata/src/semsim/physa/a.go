// Package physa (fixture) sits on the semsim module path and consumes
// the watched matrix API: every dropped or blanked error is flagged,
// handled errors and out-of-module calls are not.
package physa

import (
	"fmt"

	"physerr/extern"
	"physerr/internal/matrix"
)

func dropped() {
	matrix.Factor()      // want "error result of matrix.Factor is discarded"
	go matrix.Solve()    // want "error result of matrix.Solve is discarded"
	defer matrix.Solve() // want "error result of matrix.Solve is discarded"
}

func blanked() int {
	_ = matrix.Solve()         // want "error result of matrix.Solve assigned to blank"
	n, _ := matrix.Decompose() // want "error result of matrix.Decompose assigned to blank"
	return n
}

func handled() (int, error) {
	if err := matrix.Factor(); err != nil {
		return 0, fmt.Errorf("factor: %w", err)
	}
	n, err := matrix.Decompose()
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Out-of-module callees are not watched.
func unwatched() {
	extern.Log()
	fmt.Println("done")
}
