// Package extern (fixture) stands in for out-of-module code: its
// errors are outside physerr's watched set.
package extern

func Log() error { return nil }
