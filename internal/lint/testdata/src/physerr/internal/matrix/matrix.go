// Package matrix (fixture) models the error-returning numerical API
// whose results physerr refuses to let callers drop.
package matrix

import "errors"

var ErrNotPositiveDefinite = errors.New("matrix: not positive definite")

func Solve() error { return nil }

func Decompose() (int, error) { return 0, nil }

func Factor() error { return ErrNotPositiveDefinite }
