// Package restore exercises resumepurity on a statecover-rooted
// checkpoint pair: direct wall-clock and math/rand hazards, mutable
// globals (local and via cross-package GlobalFact), impure callees via
// cross-package PurityFact, order-sensitive map iteration, and the
// same-line waiver.
package restore

import (
	"math/rand"
	"time"

	"resumepurity/clocks"
)

// limits is assigned from Tune, so it is a mutable global.
var limits = map[string]float64{}

// Tune mutates limits at runtime.
func Tune(k string, v float64) { limits[k] = v }

// Sim is the snapshot root whose save/load pair seeds the purity
// roots.
//
//statecover:root save=Save load=Load
type Sim struct {
	T        float64
	Rates    map[string]float64
	loadedAt int64 //statecover:derived observability metadata, not simulation state
}

// Save serializes the dynamic state.
func (s *Sim) Save() map[string]float64 {
	out := map[string]float64{"t": s.T}
	_ = time.Since(time.Unix(0, 0)) // want `wall-clock read time.Since`
	return out
}

// Load restores it.
func (s *Sim) Load(m map[string]float64) {
	s.T = m["t"]
	s.T += float64(clocks.Stamp())            // want `call to clocks.Stamp, which is not resume-pure`
	s.T += float64(clocks.Calls)              // want `access to mutable global clocks.Calls`
	s.T += rand.Float64()                     // want `use of math/rand.Float64`
	s.loadedAt = time.Now().Unix()            //resumepure:ok wall time is observability metadata, never replayed
	_ = float64(clocks.Pure(1))               // pure callee: no finding
	s.refresh()
}

// refresh is reached from Load, so its hazards are on the restore
// path too.
func (s *Sim) refresh() {
	scale := limits["cap"] // want `access to mutable global limits`
	for k := range s.Rates {
		if s.Rates[k] > scale {
			return // want `map iteration order feeds restored state`
		}
	}
}

// Offline is not reachable from any purity root: its hazard exports a
// fact but produces no diagnostic.
func Offline() int64 { return time.Now().UnixNano() }
