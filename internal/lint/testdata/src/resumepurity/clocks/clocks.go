// Package clocks is the upstream fixture for resumepurity's
// cross-package facts. It registers no snapshot roots, so nothing is
// reported here — but Stamp's hazards make it resume-impure (exported
// as a PurityFact) and the Calls counter is a mutable exported global
// (exported as a GlobalFact), both for the restore fixture to trip
// over.
package clocks

import "time"

// Calls counts Stamp invocations; it is mutated outside init, so it is
// a mutable global.
var Calls int

// Stamp reads the wall clock and bumps the counter.
func Stamp() int64 {
	Calls++
	return time.Now().UnixNano()
}

// Pure has no hazards, so no purity fact is exported for it.
func Pure(x int) int { return x + 1 }
