// Package semsim is a doccomment fixture standing in for the facade.
package semsim

// Documented is fine: it has a doc comment starting with its name.
type Documented struct{}

// Run runs. Methods of exported types need docs too.
func (Documented) Run() {}

func (Documented) Stop() {} // want "exported method Stop has no doc comment"

type Bare struct{} // want "exported type Bare has no doc comment"

// Something about nothing in particular.
type Mismatched struct{} // want "doc comment for Mismatched should start with \"Mismatched\""

// A Described type may open with an article.
type Described struct{}

// unexported needs no doc comment.
type unexported struct{}

func (unexported) Exported() {} // method of an unexported type: no finding

// Do does a thing.
func Do() {}

func Undocumented() {} // want "exported function Undocumented has no doc comment"

// Constants of the fixture, documented as a group.
const (
	GroupedA = 1
	GroupedB = 2
)

const LoneConst = 3 // want "exported const LoneConst has no doc comment"

var LoneVar = 4 // want "exported var LoneVar has no doc comment"

// DocumentedVar carries its own comment.
var DocumentedVar = 5

var internalOnly = 6
