package a

// The doccomment policy applies to the facade and internal/jobs only;
// an undocumented export elsewhere is not this pass's business.
type Undocumented struct{}

func AlsoUndocumented() {}
