package semsim // want "package semsim has no package doc comment"

// Fine is documented; only the package comment is missing.
type Fine struct{}
