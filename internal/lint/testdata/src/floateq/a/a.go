// Package a exercises floateq: raw float equality is flagged; zero
// sentinels, NaN self-tests and integer comparisons are not.
package a

type volts float64

type sample struct {
	T, V float64
}

type meta struct {
	Name string
	N    int
}

func compare(a, b float64, f32a, f32b float32, va, vb volts) []bool {
	return []bool{
		a == b,       // want "floating-point == comparison"
		a != b,       // want "floating-point != comparison"
		f32a == f32b, // want "floating-point == comparison"
		va != vb,     // want "floating-point != comparison"
		a == 0,       // exact zero sentinel: allowed
		0.0 != b,     // exact zero sentinel: allowed
		a != a,       // the NaN test: allowed
	}
}

func composite(s1, s2 sample, m1, m2 meta) []bool {
	return []bool{
		s1 == s2, // want "== on float-containing composite type"
		s1 != s2, // want "!= on float-containing composite type"
		m1 == m2, // no floats inside: allowed
	}
}

func ints(i, j int) bool { return i == j }
