// Package a verifies hotalloc is path-scoped: outside internal/solver
// and internal/rng, even a marked hot function draws no findings.
package a

// hot allocates freely: this package is not on the event path.
//
//semsim:hot
func hot() []int {
	out := make([]int, 4)
	return append(out, 1)
}
