// Package obs is a hotalloc fixture shaped like the event bus: the
// per-event publish fan-out is hot, the subscription setup is not.
package obs

type busEvent struct {
	seq  uint64
	data string
}

type topic struct {
	ring  []busEvent
	start int
	n     int
}

// publish is the per-event path: the ring grows once up to its cap
// (waived) and otherwise overwrites in place.
//
//semsim:hot
func publish(t *topic, capacity int, ev busEvent) {
	if t.n < capacity {
		t.ring = append(t.ring, ev) //hotalloc:ok the ring grows once up to its cap, then overwrites in place
		t.n++
	} else {
		t.ring[t.start] = ev
		t.start = (t.start + 1) % capacity
	}
}

// publishSloppy grows its backing array on every event.
//
//semsim:hot
func publishSloppy(t *topic, ev busEvent) {
	t.ring = append(t.ring, ev) // want "append may grow its backing array"
}

// subscribe is cold setup: allocation is fine.
func subscribe(capacity int) *topic {
	return &topic{ring: make([]busEvent, 0, capacity)}
}
