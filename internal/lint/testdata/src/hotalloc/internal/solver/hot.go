// Package solver is a hotalloc fixture shaped like the real solver: hot
// and cold functions, waived and unwaived costs.
package solver

type rampStepper interface {
	RampStep(t float64) float64
}

type table struct{ vals []float64 }

func (t *table) eval(x float64) float64 { return t.vals[0] * x }

type sim struct {
	ramp  rampStepper
	tab   *table
	rates []float64
	pend  []float64
}

// coldPath is unmarked: anything goes.
func coldPath(s *sim) []float64 {
	out := make([]float64, 4)
	out = append(out, s.ramp.RampStep(0))
	return out
}

// hotStep exercises every finding class.
//
//semsim:hot
func hotStep(s *sim) float64 {
	total := 0.0
	total += s.ramp.RampStep(total) // want "interface method call s.ramp.RampStep dispatches dynamically"
	buf := make([]float64, 8)       // want "make allocates"
	p := new(table)                 // want "new allocates"
	_ = p
	s.pend = append(s.pend, total)       // want "append may grow its backing array"
	weights := []float64{1, 2}           // want "slice literal allocates"
	lut := map[int]float64{1: 2}         // want "map literal allocates"
	t2 := &table{}                       // want "&composite literal escapes to the heap"
	f := func() float64 { return total } // want "function literal allocates its closure"
	defer coldPath(s)                    // want "defer on the hot path"
	go coldPath(s)                       // want "go statement spawns a goroutine"
	total += buf[0] + weights[0] + lut[1] + t2.eval(1) + f()
	total += s.tab.eval(total) // concrete method call: fine
	return total
}

// hotDeferLit checks that a deferred literal yields one finding, at the
// defer, not a second one for the literal itself.
//
//semsim:hot
func hotDeferLit(s *sim) {
	defer func() { s.rates[0] = 0 }() // want "defer on the hot path"
}

// hotWaived shows the waiver forms: a documented waiver suppresses the
// finding, a bare one is itself a finding.
//
//semsim:hot
func hotWaived(s *sim) float64 {
	v := s.ramp.RampStep(0)    //hotalloc:ok once per step, not per rate
	s.pend = append(s.pend, v) //hotalloc:ok capacity preallocated
	v += s.tab.eval(v)         /*hotalloc:ok*/ // want "waiver without a reason"
	return v
}
