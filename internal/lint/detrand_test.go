package lint

import "testing"

func TestDetrand(t *testing.T) {
	RunFixture(t, Detrand, "detrand/a")
}

func TestDetrandAllowsInternalRNG(t *testing.T) {
	RunFixture(t, Detrand, "detrand/internal/rng")
}

func TestDetrandMapRangesInCorePackages(t *testing.T) {
	RunFixture(t, Detrand, "detrand/internal/solver")
}
