package lint

import "testing"

func TestStatecover(t *testing.T) {
	RunFixture(t, Statecover, "statecover/a")
}

func TestStatecoverCrossPackageFacts(t *testing.T) {
	RunFixtureModule(t, Statecover, "statecover/inner", "statecover/env")
}
