package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a typed datum one analyzer attaches to a package-level object
// (or to a package as a whole) while analyzing the package that owns it,
// for downstream packages to consult — mirroring
// x/tools/go/analysis.Fact. Facts are how a pass sees across package
// boundaries without whole-program analysis: each package is analyzed
// once, in dependency order, and summarizes what importers need to know
// (a function is impure, a struct type is fully serialized, a global is
// mutated) as facts on its exported objects.
//
// Concrete fact types must be pointers to gob-encodable structs and must
// be listed in their Analyzer's FactTypes so the vet-tool driver can
// serialize them into .vetx files between `go vet` invocations; the
// standalone module driver passes them in memory.
type Fact interface {
	// AFact marks the type as a fact; it has no behaviour.
	AFact()
}

// factKey addresses one fact in a store. obj is the intra-package
// object key from objKey ("" for package-level facts) and typ the
// concrete fact type's name, so an analyzer can attach facts of several
// types to the same object.
type factKey struct {
	pkg string // package import path, normalized
	obj string // objKey result; "" = fact about the package itself
	typ string // concrete fact type, e.g. "*lint.PurityFact"
}

// FactStore holds the facts exported so far in one analysis session.
// The module driver creates one store and threads it through every
// package in dependency order; the vet-tool driver fills one from the
// .vetx files of the package's dependencies and serializes the
// current package's additions into its own .vetx output.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]Fact{}}
}

func (s *FactStore) put(pkg, obj string, f Fact) {
	s.m[factKey{pkg: pkg, obj: obj, typ: factTypeName(f)}] = f
}

func (s *FactStore) get(pkg, obj string, ptr Fact) bool {
	f, ok := s.m[factKey{pkg: pkg, obj: obj, typ: factTypeName(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// factTypeName names a fact's concrete type for keying and wire
// identification.
func factTypeName(f Fact) string { return reflect.TypeOf(f).String() }

// objKey gives a package-local, export-data-stable key for the objects
// facts may be attached to: package-level named entities ("Name") and
// methods ("Recv.Name"). Struct fields and local objects are not
// addressable (attach facts to the owning named type instead). The
// second result reports whether the object is keyable.
func objKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		if recv := o.Type().(*types.Signature).Recv(); recv != nil {
			name := recvTypeName(recv.Type())
			if name == "" {
				return "", false
			}
			return name + "." + o.Name(), true
		}
		return o.Name(), true
	case *types.TypeName, *types.Var, *types.Const:
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name(), true
		}
	}
	return "", false
}

// recvTypeName extracts the named receiver type's name, dereferencing
// one pointer ("" when the receiver is not a named type).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ExportObjectFact attaches a fact to an object of the current package.
// Objects of other packages (or non-package-level objects) are silently
// not exportable, mirroring x/tools' contract that facts flow strictly
// downstream.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.store == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key, ok := objKey(obj)
	if !ok {
		return
	}
	p.store.put(normalizePath(obj.Pkg().Path()), key, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into
// ptr, reporting whether one was found. It resolves facts exported by
// any earlier package of the session (including the current one).
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.store == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := objKey(obj)
	if !ok {
		return false
	}
	return p.store.get(normalizePath(obj.Pkg().Path()), key, ptr)
}

// ExportPackageFact attaches a fact to the current package.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.store == nil {
		return
	}
	p.store.put(p.Path, "", fact)
}

// ImportPackageFact copies the package-level fact of ptr's type for the
// package with the given import path into ptr.
func (p *Pass) ImportPackageFact(path string, ptr Fact) bool {
	if p.store == nil {
		return false
	}
	return p.store.get(normalizePath(path), "", ptr)
}

// wireFact is the serialized form of one fact in a .vetx file. The Fact
// field is an interface, so gob records the concrete type; every fact
// type is registered from the analyzers' FactTypes declarations.
type wireFact struct {
	Obj  string // objKey, "" for package facts
	Fact Fact
}

var registerFactsOnce sync.Once

// registerFactTypes registers every declared fact type with gob, once.
func registerFactTypes() {
	registerFactsOnce.Do(func() {
		for _, a := range All() {
			for _, f := range a.FactTypes {
				gob.Register(f)
			}
		}
	})
}

// EncodeFacts serializes the facts the store holds for one package into
// the .vetx wire format (deterministically ordered). An empty package
// yields an empty (zero-length) blob so untouched .vetx files stay
// valid.
func (s *FactStore) EncodeFacts(pkgPath string) ([]byte, error) {
	registerFactTypes()
	pkgPath = normalizePath(pkgPath)
	var facts []wireFact
	for k, f := range s.m {
		if k.pkg == pkgPath {
			facts = append(facts, wireFact{Obj: k.obj, Fact: f})
		}
	}
	if len(facts) == 0 {
		return nil, nil
	}
	sort.Slice(facts, func(i, j int) bool {
		if facts[i].Obj != facts[j].Obj {
			return facts[i].Obj < facts[j].Obj
		}
		return factTypeName(facts[i].Fact) < factTypeName(facts[j].Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return nil, fmt.Errorf("lint: encoding facts for %s: %w", pkgPath, err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges a .vetx blob produced by EncodeFacts into the
// store under the given package path. Zero-length blobs are valid and
// empty.
func (s *FactStore) DecodeFacts(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	registerFactTypes()
	var facts []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&facts); err != nil {
		return fmt.Errorf("lint: decoding facts for %s: %w", pkgPath, err)
	}
	pkgPath = normalizePath(pkgPath)
	for _, wf := range facts {
		if wf.Fact == nil {
			continue
		}
		s.put(pkgPath, wf.Obj, wf.Fact)
	}
	return nil
}
