package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture is the analysistest-style harness: it loads the fixture
// package testdata/src/<path>, runs one analyzer over it, and asserts
// the diagnostics match the `// want "regexp"` comments in the fixture
// sources — every finding must be wanted, every want must be found.
//
// Fixture directories nest, so <path> doubles as the package import
// path; that lets path-sensitive analyzers (sharddiscipline only fires
// in internal/solver, unitsafety exempts internal/units) be tested
// against both matching and non-matching package paths. Fixtures may
// import sibling fixture packages and the standard library. Imported
// fixture packages are analyzed first (in dependency order, their
// diagnostics discarded) so fact-exporting analyzers see their upstream
// facts exactly as in a module-wide run.
func RunFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	runFixture(t, a, []string{path})
}

// RunFixtureModule is the multi-package variant of RunFixture: every
// listed fixture package (plus its fixture dependencies) is loaded and
// analyzed in dependency order with one shared fact store, and the
// `// want` assertions are checked across all listed packages — the
// harness for passes whose diagnostics depend on facts exported by
// another package. Dependencies that are not listed contribute facts
// but have their diagnostics ignored.
func RunFixtureModule(t *testing.T, a *Analyzer, paths ...string) {
	t.Helper()
	runFixture(t, a, paths)
}

func runFixture(t *testing.T, a *Analyzer, paths []string) {
	t.Helper()
	fx := &fixtureLoader{
		fset:  token.NewFileSet(),
		pkgs:  map[string]*fixturePkg{},
		files: map[string][]*ast.File{},
	}
	// The standard-library importer shares the fixture fset so positions
	// stay coherent.
	fx.std = importer.ForCompiler(fx.fset, "source", nil)
	for _, path := range paths {
		if _, err := fx.load(path); err != nil {
			t.Fatal(err)
		}
	}
	asserted := map[string]bool{}
	for _, path := range paths {
		asserted[path] = true
	}

	// fx.order lists every loaded package, dependencies first; running
	// the analyzer in that order with one store reproduces the module
	// driver's fact flow.
	store := NewFactStore()
	var diags []Diagnostic
	var wantFiles []*ast.File
	for _, path := range fx.order {
		pkg := fx.pkgs[path]
		d, err := runAnalyzers([]*Analyzer{a}, fx.fset, fx.files[path], pkg.tpkg, pkg.info, path, store)
		if err != nil {
			t.Fatal(err)
		}
		if asserted[path] {
			diags = append(diags, d...)
			wantFiles = append(wantFiles, fx.files[path]...)
		}
	}

	wants := collectWants(t, fx.fset, wantFiles)
	matched := map[*wantComment]bool{}
	for _, d := range diags {
		pos := fx.fset.Position(d.Pos)
		var hit *wantComment
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && !matched[w] && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		matched[hit] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts `// want "regexp"` annotations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*wantComment {
	t.Helper()
	var wants []*wantComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				quoted := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				pat, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", fset.Position(c.Pos()), c.Text, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

type fixturePkg struct {
	tpkg *types.Package
	info *types.Info
}

// fixtureLoader type-checks fixture packages under testdata/src,
// resolving fixture-to-fixture imports recursively and everything else
// through the standard-library source importer.
type fixtureLoader struct {
	fset  *token.FileSet
	std   types.Importer
	pkgs  map[string]*fixturePkg
	files map[string][]*ast.File
	stack []string
	// order records completion order: a package is appended after its
	// fixture dependencies, so iterating order visits dependencies first.
	order []string
}

func (fx *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := fx.pkgs[path]; ok {
		return p, nil
	}
	for _, s := range fx.stack {
		if s == path {
			return nil, fmt.Errorf("lint: fixture import cycle through %s", path)
		}
	}
	dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture package %s: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: fixture package %s has no Go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fx.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	fx.files[path] = files

	fx.stack = append(fx.stack, path)
	defer func() { fx.stack = fx.stack[:len(fx.stack)-1] }()
	info := newTypesInfo()
	conf := types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join("testdata", "src", filepath.FromSlash(imp))); err == nil {
			dep, err := fx.load(imp)
			if err != nil {
				return nil, err
			}
			return dep.tpkg, nil
		}
		return fx.std.Import(imp)
	})}
	tpkg, err := conf.Check(path, fx.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", path, err)
	}
	p := &fixturePkg{tpkg: tpkg, info: info}
	fx.pkgs[path] = p
	fx.order = append(fx.order, path)
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
