package lint

import "testing"

func TestFloateq(t *testing.T) {
	RunFixture(t, Floateq, "floateq/a")
}
