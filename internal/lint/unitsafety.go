package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"math"

	"semsim/internal/numeric"
	"semsim/internal/units"
)

// Unitsafety guards the SI unit discipline: every physical constant and
// unit-prefix conversion lives in internal/units, so a junction
// resistance is always ohms, a capacitance always farads, an energy
// always joules. Matsuoka et al.'s single-electron trap study (see
// PAPERS.md) documents how sensitively MC predictions depend on small
// parameter errors; a hand-typed 1.6e-19 that drifts from the CODATA
// elementary charge, or an inline *1e-18 attofarad conversion applied
// twice, is exactly the class of bug that produces plausible-looking
// wrong physics.
//
// Two patterns are flagged outside internal/units (and outside tests):
//
//   - float literals within 2% of a known physical constant
//     (e, k_B, h, hbar, R_K, R_Q) — use the units package constant;
//   - multiplying or dividing by a bare 1e-18/1e-15 unit-prefix literal
//     — use units.AF/units.FF/units.Atto/units.Femto, which name the
//     unit being converted.
var Unitsafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "flag raw physical-constant literals and inline unit-prefix arithmetic outside internal/units",
	Run:  runUnitsafety,
}

// physConstants are the guarded values with the units-package spelling
// to suggest; referencing units directly keeps this table incapable of
// drifting from the canonical constants.
var physConstants = []struct {
	val  float64
	name string
}{
	{units.E, "units.E"},
	{units.KB, "units.KB"},
	{units.H, "units.H"},
	{units.Hbar, "units.Hbar"},
	{units.RK, "units.RK"},
	{units.RQ, "units.RQ"},
}

// prefixLiterals are the unit-prefix magnitudes whose inline use almost
// always means an ad-hoc capacitance conversion.
var prefixLiterals = []struct {
	val  float64
	name string
}{
	{units.Atto, "units.Atto (or units.AF)"},
	{units.Femto, "units.Femto (or units.FF)"},
}

func runUnitsafety(pass *Pass) error {
	if pathHasSuffixAny(pass.Path, []string{"internal/units"}) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BasicLit:
				checkConstantLiteral(pass, e)
			case *ast.BinaryExpr:
				if e.Op == token.MUL || e.Op == token.QUO {
					checkPrefixArithmetic(pass, e)
				}
			}
			return true
		})
	}
	return nil
}

// litFloat evaluates a FLOAT basic literal.
func litFloat(lit *ast.BasicLit) (float64, bool) {
	if lit.Kind != token.FLOAT {
		return 0, false
	}
	v := constant.MakeFromLiteral(lit.Value, token.FLOAT, 0)
	if v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}

func checkConstantLiteral(pass *Pass, lit *ast.BasicLit) {
	f, ok := litFloat(lit)
	if !ok || f == 0 {
		return
	}
	for _, c := range physConstants {
		if math.Abs(f-c.val)/c.val < 0.02 {
			pass.Reportf(lit.Pos(), "raw physical-constant literal %s: use %s (hand-typed constants drift and defeat unit auditing)", lit.Value, c.name)
			return
		}
	}
}

func checkPrefixArithmetic(pass *Pass, e *ast.BinaryExpr) {
	for _, side := range []ast.Expr{e.X, e.Y} {
		lit, ok := side.(*ast.BasicLit)
		if !ok {
			continue
		}
		f, ok := litFloat(lit)
		if !ok {
			continue
		}
		for _, p := range prefixLiterals {
			if numeric.SameBits(f, p.val) {
				pass.Reportf(lit.Pos(), "inline unit-prefix literal %s in arithmetic: use %s so the converted unit is named", lit.Value, p.name)
				return
			}
		}
	}
}
