package lint

import "testing"

func TestDoccomment(t *testing.T) {
	RunFixture(t, Doccomment, "doccomment/semsim")
}

func TestDoccommentOnlyFiresInFacadePackages(t *testing.T) {
	RunFixture(t, Doccomment, "doccomment/a")
}

func TestDoccommentRequiresPackageDoc(t *testing.T) {
	RunFixture(t, Doccomment, "doccomment/nopkgdoc/semsim")
}
