package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floateq flags == and != between floating-point values (and between
// float-containing composite values) in non-test code. After a few
// thousand Monte Carlo events two mathematically equal quantities differ
// in their last bits, so raw equality silently degrades into "almost
// never true" — the class of bug that makes an adaptive refresh fire on
// every event or a change detector never fire.
//
// Three comparisons are exact by construction and stay allowed:
//
//   - comparison against a constant zero (zero is a sentinel, and
//     x == 0 is an exact IEEE-754 predicate);
//   - x != x / x == x (the portable NaN test);
//   - anything in _test.go files, where bit-exact comparison is often
//     the point (determinism tests compare trajectories bit-for-bit).
//
// Deliberate bit-identity checks in simulator code go through
// numeric.SameBits, which names the intent and satisfies the analyzer.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point values outside tests (use a tolerance or numeric.SameBits)",
	Run:  runFloateq,
}

func runFloateq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.Info.TypeOf(e.X), pass.Info.TypeOf(e.Y)
			if tx == nil || ty == nil {
				return true
			}
			if !containsFloat(tx) && !containsFloat(ty) {
				return true
			}
			if isConstZero(pass, e.X) || isConstZero(pass, e.Y) {
				return true
			}
			if types.ExprString(e.X) == types.ExprString(e.Y) {
				return true // x != x: the NaN test
			}
			if isFloat(tx) || isFloat(ty) {
				pass.Reportf(e.OpPos, "floating-point %s comparison: use a tolerance, or numeric.SameBits for deliberate bit identity", e.Op)
			} else {
				pass.Reportf(e.OpPos, "%s on float-containing composite type %s compares floats exactly; compare fields with tolerances", e.Op, tx)
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// containsFloat reports whether comparing two values of type t compares
// floating-point representations somewhere: floats themselves, or
// structs/arrays with float components. Pointers, maps and slices
// compare identities, not contents.
func containsFloat(t types.Type) bool {
	seen := map[types.Type]bool{}
	var rec func(types.Type) bool
	rec = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Info()&(types.IsFloat|types.IsComplex) != 0
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return false
	}
	return rec(t)
}

func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
