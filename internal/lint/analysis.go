// Package lint is the static-analysis layer of the simulator: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the project-specific
// passes that turn semsim's correctness conventions — deterministic
// randomness, SI unit discipline, no raw float equality, shard-local
// writes in the parallel rate engine, no discarded numerical errors —
// into machine-checked invariants.
//
// The framework is intentionally tiny rather than a vendored copy of
// x/tools: the build environment is offline and the module has no
// third-party dependencies, so the passes run on the standard library
// alone (go/ast, go/types, go/importer). The shape mirrors x/tools
// closely enough that a pass written here ports to a real
// analysis.Analyzer almost mechanically; see DESIGN.md §7.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass, mirroring
// x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the pass in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description, shown by `semsimlint -list`.
	Doc string
	// Run applies the pass to one type-checked package, reporting
	// findings through pass.Reportf.
	Run func(*Pass) error
	// FactTypes declares the concrete fact types the pass exports (one
	// zero-valued pointer per type), so the drivers can register them
	// for .vetx serialization. A pass with no FactTypes is purely local.
	FactTypes []Fact
}

// Pass carries one type-checked package through an analyzer, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package import path, normalized: for test variants
	// ("pkg [pkg.test]") only the base path is kept, so path-keyed
	// policies apply uniformly under `go vet -vettool`.
	Path string

	report func(Diagnostic)
	store  *FactStore
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding. Findings inside _test.go files are
// dropped: the project invariants guard simulator code, and tests
// legitimately use exact float comparisons, raw constants and
// error-dropping shorthand when exercising failure paths.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go") {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrand,
		Unitsafety,
		Floateq,
		Sharddiscipline,
		Hotalloc,
		Physerr,
		Obsdiscipline,
		Doccomment,
		Statecover,
		Resumepurity,
	}
}

// ByName resolves a comma-separated -only list against All.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// normalizePath strips the test-variant suffix go list and vet use for
// augmented test packages ("pkg [pkg.test]" or "pkg.test").
func normalizePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, ".test")
}

// runAnalyzers applies each analyzer to one package and returns the
// findings sorted by position. Facts the analyzers export (and the
// imported facts they consult) live in store, which must be shared
// across the packages of one session; a nil store disables facts.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, path string, store *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Path:     normalizePath(path),
			report:   func(d Diagnostic) { diags = append(diags, d) },
			store:    store,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// RunPackage applies the analyzers to one externally type-checked
// package (the `go vet -vettool` path, where vet supplies the build
// graph, export data and the dependency facts in store) and returns the
// findings sorted by position. Facts the analyzers export land in
// store for the caller to serialize.
func RunPackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, path string, store *FactStore) ([]Diagnostic, error) {
	return runAnalyzers(analyzers, fset, files, pkg, info, path, store)
}

// newTypesInfo allocates the full set of type-checking maps the passes
// consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
