package sweep

import (
	"errors"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/numeric"
	"semsim/internal/solver"
)

// sessionSET builds the standard test SET once, biased at an arbitrary
// point, with the overrides mapping (x=Vds, y=Vg) onto its sources.
func sessionSET(cfg Config) SessionFunc {
	return func() (*Session, error) {
		c, nd := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.04, Vd: -0.01, Vg: 0.02, // never a sweep point: overrides must win
		})
		over := func(x, y float64) map[int]float64 {
			return map[int]float64{nd.Source: x / 2, nd.Drain: -x / 2, nd.Gate: y}
		}
		return NewSession(c, nd.JuncDrain, over, cfg)
	}
}

// The tentpole guarantee at the sweep layer: a compile-once session
// sweep must reproduce the rebuild-per-point sweep bit for bit.
func TestIVSessionMatchesIV(t *testing.T) {
	xs := numeric.Linspace(-0.04, 0.04, 9)
	cfg := Config{Options: solver.Options{Temp: 5, Seed: 42}, WarmEvents: 500, Events: 3000}
	fresh, err := IV(buildSET, xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := IVSession(sessionSET(cfg), xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("point %d: session %+v != rebuild %+v", i, reused[i], fresh[i])
		}
	}
}

func TestMap2DSessionMatchesMap2D(t *testing.T) {
	xs := numeric.Linspace(-0.03, 0.03, 5)
	ys := []float64{0, 0.0134, 0.0267}
	cfg := Config{Options: solver.Options{Temp: 5, Seed: 9}, WarmEvents: 300, Events: 2000}
	build := func(x, y float64) (*circuit.Circuit, int, error) {
		c, nd := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: x / 2, Vd: -x / 2, Vg: y,
		})
		return c, nd.JuncDrain, nil
	}
	fresh, err := Map2D(build, xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := Map2DSession(sessionSET(cfg), xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for iy := range fresh {
		for ix := range fresh[iy] {
			if fresh[iy][ix] != reused[iy][ix] {
				t.Fatalf("grid[%d][%d]: session %g != rebuild %g", iy, ix, reused[iy][ix], fresh[iy][ix])
			}
		}
	}
}

func TestIVSessionDeterministicUnderParallelism(t *testing.T) {
	xs := numeric.Linspace(-0.04, 0.04, 7)
	cfg := Config{Options: solver.Options{Temp: 5, Seed: 7}, WarmEvents: 500, Events: 3000}
	cfg.Parallel = 1
	a, err := IVSession(sessionSET(cfg), xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 8
	b, err := IVSession(sessionSET(cfg), xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across parallelism: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSessionPropagatesErrors(t *testing.T) {
	boom := errors.New("no session")
	_, err := IVSession(func() (*Session, error) { return nil, boom }, []float64{0, 0.01}, Config{
		Options: solver.Options{Temp: 5}, Events: 10,
	})
	if !errors.Is(err, boom) {
		t.Fatalf("session build error lost: %v", err)
	}

	// A failing point carries a full PointError, as in the rebuild path.
	cfg := Config{Options: solver.Options{Temp: 5, Seed: 1}, Events: 100}
	mk := sessionSET(cfg)
	_, err = IVSession(func() (*Session, error) {
		s, err := mk()
		if err != nil {
			return nil, err
		}
		// Override an island node: Reset rejects it at every point.
		s.over = func(x, y float64) map[int]float64 {
			return map[int]float64{-1: x}
		}
		return s, nil
	}, []float64{0.01, 0.02}, cfg)
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("point failure not a *PointError: %v", err)
	}
}
