// Package sweep drives families of Monte Carlo runs across bias or
// gate voltages: the I-V curves of Fig. 1 and the two-dimensional
// stability map of Fig. 5. Sweep points are independent simulations and
// run in parallel across CPUs, each with a deterministic per-point
// seed.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"semsim/internal/circuit"
	"semsim/internal/obs"
	"semsim/internal/solver"
)

// PointError reports a sweep point that failed, carrying enough context
// to reproduce it in isolation: the flat point index (row-major for 2-D
// maps) and the swept value(s). The underlying cause is available via
// errors.Unwrap / errors.Is.
type PointError struct {
	Index int     // flat index into the sweep (iy*len(xs)+ix for maps)
	X     float64 // swept value (first axis)
	Y     float64 // second-axis value; meaningful only when Is2D
	Is2D  bool
	Err   error
}

func (e *PointError) Error() string {
	if e.Is2D {
		return fmt.Sprintf("sweep: point %d (x=%g, y=%g): %v", e.Index, e.X, e.Y, e.Err)
	}
	return fmt.Sprintf("sweep: point %d (x=%g): %v", e.Index, e.X, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// Point is one sweep sample.
type Point struct {
	X float64 // swept variable (volts)
	I float64 // measured current (amperes)
	// Blockaded marks points where no event was ever possible (hard
	// Coulomb blockade): the current is exactly zero.
	Blockaded bool
}

// BuildFunc constructs a fresh circuit for a sweep value and returns it
// together with the junction whose current is measured.
type BuildFunc func(v float64) (*circuit.Circuit, int, error)

// Config tunes the per-point Monte Carlo runs.
type Config struct {
	Options    solver.Options
	WarmEvents uint64  // discarded before measuring
	Events     uint64  // measured events per point
	MaxTime    float64 // simulated-time cap per point (0 = none)
	Parallel   int     // worker goroutines; 0 = GOMAXPROCS
}

// IV runs one simulation per value in xs and returns the points in
// order. Each point gets seed Options.Seed + index so results are
// reproducible regardless of scheduling.
func IV(build BuildFunc, xs []float64, cfg Config) ([]Point, error) {
	return IVCtx(context.Background(), build, xs, cfg)
}

// IVCtx is IV with cooperative cancellation: once ctx is canceled, no
// new point starts and IVCtx returns ctx's error (points already in
// flight run to completion — a point is the smallest unit of work).
// Batch drivers (the jobs engine, semsimd) use this to stop abandoned
// sweeps promptly.
func IVCtx(ctx context.Context, build BuildFunc, xs []float64, cfg Config) ([]Point, error) {
	defer obs.GlobalSpan("sweep.iv").End()
	obs.Global().SweepTotal(len(xs))
	pts := make([]Point, len(xs))
	errs := make([]error, len(xs))
	par := parallelism(cfg)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				pts[i], errs[i] = runPoint(build, xs[i], i, cfg)
			}
		}()
	}
	for i := range xs {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, &PointError{Index: i, X: xs[i], Err: err}
		}
	}
	return pts, nil
}

// parallelism resolves the worker count for a sweep.
func parallelism(cfg Config) int {
	if cfg.Parallel > 0 {
		return cfg.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// pointOptions derives the per-point solver options: deterministic seed
// from the flat point index, and serial execution by default (the sweep
// already runs one simulation per CPU; per-point worker pools would
// only oversubscribe).
func pointOptions(cfg Config, idx int) solver.Options {
	opt := cfg.Options
	opt.Seed += uint64(idx)
	if opt.Parallel == 0 {
		opt.Parallel = 1
	}
	return opt
}

func runPoint(build BuildFunc, x float64, idx int, cfg Config) (Point, error) {
	c, junc, err := build(x)
	if err != nil {
		return Point{}, err
	}
	s, err := solver.New(c, pointOptions(cfg, idx))
	if err != nil {
		return Point{}, err
	}
	defer s.Close()
	return measurePoint(s, junc, x, cfg)
}

// measurePoint is the measurement phase shared by the rebuild path
// (runPoint) and the compile-once session path (Session.RunPoint): warm
// up, reset the measurement window, run, read the junction current.
func measurePoint(s *solver.Sim, junc int, x float64, cfg Config) (Point, error) {
	defer obs.GlobalSpan("sweep.point").End()
	defer obs.Global().SweepPointDone()
	if _, err := s.Run(cfg.WarmEvents, cfg.MaxTime/5); err != nil {
		if err == solver.ErrBlockaded {
			return Point{X: x, I: 0, Blockaded: true}, nil
		}
		return Point{}, err
	}
	// Auto counting windows of an attached noise recorder calibrate
	// from the warm-up rate, exactly as the jobs engine's warm phase
	// does (no-op without a recorder).
	s.AutoNoiseWindows()
	s.ResetMeasurement()
	if _, err := s.Run(cfg.Events, cfg.MaxTime); err != nil {
		if err == solver.ErrBlockaded {
			return Point{X: x, I: 0, Blockaded: true}, nil
		}
		return Point{}, err
	}
	return Point{X: x, I: s.JunctionCurrent(junc)}, nil
}

// Conductance differentiates an I-V curve numerically (central
// differences, one-sided at the ends), producing the dI/dV trace whose
// 2-D version is the Coulomb-diamond stability diagram of SET device
// research. The input points must be sorted in X.
func Conductance(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i := range pts {
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi >= len(pts) {
			hi = len(pts) - 1
		}
		dv := pts[hi].X - pts[lo].X
		g := 0.0
		if dv != 0 {
			g = (pts[hi].I - pts[lo].I) / dv
		}
		out[i] = Point{X: pts[i].X, I: g}
	}
	return out
}

// Build2DFunc constructs a circuit for a (x, y) grid point.
type Build2DFunc func(x, y float64) (*circuit.Circuit, int, error)

// runPoint2D is runPoint for grid points; calling build directly (rather
// than adapting it through a BuildFunc closure) keeps the per-point path
// allocation-free outside the solver itself.
func runPoint2D(build Build2DFunc, x, y float64, idx int, cfg Config) (Point, error) {
	c, junc, err := build(x, y)
	if err != nil {
		return Point{}, err
	}
	s, err := solver.New(c, pointOptions(cfg, idx))
	if err != nil {
		return Point{}, err
	}
	defer s.Close()
	return measurePoint(s, junc, x, cfg)
}

// Map2D computes the current on a ys-by-xs grid (row-major: result[iy][ix]),
// the shape of the paper's Fig. 5 contour data.
func Map2D(build Build2DFunc, xs, ys []float64, cfg Config) ([][]float64, error) {
	return Map2DCtx(context.Background(), build, xs, ys, cfg)
}

// Map2DCtx is Map2D with cooperative cancellation, mirroring IVCtx:
// canceled grids stop scheduling new points and return ctx's error.
func Map2DCtx(ctx context.Context, build Build2DFunc, xs, ys []float64, cfg Config) ([][]float64, error) {
	defer obs.GlobalSpan("sweep.map2d").End()
	obs.Global().SweepTotal(len(xs) * len(ys))
	grid := make([][]float64, len(ys))
	for iy := range grid {
		grid[iy] = make([]float64, len(xs))
	}
	type job struct{ ix, iy int }
	jobs := make(chan job)
	errs := make([]error, len(xs)*len(ys))
	par := parallelism(cfg)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				idx := j.iy*len(xs) + j.ix
				if ctx.Err() != nil {
					errs[idx] = ctx.Err()
					continue
				}
				pt, err := runPoint2D(build, xs[j.ix], ys[j.iy], idx, cfg)
				if err != nil {
					errs[idx] = err
					continue
				}
				grid[j.iy][j.ix] = pt.I
			}
		}()
	}
	for iy := range ys {
		for ix := range xs {
			jobs <- job{ix: ix, iy: iy}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for idx, err := range errs {
		if err != nil {
			ix, iy := idx%len(xs), idx/len(xs)
			return nil, &PointError{Index: idx, X: xs[ix], Y: ys[iy], Is2D: true, Err: err}
		}
	}
	return grid, nil
}
