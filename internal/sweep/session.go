package sweep

import (
	"context"
	"sync"

	"semsim/internal/circuit"
	"semsim/internal/noise"
	"semsim/internal/obs"
	"semsim/internal/solver"
)

// OverrideFunc maps a sweep coordinate to the DC source overrides
// (circuit node id → volts) that realize it on a session's base
// circuit. For 1-D sweeps y is always 0. The returned map may be reused
// across calls; the solver copies the values on Reset.
type OverrideFunc func(x, y float64) map[int]float64

// SessionFunc constructs a worker-local Session. Sweep drivers call it
// once per worker goroutine — a Session wraps a single solver.Sim and
// is not safe for concurrent use — so a sweep pays one circuit
// compilation per worker instead of one per point.
type SessionFunc func() (*Session, error)

// Session is the compile-once half of the amortized sweep engine: it
// owns one long-lived solver.Sim whose compiled artifacts (CSR
// capacitance matrix, Cholesky factor, truncated C⁻¹ rows, flat kernel
// tables, worker pool) are reused across sweep points via solver.Reset.
// Results are bit-identical to the rebuild path (IV/Map2D) at the same
// point index: RunPoint derives the same per-point seed and the reset
// simulation follows the same trajectory a fresh build would.
type Session struct {
	sim  *solver.Sim
	junc int
	over OverrideFunc
	cfg  Config
}

// NewSession compiles base once under cfg.Options and prepares it for
// per-point reuse. junc is the junction whose current each point
// reports; over translates sweep coordinates into DC overrides on base.
// The base circuit's own bias values never influence results — every
// RunPoint installs a full override set for its coordinate.
func NewSession(base *circuit.Circuit, junc int, over OverrideFunc, cfg Config) (*Session, error) {
	cfg.Options = pointOptions(cfg, 0)
	sim, err := solver.New(base, cfg.Options)
	if err != nil {
		return nil, err
	}
	obs.Global().SessionBuild()
	return &Session{sim: sim, junc: junc, over: over, cfg: cfg}, nil
}

// Close releases the underlying simulation's worker pool.
func (s *Session) Close() {
	if s != nil && s.sim != nil {
		s.sim.Close()
	}
}

// EnableNoise attaches a streaming noise/FCS recorder (internal/noise)
// to the session's simulation: every subsequent RunPoint accumulates
// counting-window cumulants and spectral sums for the configured
// junctions, readable through NoiseStats after the point returns.
// Recording is passive (points are bit-identical with or without it)
// and resets with the solver on every RunPoint, so a reused session's
// noise measurement matches a freshly built session's exactly — the
// session-reuse regression test asserts this bit-for-bit.
func (s *Session) EnableNoise(cfg noise.Config) error {
	return s.sim.EnableNoise(cfg)
}

// NoiseStats reads junction j's noise statistics over the measurement
// window of the most recent RunPoint; ok is false when j is not
// recorded.
func (s *Session) NoiseStats(j int) (noise.RunStats, bool) {
	return s.sim.NoiseStats(j)
}

// RunPoint simulates one sweep point on the reused Sim. idx is the
// point's flat index in the sweep (the fine-lattice index for refined
// maps): the per-point seed is Options.Seed + idx, exactly what a fresh
// build at the same index would use, so session results are
// bit-identical to IV/Map2D and invariant to worker count and schedule.
func (s *Session) RunPoint(x, y float64, idx int) (Point, error) {
	if err := s.sim.Reset(s.cfg.Options.Seed+uint64(idx), s.over(x, y)); err != nil {
		return Point{}, err
	}
	return measurePoint(s.sim, s.junc, x, s.cfg)
}

// forEachSessionPoint fans indices [0, n) out over worker-local
// sessions: each of par workers builds one Session via newSession and
// processes points with it. point must write its own results (indices
// are distinct, so no locking is needed) and return a fully wrapped
// error; the first error by any worker (session construction first,
// then point errors in index order) is returned after all workers
// drain. Cancellation mirrors IVCtx: in-flight points finish, queued
// ones are skipped.
func forEachSessionPoint(ctx context.Context, newSession SessionFunc, n int, cfg Config, point func(s *Session, i int) error) error {
	errs := make([]error, n)
	par := parallelism(cfg)
	sessErrs := make([]error, par)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := newSession()
			if err != nil {
				sessErrs[w] = err
				for range work { // keep the feeder from blocking
				}
				return
			}
			defer sess.Close()
			for i := range work {
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				errs[i] = point(sess, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range sessErrs {
		if err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// IVSession is IV with compile-once solver reuse: each worker builds
// one Session and Resets it per point. Bit-identical results to IV.
func IVSession(newSession SessionFunc, xs []float64, cfg Config) ([]Point, error) {
	return IVSessionCtx(context.Background(), newSession, xs, cfg)
}

// IVSessionCtx is IVSession with cooperative cancellation (see IVCtx).
func IVSessionCtx(ctx context.Context, newSession SessionFunc, xs []float64, cfg Config) ([]Point, error) {
	defer obs.GlobalSpan("sweep.iv").End()
	obs.Global().SweepTotal(len(xs))
	pts := make([]Point, len(xs))
	err := forEachSessionPoint(ctx, newSession, len(xs), cfg, func(s *Session, i int) error {
		pt, err := s.RunPoint(xs[i], 0, i)
		if err != nil {
			return &PointError{Index: i, X: xs[i], Err: err}
		}
		pts[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// Map2DSession is Map2D with compile-once solver reuse. Bit-identical
// results to Map2D.
func Map2DSession(newSession SessionFunc, xs, ys []float64, cfg Config) ([][]float64, error) {
	return Map2DSessionCtx(context.Background(), newSession, xs, ys, cfg)
}

// Map2DSessionCtx is Map2DSession with cooperative cancellation.
func Map2DSessionCtx(ctx context.Context, newSession SessionFunc, xs, ys []float64, cfg Config) ([][]float64, error) {
	defer obs.GlobalSpan("sweep.map2d").End()
	obs.Global().SweepTotal(len(xs) * len(ys))
	grid := make([][]float64, len(ys))
	for iy := range grid {
		grid[iy] = make([]float64, len(xs))
	}
	err := forEachSessionPoint(ctx, newSession, len(xs)*len(ys), cfg, func(s *Session, i int) error {
		ix, iy := i%len(xs), i/len(xs)
		pt, err := s.RunPoint(xs[ix], ys[iy], i)
		if err != nil {
			return &PointError{Index: i, X: xs[ix], Y: ys[iy], Is2D: true, Err: err}
		}
		grid[iy][ix] = pt.I
		return nil
	})
	if err != nil {
		return nil, err
	}
	return grid, nil
}
