package sweep

import (
	"context"
	"fmt"
	"sort"

	"semsim/internal/obs"
)

// RefineConfig tunes adaptive mesh refinement for stability maps. The
// interesting structure of a Coulomb-diamond map — diamond edges and
// resonance lines — occupies a thin set of the (Vg, Vds) plane; AMR
// simulates a coarse grid everywhere and spends fine-grid points only
// where neighbouring currents disagree.
type RefineConfig struct {
	// Depth is the number of dyadic refinement levels: each level halves
	// the cell size, so the fine lattice is 2^Depth times denser per axis
	// than the coarse grid. 0 disables refinement.
	Depth int
	// Threshold is the refinement trigger as a fraction of the global
	// current range: a cell whose corner currents span at least
	// Threshold × (max I − min I) is subdivided. 0 means the default 0.1.
	Threshold float64
	// MaxPoints caps the total number of simulated fine points
	// (0 = unlimited). Refinement candidates are truncated in fine-index
	// order, so the cap is deterministic too.
	MaxPoints int
}

const defaultRefineThreshold = 0.1

// RefinedMap is an adaptively refined stability map on the fine
// lattice. Simulated marks points that ran a Monte Carlo simulation;
// the rest of I is filled by dyadic interpolation between simulated
// neighbours. PointsTotal−PointsSimulated is the refinement saving
// versus a uniform fine grid.
type RefinedMap struct {
	Xs, Ys          []float64   // fine-lattice axes
	I               [][]float64 // current, row-major I[iy][ix]
	Simulated       [][]bool    // true where I was simulated, not interpolated
	PointsSimulated int
	PointsTotal     int // len(Xs) * len(Ys)
}

// RefineAxis subdivides each interval of vs into 2^depth equal steps.
// Coarse values land exactly (bitwise) on their aligned fine indices
// (i<<depth), which is what makes coarse-level simulations bit-identical
// to a uniform fine grid's at the same fine index.
func RefineAxis(vs []float64, depth int) []float64 {
	if depth == 0 || len(vs) < 2 {
		return append([]float64(nil), vs...)
	}
	step := 1 << depth
	out := make([]float64, (len(vs)-1)*step+1)
	for i := 0; i+1 < len(vs); i++ {
		a, b := vs[i], vs[i+1]
		out[i*step] = a
		for k := 1; k < step; k++ {
			out[i*step+k] = a + (b-a)*float64(k)/float64(step)
		}
	}
	out[len(out)-1] = vs[len(vs)-1]
	return out
}

// Map2DRefined computes a stability map with compile-once solver reuse
// and adaptive mesh refinement: the coarse xs×ys grid is simulated
// everywhere, then cells with high current contrast are subdivided
// level by level down to rc.Depth. Results are deterministic and
// invariant to worker count and scheduling: every simulated point's
// seed derives from its fine-lattice index, and each level's refinement
// decisions depend only on completed values from earlier levels. A
// simulated refined point is bit-identical to the same point in a
// uniform Map2DSession over the fine lattice.
func Map2DRefined(newSession SessionFunc, xs, ys []float64, cfg Config, rc RefineConfig) (*RefinedMap, error) {
	return Map2DRefinedCtx(context.Background(), newSession, xs, ys, cfg, rc)
}

// Map2DRefinedCtx is Map2DRefined with cooperative cancellation.
func Map2DRefinedCtx(ctx context.Context, newSession SessionFunc, xs, ys []float64, cfg Config, rc RefineConfig) (*RefinedMap, error) {
	defer obs.GlobalSpan("sweep.map2d_refined").End()
	if rc.Depth < 0 || rc.Depth > 12 {
		return nil, fmt.Errorf("sweep: refine depth %d out of range [0, 12]", rc.Depth)
	}
	if rc.Depth > 0 && (len(xs) < 2 || len(ys) < 2) {
		return nil, fmt.Errorf("sweep: refinement needs at least a 2x2 coarse grid, got %dx%d", len(xs), len(ys))
	}
	thr := rc.Threshold
	if thr <= 0 {
		thr = defaultRefineThreshold
	}
	fineXs := RefineAxis(xs, rc.Depth)
	fineYs := RefineAxis(ys, rc.Depth)
	fnx, fny := len(fineXs), len(fineYs)
	m := &RefinedMap{
		Xs: fineXs, Ys: fineYs,
		I:           make([][]float64, fny),
		Simulated:   make([][]bool, fny),
		PointsTotal: fnx * fny,
	}
	for iy := 0; iy < fny; iy++ {
		m.I[iy] = make([]float64, fnx)
		m.Simulated[iy] = make([]bool, fnx)
	}

	type fpt struct{ fx, fy int }
	simulate := func(level int, pts []fpt) error {
		obs.Global().SweepTotal(len(pts))
		for range pts {
			obs.Global().RefineDepth(level)
		}
		err := forEachSessionPoint(ctx, newSession, len(pts), cfg, func(s *Session, i int) error {
			p := pts[i]
			idx := p.fy*fnx + p.fx
			pt, err := s.RunPoint(fineXs[p.fx], fineYs[p.fy], idx)
			if err != nil {
				return &PointError{Index: idx, X: fineXs[p.fx], Y: fineYs[p.fy], Is2D: true, Err: err}
			}
			m.I[p.fy][p.fx] = pt.I
			m.Simulated[p.fy][p.fx] = true
			return nil
		})
		if err != nil {
			return err
		}
		m.PointsSimulated += len(pts)
		return nil
	}

	// Level 0: the full coarse grid, at fine-lattice-aligned indices.
	stride := 1 << rc.Depth
	coarse := make([]fpt, 0, len(xs)*len(ys))
	for fy := 0; fy < fny; fy += stride {
		for fx := 0; fx < fnx; fx += stride {
			coarse = append(coarse, fpt{fx, fy})
		}
	}
	if err := simulate(0, coarse); err != nil {
		return nil, err
	}

	// Refinement levels: subdivide cells of the previous level whose
	// corner currents span more than the threshold fraction of the
	// global range. Only cells with all four corners simulated are
	// candidates, so refinement recurses exactly where earlier levels
	// found contrast.
	for level := 1; level <= rc.Depth; level++ {
		cell := 1 << (rc.Depth - level + 1) // previous level's cell size
		plan := RefinePlan(m.I, m.Simulated, cell, thr)
		if len(plan) == 0 {
			break
		}
		pts := make([]fpt, len(plan))
		for i, p := range plan {
			pts[i] = fpt{p[0], p[1]}
		}
		if rc.MaxPoints > 0 && m.PointsSimulated+len(pts) > rc.MaxPoints {
			keep := rc.MaxPoints - m.PointsSimulated
			if keep < 0 {
				keep = 0
			}
			pts = pts[:keep]
		}
		if len(pts) == 0 {
			break
		}
		if err := simulate(level, pts); err != nil {
			return nil, err
		}
	}

	fillInterpolated(m, rc.Depth)
	obs.Global().SweepSkipped(m.PointsTotal - m.PointsSimulated)
	return m, nil
}

// RefinePlan plans one refinement level: given the current fine-lattice
// grid and its simulated mask, it returns the {fx, fy} points the next
// level should simulate. Cells of size cell (in fine-lattice units)
// whose four corners are all simulated and whose corner currents span
// at least threshold × the global range of simulated currents
// contribute their four edge midpoints and centre; shared edges between
// neighbouring refined cells are deduplicated and the result is sorted
// by fine flat index. Pure arithmetic on deterministic inputs, so the
// plan — and everything scheduled from it — is worker-count- and
// schedule-invariant. Shared with the jobs batch layer, which plans
// levels for `map`+`refine` decks from folded task results.
func RefinePlan(I [][]float64, simulated [][]bool, cell int, threshold float64) [][2]int {
	if threshold <= 0 {
		threshold = defaultRefineThreshold
	}
	fny := len(I)
	if fny == 0 {
		return nil
	}
	fnx := len(I[0])
	half := cell / 2
	lo, hi, any := 0.0, 0.0, false
	for fy := 0; fy < fny; fy++ {
		for fx := 0; fx < fnx; fx++ {
			if !simulated[fy][fx] {
				continue
			}
			v := I[fy][fx]
			if !any || v < lo {
				lo = v
			}
			if !any || v > hi {
				hi = v
			}
			any = true
		}
	}
	cut := threshold * (hi - lo)
	want := make(map[int][2]int)
	for fy := 0; fy+cell < fny; fy += cell {
		for fx := 0; fx+cell < fnx; fx += cell {
			if !simulated[fy][fx] || !simulated[fy][fx+cell] ||
				!simulated[fy+cell][fx] || !simulated[fy+cell][fx+cell] {
				continue
			}
			cLo := I[fy][fx]
			cHi := cLo
			for _, v := range [3]float64{I[fy][fx+cell], I[fy+cell][fx], I[fy+cell][fx+cell]} {
				if v < cLo {
					cLo = v
				}
				if v > cHi {
					cHi = v
				}
			}
			span := cHi - cLo
			if span < cut || span <= 0 {
				continue
			}
			for _, p := range [5][2]int{
				{fx + half, fy}, {fx, fy + half}, {fx + cell, fy + half},
				{fx + half, fy + cell}, {fx + half, fy + half},
			} {
				if !simulated[p[1]][p[0]] {
					want[p[1]*fnx+p[0]] = p
				}
			}
		}
	}
	if len(want) == 0 {
		return nil
	}
	out := make([][2]int, 0, len(want))
	for _, p := range want {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][1]*fnx+out[i][0] < out[j][1]*fnx+out[j][0]
	})
	return out
}

// fillInterpolated fills every unsimulated fine point by successive
// dyadic subdivision: coarsest cells first, edge midpoints as the mean
// of their two endpoints and centres as the mean of the four corners.
// After the pass at cell size s, every point on the s/2 lattice is
// known, so the recursion bottoms out with the whole lattice filled.
// Pure arithmetic on deterministic inputs — the filled map is as
// schedule-invariant as the simulated one.
func fillInterpolated(m *RefinedMap, depth int) {
	fnx, fny := len(m.Xs), len(m.Ys)
	known := make([][]bool, fny)
	for iy := range known {
		known[iy] = append([]bool(nil), m.Simulated[iy]...)
	}
	for cell := 1 << depth; cell >= 2; cell >>= 1 {
		half := cell / 2
		for fy := 0; fy+cell < fny; fy += cell {
			for fx := 0; fx+cell < fnx; fx += cell {
				// Horizontal and vertical edge midpoints on the top and
				// left edges; the bottom and right edges belong to
				// neighbouring cells except on the lattice boundary.
				type edge struct{ px, py, ax, ay, bx, by int }
				edges := [...]edge{
					{fx + half, fy, fx, fy, fx + cell, fy},
					{fx, fy + half, fx, fy, fx, fy + cell},
					{fx + half, fy + cell, fx, fy + cell, fx + cell, fy + cell},
					{fx + cell, fy + half, fx + cell, fy, fx + cell, fy + cell},
				}
				for _, e := range edges {
					if !known[e.py][e.px] {
						m.I[e.py][e.px] = 0.5 * (m.I[e.ay][e.ax] + m.I[e.by][e.bx])
						known[e.py][e.px] = true
					}
				}
				if !known[fy+half][fx+half] {
					m.I[fy+half][fx+half] = 0.25 * (m.I[fy][fx] + m.I[fy][fx+cell] +
						m.I[fy+cell][fx] + m.I[fy+cell][fx+cell])
					known[fy+half][fx+half] = true
				}
			}
		}
	}
}
