package sweep

import (
	"errors"
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/numeric"
	"semsim/internal/solver"
	"semsim/internal/units"
)

const aF = units.Atto

func buildSET(vds float64) (*circuit.Circuit, int, error) {
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: vds / 2, Vd: -vds / 2,
	})
	return c, nd.JuncDrain, nil
}

func TestIVShape(t *testing.T) {
	xs := numeric.Linspace(-0.04, 0.04, 9)
	pts, err := IV(buildSET, xs, Config{
		Options:    solver.Options{Temp: 5, Seed: 100},
		WarmEvents: 2000,
		Events:     15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("points = %d", len(pts))
	}
	// Antisymmetric-ish, monotone-ish, blockaded in the middle.
	mid := pts[4]
	if math.Abs(mid.X) > 1e-12 {
		t.Fatalf("midpoint X = %g", mid.X)
	}
	if math.Abs(mid.I) > 0.1*math.Abs(pts[8].I) {
		t.Fatalf("blockade center current %g vs edge %g", mid.I, pts[8].I)
	}
	if pts[8].I <= 0 || pts[0].I >= 0 {
		t.Fatalf("edge currents have wrong sign: %g, %g", pts[0].I, pts[8].I)
	}
	if math.Abs(pts[0].I+pts[8].I) > 0.15*math.Abs(pts[8].I) {
		t.Fatalf("I-V not antisymmetric: %g vs %g", pts[0].I, pts[8].I)
	}
}

func TestIVDeterministicUnderParallelism(t *testing.T) {
	xs := numeric.Linspace(-0.04, 0.04, 7)
	cfg := Config{Options: solver.Options{Temp: 5, Seed: 7}, WarmEvents: 500, Events: 3000}
	cfg.Parallel = 1
	a, err := IV(buildSET, xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 8
	b, err := IV(buildSET, xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across parallelism: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestIVBlockadedPoints(t *testing.T) {
	xs := []float64{0.0, 0.01}
	pts, err := IV(buildSET, xs, Config{
		Options: solver.Options{Temp: 0, Seed: 3}, // T=0: hard blockade
		Events:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !p.Blockaded || p.I != 0 {
			t.Fatalf("T=0 sub-threshold point not flagged blockaded: %+v", p)
		}
	}
}

func TestIVPropagatesBuildErrors(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := IV(func(float64) (*circuit.Circuit, int, error) {
		return nil, 0, wantErr
	}, []float64{0, 1}, Config{Options: solver.Options{Temp: 1}, Events: 10})
	if !errors.Is(err, wantErr) {
		t.Fatalf("build error lost: %v", err)
	}
}

func TestConductance(t *testing.T) {
	// Differentiate a synthetic quadratic I = V^2: dI/dV = 2V exactly for
	// central differences on a uniform grid.
	var pts []Point
	for _, v := range numeric.Linspace(-1, 1, 21) {
		pts = append(pts, Point{X: v, I: v * v})
	}
	g := Conductance(pts)
	if len(g) != len(pts) {
		t.Fatalf("length %d", len(g))
	}
	for i := 1; i < len(g)-1; i++ {
		want := 2 * pts[i].X
		if math.Abs(g[i].I-want) > 1e-12 {
			t.Fatalf("dI/dV at %g: got %g want %g", pts[i].X, g[i].I, want)
		}
	}
	// One-sided ends still finite and ordered.
	if math.IsNaN(g[0].I) || math.IsNaN(g[len(g)-1].I) {
		t.Fatal("NaN at the ends")
	}
}

func TestConductancePeaksAtBlockadeEdge(t *testing.T) {
	// Physical check: dI/dV of a cold SET peaks near the threshold
	// e/Csum = 32 mV, not at zero bias.
	xs := numeric.Linspace(0, 0.06, 25)
	pts, err := IV(buildSET, xs, Config{
		Options:    solver.Options{Temp: 2, Seed: 21},
		WarmEvents: 1000,
		Events:     12000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := Conductance(pts)
	best := 0
	for i := range g {
		if g[i].I > g[best].I {
			best = i
		}
	}
	if g[best].X < 0.025 || g[best].X > 0.045 {
		t.Fatalf("conductance peak at %g V, want near the 32 mV threshold", g[best].X)
	}
}

func TestMap2DShapeAndSymmetry(t *testing.T) {
	xs := numeric.Linspace(-0.04, 0.04, 5)
	ys := []float64{0.0, 0.0267} // Vg = 0 and half-period: e/(2*3aF)
	grid, err := Map2D(func(x, y float64) (*circuit.Circuit, int, error) {
		c, nd := circuit.NewSET(circuit.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: x / 2, Vd: -x / 2, Vg: y,
		})
		return c, nd.JuncDrain, nil
	}, xs, ys, Config{
		Options:    solver.Options{Temp: 5, Seed: 11},
		WarmEvents: 1000,
		Events:     8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 5 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	// At the degeneracy gate voltage the small-bias current is larger
	// than at Vg=0 (blockade lifted).
	if math.Abs(grid[1][3]) <= math.Abs(grid[0][3]) {
		t.Fatalf("degeneracy row should conduct more at small bias: %g vs %g",
			grid[1][3], grid[0][3])
	}
}

func TestIVPointError(t *testing.T) {
	boom := errors.New("boom")
	xs := []float64{0.01, 0.02, 0.03}
	_, err := IV(func(v float64) (*circuit.Circuit, int, error) {
		if v == 0.02 {
			return nil, 0, boom
		}
		return buildSET(v)
	}, xs, Config{
		Options:    solver.Options{Temp: 5, Seed: 1},
		WarmEvents: 50,
		Events:     200,
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PointError", err)
	}
	if pe.Index != 1 || pe.X != 0.02 || pe.Is2D {
		t.Fatalf("PointError = %+v, want Index=1 X=0.02 Is2D=false", pe)
	}
	if !errors.Is(err, boom) {
		t.Fatal("PointError must unwrap to the underlying cause")
	}
}

func TestMap2DPointError(t *testing.T) {
	boom := errors.New("bad pixel")
	xs := []float64{0.01, 0.02}
	ys := []float64{0, 0.01}
	_, err := Map2D(func(x, y float64) (*circuit.Circuit, int, error) {
		if x == 0.02 && y == 0.01 {
			return nil, 0, boom
		}
		return buildSET(x)
	}, xs, ys, Config{
		Options:    solver.Options{Temp: 5, Seed: 1},
		WarmEvents: 50,
		Events:     200,
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PointError", err)
	}
	// Flat index 3 = iy*len(xs)+ix = 1*2+1.
	if pe.Index != 3 || pe.X != 0.02 || pe.Y != 0.01 || !pe.Is2D {
		t.Fatalf("PointError = %+v, want Index=3 X=0.02 Y=0.01 Is2D=true", pe)
	}
	if !errors.Is(err, boom) {
		t.Fatal("PointError must unwrap to the underlying cause")
	}
}
