package sweep

import (
	"testing"

	"semsim/internal/numeric"
	"semsim/internal/solver"
)

func refineCfg(seed uint64) Config {
	return Config{Options: solver.Options{Temp: 5, Seed: seed}, WarmEvents: 300, Events: 2000}
}

func TestRefineAxis(t *testing.T) {
	fine := RefineAxis([]float64{0, 1, 2}, 2)
	want := []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75, 2}
	if len(fine) != len(want) {
		t.Fatalf("len = %d, want %d", len(fine), len(want))
	}
	for i := range want {
		if fine[i] != want[i] {
			t.Fatalf("fine[%d] = %g, want %g", i, fine[i], want[i])
		}
	}
	// Coarse values must land exactly (bitwise) on aligned indices.
	coarse := []float64{-0.0413, 0.00171, 0.0299}
	fine = RefineAxis(coarse, 3)
	for i, v := range coarse {
		if fine[i<<3] != v {
			t.Fatalf("coarse value %d not preserved: %g vs %g", i, fine[i<<3], v)
		}
	}
}

// Refinement must find the Coulomb-diamond structure: it simulates far
// fewer points than the uniform fine grid, and every point it does
// simulate is bit-identical to the uniform fine map's at the same
// fine-lattice coordinate (same positional seed, same trajectory).
func TestMap2DRefinedMatchesUniformFine(t *testing.T) {
	xs := numeric.Linspace(-0.06, 0.06, 5)
	ys := numeric.Linspace(0, 0.0534, 4)
	cfg := refineCfg(33)
	rc := RefineConfig{Depth: 2, Threshold: 0.1}
	m, err := Map2DRefined(sessionSET(cfg), xs, ys, cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Xs) != (len(xs)-1)*4+1 || len(m.Ys) != (len(ys)-1)*4+1 {
		t.Fatalf("fine lattice %dx%d", len(m.Xs), len(m.Ys))
	}
	if m.PointsTotal != len(m.Xs)*len(m.Ys) {
		t.Fatalf("PointsTotal = %d", m.PointsTotal)
	}
	if m.PointsSimulated >= m.PointsTotal {
		t.Fatalf("refinement simulated the whole lattice: %d of %d", m.PointsSimulated, m.PointsTotal)
	}
	if m.PointsSimulated < len(xs)*len(ys) {
		t.Fatalf("refinement simulated fewer than the coarse grid: %d", m.PointsSimulated)
	}
	uniform, err := Map2DSession(sessionSET(cfg), m.Xs, m.Ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for iy := range m.I {
		for ix := range m.I[iy] {
			if !m.Simulated[iy][ix] {
				continue
			}
			if m.I[iy][ix] != uniform[iy][ix] {
				t.Fatalf("simulated point (%d,%d): refined %g != uniform %g",
					ix, iy, m.I[iy][ix], uniform[iy][ix])
			}
			checked++
		}
	}
	if checked != m.PointsSimulated {
		t.Fatalf("Simulated mask count %d != PointsSimulated %d", checked, m.PointsSimulated)
	}
}

// The refined map must be identical at any worker count: refinement
// decisions are level-synchronized and seeds are positional.
func TestMap2DRefinedDeterministicUnderParallelism(t *testing.T) {
	xs := numeric.Linspace(-0.05, 0.05, 4)
	ys := numeric.Linspace(0, 0.04, 3)
	rc := RefineConfig{Depth: 2}
	run := func(par int) *RefinedMap {
		cfg := refineCfg(17)
		cfg.Parallel = par
		m, err := Map2DRefined(sessionSET(cfg), xs, ys, cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(1), run(7)
	if a.PointsSimulated != b.PointsSimulated {
		t.Fatalf("simulated point counts differ: %d vs %d", a.PointsSimulated, b.PointsSimulated)
	}
	for iy := range a.I {
		for ix := range a.I[iy] {
			if a.I[iy][ix] != b.I[iy][ix] || a.Simulated[iy][ix] != b.Simulated[iy][ix] {
				t.Fatalf("point (%d,%d) differs across parallelism: %g/%v vs %g/%v",
					ix, iy, a.I[iy][ix], a.Simulated[iy][ix], b.I[iy][ix], b.Simulated[iy][ix])
			}
		}
	}
}

func TestMap2DRefinedFillsWholeLattice(t *testing.T) {
	xs := numeric.Linspace(-0.05, 0.05, 4)
	ys := numeric.Linspace(0, 0.04, 3)
	cfg := refineCfg(3)
	m, err := Map2DRefined(sessionSET(cfg), xs, ys, cfg, RefineConfig{Depth: 3, Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Interpolated points must lie within the range of the simulated
	// values (dyadic averaging cannot extrapolate).
	lo, hi := m.I[0][0], m.I[0][0]
	for iy := range m.I {
		for ix := range m.I[iy] {
			if m.Simulated[iy][ix] {
				if m.I[iy][ix] < lo {
					lo = m.I[iy][ix]
				}
				if m.I[iy][ix] > hi {
					hi = m.I[iy][ix]
				}
			}
		}
	}
	for iy := range m.I {
		for ix := range m.I[iy] {
			if m.I[iy][ix] < lo || m.I[iy][ix] > hi {
				t.Fatalf("interpolated point (%d,%d)=%g outside simulated range [%g, %g]",
					ix, iy, m.I[iy][ix], lo, hi)
			}
		}
	}
}

func TestMap2DRefinedMaxPoints(t *testing.T) {
	xs := numeric.Linspace(-0.06, 0.06, 4)
	ys := numeric.Linspace(0, 0.05, 4)
	cfg := refineCfg(5)
	cap := len(xs)*len(ys) + 7
	m, err := Map2DRefined(sessionSET(cfg), xs, ys, cfg, RefineConfig{Depth: 2, MaxPoints: cap})
	if err != nil {
		t.Fatal(err)
	}
	if m.PointsSimulated > cap {
		t.Fatalf("MaxPoints=%d exceeded: simulated %d", cap, m.PointsSimulated)
	}
}

func TestMap2DRefinedDepthZero(t *testing.T) {
	xs := numeric.Linspace(-0.04, 0.04, 5)
	ys := []float64{0, 0.0267}
	cfg := refineCfg(11)
	m, err := Map2DRefined(sessionSET(cfg), xs, ys, cfg, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.PointsSimulated != len(xs)*len(ys) || m.PointsSimulated != m.PointsTotal {
		t.Fatalf("depth 0 must simulate exactly the coarse grid: %d of %d", m.PointsSimulated, m.PointsTotal)
	}
	grid, err := Map2DSession(sessionSET(cfg), xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for iy := range grid {
		for ix := range grid[iy] {
			if m.I[iy][ix] != grid[iy][ix] {
				t.Fatalf("depth-0 refined map differs from Map2DSession at (%d,%d)", ix, iy)
			}
		}
	}
}
