package sweep

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/noise"
	"semsim/internal/solver"
)

// noiseSession builds the standard test SET session with a noise
// recorder on the drain junction: an auto-calibrated counting window
// plus a two-point spectral grid.
func noiseSession(t *testing.T, cfg Config) (*Session, int) {
	t.Helper()
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.04, Vd: -0.01, Vg: 0.02,
	})
	over := func(x, y float64) map[int]float64 {
		return map[int]float64{nd.Source: x / 2, nd.Drain: -x / 2, nd.Gate: y}
	}
	s, err := NewSession(c, nd.JuncDrain, over, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableNoise(noise.Config{Juncs: []noise.JuncConfig{
		{Junc: nd.JuncDrain, Omegas: []float64{1e9, 5e9}},
	}}); err != nil {
		t.Fatal(err)
	}
	return s, nd.JuncDrain
}

// TestNoiseSessionReuseBitIdentical is the session-reuse regression
// test: a reused session's noise measurement at point k — after the
// accumulators were polluted and an auto window calibrated at earlier
// points — must be bit-identical to a fresh session that runs point k
// first. solver.Reset clears the accumulators and rolls auto windows
// back; this test fails if either half regresses.
func TestNoiseSessionReuseBitIdentical(t *testing.T) {
	cfg := Config{Options: solver.Options{Temp: 5, Seed: 42}, WarmEvents: 500, Events: 3000}
	xs := []float64{0.02, 0.035, 0.04}

	reused, junc := noiseSession(t, cfg)
	defer reused.Close()
	var reusedStats []noise.RunStats
	for i, x := range xs {
		if _, err := reused.RunPoint(x, 0, i); err != nil {
			t.Fatal(err)
		}
		st, ok := reused.NoiseStats(junc)
		if !ok {
			t.Fatal("session reports no noise stats")
		}
		reusedStats = append(reusedStats, st)
	}

	for i, x := range xs {
		fresh, fjunc := noiseSession(t, cfg)
		if _, err := fresh.RunPoint(x, 0, i); err != nil {
			t.Fatal(err)
		}
		want, ok := fresh.NoiseStats(fjunc)
		if !ok {
			t.Fatal("fresh session reports no noise stats")
		}
		fresh.Close()
		got := reusedStats[i]
		if got.Events != want.Events || got.Windows != want.Windows ||
			math.Float64bits(got.T) != math.Float64bits(want.T) ||
			math.Float64bits(got.Window) != math.Float64bits(want.Window) ||
			math.Float64bits(got.MeanI) != math.Float64bits(want.MeanI) ||
			math.Float64bits(got.SumQ) != math.Float64bits(want.SumQ) ||
			math.Float64bits(got.SumQ2) != math.Float64bits(want.SumQ2) {
			t.Errorf("point %d: reused session noise diverged from fresh session:\nreused: %+v\nfresh:  %+v", i, got, want)
		}
		for k := range want.S {
			if math.Float64bits(got.S[k]) != math.Float64bits(want.S[k]) {
				t.Errorf("point %d: S[%d] diverged: %g vs %g", i, k, got.S[k], want.S[k])
			}
		}
		if want.Windows < 2 {
			t.Errorf("point %d measured %d windows; the comparison is vacuous", i, want.Windows)
		}
	}

	// Recording must not perturb the sweep itself: the same session
	// config without a recorder yields bit-identical currents.
	plain, err := IVSession(sessionSET(cfg), xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisy, _ := noiseSession(t, cfg)
	defer noisy.Close()
	for i, x := range xs {
		pt, err := noisy.RunPoint(x, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		if pt != plain[i] {
			t.Errorf("point %d: noise recording perturbed the sweep: %+v vs %+v", i, pt, plain[i])
		}
	}
}
