package cotunnel

import (
	"math"
	"sync"

	"semsim/internal/numeric"
	"semsim/internal/units"
)

// Like the first-order orthodox rate, the finite-temperature
// cotunneling rate factors into an exact prefactor and a dimensionless
// kernel of x = dW/kT alone:
//
//	Gamma = pref * (1/E1 + 1/E2)^2 * kT^3 * h(x)
//	h(x)  = (x^2 + 4 pi^2) * x/(exp(x) - 1)
//
// (the thermal bracket dW^2 + (2 pi kT)^2 equals kT^2 (x^2 + 4 pi^2)),
// so one table serves every channel, resistance pair and temperature.
// Outside |x| <= KernelXMax and at T <= 0 evaluation is exact.
const (
	// KernelXMax bounds the tabulated band of x = dW/kT.
	KernelXMax = 60.0
	// KernelRelTol is the grid-refinement target for the kernel's
	// relative interpolation error.
	KernelRelTol = 1e-7
)

// bracketKernel is h(x) above.
func bracketKernel(x float64) float64 {
	return (x*x + 4*math.Pi*math.Pi) * numeric.XOverExpm1(x)
}

// Kernel is the tabulated cotunneling rate kernel.
type Kernel struct {
	k *numeric.Kernel
}

var (
	kernelOnce sync.Once
	kernel     *Kernel
)

// SharedKernel returns the process-wide tabulated kernel, building it
// on first use. It returns nil if refinement cannot reach KernelRelTol
// — callers must then use the exact Rate.
func SharedKernel() *Kernel {
	kernelOnce.Do(func() {
		k, err := numeric.NewKernel(bracketKernel, -KernelXMax, KernelXMax, KernelRelTol)
		if err != nil || k.MaxRelError() > KernelRelTol {
			return
		}
		kernel = &Kernel{k: k}
	})
	return kernel
}

// Rate is the tabulated counterpart of Rate: identical arguments and
// semantics, relative error bounded by KernelRelTol inside the
// tabulated band and exact outside it (including T <= 0 and inactive
// channels).
func (k *Kernel) Rate(dw, e1, e2, r1, r2, t float64) float64 {
	if e1 <= 0 || e2 <= 0 {
		return 0 // coexistence rule, as in Rate
	}
	if t <= 0 {
		return Rate(dw, e1, e2, r1, r2, t)
	}
	pref := units.Hbar / (12 * math.Pi * units.E * units.E * units.E * units.E * r1 * r2)
	den := 1/e1 + 1/e2
	pref *= den * den
	kT := units.KB * t
	return pref * kT * kT * kT * k.k.Eval(dw/kT)
}

// MaxRelError reports the measured interpolation-error bound of the
// tabulated band.
func (k *Kernel) MaxRelError() float64 { return k.k.MaxRelError() }
