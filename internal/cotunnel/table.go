package cotunnel

import (
	"math"
	"sync"

	"semsim/internal/numeric"
	"semsim/internal/units"
)

// Like the first-order orthodox rate, the finite-temperature
// cotunneling rate factors into an exact prefactor and a dimensionless
// kernel of x = dW/kT alone:
//
//	Gamma = pref * (1/E1 + 1/E2)^2 * kT^3 * h(x)
//	h(x)  = (x^2 + 4 pi^2) * x/(exp(x) - 1)
//
// (the thermal bracket dW^2 + (2 pi kT)^2 equals kT^2 (x^2 + 4 pi^2)),
// so one table serves every channel, resistance pair and temperature.
// Outside |x| <= KernelXMax the asymptotic tails are evaluated (see
// KernelXMax); at T <= 0 evaluation is exact.
const (
	// KernelXMax bounds the tabulated band of x = dW/kT. As in the
	// orthodox kernel, the tails evaluate their asymptotic expansions so
	// out-of-band arguments stay on the multiply-add path: below -60,
	// x/(exp(x)-1) -> -x so h(x) -> -x^3 - 4 pi^2 x, exact to one part
	// in e^60 ~ 1e26; above +60 the thermally suppressed kernel
	// h(60) ~ 2e-21 truncates to zero (dozens of decades below the
	// double-precision floor of any competing rate sum).
	KernelXMax = 60.0
	// KernelRelTol is the grid-refinement target for the kernel's
	// relative interpolation error.
	KernelRelTol = 1e-7
)

// bracketKernel is h(x) above.
func bracketKernel(x float64) float64 {
	return (x*x + 4*math.Pi*math.Pi) * numeric.XOverExpm1(x)
}

// Kernel is the tabulated cotunneling rate kernel. It evaluates through
// a numeric.FlatKernel — uniform grid, constant-time panel lookup — so
// a tabulated rate costs a handful of multiply-adds instead of a binary
// search plus an exp.
type Kernel struct {
	k *numeric.FlatKernel
}

var (
	kernelOnce sync.Once
	kernel     *Kernel
)

// SharedKernel returns the process-wide tabulated kernel, building it
// on first use. It returns nil if refinement cannot reach KernelRelTol
// — callers must then use the exact Rate.
func SharedKernel() *Kernel {
	kernelOnce.Do(func() {
		k, err := numeric.NewFlatKernel(bracketKernel, -KernelXMax, KernelXMax, KernelRelTol)
		if err != nil || k.MaxRelError() > KernelRelTol {
			return
		}
		// Asymptotic tails (see KernelXMax): h(x) = -x^3 - 4 pi^2 x
		// below the band, 0 above it.
		k.WithTails([4]float64{0, -4 * math.Pi * math.Pi, 0, -1}, [4]float64{})
		kernel = &Kernel{k: k}
	})
	return kernel
}

// Flat exposes the underlying constant-time kernel so the solver's
// monomorphic inner loops can evaluate it without an extra call frame.
func (k *Kernel) Flat() *numeric.FlatKernel { return k.k }

// Rate is the tabulated counterpart of Rate: identical arguments and
// semantics, relative error bounded by KernelRelTol inside the
// tabulated band, asymptotic outside it (see KernelXMax), and exact at
// T <= 0 and for inactive channels.
func (k *Kernel) Rate(dw, e1, e2, r1, r2, t float64) float64 {
	if e1 <= 0 || e2 <= 0 {
		return 0 // coexistence rule, as in Rate
	}
	if t <= 0 {
		return Rate(dw, e1, e2, r1, r2, t)
	}
	pref := units.Hbar / (12 * math.Pi * units.E * units.E * units.E * units.E * r1 * r2)
	den := 1/e1 + 1/e2
	pref *= den * den
	kT := units.KB * t
	return pref * kT * kT * kT * k.k.Eval(dw/kT)
}

// MaxRelError reports the measured interpolation-error bound of the
// tabulated band.
func (k *Kernel) MaxRelError() float64 { return k.k.MaxRelError() }
