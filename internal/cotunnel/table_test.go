package cotunnel

import (
	"math"
	"testing"

	"semsim/internal/rng"
	"semsim/internal/units"
)

// TestKernelAccuracy mirrors the orthodox table test for the
// cotunneling bracket: tabulated rates within 1e-6 of exact across
// temperatures, spanning the tabulated band and its asymptotic tails
// (ohmic below, truncated-to-zero above — there the test bounds the
// discarded exact rate by the truncation floor instead).
func TestKernelAccuracy(t *testing.T) {
	k := SharedKernel()
	if k == nil {
		t.Fatal("shared kernel failed to build")
	}
	if k.MaxRelError() > KernelRelTol {
		t.Fatalf("kernel reports error bound %g, want <= %g", k.MaxRelError(), KernelRelTol)
	}
	r := rng.New(5)
	temps := []float64{0.05, 2, 77}
	const r1, r2 = 1e6, 2e6
	for _, temp := range temps {
		kT := units.KB * temp
		ec := 100 * kT // intermediate-state energies well above kT
		for i := 0; i < 5000; i++ {
			x := (r.Float64()*2 - 1) * 80
			dw := x * kT
			e1 := ec * (0.5 + r.Float64())
			e2 := ec * (0.5 + r.Float64())
			exact := Rate(dw, e1, e2, r1, r2, temp)
			got := k.Rate(dw, e1, e2, r1, r2, temp)
			if x > KernelXMax {
				pref := units.Hbar / (12 * math.Pi * units.E * units.E * units.E * units.E * r1 * r2)
				den := 1/e1 + 1/e2
				scale := pref * den * den * kT * kT * kT
				if got != 0 {
					t.Fatalf("T=%g x=%g: truncated tail must give 0, got %g", temp, x, got)
				}
				if floor := scale * (x*x + 4*math.Pi*math.Pi) * (x + 1) * math.Exp(-KernelXMax); exact > floor {
					t.Fatalf("T=%g x=%g: exact rate %g above truncation floor %g", temp, x, exact, floor)
				}
				continue
			}
			if exact == 0 {
				if got != 0 {
					t.Fatalf("T=%g x=%g: exact 0 but table %g", temp, x, got)
				}
				continue
			}
			if rel := math.Abs(got-exact) / math.Abs(exact); rel > 1e-6 {
				t.Fatalf("T=%g x=%g: table %g vs exact %g, rel err %g > 1e-6", temp, x, got, exact, rel)
			}
		}
	}
}

// TestKernelCoexistenceRule: channels whose intermediate state is
// energetically forbidden must stay exactly zero through the table path.
func TestKernelCoexistenceRule(t *testing.T) {
	k := SharedKernel()
	if k == nil {
		t.Fatal("shared kernel failed to build")
	}
	if got := k.Rate(-1e-22, -1e-22, 1e-22, 1e6, 1e6, 2); got != 0 {
		t.Fatalf("forbidden intermediate state must give 0, got %g", got)
	}
	if got := k.Rate(-1e-22, 1e-22, 0, 1e6, 1e6, 2); got != 0 {
		t.Fatalf("zero-energy intermediate state must give 0, got %g", got)
	}
}
