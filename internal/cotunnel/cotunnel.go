// Package cotunnel implements second-order inelastic cotunneling: the
// coherent transfer of charge through two junctions at once, which
// carries current through a Coulomb-blockaded device (Section II of the
// paper). Elastic cotunneling is negligible outside extreme corners of
// parameter space and is ignored, following the paper.
//
// The rate is the Averin–Nazarov finite-temperature result for a
// double-junction system, generalized with the virtual-state energy
// denominators evaluated from the actual circuit state (the approach of
// Fonseca et al. that the paper adopts):
//
//	Gamma(dW) = (hbar / (12 pi e^4 R1 R2)) * (1/E1 + 1/E2)^2
//	            * (dW^2 + (2 pi kT)^2) * dW / (exp(dW/kT) - 1)
//
// where E1 and E2 are the (positive) free-energy costs of the two
// virtual intermediate states and dW is the total free-energy change of
// the composite event. At T = 0 this reduces to the |dW|^3 law that
// yields the V^3 cotunneling current; the bracket is even in dW so the
// rate obeys detailed balance.
//
// Following the coexistence principle, a cotunneling channel is active
// only while both virtual states cost energy (E1, E2 > 0), i.e. while
// the sequential path is Coulomb-blockaded; otherwise first-order
// tunneling dominates and the channel rate is zero, avoiding double
// counting.
package cotunnel

import (
	"math"

	"semsim/internal/circuit"
	"semsim/internal/numeric"
	"semsim/internal/units"
)

// Channel is a directed two-junction cotunneling path: an electron
// leaves node Src, passes virtually through island Mid, and arrives at
// node Dst. J1 and J2 are the junction ids crossed, in order.
type Channel struct {
	J1, J2        int
	Src, Mid, Dst int
}

// Channels enumerates every directed cotunneling channel of a built
// circuit: for each island, every ordered pair of distinct junctions
// touching it, in both directions, with distinct endpoints.
func Channels(c *circuit.Circuit) []Channel {
	var out []Channel
	for _, isl := range c.Islands() {
		js := c.JunctionsAt(isl)
		for _, j1 := range js {
			for _, j2 := range js {
				if j1 == j2 {
					continue
				}
				a := otherNode(c.Junction(j1), isl)
				b := otherNode(c.Junction(j2), isl)
				if a == b {
					continue
				}
				out = append(out, Channel{J1: j1, J2: j2, Src: a, Mid: isl, Dst: b})
			}
		}
	}
	return out
}

func otherNode(j circuit.Junction, node int) int {
	if j.A == node {
		return j.B
	}
	return j.A
}

// Rate returns the inelastic cotunneling rate (1/s) for total
// free-energy change dw (joules), virtual-state costs e1 and e2
// (joules, must be > 0 for a nonzero rate), junction resistances r1 and
// r2 (ohms) and temperature t (kelvin).
func Rate(dw, e1, e2, r1, r2, t float64) float64 {
	if e1 <= 0 || e2 <= 0 {
		return 0 // sequential tunneling is allowed; coexistence rule
	}
	pref := units.Hbar / (12 * math.Pi * units.E * units.E * units.E * units.E * r1 * r2)
	den := 1/e1 + 1/e2
	pref *= den * den
	if t <= 0 {
		if dw < 0 {
			return pref * (-dw) * dw * dw // |dw|^3 for dw < 0
		}
		return 0
	}
	kT := units.KB * t
	bracket := dw*dw + (2*math.Pi*kT)*(2*math.Pi*kT)
	return pref * bracket * kT * numeric.XOverExpm1(dw/kT)
}

// CurrentT0 returns the analytic zero-temperature cotunneling current
// magnitude for a symmetric double junction at bias v inside the
// blockade, used by validation tests and EXPERIMENTS.md:
//
//	I = e * Gamma_net = (hbar /(12 pi e^4 R1 R2)) (1/E1+1/E2)^2 (eV)^3 * e
//
// with the caller supplying the virtual-state costs.
func CurrentT0(v, e1, e2, r1, r2 float64) float64 {
	ev := units.E * math.Abs(v)
	pref := units.Hbar / (12 * math.Pi * units.E * units.E * units.E * units.E * r1 * r2)
	den := 1/e1 + 1/e2
	return units.E * pref * den * den * ev * ev * ev
}
