package cotunnel

import (
	"math"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

const aF = units.Atto

func TestChannelsOfSET(t *testing.T) {
	c, nd := circuit.NewSET(circuit.SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
	})
	chs := Channels(c)
	// Source->island->drain and drain->island->source.
	if len(chs) != 2 {
		t.Fatalf("SET cotunnel channels = %d, want 2", len(chs))
	}
	seen := map[[2]int]bool{}
	for _, ch := range chs {
		if ch.Mid != nd.Island {
			t.Fatalf("channel mid %d, want island %d", ch.Mid, nd.Island)
		}
		if ch.Src == ch.Dst {
			t.Fatal("channel endpoints identical")
		}
		seen[[2]int{ch.Src, ch.Dst}] = true
	}
	if !seen[[2]int{nd.Source, nd.Drain}] || !seen[[2]int{nd.Drain, nd.Source}] {
		t.Fatalf("missing directed channels: %v", seen)
	}
}

func TestChannelsSkipSameEndpoint(t *testing.T) {
	// Two junctions in parallel between the same lead and island: going
	// out and back to the same node is not a cotunneling event.
	c := circuit.New()
	lead := c.AddNode("lead", circuit.External)
	c.SetSource(lead, circuit.DC(0))
	isl := c.AddNode("i", circuit.Island)
	c.AddJunction(lead, isl, 1e6, aF)
	c.AddJunction(lead, isl, 1e6, aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if chs := Channels(c); len(chs) != 0 {
		t.Fatalf("parallel junctions produced %d channels, want 0", len(chs))
	}
}

func TestRateZeroOutsideBlockade(t *testing.T) {
	if Rate(-1e-21, -1e-22, 1e-21, 1e6, 1e6, 1) != 0 {
		t.Fatal("rate must vanish when a virtual state is free (E1 <= 0)")
	}
	if Rate(-1e-21, 1e-21, 0, 1e6, 1e6, 1) != 0 {
		t.Fatal("rate must vanish when E2 <= 0")
	}
}

func TestT0CubicLaw(t *testing.T) {
	// At T=0 the rate must scale as |dW|^3.
	e1, e2 := 2e-21, 3e-21
	r := Rate(-1e-22, e1, e2, 1e6, 1e6, 0)
	r2 := Rate(-2e-22, e1, e2, 1e6, 1e6, 0)
	ratio := r2 / r
	if math.Abs(ratio-8)/8 > 1e-9 {
		t.Fatalf("T=0 cubic law: doubling dW gave ratio %g, want 8", ratio)
	}
	if Rate(1e-22, e1, e2, 1e6, 1e6, 0) != 0 {
		t.Fatal("T=0 unfavorable cotunneling must be zero")
	}
}

func TestDetailedBalance(t *testing.T) {
	e1, e2 := 2e-21, 2e-21
	temp := 0.3
	kT := units.KB * temp
	for _, x := range []float64{0.2, 1, 3} {
		dw := x * kT
		ratio := Rate(dw, e1, e2, 1e6, 1e6, temp) / Rate(-dw, e1, e2, 1e6, 1e6, temp)
		want := math.Exp(-x)
		if math.Abs(ratio-want)/want > 1e-9 {
			t.Fatalf("detailed balance at x=%g: %g want %g", x, ratio, want)
		}
	}
}

func TestFiniteTLimitMatchesT0(t *testing.T) {
	// For |dW| >> kT the finite-T rate approaches the T=0 form.
	e1, e2 := 2e-21, 2e-21
	dw := -5e-21
	cold := Rate(dw, e1, e2, 1e6, 1e6, 0.001)
	zero := Rate(dw, e1, e2, 1e6, 1e6, 0)
	if math.Abs(cold-zero)/zero > 1e-4 {
		t.Fatalf("1 mK rate %g differs from T=0 rate %g", cold, zero)
	}
}

func TestRateSymmetricInDenominators(t *testing.T) {
	a := Rate(-1e-21, 2e-21, 5e-21, 1e6, 2e6, 0.1)
	b := Rate(-1e-21, 5e-21, 2e-21, 2e6, 1e6, 0.1)
	if math.Abs(a-b)/a > 1e-12 {
		t.Fatalf("rate should be symmetric under (E1,R1)<->(E2,R2): %g vs %g", a, b)
	}
}

func TestCurrentT0MatchesRate(t *testing.T) {
	// e * Gamma(dW=-eV) must equal CurrentT0(V).
	v := 0.001
	e1, e2 := 4e-21, 4e-21
	dw := -units.E * v
	iFromRate := units.E * Rate(dw, e1, e2, 1e6, 1e6, 0)
	iAnalytic := CurrentT0(v, e1, e2, 1e6, 1e6)
	if math.Abs(iFromRate-iAnalytic)/iAnalytic > 1e-12 {
		t.Fatalf("current mismatch: %g vs %g", iFromRate, iAnalytic)
	}
}

func TestThermalEnhancement(t *testing.T) {
	// At fixed small dW, raising T raises the cotunneling rate (the
	// (2 pi kT)^2 term) — thermally assisted cotunneling.
	e1, e2 := 2e-21, 2e-21
	dw := -1e-23
	r1 := Rate(dw, e1, e2, 1e6, 1e6, 0.05)
	r2 := Rate(dw, e1, e2, 1e6, 1e6, 0.5)
	if r2 <= r1 {
		t.Fatalf("thermal enhancement absent: %g at 50mK vs %g at 500mK", r1, r2)
	}
}

func TestThermalQuadraticLaw(t *testing.T) {
	// Averin–Nazarov: the net cotunneling current at fixed bias scales
	// as (eV)^2 + (2 pi kT)^2 — exactly quadratic in temperature. The
	// detailed-balance structure makes the net rate's thermal bracket
	// survive intact, so
	//   [I(T2) - I(T0)] / [I(T1) - I(T0)] = (T2^2 - T0^2)/(T1^2 - T0^2).
	e1, e2 := 4e-21, 4e-21
	dw := -1e-23 // small fixed bias
	net := func(temp float64) float64 {
		return Rate(dw, e1, e2, 1e6, 1e6, temp) - Rate(-dw, e1, e2, 1e6, 1e6, temp)
	}
	i0 := net(0.05)
	i1 := net(0.20)
	i2 := net(0.40)
	got := (i2 - i0) / (i1 - i0)
	want := (0.40*0.40 - 0.05*0.05) / (0.20*0.20 - 0.05*0.05)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("thermal law not quadratic: ratio %g, want %g", got, want)
	}
}

func BenchmarkRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Rate(-1e-21, 2e-21, 3e-21, 1e6, 1e6, 0.1)
	}
}
