package netlist

import (
	"math"
	"strings"
	"testing"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

// paperDeck is the paper's Example Input File 1 (a SET), with the
// additions this dialect expects spelled the same way.
const paperDeck = `
#SET component definitions
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
charge 4 0.0

#Input source information
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1

#Overall node information
num j 2
num ext 3
num nodes 4

#Simulation specific information
temp 5
cotunnel
record 1 2
jumps 100000 1
sweep 2 0.02 0.00005
`

func TestParsePaperExample(t *testing.T) {
	d, err := Parse(strings.NewReader(paperDeck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.Temp != 5 {
		t.Fatalf("temp = %g", d.Spec.Temp)
	}
	if !d.Spec.Cotunnel {
		t.Fatal("cotunnel flag lost")
	}
	if d.Spec.Jumps != 100000 || d.Spec.Runs != 1 {
		t.Fatalf("jumps = %d runs = %d", d.Spec.Jumps, d.Spec.Runs)
	}
	sw := d.Spec.Sweep
	if sw == nil || sw.Node != 2 || sw.Mirror != 1 || sw.Max != 0.02 || sw.Step != 0.00005 {
		t.Fatalf("sweep spec = %+v", sw)
	}
	if len(d.Spec.RecordJuncs) != 2 {
		t.Fatalf("record juncs = %v", d.Spec.RecordJuncs)
	}
}

func TestCompilePaperExample(t *testing.T) {
	d, err := Parse(strings.NewReader(paperDeck))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := d.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cc.Circuit
	if c.NumJunctions() != 2 {
		t.Fatalf("junctions = %d", c.NumJunctions())
	}
	if c.NumIslands() != 1 {
		t.Fatalf("islands = %d", c.NumIslands())
	}
	isl := cc.Node[4]
	if c.NodeKindOf(isl) != circuit.Island {
		t.Fatal("node 4 should be an island")
	}
	// Csum = 1 + 1 + 3 aF.
	if got := c.SumCapacitance(isl); math.Abs(got-5e-18) > 1e-27 {
		t.Fatalf("Csum = %g", got)
	}
	// Conductance 1e-6 S means R = 1 MOhm.
	if r := c.Junction(cc.Junc[1]).R; math.Abs(r-1e6) > 1 {
		t.Fatalf("junction R = %g", r)
	}
	if v := c.SourceVoltage(cc.Node[1], 0); v != 0.02 {
		t.Fatalf("vdc on node 1 = %g", v)
	}
}

func TestCompileWithOverride(t *testing.T) {
	d, err := Parse(strings.NewReader(paperDeck))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := d.Compile(map[int]float64{1: 0.005, 2: -0.005})
	if err != nil {
		t.Fatal(err)
	}
	if v := cc.Circuit.SourceVoltage(cc.Node[1], 0); v != 0.005 {
		t.Fatalf("override lost: %g", v)
	}
	if _, err := d.Compile(map[int]float64{4: 1}); err == nil {
		t.Fatal("override on island accepted")
	}
}

func TestImplicitGround(t *testing.T) {
	deck := `
junc 1 0 1 1e-6 1e-18
cap 0 1 2e-18
temp 1
jumps 10
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := d.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	gnd := cc.Node[0]
	if cc.Circuit.NodeKindOf(gnd) != circuit.External {
		t.Fatal("node 0 must be an implicit ground external")
	}
	if v := cc.Circuit.SourceVoltage(gnd, 0); v != 0 {
		t.Fatalf("ground voltage = %g", v)
	}
}

func TestSuperDirective(t *testing.T) {
	deck := `
junc 1 1 2 4.76e-6 110e-18
junc 2 2 0 4.76e-6 110e-18
vdc 1 0.001
temp 0.52
super 0.21e-3 1.4
jumps 100
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.Super == nil {
		t.Fatal("super spec missing")
	}
	if math.Abs(d.Spec.Super.GapAt0-0.21e-3*units.E) > 1e-30 {
		t.Fatalf("gap = %g", d.Spec.Super.GapAt0)
	}
	cc, err := d.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Circuit.Super().Superconducting() {
		t.Fatal("compiled circuit not superconducting")
	}
}

func TestSourcesACAndPWL(t *testing.T) {
	deck := `
junc 1 1 2 1e-6 1e-18
vdc 1 0
vac 3 0.0 0.01 1e9 0.5
vpwl 4 0 0 1e-9 0.1
cap 3 2 1e-18
cap 4 2 1e-18
temp 1
jumps 10
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := d.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cc.Circuit
	if c.AllSourcesStatic() {
		t.Fatal("AC deck reported static")
	}
	if v := c.SourceVoltage(cc.Node[4], 0.5e-9); math.Abs(v-0.05) > 1e-12 {
		t.Fatalf("PWL midpoint = %g", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no junctions":       "vdc 1 0\n",
		"bad directive":      "junc 1 0 1 1e-6 1e-18\nfoo bar\n",
		"junc argc":          "junc 1 0 1 1e-6\n",
		"dup junc id":        "junc 1 0 1 1e-6 1e-18\njunc 1 0 2 1e-6 1e-18\n",
		"neg conductance":    "junc 1 0 1 -1e-6 1e-18\n",
		"num j mismatch":     "junc 1 0 1 1e-6 1e-18\nnum j 2\n",
		"num nodes mismatch": "junc 1 0 1 1e-6 1e-18\nnum nodes 9\n",
		"sweep no source":    "junc 1 0 1 1e-6 1e-18\nsweep 5 0.1 0.01\n",
		"symm no sweep":      "junc 1 0 1 1e-6 1e-18\nvdc 2 0\ncap 2 1 1e-18\nsymm 2\n",
		"charge on source":   "junc 1 2 1 1e-6 1e-18\nvdc 2 0\ncharge 2 0.5\n",
		"pwl non-monotone":   "junc 1 0 1 1e-6 1e-18\nvpwl 2 1e-9 0 0.5e-9 1\ncap 2 1 1e-18\n",
		"bad temp":           "junc 1 0 1 1e-6 1e-18\ntemp -3\n",
		"bad super":          "junc 1 0 1 1e-6 1e-18\nsuper -1 1\n",
		"neg parallel":       "junc 1 0 1 1e-6 1e-18\nparallel -2\n",
		"parallel argc":      "junc 1 0 1 1e-6 1e-18\nparallel\n",
		"rate-tables argc":   "junc 1 0 1 1e-6 1e-18\nrate-tables 3\n",
		"map one axis":       "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nmap x 1 -0.1 0.1 5\n",
		"map bad axis":       "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nmap z 1 -0.1 0.1 5\n",
		"map min>=max":       "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nvdc 2 0\nmap x 1 0.1 0.1 5\nmap y 2 0 1 5\n",
		"map 1 point":        "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nvdc 2 0\nmap x 1 -0.1 0.1 1\nmap y 2 0 1 5\n",
		"map no source":      "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nmap x 1 -0.1 0.1 5\nmap y 9 0 1 5\n",
		"map non-DC":         "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nvac 2 0 0.01 1e9\ncap 2 3 1e-18\nmap x 1 -0.1 0.1 5\nmap y 2 0 1 5\n",
		"map same node":      "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nmap x 1 -0.1 0.1 5\nmap y 1 0 1 5\n",
		"map plus sweep":     "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nvdc 2 0\nsweep 1 0.1 0.01\nmap x 1 -0.1 0.1 5\nmap y 2 0 1 5\n",
		"refine no map":      "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nrefine 2\n",
		"refine depth 0":     "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nvdc 2 0\nmap x 1 -0.1 0.1 5\nmap y 2 0 1 5\nrefine 0\n",
		"refine threshold":   "junc 1 1 2 1e-6 1e-18\nvdc 1 0\nvdc 2 0\nmap x 1 -0.1 0.1 5\nmap y 2 0 1 5\nrefine 2 1.5\n",
	}
	for name, deck := range cases {
		if _, err := Parse(strings.NewReader(deck)); err == nil {
			t.Errorf("%s: accepted invalid deck", name)
		}
	}
}

func TestParseMapDirective(t *testing.T) {
	deck := `
junc 1 1 3 1e-6 1e-18
junc 2 2 3 1e-6 1e-18
vdc 1 0.01
vdc 2 0
temp 5
record 1
jumps 1000
map x 2 -0.08 0.08 17
map y 1 -0.05 0.05 9
refine 3 0.2
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	mp := d.Spec.Map
	if mp == nil {
		t.Fatal("map spec not parsed")
	}
	if mp.X != (MapAxis{Node: 2, Min: -0.08, Max: 0.08, Points: 17}) {
		t.Fatalf("X axis = %+v", mp.X)
	}
	if mp.Y != (MapAxis{Node: 1, Min: -0.05, Max: 0.05, Points: 9}) {
		t.Fatalf("Y axis = %+v", mp.Y)
	}
	if mp.Depth != 3 || mp.Threshold != 0.2 {
		t.Fatalf("refine = depth %d threshold %g", mp.Depth, mp.Threshold)
	}
	xs := mp.X.Values()
	if len(xs) != 17 || xs[0] != -0.08 || xs[16] != 0.08 {
		t.Fatalf("X values = %v", xs)
	}
	// refine may precede its map directives (symm/sweep-style tolerance).
	d2, err := Parse(strings.NewReader(`
junc 1 1 3 1e-6 1e-18
vdc 1 0.01
vdc 2 0
cap 2 3 1e-18
refine 2
map x 2 -0.08 0.08 17
map y 1 -0.05 0.05 9
`))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Spec.Map.Depth != 2 || d2.Spec.Map.Threshold != 0 {
		t.Fatalf("refine-first deck parsed to %+v", d2.Spec.Map)
	}
}

func TestInlineComments(t *testing.T) {
	deck := `
junc 1 0 1 1e-6 1e-18 # the only junction
temp 2 # kelvin
jumps 10
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.Temp != 2 {
		t.Fatalf("temp with inline comment = %g", d.Spec.Temp)
	}
}

func TestCompileDeterministicNodeOrder(t *testing.T) {
	d, err := Parse(strings.NewReader(paperDeck))
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	for n, id := range a.Node {
		if b.Node[n] != id {
			t.Fatalf("node mapping unstable for netlist node %d", n)
		}
	}
}
